// Command afareport regenerates the paper's figures and tables as text
// reports from the simulated all-flash-array testbed.
//
// Usage:
//
//	afareport -fig 6          # latency distributions, default config (Fig 6)
//	afareport -fig 7..9,11    # the other single-config figures
//	afareport -fig 10         # SMART spike scatter summary
//	afareport -fig 12         # four-config comparison
//	afareport -fig 13         # CPU:SSD balance study (also covers Fig 14)
//	afareport -table 1        # Table I (device spec)
//	afareport -table 2        # Table II (setup matrix)
//	afareport -headline       # the abstract's ×8 / ×400 claim
//	afareport -ablate fw      # firmware variants (standard/nosmart/incremental)
//	afareport -ablate poll    # interrupt vs polling completion
//	afareport -ablate used    # FOB vs used (non-FOB) state, the future-work study
//	afareport -ablate future  # §VI prototypes: auto-isolating scheduler, affine balancer
//	afareport -ablate coalesce# NVMe interrupt coalescing vs the interrupt storm
//	afareport -ablate faults  # clean vs faulted vs faulted+tolerant (timeouts, degraded reads, hedging)
//	afareport -ablate recovery# drive drop-out/recovery time series under tolerance
//	afareport -ablate writes  # RMW write path: clean / degraded / +rebuild / +tolerance (hedged parity writes)
//	afareport -ablate hedging # hedging policy: static quantile vs per-drive adaptive vs adaptive+budgets
//	afareport -ablate load    # open-loop offered-load ladder: the load-vs-tail knee, with/without QoS admission
//	afareport -ablate iopath  # low-latency I/O path: {irq, coalesced, polling, passthrough} × {flash, ull}
//	afareport -all            # everything
//
// -ablation is accepted as an alias for -ablate.
//
// -runtime scales fidelity: the default 2 s is quick; pass 120s for the
// paper's full-length runs (no time compression of rare events).
//
// -parallel N fans the independent runs inside one experiment (configs,
// Table II geometries, sweep seeds) across N workers; the default 0
// means one worker per CPU. Reports are byte-identical at every width —
// each run owns its engine and rng streams and results merge in
// submission order (see DESIGN.md §7) — so -parallel only changes wall
// time, never data.
//
// -seeds N reruns the single-configuration figures (6-9 and 11) at N
// derived seeds (seed, seed+1, …) in parallel and appends a pooled row
// merging all N fleets; sweep member i reproduces standalone with
// -seed <seed+i>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/nvme"
	"repro/internal/runner"
	"repro/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure number to regenerate (6-14)")
		table    = flag.Int("table", 0, "table number to regenerate (1 or 2)")
		headline = flag.Bool("headline", false, "check the abstract's ×8/×400 claim")
		ablate   = flag.String("ablate", "", "ablation: fw | poll | used | future | coalesce | tail | pts | faults | recovery | writes | hedging | load | iopath")
		ablation = flag.String("ablation", "", "alias for -ablate")
		all      = flag.Bool("all", false, "regenerate everything")
		runtime  = flag.Duration("runtime", 2*time.Second, "simulated runtime per FIO instance (paper: 120s)")
		seed     = flag.Uint64("seed", 2018, "experiment seed")
		ssds     = flag.Int("ssds", 64, "number of SSDs")
		solo     = flag.Int("solo-runs", 8, "runs merged for the Fig 13(d) single-thread row (paper: 64)")
		format   = flag.String("format", "text", "output format for figure data: text | json | csv")
		parallel = flag.Int("parallel", 0, "worker pool width for independent runs; 0 = one per CPU (results are byte-identical at any width)")
		seeds    = flag.Int("seeds", 1, "seed-sweep width for single-config figures 6-9 and 11 (seed, seed+1, ...; appends a pooled row)")
	)
	flag.Parse()
	if *ablate == "" {
		*ablate = *ablation
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "-seeds must be >= 1, got %d\n", *seeds)
		os.Exit(2)
	}

	o := core.ExpOptions{
		Runtime:  sim.Duration(runtime.Nanoseconds()),
		Seed:     *seed,
		NumSSDs:  *ssds,
		SoloRuns: *solo,
		Parallel: *parallel,
	}
	outputFormat = *format
	sweepSeeds = *seeds
	effectiveParallel = *parallel
	if effectiveParallel <= 0 {
		effectiveParallel = runner.DefaultParallel()
	}

	ran := false
	if *all {
		for _, f := range []int{6, 7, 8, 9, 10, 11, 12, 13} {
			runFigure(f, o)
		}
		runTable(1)
		runTable(2)
		runHeadline(o)
		for _, a := range []string{"fw", "poll", "used", "future", "coalesce", "tail", "pts", "faults", "recovery", "writes", "hedging", "load", "iopath"} {
			runAblation(a, o)
		}
		return
	}
	if *fig != "" {
		for _, part := range strings.Split(*fig, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad figure %q\n", part)
				os.Exit(2)
			}
			runFigure(n, o)
		}
		ran = true
	}
	if *table != 0 {
		runTable(*table)
		ran = true
	}
	if *headline {
		runHeadline(o)
		ran = true
	}
	if *ablate != "" {
		runAblation(*ablate, o)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// outputFormat selects text/json/csv rendering for figure data.
var outputFormat = "text"

// sweepSeeds is the -seeds flag: how many derived seeds the
// single-config figures fan out over (1 = no sweep).
var sweepSeeds = 1

// effectiveParallel is the resolved worker-pool width, for the
// wall-clock banner.
var effectiveParallel = 1

// emitFigure renders a single-configuration figure, fanning it out
// across -seeds derived seeds when a sweep was requested. The sweep
// appends a "pooled" row merging all fleets, so quick runs can borrow
// statistical depth from breadth instead of -runtime.
func emitFigure(run func(core.ExpOptions) core.Distribution, o core.ExpOptions) {
	if sweepSeeds <= 1 {
		emitDistribution(run(o))
		return
	}
	sweep := core.RunSeedSweep(o, sweepSeeds, run)
	ds := append(sweep, core.MergeSweep("pooled", sweep))
	switch outputFormat {
	case "json":
		if err := core.WriteDistributionsJSON(os.Stdout, ds); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "csv":
		for _, d := range ds {
			if err := core.WriteDistributionCSV(os.Stdout, d); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		core.WriteComparisonTable(os.Stdout, ds)
	}
}

// emitDistribution renders one figure's distribution in the chosen format.
func emitDistribution(d core.Distribution) {
	switch outputFormat {
	case "json":
		if err := core.WriteDistributionJSON(os.Stdout, d); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "csv":
		if err := core.WriteDistributionCSV(os.Stdout, d); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		core.WriteDistributionTable(os.Stdout, d)
	}
}

func banner(format string, args ...any) {
	fmt.Printf("\n=== "+format+" ===\n", args...)
}

// wallBanner prints the per-experiment wall-clock cost and the pool
// width it was measured at. Wall time is the one number -parallel is
// allowed to change; everything above this line is seed-determined.
func wallBanner(t0 time.Time) {
	fmt.Printf("[%v wall, parallel=%d]\n", time.Since(t0).Round(time.Millisecond), effectiveParallel) //afalint:allow wallclock -- wall-clock cost banner
}

func runFigure(n int, o core.ExpOptions) {
	t0 := time.Now() //afalint:allow wallclock -- wall-clock cost banner, not simulated time
	switch n {
	case 6:
		banner("Fig 6: latency distributions, default configuration")
		emitFigure(core.RunFig6, o)
	case 7:
		banner("Fig 7: + FIO at SCHED_FIFO 99 (chrt)")
		emitFigure(core.RunFig7, o)
	case 8:
		banner("Fig 8: + CPU isolation boot options")
		emitFigure(core.RunFig8, o)
	case 9:
		banner("Fig 9: + IRQ affinity pinned (identical setup to Fig 13(a))")
		emitFigure(core.RunFig9, o)
	case 10:
		banner("Fig 10: latency scatter, 32 SSDs, periodic SMART spikes")
		r := core.RunFig10(o)
		if outputFormat == "csv" {
			if err := core.WriteFig10CSV(os.Stdout, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			core.WriteFig10Summary(os.Stdout, r)
		}
	case 11:
		banner("Fig 11: experimental firmware (SMART disabled)")
		emitFigure(core.RunFig11, o)
	case 12:
		banner("Fig 12: comparison of four system configurations")
		core.WriteComparisonTable(os.Stdout, core.RunFig12(o))
	case 13, 14:
		banner("Fig 13/14: latency vs number of SSDs per physical CPU core")
		results := core.RunFig13(o)
		var ds []core.Distribution
		for _, r := range results {
			ds = append(ds, r.Dist)
		}
		core.WriteComparisonTable(os.Stdout, ds)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (have 6-14)\n", n)
		os.Exit(2)
	}
	wallBanner(t0)
}

func runTable(n int) {
	switch n {
	case 1:
		banner("Table I: NVMe SSD specification")
		s := nvme.SpecTableI()
		fmt.Printf("%-30s %s\n", "Host Interface", s.HostInterface)
		fmt.Printf("%-30s %d\n", "Capacity (GB)", s.CapacityGB)
		fmt.Printf("%-30s %d / %d\n", "Random Read/Write (IOPS)", s.RandReadIOPS, s.RandWriteIOPS)
		fmt.Printf("%-30s %d / %d\n", "Sequential Read/Write (MB/s)", s.SeqReadMBps, s.SeqWriteMBps)
		fmt.Printf("%-30s %s\n", "NAND Type", s.NANDType)
	case 2:
		banner("Table II: varying number of SSDs / CPU core")
		core.WriteTableII(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (have 1 and 2)\n", n)
		os.Exit(2)
	}
}

func runHeadline(o core.ExpOptions) {
	banner("Headline: mean/σ of max latency, default vs tuned kernel")
	t0 := time.Now() //afalint:allow wallclock -- wall-clock cost banner, not simulated time
	core.WriteHeadline(os.Stdout, core.RunHeadline(o))
	wallBanner(t0)
}

func runAblation(kind string, o core.ExpOptions) {
	t0 := time.Now() //afalint:allow wallclock -- wall-clock cost banner, not simulated time
	switch kind {
	case "fw":
		banner("Ablation: firmware housekeeping variants (tuned kernel)")
		core.WriteComparisonTable(os.Stdout, core.RunFirmwareAblation(o))
	case "poll":
		banner("Ablation: interrupt vs polling completion (tuned kernel)")
		intr, poll := core.RunPollingAblation(o)
		core.WriteComparisonTable(os.Stdout, []core.Distribution{intr, poll})
	case "used":
		banner("Extension: FOB vs used (non-FOB) state, random writes")
		fob, used := core.RunUsedStateStudy(o, 0.9)
		core.WriteComparisonTable(os.Stdout, []core.Distribution{fob, used})
	case "future":
		banner("Section VI prototypes: how much manual tuning do better algorithms recover?")
		core.WriteComparisonTable(os.Stdout, core.RunFutureWorkAblation(o))
	case "tail":
		banner("Section I motivation: striped-client tail amplification vs stripe width")
		for _, cfg := range []core.Config{core.Default(), core.ExpFirmware()} {
			widths := []int{1, 4, 16}
			if o.NumSSDs >= 32 {
				widths = append(widths, 32)
			}
			fmt.Printf("-- %s --\n", cfg.Name)
			for _, r := range core.RunTailAtScale(cfg, widths, o) {
				fmt.Printf("width %2d: avg %8.1fµs  p99 %8.1fµs  max %8.1fµs  (p99 ×%.2f a single SSD)\n",
					r.Width, r.Client.Avg/1e3, float64(r.Client.P[0])/1e3,
					float64(r.Client.Max)/1e3, r.Amplification)
			}
		}
	case "pts":
		banner("SNIA PTS-E latency test: purge → rounds → steady state")
		rep := core.RunPTSLatencyTest(core.ExpFirmware(), o, 200*sim.Millisecond, 25)
		for i, r := range rep.Rounds {
			fmt.Printf("round %2d: fleet avg %.2fµs\n", i+1, r.AvgLatencyNs/1e3)
		}
		if rep.Result.Steady {
			fmt.Printf("steady state at round %d (excursion %.1f%%, slope %.1f%%)\n",
				rep.Result.SteadyAt, rep.Result.Excursion*100, rep.Result.Slope*100)
		} else {
			fmt.Println("steady state NOT reached")
		}
	case "coalesce":
		banner("Extension: NVMe interrupt coalescing (QD8)")
		off, on := core.RunCoalescingAblation(o)
		core.WriteComparisonTable(os.Stdout, []core.Distribution{off.Dist, on.Dist})
		fmt.Printf("interrupts/IO: %.2f → %.2f\n",
			float64(off.Interrupts)/float64(off.IOs), float64(on.Interrupts)/float64(on.IOs))
	case "faults":
		banner("Extension: degraded mode — clean vs faulted vs faulted+tolerant stripe")
		core.WriteFaultAblation(os.Stdout, core.RunFaultAblation(o))
	case "recovery":
		banner("Extension: drive drop-out and recovery under the tolerance stack")
		core.WriteRecoverySeries(os.Stdout, core.RunRecoverySeries(o))
	case "writes":
		banner("Extension: RMW write path — clean / degraded / +rebuild / +tolerance")
		core.WriteWriteAblation(os.Stdout, core.RunWriteAblation(o))
		if sweepSeeds > 1 {
			fmt.Printf("\ntolerant-arm write ladder, %d-seed sweep (pooled last):\n", sweepSeeds)
			sweep := core.RunSeedSweep(o, sweepSeeds, core.RunWriteLadder)
			core.WriteComparisonTable(os.Stdout, append(sweep, core.MergeSweep("pooled", sweep)))
		}
	case "hedging":
		banner("Extension: hedging policy — static quantile vs per-drive adaptive vs adaptive+budgets")
		core.WriteHedgingAblation(os.Stdout, core.RunHedgingAblation(o))
		if sweepSeeds > 1 {
			fmt.Printf("\nadaptive+budgets read ladder, %d-seed sweep (pooled last):\n", sweepSeeds)
			sweep := core.RunSeedSweep(o, sweepSeeds, core.RunHedgeLadder)
			core.WriteComparisonTable(os.Stdout, append(sweep, core.MergeSweep("pooled", sweep)))
		}
	case "load":
		banner("Extension: open-loop offered-load ladder — the load-vs-tail knee, with/without QoS admission")
		core.WriteLoadAblation(os.Stdout, core.RunLoadAblation(o))
		if sweepSeeds > 1 {
			fmt.Printf("\nadmission-arm per-class ladders at 110%% load, %d-seed sweep (pooled last):\n", sweepSeeds)
			sweep := core.RunSeedSweep(o, sweepSeeds, core.RunLoadLadder)
			core.WriteComparisonTable(os.Stdout, append(sweep, core.MergeSweep("pooled", sweep)))
		}
	case "iopath":
		banner("Extension: low-latency I/O path — {irq, coalesced, polling, passthrough} × {flash, ull}")
		core.WriteIOPathAblation(os.Stdout, core.RunIOPathAblation(o))
		if sweepSeeds > 1 {
			fmt.Printf("\null passthrough per-SSD ladders, %d-seed sweep (pooled last):\n", sweepSeeds)
			sweep := core.RunSeedSweep(o, sweepSeeds, core.RunIOPathLadder)
			core.WriteComparisonTable(os.Stdout, append(sweep, core.MergeSweep("pooled", sweep)))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown ablation %q (have fw, poll, used, future, coalesce, tail, pts, faults, recovery, writes, hedging, load, iopath)\n", kind)
		os.Exit(2)
	}
	wallBanner(t0)
}
