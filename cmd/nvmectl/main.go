// Command nvmectl is an nvme-cli-flavored admin tool for the simulated
// array: it boots one host's share and issues admin commands against the
// raw devices, the way the paper's methodology drives the real testbed
// (nvme format before every run, SMART log pages for health).
//
// Usage:
//
//	nvmectl list                      # enumerate devices (BIOS view)
//	nvmectl id-ctrl  -dev 3           # Identify Controller
//	nvmectl smart-log -dev 3          # SMART / health log page
//	nvmectl format   -dev 3           # NVMe format → FOB
//	nvmectl profile  [-dev 3]         # quick latency profile (one or all)
//
// Flags -ssds, -seed, -config select the simulated array.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	fs := flag.NewFlagSet("nvmectl", flag.ExitOnError)
	ssds := fs.Int("ssds", 64, "number of SSDs in the array")
	seed := fs.Uint64("seed", 1, "simulation seed")
	cfgName := fs.String("config", "irq", "kernel config: default|chrt|isolcpus|irq|expfw")
	dev := fs.Int("dev", -1, "target device index")

	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	sys := core.NewSystem(core.Options{NumSSDs: *ssds, Seed: *seed, Config: configByName(*cfgName)})

	switch cmd {
	case "list":
		list(sys)
	case "id-ctrl":
		idCtrl(sys, need(dev, *ssds))
	case "smart-log":
		smartLog(sys, need(dev, *ssds))
	case "format":
		format(sys, need(dev, *ssds))
	case "profile":
		profile(sys, *dev)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nvmectl <list|id-ctrl|smart-log|format|profile> [flags]")
	os.Exit(2)
}

func need(dev *int, n int) int {
	if *dev < 0 || *dev >= n {
		fmt.Fprintf(os.Stderr, "nvmectl: -dev must be in [0,%d)\n", n)
		os.Exit(2)
	}
	return *dev
}

func configByName(name string) core.Config {
	switch name {
	case "default":
		return core.Default()
	case "chrt":
		return core.CHRT()
	case "isolcpus":
		return core.Isolcpus()
	case "irq":
		return core.IRQAffinity()
	case "expfw":
		return core.ExpFirmware()
	}
	fmt.Fprintf(os.Stderr, "nvmectl: unknown config %q\n", name)
	os.Exit(2)
	panic("unreachable")
}

func list(sys *core.System) {
	fmt.Printf("%-12s %-16s %-14s %10s %8s\n", "Node", "Model", "Serial", "Capacity", "FW")
	for i, d := range sys.SSDs {
		var id nvme.IdentifyController
		got := false
		d.Identify(func(x nvme.IdentifyController) { id = x; got = true })
		sys.Eng.RunUntil(sys.Eng.Now().Add(sim.Millisecond))
		if !got {
			fmt.Fprintf(os.Stderr, "identify of nvme%d timed out\n", i)
			os.Exit(1)
		}
		fmt.Printf("/dev/nvme%-3d %-16s %-14s %7dGB %8s\n",
			i, id.ModelNumber, id.SerialNumber, id.TotalCapacityGB, id.FirmwareRev)
	}
}

func idCtrl(sys *core.System, dev int) {
	sys.SSDs[dev].Identify(func(id nvme.IdentifyController) {
		fmt.Printf("mn        : %s\n", id.ModelNumber)
		fmt.Printf("sn        : %s\n", id.SerialNumber)
		fmt.Printf("fr        : %s\n", id.FirmwareRev)
		fmt.Printf("tnvmcap   : %d GB\n", id.TotalCapacityGB)
		fmt.Printf("nn        : %d\n", id.NumNamespaces)
		fmt.Printf("mdts      : %d KiB\n", id.MaxTransferBytes/1024)
	})
	sys.Eng.RunUntil(sys.Eng.Now().Add(sim.Millisecond))
}

func smartLog(sys *core.System, dev int) {
	// Put some traffic on the device first so the counters mean something.
	sys.SSDs[dev].Submit(nvme.Command{Op: nvme.OpRead, LBA: 1}, func(nvme.Result) {})
	sys.Eng.RunUntil(sys.Eng.Now().Add(sim.Millisecond))
	sys.SSDs[dev].GetLogPage(func(log nvme.SMARTLog) {
		fmt.Printf("Smart Log for NVME device nvme%d\n", dev)
		fmt.Printf("power_on_ios            : %d\n", log.PowerOnIOs)
		fmt.Printf("smart_windows           : %d\n", log.SMARTWindows)
		fmt.Printf("ios_blocked_by_smart    : %d\n", log.MediaBlocked)
		fmt.Printf("firmware_build          : %s\n", log.FirmwareBuild)
	})
	sys.Eng.RunUntil(sys.Eng.Now().Add(sim.Millisecond))
}

func format(sys *core.System, dev int) {
	done := false
	sys.SSDs[dev].Format(func() { done = true })
	for !done {
		sys.Eng.RunUntil(sys.Eng.Now().Add(100 * sim.Millisecond))
	}
	fmt.Printf("Success formatting namespace 1 of /dev/nvme%d (device is FOB)\n", dev)
}

func profile(sys *core.System, dev int) {
	spec := core.RunSpec{Runtime: 200 * sim.Millisecond}
	if dev >= 0 {
		// Single-device profile: solo geometry on that SSD.
		g := soloFor(sys, dev)
		spec.Geometry = g
	}
	results := sys.RunFIO(spec)
	for i, r := range results {
		if r == nil {
			continue
		}
		fmt.Printf("nvme%-3d %s\n", i, r.Ladder.String())
	}
}

func soloFor(sys *core.System, dev int) *topology.Geometry {
	g := topology.DefaultGeometry(sys.Host, len(sys.SSDs))
	for i := range g.ThreadCPU {
		if i != dev {
			g.ThreadCPU[i] = -1
		}
	}
	return g
}
