// Command afalint enforces the simulator's determinism contract: the
// property that the same seed always yields the same latency
// distributions, which every figure and A/B kernel comparison in this
// reproduction depends on.
//
// Usage:
//
//	afalint [flags] [patterns]
//
//	afalint ./...                 # lint the whole module (the default)
//	afalint ./internal/sim        # one package
//	afalint ./internal/...        # a subtree
//	afalint -rules                # describe the rules and exit
//	afalint -json ./...           # findings as JSON
//
//	# lint a bare directory (e.g. the fixture corpus) as if it were
//	# the named package; the import path controls rule scoping:
//	afalint -as repro/internal/sim ./internal/lint/testdata/nogoroutine
//
// Findings print as file:line:col with the rule name; the exit status
// is 0 when clean, 1 when findings exist, and 2 on a usage or load
// error. A finding is suppressed by annotating the offending line (or
// the line above) with:
//
//	//afalint:allow <rule> [<rule>...] -- <reason>
//
// The same rules also run inside `go test ./...` via the self-check
// test in internal/lint, so the contract cannot regress silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		asJSON    = flag.Bool("json", false, "emit findings as a JSON array")
		listRules = flag.Bool("rules", false, "describe the determinism rules and exit")
		asPath    = flag.String("as", "", "lint a single directory under this import path (scope override)")
	)
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, modPath)

	var selected []*lint.Package
	if *asPath != "" {
		if len(patterns) != 1 || strings.HasSuffix(patterns[0], "...") {
			fatal(fmt.Errorf("-as requires exactly one directory argument"))
		}
		p, err := loader.LoadDir(patterns[0], *asPath)
		if err != nil {
			fatal(err)
		}
		selected = []*lint.Package{p}
	} else {
		pkgs, err := loader.LoadModule()
		if err != nil {
			fatal(err)
		}
		for _, p := range pkgs {
			if matchesAny(p, patterns, root, modPath, cwd) {
				selected = append(selected, p)
			}
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	findings := lint.Run(selected, lint.AllRules())
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "afalint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "afalint:", err)
	os.Exit(2)
}

// matchesAny reports whether package p matches one of the patterns.
// Supported forms: "./..." and "..." (everything), "dir/..." subtrees,
// plain directories, and import paths with or without a trailing /...
func matchesAny(p *lint.Package, patterns []string, root, modPath, cwd string) bool {
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			return true
		}
		// Normalize a filesystem-style pattern to an import path.
		target := pat
		subtree := false
		if rest, ok := strings.CutSuffix(target, "/..."); ok {
			subtree = true
			target = rest
		}
		if strings.HasPrefix(pat, ".") || strings.Contains(pat, string(filepath.Separator)) && !strings.HasPrefix(pat, modPath) {
			abs, err := filepath.Abs(filepath.Join(cwd, target))
			if err != nil {
				continue
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				continue
			}
			if rel == "." {
				target = modPath
			} else {
				target = modPath + "/" + filepath.ToSlash(rel)
			}
		}
		if p.Path == target || (subtree && strings.HasPrefix(p.Path, target+"/")) {
			return true
		}
	}
	return false
}
