// Command afalint enforces the simulator's determinism contract: the
// property that the same seed always yields the same latency
// distributions, which every figure and A/B kernel comparison in this
// reproduction depends on.
//
// Usage:
//
//	afalint [flags] [patterns]
//
//	afalint ./...                 # lint the whole module (the default)
//	afalint ./internal/sim        # one package
//	afalint ./internal/...        # a subtree
//	afalint -rules                # describe the rules and exit
//	afalint -doc                  # emit the rule table as markdown
//	afalint -json ./...           # findings as JSON
//	afalint -gha ./...            # findings as GitHub Actions annotations
//
//	# run the afaperf performance family (hot-set rules) instead of the
//	# determinism contract; optionally cross-check hotalloc candidates
//	# against compiler escape analysis:
//	afalint -perf ./...
//	go build -gcflags='-m -m' ./... 2>escape.txt
//	afalint -perf -escape-data escape.txt ./...
//
//	# run the state-integrity family instead: must-assign field
//	# coverage for pooled objects, Reset() methods, and
//	# Snapshot()/Clone() methods, plus package-level-state and
//	# use-after-recycle checks (ledger: lint_state.baseline):
//	afalint -state ./...
//	afalint -state -baseline lint_state.baseline ./...
//
//	# lint a bare directory (e.g. the fixture corpus) as if it were
//	# the named package; the import path controls rule scoping:
//	afalint -as repro/internal/sim ./internal/lint/testdata/nogoroutine
//
//	# record today's findings as accepted debt, then run against it:
//	afalint -write-baseline lint.baseline ./...
//	afalint -baseline lint.baseline ./...
//
// Findings print as file:line:col with the rule name, sorted by
// position so output is byte-stable across runs; the exit status is 0
// when clean (or when every finding is covered by the -baseline file),
// 1 when findings remain, and 2 on a usage or load error. Baseline
// entries no current finding matches are reported as stale on stderr.
// A finding is suppressed permanently by annotating the offending line
// (or the line above) with:
//
//	//afalint:allow <rule> [<rule>...] -- <reason>
//
// The same rules also run inside `go test ./...` via the self-check
// test in internal/lint, so the contract cannot regress silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		asJSON        = flag.Bool("json", false, "emit findings as a JSON array")
		asGHA         = flag.Bool("gha", false, "emit findings as GitHub Actions ::error annotations")
		listRules     = flag.Bool("rules", false, "describe the determinism rules and exit")
		asDoc         = flag.Bool("doc", false, "emit the rule table as markdown and exit")
		asPath        = flag.String("as", "", "lint a single directory under this import path (scope override)")
		baselinePath  = flag.String("baseline", "", "filter findings through this baseline file; stale entries warn on stderr")
		writeBaseline = flag.String("write-baseline", "", "record current findings to this baseline file and exit")
		perf          = flag.Bool("perf", false, "run the afaperf hot-set performance rules instead of the determinism contract")
		state         = flag.Bool("state", false, "run the state-integrity rules (pool/reset/snapshot field coverage) instead of the determinism contract")
		escapeData    = flag.String("escape-data", "", "with -perf: narrow hotalloc to sites in this `go build -gcflags=-m` output")
	)
	flag.Parse()

	if *listRules {
		for _, fam := range ruleFamilies() {
			fmt.Printf("%s:\n", fam.title)
			for _, r := range fam.rules {
				fmt.Printf("  %-14s %s\n", r.Name(), r.Doc())
			}
		}
		return
	}
	if *asDoc {
		fmt.Print(ruleDoc())
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, modPath)

	var selected []*lint.Package
	if *asPath != "" {
		if len(patterns) != 1 || strings.HasSuffix(patterns[0], "...") {
			fatal(fmt.Errorf("-as requires exactly one directory argument"))
		}
		p, err := loader.LoadDir(patterns[0], *asPath)
		if err != nil {
			fatal(err)
		}
		selected = []*lint.Package{p}
	} else {
		pkgs, err := loader.LoadModule()
		if err != nil {
			fatal(err)
		}
		for _, p := range pkgs {
			if matchesAny(p, patterns, root, modPath, cwd) {
				selected = append(selected, p)
			}
		}
	}
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	if *perf && *state {
		fatal(fmt.Errorf("-perf and -state are mutually exclusive; run them as separate passes"))
	}
	rules := lint.AllRules()
	var esc *lint.EscapeIndex
	switch {
	case *perf:
		rules = lint.PerfRules()
		if *escapeData != "" {
			data, err := os.ReadFile(*escapeData)
			if err != nil {
				fatal(err)
			}
			esc = lint.ParseEscapeOutput(data)
			fmt.Fprintf(os.Stderr, "afalint: escape data covers %d allocation site(s)\n", esc.Len())
		}
	case *state:
		rules = lint.StateRules()
	}
	if !*perf && *escapeData != "" {
		fatal(fmt.Errorf("-escape-data only applies with -perf"))
	}

	findings := lint.RunWithEscape(selected, rules, esc)
	// Run sorts, but output order is this command's contract with CI
	// diffing and the baseline file: keep it byte-stable here regardless
	// of how the library evolves.
	lint.SortFindings(findings)

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, lint.WriteBaseline(findings, root), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "afalint: recorded %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		b, err := lint.ParseBaseline(data)
		if err != nil {
			fatal(err)
		}
		kept, suppressed, stale := b.Filter(findings, root)
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "afalint: stale baseline entry (fixed? delete it): %s\n", s)
		}
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "afalint: %d finding(s) covered by baseline %s\n", suppressed, *baselinePath)
		}
		findings = kept
	}

	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	case *asGHA:
		for _, f := range findings {
			fmt.Println(ghaAnnotation(f, root))
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "afalint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// ghaAnnotation renders one finding as a GitHub Actions workflow
// command so CI failures annotate the offending line in the diff view.
// Paths are relativized to the module root (GitHub resolves them
// against the checkout). The message escaping follows the workflow
// command spec: %, CR, and LF in the free text.
func ghaAnnotation(f lint.Finding, root string) string {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=afalint/%s::%s",
		file, f.Pos.Line, f.Pos.Column, f.Rule, esc.Replace(f.Msg))
}

// ruleFamily groups one rule set under its banner for -rules and -doc.
type ruleFamily struct {
	title string
	rules []lint.Rule
}

func ruleFamilies() []ruleFamily {
	return []ruleFamily{
		{"determinism contract (default)", lint.AllRules()},
		{"performance contract (-perf)", lint.PerfRules()},
		{"state-integrity contract (-state)", lint.StateRules()},
	}
}

// ruleDoc renders the rule table as markdown, the generated half of the
// rule documentation in README.md and DESIGN.md §5/§8. Both families
// share one table; the scope column says where each rule applies.
func ruleDoc() string {
	var sb strings.Builder
	sb.WriteString("| Rule | Scope | What it enforces |\n")
	sb.WriteString("|------|-------|------------------|\n")
	for _, fam := range ruleFamilies() {
		for _, r := range fam.rules {
			sb.WriteString(fmt.Sprintf("| `%s` | %s | %s |\n", r.Name(), r.Scope(), r.Doc()))
		}
	}
	return sb.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "afalint:", err)
	os.Exit(2)
}

// matchesAny reports whether package p matches one of the patterns.
// Supported forms: "./..." and "..." (everything), "dir/..." subtrees,
// plain directories, and import paths with or without a trailing /...
func matchesAny(p *lint.Package, patterns []string, root, modPath, cwd string) bool {
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			return true
		}
		// Normalize a filesystem-style pattern to an import path.
		target := pat
		subtree := false
		if rest, ok := strings.CutSuffix(target, "/..."); ok {
			subtree = true
			target = rest
		}
		if strings.HasPrefix(pat, ".") || strings.Contains(pat, string(filepath.Separator)) && !strings.HasPrefix(pat, modPath) {
			abs, err := filepath.Abs(filepath.Join(cwd, target))
			if err != nil {
				continue
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				continue
			}
			if rel == "." {
				target = modPath
			} else {
				target = modPath + "/" + filepath.ToSlash(rel)
			}
		}
		if p.Path == target || (subtree && strings.HasPrefix(p.Path, target+"/")) {
			return true
		}
	}
	return false
}
