// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation section. Each benchmark runs the corresponding
// experiment end-to-end on the simulated testbed and reports the figure's
// key numbers as benchmark metrics; the -v run also prints the full table
// once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set. Simulated runtime per FIO instance is
// 500 ms by default (the paper's runs are 120 s; see EXPERIMENTS.md for
// the time-compression rules) — set REPRO_FULL=1 for full-length runs.
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

func benchOpts() core.ExpOptions {
	o := core.ExpOptions{
		Runtime:  500 * sim.Millisecond,
		Seed:     2018,
		NumSSDs:  64,
		SoloRuns: 4,
	}
	if os.Getenv("REPRO_FULL") != "" {
		o.Runtime = 120 * sim.Second
		o.SoloRuns = 64
	}
	// REPRO_PARALLEL caps the worker pool for fan-out experiments; unset
	// means one worker per CPU. Results are identical at any width.
	if n, _ := strconv.Atoi(os.Getenv("REPRO_PARALLEL")); n > 0 {
		o.Parallel = n
	}
	return o
}

var printOnce sync.Map

func printTable(b *testing.B, key string, f func()) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); !done && testing.Verbose() {
		f()
	}
}

func reportDistribution(b *testing.B, d core.Distribution) {
	b.ReportMetric(d.Summary.Mean[0]/1e3, "avg-µs")
	b.ReportMetric(d.Summary.Mean[stats.NumRungs-1]/1e3, "mean-max-µs")
	b.ReportMetric(d.Summary.Std[stats.NumRungs-1]/1e3, "std-max-µs")
}

func benchDistribution(b *testing.B, key string, run func(core.ExpOptions) core.Distribution) {
	o := benchOpts()
	var d core.Distribution
	for i := 0; i < b.N; i++ {
		d = run(o)
	}
	printTable(b, key, func() { core.WriteDistributionTable(os.Stdout, d) })
	reportDistribution(b, d)
}

// BenchmarkFig06Default reproduces Fig 6: latency distributions of 64 SSDs
// under the default system configuration (wide spread from 5-nines, worst
// case in the milliseconds).
func BenchmarkFig06Default(b *testing.B) {
	benchDistribution(b, "fig6", core.RunFig6)
}

// BenchmarkFig07CHRT reproduces Fig 7: FIO at the highest priority; the
// worst case collapses to the ~600 µs firmware floor.
func BenchmarkFig07CHRT(b *testing.B) {
	benchDistribution(b, "fig7", core.RunFig7)
}

// BenchmarkFig08Isolcpus reproduces Fig 8: CPU isolation boot options
// tighten the 2-nines..5-nines rungs further.
func BenchmarkFig08Isolcpus(b *testing.B) {
	benchDistribution(b, "fig8", core.RunFig8)
}

// BenchmarkFig09IRQAffinity reproduces Fig 9: pinning all vectors makes
// the 64 SSDs' distributions converge (σ of avg collapses).
func BenchmarkFig09IRQAffinity(b *testing.B) {
	benchDistribution(b, "fig9", core.RunFig9)
}

// BenchmarkFig10Scatter reproduces Fig 10: raw latency samples from 32
// SSDs showing the periodic SMART spike train.
func BenchmarkFig10Scatter(b *testing.B) {
	o := benchOpts()
	var r core.Fig10Result
	for i := 0; i < b.N; i++ {
		r = core.RunFig10(o)
	}
	printTable(b, "fig10", func() { core.WriteFig10Summary(os.Stdout, r) })
	b.ReportMetric(float64(len(r.SpikeClusters)), "spike-clusters")
	b.ReportMetric(float64(r.SMARTWindows), "smart-windows")
	if len(r.SpikeClusters) == 0 {
		b.Fatal("no SMART spike clusters detected")
	}
}

// BenchmarkFig11ExpFirmware reproduces Fig 11: the experimental firmware
// (SMART disabled) removes the tail floor (paper: ≈600 µs → ≈90 µs).
func BenchmarkFig11ExpFirmware(b *testing.B) {
	benchDistribution(b, "fig11", core.RunFig11)
}

// BenchmarkFig12Comparison reproduces Fig 12: mean and standard deviation
// of every percentile rung across the four kernel configurations.
func BenchmarkFig12Comparison(b *testing.B) {
	o := benchOpts()
	var ds []core.Distribution
	for i := 0; i < b.N; i++ {
		ds = core.RunFig12(o)
	}
	printTable(b, "fig12", func() { core.WriteComparisonTable(os.Stdout, ds) })
	maxRung := stats.NumRungs - 1
	b.ReportMetric(ds[0].Summary.Std[maxRung]/1e3, "default-std-max-µs")
	b.ReportMetric(ds[3].Summary.Std[maxRung]/1e3, "irq-std-max-µs")
}

// BenchmarkFig13Balance reproduces Fig 13: latency distributions for 4, 2,
// and 1 SSDs per physical core and for a single FIO thread, merged over
// disjoint-SSD runs per Table II.
func BenchmarkFig13Balance(b *testing.B) {
	o := benchOpts()
	var rs []core.Fig13Result
	for i := 0; i < b.N; i++ {
		rs = core.RunFig13(o)
	}
	printTable(b, "fig13", func() {
		core.WriteTableII(os.Stdout)
		var ds []core.Distribution
		for _, r := range rs {
			ds = append(ds, r.Dist)
		}
		core.WriteComparisonTable(os.Stdout, ds)
	})
	b.ReportMetric(rs[0].Dist.Summary.Mean[0]/1e3, "4perCore-avg-µs")
	b.ReportMetric(rs[3].Dist.Summary.Mean[0]/1e3, "solo-avg-µs")
}

// BenchmarkFig14BalanceSummary reproduces Fig 14 (the mean/σ summary of
// the Fig 13 data): cross-SSD aggregates per Table II setup.
func BenchmarkFig14BalanceSummary(b *testing.B) {
	o := benchOpts()
	var rs []core.Fig13Result
	for i := 0; i < b.N; i++ {
		rs = core.RunFig13(o)
	}
	printTable(b, "fig14", func() {
		var ds []core.Distribution
		for _, r := range rs {
			ds = append(ds, r.Dist)
		}
		core.WriteComparisonTable(os.Stdout, ds)
	})
	for _, r := range rs {
		_ = r
	}
	b.ReportMetric(rs[0].Dist.Summary.Std[0]/1e3, "4perCore-std-avg-µs")
	b.ReportMetric(rs[2].Dist.Summary.Std[0]/1e3, "1perCore-std-avg-µs")
}

// BenchmarkTableISpec verifies the Table I device model: a standalone read
// must hit the 25 µs design latency (+5 µs through the fabric).
func BenchmarkTableISpec(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 64
	var d core.Distribution
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: core.ExpFirmware()})
		res := sys.RunFIO(core.RunSpec{Runtime: 200 * sim.Millisecond})
		d = core.NewDistribution("tableI", res)
	}
	b.ReportMetric(d.Summary.Mean[0]/1e3, "avg-µs")
	if avg := d.Summary.Mean[0] / 1e3; avg < 28 || avg > 60 {
		b.Fatalf("avg read latency %.1fµs out of the Table I envelope", avg)
	}
}

// BenchmarkTableIIMatrix regenerates Table II (static, but kept as a bench
// so every table has one harness entry).
func BenchmarkTableIIMatrix(b *testing.B) {
	var rows []core.TableIIRow
	for i := 0; i < b.N; i++ {
		rows = core.TableII()
	}
	printTable(b, "tableII", func() { core.WriteTableII(os.Stdout) })
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkHeadline measures the abstract's claim: mean(max) ×8 and σ(max)
// ×400 between the default and the finely tuned kernel.
func BenchmarkHeadline(b *testing.B) {
	o := benchOpts()
	var h core.Headline
	for i := 0; i < b.N; i++ {
		h = core.RunHeadline(o)
	}
	printTable(b, "headline", func() { core.WriteHeadline(os.Stdout, h) })
	b.ReportMetric(h.MeanImprovement(), "mean-improvement-x")
	b.ReportMetric(h.StdImprovement(), "std-improvement-x")
	if h.MeanImprovement() < 2 || h.StdImprovement() < 10 {
		b.Fatalf("headline improvements too small: ×%.1f / ×%.1f",
			h.MeanImprovement(), h.StdImprovement())
	}
}

// BenchmarkAblationFirmware compares the three firmware builds (Section V's
// better-housekeeping-protocol discussion).
func BenchmarkAblationFirmware(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 16
	var ds []core.Distribution
	for i := 0; i < b.N; i++ {
		ds = core.RunFirmwareAblation(o)
	}
	printTable(b, "abl-fw", func() { core.WriteComparisonTable(os.Stdout, ds) })
	b.ReportMetric(ds[0].Summary.Mean[6]/1e3, "standard-max-µs")
	b.ReportMetric(ds[1].Summary.Mean[6]/1e3, "nosmart-max-µs")
	b.ReportMetric(ds[2].Summary.Mean[6]/1e3, "incremental-max-µs")
}

// BenchmarkAblationPolling compares interrupt vs polling completion
// (Section V's poll-vs-interrupt discussion).
func BenchmarkAblationPolling(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 16
	o.Runtime = 200 * sim.Millisecond
	var intr, poll core.Distribution
	for i := 0; i < b.N; i++ {
		intr, poll = core.RunPollingAblation(o)
	}
	printTable(b, "abl-poll", func() {
		core.WriteComparisonTable(os.Stdout, []core.Distribution{intr, poll})
	})
	b.ReportMetric(intr.Summary.Mean[0]/1e3, "interrupt-avg-µs")
	b.ReportMetric(poll.Summary.Mean[0]/1e3, "polling-avg-µs")
}

// BenchmarkAblationUsedState runs the paper's stated future work: FOB vs
// used (non-FOB) state with garbage collection in the foreground.
func BenchmarkAblationUsedState(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 8
	var fob, used core.Distribution
	for i := 0; i < b.N; i++ {
		fob, used = core.RunUsedStateStudy(o, 0.9)
	}
	printTable(b, "abl-used", func() {
		core.WriteComparisonTable(os.Stdout, []core.Distribution{fob, used})
	})
	b.ReportMetric(fob.Summary.Mean[6]/1e3, "fob-max-µs")
	b.ReportMetric(used.Summary.Mean[6]/1e3, "used-max-µs")
}

// BenchmarkAblationFutureWork evaluates the Section VI prototypes — the
// auto-isolating scheduler and the affinity-aware IRQ balancer — against
// the stock default and the hand-tuned kernel.
func BenchmarkAblationFutureWork(b *testing.B) {
	o := benchOpts()
	var ds []core.Distribution
	for i := 0; i < b.N; i++ {
		ds = core.RunFutureWorkAblation(o)
	}
	printTable(b, "abl-future", func() { core.WriteComparisonTable(os.Stdout, ds) })
	b.ReportMetric(ds[0].Summary.Mean[0]/1e3, "default-avg-µs")
	b.ReportMetric(ds[3].Summary.Mean[0]/1e3, "auto-both-avg-µs")
	b.ReportMetric(ds[4].Summary.Mean[0]/1e3, "manual-avg-µs")
}

// BenchmarkAblationCoalescing quantifies the interrupt-storm trade-off:
// NVMe interrupt coalescing at QD8.
func BenchmarkAblationCoalescing(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 16
	o.Runtime = 200 * sim.Millisecond
	var off, on core.CoalescingResult
	for i := 0; i < b.N; i++ {
		off, on = core.RunCoalescingAblation(o)
	}
	printTable(b, "abl-coalesce", func() {
		core.WriteComparisonTable(os.Stdout, []core.Distribution{off.Dist, on.Dist})
	})
	b.ReportMetric(float64(off.Interrupts)/float64(off.IOs), "irq-per-io-off")
	b.ReportMetric(float64(on.Interrupts)/float64(on.IOs), "irq-per-io-on")
}

// BenchmarkTailAtScale quantifies the Section I motivation: client-visible
// latency of striped requests versus stripe width, under the tuned stack.
func BenchmarkTailAtScale(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 32
	o.Runtime = 300 * sim.Millisecond
	var rs []core.TailAtScaleResult
	for i := 0; i < b.N; i++ {
		rs = core.RunTailAtScale(core.ExpFirmware(), []int{1, 8, 32}, o)
	}
	printTable(b, "tailatscale", func() {
		for _, r := range rs {
			fmt.Printf("width %2d: client p99 %.1fµs (×%.2f a single SSD's)\n",
				r.Width, float64(r.Client.P[0])/1e3, r.Amplification)
		}
	})
	b.ReportMetric(float64(rs[0].Client.P[0])/1e3, "w1-p99-µs")
	b.ReportMetric(float64(rs[2].Client.P[0])/1e3, "w32-p99-µs")
	b.ReportMetric(rs[2].Amplification, "w32-amplification-x")
}

// BenchmarkParallelSpeedup measures the orchestration layer's win on the
// suite's two big fan-outs — the four-config Fig 12 sweep and the Table II
// geometry matrix behind Fig 13 — by timing the same work at -parallel 1
// and at the default pool width. The ratio is the headline metric
// (speedup-x); a BENCH_parallel.json summary is written through the
// export path. The metric is informational, not asserted: on a 1-CPU
// host the honest answer is ~1×, and anything else would mean the merge
// was cheating. With ≥8 cores the suite targets ≥3×.
func BenchmarkParallelSpeedup(b *testing.B) {
	o := benchOpts()
	o.Runtime = 200 * sim.Millisecond
	suite := func(o core.ExpOptions) {
		core.RunFig12(o)
		core.RunFig13(o)
	}
	var row core.ParallelBenchRow
	for i := 0; i < b.N; i++ {
		serial := o
		serial.Parallel = 1
		t0 := time.Now() //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		suite(serial)
		serialDur := time.Since(t0) //afalint:allow wallclock -- measuring host wall-clock, not simulated time

		wide := o
		wide.Parallel = 0 // one worker per CPU
		t1 := time.Now()  //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		suite(wide)
		wideDur := time.Since(t1) //afalint:allow wallclock -- measuring host wall-clock, not simulated time

		row = core.ParallelBenchRow{
			Experiment: "fig12+fig13",
			Parallel:   runner.DefaultParallel(),
			SerialMs:   float64(serialDur) / 1e6,
			ParallelMs: float64(wideDur) / 1e6,
			Speedup:    float64(serialDur) / float64(wideDur),
		}
	}
	b.ReportMetric(row.Speedup, "speedup-x")
	b.ReportMetric(row.SerialMs, "serial-ms")
	b.ReportMetric(row.ParallelMs, "parallel-ms")
	f, err := os.Create("BENCH_parallel.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteParallelBenchJSON(f, []core.ParallelBenchRow{row}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWritePath runs the four-arm degraded-write ablation — clean
// RMW, degraded, degraded + rebuild, and the full write-tolerance stack —
// at -parallel 1 and the default pool width, reporting the tolerant arm's
// hedge-bounded maximum against the untolerant rebuild arm's timeout
// tail, plus the rebuild stream's progress. A BENCH_writes.json summary
// is written through the same export path as BENCH_parallel.json so CI
// can archive the write-path trajectory per commit.
func BenchmarkWritePath(b *testing.B) {
	o := benchOpts()
	o.NumSSDs = 16
	o.Runtime = 300 * sim.Millisecond
	var rs []core.WriteRun
	var row core.ParallelBenchRow
	for i := 0; i < b.N; i++ {
		serial := o
		serial.Parallel = 1
		t0 := time.Now() //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		rs = core.RunWriteAblation(serial)
		serialDur := time.Since(t0) //afalint:allow wallclock -- measuring host wall-clock, not simulated time

		wide := o
		wide.Parallel = 0 // one worker per CPU
		t1 := time.Now()  //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		core.RunWriteAblation(wide)
		wideDur := time.Since(t1) //afalint:allow wallclock -- measuring host wall-clock, not simulated time

		row = core.ParallelBenchRow{
			Experiment: "write-ablation",
			Parallel:   runner.DefaultParallel(),
			SerialMs:   float64(serialDur) / 1e6,
			ParallelMs: float64(wideDur) / 1e6,
			Speedup:    float64(serialDur) / float64(wideDur),
		}
	}
	printTable(b, "writes", func() { core.WriteWriteAblation(os.Stdout, rs) })
	maxRung := stats.NumRungs - 1
	b.ReportMetric(rs[3].Ladder.Rung(maxRung)/1e3, "tolerant-max-µs")
	b.ReportMetric(rs[2].Ladder.Rung(maxRung)/1e3, "untolerant-max-µs")
	if rb := rs[3].Rebuild; rb != nil {
		b.ReportMetric(float64(rb.StripesRebuilt), "stripes-rebuilt")
	}
	b.ReportMetric(row.Speedup, "speedup-x")
	if tol, untol := rs[3].Ladder.Rung(maxRung), rs[2].Ladder.Rung(maxRung); tol >= untol {
		b.Fatalf("tolerant max %.1fµs not below untolerant max %.1fµs", tol/1e3, untol/1e3)
	}
	f, err := os.Create("BENCH_writes.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteParallelBenchJSON(f, []core.ParallelBenchRow{row}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineThroughput measures the simulator's own inner loop:
// discrete events per wall-clock second on the headline configuration
// (64 SSDs, default kernel, one QD1 FIO thread per device). Every
// figure, ablation, and sweep in this repository is a multiple of this
// number, so it is tracked per commit in BENCH_engine.json like the
// parallel and write-path benches. The afaperf rules (`afalint -perf`)
// police the hot set this benchmark exercises; EXPERIMENTS.md records
// the before/after of the PR-6 hot-path overhaul.
func BenchmarkEngineThroughput(b *testing.B) {
	o := benchOpts()
	var row core.EngineBenchRow
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Options{NumSSDs: o.NumSSDs, Seed: o.Seed})
		t0 := time.Now() //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		res := sys.RunFIO(core.RunSpec{Runtime: o.Runtime})
		wall := time.Since(t0) //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		var ios int64
		for _, r := range res {
			if r != nil {
				ios += r.IOs
			}
		}
		row = core.EngineBenchRow{
			Experiment:   "headline-64ssd",
			NumSSDs:      o.NumSSDs,
			Events:       int64(sys.Eng.Steps()),
			IOs:          ios,
			WallMs:       float64(wall) / 1e6,
			EventsPerSec: float64(sys.Eng.Steps()) / wall.Seconds(),
		}
	}
	b.ReportMetric(row.EventsPerSec/1e6, "Mevents/sec")
	b.ReportMetric(float64(row.Events), "events")
	b.ReportMetric(float64(row.IOs), "ios")
	if row.Events == 0 || row.IOs == 0 {
		b.Fatalf("engine throughput run fired %d events for %d IOs; the workload did not run", row.Events, row.IOs)
	}
	updateEngineBench(b, row)
}

// updateEngineBench merges rows into BENCH_engine.json keyed by
// experiment name, preserving rows other benchmarks wrote. The
// headline-64ssd row is pinned first so scripts/bench-guard.sh's
// first-match extraction keeps reading the engine figure no matter
// which benchmark ran last.
func updateEngineBench(b *testing.B, rows ...core.EngineBenchRow) {
	b.Helper()
	var merged []core.EngineBenchRow
	if data, err := os.ReadFile("BENCH_engine.json"); err == nil {
		// A stale or hand-edited file that fails to parse is replaced
		// wholesale rather than failing the benchmark.
		_ = json.Unmarshal(data, &merged)
	}
	for _, row := range rows {
		replaced := false
		for i := range merged {
			if merged[i].Experiment == row.Experiment {
				merged[i] = row
				replaced = true
				break
			}
		}
		if !replaced {
			merged = append(merged, row)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return (merged[i].Experiment == "headline-64ssd") && (merged[j].Experiment != "headline-64ssd")
	})
	f, err := os.Create("BENCH_engine.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteEngineBenchJSON(f, merged); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIOPathLatency is the acceptance benchmark for the
// low-latency I/O-path tier (PR 10): the full 4-arm × 2-device grid
// runs end-to-end, the per-arm mean latencies on the ULL device are
// reported as ns/io metrics, and the three headline ULL rows
// (iopath-ull-irq, iopath-ull-polling, iopath-ull-passthrough) land in
// BENCH_engine.json with mean_lat_ns set, where scripts/bench-guard.sh
// gates them per commit: these are simulated latencies, so unlike the
// wall-clock rates they are machine-independent and any drift is a
// model change, not noise.
func BenchmarkIOPathLatency(b *testing.B) {
	o := benchOpts()
	var runs []core.IOPathRun
	for i := 0; i < b.N; i++ {
		runs = core.RunIOPathAblation(o)
	}
	var rows []core.EngineBenchRow
	for _, r := range runs {
		if r.Device != "ull" || r.Arm == "coalesced" {
			continue
		}
		b.ReportMetric(r.Mean(), "ns/io-"+r.Arm)
		rows = append(rows, core.EngineBenchRow{
			Experiment: "iopath-ull-" + r.Arm,
			NumSSDs:    o.NumSSDs,
			IOs:        r.IOs,
			MeanLatNs:  r.Mean(),
		})
	}
	if len(rows) != 3 {
		b.Fatalf("grid produced %d ULL headline rows, want 3", len(rows))
	}
	if testing.Verbose() {
		core.WriteIOPathAblation(os.Stdout, runs)
	}
	updateEngineBench(b, rows...)
}

// addMuxTenants populates a multiplexer with the benchmark's tenant
// mix — 20% latency-sensitive Poisson readers, 50% bursty MMPP readers,
// 30% diurnal background writers — splitting the aggregate offered rate
// evenly so only the population size varies between sub-benchmarks.
func addMuxTenants(mux *fio.Multiplexer, tenants, numSSDs int, offered float64) {
	for t := 0; t < tenants; t++ {
		spec := fio.TenantSpec{
			SSD:     t % numSSDs,
			Arrival: fio.ArrivalSpec{Rate: offered / float64(tenants)},
		}
		switch m := t % 10; {
		case m < 2:
			spec.Class, spec.RW = kernel.ClassLatency, fio.RandRead
			spec.Arrival.Kind = fio.ArrivalPoisson
		case m < 7:
			spec.Class, spec.RW = kernel.ClassThroughput, fio.RandRead
			spec.Arrival.Kind = fio.ArrivalMMPP
		default:
			spec.Class, spec.RW = kernel.ClassBackground, fio.RandWrite
			spec.Arrival.Kind = fio.ArrivalDiurnal
		}
		mux.AddTenant(spec)
	}
}

// benchTenantMux drives the open-loop tenant multiplexer on the 64-SSD
// array at a fixed aggregate offered rate, varying only the tenant
// population — so the arrivals/sec figure isolates the per-tenant cost
// of the timer wheel, not the array's service rate. Boot and AddTenant
// run with the timer stopped; the timed region is exactly the mux run,
// and the malloc delta across it (allocs/arrival) proves the
// steady-state per-arrival path allocates nothing.
func benchTenantMux(b *testing.B, tenants int, name string) {
	o := benchOpts()
	o.Runtime = 100 * sim.Millisecond
	const offered = 2e6 // aggregate I/Os per second, below the array's knee
	b.ReportAllocs()
	var row core.EngineBenchRow
	var allocsPerArrival float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := core.NewSystem(core.Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: core.IRQAffinity()})
		sys.Eng.RunUntil(sys.Eng.Now().Add(50 * sim.Millisecond))
		// Warm each device's lazily-built FTL write structures here so
		// the first background write inside the timed region doesn't
		// charge the one-time per-device init to allocs/arrival.
		for _, d := range sys.SSDs {
			d.Flash.Precondition(0)
		}
		// Warm-up: run the same population once, untimed, so the kernel
		// and NVMe request pools, the engine's event heap, and the FTL
		// write state sit at their steady-state high-water marks before
		// the measured run — the timed region then sees per-arrival work
		// plus only the amortized block-open cost of the media model.
		warm := fio.NewMultiplexer(sys.Eng, sys.Kernel, fio.MuxConfig{
			Name:    name + "-warm",
			Runtime: o.Runtime / 2,
			Seed:    o.Seed + 1,
			CPUs:    sys.Host.WorkloadCPUs(),
		})
		addMuxTenants(warm, tenants, o.NumSSDs, offered)
		warm.Run()
		mux := fio.NewMultiplexer(sys.Eng, sys.Kernel, fio.MuxConfig{
			Name:    name,
			Runtime: o.Runtime,
			Seed:    o.Seed,
			CPUs:    sys.Host.WorkloadCPUs(),
		})
		addMuxTenants(mux, tenants, o.NumSSDs, offered)
		steps0 := sys.Eng.Steps()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		b.StartTimer()
		t0 := time.Now() //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		res := mux.Run()
		wall := time.Since(t0) //afalint:allow wallclock -- measuring host wall-clock, not simulated time
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		if res.Offered == 0 || res.Completed == 0 {
			b.Fatalf("mux run offered %d completed %d; the workload did not run", res.Offered, res.Completed)
		}
		steps := int64(sys.Eng.Steps() - steps0)
		allocsPerArrival = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Offered)
		row = core.EngineBenchRow{
			Experiment:     name,
			NumSSDs:        o.NumSSDs,
			Events:         steps,
			IOs:            res.Completed,
			WallMs:         float64(wall) / 1e6,
			EventsPerSec:   float64(steps) / wall.Seconds(),
			Arrivals:       res.Offered,
			ArrivalsPerSec: float64(res.Offered) / wall.Seconds(),
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(row.ArrivalsPerSec/1e6, "Marrivals/sec")
	b.ReportMetric(float64(row.Arrivals), "arrivals")
	b.ReportMetric(allocsPerArrival, "allocs/arrival")
	// The per-arrival path itself is allocation-free; the residual here
	// is the mux's own request-pool growth plus one []int64 per NAND
	// block the background writers newly open (amortized 1/pages-per-
	// block). Anything above the bound means a real per-arrival
	// allocation crept in.
	if allocsPerArrival > 0.05 {
		b.Fatalf("per-arrival steady state allocates: %.4f allocs/arrival", allocsPerArrival)
	}
	updateEngineBench(b, row)
}

// BenchmarkTenantMux is the acceptance benchmark for the open-loop
// tier: 10k and then 100k tenant streams multiplexed onto one 64-SSD
// array in a single run. The arrivals/sec rows land in
// BENCH_engine.json next to the engine-throughput headline and are
// guarded per commit by scripts/bench-guard.sh; allocs/arrival is
// asserted ~0 (the wheel's pooled carriers and pinned timers keep the
// per-arrival path allocation-free at any population).
func BenchmarkTenantMux(b *testing.B) {
	b.Run("10k", func(b *testing.B) { benchTenantMux(b, 10_000, "tenant-mux-10k") })
	b.Run("100k", func(b *testing.B) { benchTenantMux(b, 100_000, "tenant-mux-100k") })
}

// BenchmarkSeedSweep exercises the seed-sweep path behind afareport's
// -seeds flag: Fig 9 at REPRO_SEEDS derived seeds (default 4) fanned out
// in parallel, then pooled into one N×64-device fleet. Sweeps are the
// cheap way to buy statistical depth — breadth parallelizes, -runtime
// does not.
func BenchmarkSeedSweep(b *testing.B) {
	o := benchOpts()
	n := 4
	if v, _ := strconv.Atoi(os.Getenv("REPRO_SEEDS")); v > 0 {
		n = v
	}
	var pooled core.Distribution
	for i := 0; i < b.N; i++ {
		sweep := core.RunSeedSweep(o, n, core.RunFig9)
		pooled = core.MergeSweep("fig9-pooled", sweep)
	}
	printTable(b, "seedsweep", func() { core.WriteDistributionTable(os.Stdout, pooled) })
	b.ReportMetric(float64(len(pooled.Ladders)), "fleet-size")
	reportDistribution(b, pooled)
}

// BenchmarkSeqReadSaturation checks the Section III-B preliminary claim:
// sequential reads saturate the available bandwidth regardless of tuning.
func BenchmarkSeqReadSaturation(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Options{NumSSDs: 64, Seed: 2018, Config: core.ExpFirmware()})
		res := sys.RunFIO(core.RunSpec{
			Runtime: 100 * sim.Millisecond,
			RW:      "read",
			BS:      128 << 10,
			IODepth: 8,
		})
		var bytes float64
		for _, r := range res {
			if r != nil {
				bytes += float64(r.IOs) * float64(128<<10)
			}
		}
		mbps = bytes / 0.1 / 1e6
	}
	b.ReportMetric(mbps/1e3, "GB/s")
	if mbps < 8000 {
		b.Fatalf("aggregate sequential read %.0f MB/s; expected to press the uplink", mbps)
	}
}
