package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func sampleDistribution(t *testing.T) Distribution {
	t.Helper()
	o := testOpts()
	o.Runtime = 100 * sim.Millisecond
	o.NumSSDs = 4
	return RunLatencyDistribution(ExpFirmware(), o)
}

func TestDistributionJSONRoundTrip(t *testing.T) {
	d := sampleDistribution(t)
	var buf bytes.Buffer
	if err := WriteDistributionJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDistributionJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != d.Config || len(got.Ladders) != len(d.Ladders) {
		t.Fatalf("round trip lost shape: %s/%d", got.Config, len(got.Ladders))
	}
	for r := 0; r < stats.NumRungs; r++ {
		if math.Abs(got.Summary.Mean[r]-d.Summary.Mean[r]) > 1 {
			t.Fatalf("rung %d mean %.1f != %.1f", r, got.Summary.Mean[r], d.Summary.Mean[r])
		}
	}
}

func TestDistributionsJSONArray(t *testing.T) {
	d := sampleDistribution(t)
	var buf bytes.Buffer
	if err := WriteDistributionsJSON(&buf, []Distribution{d, d}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(strings.TrimSpace(s), "[") || strings.Count(s, `"config"`) != 2 {
		t.Fatalf("bad array JSON:\n%s", s[:200])
	}
}

func TestDistributionCSV(t *testing.T) {
	d := sampleDistribution(t)
	var buf bytes.Buffer
	if err := WriteDistributionCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(d.Ladders) {
		t.Fatalf("csv rows = %d, want header+%d", len(lines), len(d.Ladders))
	}
	if !strings.HasPrefix(lines[0], "ssd,avg,99%") {
		t.Fatalf("header = %q", lines[0])
	}
	if cols := strings.Count(lines[1], ",") + 1; cols != 1+stats.NumRungs {
		t.Fatalf("data columns = %d", cols)
	}
}

func TestFig10CSV(t *testing.T) {
	r := Fig10Result{Logs: [][]stats.Sample{
		{{At: 10, Latency: 30000}},
		{{At: 20, Latency: 31000}, {At: 50, Latency: 580000}},
	}}
	var buf bytes.Buffer
	if err := WriteFig10CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[0] != "ssd,at_ns,latency_ns" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[3] != "1,50,580000" {
		t.Fatalf("last row = %q", lines[3])
	}
}

func TestReadDistributionJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadDistributionJSON(strings.NewReader(`{"mean_ns":[1,2]}`)); err == nil {
		t.Fatal("short rung vector accepted")
	}
	if _, err := ReadDistributionJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
