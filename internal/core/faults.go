// Fault-injection experiments: the degraded-mode ablation (clean vs
// faulted vs faulted+tolerant) and the drive drop-out recovery series.
// The paper's configurations chase the tail of healthy devices; these
// runners ask the complementary question — what the client-visible ladder
// looks like when devices misbehave, and how much of the damage the
// host-side tolerance machinery (kernel timeouts + RAID degraded reads +
// hedging) buys back.

package core

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/raid"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FaultStripeWidth is the data-stripe width the fault experiments use;
// the parity member is SSD FaultStripeWidth.
const FaultStripeWidth = 8

// DemoFaultPlan builds the representative misbehaving-fleet schedule the
// ablation imposes on the data stripe: one firmware-stalling controller,
// one slow-binned device, one with transient command errors, and one with
// periodic GC storms. Deliberately no drive drop-out: an offline device
// never completes commands, so an untolerant host would simply hang — the
// drop-out story needs tolerance and lives in RunRecoverySeries.
func DemoFaultPlan(horizon sim.Duration) fault.Plan {
	h := sim.Time(0).Add(horizon)
	return fault.Plan{Profiles: []fault.Profile{
		{SSD: 0, FirmwareStalls: fault.PeriodicStalls(
			sim.Time(0).Add(horizon/4), horizon/2, 20*sim.Millisecond, h)},
		{SSD: 1, ReadSlowdown: 3},
		{SSD: 2, TransientRate: 0.002},
		{SSD: 3, GCStorms: []fault.Window{{At: sim.Time(0).Add(horizon / 3), For: horizon / 10}},
			StormFactor: 8},
	}}
}

// FaultRun is one arm of the degraded-mode ablation.
type FaultRun struct {
	Name   string
	Ladder stats.Ladder
	// Client-level counters (see raid.Result).
	Requests      int64
	Failed        int64
	SubIOErrors   int64
	DegradedReads int64
	HedgedReads   int64
	HedgeWins     int64
	// IOStats is the kernel tolerance machinery's activity.
	IOStats kernel.IOStats
	// Trace is the run's failure trace (empty for the clean arm).
	Trace string
}

// RunFaultAblation measures the client-visible striped-read ladder in
// three arms: a clean fleet, the same fleet under DemoFaultPlan with no
// host tolerance (errors fail requests, stalls are waited out), and the
// faulted fleet with the full tolerance stack (kernel timeouts + retry,
// RAID degraded reads, hedged reads at the observed p99). The headline:
// tolerant worst-case latency sits far below the untolerant faulted
// maximum, because the hedge routes around a stalled controller instead
// of waiting for it.
func RunFaultAblation(o ExpOptions) []FaultRun {
	o = o.withDefaults()
	if o.NumSSDs <= FaultStripeWidth {
		panic(fmt.Sprintf("core: fault ablation needs > %d SSDs", FaultStripeWidth))
	}

	run := func(name string, cfg Config, plan *fault.Plan, tol *raid.Tolerance) FaultRun {
		opt := Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
			Geom: o.Geom, FaultPlan: plan}
		sys := NewSystem(opt)
		stripe := make([]int, FaultStripeWidth)
		for i := range stripe {
			stripe[i] = i
		}
		cpu := sys.Host.WorkloadCPUs()[0]
		res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
			Name: name, Stripe: stripe, CPU: cpu, Runtime: o.Runtime,
			Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio, Tol: tol, Seed: o.Seed,
		}})[0]
		out := FaultRun{
			Name:          name,
			Ladder:        res.Ladder,
			Requests:      res.Requests,
			Failed:        res.FailedRequests,
			SubIOErrors:   res.SubIOErrors,
			DegradedReads: res.DegradedReads,
			HedgedReads:   res.HedgedReads,
			HedgeWins:     res.HedgeWins,
			IOStats:       sys.Kernel.IOStats(),
		}
		if sys.Faults != nil {
			out.Trace = sys.Faults.TraceString()
		}
		return out
	}

	// The three arms are independent boots and fan out in parallel. Each
	// arm builds its own plan and tolerance inside its job — DemoFaultPlan
	// is a pure function of the horizon — so no fault-schedule state is
	// shared across workers.
	type faultArm struct {
		name     string
		cfg      Config
		faulted  bool
		tolerant bool
	}
	arms := []faultArm{
		{name: "clean", cfg: IRQAffinity()},
		{name: "faulted", cfg: IRQAffinity(), faulted: true},
		{name: "tolerant", cfg: FaultTolerance(), faulted: true, tolerant: true},
	}
	return runner.Map(o.runnerOpts(), arms, func(_ int, a faultArm) FaultRun {
		var plan *fault.Plan
		if a.faulted {
			p := DemoFaultPlan(o.Runtime)
			plan = &p
		}
		var tol *raid.Tolerance
		if a.tolerant {
			tol = raid.DefaultTolerance(FaultStripeWidth)
		}
		return run(a.name, a.cfg, plan, tol)
	})
}

// RecoveryResult is the drop-out/recovery time series: per-window maximum
// striped-request latency across a run in which one stripe member goes
// offline and later returns.
type RecoveryResult struct {
	// Buckets holds the per-window latency summaries.
	Buckets []stats.TimeBucket
	// DropAt/RecoverAt are the imposed outage bounds.
	DropAt, RecoverAt sim.Time
	// Counters for the whole run.
	Requests      int64
	Failed        int64
	DegradedReads int64
	HedgedReads   int64
	HedgeWins     int64
	IOStats       kernel.IOStats
	Trace         string
}

// RunRecoverySeries drops stripe member 0 a quarter of the way into the
// run and recovers it at three quarters, under the full tolerance stack.
// While the drive is gone its sub-I/Os never complete; the hedge fires at
// the observed p99 and the parity reconstruction serves every request, so
// the series shows a bounded latency plateau during the outage rather
// than a hang — and a return to baseline after recovery.
func RunRecoverySeries(o ExpOptions) RecoveryResult {
	o = o.withDefaults()
	if o.NumSSDs <= FaultStripeWidth {
		panic(fmt.Sprintf("core: recovery series needs > %d SSDs", FaultStripeWidth))
	}
	dropAt := sim.Time(0).Add(o.Runtime / 4)
	recoverAt := sim.Time(0).Add(3 * o.Runtime / 4)
	plan := fault.Plan{Profiles: []fault.Profile{
		{SSD: 0, DropAt: dropAt, RecoverAt: recoverAt},
	}}

	cfg := FaultTolerance()
	sys := NewSystem(Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
		Geom: o.Geom, FaultPlan: &plan})
	stripe := make([]int, FaultStripeWidth)
	for i := range stripe {
		stripe[i] = i
	}
	cpu := sys.Host.WorkloadCPUs()[0]
	res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
		Name: "recovery", Stripe: stripe, CPU: cpu, Runtime: o.Runtime,
		Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio,
		Tol:    raid.DefaultTolerance(FaultStripeWidth),
		LatLog: true, Seed: o.Seed,
	}})[0]

	horizon := int64(sys.Eng.Now())
	return RecoveryResult{
		Buckets:       stats.Bucketize(res.Log.Samples(), horizon, 48, 500_000),
		DropAt:        dropAt,
		RecoverAt:     recoverAt,
		Requests:      res.Requests,
		Failed:        res.FailedRequests,
		DegradedReads: res.DegradedReads,
		HedgedReads:   res.HedgedReads,
		HedgeWins:     res.HedgeWins,
		IOStats:       sys.Kernel.IOStats(),
		Trace:         sys.Faults.TraceString(),
	}
}

// WriteFaultAblation renders the three-arm comparison: the ladders side
// by side, then the tolerance counters.
func WriteFaultAblation(w io.Writer, runs []FaultRun) {
	fmt.Fprintf(w, "%-10s", "lat(µs)")
	for _, r := range runs {
		fmt.Fprintf(w, " %12s", r.Name)
	}
	fmt.Fprintln(w)
	for i := 0; i < stats.NumRungs; i++ {
		fmt.Fprintf(w, "%-10s", stats.LadderLabels[i])
		for _, r := range runs {
			fmt.Fprintf(w, " %12.1f", r.Ladder.Rung(i)/1e3)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "counter", runs[0].Name, runs[1].Name, runs[2].Name)
	row := func(label string, f func(FaultRun) int64) {
		fmt.Fprintf(w, "%-16s", label)
		for _, r := range runs {
			fmt.Fprintf(w, " %10d", f(r))
		}
		fmt.Fprintln(w)
	}
	row("requests", func(r FaultRun) int64 { return r.Requests })
	row("failed", func(r FaultRun) int64 { return r.Failed })
	row("sub-I/O errors", func(r FaultRun) int64 { return r.SubIOErrors })
	row("degraded reads", func(r FaultRun) int64 { return r.DegradedReads })
	row("hedged reads", func(r FaultRun) int64 { return r.HedgedReads })
	row("hedge wins", func(r FaultRun) int64 { return r.HedgeWins })
	row("kern timeouts", func(r FaultRun) int64 { return r.IOStats.Timeouts })
	row("kern retries", func(r FaultRun) int64 { return r.IOStats.Retries })
	row("kern exhausted", func(r FaultRun) int64 { return r.IOStats.Exhausted })
}

// WriteRecoverySeries renders the outage time series: max latency per
// window with the imposed drop/recover instants marked.
func WriteRecoverySeries(w io.Writer, r RecoveryResult) {
	fmt.Fprintf(w, "drive drop at t=%.3fs, recovery at t=%.3fs\n",
		float64(r.DropAt)/1e9, float64(r.RecoverAt)/1e9)
	fmt.Fprintf(w, "requests=%d failed=%d degraded=%d hedged=%d hedge-wins=%d\n",
		r.Requests, r.Failed, r.DegradedReads, r.HedgedReads, r.HedgeWins)
	fmt.Fprintf(w, "kernel: timeouts=%d retries=%d exhausted=%d late=%d\n",
		r.IOStats.Timeouts, r.IOStats.Retries, r.IOStats.Exhausted, r.IOStats.LateCompletions)
	fmt.Fprintf(w, "\n%12s %8s %12s %12s\n", "window", "reqs", "mean(µs)", "max(µs)")
	for _, b := range r.Buckets {
		marker := ""
		if end := b.Start + bucketWidth(r.Buckets); int64(r.DropAt) >= b.Start && int64(r.DropAt) < end {
			marker = "  <- drop"
		} else if int64(r.RecoverAt) >= b.Start && int64(r.RecoverAt) < end {
			marker = "  <- recover"
		}
		fmt.Fprintf(w, "%11.3fs %8d %12.1f %12.1f%s\n",
			float64(b.Start)/1e9, b.Count, b.Mean()/1e3, float64(b.Max)/1e3, marker)
	}
	fmt.Fprintf(w, "\nfailure trace:\n%s", r.Trace)
}

func bucketWidth(buckets []stats.TimeBucket) int64 {
	if len(buckets) < 2 {
		return 1 << 62
	}
	return buckets[1].Start - buckets[0].Start
}
