package core

import (
	"fmt"

	"repro/internal/fio"
	"repro/internal/kernel"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pts"
	"repro/internal/raid"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ExpOptions parameterize a figure reproduction.
type ExpOptions struct {
	// Runtime per FIO instance. The paper runs 120 s; the default here is
	// 2 s (≈56 k samples per SSD at QD1). Percentiles above 5-nines need
	// longer runs — pass the paper's 120 s to resolve them fully.
	Runtime sim.Duration
	Seed    uint64
	// NumSSDs defaults to 64.
	NumSSDs int
	// SoloRuns caps the number of single-thread runs merged for the
	// Fig 13(d)/Table II row (64 in the paper; lower it for quick passes).
	SoloRuns int
	// TimeScale compresses rare-event periodicity — the firmware SMART
	// period and the background daemons' inter-session sleeps — for short
	// runs, preserving event magnitudes. The default, Runtime/120 s, makes
	// a short run experience the same *number* of SMART windows and daemon
	// sessions as the paper's 120 s runs; pass 1.0 (with Runtime=120 s)
	// for the uncompressed original. Note the trade-off recorded in
	// EXPERIMENTS.md: compression moves tail events to lower percentile
	// rungs because they occupy a larger fraction of a shorter run.
	TimeScale float64
	// Geom overrides the NAND geometry (the used-state study needs a small
	// one; see UsedStateGeom).
	Geom nand.Geometry
	// Parallel bounds how many independent sim runs are in flight when an
	// experiment fans out over configurations, geometries, or sweep seeds
	// (see internal/runner). 0 means one worker per CPU
	// (runner.DefaultParallel); 1 forces the serial reference order.
	// Results are byte-identical at every setting — each run owns its
	// engine and rng streams, and results merge in submission order.
	Parallel int
}

// runnerOpts translates the Parallel knob for internal/runner.
func (o ExpOptions) runnerOpts() runner.Options {
	return runner.Options{Parallel: o.Parallel}
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Runtime == 0 {
		o.Runtime = 2 * sim.Second
	}
	if o.NumSSDs == 0 {
		o.NumSSDs = 64
	}
	if o.SoloRuns == 0 {
		o.SoloRuns = o.NumSSDs
	}
	if o.TimeScale == 0 {
		o.TimeScale = float64(o.Runtime) / float64(120*sim.Second)
	}
	if o.TimeScale > 1 {
		o.TimeScale = 1
	}
	return o
}

func (o ExpOptions) newSystem(cfg Config) *System {
	opt := Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg, Geom: o.Geom}
	if o.TimeScale > 0 && o.TimeScale != 1 {
		fw := nvme.DefaultFirmware()
		fw.Kind = cfg.Firmware
		fw.SMARTPeriod = sim.Duration(float64(fw.SMARTPeriod) * o.TimeScale)
		opt.FirmwareOverride = &fw
		opt.Daemons = kernel.ScaleDaemonPeriods(kernel.DefaultDaemons(), o.TimeScale)
	}
	return NewSystem(opt)
}

// RunLatencyDistribution measures the per-SSD latency ladders under one
// configuration with the Fig 5 geometry — the common shape of Figs 6-9
// and 11.
func RunLatencyDistribution(cfg Config, o ExpOptions) Distribution {
	o = o.withDefaults()
	sys := o.newSystem(cfg)
	res := sys.RunFIO(RunSpec{Runtime: o.Runtime})
	return NewDistribution(cfg.Name, res)
}

// runDistributions measures one latency distribution per configuration.
// Each config is an independent run (own System, engine, rng streams),
// so the batch fans out across o.Parallel workers; results come back in
// config order, identical to the serial loop.
func runDistributions(o ExpOptions, cfgs []Config) []Distribution {
	return runner.Map(o.runnerOpts(), cfgs, func(_ int, cfg Config) Distribution {
		return RunLatencyDistribution(cfg, o)
	})
}

// RunFig6 reproduces Fig 6: latency distributions of 64 SSDs under the
// default system configuration.
func RunFig6(o ExpOptions) Distribution { return RunLatencyDistribution(Default(), o) }

// RunFig7 reproduces Fig 7: after assigning the highest priority to FIO.
func RunFig7(o ExpOptions) Distribution { return RunLatencyDistribution(CHRT(), o) }

// RunFig8 reproduces Fig 8: after setting CPU isolation.
func RunFig8(o ExpOptions) Distribution { return RunLatencyDistribution(Isolcpus(), o) }

// RunFig9 reproduces Fig 9: after setting CPU affinity for all IRQ
// handlers (identical setup to Fig 13(a)).
func RunFig9(o ExpOptions) Distribution { return RunLatencyDistribution(IRQAffinity(), o) }

// RunFig11 reproduces Fig 11: the experimental firmware with SMART
// update/save disabled.
func RunFig11(o ExpOptions) Distribution { return RunLatencyDistribution(ExpFirmware(), o) }

// Fig10Result is the scatter-plot data: per-SSD latency sample logs and
// the detected spike clusters.
type Fig10Result struct {
	// Logs[i] holds SSD i's (completion time, latency) samples.
	Logs [][]stats.Sample
	// SpikeClusters are the start times (ns) of detected spike windows
	// across all logged SSDs.
	SpikeClusters []int64
	// SMARTWindows is the firmware-side count, for cross-checking.
	SMARTWindows int64
}

// RunFig10 reproduces Fig 10: raw latency samples from 32 of the 64 SSDs
// (the paper's footnote-1 workaround: logging all 64 perturbed results)
// under the tuned kernel with standard firmware. Housekeeping periodicity
// is time-scaled to the run length so the spike train lands at the same
// relative positions as in the paper's 120 s run.
func RunFig10(o ExpOptions) Fig10Result {
	o = o.withDefaults()
	sys := o.newSystem(IRQAffinity())
	logged := o.NumSSDs / 2
	res := sys.RunFIO(RunSpec{Runtime: o.Runtime, LatLogSSDs: logged})

	out := Fig10Result{}
	spikeThreshold := int64(200_000) // 200 µs: far above kernel noise, well below the SMART stall
	gap := int64(50 * sim.Millisecond)
	for i := 0; i < logged; i++ {
		if res[i] == nil || res[i].Log == nil {
			continue
		}
		out.Logs = append(out.Logs, res[i].Log.Samples())
		out.SpikeClusters = append(out.SpikeClusters, res[i].Log.SpikeClusters(spikeThreshold, gap)...)
	}
	for _, d := range sys.SSDs[:logged] {
		out.SMARTWindows += d.Stats().SMARTWindows
	}
	return out
}

// RunFig12 reproduces Fig 12: the four kernel configurations' mean and
// standard deviation at every ladder rung across 64 SSDs. The four
// configurations run in parallel (see ExpOptions.Parallel).
func RunFig12(o ExpOptions) []Distribution {
	return runDistributions(o, AllKernelConfigs())
}

// TableIIRow is one row of Table II.
type TableIIRow struct {
	Fig                string
	SSDsPerPhysCore    int // 0 = "1 FIO thread on the entire system"
	IRQPerLogicalCore  int
	FIOPerLogicalCore  int
	FIOThreadsInSystem int
	Runs               int
}

// TableII returns the experiment matrix of Table II.
func TableII() []TableIIRow {
	return []TableIIRow{
		{Fig: "13(a)", SSDsPerPhysCore: 4, IRQPerLogicalCore: 2, FIOPerLogicalCore: 2, FIOThreadsInSystem: 64, Runs: 1},
		{Fig: "13(b)", SSDsPerPhysCore: 2, IRQPerLogicalCore: 1, FIOPerLogicalCore: 1, FIOThreadsInSystem: 32, Runs: 2},
		{Fig: "13(c)", SSDsPerPhysCore: 1, IRQPerLogicalCore: 1, FIOPerLogicalCore: 1, FIOThreadsInSystem: 16, Runs: 4},
		{Fig: "13(d)", SSDsPerPhysCore: 0, IRQPerLogicalCore: 1, FIOPerLogicalCore: 1, FIOThreadsInSystem: 1, Runs: 64},
	}
}

// Fig13Result pairs a Table II row with its merged latency distribution.
type Fig13Result struct {
	Row  TableIIRow
	Dist Distribution
}

// RunFig13 reproduces Fig 13 (and, through the summaries, Fig 14): the
// latency distributions for 4/2/1 SSDs per physical core and for a single
// FIO thread, each merged over disjoint-SSD runs per Table II.
func RunFig13(o ExpOptions) []Fig13Result {
	o = o.withDefaults()
	host := topology.XeonE52690v2()
	cfg := IRQAffinity() // Fig 13(a) is identical to Fig 9

	geoms := func(row TableIIRow) []*topology.Geometry {
		switch row.SSDsPerPhysCore {
		case 4:
			return []*topology.Geometry{topology.DefaultGeometry(host, o.NumSSDs)}
		case 2:
			return []*topology.Geometry{
				topology.HalfGeometry(host, o.NumSSDs, 0),
				topology.HalfGeometry(host, o.NumSSDs, 1),
			}
		case 1:
			var gs []*topology.Geometry
			for run := 0; run < 4; run++ {
				gs = append(gs, topology.QuarterGeometry(host, o.NumSSDs, run))
			}
			return gs
		default:
			var gs []*topology.Geometry
			n := row.Runs
			if o.SoloRuns < n {
				n = o.SoloRuns
			}
			for run := 0; run < n; run++ {
				gs = append(gs, topology.SoloGeometry(host, o.NumSSDs, run))
			}
			return gs
		}
	}

	// Every (row, geometry) pair is a fresh boot (the paper reran fio on
	// disjoint SSD sets), so the whole Table II matrix — including the 64
	// solo runs of the 13(d) row — is one flat batch of independent jobs.
	rows := TableII()
	type fig13Job struct {
		row int
		g   *topology.Geometry
	}
	var jobs []fig13Job
	for ri, row := range rows {
		for _, g := range geoms(row) {
			jobs = append(jobs, fig13Job{row: ri, g: g})
		}
	}
	ladderSets := runner.Map(o.runnerOpts(), jobs, func(_ int, j fig13Job) []stats.Ladder {
		sys := o.newSystem(cfg)
		res := sys.RunFIO(RunSpec{Geometry: j.g, Runtime: o.Runtime})
		return Ladders(res)
	})

	// Merge in submission order: jobs (and therefore ladders) appear
	// exactly where the serial loop would have put them.
	var out []Fig13Result
	for ri, row := range rows {
		var ladders []stats.Ladder
		for ji, j := range jobs {
			if j.row == ri {
				ladders = append(ladders, ladderSets[ji]...)
			}
		}
		out = append(out, Fig13Result{
			Row: row,
			Dist: Distribution{
				Config:  fmt.Sprintf("fig%s", row.Fig),
				Ladders: ladders,
				Summary: stats.Summarize(ladders),
			},
		})
	}
	return out
}

// Headline quantifies the abstract's claim: mean and standard deviation of
// the per-SSD maximum latency, default configuration versus the finely
// tuned kernel.
type Headline struct {
	DefaultMeanMax float64
	DefaultStdMax  float64
	TunedMeanMax   float64
	TunedStdMax    float64
}

// MeanImprovement is the ×-factor reduction of mean(max).
func (h Headline) MeanImprovement() float64 {
	if h.TunedMeanMax == 0 {
		return 0
	}
	return h.DefaultMeanMax / h.TunedMeanMax
}

// StdImprovement is the ×-factor reduction of σ(max).
func (h Headline) StdImprovement() float64 {
	if h.TunedStdMax == 0 {
		return 0
	}
	return h.DefaultStdMax / h.TunedStdMax
}

// RunHeadline measures the abstract's ×8 / ×400 claim. The default and
// tuned arms run in parallel.
func RunHeadline(o ExpOptions) Headline {
	ds := runDistributions(o, []Config{Default(), IRQAffinity()})
	def, tuned := ds[0], ds[1]
	maxRung := stats.NumRungs - 1
	return Headline{
		DefaultMeanMax: def.Summary.Mean[maxRung],
		DefaultStdMax:  def.Summary.Std[maxRung],
		TunedMeanMax:   tuned.Summary.Mean[maxRung],
		TunedStdMax:    tuned.Summary.Std[maxRung],
	}
}

// --- extensions beyond the paper (ablations) ---

// RunFutureWorkAblation evaluates the Section VI prototypes against the
// stock default configuration and the fully hand-tuned kernel: the
// auto-isolating scheduler, the affinity-aware IRQ balancer, and both
// combined. The question the ablation answers: how much of the manual
// tuning can better algorithms recover automatically?
func RunFutureWorkAblation(o ExpOptions) []Distribution {
	return runDistributions(o, []Config{
		Default(), FutureSched(), FutureIRQ(), FutureBoth(), IRQAffinity(),
	})
}

// RunPollingAblation compares interrupt vs polling completion under the
// tuned kernel (the Section V discussion). Both arms run in parallel.
func RunPollingAblation(o ExpOptions) (interrupt, polling Distribution) {
	o = o.withDefaults()
	intr := ExpFirmware()
	poll := ExpFirmware()
	poll.Name = "polling"
	poll.Mode = kernel.CompletePolling
	ds := runDistributions(o, []Config{intr, poll})
	return ds[0], ds[1]
}

// PTSRound is one measurement round of the PTS-E latency test.
type PTSRound struct {
	AvgLatencyNs float64
	Ladder       stats.Ladder
}

// PTSReport is the outcome of a PTS-E chapter-9-style latency test on the
// simulated array.
type PTSReport struct {
	Result pts.Result
	Rounds []PTSRound
}

// RunPTSLatencyTest executes the methodology the paper cites: purge every
// device (NVMe format → FOB), then run measurement rounds of 4 KiB QD1
// random reads until the SNIA PTS-E steady-state criteria hold on the
// fleet-average latency. One booted system is reused across rounds, as on
// the testbed — the rounds feed back into the steady-state detector, so
// this protocol is inherently sequential and never fans out.
func RunPTSLatencyTest(cfg Config, o ExpOptions, roundLen sim.Duration, maxRounds int) PTSReport {
	o = o.withDefaults()
	if roundLen == 0 {
		roundLen = 200 * sim.Millisecond
	}
	sys := o.newSystem(cfg)
	sys.FormatAll() // purge

	var rep PTSReport
	rep.Result = pts.Run(pts.DefaultCriteria(), maxRounds, func(round int) float64 {
		res := sys.RunFIO(RunSpec{Runtime: roundLen, Warmup: sim.Millisecond})
		d := NewDistribution(cfg.Name, res)
		rep.Rounds = append(rep.Rounds, PTSRound{
			AvgLatencyNs: d.Summary.Mean[0],
			Ladder:       stats.LadderOf(mergedHistogram(res)),
		})
		return d.Summary.Mean[0]
	})
	return rep
}

func mergedHistogram(results []*fio.Result) *stats.Histogram {
	h := stats.NewHistogram()
	for _, r := range results {
		if r != nil {
			h.Merge(r.Hist)
		}
	}
	return h
}

// TailAtScaleResult quantifies the Section I motivation for one stripe
// width: the per-request (client-visible) ladder versus the average
// per-SSD ladder, under one configuration.
type TailAtScaleResult struct {
	Config string
	Width  int
	// Client is the striped-request latency ladder.
	Client stats.Ladder
	// PerSSD is the mean single-SSD ladder for the same system/config.
	PerSSD stats.Ladder
	// Amplification is Client.P99 / PerSSD.P99: how much worse the
	// client's 99th percentile is than a single device's.
	Amplification float64
}

// RunTailAtScale runs striped clients of the given widths under cfg and
// reports the tail amplification — "even if one SSD out of many shows long
// tail latency, the entire I/O from the client is delayed by the same
// amount" (Section I).
func RunTailAtScale(cfg Config, widths []int, o ExpOptions) []TailAtScaleResult {
	o = o.withDefaults()
	for _, w := range widths {
		if w > o.NumSSDs {
			panic(fmt.Sprintf("core: stripe width %d exceeds %d SSDs", w, o.NumSSDs))
		}
	}

	// Job 0 is the per-SSD baseline under the same config; every other
	// job is one striped client. All are independent boots, so the whole
	// batch fans out; each returns the one ladder the comparison needs.
	specs := append([]int{0}, widths...)
	ladders := runner.Map(o.runnerOpts(), specs, func(_ int, w int) stats.Ladder {
		if w == 0 {
			base := o.newSystem(cfg)
			baseRes := base.RunFIO(RunSpec{Runtime: o.Runtime})
			perSSD := stats.NewHistogram()
			for _, r := range baseRes {
				if r != nil {
					perSSD.Merge(r.Hist)
				}
			}
			return stats.LadderOf(perSSD)
		}
		sys := o.newSystem(cfg)
		stripe := make([]int, w)
		for i := range stripe {
			stripe[i] = i
		}
		cpu := sys.Host.WorkloadCPUs()[0]
		res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
			Stripe: stripe, CPU: cpu, Runtime: o.Runtime,
			Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio, Seed: o.Seed,
		}})[0]
		return res.Ladder
	})

	perLadder := ladders[0]
	var out []TailAtScaleResult
	for i, w := range widths {
		client := ladders[i+1]
		amp := 0.0
		if perLadder.P[0] > 0 {
			amp = float64(client.P[0]) / float64(perLadder.P[0])
		}
		out = append(out, TailAtScaleResult{
			Config:        cfg.Name,
			Width:         w,
			Client:        client,
			PerSSD:        perLadder,
			Amplification: amp,
		})
	}
	return out
}

// CoalescingResult pairs a latency distribution with the interrupt count
// that produced it.
type CoalescingResult struct {
	Dist       Distribution
	Interrupts int64
	IOs        int64
}

// RunCoalescingAblation quantifies the interrupt-storm trade-off the paper
// raises in Section I: NVMe interrupt coalescing cuts the interrupt rate
// at some latency cost. Both runs use queue depth 8 so batches can form,
// and run in parallel.
func RunCoalescingAblation(o ExpOptions) (off, on CoalescingResult) {
	o = o.withDefaults()
	measure := func(cfg Config) CoalescingResult {
		sys := o.newSystem(cfg)
		res := sys.RunFIO(RunSpec{Runtime: o.Runtime, IODepth: 8})
		local, remote, _ := sys.IRQ.Stats()
		var ios int64
		for _, r := range res {
			if r != nil {
				ios += r.IOs
			}
		}
		return CoalescingResult{
			Dist:       NewDistribution(cfg.Name, res),
			Interrupts: local + remote,
			IOs:        ios,
		}
	}

	base := ExpFirmware()
	base.Name = "no-coalesce"

	co := ExpFirmware()
	co.Name = "coalesce-4"
	co.Coalesce = kernel.Coalescing{Threshold: 4, Timeout: 100 * sim.Microsecond}

	rs := runner.Map(o.runnerOpts(), []Config{base, co}, func(_ int, cfg Config) CoalescingResult {
		return measure(cfg)
	})
	return rs[0], rs[1]
}

// RunFirmwareAblation compares the three firmware builds under the tuned
// kernel: standard SMART, disabled, and the incremental protocol sketch.
// The three builds run in parallel.
func RunFirmwareAblation(o ExpOptions) []Distribution {
	o = o.withDefaults()
	var cfgs []Config
	for _, kind := range []nvme.FirmwareKind{
		nvme.FirmwareStandard, nvme.FirmwareNoSMART, nvme.FirmwareIncremental,
	} {
		cfg := IRQAffinity()
		cfg.Firmware = kind
		cfg.Name = "fw-" + kind.String()
		cfgs = append(cfgs, cfg)
	}
	return runDistributions(o, cfgs)
}

// RunUsedStateStudy is the paper's stated future work: latency in a used
// (non-FOB) SSD state with a mixed read/write workload driving GC.
// It returns the FOB baseline and the preconditioned distribution.
func RunUsedStateStudy(o ExpOptions, fillFraction float64) (fob, used Distribution) {
	o = o.withDefaults()
	if o.Geom.Channels == 0 {
		o.Geom = UsedStateGeom()
	}
	// Cap the run so the FOB baseline's fill stays within the small
	// device's logical capacity; a longer FOB run would wrap and start
	// garbage-collecting too, erasing the contrast being measured.
	if o.Runtime > 250*sim.Millisecond {
		o.Runtime = 250 * sim.Millisecond
	}
	cfg := ExpFirmware()

	// Random writes are what separates the states: in FOB they stream into
	// fresh blocks, in the used state they drag foreground GC along. The
	// two states are independent boots and run in parallel.
	ds := runner.Map(o.runnerOpts(), []bool{false, true}, func(_ int, precondition bool) Distribution {
		sys := o.newSystem(cfg)
		name := "fob"
		if precondition {
			name = "used"
			for _, d := range sys.SSDs {
				d.Flash.Precondition(fillFraction)
			}
		}
		return NewDistribution(name, sys.RunFIO(RunSpec{Runtime: o.Runtime, RW: fio.RandWrite}))
	})
	return ds[0], ds[1]
}

// UsedStateGeom returns the geometry for the used-state study: small
// enough that (a) preconditioning does not need gigabytes of mapping
// state (full Table I devices would) and (b) a preconditioned device hits
// garbage collection within a short measured run.
func UsedStateGeom() nand.Geometry {
	return nand.TinyGeometry()
}
