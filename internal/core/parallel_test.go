package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// sweepOpts are deliberately small: the cross-checks below run every
// fan-out experiment shape twice (serial and parallel), and what they
// assert is scheduling-independence, not latency values.
func sweepOpts() ExpOptions {
	return ExpOptions{Runtime: 60 * sim.Millisecond, Seed: 7, NumSSDs: 12, SoloRuns: 2}
}

// exportFanOuts renders every parallelized experiment shape through the
// public export path: the config fan-out (Fig 12), the geometry fan-out
// (Fig 13, including the solo-run merge), the mixed baseline+client
// fan-out (tail-at-scale), the three-arm fault ablation, the four-arm
// write ablation (rebuild stream included), the three-arm hedging
// ablation (health trackers included), the I/O-path grid (four
// completion paths × two device classes), the open-loop load ablation
// (capacity probe plus the rung × arm grid), and a seed sweep. The
// exported bytes are the reproducibility contract.
func exportFanOuts(t *testing.T, o ExpOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteDistributionsJSON(&buf, RunFig12(o)); err != nil {
		t.Fatal(err)
	}
	for _, r := range RunFig13(o) {
		if err := WriteDistributionJSON(&buf, r.Dist); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range RunTailAtScale(ExpFirmware(), []int{1, 4}, o) {
		ladders := []stats.Ladder{r.Client, r.PerSSD}
		if err := WriteDistributionJSON(&buf, Distribution{
			Config:  fmt.Sprintf("%s/w%d", r.Config, r.Width),
			Ladders: ladders,
			Summary: stats.Summarize(ladders),
		}); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "amplification %.6f\n", r.Amplification)
	}
	for _, fr := range RunFaultAblation(o) {
		fmt.Fprintf(&buf, "%s requests=%d failed=%d degraded=%d hedged=%d timeouts=%d retries=%d\n%s\n",
			fr.Name, fr.Requests, fr.Failed, fr.DegradedReads, fr.HedgedReads,
			fr.IOStats.Timeouts, fr.IOStats.Retries, fr.Trace)
		ladders := []stats.Ladder{fr.Ladder}
		if err := WriteDistributionJSON(&buf, Distribution{
			Config: fr.Name, Ladders: ladders, Summary: stats.Summarize(ladders),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, wr := range RunWriteAblation(o) {
		fmt.Fprintf(&buf, "%s requests=%d failed=%d degraded=%d parity-log=%d unprotected=%d hedged=%d dups=%d wr-timeouts=%d\n%s\n",
			wr.Name, wr.Requests, wr.Failed, wr.DegradedWrites, wr.ParityLogWrites,
			wr.UnprotectedWrites, wr.HedgedWrites, wr.DupCompletions,
			wr.IOStats.WriteTimeouts, wr.Trace)
		if wr.Rebuild != nil {
			fmt.Fprintf(&buf, "rebuild %d/%d failed=%d reads=%d writes=%d\n",
				wr.Rebuild.StripesRebuilt, wr.Rebuild.Spec.Stripes,
				wr.Rebuild.StripesFailed, wr.Rebuild.Reads, wr.Rebuild.Writes)
		}
		ladders := []stats.Ladder{wr.Ladder}
		if err := WriteDistributionJSON(&buf, Distribution{
			Config: wr.Name, Ladders: ladders, Summary: stats.Summarize(ladders),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, hr := range RunHedgingAblation(o) {
		fmt.Fprintf(&buf, "%s requests=%d failed=%d degraded=%d hedged=%d wins=%d suppressed=%d shed=%d overload=%d\n%s\n",
			hr.Name, hr.Requests, hr.Failed, hr.DegradedReads, hr.HedgedReads,
			hr.HedgeWins, hr.HedgesSuppressed, hr.IOStats.ShedToReconstruct,
			hr.IOStats.OverloadEntered, hr.Trace)
		for _, d := range hr.Drives {
			fmt.Fprintf(&buf, "drive %+v\n", d)
		}
		ladders := []stats.Ladder{hr.Ladder}
		if err := WriteDistributionJSON(&buf, Distribution{
			Config: hr.Name, Ladders: ladders, Summary: stats.Summarize(ladders),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ir := range RunIOPathAblation(o) {
		fmt.Fprintf(&buf, "%s ios=%d errors=%d retried=%d timedout=%d pollspins=%d irqs=%d busy=%d\n",
			ir.Name, ir.IOs, ir.Errors, ir.Retried, ir.TimedOut,
			ir.PollSpins, ir.LocalIRQs+ir.RemoteIRQs, ir.BusyNs)
		ladders := []stats.Ladder{ir.Ladder}
		if err := WriteDistributionJSON(&buf, Distribution{
			Config: ir.Name, Ladders: ladders, Summary: stats.Summarize(ladders),
		}); err != nil {
			t.Fatal(err)
		}
	}
	la := RunLoadAblation(o)
	fmt.Fprintf(&buf, "load capacity=%.3f\n", la.Capacity)
	for _, lr := range la.Runs {
		fmt.Fprintf(&buf, "%s frac=%.2f offered=%d admitted=%d completed=%d shed=%d throttled=%d errors=%d\n",
			lr.Name, lr.Frac, lr.Offered, lr.Admitted, lr.Completed, lr.Shed, lr.Throttled, lr.Errors)
		ladders := append([]stats.Ladder{lr.Total}, lr.Class[0].Ladder, lr.Class[1].Ladder, lr.Class[2].Ladder)
		if err := WriteDistributionJSON(&buf, Distribution{
			Config: lr.Name, Ladders: ladders, Summary: stats.Summarize(ladders),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sweep := RunSeedSweep(o, 3, func(so ExpOptions) Distribution {
		return RunLatencyDistribution(CHRT(), so)
	})
	if err := WriteDistributionsJSON(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	if err := WriteDistributionJSON(&buf, MergeSweep("sweep", sweep)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the tentpole guarantee of the runner
// layer, wired into scripts/check.sh under -race: the exported reports
// of every fan-out experiment are byte-identical between the serial
// reference order (-parallel 1) and an oversubscribed pool
// (-parallel 8), regardless of goroutine scheduling.
func TestParallelDeterminism(t *testing.T) {
	serial := sweepOpts()
	serial.Parallel = 1
	parallel := sweepOpts()
	parallel.Parallel = 8

	a := exportFanOuts(t, serial)
	b := exportFanOuts(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel export diverged from serial reference:\nserial   %d bytes\nparallel %d bytes", len(a), len(b))
	}
}

// TestSeedSweepShape pins the sweep conventions the CLI prints: n
// distributions in seed order, tagged config#seed, with position 0
// exactly the unswept run, and the pooled merge covering every ladder.
func TestSeedSweepShape(t *testing.T) {
	o := sweepOpts()
	run := func(so ExpOptions) Distribution { return RunLatencyDistribution(CHRT(), so) }
	sweep := RunSeedSweep(o, 3, run)
	if len(sweep) != 3 {
		t.Fatalf("sweep produced %d distributions, want 3", len(sweep))
	}
	wantNames := []string{"chrt#7", "chrt#8", "chrt#9"}
	for i, d := range sweep {
		if d.Config != wantNames[i] {
			t.Errorf("sweep[%d].Config = %q, want %q", i, d.Config, wantNames[i])
		}
	}
	base := run(o)
	if sweep[0].Summary != base.Summary {
		t.Error("sweep position 0 differs from the unswept run at the same seed")
	}
	if sweep[1].Summary == sweep[0].Summary {
		t.Error("distinct sweep seeds produced identical summaries")
	}
	merged := MergeSweep("pool", sweep)
	if got, want := len(merged.Ladders), 3*o.NumSSDs; got != want {
		t.Errorf("merged sweep has %d ladders, want %d", got, want)
	}
}
