// Hedging-policy experiments: the three-arm adaptive-tolerance ablation
// (static hedge quantile vs per-drive adaptive deadlines vs adaptive +
// retry budgets/overload shedding) over a fleet that mixes the failure
// modes the health tracker is built to tell apart — a slow-binned
// member, a mid-run drop-out with rebuild, and GC storms on an otherwise
// healthy device. The question the ablation answers: does learning each
// drive's own latency profile beat one stripe-wide hedge delay, and does
// the back-pressure half (budgets + watermark) hold the win under retry
// pressure.

package core

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/raid"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DemoHedgePlan builds the hedging-ablation fault schedule on the
// FaultStripeWidth data stripe. The three profiles are chosen so that a
// single stripe-wide hedge delay cannot be right for all of them at
// once:
//
//   - member 0 drops out a quarter of the way in and is replaced at the
//     midpoint (the rebuild target): the right hedge delay during the
//     outage is "as soon as possible";
//   - member 3 is a slow bin (×20): its baseline is the drive's normal —
//     hedging it at the healthy members' tail burns a parity read on
//     nearly every request;
//   - member 5 suffers periodic GC storms (×30): a healthy baseline that
//     transiently needs the fast hedge the slow bin must not get;
//   - the parity member itself storms (×8) once inside the outage and
//     once after it: the hedge path is not free, so every speculative
//     parity read a policy fires while parity is storming deepens the
//     convoy behind it.
//
// A static client learns one quantile dominated by the slow bin and
// applies it everywhere — too slow for the outage and the storms, while
// still hedging the slow bin's own ordinary tail. The per-drive tracker
// separates the cases.
func DemoHedgePlan(horizon sim.Duration) fault.Plan {
	return fault.Plan{Profiles: []fault.Profile{
		{SSD: 0, DropAt: sim.Time(0).Add(horizon / 4), RecoverAt: sim.Time(0).Add(horizon / 2)},
		{SSD: 3, ReadSlowdown: 20},
		{SSD: 5, GCStorms: []fault.Window{
			{At: sim.Time(0).Add(5 * horizon / 8), For: horizon / 16},
			{At: sim.Time(0).Add(13 * horizon / 16), For: horizon / 16},
		}, StormFactor: 30},
		{SSD: FaultStripeWidth, GCStorms: []fault.Window{
			{At: sim.Time(0).Add(5 * horizon / 16), For: horizon / 16},
			{At: sim.Time(0).Add(11 * horizon / 16), For: horizon / 16},
		}, StormFactor: 8},
	}}
}

// HedgeRun is one arm of the hedging-policy ablation.
type HedgeRun struct {
	Name   string
	Ladder stats.Ladder
	// Client-level counters (see raid.Result).
	Requests         int64
	Failed           int64
	SubIOErrors      int64
	DegradedReads    int64
	HedgedReads      int64
	HedgeWins        int64
	HedgesSuppressed int64
	LateSubIOs       int64
	// IOStats is the kernel tolerance machinery's activity; the budgets
	// arm additionally populates RetryBudgetExhausted/ShedToReconstruct/
	// OverloadEntered.
	IOStats kernel.IOStats
	// Drives are end-of-run health-tracker snapshots for the stripe
	// members and parity (nil for the static arm, which runs untracked).
	Drives []health.DriveHealth
	// Trace is the run's failure trace.
	Trace string
}

// hedgeClientSpec is the common foreground striped-read workload of
// every arm: QD-4 full-stripe reads with parity tolerance armed.
func hedgeClientSpec(name string, cfg Config, o ExpOptions, tol *raid.Tolerance) raid.ClientSpec {
	stripe := make([]int, FaultStripeWidth)
	for i := range stripe {
		stripe[i] = i
	}
	return raid.ClientSpec{
		Name: name, Stripe: stripe, Runtime: o.Runtime, QD: 4,
		Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio, Tol: tol, Seed: o.Seed,
	}
}

// runHedgeArm boots one system under DemoHedgePlan, runs the striped
// client with the arm's tolerance, and races the rebuild stream from the
// replacement instant — the same competing-rebuild setting as the write
// ablation, so the arms differ only in hedging policy.
func runHedgeArm(name string, cfg Config, o ExpOptions, tol *raid.Tolerance) HedgeRun {
	plan := DemoHedgePlan(o.Runtime)
	sys := NewSystem(Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
		Geom: o.Geom, FaultPlan: &plan})
	cpus := sys.Host.WorkloadCPUs()
	spec := hedgeClientSpec(name, cfg, o, tol)
	spec.CPU = cpus[0]
	rb := raid.NewRebuilder(sys.Eng, sys.Kernel, writeRebuildSpec(o, cpus[len(cpus)-1]))
	rb.Start(nil)
	res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{spec})[0]
	out := HedgeRun{
		Name:             name,
		Ladder:           res.Ladder,
		Requests:         res.Requests,
		Failed:           res.FailedRequests,
		SubIOErrors:      res.SubIOErrors,
		DegradedReads:    res.DegradedReads,
		HedgedReads:      res.HedgedReads,
		HedgeWins:        res.HedgeWins,
		HedgesSuppressed: res.HedgesSuppressed,
		LateSubIOs:       res.LateSubIOs,
		IOStats:          sys.Kernel.IOStats(),
		Trace:            sys.Faults.TraceString(),
	}
	if h := sys.Kernel.Health(); h != nil {
		for ssd := 0; ssd <= FaultStripeWidth; ssd++ {
			out.Drives = append(out.Drives, h.Snapshot(ssd))
		}
	}
	return out
}

// RunHedgingAblation measures the client-visible striped-read ladder
// under DemoHedgePlan in three arms:
//
//   - static: the stock tolerance stack — one hedge delay from the
//     client-wide p99, which the slow bin drags up for every drive;
//   - adaptive: the same kernel plus the health tracker, with hedge
//     deadlines per straggling drive (raid.Tolerance.Adaptive);
//   - adaptive+budgets: adaptive plus per-drive retry budgets and the
//     overload watermark — the full control plane.
//
// The headline: the adaptive arms cut the upper rungs (the outage and
// the storms are hedged at the floor instead of the slow bin's tail)
// while firing fewer hedges overall (the slow bin is hedged at its own
// baseline, not raced constantly).
func RunHedgingAblation(o ExpOptions) []HedgeRun {
	o = o.withDefaults()
	if o.NumSSDs <= FaultStripeWidth {
		panic(fmt.Sprintf("core: hedging ablation needs > %d SSDs", FaultStripeWidth))
	}

	// Three independent boots fanned out in parallel; each arm builds its
	// own plan and tolerance inside its job (DemoHedgePlan is a pure
	// function of the horizon), so no fault-schedule state crosses
	// workers.
	type hedgeArm struct {
		name     string
		cfg      Config
		adaptive bool
	}
	arms := []hedgeArm{
		{name: "static", cfg: FaultTolerance()},
		{name: "adaptive", cfg: AdaptiveTolerance(), adaptive: true},
		{name: "adaptive+budgets", cfg: AdaptiveBudgets(), adaptive: true},
	}
	return runner.Map(o.runnerOpts(), arms, func(_ int, a hedgeArm) HedgeRun {
		tol := raid.DefaultTolerance(FaultStripeWidth)
		tol.Adaptive = a.adaptive
		return runHedgeArm(a.name, a.cfg, o, tol)
	})
}

// RunHedgeLadder is the sweepable single-distribution form of the full
// control-plane arm: DemoHedgePlan, the rebuild stream, and adaptive
// hedging with budgets at one seed, returning the read ladder for
// RunSeedSweep pooling (n seeds read as one n-client fleet).
func RunHedgeLadder(o ExpOptions) Distribution {
	o = o.withDefaults()
	if o.NumSSDs <= FaultStripeWidth {
		panic(fmt.Sprintf("core: hedge ladder needs > %d SSDs", FaultStripeWidth))
	}
	tol := raid.DefaultTolerance(FaultStripeWidth)
	tol.Adaptive = true
	res := runHedgeArm("hedge-ladder", AdaptiveBudgets(), o, tol)
	ladders := []stats.Ladder{res.Ladder}
	return Distribution{Config: "hedging-adaptive-budgets", Ladders: ladders,
		Summary: stats.Summarize(ladders)}
}

// WriteHedgingAblation renders the three-arm comparison: the ladders
// side by side, the hedging and kernel counters, then the end-of-run
// health-tracker view of the fleet for the arms that ran one.
func WriteHedgingAblation(w io.Writer, runs []HedgeRun) {
	fmt.Fprintf(w, "%-10s", "lat(µs)")
	for _, r := range runs {
		fmt.Fprintf(w, " %16s", r.Name)
	}
	fmt.Fprintln(w)
	for i := 0; i < stats.NumRungs; i++ {
		fmt.Fprintf(w, "%-10s", stats.LadderLabels[i])
		for _, r := range runs {
			fmt.Fprintf(w, " %16.1f", r.Ladder.Rung(i)/1e3)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "counter")
	for _, r := range runs {
		fmt.Fprintf(w, " %16s", r.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(HedgeRun) int64) {
		fmt.Fprintf(w, "%-18s", label)
		for _, r := range runs {
			fmt.Fprintf(w, " %16d", f(r))
		}
		fmt.Fprintln(w)
	}
	row("requests", func(r HedgeRun) int64 { return r.Requests })
	row("failed", func(r HedgeRun) int64 { return r.Failed })
	row("sub-I/O errors", func(r HedgeRun) int64 { return r.SubIOErrors })
	row("degraded reads", func(r HedgeRun) int64 { return r.DegradedReads })
	row("hedged reads", func(r HedgeRun) int64 { return r.HedgedReads })
	row("hedge wins", func(r HedgeRun) int64 { return r.HedgeWins })
	row("hedges suppressed", func(r HedgeRun) int64 { return r.HedgesSuppressed })
	row("late sub-I/Os", func(r HedgeRun) int64 { return r.LateSubIOs })
	row("kern timeouts", func(r HedgeRun) int64 { return r.IOStats.Timeouts })
	row("kern retries", func(r HedgeRun) int64 { return r.IOStats.Retries })
	row("kern exhausted", func(r HedgeRun) int64 { return r.IOStats.Exhausted })
	row("budget exhausted", func(r HedgeRun) int64 { return r.IOStats.RetryBudgetExhausted })
	row("shed to reconst", func(r HedgeRun) int64 { return r.IOStats.ShedToReconstruct })
	row("overload entries", func(r HedgeRun) int64 { return r.IOStats.OverloadEntered })

	for _, r := range runs {
		if r.Drives == nil {
			continue
		}
		fmt.Fprintf(w, "\n%s drive health (end of run):\n", r.Name)
		fmt.Fprintf(w, "%4s %10s %12s %8s %9s %7s %9s %8s %7s\n",
			"ssd", "srtt(µs)", "deadline(µs)", "susp(‰)", "samples",
			"spikes", "timeouts", "retries", "errors")
		for _, d := range r.Drives {
			fmt.Fprintf(w, "%4d %10.1f %12.1f %8d %9d %7d %9d %8d %7d\n",
				d.SSD, float64(d.SRTT)/1e3, float64(d.Deadline)/1e3,
				d.Suspicion, d.Samples, d.Spikes, d.Timeouts, d.Retries, d.Errors)
		}
	}
}
