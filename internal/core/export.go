package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stats"
)

// exportedDistribution is the JSON shape of a Distribution: self-describing
// and stable, for plotting pipelines.
type exportedDistribution struct {
	Config string            `json:"config"`
	Rungs  []string          `json:"rungs"`
	SSDs   [][]float64       `json:"ssds_ns"`
	Mean   []float64         `json:"mean_ns"`
	Std    []float64         `json:"std_ns"`
	Min    []float64         `json:"min_ns"`
	Max    []float64         `json:"max_ns"`
	Extra  map[string]string `json:"extra,omitempty"`
}

func exportOf(d Distribution) exportedDistribution {
	e := exportedDistribution{Config: d.Config, Rungs: stats.LadderLabels}
	for _, l := range d.Ladders {
		row := make([]float64, stats.NumRungs)
		for r := 0; r < stats.NumRungs; r++ {
			row[r] = l.Rung(r)
		}
		e.SSDs = append(e.SSDs, row)
	}
	for r := 0; r < stats.NumRungs; r++ {
		e.Mean = append(e.Mean, d.Summary.Mean[r])
		e.Std = append(e.Std, d.Summary.Std[r])
		e.Min = append(e.Min, d.Summary.Min[r])
		e.Max = append(e.Max, d.Summary.Max[r])
	}
	return e
}

// WriteDistributionJSON emits one Distribution as indented JSON.
func WriteDistributionJSON(w io.Writer, d Distribution) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exportOf(d))
}

// WriteDistributionsJSON emits several Distributions (a Fig 12/14-style
// comparison) as one JSON array.
func WriteDistributionsJSON(w io.Writer, ds []Distribution) error {
	out := make([]exportedDistribution, len(ds))
	for i, d := range ds {
		out[i] = exportOf(d)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteDistributionCSV emits a Distribution as CSV: one row per SSD, one
// column per ladder rung (nanoseconds), matching how the paper's figures
// plot one line per SSD.
func WriteDistributionCSV(w io.Writer, d Distribution) error {
	cw := csv.NewWriter(w)
	header := append([]string{"ssd"}, stats.LadderLabels...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, l := range d.Ladders {
		row := []string{strconv.Itoa(i)}
		for r := 0; r < stats.NumRungs; r++ {
			row = append(row, strconv.FormatFloat(l.Rung(r), 'f', 0, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV emits the scatter samples as CSV rows of
// (ssd, completion_ns, latency_ns) — the raw material of the paper's
// Fig 10 plot.
func WriteFig10CSV(w io.Writer, r Fig10Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ssd", "at_ns", "latency_ns"}); err != nil {
		return err
	}
	for ssd, log := range r.Logs {
		for _, s := range log {
			row := []string{
				strconv.Itoa(ssd),
				strconv.FormatInt(s.At, 10),
				strconv.FormatInt(s.Latency, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParallelBenchRow is one serial-vs-parallel wall-clock measurement of
// an experiment fan-out (bench_test.go's BenchmarkParallelSpeedup);
// BENCH_parallel.json holds a list of them.
type ParallelBenchRow struct {
	// Experiment names the fan-out being timed, e.g. "fig12+fig13".
	Experiment string `json:"experiment"`
	// Parallel is the worker-pool width of the parallel arm
	// (runner.DefaultParallel when the flag was 0).
	Parallel int `json:"parallel"`
	// SerialMs/ParallelMs are wall-clock, not simulated, times.
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	// Speedup is SerialMs / ParallelMs.
	Speedup float64 `json:"speedup_x"`
}

// WriteParallelBenchJSON emits the speedup summary as indented JSON,
// through the same export path the distribution reports use.
func WriteParallelBenchJSON(w io.Writer, rows []ParallelBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// EngineBenchRow is one engine-throughput measurement: how many
// discrete events per wall-clock second the simulator's inner loop
// sustains on a given configuration (bench_test.go's
// BenchmarkEngineThroughput); BENCH_engine.json holds a list of them.
// Events/sec multiplies every figure and sweep the repository runs, so
// its trajectory is archived per commit like the other BENCH files.
type EngineBenchRow struct {
	// Experiment names the driven workload, e.g. "headline-64ssd".
	Experiment string `json:"experiment"`
	NumSSDs    int    `json:"num_ssds"`
	// Events is the number of engine steps the run fired.
	Events int64 `json:"events"`
	// IOs is the number of I/Os completed across all jobs.
	IOs int64 `json:"ios"`
	// WallMs is host wall-clock time for the run, not simulated time.
	WallMs float64 `json:"wall_ms"`
	// EventsPerSec is the headline metric: Events / (WallMs/1000).
	EventsPerSec float64 `json:"events_per_sec"`
	// Arrivals / ArrivalsPerSec are set by the open-loop multiplexer
	// benchmarks (BenchmarkTenantMux): offered arrivals processed and
	// the wall-clock rate they were processed at. Zero (omitted) for
	// closed-loop rows.
	Arrivals       int64   `json:"arrivals,omitempty"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec,omitempty"`
	// MeanLatNs is the mean simulated completion latency of the row's
	// workload in nanoseconds — set by the I/O-path rows
	// (BenchmarkIOPathLatency), where the figure under guard is the
	// latency itself rather than a wall-clock rate. Zero (omitted) for
	// throughput rows.
	MeanLatNs float64 `json:"mean_lat_ns,omitempty"`
}

// WriteEngineBenchJSON emits the engine-throughput summary as indented
// JSON, through the same export path the other BENCH files use.
func WriteEngineBenchJSON(w io.Writer, rows []EngineBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// ReadDistributionJSON parses what WriteDistributionJSON wrote — round-trip
// support for external tooling and tests.
func ReadDistributionJSON(rd io.Reader) (Distribution, error) {
	var e exportedDistribution
	if err := json.NewDecoder(rd).Decode(&e); err != nil {
		return Distribution{}, err
	}
	if len(e.Mean) != stats.NumRungs {
		return Distribution{}, fmt.Errorf("core: %d rungs in JSON, want %d", len(e.Mean), stats.NumRungs)
	}
	d := Distribution{Config: e.Config}
	for _, row := range e.SSDs {
		if len(row) != stats.NumRungs {
			return Distribution{}, fmt.Errorf("core: ssd row has %d rungs", len(row))
		}
		var l stats.Ladder
		l.Avg = row[0]
		for i := 0; i < 5; i++ {
			l.P[i] = int64(row[i+1])
		}
		l.Max = int64(row[6])
		d.Ladders = append(d.Ladders, l)
	}
	d.Summary = stats.Summarize(d.Ladders)
	return d, nil
}
