// Package core is the library's public surface: it assembles the complete
// simulated testbed of Section III — a dual-socket Xeon host, the PCIe
// switch fabric, 64 NVMe SSDs, the Linux-like kernel with its background
// daemon population — and exposes the paper's four tuning knobs as named
// configurations:
//
//	Default      Section IV-A: stock kernel, stock firmware
//	CHRT         Section IV-B: + FIO at SCHED_FIFO 99
//	Isolcpus     Section IV-C: + isolcpus/nohz_full/rcu_nocbs/idle=poll/max_cstate=1
//	IRQAffinity  Section IV-D: + every NVMe vector pinned to its queue CPU
//	ExpFirmware  Section IV-E: + experimental firmware with SMART disabled
//
// Each figure and table of the evaluation section has a RunFigNN function
// that regenerates it; see EXPERIMENTS.md for the index.
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/irq"
	"repro/internal/kernel"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config is one named kernel/firmware configuration.
type Config struct {
	Name string
	// FIOClass/FIORTPrio set the workload threads' scheduling class
	// (chrt -f 99 in the paper).
	FIOClass  sched.Class
	FIORTPrio int
	// Isolate applies the Section IV-C boot options to all workload CPUs.
	Isolate bool
	// PinIRQs pins all 2,560 vectors to their queue CPUs and disables the
	// balancer.
	PinIRQs bool
	// Firmware selects the SSD firmware build.
	Firmware nvme.FirmwareKind
	// Mode selects interrupt vs polling completion (extension).
	Mode kernel.CompletionMode
	// AutoIsolate enables the Section VI future-work scheduler policy:
	// CPU-bound tasks are automatically kept off CPUs hosting I/O-bound
	// pinned tasks — no chrt, no isolcpus.
	AutoIsolate bool
	// BalancerPolicy selects the IRQ balancer algorithm; BalanceAffine is
	// the Section VI future-work "better IRQ allocation algorithm".
	BalancerPolicy irq.Policy
	// Coalesce enables NVMe interrupt coalescing (extension; see
	// kernel.Coalescing).
	Coalesce kernel.Coalescing
	// Timeout arms the host's per-command timeout/retry/abort machinery
	// (extension; see kernel.TimeoutPolicy). Zero means commands wait
	// forever, as on an untuned host.
	Timeout kernel.TimeoutPolicy
	// Health attaches a per-drive health tracker (health.Tracker) to the
	// kernel, fed by every managed completion. Consumers: adaptive hedge
	// deadlines (raid.Tolerance.Adaptive) and the overload/budget coupling
	// in TimeoutPolicy.
	Health bool
	// Device selects the SSD speed class for the whole fleet (extension;
	// the zero value is the paper's Table I flash device, nvme.ClassULL
	// the Z-NAND-class ultra-low-latency part).
	Device nvme.DeviceClass
	// Passthrough gives every workload job a tenant-owned SQ/CQ pair,
	// bypassing the kernel tier entirely (extension; see
	// fio.JobSpec.Passthrough). The kernel's timeout/retry machinery
	// never sees passthrough I/O, whatever Timeout says.
	Passthrough bool
}

// Default is the Section IV-A stock configuration.
func Default() Config {
	return Config{Name: "default", FIOClass: sched.ClassCFS}
}

// CHRT adds the highest FIO process priority (Section IV-B).
func CHRT() Config {
	c := Default()
	c.Name = "chrt"
	c.FIOClass = sched.ClassFIFO
	c.FIORTPrio = 99
	return c
}

// Isolcpus adds CPU isolation boot options (Section IV-C).
func Isolcpus() Config {
	c := CHRT()
	c.Name = "isolcpus"
	c.Isolate = true
	return c
}

// IRQAffinity adds vector pinning (Section IV-D). Fig 9 and Fig 13(a) use
// this configuration.
func IRQAffinity() Config {
	c := Isolcpus()
	c.Name = "irq"
	c.PinIRQs = true
	return c
}

// ExpFirmware adds the experimental SMART-disabled firmware (Section IV-E).
func ExpFirmware() Config {
	c := IRQAffinity()
	c.Name = "expfw"
	c.Firmware = nvme.FirmwareNoSMART
	return c
}

// FaultTolerance is the tuned kernel with the host-side tolerance
// machinery armed: per-command timeouts with abort and bounded-backoff
// retry. RAID-level degraded reads and hedging are per-client knobs
// (raid.Tolerance); this configuration supplies the kernel half.
func FaultTolerance() Config {
	c := IRQAffinity()
	c.Name = "fault-tolerant"
	c.Timeout = kernel.DefaultTimeoutPolicy()
	return c
}

// AdaptiveTolerance is FaultTolerance with the per-drive health tracker
// armed: the kernel learns each SSD's latency profile (Jacobson/Karels
// EWMA) and RAID clients with Tolerance.Adaptive hedge at the straggler
// drive's own learned deadline instead of a stripe-wide static quantile.
func AdaptiveTolerance() Config {
	c := FaultTolerance()
	c.Name = "adaptive"
	c.Health = true
	return c
}

// AdaptiveBudgets is AdaptiveTolerance plus the back-pressure half of the
// control plane: per-drive retry-budget token buckets (a misbehaving
// drive burns its budget and sheds to reconstruction instead of
// retry-storming) and the overload watermark (hedging pauses and
// timeouts widen while host inflight is saturated).
func AdaptiveBudgets() Config {
	c := AdaptiveTolerance()
	c.Name = "adaptive-budgets"
	c.Timeout.Budget = 8
	c.Timeout.BudgetRefill = 2 * sim.Millisecond
	c.Timeout.OverloadWatermark = 128
	c.Timeout.OverloadTimeoutScale = 2
	return c
}

// AllKernelConfigs returns the four configurations compared in Fig 12.
func AllKernelConfigs() []Config {
	return []Config{Default(), CHRT(), Isolcpus(), IRQAffinity()}
}

// FutureSched is the Section VI prototype: the default kernel with the
// auto-isolating placement policy — no manual tuning at all.
func FutureSched() Config {
	c := Default()
	c.Name = "auto-sched"
	c.AutoIsolate = true
	return c
}

// FutureIRQ is the Section VI prototype: the default kernel with an
// affinity-aware IRQ balancer instead of the stock one.
func FutureIRQ() Config {
	c := Default()
	c.Name = "affine-irq"
	c.BalancerPolicy = irq.BalanceAffine
	return c
}

// FutureBoth combines both Section VI prototypes.
func FutureBoth() Config {
	c := FutureSched()
	c.Name = "auto-both"
	c.BalancerPolicy = irq.BalanceAffine
	return c
}

// Options configure system construction.
type Options struct {
	// NumSSDs defaults to 64 (one host's share of the array).
	NumSSDs int
	Seed    uint64
	Config  Config
	// Daemons defaults to kernel.DefaultDaemons(); pass an empty non-nil
	// slice to boot without background processes.
	Daemons []kernel.DaemonSpec
	// Geom defaults to the Table I device; tests may use nand.TinyGeometry.
	Geom nand.Geometry
	// TraceEvents > 0 attaches an LTTng-like tracer retaining that many
	// raw dispatch records.
	TraceEvents int
	// FirmwareOverride, when non-zero-valued, replaces the whole firmware
	// config (not just the kind).
	FirmwareOverride *nvme.Firmware
	// FaultPlan, when non-nil, arms a fault injector over the fleet at
	// boot; the resulting Injector (and its failure trace) is exposed as
	// System.Faults.
	FaultPlan *fault.Plan
}

// System is one booted host attached to its share of the all-flash array.
type System struct {
	Eng    *sim.Engine
	Host   *topology.Host
	Fabric *pcie.Fabric
	SSDs   []*nvme.Controller
	Sched  *sched.Scheduler
	IRQ    *irq.Controller
	Kernel *kernel.Kernel
	Tracer *trace.Tracer
	Faults *fault.Injector
	Config Config
	Seed   uint64
}

// NewSystem boots a system under the given configuration.
func NewSystem(opt Options) *System {
	if opt.NumSSDs == 0 {
		opt.NumSSDs = 64
	}
	if opt.Geom.Channels == 0 {
		opt.Geom = nand.TableIGeometry()
	}
	if opt.Daemons == nil {
		opt.Daemons = kernel.DefaultDaemons()
	}
	cfg := opt.Config
	if cfg.Name == "" {
		cfg = Default()
	}

	eng := sim.NewEngine()
	host := topology.XeonE52690v2()

	boot := sched.BootOptions{}
	if cfg.Isolate {
		wl := host.WorkloadCPUs()
		boot.Isolcpus = wl
		boot.NoHzFull = wl
		boot.RCUNocbs = wl
		boot.IdlePoll = true
		boot.MaxCState = 1
	}
	siblings := make([]int, host.NumLogical())
	for i := range siblings {
		siblings[i] = host.CPU(i).Sibling
	}
	sch := sched.New(eng, sched.Config{
		NumCPUs:            host.NumLogical(),
		Boot:               boot,
		Siblings:           siblings,
		Seed:               opt.Seed,
		AutoIsolateIOBound: cfg.AutoIsolate,
	})

	popt := pcie.Options{NumSSDs: opt.NumSSDs}
	if cfg.Device == nvme.ClassULL {
		// A ULL fleet implies a ULL-era interconnect: same two-level
		// topology, but Gen4 signaling and cut-through switch silicon
		// (~250 ns/hop) instead of the 2016 store-and-forward Gen3
		// parts. Nobody deploys a ~3 µs device behind a 5 µs fabric:
		// the fixed round trip drops to 1 µs, and the doubled lane rate
		// keeps the shared uplink out of the queueing regime at the
		// IOPS a 64-device ULL fleet sustains.
		popt.HopLatency = 250 * sim.Nanosecond
		popt.BytesPerLanePerSec = pcie.Gen4BytesPerLanePerSec
	}
	fab := pcie.NewFabric(eng, popt)

	fw := nvme.DefaultFirmware()
	fw.Kind = cfg.Firmware
	if opt.FirmwareOverride != nil {
		fw = *opt.FirmwareOverride
	}
	ssds := make([]*nvme.Controller, opt.NumSSDs)
	for i := range ssds {
		ssds[i] = nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, Geom: opt.Geom, FW: fw, Seed: opt.Seed,
			Class: cfg.Device,
		})
	}

	socketOf := make([]int, host.NumLogical())
	for i := range socketOf {
		socketOf[i] = host.CPU(i).Socket
	}
	ic := irq.New(eng, sch, irq.Config{
		NumSSDs:       opt.NumSSDs,
		NumCPUs:       host.NumLogical(),
		Seed:          opt.Seed,
		StartBalanced: !cfg.PinIRQs,
		Policy:        cfg.BalancerPolicy,
		SocketOf:      socketOf,
	})
	if cfg.PinIRQs {
		ic.PinAll()
	}

	kcfg := kernel.Config{
		Sched: sch, IRQ: ic, SSDs: ssds, Mode: cfg.Mode,
		Coalesce: cfg.Coalesce, Timeout: cfg.Timeout, Seed: opt.Seed,
	}
	if cfg.Health {
		hc := health.DefaultConfig()
		kcfg.Health = &hc
	}
	k := kernel.New(eng, kcfg)
	k.StartDaemons(opt.Daemons)

	sys := &System{
		Eng: eng, Host: host, Fabric: fab, SSDs: ssds,
		Sched: sch, IRQ: ic, Kernel: k, Config: cfg, Seed: opt.Seed,
	}
	if opt.FaultPlan != nil {
		sys.Faults = fault.NewInjector(eng, ssds, *opt.FaultPlan)
	}
	if opt.TraceEvents > 0 {
		sys.Tracer = trace.New(eng, opt.TraceEvents)
		sys.Tracer.AttachSched(sch)
		sys.Tracer.AttachIRQ(ic)
	}
	return sys
}

// BootCmdline renders the kernel command line this configuration implies,
// in the paper's Section IV-C notation.
func (s *System) BootCmdline() string {
	if !s.Config.Isolate {
		return ""
	}
	return "isolcpus=4-19,24-39 nohz_full=4-19,24-39 rcu_nocbs=4-19,24-39 " +
		"processor.max_cstate=1 idle=poll"
}

// FormatAll restores every SSD to FOB (the pre-run methodology of
// Section III-B) and runs the engine until the formats complete.
func (s *System) FormatAll() {
	remaining := len(s.SSDs)
	for _, d := range s.SSDs {
		d.Format(func() { remaining-- })
	}
	for remaining > 0 {
		s.Eng.RunUntil(s.Eng.Now().Add(100 * sim.Millisecond))
	}
}

func (s *System) String() string {
	return fmt.Sprintf("AFA system: %d SSDs, %d logical CPUs, config=%s",
		len(s.SSDs), s.Host.NumLogical(), s.Config.Name)
}
