package core

import "testing"

// TestIOPathAblationShape pins the structural contract of the I/O-path
// grid at quick-test scale: cell order (device-major), per-arm path
// markers (interrupts only on the interrupt arms, poll spins only on
// the spinning arms), and the tolerance interaction — the injected
// transient errors are retried invisibly by the kernel arms and surface
// raw on the passthrough arm.
func TestIOPathAblationShape(t *testing.T) {
	runs := RunIOPathAblation(sweepOpts())
	if len(runs) != len(IOPathDevices)*len(IOPathArms) {
		t.Fatalf("ablation produced %d cells, want %d",
			len(runs), len(IOPathDevices)*len(IOPathArms))
	}
	i := 0
	for _, dev := range IOPathDevices {
		for _, arm := range IOPathArms {
			r := runs[i]
			i++
			if want := dev.String() + "/" + arm; r.Name != want {
				t.Fatalf("cell %d is %q, want %q", i-1, r.Name, want)
			}
			if r.IOs == 0 {
				t.Errorf("%s served no I/Os", r.Name)
			}
			irqDriven := arm == "irq" || arm == "coalesced"
			if gotIRQs := r.LocalIRQs+r.RemoteIRQs > 0; gotIRQs != irqDriven {
				t.Errorf("%s: interrupts=%v, want %v", r.Name, gotIRQs, irqDriven)
			}
			spinning := arm == "polling" || arm == "passthrough"
			if gotSpins := r.PollSpins > 0; gotSpins != spinning {
				t.Errorf("%s: pollspins=%d, spinning arm=%v", r.Name, r.PollSpins, spinning)
			}
			if arm == "passthrough" {
				if r.Retried != 0 || r.TimedOut != 0 {
					t.Errorf("%s: kernel rescued passthrough I/O (retried=%d timedout=%d)",
						r.Name, r.Retried, r.TimedOut)
				}
				if r.Errors == 0 {
					t.Errorf("%s: injected transient errors did not surface to the tenant", r.Name)
				}
			} else {
				if r.Errors != 0 {
					t.Errorf("%s: %d errors leaked past the kernel retry machinery", r.Name, r.Errors)
				}
				if r.Retried == 0 {
					t.Errorf("%s: kernel arm retried nothing against the fault probe", r.Name)
				}
			}
		}
	}
}

// TestIOPathOrdering pins the figure's two verdicts: on the flash
// device the paths stay within the paper's device-bound band, and on
// the ULL device polling and passthrough beat the stock interrupt path
// by at least 2× mean latency — host software, not the device, is the
// dominant term.
func TestIOPathOrdering(t *testing.T) {
	runs := RunIOPathAblation(sweepOpts())
	mean := map[string]float64{}
	for _, r := range runs {
		mean[r.Name] = r.Mean()
	}
	// Flash: faster paths still help, but the ~25 µs device bounds the
	// win well below 2×.
	for _, arm := range []string{"polling", "passthrough"} {
		ratio := mean["flash/irq"] / mean["flash/"+arm]
		if ratio <= 1.0 || ratio >= 2.0 {
			t.Errorf("flash %s ratio %.2f× vs irq, want modest (1×..2×)", arm, ratio)
		}
	}
	// ULL: the acceptance inversion.
	for _, arm := range []string{"polling", "passthrough"} {
		if ratio := mean["ull/irq"] / mean["ull/"+arm]; ratio < 2.0 {
			t.Errorf("ull %s ratio %.2f× vs irq, want ≥2×", arm, ratio)
		}
	}
	// Passthrough strictly beats kernel polling on ULL: the remaining
	// gap is exactly the kernel submit/complete path.
	if mean["ull/passthrough"] >= mean["ull/polling"] {
		t.Errorf("ull passthrough mean %.0f ≥ polling %.0f",
			mean["ull/passthrough"], mean["ull/polling"])
	}
}

// TestIOPathLadderShape pins the sweepable form: one pooled
// distribution for the fastest arm, ready for RunSeedSweep.
func TestIOPathLadderShape(t *testing.T) {
	d := RunIOPathLadder(sweepOpts())
	if d.Config != "iopath-ull-passthrough" {
		t.Errorf("Config = %q", d.Config)
	}
	if len(d.Ladders) == 0 || d.Summary.N == 0 {
		t.Errorf("ladder empty: %d ladders, summary over %d", len(d.Ladders), d.Summary.N)
	}
}
