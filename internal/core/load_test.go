package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
)

func loadOpts() ExpOptions {
	return ExpOptions{Runtime: 60 * sim.Millisecond, Seed: 7, NumSSDs: 8}
}

// TestLoadAblationKnee is the experiment's headline contract: the open
// arm shows the hockey stick (tail at and past 100% offered load blows
// up over the pre-knee rungs) and the admission arm keeps the
// latency-sensitive class on the pre-knee part of the curve even at
// 110% offered load.
func TestLoadAblationKnee(t *testing.T) {
	a := RunLoadAblation(loadOpts())
	if a.Capacity <= 0 {
		t.Fatalf("capacity probe returned %v", a.Capacity)
	}
	if got, want := len(a.Runs), 2*len(loadFracs); got != want {
		t.Fatalf("ablation produced %d runs, want %d", got, want)
	}

	byArm := map[string]map[float64]LoadRun{}
	for _, r := range a.Runs {
		if byArm[r.Arm] == nil {
			byArm[r.Arm] = map[float64]LoadRun{}
		}
		byArm[r.Arm][r.Frac] = r
		if r.Offered <= 0 || r.Completed <= 0 {
			t.Errorf("%s: offered=%d completed=%d", r.Name, r.Offered, r.Completed)
		}
	}

	// Open arm: no admission means everything offered is admitted, and
	// the tail at >=100% load is at least 5x the pre-knee tail.
	pre := byArm["open"][0.4]
	for _, r := range a.Runs {
		if r.Arm == "open" && r.Offered != r.Admitted {
			t.Errorf("open arm at %.0f%%: offered %d != admitted %d", r.Frac*100, r.Offered, r.Admitted)
		}
	}
	for _, f := range []float64{1.1, 1.2} {
		hot := byArm["open"][f]
		if hot.Total.Rung(2) < 5*pre.Total.Rung(2) {
			t.Errorf("open arm: p99.9 at %.0f%% = %.1fµs, not 5x the 40%% rung's %.1fµs — no knee",
				f*100, hot.Total.Rung(2)/1e3, pre.Total.Rung(2)/1e3)
		}
	}
	if _, ratio, ok := a.Knee("open"); !ok {
		t.Error("Knee(open) found no knee")
	} else if ratio < 5 {
		t.Errorf("Knee(open) ratio %.1f < 5", ratio)
	}

	// Admission arm: the gated classes shed/throttle past their budgets,
	// and the latency-sensitive class p99.9 at 110% stays within 2x of
	// its own pre-knee value.
	hot := byArm["admit"][1.1]
	if hot.Shed == 0 {
		t.Error("admit arm at 110%: background class shed nothing")
	}
	if hot.Throttled == 0 {
		t.Error("admit arm at 110%: throughput class throttled nothing")
	}
	preLS := byArm["admit"][0.4].Class[kernel.ClassLatency].Ladder
	hotLS := hot.Class[kernel.ClassLatency].Ladder
	if hotLS.Rung(2) > 2*preLS.Rung(2) {
		t.Errorf("admit arm: LS p99.9 at 110%% = %.1fµs > 2x pre-knee %.1fµs",
			hotLS.Rung(2)/1e3, preLS.Rung(2)/1e3)
	}
	// The latency-sensitive class itself is never gated.
	if ls := hot.Class[kernel.ClassLatency]; ls.Shed != 0 || ls.Throttled != 0 {
		t.Errorf("admit arm gated the latency-sensitive class: %+v", ls)
	}

	var buf bytes.Buffer
	WriteLoadAblation(&buf, a)
	out := buf.String()
	for _, want := range []string{"capacity", "open arm:", "admit arm:", "open-arm knee"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	t.Logf("load ablation:\n%s", out)
}

// TestLoadLadderShape: the sweepable form returns one ladder per QoS
// class and is deterministic at a fixed seed.
func TestLoadLadderShape(t *testing.T) {
	o := loadOpts()
	d := RunLoadLadder(o)
	if len(d.Ladders) != kernel.NumQoSClasses {
		t.Fatalf("ladder count = %d, want %d", len(d.Ladders), kernel.NumQoSClasses)
	}
	if d.Config != "load-admit-110" {
		t.Fatalf("config = %q", d.Config)
	}
	again := RunLoadLadder(o)
	if d.Summary != again.Summary {
		t.Error("same-seed load ladders differ")
	}
}
