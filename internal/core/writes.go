// Write-path fault experiments: the four-arm degraded-write ablation
// (clean RMW, degraded, degraded + rebuild, degraded + rebuild +
// tolerance) and the pooled write-tail ladder for seed sweeps. The
// paper's tail events (SMART windows, GC storms) hit writes hardest;
// these runners measure what the RAID small-write penalty and a member
// outage do to the client-visible write ladder, and how much the
// write-side tolerance stack (kernel timeouts + suspicion routing +
// hedged parity writes) buys back while a rebuild stream competes for
// the same devices.

package core

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/raid"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// writeRebuildThrottle is the ablation's rebuild-rate knob: the pause
// between consecutive rebuilt stripes. raid.RebuildSpec.Throttle exposes
// it to library users; examples/chaos shows the trade-off.
const writeRebuildThrottle = 100 * sim.Microsecond

// DemoWritePlan builds the write-ablation fault schedule on the
// FaultStripeWidth data stripe: member 0 is pulled a quarter of the way
// in and replaced at the midpoint (the rebuild target), member 1's
// firmware stalls during the rebuild phase, member 2 throws transient
// command errors, and member 3 programs slowly. The stall window sits
// after the outage on purpose: while member 0 is gone, every
// parity-logged write needs all surviving peers, and overlapping a peer
// stall with the outage would make even a perfectly-tolerant host wait
// out the kernel timeout ladder.
func DemoWritePlan(horizon sim.Duration) fault.Plan {
	h := sim.Time(0).Add(horizon)
	return fault.Plan{Profiles: []fault.Profile{
		{SSD: 0, DropAt: sim.Time(0).Add(horizon / 4), RecoverAt: sim.Time(0).Add(horizon / 2)},
		{SSD: 1, FirmwareStalls: fault.PeriodicStalls(
			sim.Time(0).Add(5*horizon/8), horizon/2, 20*sim.Millisecond, h)},
		{SSD: 2, TransientRate: 0.002},
		{SSD: 3, WriteSlowdown: 4},
	}}
}

// WriteRun is one arm of the degraded-write ablation.
type WriteRun struct {
	Name   string
	Ladder stats.Ladder
	// Client-level counters (see raid.Result).
	Requests          int64
	Failed            int64
	SubIOErrors       int64
	RMWReads          int64
	DataWrites        int64
	ParityWrites      int64
	DegradedWrites    int64
	ReconstructWrites int64
	ParityLogWrites   int64
	UnprotectedWrites int64
	HedgedWrites      int64
	WriteHedgeWins    int64
	DupCompletions    int64
	Suspicions        int64
	Probes            int64
	// IOStats is the kernel tolerance machinery's activity.
	IOStats kernel.IOStats
	// Rebuild is the rebuild stream's snapshot (nil for arms without one).
	Rebuild *raid.RebuildResult
	// Trace is the run's failure trace (empty for the clean arm).
	Trace string
}

// writeClientSpec is the common foreground write workload of every arm.
func writeClientSpec(name string, cfg Config, o ExpOptions, tol *raid.Tolerance) raid.ClientSpec {
	stripe := make([]int, FaultStripeWidth)
	for i := range stripe {
		stripe[i] = i
	}
	return raid.ClientSpec{
		Name: name, Workload: raid.WorkloadWrite, Stripe: stripe,
		Parity: FaultStripeWidth, Runtime: o.Runtime,
		Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio, Tol: tol, Seed: o.Seed,
	}
}

// writeRebuildSpec reconstructs member 0 from its recovery instant, one
// stripe per writeRebuildThrottle plus service time, sized to keep the
// stream busy for the rest of the run.
func writeRebuildSpec(o ExpOptions, cpu int) raid.RebuildSpec {
	survivors := make([]int, 0, FaultStripeWidth-1)
	for i := 1; i < FaultStripeWidth; i++ {
		survivors = append(survivors, i)
	}
	return raid.RebuildSpec{
		Survivors: survivors, Parity: FaultStripeWidth, Target: 0,
		CPU:      cpu,
		StartAt:  sim.Time(0).Add(o.Runtime / 2),
		Stripes:  int64(o.Runtime / (400 * sim.Microsecond)),
		Throttle: writeRebuildThrottle,
	}
}

// RunWriteAblation measures the client-visible RMW write ladder in four
// arms:
//
//   - clean: a healthy fleet, pure read-modify-write;
//   - degraded: DemoWritePlan (member pulled, then replaced) with kernel
//     timeouts armed but no RAID-level tolerance — errors fail requests
//     and every command to the dead member rides the timeout ladder;
//   - rebuild: the same plus the rebuild stream competing with
//     foreground writes from the replacement instant;
//   - tolerant: the same plus the full write tolerance stack — suspicion
//     routing, parity-only logging, hedged parity writes.
//
// The headline mirrors the read ablation: the tolerant arm's maximum
// stays hedge-bounded (sub-millisecond-class) while the untolerant
// degraded arms pay multi-millisecond timeouts.
func RunWriteAblation(o ExpOptions) []WriteRun {
	o = o.withDefaults()
	if o.NumSSDs <= FaultStripeWidth {
		panic(fmt.Sprintf("core: write ablation needs > %d SSDs", FaultStripeWidth))
	}

	run := func(name string, cfg Config, plan *fault.Plan, rebuild bool, tol *raid.Tolerance) WriteRun {
		opt := Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
			Geom: o.Geom, FaultPlan: plan}
		sys := NewSystem(opt)
		cpus := sys.Host.WorkloadCPUs()
		spec := writeClientSpec(name, cfg, o, tol)
		spec.CPU = cpus[0]
		var rb *raid.Rebuilder
		if rebuild {
			rb = raid.NewRebuilder(sys.Eng, sys.Kernel, writeRebuildSpec(o, cpus[len(cpus)-1]))
			rb.Start(nil)
		}
		res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{spec})[0]
		out := WriteRun{
			Name:              name,
			Ladder:            res.Ladder,
			Requests:          res.Requests,
			Failed:            res.FailedRequests,
			SubIOErrors:       res.SubIOErrors,
			RMWReads:          res.RMWReads,
			DataWrites:        res.DataWrites,
			ParityWrites:      res.ParityWrites,
			DegradedWrites:    res.DegradedWrites,
			ReconstructWrites: res.ReconstructWrites,
			ParityLogWrites:   res.ParityLogWrites,
			UnprotectedWrites: res.UnprotectedWrites,
			HedgedWrites:      res.HedgedWrites,
			WriteHedgeWins:    res.WriteHedgeWins,
			DupCompletions:    res.DupCompletions,
			Suspicions:        res.Suspicions,
			Probes:            res.Probes,
			IOStats:           sys.Kernel.IOStats(),
		}
		if rb != nil {
			r := rb.Result()
			out.Rebuild = &r
		}
		if sys.Faults != nil {
			out.Trace = sys.Faults.TraceString()
		}
		return out
	}

	// Four independent boots fanned out in parallel; each arm builds its
	// own plan and tolerance inside its job (DemoWritePlan is a pure
	// function of the horizon), so no fault-schedule state crosses
	// workers. Every faulted arm arms kernel timeouts: an offline device
	// never completes commands, so a host with no timeout at all would
	// simply hang — "untolerant" here means no RAID-level tolerance.
	type writeArm struct {
		name     string
		cfg      Config
		faulted  bool
		rebuild  bool
		tolerant bool
	}
	arms := []writeArm{
		{name: "clean", cfg: IRQAffinity()},
		{name: "degraded", cfg: FaultTolerance(), faulted: true},
		{name: "rebuild", cfg: FaultTolerance(), faulted: true, rebuild: true},
		{name: "tolerant", cfg: FaultTolerance(), faulted: true, rebuild: true, tolerant: true},
	}
	return runner.Map(o.runnerOpts(), arms, func(_ int, a writeArm) WriteRun {
		var plan *fault.Plan
		if a.faulted {
			p := DemoWritePlan(o.Runtime)
			plan = &p
		}
		var tol *raid.Tolerance
		if a.tolerant {
			tol = raid.DefaultTolerance(FaultStripeWidth)
		}
		return run(a.name, a.cfg, plan, a.rebuild, tol)
	})
}

// RunWriteLadder is the sweepable single-distribution form of the
// tolerant write arm: the full fault plan, rebuild stream, and tolerance
// stack at one seed, returning the write ladder for RunSeedSweep
// pooling (n seeds read as one n-client fleet).
func RunWriteLadder(o ExpOptions) Distribution {
	o = o.withDefaults()
	if o.NumSSDs <= FaultStripeWidth {
		panic(fmt.Sprintf("core: write ladder needs > %d SSDs", FaultStripeWidth))
	}
	cfg := FaultTolerance()
	plan := DemoWritePlan(o.Runtime)
	sys := NewSystem(Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
		Geom: o.Geom, FaultPlan: &plan})
	cpus := sys.Host.WorkloadCPUs()
	spec := writeClientSpec("write-ladder", cfg, o, raid.DefaultTolerance(FaultStripeWidth))
	spec.CPU = cpus[0]
	rb := raid.NewRebuilder(sys.Eng, sys.Kernel, writeRebuildSpec(o, cpus[len(cpus)-1]))
	rb.Start(nil)
	res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{spec})[0]
	ladders := []stats.Ladder{res.Ladder}
	return Distribution{Config: "writes-tolerant", Ladders: ladders,
		Summary: stats.Summarize(ladders)}
}

// WriteWriteAblation renders the four-arm comparison: ladders side by
// side, then the write-path and kernel counters, then the rebuild
// streams' progress.
func WriteWriteAblation(w io.Writer, runs []WriteRun) {
	fmt.Fprintf(w, "%-10s", "lat(µs)")
	for _, r := range runs {
		fmt.Fprintf(w, " %12s", r.Name)
	}
	fmt.Fprintln(w)
	for i := 0; i < stats.NumRungs; i++ {
		fmt.Fprintf(w, "%-10s", stats.LadderLabels[i])
		for _, r := range runs {
			fmt.Fprintf(w, " %12.1f", r.Ladder.Rung(i)/1e3)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "counter")
	for _, r := range runs {
		fmt.Fprintf(w, " %10s", r.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(WriteRun) int64) {
		fmt.Fprintf(w, "%-18s", label)
		for _, r := range runs {
			fmt.Fprintf(w, " %10d", f(r))
		}
		fmt.Fprintln(w)
	}
	row("requests", func(r WriteRun) int64 { return r.Requests })
	row("failed", func(r WriteRun) int64 { return r.Failed })
	row("sub-I/O errors", func(r WriteRun) int64 { return r.SubIOErrors })
	row("rmw reads", func(r WriteRun) int64 { return r.RMWReads })
	row("data writes", func(r WriteRun) int64 { return r.DataWrites })
	row("parity writes", func(r WriteRun) int64 { return r.ParityWrites })
	row("degraded writes", func(r WriteRun) int64 { return r.DegradedWrites })
	row("reconstruct", func(r WriteRun) int64 { return r.ReconstructWrites })
	row("parity-log", func(r WriteRun) int64 { return r.ParityLogWrites })
	row("unprotected", func(r WriteRun) int64 { return r.UnprotectedWrites })
	row("hedged writes", func(r WriteRun) int64 { return r.HedgedWrites })
	row("hedge wins", func(r WriteRun) int64 { return r.WriteHedgeWins })
	row("dup completions", func(r WriteRun) int64 { return r.DupCompletions })
	row("suspicions", func(r WriteRun) int64 { return r.Suspicions })
	row("probes", func(r WriteRun) int64 { return r.Probes })
	row("kern timeouts", func(r WriteRun) int64 { return r.IOStats.Timeouts })
	row("kern wr timeouts", func(r WriteRun) int64 { return r.IOStats.WriteTimeouts })
	row("kern retries", func(r WriteRun) int64 { return r.IOStats.Retries })
	row("kern exhausted", func(r WriteRun) int64 { return r.IOStats.Exhausted })

	for _, r := range runs {
		if r.Rebuild == nil {
			continue
		}
		rb := r.Rebuild
		fmt.Fprintf(w, "\n%s rebuild: %d/%d stripes (failed %d) reads=%d writes=%d done=%v",
			r.Name, rb.StripesRebuilt, rb.Spec.Stripes, rb.StripesFailed,
			rb.Reads, rb.Writes, rb.Done)
		if rb.Done {
			fmt.Fprintf(w, " elapsed=%.1fms", float64(rb.FinishedAt.Sub(rb.StartedAt))/1e6)
		}
		fmt.Fprintln(w)
	}
}
