package core

import (
	"fmt"

	"repro/internal/fio"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RunSpec describes one measurement run on a booted system.
type RunSpec struct {
	// Geometry maps SSDs to CPUs; defaults to the Fig 5 layout.
	Geometry *topology.Geometry
	// Runtime per FIO instance (the paper uses 120 s; the default here is
	// 2 s, which at ~28 kIOPS/SSD still gives ~56 k samples per device).
	Runtime sim.Duration
	// Workload defaults to 4 KiB randread QD1.
	RW      fio.RW
	BS      int
	IODepth int
	// LatLogSSDs enables fio latency logging on SSDs [0, LatLogSSDs).
	// The paper's footnote 1 logs only 32 of 64 for accuracy.
	LatLogSSDs  int
	LatLogLimit int
	// Phases enables blktrace-style per-I/O latency decomposition on all
	// jobs.
	Phases bool
	// Warmup lets the system settle (daemons started, balancer run)
	// before measurement begins.
	Warmup sim.Duration
}

func (r RunSpec) withDefaults(s *System) RunSpec {
	if r.Geometry == nil {
		r.Geometry = topology.DefaultGeometry(s.Host, len(s.SSDs))
	}
	if r.Runtime == 0 {
		r.Runtime = 2 * sim.Second
	}
	if r.RW == "" {
		r.RW = fio.RandRead
	}
	if r.BS == 0 {
		r.BS = 4096
	}
	if r.IODepth == 0 {
		r.IODepth = 1
	}
	if r.Warmup == 0 {
		r.Warmup = 50 * sim.Millisecond
	}
	return r
}

// RunFIO executes one measurement run: one pinned FIO thread per active
// SSD in the geometry, configured per the system's Config. Results are
// indexed by SSD (nil for SSDs inactive in this geometry).
func (s *System) RunFIO(spec RunSpec) []*fio.Result {
	spec = spec.withDefaults(s)
	s.Eng.RunUntil(s.Eng.Now().Add(spec.Warmup))

	var jobs []fio.JobSpec
	for _, ssd := range spec.Geometry.ActiveSSDs() {
		js := fio.JobSpec{
			Name:        fmt.Sprintf("nvme%d", ssd),
			SSD:         ssd,
			RW:          spec.RW,
			BS:          spec.BS,
			IODepth:     spec.IODepth,
			Runtime:     spec.Runtime,
			CPUsAllowed: []int{spec.Geometry.ThreadCPU[ssd]},
			Class:       s.Config.FIOClass,
			RTPrio:      s.Config.FIORTPrio,
			Phases:      spec.Phases,
			Passthrough: s.Config.Passthrough,
			Seed:        s.Seed ^ uint64(ssd)<<32,
		}
		if ssd < spec.LatLogSSDs {
			js.LatLog = true
			js.LatLogLimit = spec.LatLogLimit
		}
		jobs = append(jobs, js)
	}
	grouped := fio.RunGroup(s.Eng, s.Kernel, jobs)

	out := make([]*fio.Result, len(s.SSDs))
	for _, r := range grouped {
		out[r.Spec.SSD] = r
	}
	return out
}

// Ladders extracts the per-SSD percentile ladders from run results,
// skipping inactive SSDs.
func Ladders(results []*fio.Result) []stats.Ladder {
	var out []stats.Ladder
	for _, r := range results {
		if r != nil {
			out = append(out, r.Ladder)
		}
	}
	return out
}

// Distribution is the per-figure output: one latency ladder per SSD plus
// the cross-SSD aggregate.
type Distribution struct {
	Config  string
	Ladders []stats.Ladder
	Summary stats.LadderSummary
}

// NewDistribution assembles a Distribution from run results.
func NewDistribution(cfg string, results []*fio.Result) Distribution {
	l := Ladders(results)
	return Distribution{Config: cfg, Ladders: l, Summary: stats.Summarize(l)}
}

// RunSeedSweep reruns a single-distribution experiment at n derived
// seeds (runner.Seeds: o.Seed, o.Seed+1, …) and returns the per-seed
// distributions in sweep order, each tagged "config#seed". The runs are
// independent systems and fan out across ExpOptions.Parallel workers —
// parallel seed sweeps are what make calibration experiments (e.g. the
// per-drive hedge-quantile study in ROADMAP.md) cheap. Any sweep run is
// reproducible by hand: position i is exactly the unswept experiment at
// `-seed o.Seed+i`.
func RunSeedSweep(o ExpOptions, n int, run func(ExpOptions) Distribution) []Distribution {
	o = o.withDefaults()
	return runner.Map(o.runnerOpts(), runner.Seeds(o.Seed, n), func(_ int, seed uint64) Distribution {
		so := o
		so.Seed = seed
		d := run(so)
		d.Config = fmt.Sprintf("%s#%d", d.Config, seed)
		return d
	})
}

// MergeSweep pools every per-seed ladder of a sweep into one
// distribution, so n seeds × m SSDs read as one n·m-device fleet — the
// cheap way to grow tail-percentile resolution without longer runs.
func MergeSweep(name string, ds []Distribution) Distribution {
	var ladders []stats.Ladder
	for _, d := range ds {
		ladders = append(ladders, d.Ladders...)
	}
	return Distribution{Config: name, Ladders: ladders, Summary: stats.Summarize(ladders)}
}
