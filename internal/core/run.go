package core

import (
	"fmt"

	"repro/internal/fio"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RunSpec describes one measurement run on a booted system.
type RunSpec struct {
	// Geometry maps SSDs to CPUs; defaults to the Fig 5 layout.
	Geometry *topology.Geometry
	// Runtime per FIO instance (the paper uses 120 s; the default here is
	// 2 s, which at ~28 kIOPS/SSD still gives ~56 k samples per device).
	Runtime sim.Duration
	// Workload defaults to 4 KiB randread QD1.
	RW      fio.RW
	BS      int
	IODepth int
	// LatLogSSDs enables fio latency logging on SSDs [0, LatLogSSDs).
	// The paper's footnote 1 logs only 32 of 64 for accuracy.
	LatLogSSDs  int
	LatLogLimit int
	// Phases enables blktrace-style per-I/O latency decomposition on all
	// jobs.
	Phases bool
	// Warmup lets the system settle (daemons started, balancer run)
	// before measurement begins.
	Warmup sim.Duration
}

func (r RunSpec) withDefaults(s *System) RunSpec {
	if r.Geometry == nil {
		r.Geometry = topology.DefaultGeometry(s.Host, len(s.SSDs))
	}
	if r.Runtime == 0 {
		r.Runtime = 2 * sim.Second
	}
	if r.RW == "" {
		r.RW = fio.RandRead
	}
	if r.BS == 0 {
		r.BS = 4096
	}
	if r.IODepth == 0 {
		r.IODepth = 1
	}
	if r.Warmup == 0 {
		r.Warmup = 50 * sim.Millisecond
	}
	return r
}

// RunFIO executes one measurement run: one pinned FIO thread per active
// SSD in the geometry, configured per the system's Config. Results are
// indexed by SSD (nil for SSDs inactive in this geometry).
func (s *System) RunFIO(spec RunSpec) []*fio.Result {
	spec = spec.withDefaults(s)
	s.Eng.RunUntil(s.Eng.Now().Add(spec.Warmup))

	var jobs []fio.JobSpec
	for _, ssd := range spec.Geometry.ActiveSSDs() {
		js := fio.JobSpec{
			Name:        fmt.Sprintf("nvme%d", ssd),
			SSD:         ssd,
			RW:          spec.RW,
			BS:          spec.BS,
			IODepth:     spec.IODepth,
			Runtime:     spec.Runtime,
			CPUsAllowed: []int{spec.Geometry.ThreadCPU[ssd]},
			Class:       s.Config.FIOClass,
			RTPrio:      s.Config.FIORTPrio,
			Phases:      spec.Phases,
			Seed:        s.Seed ^ uint64(ssd)<<32,
		}
		if ssd < spec.LatLogSSDs {
			js.LatLog = true
			js.LatLogLimit = spec.LatLogLimit
		}
		jobs = append(jobs, js)
	}
	grouped := fio.RunGroup(s.Eng, s.Kernel, jobs)

	out := make([]*fio.Result, len(s.SSDs))
	for _, r := range grouped {
		out[r.Spec.SSD] = r
	}
	return out
}

// Ladders extracts the per-SSD percentile ladders from run results,
// skipping inactive SSDs.
func Ladders(results []*fio.Result) []stats.Ladder {
	var out []stats.Ladder
	for _, r := range results {
		if r != nil {
			out = append(out, r.Ladder)
		}
	}
	return out
}

// Distribution is the per-figure output: one latency ladder per SSD plus
// the cross-SSD aggregate.
type Distribution struct {
	Config  string
	Ladders []stats.Ladder
	Summary stats.LadderSummary
}

// NewDistribution assembles a Distribution from run results.
func NewDistribution(cfg string, results []*fio.Result) Distribution {
	l := Ladders(results)
	return Distribution{Config: cfg, Ladders: l, Summary: stats.Summarize(l)}
}
