// The load-vs-tail knee: an offered-load ladder of open-loop tenant
// traffic over the array. Closed-loop FIO jobs cannot see the knee —
// their arrival rate collapses with the service rate (coordinated
// omission), so a saturated array just reports lower IOPS at a gentle
// tail. The open-loop multiplexer keeps offering I/O at the configured
// rate no matter how far behind the array falls, which is what makes
// the hockey stick visible: below the knee, tail latency tracks the
// device; past it, queues grow for the rest of the run and the tail is
// set by the backlog, not the media.
//
// The ablation runs the same tenant population twice per rung: an
// "open" arm with no admission control, and an "admit" arm where the
// throughput and background classes are token-bucket-limited to a fixed
// budget provisioned from measured capacity. The question the ablation
// answers: can per-class admission keep the latency-sensitive class on
// the pre-knee part of the curve while the offered load crosses 100%?

package core

import (
	"fmt"
	"io"

	"repro/internal/fio"
	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// loadFracs are the ladder rungs as fractions of measured capacity:
// four pre-knee points, then a dense sweep across the knee region.
var loadFracs = []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.2}

const (
	// loadTenantsPerSSD sets the tenant population (× NumSSDs). The mix
	// is deterministic in the tenant index: 20% latency-sensitive
	// Poisson, 50% throughput MMPP, 30% background diurnal.
	loadTenantsPerSSD = 16
	// loadProbeQD is the closed-loop queue depth of the capacity probe.
	loadProbeQD = 8
	// Admission budgets of the "admit" arm, as fractions of measured
	// capacity: the throughput class is throttled (backpressure) at its
	// budget and the background class is shed outright, so the total
	// admitted rate stays below the knee even at 120% offered. The
	// latency-sensitive class is never gated — protecting it is the
	// point.
	admitTPShare = 0.40
	admitBGShare = 0.08
)

// Per-class shares of the offered load.
var loadClassShare = [kernel.NumQoSClasses]float64{
	kernel.ClassLatency:    0.2,
	kernel.ClassThroughput: 0.5,
	kernel.ClassBackground: 0.3,
}

// loadClassOf deterministically assigns tenant i its QoS class.
func loadClassOf(i int) kernel.QoSClass {
	switch m := i % 10; {
	case m < 2:
		return kernel.ClassLatency
	case m < 7:
		return kernel.ClassThroughput
	default:
		return kernel.ClassBackground
	}
}

// MeasureCapacity probes the array's closed-loop saturation throughput:
// one pinned FIO thread per SSD at QD loadProbeQD, summed across the
// fleet. This is the "100%" the load ladder is scaled against.
func MeasureCapacity(o ExpOptions) float64 {
	o = o.withDefaults()
	sys := o.newSystem(IRQAffinity())
	res := sys.RunFIO(RunSpec{Runtime: o.Runtime, IODepth: loadProbeQD})
	var total float64
	for _, r := range res {
		if r != nil {
			total += r.IOPS()
		}
	}
	return total
}

// LoadRun is one (rung, arm) cell of the load ablation.
type LoadRun struct {
	Name string
	// Arm is "open" (no admission) or "admit" (class budgets armed).
	Arm string
	// Frac is the offered load as a fraction of measured capacity;
	// OfferedRate is the same in I/Os per second.
	Frac        float64
	OfferedRate float64
	Tenants     int
	// Aggregate arrival accounting (sums over classes).
	Offered   int64
	Admitted  int64
	Completed int64
	Errors    int64
	Shed      int64 // AdmitShed + queue-overflow drops
	Throttled int64
	// Total is the all-classes completion ladder, measured from each
	// arrival's intended instant (coordinated omission included).
	Total stats.Ladder
	// Class is the per-QoS-class breakdown.
	Class [kernel.NumQoSClasses]fio.ClassResult
}

// LoadAblation is the full rung × arm grid plus the capacity it was
// scaled against.
type LoadAblation struct {
	// Capacity is the closed-loop probe result in I/Os per second.
	Capacity float64
	// Runs holds the "open" arm at every rung, then the "admit" arm at
	// every rung (use Arm/Frac rather than position).
	Runs []LoadRun
}

// loadMuxConfig assembles the multiplexer for one rung: admission
// budgets are fixed absolute rates provisioned from capacity (they do
// not scale with the rung — an operator provisions once).
func loadMuxConfig(name string, admit bool, capacity float64, sys *System, runtime sim.Duration, seed uint64) fio.MuxConfig {
	cfg := fio.MuxConfig{
		Name:    name,
		Runtime: runtime,
		Seed:    seed,
		CPUs:    sys.Host.WorkloadCPUs(),
	}
	if admit {
		cfg.Class[kernel.ClassThroughput] = fio.ClassConfig{
			Rate:   admitTPShare * capacity,
			Policy: fio.AdmitThrottle,
		}
		cfg.Class[kernel.ClassBackground] = fio.ClassConfig{
			Rate:   admitBGShare * capacity,
			Policy: fio.AdmitShed,
		}
	}
	return cfg
}

// addLoadTenants populates the mux with the standard tenant mix at a
// total offered rate of `offered` I/Os per second, spread round-robin
// across the SSDs. Latency-sensitive tenants are Poisson readers,
// throughput tenants bursty MMPP readers, background tenants diurnal
// writers.
func addLoadTenants(m *fio.Multiplexer, numSSDs int, offered float64) {
	n := numSSDs * loadTenantsPerSSD
	var counts [kernel.NumQoSClasses]int
	for i := 0; i < n; i++ {
		counts[loadClassOf(i)]++
	}
	var perTenant [kernel.NumQoSClasses]float64
	for c := range perTenant {
		if counts[c] > 0 {
			perTenant[c] = loadClassShare[c] * offered / float64(counts[c])
		}
	}
	for i := 0; i < n; i++ {
		class := loadClassOf(i)
		spec := fio.TenantSpec{SSD: i % numSSDs, Class: class}
		switch class {
		case kernel.ClassLatency:
			spec.RW = fio.RandRead
			spec.Arrival = fio.ArrivalSpec{Kind: fio.ArrivalPoisson, Rate: perTenant[class]}
		case kernel.ClassThroughput:
			spec.RW = fio.RandRead
			spec.Arrival = fio.ArrivalSpec{Kind: fio.ArrivalMMPP, Rate: perTenant[class]}
		case kernel.ClassBackground:
			spec.RW = fio.RandWrite
			spec.Arrival = fio.ArrivalSpec{Kind: fio.ArrivalDiurnal, Rate: perTenant[class]}
		default:
			panic("core: unhandled QoS class in tenant mix")
		}
		m.AddTenant(spec)
	}
}

// runLoadRung boots one system and runs the tenant mix at frac ×
// capacity offered load, with or without the admission budgets.
func runLoadRung(name string, frac float64, admit bool, capacity float64, o ExpOptions) LoadRun {
	sys := o.newSystem(IRQAffinity())
	// Settle the system (daemons started, balancer run) like RunFIO's
	// warmup before arrivals begin.
	sys.Eng.RunUntil(sys.Eng.Now().Add(50 * sim.Millisecond))
	cfg := loadMuxConfig(name, admit, capacity, sys, o.Runtime, o.Seed)
	m := fio.NewMultiplexer(sys.Eng, sys.Kernel, cfg)
	offered := frac * capacity
	addLoadTenants(m, len(sys.SSDs), offered)
	res := m.Run()

	arm := "open"
	if admit {
		arm = "admit"
	}
	out := LoadRun{
		Name:        name,
		Arm:         arm,
		Frac:        frac,
		OfferedRate: offered,
		Tenants:     res.Tenants,
		Offered:     res.Offered,
		Admitted:    res.Admitted,
		Completed:   res.Completed,
		Errors:      res.Errors,
		Total:       res.Total,
		Class:       res.Class,
	}
	for c := range res.Class {
		out.Shed += res.Class[c].Shed + res.Class[c].QueueShed
		out.Throttled += res.Class[c].Throttled
	}
	return out
}

// RunLoadAblation measures the load-vs-tail curve: the capacity probe
// runs first (serially — every rung is scaled against the same number),
// then the rung × arm grid fans out across o.Parallel workers. Each
// cell is an independent boot; all multiplexer state is built inside
// the worker.
func RunLoadAblation(o ExpOptions) LoadAblation {
	o = o.withDefaults()
	capacity := MeasureCapacity(o)

	type loadCell struct {
		name  string
		frac  float64
		admit bool
	}
	cells := make([]loadCell, 0, 2*len(loadFracs))
	for _, admit := range []bool{false, true} {
		arm := "open"
		if admit {
			arm = "admit"
		}
		for _, f := range loadFracs {
			cells = append(cells, loadCell{
				name:  fmt.Sprintf("load-%s-%d", arm, int(f*100+0.5)),
				frac:  f,
				admit: admit,
			})
		}
	}
	runs := runner.Map(o.runnerOpts(), cells, func(_ int, c loadCell) LoadRun {
		return runLoadRung(c.name, c.frac, c.admit, capacity, o)
	})
	return LoadAblation{Capacity: capacity, Runs: runs}
}

// Knee locates the hockey stick in one arm: the pre-knee baseline is
// the p99 of the lowest rung, and the knee is the first rung whose p99
// is at least 5× that baseline. ok is false if the arm never crosses
// (the admission arm shouldn't).
func (a LoadAblation) Knee(arm string) (frac float64, ratio float64, ok bool) {
	var base float64
	first := true
	for _, r := range a.Runs {
		if r.Arm != arm {
			continue
		}
		p99 := r.Total.Rung(1)
		if first {
			base = p99
			first = false
			continue
		}
		if base > 0 && p99 >= 5*base {
			return r.Frac, p99 / base, true
		}
	}
	return 0, 0, false
}

// RunLoadLadder is the sweepable single-distribution form: the
// admission arm at 110% offered load, returning the three per-class
// ladders for RunSeedSweep pooling.
func RunLoadLadder(o ExpOptions) Distribution {
	o = o.withDefaults()
	capacity := MeasureCapacity(o)
	res := runLoadRung("load-ladder", 1.1, true, capacity, o)
	ladders := make([]stats.Ladder, 0, kernel.NumQoSClasses)
	for c := range res.Class {
		ladders = append(ladders, res.Class[c].Ladder)
	}
	return Distribution{Config: "load-admit-110", Ladders: ladders,
		Summary: stats.Summarize(ladders)}
}

// WriteLoadAblation renders the grid: per-arm rung tables (arrival
// accounting plus the total and latency-sensitive ladders), then the
// knee verdict.
func WriteLoadAblation(w io.Writer, a LoadAblation) {
	fmt.Fprintf(w, "capacity %.0f IOPS (closed-loop QD%d probe)\n", a.Capacity, loadProbeQD)
	for _, arm := range []string{"open", "admit"} {
		fmt.Fprintf(w, "\n%s arm:\n", arm)
		fmt.Fprintf(w, "%6s %10s %10s %10s %8s %9s %12s %12s %12s %14s\n",
			"load", "offered", "admitted", "completed", "shed", "throttled",
			"p99(µs)", "p99.9(µs)", "max(µs)", "LS-p99.9(µs)")
		for _, r := range a.Runs {
			if r.Arm != arm {
				continue
			}
			ls := r.Class[kernel.ClassLatency].Ladder
			fmt.Fprintf(w, "%5.0f%% %10d %10d %10d %8d %9d %12.1f %12.1f %12.1f %14.1f\n",
				r.Frac*100, r.Offered, r.Admitted, r.Completed, r.Shed, r.Throttled,
				r.Total.Rung(1)/1e3, r.Total.Rung(2)/1e3, r.Total.Rung(6)/1e3,
				ls.Rung(2)/1e3)
		}
	}
	fmt.Fprintln(w)
	if frac, ratio, ok := a.Knee("open"); ok {
		fmt.Fprintf(w, "open-arm knee at %.0f%% load (p99 %.1f× the lowest rung)\n", frac*100, ratio)
	} else {
		fmt.Fprintf(w, "open arm never crossed the 5× knee threshold\n")
	}
	if frac, ratio, ok := a.Knee("admit"); ok {
		fmt.Fprintf(w, "admit-arm knee at %.0f%% load (p99 %.1f× the lowest rung)\n", frac*100, ratio)
	} else {
		fmt.Fprintf(w, "admit arm stayed below the 5× knee threshold across the ladder\n")
	}
}
