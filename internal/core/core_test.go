package core

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Test runs use 16 SSDs and short runtimes to stay fast; the assertions
// check orderings and mechanisms, not absolute values.
func testOpts() ExpOptions {
	return ExpOptions{Runtime: 500 * sim.Millisecond, Seed: 7, NumSSDs: 16, SoloRuns: 2}
}

func TestConfigPresets(t *testing.T) {
	d := Default()
	if d.Name != "default" || d.FIOClass != sched.ClassCFS || d.Isolate || d.PinIRQs {
		t.Fatalf("default = %+v", d)
	}
	c := CHRT()
	if c.FIOClass != sched.ClassFIFO || c.FIORTPrio != 99 {
		t.Fatalf("chrt = %+v", c)
	}
	i := Isolcpus()
	if !i.Isolate || i.FIOClass != sched.ClassFIFO {
		t.Fatalf("isolcpus = %+v", i)
	}
	q := IRQAffinity()
	if !q.PinIRQs || !q.Isolate {
		t.Fatalf("irq = %+v", q)
	}
	e := ExpFirmware()
	if e.Firmware != nvme.FirmwareNoSMART || !e.PinIRQs {
		t.Fatalf("expfw = %+v", e)
	}
	if len(AllKernelConfigs()) != 4 {
		t.Fatal("Fig 12 compares four configurations")
	}
}

func TestNewSystemWiring(t *testing.T) {
	sys := NewSystem(Options{NumSSDs: 8, Seed: 1, Config: IRQAffinity()})
	if len(sys.SSDs) != 8 {
		t.Fatalf("ssds = %d", len(sys.SSDs))
	}
	if sys.Sched.NumCPUs() != 40 {
		t.Fatalf("cpus = %d", sys.Sched.NumCPUs())
	}
	boot := sys.Sched.Boot()
	if len(boot.Isolcpus) != 32 || !boot.IdlePoll || boot.MaxCState != 1 {
		t.Fatalf("boot = %+v", boot)
	}
	for s := 0; s < 8; s++ {
		for q := 0; q < 40; q++ {
			if sys.IRQ.EffectiveCPU(s, q) != q {
				t.Fatal("vectors not pinned under IRQAffinity")
			}
		}
	}
	if got := sys.BootCmdline(); !strings.Contains(got, "isolcpus=4-19,24-39") ||
		!strings.Contains(got, "idle=poll") {
		t.Fatalf("cmdline = %q", got)
	}
	if sys.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDefaultSystemHasBalancerAndNoIsolation(t *testing.T) {
	sys := NewSystem(Options{NumSSDs: 4, Seed: 1, Config: Default()})
	if len(sys.Sched.Boot().Isolcpus) != 0 {
		t.Fatal("default config isolated CPUs")
	}
	if sys.BootCmdline() != "" {
		t.Fatal("default config has boot options")
	}
	scattered := 0
	for q := 0; q < 40; q++ {
		if sys.IRQ.EffectiveCPU(0, q) != q {
			scattered++
		}
	}
	if scattered < 30 {
		t.Fatalf("default config vectors not scattered: %d/40", scattered)
	}
}

func TestFormatAll(t *testing.T) {
	sys := NewSystem(Options{NumSSDs: 4, Seed: 1})
	sys.SSDs[2].Flash.Write(1)
	sys.FormatAll()
	for i, d := range sys.SSDs {
		if !d.Flash.FOB() {
			t.Fatalf("ssd %d not FOB after FormatAll", i)
		}
	}
}

func TestRunFIOResultIndexing(t *testing.T) {
	o := testOpts()
	sys := o.newSystem(ExpFirmware())
	res := sys.RunFIO(RunSpec{Runtime: o.Runtime})
	if len(res) != 16 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("ssd %d missing", i)
		}
		if r.Spec.SSD != i {
			t.Fatal("result order scrambled")
		}
		if r.IOs < 1000 {
			t.Fatalf("ssd %d only %d IOs", i, r.IOs)
		}
	}
}

func TestTuningLadderOrdering(t *testing.T) {
	o := testOpts()
	def := RunFig6(o)
	chrt := RunFig7(o)
	iso := RunFig8(o)
	irq := RunFig9(o)
	exp := RunFig11(o)

	maxRung := 6
	// The default config's worst SSD must show a millisecond-scale CFS
	// stall; chrt bounds everyone near the SMART floor. (The mean-of-max
	// ratio is scale-dependent — at 16 SSDs only some CPUs catch a daemon
	// session — so assert on the robust extremes.)
	if def.Summary.Max[maxRung] < 2e6 {
		t.Fatalf("default worst SSD max=%.0fµs, want ms-scale", def.Summary.Max[maxRung]/1e3)
	}
	if def.Summary.Max[maxRung] < 2*chrt.Summary.Max[maxRung] {
		t.Fatalf("default worst max=%.0f not ≫ chrt worst %.0f",
			def.Summary.Max[maxRung], chrt.Summary.Max[maxRung])
	}
	if def.Summary.Mean[maxRung] < chrt.Summary.Mean[maxRung]*3/2 {
		t.Fatalf("default mean(max)=%.0f not clearly above chrt %.0f",
			def.Summary.Mean[maxRung], chrt.Summary.Mean[maxRung])
	}
	// chrt and isolcpus keep the ~600µs SMART floor.
	for _, d := range []Distribution{chrt, iso, irq} {
		if d.Summary.Mean[maxRung] < 400e3 || d.Summary.Mean[maxRung] > 800e3 {
			t.Fatalf("%s mean(max)=%.0fµs, want the ≈600µs SMART floor",
				d.Config, d.Summary.Mean[maxRung]/1e3)
		}
	}
	// Experimental firmware removes it (paper: ≈600 → ≈90µs).
	if exp.Summary.Mean[maxRung] > 150e3 {
		t.Fatalf("expfw mean(max)=%.0fµs, want ≲100µs", exp.Summary.Mean[maxRung]/1e3)
	}
	// The average itself improves (no remote IPI/cache penalty).
	if irq.Summary.Mean[0] >= iso.Summary.Mean[0] {
		t.Fatalf("irq avg %.0f not better than isolcpus %.0f",
			irq.Summary.Mean[0], iso.Summary.Mean[0])
	}
}

func TestIRQPinningCollapsesCrossSSDSpread(t *testing.T) {
	// The σ(avg) collapse of Fig 12 comes from a few SSDs whose active
	// vector happens to sit locally while the rest pay the remote penalty;
	// resolving it statistically needs the full 64-SSD population.
	o := ExpOptions{Runtime: 200 * sim.Millisecond, Seed: 7, NumSSDs: 64}
	iso := RunFig8(o)
	irq := RunFig9(o)
	if irq.Summary.Std[0] > iso.Summary.Std[0]/2 {
		t.Fatalf("irq σ(avg)=%.0f not ≪ isolcpus σ(avg)=%.0f",
			irq.Summary.Std[0], iso.Summary.Std[0])
	}
}

func TestRunFig10SpikeTrain(t *testing.T) {
	o := testOpts()
	r := RunFig10(o)
	if len(r.Logs) != 8 {
		t.Fatalf("logged %d SSDs, want half of 16", len(r.Logs))
	}
	for i, log := range r.Logs {
		if len(log) == 0 {
			t.Fatalf("ssd %d log empty", i)
		}
	}
	if r.SMARTWindows == 0 {
		t.Fatal("no SMART windows fired")
	}
	if len(r.SpikeClusters) == 0 {
		t.Fatal("no spike clusters detected in the scatter data")
	}
}

func TestRunFig12ReturnsFourConfigs(t *testing.T) {
	o := testOpts()
	o.Runtime = 150 * sim.Millisecond
	ds := RunFig12(o)
	if len(ds) != 4 {
		t.Fatalf("got %d configs", len(ds))
	}
	want := []string{"default", "chrt", "isolcpus", "irq"}
	for i, d := range ds {
		if d.Config != want[i] {
			t.Fatalf("config[%d] = %s, want %s", i, d.Config, want[i])
		}
		if d.Summary.N != 16 {
			t.Fatalf("config %s summarizes %d SSDs", d.Config, d.Summary.N)
		}
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	rows := TableII()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SSDsPerPhysCore != 4 || rows[0].FIOThreadsInSystem != 64 || rows[0].Runs != 1 {
		t.Fatalf("row a = %+v", rows[0])
	}
	if rows[1].SSDsPerPhysCore != 2 || rows[1].FIOThreadsInSystem != 32 || rows[1].Runs != 2 {
		t.Fatalf("row b = %+v", rows[1])
	}
	if rows[2].SSDsPerPhysCore != 1 || rows[2].FIOThreadsInSystem != 16 || rows[2].Runs != 4 {
		t.Fatalf("row c = %+v", rows[2])
	}
	if rows[3].FIOThreadsInSystem != 1 || rows[3].Runs != 64 {
		t.Fatalf("row d = %+v", rows[3])
	}
}

func TestRunFig13Coverage(t *testing.T) {
	o := testOpts()
	o.Runtime = 150 * sim.Millisecond
	o.NumSSDs = 64 // geometries assume the full population
	results := RunFig13(o)
	if len(results) != 4 {
		t.Fatalf("setups = %d", len(results))
	}
	wantLadders := []int{64, 64, 64, 2} // SoloRuns=2 caps row d
	for i, r := range results {
		if len(r.Dist.Ladders) != wantLadders[i] {
			t.Fatalf("setup %s merged %d ladders, want %d",
				r.Row.Fig, len(r.Dist.Ladders), wantLadders[i])
		}
	}
	// The paper's finding: the distributions are similar across setups —
	// medians (avg rung) within ~2x of each other.
	a, d := results[0].Dist.Summary.Mean[0], results[3].Dist.Summary.Mean[0]
	if a > 2*d {
		t.Fatalf("4-SSDs/core avg %.0f ≫ solo avg %.0f; paper found them close", a, d)
	}
}

func TestRunHeadlineImprovement(t *testing.T) {
	o := testOpts()
	h := RunHeadline(o)
	// At test scale (16 SSDs, 500 ms) the improvements are attenuated but
	// must clearly exist; the bench at 64 SSDs and longer runs approaches
	// the paper's ×8 / ×400.
	if h.MeanImprovement() < 1.5 {
		t.Fatalf("mean(max) improvement ×%.1f, want ≥1.5 (paper ×8)", h.MeanImprovement())
	}
	if h.StdImprovement() < 10 {
		t.Fatalf("σ(max) improvement ×%.1f, want ≥10 (paper ×400)", h.StdImprovement())
	}
}

func TestPollingAblation(t *testing.T) {
	o := testOpts()
	o.Runtime = 150 * sim.Millisecond
	o.NumSSDs = 8
	intr, poll := RunPollingAblation(o)
	if poll.Summary.Mean[0] >= intr.Summary.Mean[0] {
		t.Fatalf("polling avg %.0f not better than interrupt %.0f",
			poll.Summary.Mean[0], intr.Summary.Mean[0])
	}
}

func TestFirmwareAblation(t *testing.T) {
	o := testOpts()
	o.NumSSDs = 8
	ds := RunFirmwareAblation(o)
	if len(ds) != 3 {
		t.Fatalf("got %d variants", len(ds))
	}
	std, none, incr := ds[0], ds[1], ds[2]
	if none.Summary.Mean[6] >= std.Summary.Mean[6]/2 {
		t.Fatalf("nosmart max %.0f not ≪ standard %.0f", none.Summary.Mean[6], std.Summary.Mean[6])
	}
	if incr.Summary.Mean[6] >= std.Summary.Mean[6]/2 {
		t.Fatalf("incremental max %.0f not ≪ standard %.0f", incr.Summary.Mean[6], std.Summary.Mean[6])
	}
}

func TestFutureWorkAblation(t *testing.T) {
	o := testOpts()
	o.Runtime = 400 * sim.Millisecond
	ds := RunFutureWorkAblation(o)
	if len(ds) != 5 {
		t.Fatalf("variants = %d", len(ds))
	}
	names := []string{"default", "auto-sched", "affine-irq", "auto-both", "irq"}
	for i, d := range ds {
		if d.Config != names[i] {
			t.Fatalf("variant[%d] = %s", i, d.Config)
		}
	}
	def, autoSched, affine, both, manual := ds[0], ds[1], ds[2], ds[3], ds[4]
	// The auto-isolating scheduler must remove the scheduler-induced part
	// of the worst case; what remains is bounded by the SMART floor, so at
	// this scale expect a clear reduction rather than a fixed ratio.
	if autoSched.Summary.Mean[6] > def.Summary.Mean[6]*8/10 {
		t.Fatalf("auto-sched mean(max) %.0f not clearly below default %.0f",
			autoSched.Summary.Mean[6], def.Summary.Mean[6])
	}
	// The affinity-aware balancer must recover most of the avg gap.
	if affine.Summary.Mean[0] > (def.Summary.Mean[0]+manual.Summary.Mean[0])/2 {
		t.Fatalf("affine-irq avg %.0f did not close the gap (default %.0f, manual %.0f)",
			affine.Summary.Mean[0], def.Summary.Mean[0], manual.Summary.Mean[0])
	}
	// Both together come close to the hand-tuned kernel.
	if both.Summary.Mean[0] > manual.Summary.Mean[0]*1.15 {
		t.Fatalf("auto-both avg %.0f vs manual %.0f; prototypes should nearly match",
			both.Summary.Mean[0], manual.Summary.Mean[0])
	}
}

func TestCoalescingAblation(t *testing.T) {
	o := testOpts()
	o.NumSSDs = 8
	o.Runtime = 200 * sim.Millisecond
	off, on := RunCoalescingAblation(o)
	if off.IOs == 0 || on.IOs == 0 {
		t.Fatal("no IOs")
	}
	offRate := float64(off.Interrupts) / float64(off.IOs)
	onRate := float64(on.Interrupts) / float64(on.IOs)
	if onRate > offRate/1.5 {
		t.Fatalf("coalescing interrupt rate %.2f/IO vs %.2f/IO; expected a big cut", onRate, offRate)
	}
	// At QD8 coalescing is close to latency-neutral (batch reaping saves
	// about what batching delays); the cost must in any case stay bounded
	// by the coalescing timeout.
	diff := on.Dist.Summary.Mean[0] - off.Dist.Summary.Mean[0]
	if diff > 150e3 || diff < -150e3 {
		t.Fatalf("coalescing shifted avg by %.0fns; must stay within the timeout bound", diff)
	}
}

func TestNUMACrossSocketCounted(t *testing.T) {
	// Under the default config with scattered vectors, many deliveries
	// land on the other socket and must be counted.
	sys := NewSystem(Options{NumSSDs: 8, Seed: 3, Config: Default()})
	sys.RunFIO(RunSpec{Runtime: 100 * sim.Millisecond})
	if sys.IRQ.CrossSocketDeliveries() == 0 {
		t.Fatal("no cross-socket deliveries under scattered vectors")
	}
	// Pinned vectors never cross.
	sys2 := NewSystem(Options{NumSSDs: 8, Seed: 3, Config: IRQAffinity()})
	sys2.RunFIO(RunSpec{Runtime: 100 * sim.Millisecond})
	if sys2.IRQ.CrossSocketDeliveries() != 0 {
		t.Fatal("pinned vectors crossed sockets")
	}
}

func TestUsedStateStudy(t *testing.T) {
	o := testOpts()
	o.NumSSDs = 4
	o.Runtime = 200 * sim.Millisecond
	fob, used := RunUsedStateStudy(o, 0.9)
	if used.Summary.Mean[6] <= fob.Summary.Mean[6] {
		t.Fatalf("used-state max %.0f not worse than FOB %.0f (GC should spike)",
			used.Summary.Mean[6], fob.Summary.Mean[6])
	}
}

func TestDeterminism(t *testing.T) {
	o := testOpts()
	o.Runtime = 100 * sim.Millisecond
	a := RunLatencyDistribution(CHRT(), o)
	b := RunLatencyDistribution(CHRT(), o)
	if a.Summary != b.Summary {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	o2 := o
	o2.Seed = 8
	c := RunLatencyDistribution(CHRT(), o2)
	if a.Summary == c.Summary {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestReportRendering(t *testing.T) {
	o := testOpts()
	o.Runtime = 100 * sim.Millisecond
	o.NumSSDs = 4
	d := RunLatencyDistribution(ExpFirmware(), o)

	var sb strings.Builder
	WriteDistributionTable(&sb, d)
	for _, want := range []string{"config=expfw", "99.9999%", "max", "mean(µs)"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("distribution table missing %q:\n%s", want, sb.String())
		}
	}

	sb.Reset()
	WriteComparisonTable(&sb, []Distribution{d, d})
	if !strings.Contains(sb.String(), "std(µs)") {
		t.Fatalf("comparison table missing std block:\n%s", sb.String())
	}

	sb.Reset()
	WriteTableII(&sb)
	if !strings.Contains(sb.String(), "13(d)") || !strings.Contains(sb.String(), "solo") {
		t.Fatalf("Table II rendering:\n%s", sb.String())
	}

	sb.Reset()
	WriteHeadline(&sb, Headline{DefaultMeanMax: 4800e3, DefaultStdMax: 1644e3, TunedMeanMax: 600e3, TunedStdMax: 4e3})
	if !strings.Contains(sb.String(), "×8.0") || !strings.Contains(sb.String(), "×411") {
		t.Fatalf("headline rendering:\n%s", sb.String())
	}

	sb.Reset()
	WriteFig10Summary(&sb, Fig10Result{SMARTWindows: 3})
	if !strings.Contains(sb.String(), "SMART windows=3") {
		t.Fatalf("fig10 rendering:\n%s", sb.String())
	}
}

func TestTracerAttachment(t *testing.T) {
	sys := NewSystem(Options{NumSSDs: 4, Seed: 1, Config: Default(), TraceEvents: 100})
	if sys.Tracer == nil {
		t.Fatal("tracer not attached")
	}
	sys.RunFIO(RunSpec{Runtime: 100 * sim.Millisecond})
	if sys.Tracer.Deliveries() == 0 {
		t.Fatal("tracer saw no IRQ deliveries")
	}
	if sys.Tracer.RemoteFraction() < 0.5 {
		t.Fatalf("default config remote fraction = %v, want most deliveries remote",
			sys.Tracer.RemoteFraction())
	}
	foreign := sys.Tracer.ForeignTasksOn(sys.Host.WorkloadCPUs(), "fio/")
	if len(foreign) == 0 {
		t.Fatal("no background tasks observed on workload CPUs under default config")
	}
}

func TestNoDaemonsOption(t *testing.T) {
	sys := NewSystem(Options{NumSSDs: 2, Seed: 1, Daemons: []kernel.DaemonSpec{}})
	if len(sys.Kernel.Daemons()) != 0 {
		t.Fatal("explicit empty daemon set ignored")
	}
}

func TestTailAtScale(t *testing.T) {
	o := testOpts()
	o.Runtime = 300 * sim.Millisecond
	results := RunTailAtScale(ExpFirmware(), []int{1, 4, 16}, o)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Wider stripes amplify the tail monotonically.
	for i := 1; i < len(results); i++ {
		if results[i].Client.P[0] < results[i-1].Client.P[0] {
			t.Fatalf("width %d client P99 %d below width %d's %d",
				results[i].Width, results[i].Client.P[0],
				results[i-1].Width, results[i-1].Client.P[0])
		}
	}
	// A width-16 stripe's P99 must clearly exceed a single SSD's P99.
	if results[2].Amplification < 1.05 {
		t.Fatalf("width-16 amplification = %.2f, want > 1.05", results[2].Amplification)
	}
}

func TestTailAtScaleWidthBoundsChecked(t *testing.T) {
	o := testOpts()
	o.NumSSDs = 4
	defer func() {
		if recover() == nil {
			t.Fatal("oversized stripe accepted")
		}
	}()
	RunTailAtScale(ExpFirmware(), []int{8}, o)
}

func TestPTSLatencyTestReachesSteadyState(t *testing.T) {
	o := testOpts()
	o.NumSSDs = 8
	rep := RunPTSLatencyTest(ExpFirmware(), o, 100*sim.Millisecond, 10)
	if !rep.Result.Steady {
		t.Fatalf("FOB randread never reached PTS steady state: rounds=%v", rep.Result.Rounds)
	}
	if rep.Result.SteadyAt != 5 {
		t.Fatalf("steady at round %d; a stable FOB workload qualifies at the first full window", rep.Result.SteadyAt)
	}
	if len(rep.Rounds) != rep.Result.SteadyAt {
		t.Fatalf("round records = %d", len(rep.Rounds))
	}
	for _, r := range rep.Rounds {
		if r.AvgLatencyNs < 20e3 || r.AvgLatencyNs > 80e3 {
			t.Fatalf("round avg = %.0fns", r.AvgLatencyNs)
		}
		if r.Ladder.N == 0 {
			t.Fatal("round ladder empty")
		}
	}
}
