package core

import (
	"strings"
	"testing"
)

// TestHedgingAblationShape pins the structural contract of the
// three-arm hedging ablation at quick-test scale: arm order and names,
// health snapshots only where a tracker ran, the adaptive arms firing
// fewer hedges than the static blanket policy, and the budgets arm
// actually shedding retries. The latency acceptance (adaptive+budgets
// p99.9 at or below static with fewer hedges) needs full-length runs to
// resolve the 99.9% rung and is recorded in EXPERIMENTS.md.
func TestHedgingAblationShape(t *testing.T) {
	runs := RunHedgingAblation(sweepOpts())
	if len(runs) != 3 {
		t.Fatalf("ablation produced %d arms, want 3", len(runs))
	}
	wantNames := []string{"static", "adaptive", "adaptive+budgets"}
	for i, r := range runs {
		if r.Name != wantNames[i] {
			t.Fatalf("arm %d is %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Requests == 0 {
			t.Errorf("%s served no requests", r.Name)
		}
		if r.Failed != 0 {
			t.Errorf("%s failed %d requests under full tolerance", r.Name, r.Failed)
		}
		if !strings.Contains(r.Trace, "drop") || !strings.Contains(r.Trace, "storm-start") {
			t.Errorf("%s trace missing imposed faults:\n%s", r.Name, r.Trace)
		}
	}

	static, adaptive, budgets := runs[0], runs[1], runs[2]
	if static.Drives != nil {
		t.Errorf("static arm carries %d health snapshots, want none", len(static.Drives))
	}
	for _, r := range []HedgeRun{adaptive, budgets} {
		if len(r.Drives) != FaultStripeWidth+1 {
			t.Fatalf("%s has %d drive snapshots, want %d", r.Name, len(r.Drives), FaultStripeWidth+1)
		}
		// The tracker must have seen the fleet: the dropped member's
		// timeouts and the slow bin's elevated baseline.
		if r.Drives[0].Timeouts == 0 {
			t.Errorf("%s: dropped member 0 recorded no timeouts", r.Name)
		}
		if r.Drives[3].SRTT <= 2*r.Drives[1].SRTT {
			t.Errorf("%s: slow bin srtt %v not elevated over healthy %v",
				r.Name, r.Drives[3].SRTT, r.Drives[1].SRTT)
		}
		if r.HedgedReads >= static.HedgedReads {
			t.Errorf("%s fired %d hedges, static only %d — per-drive deadlines should hedge less",
				r.Name, r.HedgedReads, static.HedgedReads)
		}
	}

	// Only the budgets arm runs with Budget > 0; against the dropped
	// member it must shed retries rather than storm.
	if static.IOStats.ShedToReconstruct != 0 || adaptive.IOStats.ShedToReconstruct != 0 {
		t.Errorf("budget-less arms shed retries: static=%d adaptive=%d",
			static.IOStats.ShedToReconstruct, adaptive.IOStats.ShedToReconstruct)
	}
	if budgets.IOStats.ShedToReconstruct == 0 {
		t.Error("budgets arm shed no retries during the outage")
	}
	if budgets.IOStats.Retries >= adaptive.IOStats.Retries {
		t.Errorf("budgets arm retried %d times, adaptive %d — budgets should cut retry traffic",
			budgets.IOStats.Retries, adaptive.IOStats.Retries)
	}
}

// TestHedgeLadderShape pins the sweepable form: one pooled distribution
// named for the full control-plane arm, ready for RunSeedSweep.
func TestHedgeLadderShape(t *testing.T) {
	d := RunHedgeLadder(sweepOpts())
	if d.Config != "hedging-adaptive-budgets" {
		t.Errorf("Config = %q", d.Config)
	}
	if len(d.Ladders) != 1 {
		t.Fatalf("ladders = %d, want 1", len(d.Ladders))
	}
	if d.Summary.N != 1 || d.Summary.Max[0] == 0 {
		t.Errorf("summary not built from the run: %+v", d.Summary)
	}
}
