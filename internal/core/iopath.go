// Low-latency I/O-path experiments: the {IRQ, coalesced, polling,
// passthrough} × {flash, ULL} grid — the headline comparison no single
// source paper has. The 2018 paper tuned the 2016-era interrupt-driven
// stack for ~25 µs flash; the related work ("Faster than Flash", the NVMe
// I/O-queues-passthrough paper) describes what replaced it once ~3 µs
// Z-NAND-class devices made host software the dominant latency term. This
// ablation runs both device classes through all four host I/O paths and
// accounts for what each latency win costs in host CPU burn — and what
// the passthrough arm gives up in kernel tolerance (injected transient
// errors retry invisibly on the kernel arms and surface raw on the
// passthrough arm).

package core

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// iopathFaultSSD carries the ablation's tolerance-interaction probe: a
// small transient-error rate on one device. The kernel arms absorb the
// errors through timeout/retry (Retried > 0, Errors ≈ 0); the passthrough
// arm has no kernel underneath, so the same errors surface to the tenant.
const iopathFaultSSD = 1

// iopathTransientRate is the per-command error probability on the probe
// device — high enough to count, low enough to leave the ladders clean.
const iopathTransientRate = 0.004

// IOPathArms lists the four host I/O paths in figure order.
var IOPathArms = []string{"irq", "coalesced", "polling", "passthrough"}

// IOPathDevices lists the device classes in figure order.
var IOPathDevices = []nvme.DeviceClass{nvme.ClassFlash, nvme.ClassULL}

// IOPathRun is one cell of the grid.
type IOPathRun struct {
	Name   string // "flash/polling"
	Device string // flash | ull
	Arm    string // irq | coalesced | polling | passthrough
	// Ladder pools every active SSD's completion latencies.
	Ladder stats.Ladder
	IOs    int64
	// Tolerance interaction (see iopathFaultSSD): Errors are non-success
	// statuses the workload saw; Retried/TimedOut are kernel-tier rescues
	// (always zero on the passthrough arm — there is no kernel to rescue).
	Errors   int64
	Retried  int64
	TimedOut int64
	// Host-CPU-burn accounting: PollSpins counts CQ poll iterations,
	// Interrupts the MSI-X deliveries (local + remote), BusyNs the total
	// host CPU busy time, and CPUPerIONs the busy nanoseconds per I/O —
	// the price column next to the latency win.
	PollSpins  int64
	LocalIRQs  int64
	RemoteIRQs int64
	BusyNs     int64
	CPUPerIONs float64
}

// Mean reports the cell's mean completion latency in nanoseconds.
func (r IOPathRun) Mean() float64 { return r.Ladder.Avg }

// iopathConfig assembles one arm's configuration on one device class.
// Every arm starts from the tuned scheduler side of ExpFirmware (chrt +
// isolcpus + no-SMART firmware) with the host tolerance machinery armed,
// so the arms differ only in the completion path:
//
//   - irq / coalesced run stock MSI-X delivery — vectors spread by the
//     balancer as shipped, so completions pay the hardirq/softirq chain
//     and, usually, a remote delivery (IPI + idle-CPU wake). Pinning the
//     2,560 vectors (Section IV-D) is itself one of the interrupt-era
//     remedies that the polling and passthrough arms subsume: those arms
//     take no interrupt at all, so there is nothing to pin.
//   - polling keeps the kernel submit path but reaps CQEs from the
//     workload thread's own context (no interrupt, no sleep/wake).
//   - passthrough maps the SQ/CQ pair into the tenant and skips the
//     kernel tier in both directions.
func iopathConfig(arm string, dev nvme.DeviceClass) Config {
	cfg := ExpFirmware()
	cfg.PinIRQs = false
	cfg.Timeout = kernel.DefaultTimeoutPolicy()
	cfg.Device = dev
	switch arm {
	case "irq":
		// Stock interrupt delivery as-is.
	case "coalesced":
		cfg.Coalesce = kernel.Coalescing{Threshold: 4, Timeout: 20 * sim.Microsecond}
	case "polling":
		cfg.Mode = kernel.CompletePolling
	case "passthrough":
		cfg.Passthrough = true
	default:
		panic(fmt.Sprintf("core: unknown iopath arm %q", arm))
	}
	cfg.Name = dev.String() + "/" + arm
	return cfg
}

// iopathFaultPlan arms the tolerance-interaction probe.
func iopathFaultPlan() fault.Plan {
	return fault.Plan{Profiles: []fault.Profile{
		{SSD: iopathFaultSSD, TransientRate: iopathTransientRate},
	}}
}

// runIOPathCell boots one (arm, device) system and measures the standard
// per-SSD QD1 randread fleet on it.
func runIOPathCell(arm string, dev nvme.DeviceClass, o ExpOptions) IOPathRun {
	cfg := iopathConfig(arm, dev)
	plan := iopathFaultPlan()
	sys := NewSystem(Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
		Geom: o.Geom, FaultPlan: &plan})
	res := sys.RunFIO(RunSpec{Runtime: o.Runtime})

	out := IOPathRun{
		Name:   cfg.Name,
		Device: dev.String(),
		Arm:    arm,
		Ladder: stats.LadderOf(mergedHistogram(res)),
	}
	for _, r := range res {
		if r == nil {
			continue
		}
		out.IOs += r.IOs
		out.Errors += r.Errors
		out.Retried += r.Retried
		out.TimedOut += r.TimedOut
		out.PollSpins += r.PollSpins
	}
	out.LocalIRQs, out.RemoteIRQs, _ = sys.IRQ.Stats()
	var busy sim.Duration
	for i := 0; i < sys.Sched.NumCPUs(); i++ {
		busy += sys.Sched.CPU(i).BusyTime()
	}
	out.BusyNs = int64(busy)
	if out.IOs > 0 {
		out.CPUPerIONs = float64(out.BusyNs) / float64(out.IOs)
	}
	return out
}

// RunIOPathAblation measures the full 4-arm × 2-device grid. Cells are
// independent boots and fan out across o.Parallel workers; the result is
// ordered device-major (all flash arms, then all ULL arms), matching
// IOPathDevices × IOPathArms.
func RunIOPathAblation(o ExpOptions) []IOPathRun {
	o = o.withDefaults()
	type cell struct {
		arm string
		dev nvme.DeviceClass
	}
	var cells []cell
	for _, dev := range IOPathDevices {
		for _, arm := range IOPathArms {
			cells = append(cells, cell{arm: arm, dev: dev})
		}
	}
	return runner.Map(o.runnerOpts(), cells, func(_ int, c cell) IOPathRun {
		return runIOPathCell(c.arm, c.dev, o)
	})
}

// RunIOPathLadder is the sweepable single-distribution form: the ULL
// passthrough cell's per-SSD ladders at one seed, for RunSeedSweep
// pooling (the fastest arm is the one whose tail needs the resolution).
func RunIOPathLadder(o ExpOptions) Distribution {
	o = o.withDefaults()
	cfg := iopathConfig("passthrough", nvme.ClassULL)
	plan := iopathFaultPlan()
	sys := NewSystem(Options{NumSSDs: o.NumSSDs, Seed: o.Seed, Config: cfg,
		Geom: o.Geom, FaultPlan: &plan})
	res := sys.RunFIO(RunSpec{Runtime: o.Runtime})
	d := NewDistribution("iopath-ull-passthrough", res)
	return d
}

// WriteIOPathAblation renders the grid: per-device rung × arm latency
// tables, the counter rows underneath, and the two verdict lines the
// acceptance question asks — does the flash device keep the paper's
// ordering, and do polling/passthrough invert it on ULL.
func WriteIOPathAblation(w io.Writer, runs []IOPathRun) {
	byDev := map[string][]IOPathRun{}
	var devOrder []string
	for _, r := range runs {
		if _, ok := byDev[r.Device]; !ok {
			devOrder = append(devOrder, r.Device)
		}
		byDev[r.Device] = append(byDev[r.Device], r)
	}
	for _, dev := range devOrder {
		arms := byDev[dev]
		fmt.Fprintf(w, "%s device, per-SSD QD1 randread (pooled ladders):\n", dev)
		fmt.Fprintf(w, "%-10s", "lat(µs)")
		for _, r := range arms {
			fmt.Fprintf(w, " %14s", r.Arm)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s", "mean")
		for _, r := range arms {
			fmt.Fprintf(w, " %14.1f", r.Mean()/1e3)
		}
		fmt.Fprintln(w)
		for i := 0; i < stats.NumRungs; i++ {
			fmt.Fprintf(w, "%-10s", stats.LadderLabels[i])
			for _, r := range arms {
				fmt.Fprintf(w, " %14.1f", r.Ladder.Rung(i)/1e3)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-10s", "max")
		for _, r := range arms {
			fmt.Fprintf(w, " %14.1f", float64(r.Ladder.Max)/1e3)
		}
		fmt.Fprintln(w)

		fmt.Fprintln(w)
		row := func(label string, f func(IOPathRun) int64) {
			fmt.Fprintf(w, "%-10s", label)
			for _, r := range arms {
				fmt.Fprintf(w, " %14d", f(r))
			}
			fmt.Fprintln(w)
		}
		row("ios", func(r IOPathRun) int64 { return r.IOs })
		row("errors", func(r IOPathRun) int64 { return r.Errors })
		row("retried", func(r IOPathRun) int64 { return r.Retried })
		row("timedout", func(r IOPathRun) int64 { return r.TimedOut })
		row("pollspins", func(r IOPathRun) int64 { return r.PollSpins })
		row("irqs", func(r IOPathRun) int64 { return r.LocalIRQs + r.RemoteIRQs })
		row("cpu(ms)", func(r IOPathRun) int64 { return r.BusyNs / 1e6 })
		fmt.Fprintf(w, "%-10s", "cpu/io(µs)")
		for _, r := range arms {
			fmt.Fprintf(w, " %14.2f", r.CPUPerIONs/1e3)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}

	// Verdicts: the flash ordering and the ULL inversion.
	find := func(dev, arm string) *IOPathRun {
		for i := range runs {
			if runs[i].Device == dev && runs[i].Arm == arm {
				return &runs[i]
			}
		}
		return nil
	}
	if irq, poll, pt := find("flash", "irq"), find("flash", "polling"), find("flash", "passthrough"); irq != nil && poll != nil && pt != nil {
		fmt.Fprintf(w, "flash: polling %.2f× and passthrough %.2f× vs irq mean — "+
			"the paper's regime: the ~25 µs device bounds the win\n",
			irq.Mean()/poll.Mean(), irq.Mean()/pt.Mean())
	}
	if irq, poll, pt := find("ull", "irq"), find("ull", "polling"), find("ull", "passthrough"); irq != nil && poll != nil && pt != nil {
		verdict := "INVERTED: host software dominated the device"
		if irq.Mean() < 2*poll.Mean() || irq.Mean() < 2*pt.Mean() {
			verdict = "NOT inverted (expected ≥2× for polling and passthrough)"
		}
		fmt.Fprintf(w, "ull:   polling %.2f× and passthrough %.2f× vs irq mean — %s\n",
			irq.Mean()/poll.Mean(), irq.Mean()/pt.Mean(), verdict)
	}
	if ptF, ptU := find("flash", "passthrough"), find("ull", "passthrough"); ptF != nil && ptU != nil {
		fmt.Fprintf(w, "tolerance: passthrough surfaced %d raw errors (flash) / %d (ull); "+
			"kernel arms retried them invisibly\n", ptF.Errors, ptU.Errors)
	}
}
