package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestWriteAblationShape pins the four-arm layout and the headline the
// ablation exists to show: the tolerant arm's maximum stays below the
// untolerant degraded arms' timeout-dominated tails.
func TestWriteAblationShape(t *testing.T) {
	rs := RunWriteAblation(sweepOpts())
	wantNames := []string{"clean", "degraded", "rebuild", "tolerant"}
	if len(rs) != len(wantNames) {
		t.Fatalf("arms = %d, want %d", len(rs), len(wantNames))
	}
	for i, r := range rs {
		if r.Name != wantNames[i] {
			t.Fatalf("arm %d is %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Requests == 0 {
			t.Fatalf("arm %q served no requests", r.Name)
		}
	}
	clean := rs[0]
	if clean.Failed != 0 || clean.DegradedWrites != 0 || clean.Trace != "" {
		t.Fatalf("clean arm saw faults: failed=%d degraded=%d trace=%q",
			clean.Failed, clean.DegradedWrites, clean.Trace)
	}
	if clean.RMWReads != 2*clean.Requests {
		t.Fatalf("clean rmw reads = %d for %d requests", clean.RMWReads, clean.Requests)
	}
	if rs[1].Rebuild != nil || rs[2].Rebuild == nil || rs[3].Rebuild == nil {
		t.Fatal("rebuild stream attached to the wrong arms")
	}
	if rs[2].Rebuild.StripesRebuilt == 0 {
		t.Fatal("the rebuild stream made no progress")
	}
	tol, untol := rs[3], rs[2]
	if tol.Ladder.Max >= untol.Ladder.Max {
		t.Fatalf("tolerant max %d not below untolerant max %d",
			tol.Ladder.Max, untol.Ladder.Max)
	}
	if tol.DegradedWrites == 0 {
		t.Fatal("tolerant arm never parity-logged through the outage")
	}
	if untol.IOStats.Timeouts == 0 {
		t.Fatal("untolerant arm never hit the kernel timeout ladder")
	}
}

// runWriteChaos flattens one tolerant-arm write run — trace, counters,
// ladder, and rebuild progress — into a string that must be byte-stable
// across replays of the same seed.
func runWriteChaos(seed uint64) string {
	o := sweepOpts()
	o.Seed = seed
	o.Runtime = 40 * sim.Millisecond
	rs := RunWriteAblation(o)
	var buf bytes.Buffer
	for _, r := range rs {
		fmt.Fprintf(&buf, "%s: %+v\nkernel: %+v\nladder: %v\ntrace:\n%s",
			r.Name, struct {
				Req, Fail, Deg, Rec, PLog, Unp, Hedge, Wins, Dups, Susp, Probe int64
			}{r.Requests, r.Failed, r.DegradedWrites, r.ReconstructWrites,
				r.ParityLogWrites, r.UnprotectedWrites, r.HedgedWrites,
				r.WriteHedgeWins, r.DupCompletions, r.Suspicions, r.Probes},
			r.IOStats, r.Ladder, r.Trace)
		if r.Rebuild != nil {
			fmt.Fprintf(&buf, "rebuild: %+v\n", *r.Rebuild)
		}
	}
	return buf.String()
}

// TestWriteChaosDeterminism extends the PR-2 replay contract to the write
// path: same seed, same fault plan, same rebuild stream — byte-identical
// trace, counters, ladders, and rebuild progress.
func TestWriteChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two four-arm ablations per seed")
	}
	property := func(seed uint64) bool {
		a, b := runWriteChaos(seed), runWriteChaos(seed)
		if a != b {
			t.Logf("seed %d diverged:\n--- run A ---\n%s--- run B ---\n%s", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteLadderSweepParallelIdentical runs the pooled tolerant-write
// ladder sweep serially and over an oversubscribed pool: the exported
// bytes must match.
func TestWriteLadderSweepParallelIdentical(t *testing.T) {
	export := func(o ExpOptions) []byte {
		var buf bytes.Buffer
		sweep := RunSeedSweep(o, 3, RunWriteLadder)
		if err := WriteDistributionsJSON(&buf, sweep); err != nil {
			t.Fatal(err)
		}
		if err := WriteDistributionJSON(&buf, MergeSweep("pooled", sweep)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := sweepOpts()
	serial.Runtime = 40 * sim.Millisecond
	serial.Parallel = 1
	parallel := serial
	parallel.Parallel = 8
	a, b := export(serial), export(parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("write-ladder sweep diverged: serial %d bytes, parallel %d bytes",
			len(a), len(b))
	}
	if d := RunSeedSweep(serial, 3, RunWriteLadder); d[0].Config != "writes-tolerant#7" {
		t.Fatalf("sweep tag = %q", d[0].Config)
	}
}
