package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// WriteDistributionTable renders a Distribution the way the figures are
// read: one row per ladder rung, with the cross-SSD mean, standard
// deviation, and min/max spread, in microseconds.
func WriteDistributionTable(w io.Writer, d Distribution) {
	fmt.Fprintf(w, "config=%s  ssds=%d\n", d.Config, d.Summary.N)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "rung", "mean(µs)", "std(µs)", "min(µs)", "max(µs)")
	for r := 0; r < stats.NumRungs; r++ {
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f %12.1f\n",
			stats.LadderLabels[r],
			d.Summary.Mean[r]/1e3, d.Summary.Std[r]/1e3,
			d.Summary.Min[r]/1e3, d.Summary.Max[r]/1e3)
	}
}

// WriteComparisonTable renders several Distributions side by side (Fig 12 /
// Fig 14 style): one block for means, one for standard deviations.
func WriteComparisonTable(w io.Writer, ds []Distribution) {
	fmt.Fprintf(w, "%-10s", "mean(µs)")
	for _, d := range ds {
		fmt.Fprintf(w, " %12s", d.Config)
	}
	fmt.Fprintln(w)
	for r := 0; r < stats.NumRungs; r++ {
		fmt.Fprintf(w, "%-10s", stats.LadderLabels[r])
		for _, d := range ds {
			fmt.Fprintf(w, " %12.1f", d.Summary.Mean[r]/1e3)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n%-10s", "std(µs)")
	for _, d := range ds {
		fmt.Fprintf(w, " %12s", d.Config)
	}
	fmt.Fprintln(w)
	for r := 0; r < stats.NumRungs; r++ {
		fmt.Fprintf(w, "%-10s", stats.LadderLabels[r])
		for _, d := range ds {
			fmt.Fprintf(w, " %12.1f", d.Summary.Std[r]/1e3)
		}
		fmt.Fprintln(w)
	}
}

// WriteTableII renders Table II.
func WriteTableII(w io.Writer) {
	fmt.Fprintf(w, "%-8s %16s %16s %16s %16s %6s\n",
		"Fig", "SSDs/phys core", "IRQ/log core", "FIO/log core", "FIO threads", "runs")
	for _, row := range TableII() {
		per := fmt.Sprintf("%d", row.SSDsPerPhysCore)
		if row.SSDsPerPhysCore == 0 {
			per = "solo"
		}
		fmt.Fprintf(w, "%-8s %16s %16d %16d %16d %6d\n",
			row.Fig, per, row.IRQPerLogicalCore, row.FIOPerLogicalCore,
			row.FIOThreadsInSystem, row.Runs)
	}
}

// WriteFig10Summary renders the scatter data: an ASCII time×latency
// scatter of all logged samples (the shape of the paper's Fig 10 — a flat
// baseline with periodic spike columns), followed by the detected spike
// clusters.
func WriteFig10Summary(w io.Writer, r Fig10Result) {
	total := 0
	var all []stats.Sample
	var horizon int64
	for _, log := range r.Logs {
		total += len(log)
		all = append(all, log...)
		if n := len(log); n > 0 && log[n-1].At > horizon {
			horizon = log[n-1].At
		}
	}
	clusters := append([]int64(nil), r.SpikeClusters...)
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	fmt.Fprintf(w, "logged SSDs=%d  samples=%d  firmware SMART windows=%d  spike clusters=%d\n",
		len(r.Logs), total, r.SMARTWindows, len(clusters))

	if horizon > 0 && total > 0 {
		buckets := stats.Bucketize(all, horizon+1, 72, 200_000)
		bands, labels := stats.DefaultLatencyBands()
		fmt.Fprintf(w, "\nmax latency per time bucket (%.0f ms/column):\n",
			float64(horizon)/72/1e6)
		fmt.Fprint(w, stats.RenderScatter(buckets, bands, labels))
	}

	for i, c := range clusters {
		if i >= 16 {
			fmt.Fprintf(w, "  ... %d more\n", len(clusters)-i)
			break
		}
		fmt.Fprintf(w, "  cluster at t=%.3fs\n", float64(c)/1e9)
	}
}

// WriteHeadline renders the abstract's claim check.
func WriteHeadline(w io.Writer, h Headline) {
	fmt.Fprintf(w, "max latency across SSDs (µs):\n")
	fmt.Fprintf(w, "  default: mean=%.1f std=%.1f\n", h.DefaultMeanMax/1e3, h.DefaultStdMax/1e3)
	fmt.Fprintf(w, "  tuned:   mean=%.1f std=%.1f\n", h.TunedMeanMax/1e3, h.TunedStdMax/1e3)
	fmt.Fprintf(w, "  improvement: mean ×%.1f, std ×%.1f (paper: ×8 and ×400)\n",
		h.MeanImprovement(), h.StdImprovement())
}
