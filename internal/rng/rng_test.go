package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded stream produced only %d distinct values", len(seen))
	}
}

func TestDeriveOrderIndependent(t *testing.T) {
	a := New(7)
	a.Uint64() // burn some draws
	a.Uint64()
	d1 := a.Derive("ssd3")

	b := New(7)
	d2 := b.Derive("ssd3")

	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatal("Derive depends on parent draw position")
		}
	}
}

func TestDeriveLabelsIndependent(t *testing.T) {
	p := New(7)
	d1 := p.Derive("ssd0")
	d2 := p.Derive("ssd1")
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams matched %d/100 draws", same)
	}
}

func TestNewLabeledMatchesDerive(t *testing.T) {
	a := New(9).Derive("irqbalance")
	b := NewLabeled(9, "irqbalance")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewLabeled != Derive for same (seed, label)")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(12)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) value %d drawn %d/100000 times; badly non-uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63n(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(14)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(50)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Fatalf("Exp(50) sample mean = %v, want ≈50", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(15)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean = %v, want ≈10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("Normal sigma = %v, want ≈3", math.Sqrt(variance))
	}
}

func TestLogNormalMeanTargetsMean(t *testing.T) {
	r := New(16)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormalMean(2000, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormalMean returned non-positive %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2000)/2000 > 0.02 {
		t.Fatalf("LogNormalMean(2000) sample mean = %v, want within 2%%", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(17)
	for i := 0; i < 100000; i++ {
		v := r.Pareto(10, 2)
		if v < 10 {
			t.Fatalf("Pareto(xm=10) returned %v < xm", v)
		}
	}
}

func TestParetoTailHeavierThanExp(t *testing.T) {
	r := New(18)
	const n = 200000
	exceed := 0
	for i := 0; i < n; i++ {
		if r.Pareto(10, 1.5) > 200 {
			exceed++
		}
	}
	// P(X > 200) = (10/200)^1.5 ≈ 0.0112 → ≈ 2236 of 200k.
	if exceed < 1800 || exceed > 2800 {
		t.Fatalf("Pareto tail exceedances = %d, want ≈2236", exceed)
	}
}

func TestBool(t *testing.T) {
	r := New(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if hits < 23500 || hits > 26500 {
		t.Fatalf("Bool(0.25) hit %d/%d", hits, n)
	}
}

func TestUniform(t *testing.T) {
	r := New(20)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Uniform(5,8) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermZero(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Fatalf("Perm(0) = %v", p)
	}
}
