// Package rng provides deterministic pseudo-random number streams for the
// simulator.
//
// Every model component (each SSD's firmware, each daemon, the IRQ
// balancer, ...) owns its own stream derived from the experiment seed and a
// component label, so adding or removing one component never perturbs the
// draws seen by another. That property is what makes A/B comparisons
// between kernel configurations meaningful: the background daemons wake at
// the same instants under "default" and under "chrt".
//
// The generator is xoshiro256** seeded through SplitMix64 — small, fast,
// and entirely reproducible across platforms (stdlib math/rand/v2 sources
// are not guaranteed stable across Go releases).
package rng

import (
	"math"
)

// Stream is a deterministic random number generator. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Stream struct {
	s    [4]uint64
	seed uint64 // seed material, retained so Derive is draw-order independent
}

// splitMix64 advances x and returns the next SplitMix64 output.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Streams with different seeds are
// statistically independent.
func New(seed uint64) *Stream {
	st := Stream{seed: seed}
	x := seed
	for i := range st.s {
		st.s[i] = splitMix64(&x)
	}
	// xoshiro must not start in the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// hashString is FNV-1a, used to fold component labels into seeds.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Derive returns a new independent stream for the named sub-component.
// Derivation mixes the parent's seed material, not its evolving state, so
// the result does not depend on how many values the parent has drawn.
// Deriving the same label twice yields identical streams; different labels
// yield independent ones.
func (r *Stream) Derive(label string) *Stream {
	return New(r.seed ^ hashString(label))
}

// NewLabeled returns a stream for (seed, label); the canonical way for a
// component to obtain its private stream.
func NewLabeled(seed uint64, label string) *Stream {
	return New(seed ^ hashString(label))
}

// DeriveIndexed returns the i-th child stream of r, for components that
// own a dense array of peers (one stream per tenant, per shard, ...).
// Like Derive it mixes seed material, not evolving state, so child i is
// the same stream no matter how much the parent or its siblings have
// drawn. The index is golden-ratio mixed before the xor so adjacent
// indices land in unrelated seed neighborhoods.
func (r *Stream) DeriveIndexed(i uint64) *Stream {
	return New(r.seed ^ (i+1)*0x9e3779b97f4a7c15)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is irrelevant at model scale
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Stream) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard u == 0, whose log is -Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *Stream) Normal(mean, sigma float64) float64 {
	var u, v float64
	for u == 0 {
		u = r.Float64()
	}
	v = r.Float64()
	z := math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	return mean + sigma*z
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// LogNormalMean returns a log-normal draw parameterized by its target mean
// and the sigma of the underlying normal; convenient for service-time
// models ("mean 2 ms, heavy-ish tail").
func (r *Stream) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		panic("rng: LogNormalMean with non-positive mean")
	}
	mu := math.Log(mean) - sigma*sigma/2
	return r.LogNormal(mu, sigma)
}

// Pareto returns a Pareto(alpha) draw with the given minimum xm.
// Used for rare heavy-tail kernel noise.
func (r *Stream) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm fills a permutation of [0, n) (Fisher–Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
