package nvme

import (
	"testing"

	"repro/internal/nand"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func newSSD(t *testing.T, fw Firmware) (*sim.Engine, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: 1})
	c := New(eng, Config{ID: 0, Fabric: fab, FW: fw, Seed: 7,
		Geom: nand.TinyGeometry()})
	return eng, c
}

func noSMART() Firmware {
	fw := DefaultFirmware()
	fw.Kind = FirmwareNoSMART
	return fw
}

func TestSpecTableI(t *testing.T) {
	s := SpecTableI()
	if s.CapacityGB != 960 {
		t.Fatalf("capacity = %d", s.CapacityGB)
	}
	if s.RandReadIOPS != 160000 || s.RandWriteIOPS != 30000 {
		t.Fatalf("IOPS = %d/%d", s.RandReadIOPS, s.RandWriteIOPS)
	}
	if s.SeqReadMBps != 1700 || s.SeqWriteMBps != 750 {
		t.Fatalf("seq = %d/%d", s.SeqReadMBps, s.SeqWriteMBps)
	}
	if s.NANDType != "3D MLC NAND" || s.HostInterface != "NVMe 1.2 - PCIe 3.0 x4" {
		t.Fatalf("spec strings wrong: %+v", s)
	}
	if s.DesignReadLat != 25*sim.Microsecond || s.SwitchedReadLat != 30*sim.Microsecond {
		t.Fatalf("latency spec wrong: %+v", s)
	}
}

func TestReadLatencyMatchesSwitchedSpec(t *testing.T) {
	eng, c := newSSD(t, noSMART())
	var sum sim.Duration
	const n = 500
	doneCount := 0
	var issue func(i int)
	issue = func(i int) {
		if i == n {
			return
		}
		c.Submit(Command{Op: OpRead, LBA: int64(i * 97), Queue: 0}, func(r Result) {
			sum += r.CompletedAt.Sub(r.SubmittedAt)
			doneCount++
			issue(i + 1)
		})
	}
	issue(0)
	eng.RunUntil(sim.Time(sim.Second))
	if doneCount != n {
		t.Fatalf("completed %d/%d", doneCount, n)
	}
	avg := sum / n
	// Device design: 25µs standalone + 5µs switch fabric ≈ 30µs at the
	// host edge (before host software).
	if avg < 26*sim.Microsecond || avg > 33*sim.Microsecond {
		t.Fatalf("avg switched read = %v, want ≈30µs", avg)
	}
}

func TestSMARTWindowBlocksReads(t *testing.T) {
	eng, c := newSSD(t, DefaultFirmware())
	// Step in 100 µs increments until we are *inside* a SMART window, then
	// issue a read.
	for eng.Now() < sim.Time(60*sim.Second) && c.MediaBlockedUntil() <= eng.Now() {
		eng.RunUntil(eng.Now().Add(100 * sim.Microsecond))
	}
	if c.MediaBlockedUntil() <= eng.Now() {
		t.Fatal("never caught a SMART window within 60s")
	}
	var res Result
	got := false
	c.Submit(Command{Op: OpRead, LBA: 1}, func(r Result) { res = r; got = true })
	eng.RunUntil(eng.Now().Add(5 * sim.Millisecond))
	if !got {
		t.Fatal("read never completed")
	}
	if !res.BlockedBySMART {
		t.Fatal("read during SMART window not marked blocked")
	}
	lat := res.CompletedAt.Sub(res.SubmittedAt)
	if lat < 100*sim.Microsecond {
		t.Fatalf("read during SMART window took only %v", lat)
	}
	if lat > 620*sim.Microsecond {
		t.Fatalf("read during SMART window took %v, window is 550µs", lat)
	}
}

func TestNoSMARTFirmwareNeverBlocks(t *testing.T) {
	eng, c := newSSD(t, noSMART())
	worst := sim.Duration(0)
	n := 0
	var issue func()
	issue = func() {
		c.Submit(Command{Op: OpRead, LBA: int64(n)}, func(r Result) {
			if l := r.CompletedAt.Sub(r.SubmittedAt); l > worst {
				worst = l
			}
			if r.BlockedBySMART {
				t.Error("BlockedBySMART with FirmwareNoSMART")
			}
			n++
			if n < 2000 {
				eng.After(30*sim.Microsecond, issue)
			}
		})
	}
	issue()
	eng.RunUntil(sim.Time(130 * sim.Second))
	if n != 2000 {
		t.Fatalf("completed %d", n)
	}
	if c.Stats().SMARTWindows != 0 {
		t.Fatal("SMART windows ran with FirmwareNoSMART")
	}
	if worst > 40*sim.Microsecond {
		t.Fatalf("worst read = %v without SMART, want ≈30µs", worst)
	}
}

func TestIncrementalFirmwareTinyStalls(t *testing.T) {
	fw := DefaultFirmware()
	fw.Kind = FirmwareIncremental
	eng, c := newSSD(t, fw)
	worst := sim.Duration(0)
	n := 0
	var issue func()
	issue = func() {
		c.Submit(Command{Op: OpRead, LBA: int64(n)}, func(r Result) {
			if l := r.CompletedAt.Sub(r.SubmittedAt); l > worst {
				worst = l
			}
			n++
			if n < 100000 {
				eng.After(30*sim.Microsecond, issue)
			}
		})
	}
	issue()
	eng.RunUntil(sim.Time(10 * sim.Second))
	// Worst stall bounded by the 5µs slice, not the 550µs window.
	if worst > 40*sim.Microsecond {
		t.Fatalf("incremental firmware worst = %v, want ≤ read+slice", worst)
	}
}

func TestSMARTPhaseDiffersAcrossSSDs(t *testing.T) {
	eng := sim.NewEngine()
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: 2})
	a := New(eng, Config{ID: 0, Fabric: fab, Seed: 7, Geom: nand.TinyGeometry()})
	b := New(eng, Config{ID: 1, Fabric: fab, Seed: 7, Geom: nand.TinyGeometry()})
	var firstA, firstB sim.Time
	for eng.Now() < sim.Time(120*sim.Second) {
		eng.RunUntil(eng.Now().Add(sim.Millisecond))
		if firstA == 0 && a.Stats().SMARTWindows > 0 {
			firstA = eng.Now()
		}
		if firstB == 0 && b.Stats().SMARTWindows > 0 {
			firstB = eng.Now()
		}
		if firstA != 0 && firstB != 0 {
			break
		}
	}
	if firstA == 0 || firstB == 0 {
		t.Fatal("SMART windows missing")
	}
	diff := firstA.Sub(firstB)
	if diff < 0 {
		diff = -diff
	}
	if diff < 10*sim.Millisecond {
		t.Fatalf("SSD SMART phases nearly aligned (%v apart)", diff)
	}
}

func TestWriteRateLimitedToSpec(t *testing.T) {
	eng, c := newSSD(t, noSMART())
	const n = 3000
	var last sim.Time
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i == n {
			return
		}
		// Unique LBAs within capacity: a FOB fill, so the spec rate limit
		// (not GC backpressure) governs.
		c.Submit(Command{Op: OpWrite, LBA: int64(i)}, func(r Result) {
			last = r.CompletedAt
			done++
			issue(i + 1)
		})
	}
	issue(0)
	eng.RunUntil(sim.Time(sim.Second))
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	iops := float64(n) / last.Seconds()
	if iops > 33000 {
		t.Fatalf("sustained write IOPS = %.0f exceeds Table I's 30k", iops)
	}
	if iops < 25000 {
		t.Fatalf("sustained write IOPS = %.0f far below spec", iops)
	}
}

func TestFormatRestoresFOB(t *testing.T) {
	eng, c := newSSD(t, noSMART())
	for i := 0; i < 10; i++ {
		c.Submit(Command{Op: OpWrite, LBA: int64(i)}, func(Result) {})
	}
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	if c.Flash.FOB() {
		t.Fatal("device FOB despite writes")
	}
	formatted := false
	c.Format(func() { formatted = true })
	eng.RunUntil(eng.Now().Add(sim.Second))
	if !formatted {
		t.Fatal("format callback missing")
	}
	if !c.Flash.FOB() {
		t.Fatal("device not FOB after format")
	}
	if c.Stats().Formats != 1 {
		t.Fatal("format not counted")
	}
}

func TestFlushCompletes(t *testing.T) {
	eng, c := newSSD(t, noSMART())
	ok := false
	c.Submit(Command{Op: OpFlush}, func(r Result) { ok = true })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if !ok {
		t.Fatal("flush never completed")
	}
	if c.Stats().Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestGetLogPage(t *testing.T) {
	eng, c := newSSD(t, DefaultFirmware())
	c.Submit(Command{Op: OpRead, LBA: 5}, func(Result) {})
	eng.RunUntil(sim.Time(60 * sim.Second))
	var log SMARTLog
	got := false
	c.GetLogPage(func(l SMARTLog) { log = l; got = true })
	eng.RunUntil(eng.Now().Add(sim.Millisecond))
	if !got {
		t.Fatal("log page never returned")
	}
	if log.PowerOnIOs != 1 {
		t.Fatalf("PowerOnIOs = %d", log.PowerOnIOs)
	}
	if log.SMARTWindows == 0 {
		t.Fatal("no SMART windows after 60s of standard firmware")
	}
	if log.FirmwareBuild != "standard" {
		t.Fatalf("build = %q", log.FirmwareBuild)
	}
}

func TestSetFirmwareSwitchesBehaviour(t *testing.T) {
	eng, c := newSSD(t, DefaultFirmware())
	eng.RunUntil(sim.Time(120 * sim.Second))
	before := c.Stats().SMARTWindows
	if before == 0 {
		t.Fatal("standard firmware never ran SMART")
	}
	c.SetFirmware(noSMART())
	eng.RunUntil(sim.Time(360 * sim.Second))
	if c.Stats().SMARTWindows != before {
		t.Fatal("SMART still running after reflash to experimental firmware")
	}
}

func TestUnknownOpcodePanics(t *testing.T) {
	eng, c := newSSD(t, noSMART())
	c.Submit(Command{Op: Opcode(99)}, func(Result) {})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown opcode did not panic")
		}
	}()
	eng.RunUntil(sim.Time(sim.Millisecond))
}
