// Package nvme models the M.2 NVMe SSD controller of Table I: per-CPU
// submission/completion queue pairs, command processing, the NAND back-end
// (package nand), and — central to Section IV-E — firmware housekeeping.
//
// The stock firmware periodically collects and persists SMART data; while
// that runs, media access stalls for a few hundred microseconds, which is
// exactly the periodic latency-spike train of Fig 10 and the ~600 µs
// 6-nines floor of Figs 7–9. The "experimental firmware" build disables
// SMART persistence entirely (Fig 11), and an "incremental" variant models
// the improved housekeeping protocol the paper calls for in Section V:
// the same bookkeeping spread into many microsecond-scale slices.
package nvme

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/pcie"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Spec mirrors the paper's Table I.
type Spec struct {
	HostInterface   string
	CapacityGB      int
	RandReadIOPS    int
	RandWriteIOPS   int
	SeqReadMBps     int
	SeqWriteMBps    int
	NANDType        string
	DesignReadLat   sim.Duration // 25 µs standalone design read latency (Section IV-A)
	SwitchedReadLat sim.Duration // 30 µs through the PCIe switch fabric
}

// SpecTableI returns the modeled device's data sheet.
func SpecTableI() Spec {
	return Spec{
		HostInterface:   "NVMe 1.2 - PCIe 3.0 x4",
		CapacityGB:      960,
		RandReadIOPS:    160_000,
		RandWriteIOPS:   30_000,
		SeqReadMBps:     1_700,
		SeqWriteMBps:    750,
		NANDType:        "3D MLC NAND",
		DesignReadLat:   25 * sim.Microsecond,
		SwitchedReadLat: 30 * sim.Microsecond,
	}
}

// DeviceClass selects the media/controller speed class of a device.
type DeviceClass int

const (
	// ClassFlash is the paper's Table I 3D MLC device (~25 µs reads).
	ClassFlash DeviceClass = iota
	// ClassULL is a Z-NAND-class ultra-low-latency device (~3 µs reads,
	// per "Faster than Flash"): SLC-mode media plus a slimmed controller
	// pipeline. At this speed host software dominates end-to-end latency
	// and the 2018 paper's IRQ/affinity tunings invert in importance.
	ClassULL
)

func (d DeviceClass) String() string {
	switch d {
	case ClassULL:
		return "ull"
	default:
		return "flash"
	}
}

// SpecZNAND returns the data sheet of the modeled ULL device.
func SpecZNAND() Spec {
	return Spec{
		HostInterface:   "NVMe 1.3 - PCIe 3.0 x4",
		CapacityGB:      800,
		RandReadIOPS:    550_000,
		RandWriteIOPS:   170_000,
		SeqReadMBps:     3_200,
		SeqWriteMBps:    2_000,
		NANDType:        "Z-NAND (SLC-mode)",
		DesignReadLat:   4 * sim.Microsecond,
		SwitchedReadLat: 8 * sim.Microsecond,
	}
}

// FirmwareKind selects the housekeeping behaviour.
type FirmwareKind int

const (
	// FirmwareStandard periodically blocks media to update and save SMART
	// data (the shipping firmware of Section IV-E).
	FirmwareStandard FirmwareKind = iota
	// FirmwareNoSMART is the experimental build with SMART update/save
	// disabled (Fig 11).
	FirmwareNoSMART
	// FirmwareIncremental spreads SMART bookkeeping into microsecond
	// slices — the improved housekeeping protocol of Section V.
	FirmwareIncremental
)

func (k FirmwareKind) String() string {
	switch k {
	case FirmwareNoSMART:
		return "experimental-nosmart"
	case FirmwareIncremental:
		return "incremental-smart"
	default:
		return "standard"
	}
}

// Firmware configures housekeeping.
type Firmware struct {
	Kind FirmwareKind
	// SMARTPeriod is the interval between SMART persistence windows.
	SMARTPeriod sim.Duration
	// SMARTBlockTime is how long one window stalls media (standard).
	SMARTBlockTime sim.Duration
	// IncrementalSlice is the media stall of one incremental step; steps
	// run SMARTBlockTime/IncrementalSlice times more often, preserving
	// total overhead.
	IncrementalSlice sim.Duration
}

// DefaultFirmware returns the stock firmware: a ~550 µs media stall every
// ~55 s (Fig 10 shows two spike windows within a 120 s / 4 M-sample run).
func DefaultFirmware() Firmware {
	return Firmware{
		Kind:             FirmwareStandard,
		SMARTPeriod:      55 * sim.Second,
		SMARTBlockTime:   550 * sim.Microsecond,
		IncrementalSlice: 5 * sim.Microsecond,
	}
}

// Opcode is the NVMe command opcode subset the model implements.
type Opcode int

const (
	// OpRead is a 4 KiB random read.
	OpRead Opcode = iota
	// OpWrite is a 4 KiB write (buffered, spec-rate limited).
	OpWrite
	// OpFlush drains the write cache (modeled as a fixed cost).
	OpFlush
)

// Command is one NVMe I/O command.
type Command struct {
	Op    Opcode
	LBA   int64 // in 4 KiB slices
	Bytes int
	Queue int // submitting CPU / queue pair index
}

// Status is the completion status the controller posts in the CQE. The
// model collapses the NVMe status-code hierarchy into the four outcomes
// the host stack distinguishes: success, a retryable transient failure
// (generic internal error with the retry bit), an uncorrectable media
// error (permanent for that LBA), and command aborted.
type Status int

const (
	// StatusSuccess: command completed normally.
	StatusSuccess Status = iota
	// StatusTransient: internal controller error with the do-not-retry
	// bit clear — the host may re-issue the command.
	StatusTransient
	// StatusMediaError: unrecovered read error; retrying the same LBA on
	// the same device cannot succeed.
	StatusMediaError
	// StatusAborted: the command was aborted (host Abort admin command,
	// or the device disappeared mid-flight).
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusTransient:
		return "transient-error"
	case StatusMediaError:
		return "media-error"
	case StatusAborted:
		return "aborted"
	default:
		return "success"
	}
}

// Retryable reports whether re-issuing the command can succeed.
func (s Status) Retryable() bool { return s == StatusTransient }

// Result describes a completed command, with blktrace-style timestamps of
// each phase so host tooling can decompose latency (see the fio package's
// phase report and the anatomy example).
type Result struct {
	Cmd         Command
	SubmittedAt sim.Time
	// FetchedAt is when the controller finished fetching and decoding the
	// SQE (doorbell + fabric + decode).
	FetchedAt sim.Time
	// MediaStartAt is when the NAND operation began (after any
	// housekeeping stall); zero for non-media commands.
	MediaStartAt sim.Time
	// MediaDoneAt is when the NAND operation finished; zero for non-media
	// commands.
	MediaDoneAt sim.Time
	// CompletedAt is when the CQE was posted (data transferred, interrupt
	// about to fire).
	CompletedAt sim.Time
	// BlockedBySMART reports that the command waited on a housekeeping
	// window.
	BlockedBySMART bool
	// Status is the CQE status code. Callers must check it: a non-success
	// completion carries no data.
	Status Status
}

// Stats counts controller activity.
type Stats struct {
	Reads, Writes, Flushes int64
	SMARTWindows           int64
	SMARTBlockedIOs        int64
	Formats                int64
	// Fault-injection outcomes (package fault drives the knobs).
	TransientErrors int64 // commands failed with StatusTransient
	MediaErrors     int64 // commands failed with StatusMediaError
	DroppedCmds     int64 // commands lost to an offline (dropped) device
	FaultStalls     int64 // injected firmware SQ-drain stalls
}

// Controller is one SSD: NVMe front-end plus NAND back-end.
type Controller struct {
	ID     int
	Class  DeviceClass
	Spec   Spec
	FW     Firmware
	Flash  *nand.Device
	fabric *pcie.Fabric
	eng    *sim.Engine
	rnd    *rng.Stream

	// cmdFetch/cmdProcess/cqePost are controller-side costs per command.
	cmdProcess sim.Duration
	cqePost    sim.Duration

	blockedUntil   sim.Time
	smartTicker    *sim.Ticker
	writeNextFree  sim.Time
	writeTokenCost sim.Duration

	// Fault-injection state, driven by package fault through the setters
	// below. All zero values mean a healthy device; the paths below cost
	// nothing extra in that case.
	faultRnd      *rng.Stream
	readSlow      float64 // slow-NAND bin multiplier, 1 = nominal
	writeSlow     float64 // write-token cost multiplier, 1 = nominal
	stormSlow     float64 // GC-storm window multiplier, 1 = no storm
	transientRate float64 // per-command probability of StatusTransient
	// badLBAs is the injected-media-error set. A small slice with linear
	// scans, not a map: media errors are injected in handfuls, and the
	// per-slice lookup sits on the mediaStart hot path where map hashing
	// costs more than scanning a few entries (afalint -perf hotmap).
	badLBAs []int64
	offline bool
	sqStallUntil  sim.Time

	// freeReqs recycles in-flight command carriers (see ioReq). A plain
	// per-controller slice, not a sync.Pool: the simulation is
	// single-threaded and reuse order must be deterministic.
	freeReqs []*ioReq

	// qpNext is the next tenant queue-pair ID (see queue.go).
	qpNext int

	stats Stats
}

// Config assembles a Controller.
type Config struct {
	ID     int
	Fabric *pcie.Fabric
	Geom   nand.Geometry
	Timing nand.Timing
	FW     Firmware
	Seed   uint64
	// Class selects the device speed class; the zero value is the paper's
	// Table I flash device. ClassULL swaps in the Z-NAND spec, a slimmed
	// controller pipeline, and (if Timing is zero) ZNANDTiming.
	Class DeviceClass
}

// New builds one SSD behind the fabric. The SMART phase is derived from the
// seed and SSD ID so the 64 devices' windows do not align (each device's
// spike train has its own phase, as in Fig 10).
func New(eng *sim.Engine, cfg Config) *Controller {
	if cfg.Fabric == nil {
		panic("nvme: Fabric required")
	}
	if cfg.FW.SMARTPeriod == 0 {
		cfg.FW = DefaultFirmware()
	}
	if cfg.Geom.Channels == 0 {
		cfg.Geom = nand.TableIGeometry()
	}
	// The device class picks the spec sheet, the media timing default, and
	// the controller pipeline costs: the ULL part pairs Z-NAND media with a
	// slimmed command path (~0.7 µs of controller time vs the flash part's
	// ~2.5 µs) — on a ~3 µs medium the 2018-class pipeline would dominate.
	spec, timing := SpecTableI(), nand.MLC3DTiming()
	cmdProcess, cqePost := 2*sim.Microsecond, 500*sim.Nanosecond
	if cfg.Class == ClassULL {
		spec, timing = SpecZNAND(), nand.ZNANDTiming()
		cmdProcess, cqePost = 500*sim.Nanosecond, 200*sim.Nanosecond
	}
	if cfg.Timing.ReadPage == 0 {
		cfg.Timing = timing
	}
	c := &Controller{
		ID:             cfg.ID,
		Class:          cfg.Class,
		Spec:           spec,
		FW:             cfg.FW,
		fabric:         cfg.Fabric,
		eng:            eng,
		rnd:            rng.NewLabeled(cfg.Seed, fmt.Sprintf("nvme%d", cfg.ID)),
		faultRnd:       rng.NewLabeled(cfg.Seed, fmt.Sprintf("nvme%d/fault", cfg.ID)),
		readSlow:       1,
		writeSlow:      1,
		stormSlow:      1,
		cmdProcess:     cmdProcess,
		cqePost:        cqePost,
		writeTokenCost: sim.Duration(int64(sim.Second) / int64(spec.RandWriteIOPS)),
	}
	c.Flash = nand.NewDevice(eng, cfg.Geom, cfg.Timing, cfg.Seed^uint64(cfg.ID)*0x9e37)
	c.startHousekeeping()
	return c
}

// startHousekeeping arms the firmware's SMART timer per the kind.
func (c *Controller) startHousekeeping() {
	if c.smartTicker != nil {
		c.smartTicker.Stop()
		c.smartTicker = nil
	}
	switch c.FW.Kind {
	case FirmwareNoSMART:
		return
	case FirmwareIncremental:
		steps := int64(c.FW.SMARTBlockTime / c.FW.IncrementalSlice)
		if steps < 1 {
			steps = 1
		}
		period := c.FW.SMARTPeriod / sim.Duration(steps)
		// Desynchronize devices with a phase offset.
		phase := sim.Duration(c.rnd.Int63n(int64(period)))
		c.eng.Schedule(phase, func() {
			c.smartTicker = sim.NewTicker(c.eng, period, func(sim.Time) {
				c.blockMedia(c.FW.IncrementalSlice)
			})
		})
	default:
		phase := sim.Duration(c.rnd.Int63n(int64(c.FW.SMARTPeriod)))
		c.eng.Schedule(phase, func() {
			c.smartWindow()
			c.smartTicker = sim.NewTicker(c.eng, c.FW.SMARTPeriod, func(sim.Time) {
				c.smartWindow()
			})
		})
	}
}

func (c *Controller) smartWindow() {
	c.stats.SMARTWindows++
	c.blockMedia(c.FW.SMARTBlockTime)
}

func (c *Controller) blockMedia(d sim.Duration) {
	until := c.eng.Now().Add(d)
	if until > c.blockedUntil {
		c.blockedUntil = until
	}
}

// SetFirmware swaps the firmware build (a reflash) and re-arms
// housekeeping.
func (c *Controller) SetFirmware(fw Firmware) {
	c.FW = fw
	c.startHousekeeping()
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// MediaBlockedUntil exposes the housekeeping stall deadline (for tests).
func (c *Controller) MediaBlockedUntil() sim.Time { return c.blockedUntil }

// --- fault-injection knobs (package fault is the intended driver) ---

// SetReadSlowdown scales NAND read service time by factor (a slow-bin
// device; 1 restores nominal). Factors below 1 are rejected: the model
// never makes a device faster than its bin.
func (c *Controller) SetReadSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	c.readSlow = factor
}

// SetWriteSlowdown scales the write-token admission cost by factor (worn
// flash programming slower, or a controller throttling writes thermally;
// 1 restores nominal). Factors below 1 are rejected, as for reads.
func (c *Controller) SetWriteSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	c.writeSlow = factor
}

// SetStormFactor scales NAND read time during a GC-storm window; it
// composes multiplicatively with SetReadSlowdown. 1 ends the storm.
func (c *Controller) SetStormFactor(factor float64) {
	if factor < 1 {
		factor = 1
	}
	c.stormSlow = factor
}

// SetTransientErrorRate sets the per-command probability of a retryable
// StatusTransient completion. Draws come from the controller's private
// fault stream, so enabling errors on one device never perturbs another.
func (c *Controller) SetTransientErrorRate(p float64) { c.transientRate = p }

// MarkBadLBA makes reads of the slice return StatusMediaError until
// ClearBadLBA (or Format, which discards the medium state entirely).
func (c *Controller) MarkBadLBA(lba int64) {
	if !c.lbaBad(lba) {
		c.badLBAs = append(c.badLBAs, lba)
	}
}

// ClearBadLBA removes an injected media error.
func (c *Controller) ClearBadLBA(lba int64) { c.healLBA(lba) }

// lbaBad reports whether lba carries an injected media error. Linear scan
// over the (tiny) injected set; see the badLBAs field comment.
func (c *Controller) lbaBad(lba int64) bool {
	for _, b := range c.badLBAs {
		if b == lba {
			return true
		}
	}
	return false
}

// healLBA drops lba from the bad set (remove-by-swap; membership is what
// matters, the scan order never escapes).
func (c *Controller) healLBA(lba int64) {
	for i, b := range c.badLBAs {
		if b == lba {
			last := len(c.badLBAs) - 1
			c.badLBAs[i] = c.badLBAs[last]
			c.badLBAs = c.badLBAs[:last]
			return
		}
	}
}

// SetOffline drops (true) or recovers (false) the whole device. While
// offline, submitted commands are lost without a completion — exactly the
// failure mode the host-side timeout machinery exists for.
func (c *Controller) SetOffline(offline bool) { c.offline = offline }

// Offline reports whether the device is currently dropped.
func (c *Controller) Offline() bool { return c.offline }

// StallSubmissionQueues models a firmware lockup: the controller stops
// fetching SQEs for d. Commands already fetched proceed; newly submitted
// ones wait out the stall before decode.
func (c *Controller) StallSubmissionQueues(d sim.Duration) {
	until := c.eng.Now().Add(d)
	if until > c.sqStallUntil {
		c.sqStallUntil = until
	}
	c.stats.FaultStalls++
}

// slowFactor is the effective NAND read multiplier.
func (c *Controller) slowFactor() float64 { return c.readSlow * c.stormSlow }

// ioReq carries one in-flight command through the controller's staged
// pipeline (fetch → media → upstream → CQE). Requests are recycled
// through the controller's freelist and their stage callbacks are bound
// once at creation, so steady-state command traffic schedules every stage
// without allocating: the old continuation-passing closures were the
// single largest entry in the allocation profile.
type ioReq struct {
	c    *Controller
	cmd  Command
	res  Result
	done func(Result)

	fetchedFn   func()
	mediaFn     func()
	nandDoneFn  func()
	writeDoneFn func()
	completeFn  func()
}

// getReq pops a recycled request (or builds one) and primes it for cmd.
func (c *Controller) getReq(cmd Command, done func(Result)) *ioReq {
	var r *ioReq
	if n := len(c.freeReqs); n > 0 {
		r = c.freeReqs[n-1]
		c.freeReqs[n-1] = nil
		c.freeReqs = c.freeReqs[:n-1]
	} else {
		r = &ioReq{c: c}            //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
		r.fetchedFn = r.fetched     //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		r.mediaFn = r.mediaStart    //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		r.nandDoneFn = r.nandDone   //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		r.writeDoneFn = r.writeDone //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		r.completeFn = r.complete   //afalint:allow hotalloc -- stage callback bound once per pooled carrier
	}
	r.cmd = cmd
	r.res = Result{Cmd: cmd, SubmittedAt: c.eng.Now()}
	r.done = done
	return r
}

// putReq returns a request to the freelist. The caller must have copied
// out anything it still needs.
func (c *Controller) putReq(r *ioReq) {
	r.done = nil
	c.freeReqs = append(c.freeReqs, r)
}

// Submit issues a command; done fires when the CQE has been posted and the
// MSI-X interrupt would be raised. The host-side interrupt path is the
// caller's job (the kernel package routes it through package irq).
func (c *Controller) Submit(cmd Command, done func(Result)) {
	now := c.eng.Now()
	if c.offline {
		// The device is gone: the doorbell write lands nowhere and no CQE
		// will ever be posted. Recovery is the host's job (kernel timeout).
		c.stats.DroppedCmds++
		return
	}
	if cmd.Bytes == 0 {
		cmd.Bytes = 4096
	}
	r := c.getReq(cmd, done)

	// Doorbell + SQE fetch across the fabric, then controller decode. A
	// stalled firmware stops draining SQs: the fetch waits out the stall.
	fetch := c.fabric.Downstream(c.ID, 64) + c.cmdProcess
	if c.sqStallUntil > now {
		fetch += c.sqStallUntil.Sub(now)
	}
	c.eng.Schedule(fetch, r.fetchedFn)
}

// fetched runs when the controller finished fetching and decoding the SQE.
func (r *ioReq) fetched() {
	c := r.c
	if c.offline {
		// Dropped while the command sat in the SQ.
		c.stats.DroppedCmds++
		c.putReq(r)
		return
	}
	r.res.FetchedAt = c.eng.Now()
	if c.transientRate > 0 && c.faultRnd.Bool(c.transientRate) {
		// Internal controller error: the command dies after decode,
		// before (or during) media access; the CQE carries the
		// retryable generic error status.
		c.stats.TransientErrors++
		r.res.Status = StatusTransient
		c.eng.Schedule(c.cqePost+c.fabric.Upstream(c.ID, 16), r.completeFn)
		return
	}
	switch r.cmd.Op {
	case OpRead:
		c.stats.Reads++
		r.mediaRead()
	case OpWrite:
		c.stats.Writes++
		r.bufferedWrite()
	case OpFlush:
		c.stats.Flushes++
		c.eng.Schedule(50*sim.Microsecond, r.completeFn)
	default:
		panic(fmt.Sprintf("nvme: unknown opcode %d", r.cmd.Op))
	}
}

// mediaRead waits out any housekeeping stall, reads NAND, and returns the
// payload upstream.
func (r *ioReq) mediaRead() {
	c := r.c
	now := c.eng.Now()
	var stall sim.Duration
	if c.blockedUntil > now {
		stall = c.blockedUntil.Sub(now)
		r.res.BlockedBySMART = true
		c.stats.SMARTBlockedIOs++
	}
	c.eng.Schedule(stall, r.mediaFn)
}

// mediaStart performs the NAND array read once any stall has drained.
func (r *ioReq) mediaStart() {
	c := r.c
	r.res.MediaStartAt = c.eng.Now()
	// Large commands stripe across consecutive slices; dies proceed in
	// parallel, so the slowest slice governs.
	slices := (r.cmd.Bytes + 4095) / 4096
	if slices < 1 {
		slices = 1
	}
	var nandDelay sim.Duration
	bad := false
	for i := 0; i < slices; i++ {
		lba := r.cmd.LBA + int64(i)
		if c.lbaBad(lba) {
			bad = true
		}
		if d := c.Flash.Read(lba); d > nandDelay {
			nandDelay = d
		}
	}
	if f := c.slowFactor(); f > 1 {
		// Slow-bin / GC-storm degradation stretches the array time.
		nandDelay = sim.Duration(float64(nandDelay) * f)
	}
	if bad {
		// Uncorrectable slice: the read-retry ladder runs to exhaustion
		// (a few extra array reads) and the CQE reports a media error.
		nandDelay *= 3
		r.res.Status = StatusMediaError
		c.stats.MediaErrors++
	}
	c.eng.Schedule(nandDelay, r.nandDoneFn)
}

// nandDone moves the payload upstream and posts the CQE.
func (r *ioReq) nandDone() {
	c := r.c
	r.res.MediaDoneAt = c.eng.Now()
	up := c.fabric.Upstream(c.ID, r.cmd.Bytes) + c.cqePost
	c.eng.Schedule(up, r.completeFn)
}

// bufferedWrite admits the write into the cache at the spec's sustained
// rate (Table I: 30 k random-write IOPS) and completes once buffered; the
// NAND program happens in the background.
func (r *ioReq) bufferedWrite() {
	c := r.c
	now := c.eng.Now()
	var stall sim.Duration
	if c.blockedUntil > now {
		stall = c.blockedUntil.Sub(now)
		r.res.BlockedBySMART = true
		c.stats.SMARTBlockedIOs++
	}
	// Rewriting an uncorrectable LBA heals it: the program lands on a
	// fresh page and the mapping moves (how a RAID repair-write fixes a
	// bad sector).
	c.healLBA(r.cmd.LBA)
	admit := now.Add(stall)
	if c.writeNextFree > admit {
		admit = c.writeNextFree
	}
	token := c.writeTokenCost
	if c.writeSlow > 1 {
		token = sim.Duration(float64(token) * c.writeSlow)
	}
	c.writeNextFree = admit.Add(token)
	cache := 8 * sim.Microsecond
	c.eng.ScheduleAt(admit.Add(cache), r.writeDoneFn)
}

// writeDone is the cache-admission instant: the background program (and
// any foreground GC it triggers in a used, non-FOB device) lands here.
func (r *ioReq) writeDone() {
	c := r.c
	// Background program: its nominal latency (and transient die-queue
	// waits) are hidden by the cache, but foreground GC stalls the cache
	// drain and pushes out subsequent admissions — the used-state latency
	// spikes of the paper's future-work study.
	_, gc := c.Flash.WriteWithGC(r.cmd.LBA)
	if gc > 0 {
		c.writeNextFree = c.writeNextFree.Add(gc)
	}
	r.complete()
}

// complete posts the CQE, releases the request, and hands the result to
// the host.
func (r *ioReq) complete() {
	c := r.c
	if c.offline {
		// The device died with the command in flight: no CQE.
		c.stats.DroppedCmds++
		c.putReq(r)
		return
	}
	r.res.CompletedAt = c.eng.Now()
	r.res.Cmd = r.cmd
	res, done := r.res, r.done
	// Release before the callback: done may submit the next command, and
	// the freed request is then reused immediately with no allocation.
	c.putReq(r)
	done(res)
}

// Format executes the NVMe format admin command: all mappings are
// discarded and the device returns to FOB (the paper's methodology before
// every run). done fires when the device is usable again.
func (c *Controller) Format(done func()) {
	c.stats.Formats++
	c.eng.Schedule(200*sim.Millisecond, func() {
		c.Flash.Format()
		c.badLBAs = nil // format remaps injected media errors away
		if done != nil {
			done()
		}
	})
}

// IdentifyController is the subset of the NVMe Identify Controller data
// structure the model reports (what `nvme id-ctrl` shows).
type IdentifyController struct {
	ModelNumber     string
	SerialNumber    string
	FirmwareRev     string
	TotalCapacityGB int
	NumNamespaces   int
	// MDTS-equivalent: max transfer size in bytes.
	MaxTransferBytes int
}

// Identify serves the Identify Controller admin command.
func (c *Controller) Identify(done func(IdentifyController)) {
	c.eng.Schedule(c.cmdProcess+c.fabric.Upstream(c.ID, 4096), func() {
		done(IdentifyController{
			ModelNumber:      "CB-AFA-M2-960",
			SerialNumber:     fmt.Sprintf("S4FANX0M%06d", c.ID),
			FirmwareRev:      c.FW.Kind.String(),
			TotalCapacityGB:  c.Spec.CapacityGB,
			NumNamespaces:    1,
			MaxTransferBytes: 128 << 10,
		})
	})
}

// SMARTLog is the subset of the SMART / health log page the model tracks.
type SMARTLog struct {
	PowerOnIOs    int64
	SMARTWindows  int64
	MediaBlocked  int64
	FirmwareBuild string
}

// GetLogPage serves the SMART/health admin command. Reading the page does
// not itself stall media (it returns the shadow copy), but it reflects how
// often the firmware's internal collection ran.
func (c *Controller) GetLogPage(done func(SMARTLog)) {
	c.eng.Schedule(c.cmdProcess+c.fabric.Upstream(c.ID, 512), func() {
		done(SMARTLog{
			PowerOnIOs:    c.stats.Reads + c.stats.Writes,
			SMARTWindows:  c.stats.SMARTWindows,
			MediaBlocked:  c.stats.SMARTBlockedIOs,
			FirmwareBuild: c.FW.Kind.String(),
		})
	})
}
