package nvme

// Tenant-owned I/O queue pairs: the NVMe-virtualization passthrough path.
//
// A QueuePair maps a tenant's SQ/CQ pair directly onto the controller,
// bypassing the kernel tier entirely (no block layer, no IRQ delivery, no
// kernel timeout/retry/abort machinery). The tenant rings the doorbell and
// reaps its own CQ. Kernel software latency goes to zero — and so do the
// kernel's protections: transient errors, media errors, and firmware
// stalls surface raw in the tenant's completions, which is exactly the
// tolerance interaction the iopath ablation measures.

// tenantQueueBase is the first queue ID handed to tenant-owned pairs; IDs
// below it belong to the kernel's per-CPU queues (cmd.Queue = CPU index).
const tenantQueueBase = 64

// QueuePairStats counts per-pair activity.
type QueuePairStats struct {
	Submitted int64
	Completed int64
	// Errors counts non-success CQEs reaped on this pair. There is no
	// kernel underneath a passthrough queue to retry them: the tenant
	// sees every one.
	Errors int64
	// Dropped counts commands submitted while the device was offline —
	// no CQE will ever arrive, and no host timeout fires on this path.
	Dropped int64
}

// QueuePair is one tenant-owned SQ/CQ pair.
type QueuePair struct {
	ID int
	c  *Controller

	stats QueuePairStats

	// free recycles completion carriers (see qpReq); a plain slice for
	// deterministic reuse order, like every freelist in the sim core.
	free []*qpReq
}

// CreateQueuePair allocates a tenant-owned pair with the next free queue
// ID. Pair creation is an admin-path operation (setup, not per-I/O).
func (c *Controller) CreateQueuePair() *QueuePair {
	if c.qpNext == 0 {
		c.qpNext = tenantQueueBase
	}
	qp := &QueuePair{ID: c.qpNext, c: c}
	c.qpNext++
	return qp
}

// qpReq carries one passthrough submission so the per-pair completion
// accounting runs without allocating a wrapper closure per I/O. The
// callback is bound once at creation, as in the controller's ioReq.
type qpReq struct {
	q      *QueuePair
	done   func(Result)
	doneFn func(Result)
}

func (q *QueuePair) getReq(done func(Result)) *qpReq {
	var r *qpReq
	if n := len(q.free); n > 0 {
		r = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		r = &qpReq{q: q}    //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
		r.doneFn = r.onDone //afalint:allow hotalloc -- stage callback bound once per pooled carrier
	}
	r.done = done
	return r
}

// onDone reaps one CQE into the pair's accounting and hands the raw result
// to the tenant. Non-success statuses pass straight through: there is no
// kernel retry on this path.
func (r *qpReq) onDone(res Result) {
	q := r.q
	q.stats.Completed++
	if res.Status != StatusSuccess {
		q.stats.Errors++
	}
	done := r.done
	// Release before the callback: done may submit the next command, and
	// the freed carrier is then reused immediately with no allocation.
	r.done = nil
	q.free = append(q.free, r)
	done(res)
}

// Submit rings the pair's doorbell. The command is tagged with the pair's
// queue ID and goes straight into the controller's staged pipeline; done
// fires when the tenant reaps the CQE from its own CQ (no IRQ, no kernel).
func (q *QueuePair) Submit(cmd Command, done func(Result)) {
	cmd.Queue = q.ID
	q.stats.Submitted++
	if q.c.offline {
		// The doorbell write lands nowhere. Unlike the kernel path there
		// is no timeout tier watching: the tenant's I/O is simply gone.
		q.c.stats.DroppedCmds++
		q.stats.Dropped++
		return
	}
	q.c.Submit(cmd, q.getReq(done).doneFn)
}

// Stats returns a copy of the per-pair counters.
func (q *QueuePair) Stats() QueuePairStats { return q.stats }
