package sched

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Scheduler owns the per-CPU runqueues and implements task placement,
// wakeups, and preemption policy.
type Scheduler struct {
	eng         *sim.Engine
	params      Params
	opts        BootOptions
	cpus        []*CPU
	tasks       []*Task
	rnd         *rng.Stream
	cstates     []CState
	autoIsolate bool

	// siblings maps each logical CPU to its hyper-thread sibling (-1 for
	// none); provided by the topology.
	siblings []int

	// TickWork, when set, returns the housekeeping cost charged on each
	// scheduler tick of a CPU (timer callbacks, vmstat, RCU unless
	// offloaded). The kernel package installs the policy.
	TickWork func(cpu int) sim.Duration

	// OnDispatch, when set, observes every dispatch (the trace package's
	// sched_switch probe).
	OnDispatch func(cpu int, t *Task)
}

// Config assembles a Scheduler.
type Config struct {
	NumCPUs  int
	Params   Params
	Boot     BootOptions
	Siblings []int // optional HT sibling map
	Seed     uint64
	// AutoIsolateIOBound enables the prototype placement policy of the
	// paper's Section VI future work: unpinned (CPU-bound) tasks are kept
	// off CPUs that host I/O-bound pinned tasks, achieving the effect of
	// manual isolcpus without any configuration.
	AutoIsolateIOBound bool
}

// New builds a scheduler with idle CPUs and running ticks.
func New(eng *sim.Engine, cfg Config) *Scheduler {
	if cfg.NumCPUs <= 0 {
		panic("sched: NumCPUs must be positive")
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	s := &Scheduler{
		eng:         eng,
		params:      cfg.Params,
		opts:        cfg.Boot,
		rnd:         rng.NewLabeled(cfg.Seed, "sched"),
		autoIsolate: cfg.AutoIsolateIOBound,
	}
	if cfg.Siblings != nil {
		if len(cfg.Siblings) != cfg.NumCPUs {
			panic("sched: sibling map length mismatch")
		}
		s.siblings = cfg.Siblings
	} else {
		s.siblings = make([]int, cfg.NumCPUs)
		for i := range s.siblings {
			s.siblings[i] = -1
		}
	}
	s.cstates = XeonCStates()
	for i := 0; i < cfg.NumCPUs; i++ {
		c := &CPU{id: i, s: s, cstate: -1}
		c.burstTimer = eng.NewTimer()
		c.deepenTimer = eng.NewTimer()
		c.burstDoneFn = c.burstDone
		c.deepenFn = c.deepen
		c.stealDoneFn = c.stealDone
		s.cpus = append(s.cpus, c)
		c.enterIdle()
		c.startTick()
	}
	s.startBalancer()
	return s
}

func (s *Scheduler) siblingOf(cpu int) int { return s.siblings[cpu] }

// Params reports the tunables in use.
func (s *Scheduler) Params() Params { return s.params }

// Boot reports the boot options in use.
func (s *Scheduler) Boot() BootOptions { return s.opts }

// NumCPUs reports the CPU count.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// CPU returns the CPU object (for stats and irq injection).
func (s *Scheduler) CPU(id int) *CPU { return s.cpus[id] }

// Wake makes a sleeping task runnable. The task must have a pending burst
// (Exec). Waking a runnable/running task is a no-op, like the kernel's
// try_to_wake_up.
func (s *Scheduler) Wake(t *Task) {
	if t.state != StateSleeping {
		return
	}
	if t.remaining <= 0 {
		panic(fmt.Sprintf("sched: waking task %q without a pending burst", t.Name))
	}
	t.wakes++
	c := s.selectRQ(t)
	if t.class == ClassCFS {
		if t.cpu >= 0 && t.cpu != c.id {
			// Cross-CPU wake migration rebases vruntime onto the target
			// runqueue (migrate_task_rq_fair): the task's history on the
			// old CPU does not count against it here. Combined with the
			// sleeper credit below, a CPU-bound daemon hopping onto an
			// "idle-looking" I/O CPU starts with a full head start —
			// the paper's default-configuration stall.
			t.vruntime = c.minVruntime - s.params.SleeperCredit
		}
		// place_entity: grant bounded sleeper credit so long sleepers do
		// not monopolize, but freshly woken tasks get a head start.
		floor := c.minVruntime - s.params.SleeperCredit
		if t.vruntime < floor {
			t.vruntime = floor
		}
	}
	if c.curr == nil && !c.stealing {
		// Idle CPU: charge the C-state exit latency to the dispatch.
		c.pendingExit += c.exitIdle()
		c.enqueue(t)
		c.schedule()
		return
	}
	c.enqueue(t)
	if c.shouldPreempt(t) && !c.stealing {
		c.preemptCurr()
		c.schedule()
	}
}

// dequeue removes a runnable task from its runqueue (used by Task.Sleep).
func (s *Scheduler) dequeue(t *Task) {
	if t.cpu >= 0 {
		if s.cpus[t.cpu].removeQueued(t) {
			return
		}
	}
	for _, c := range s.cpus {
		if c.removeQueued(t) {
			return
		}
	}
}

// selectRQ picks the CPU a waking task runs on (select_task_rq).
func (s *Scheduler) selectRQ(t *Task) *CPU {
	if len(t.affinity) > 0 {
		// Pinned: prefer an idle allowed CPU, then the last one, then the
		// least loaded allowed CPU.
		best := -1
		for _, id := range t.affinity {
			if s.cpus[id].Idle() {
				if id == t.cpu {
					return s.cpus[id]
				}
				if best < 0 {
					best = id
				}
			}
		}
		if best >= 0 {
			return s.cpus[best]
		}
		least := t.affinity[0]
		for _, id := range t.affinity[1:] {
			if s.cpus[id].NrRunnable() < s.cpus[least].NrRunnable() {
				least = id
			}
		}
		return s.cpus[least]
	}

	// Unpinned: never place on isolated CPUs, and — under the prototype
	// auto-isolation policy — avoid CPUs hosting I/O-bound pinned tasks.
	// Prefer the previous CPU if idle (cache warmth), else scan for an
	// idle CPU starting at a deterministic pseudo-random offset (mimicking
	// the kernel's lack of global ordering), else the least-loaded
	// candidate; CPUs excluded by auto-isolation are a last resort.
	avoid := func(c *CPU) bool {
		return s.autoIsolate && c.HostsIOBound()
	}
	if t.cpu >= 0 && !s.opts.isolated(t.cpu) && s.cpus[t.cpu].Idle() && !avoid(s.cpus[t.cpu]) {
		return s.cpus[t.cpu]
	}
	n := len(s.cpus)
	start := s.rnd.Intn(n)
	var least, leastAvoided *CPU
	for i := 0; i < n; i++ {
		c := s.cpus[(start+i)%n]
		if s.opts.isolated(c.id) {
			continue
		}
		if avoid(c) {
			if leastAvoided == nil || c.NrRunnable() < leastAvoided.NrRunnable() {
				leastAvoided = c
			}
			continue
		}
		if c.Idle() {
			return c
		}
		if least == nil || c.NrRunnable() < least.NrRunnable() {
			least = c
		}
	}
	if least != nil {
		return least
	}
	if leastAvoided != nil {
		return leastAvoided
	}
	// Everything is isolated (degenerate config): CPU of last resort.
	return s.cpus[0]
}

// Stats summarize scheduler activity.
type Stats struct {
	BusyTime   sim.Duration
	StolenTime sim.Duration
	Switches   int64
}

// TotalStats aggregates per-CPU counters.
func (s *Scheduler) TotalStats() Stats {
	var st Stats
	for _, c := range s.cpus {
		st.BusyTime += c.busyTime
		st.StolenTime += c.stolenTime
		st.Switches += c.switches
	}
	return st
}
