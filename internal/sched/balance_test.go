package sched

import (
	"testing"

	"repro/internal/sim"
)

func TestLoadBalancerEvensOutHogs(t *testing.T) {
	// Three CPU-bound tasks on two CPUs: without periodic balancing the
	// pair stacked on one CPU gets 50% each while the loner gets 100%;
	// with it, everyone converges toward 2/3.
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 2, Seed: 1})
	hogs := make([]*hog, 3)
	for i := range hogs {
		hogs[i] = newHog(s, "hog", nil)
		hogs[i].wake()
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	var min, max sim.Duration
	for i, h := range hogs {
		rt := h.task.RunTime()
		if i == 0 || rt < min {
			min = rt
		}
		if rt > max {
			max = rt
		}
	}
	if min == 0 {
		t.Fatal("a hog starved")
	}
	if float64(max)/float64(min) > 1.35 {
		t.Fatalf("unfair split despite balancing: min=%v max=%v", min, max)
	}
}

func TestLoadBalancerRespectsIsolcpus(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 2, Seed: 1, Boot: BootOptions{Isolcpus: []int{1}}})
	for i := 0; i < 3; i++ {
		h := newHog(s, "hog", nil)
		h.wake()
	}
	eng.RunUntil(sim.Time(sim.Second))
	if s.CPU(1).BusyTime() != 0 {
		t.Fatalf("balancer migrated unpinned work onto isolated cpu(1): %v", s.CPU(1).BusyTime())
	}
}

func TestLoadBalancerRespectsAffinity(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 2, Seed: 1})
	// Two hogs pinned to cpu0; cpu1 idle but must not receive them.
	for i := 0; i < 2; i++ {
		h := newHog(s, "pinned", []int{0})
		h.wake()
	}
	eng.RunUntil(sim.Time(sim.Second))
	if s.CPU(1).BusyTime() != 0 {
		t.Fatalf("balancer violated affinity: cpu1 busy %v", s.CPU(1).BusyTime())
	}
}

func TestLoadBalancerRespectsAutoIsolation(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 3, Seed: 1, AutoIsolateIOBound: true})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{2})
	io.pumpQD1(27 * sim.Microsecond)
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	ioBusyBefore := s.CPU(2).BusyTime()

	for i := 0; i < 4; i++ {
		h := newHog(s, "hog", nil)
		h.wake()
	}
	eng.RunUntil(sim.Time(sim.Second))
	// cpu2 hosts the I/O thread: the balancer must not pull hogs onto it;
	// its extra busy time is only the thread's own bursts.
	extra := s.CPU(2).BusyTime() - ioBusyBefore
	if extra > 300*sim.Millisecond {
		t.Fatalf("balancer pulled hogs onto the I/O CPU: extra busy %v", extra)
	}
}
