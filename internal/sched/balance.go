package sched

import "repro/internal/sim"

// Periodic load balancing: wake-time placement alone leaves long-running
// runnable tasks stacked wherever they happened to land, so — like the
// kernel's load_balance — idle (and under-loaded) CPUs periodically pull
// queued tasks from the busiest runqueue. Migration respects task
// affinity, isolcpus, and the auto-isolation policy, and the migrated
// task pays the migration penalty at its next dispatch.

// balancePeriod is how often the rebalance pass runs (the kernel scales
// this with domain size; a flat few-ms period is enough for the model).
const balancePeriod = 4 * sim.Millisecond

// startBalancer arms the periodic pass. Called from New.
func (s *Scheduler) startBalancer() {
	sim.NewTicker(s.eng, balancePeriod, func(sim.Time) { s.rebalance() })
}

// rebalance performs one pass: under-loaded, non-isolated CPUs pull one
// queued CFS task from the busiest pullable runqueue. An idle CPU always
// pulls; a busy CPU with exactly one task less than the source pulls only
// occasionally — the stochastic "bounce" that gives three hogs on two
// CPUs their long-run fair 2/3 share, as PELT-driven balancing does.
func (s *Scheduler) rebalance() {
	for _, dst := range s.cpus {
		if s.opts.isolated(dst.id) {
			continue
		}
		if s.autoIsolate && dst.HostsIOBound() {
			continue
		}
		src := s.busiest(dst)
		if src == nil {
			continue
		}
		diff := src.NrRunnable() - dst.NrRunnable()
		switch {
		case dst.Idle():
			// always pull
		case diff >= 2:
			// clearly imbalanced: pull
		case diff == 1 && len(src.cfs) > 0:
			if !s.rnd.Bool(0.25) {
				continue
			}
		default:
			continue
		}
		t := src.stealQueued(dst)
		if t == nil {
			continue
		}
		// Re-place the stolen task on dst: rebase vruntime without sleeper
		// credit (it did not sleep; it was merely waiting).
		t.vruntime = dst.minVruntime
		if dst.Idle() {
			dst.pendingExit += dst.exitIdle()
		}
		dst.enqueue(t)
		dst.schedule()
	}
}

// busiest finds the CPU with the deepest CFS queue holding at least one
// task beyond its runner.
func (s *Scheduler) busiest(dst *CPU) *CPU {
	var best *CPU
	for _, c := range s.cpus {
		if c == dst || len(c.cfs) == 0 {
			continue
		}
		if best == nil || len(c.cfs) > len(best.cfs) {
			best = c
		}
	}
	if best != nil && best.NrRunnable() < 2 {
		return nil
	}
	return best
}

// taskHotWindow is how recently a task must have run to count as
// cache-hot and be exempt from migration (the kernel's task_hot check).
const taskHotWindow = 5 * sim.Millisecond

// cacheNiceTries is how many consecutive hot-only failures a source
// tolerates before migrating a hot task anyway (sd->cache_nice_tries).
const cacheNiceTries = 3

// stealQueued removes one migratable CFS task from c's queue for dst,
// preferring cache-cold tasks; after repeated failures it takes a hot one
// (persistent imbalance beats cache warmth).
func (c *CPU) stealQueued(dst *CPU) *Task {
	now := c.s.eng.Now()
	allowHot := c.balanceFailed >= cacheNiceTries
	hotOnly := false
	for i, t := range c.cfs {
		if !t.canRunOn(dst.id) {
			continue
		}
		if !allowHot && t.everRan && now.Sub(t.lastOffCPU) < taskHotWindow {
			hotOnly = true
			continue // cache-hot: leave it where its data is
		}
		c.cfs = append(c.cfs[:i], c.cfs[i+1:]...)
		c.retuneTick()
		c.balanceFailed = 0
		return t
	}
	if hotOnly {
		c.balanceFailed++
	}
	return nil
}

// canRunOn checks the task's affinity mask.
func (t *Task) canRunOn(cpu int) bool {
	if len(t.affinity) == 0 {
		return true
	}
	for _, id := range t.affinity {
		if id == cpu {
			return true
		}
	}
	return false
}
