package sched

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Class is the scheduling class of a task.
type Class int

const (
	// ClassCFS is the completely fair scheduler (SCHED_OTHER).
	ClassCFS Class = iota
	// ClassFIFO is the real-time FIFO class (SCHED_FIFO, what
	// `chrt -f <prio>` assigns).
	ClassFIFO
)

func (c Class) String() string {
	if c == ClassFIFO {
		return "SCHED_FIFO"
	}
	return "SCHED_OTHER"
}

// State is a task's scheduling state.
type State int

const (
	// StateSleeping means blocked, waiting for a Wake.
	StateSleeping State = iota
	// StateRunnable means enqueued on a runqueue.
	StateRunnable
	// StateRunning means currently executing on a CPU.
	StateRunning
)

func (s State) String() string {
	switch s {
	case StateSleeping:
		return "sleeping"
	case StateRunnable:
		return "runnable"
	default:
		return "running"
	}
}

// Task is a schedulable entity: an FIO thread, a background daemon, a
// kernel worker. Tasks execute "bursts" of CPU time; between bursts they
// either continue (Exec from the burst callback) or block (Sleep) until an
// external Wake.
type Task struct {
	ID   int
	Name string

	class  Class
	rtprio int // FIFO priority 1..99
	nice   int
	weight float64

	// Affinity restricts placement (FIO's cpus_allowed, IRQ pinning).
	// Empty = any CPU.
	affinity []int

	sched *Scheduler
	state State
	cpu   int // current or last CPU

	vruntime   sim.Duration
	sliceStart sim.Time // when the current on-CPU stretch began

	remaining   sim.Duration // CPU time left in current burst
	onDone      func()
	extraNext   sim.Duration // one-shot penalty added to next dispatch (cold cache, IPI)
	everRan     bool
	firstRunAt  sim.Time
	lastSleep   sim.Time
	lastOffCPU  sim.Time
	wokenAt     sim.Time
	wakes       int64
	ctxSwitches int64
	runTime     sim.Duration

	// lastRanHere[cpu] is not tracked per-CPU; cold cache is approximated
	// by "someone else ran since I did" per CPU in the CPU struct.
}

// NewTask registers a task with the scheduler. It starts sleeping.
func (s *Scheduler) NewTask(name string, class Class, prio int, affinity []int) *Task {
	t := &Task{
		ID:       len(s.tasks),
		Name:     name,
		class:    class,
		sched:    s,
		state:    StateSleeping,
		cpu:      -1,
		affinity: append([]int(nil), affinity...),
	}
	if class == ClassFIFO {
		if prio < 1 || prio > 99 {
			panic(fmt.Sprintf("sched: FIFO priority %d out of 1..99", prio))
		}
		t.rtprio = prio
	} else {
		if prio < -20 || prio > 19 {
			panic(fmt.Sprintf("sched: nice %d out of -20..19", prio))
		}
		t.nice = prio
	}
	t.weight = 1024 / math.Pow(1.25, float64(t.nice))
	s.tasks = append(s.tasks, t)
	if len(t.affinity) == 1 {
		// Exclusively pinned: register as a home task so the
		// auto-isolation policy can classify the CPU.
		home := s.cpus[t.affinity[0]]
		home.homeTasks = append(home.homeTasks, t)
	}
	return t
}

// SetClass changes the scheduling class/priority (chrt). Allowed only while
// the task sleeps.
func (t *Task) SetClass(class Class, prio int) {
	if t.state != StateSleeping {
		panic("sched: SetClass on non-sleeping task")
	}
	t.class = class
	if class == ClassFIFO {
		t.rtprio = prio
	} else {
		t.nice = prio
		t.weight = 1024 / math.Pow(1.25, float64(t.nice))
	}
}

// Class reports the scheduling class.
func (t *Task) Class() Class { return t.class }

// State reports the current scheduling state.
func (t *Task) State() State { return t.state }

// CPU reports the CPU the task is running on (or last ran on; -1 if never).
func (t *Task) CPU() int { return t.cpu }

// VRuntime exposes the CFS virtual runtime, for tests and tracing.
func (t *Task) VRuntime() sim.Duration { return t.vruntime }

// RunTime reports total CPU time consumed.
func (t *Task) RunTime() sim.Duration { return t.runTime }

// CtxSwitches reports how many times the task was switched in.
func (t *Task) CtxSwitches() int64 { return t.ctxSwitches }

// Wakes reports how many sleep→runnable transitions the task has made.
func (t *Task) Wakes() int64 { return t.wakes }

// IOBound is the heuristic classification the auto-isolation policy
// (Section VI's "better CPU scheduling algorithm") uses: a task that wakes
// frequently yet consumes a small fraction of wall time is I/O-bound.
func (t *Task) IOBound(now sim.Time) bool {
	if !t.everRan || t.wakes < 50 {
		return false
	}
	wall := now.Sub(t.firstRunAt)
	if wall <= 0 {
		return false
	}
	return float64(t.runTime)/float64(wall) < 0.35
}

// Exec arranges for the task's next burst: dur of CPU time, then fn runs
// (in scheduler context). Calling Exec while a burst is pending replaces
// it; typical use is from the previous burst's fn or before a Wake.
func (t *Task) Exec(dur sim.Duration, fn func()) {
	if dur <= 0 {
		panic("sched: Exec with non-positive duration")
	}
	if t.state == StateRunning {
		panic("sched: Exec on running task (call from burst callback only)")
	}
	t.remaining = dur
	t.onDone = fn
}

// AddPenalty adds one-shot extra time to the task's next dispatch; the irq
// package uses this for remote-completion IPI and cache-pollution costs.
func (t *Task) AddPenalty(d sim.Duration) {
	if d > 0 {
		t.extraNext += d
	}
}

// Sleep blocks the task (must be called from its burst callback, or while
// the task is runnable but not running).
func (t *Task) Sleep() {
	switch t.state {
	case StateSleeping:
		return
	case StateRunnable:
		t.sched.dequeue(t)
	case StateRunning:
		// The scheduler handles the transition after the burst callback.
		panic("sched: Sleep on running task outside burst completion")
	}
	t.state = StateSleeping
	t.lastSleep = t.sched.eng.Now()
}
