package sched

import (
	"testing"

	"repro/internal/sim"
)

func newSched(t *testing.T, ncpu int, boot BootOptions) (*sim.Engine, *Scheduler) {
	t.Helper()
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: ncpu, Boot: boot, Seed: 1})
	return eng, s
}

// hog builds a CPU-bound task that, once woken, burns the CPU in long
// bursts until stopped.
type hog struct {
	task *Task
	s    *Scheduler
	stop bool
}

func newHog(s *Scheduler, name string, affinity []int) *hog {
	h := &hog{s: s}
	h.task = s.NewTask(name, ClassCFS, 0, affinity)
	return h
}

func (h *hog) wake() {
	h.task.Exec(10*sim.Millisecond, h.again)
	h.s.Wake(h.task)
}

func (h *hog) again() {
	if !h.stop {
		h.task.Exec(10*sim.Millisecond, h.again)
	}
}

// ioThread models a QD1 I/O thread: each wake costs a short CPU burst,
// then it sleeps until the next external wake. It records the wake→burst
// completion latency.
type ioThread struct {
	task      *Task
	s         *Scheduler
	eng       *sim.Engine
	burst     sim.Duration
	latencies []sim.Duration
	wakeAt    sim.Time
}

func newIOThread(s *Scheduler, eng *sim.Engine, name string, class Class, prio int, affinity []int) *ioThread {
	io := &ioThread{s: s, eng: eng, burst: 3 * sim.Microsecond}
	io.task = s.NewTask(name, class, prio, affinity)
	return io
}

// kick wakes the thread as a device completion would. With QD1 a new
// completion cannot arrive while the previous one is still being handled,
// so kicks to a non-sleeping thread are dropped.
func (io *ioThread) kick() {
	if io.task.State() != StateSleeping {
		return
	}
	io.wakeAt = io.eng.Now()
	io.task.Exec(io.burst, func() {
		io.latencies = append(io.latencies, io.eng.Now().Sub(io.wakeAt))
	})
	io.s.Wake(io.task)
}

// pumpQD1 runs a closed loop: after each completion the next "device
// completion" arrives serviceTime later, like a QD1 random read.
func (io *ioThread) pumpQD1(serviceTime sim.Duration) {
	io.wakeAt = io.eng.Now()
	var cycle func()
	cycle = func() {
		io.latencies = append(io.latencies, io.eng.Now().Sub(io.wakeAt))
		io.eng.After(serviceTime, func() {
			io.wakeAt = io.eng.Now()
			io.task.Exec(io.burst, cycle)
			io.s.Wake(io.task)
		})
	}
	io.task.Exec(io.burst, cycle)
	io.s.Wake(io.task)
}

func (io *ioThread) max() sim.Duration {
	var m sim.Duration
	for _, l := range io.latencies {
		if l > m {
			m = l
		}
	}
	return m
}

func TestSingleTaskRunsImmediately(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	done := sim.Time(-1)
	task := s.NewTask("a", ClassCFS, 0, nil)
	task.Exec(10*sim.Microsecond, func() { done = eng.Now() })
	s.Wake(task)
	eng.RunUntil(sim.Time(sim.Millisecond))
	if done < 0 {
		t.Fatal("burst never completed")
	}
	// ctx switch + C1 exit + 10µs ≈ 13.5µs.
	if done > sim.Time(20*sim.Microsecond) {
		t.Fatalf("single task took %v to finish a 10µs burst", done)
	}
	if task.State() != StateSleeping {
		t.Fatalf("task state = %v after implicit sleep", task.State())
	}
}

func TestExecChainsKeepRunning(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	n := 0
	task := s.NewTask("a", ClassCFS, 0, nil)
	var again func()
	again = func() {
		n++
		if n < 5 {
			task.Exec(sim.Microsecond, again)
		}
	}
	task.Exec(sim.Microsecond, again)
	s.Wake(task)
	eng.RunUntil(sim.Time(sim.Millisecond))
	if n != 5 {
		t.Fatalf("chained bursts ran %d times, want 5", n)
	}
}

func TestWakeWithoutBurstPanics(t *testing.T) {
	_, s := newSched(t, 1, BootOptions{})
	task := s.NewTask("a", ClassCFS, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Wake without Exec did not panic")
		}
	}()
	s.Wake(task)
}

func TestWakeRunnableIsNoop(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	n := 0
	task := s.NewTask("a", ClassCFS, 0, nil)
	task.Exec(10*sim.Microsecond, func() { n++ })
	s.Wake(task)
	s.Wake(task) // second wake must not double anything
	eng.RunUntil(sim.Time(sim.Millisecond))
	if n != 1 {
		t.Fatalf("burst ran %d times", n)
	}
}

func TestFIFOPreemptsCFSImmediately(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(2 * sim.Millisecond)) // hog mid-burst

	io := newIOThread(s, eng, "rtio", ClassFIFO, 99, []int{0})
	io.kick()
	eng.RunUntil(sim.Time(3 * sim.Millisecond))
	if len(io.latencies) != 1 {
		t.Fatal("RT burst did not run")
	}
	if io.latencies[0] > 15*sim.Microsecond {
		t.Fatalf("RT wake-to-done = %v, want µs-scale preemption", io.latencies[0])
	}
}

func TestCFSSleeperCreditDelaysIOWake(t *testing.T) {
	// The paper's default-config mechanism: a freshly woken CPU hog holds
	// sleeper credit, so the I/O thread's wakeup preemption is refused and
	// it waits out multi-millisecond stretches.
	eng, s := newSched(t, 1, BootOptions{})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})

	// Let the I/O thread run alone long enough to accumulate vruntime.
	io.pumpQD1(27 * sim.Microsecond)
	eng.RunUntil(sim.Time(200 * sim.Millisecond))
	maxBefore := io.max()
	if maxBefore > 20*sim.Microsecond {
		t.Fatalf("uncontended I/O latency = %v, want < 20µs", maxBefore)
	}

	h := newHog(s, "llvmpipe", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(230 * sim.Millisecond))
	maxDuring := io.max()
	if maxDuring < sim.Millisecond {
		t.Fatalf("hog with sleeper credit delayed I/O by only %v, want ms-scale", maxDuring)
	}
	// Sleeper credit (3 ms) plus up to two tick-slice rounds bounds the
	// stall near the paper's ~5 ms worst case.
	if maxDuring > 7*sim.Millisecond {
		t.Fatalf("I/O delay %v exceeds CFS latency budget", maxDuring)
	}
}

func TestCFSWakeupPreemptionAfterCreditBurns(t *testing.T) {
	// Once the hog has burned its credit the I/O thread preempts on wake,
	// so late-window latencies return to µs scale.
	eng, s := newSched(t, 1, BootOptions{})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})
	io.pumpQD1(27 * sim.Microsecond)
	eng.RunUntil(sim.Time(200 * sim.Millisecond))
	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(260 * sim.Millisecond))

	// Inspect only the last 100 completions (well after the credit window).
	tail := io.latencies[len(io.latencies)-100:]
	var worst sim.Duration
	for _, l := range tail {
		if l > worst {
			worst = l
		}
	}
	if worst > 100*sim.Microsecond {
		t.Fatalf("late-window I/O latency = %v; wakeup preemption not effective", worst)
	}
}

func TestTwoHogsShareCPUFairly(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	h1 := newHog(s, "h1", []int{0})
	h2 := newHog(s, "h2", []int{0})
	h1.wake()
	h2.wake()
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	r1, r2 := h1.task.RunTime(), h2.task.RunTime()
	if r1 == 0 || r2 == 0 {
		t.Fatal("a hog starved completely")
	}
	ratio := float64(r1) / float64(r2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair split: %v vs %v", r1, r2)
	}
}

func TestIsolcpusExcludesUnpinnedTasks(t *testing.T) {
	eng, s := newSched(t, 4, BootOptions{Isolcpus: []int{1, 2, 3}})
	for i := 0; i < 6; i++ {
		h := newHog(s, "hog", nil) // unpinned
		h.wake()
	}
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	for id := 1; id <= 3; id++ {
		if s.CPU(id).BusyTime() != 0 {
			t.Fatalf("isolated cpu(%d) ran unpinned work for %v", id, s.CPU(id).BusyTime())
		}
	}
	if s.CPU(0).BusyTime() == 0 {
		t.Fatal("housekeeping CPU idle while hogs runnable")
	}
}

func TestPinnedTaskRunsOnIsolatedCPU(t *testing.T) {
	eng, s := newSched(t, 2, BootOptions{Isolcpus: []int{1}})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{1})
	io.kick()
	eng.RunUntil(sim.Time(sim.Millisecond))
	if len(io.latencies) != 1 {
		t.Fatal("pinned task did not run on isolated CPU")
	}
	if io.task.CPU() != 1 {
		t.Fatalf("pinned task ran on cpu %d", io.task.CPU())
	}
}

func TestUnpinnedPrefersIdleCPU(t *testing.T) {
	eng, s := newSched(t, 2, BootOptions{})
	h1 := newHog(s, "h1", nil)
	h1.wake()
	eng.RunUntil(sim.Time(sim.Millisecond))
	h2 := newHog(s, "h2", nil)
	h2.wake()
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if h1.task.CPU() == h2.task.CPU() {
		t.Fatalf("second hog stacked on busy cpu %d with an idle CPU available", h1.task.CPU())
	}
}

func TestNoHzFullTickSlowsWithOneTask(t *testing.T) {
	_, s := newSched(t, 2, BootOptions{NoHzFull: []int{1}})
	c := s.CPU(1)
	if c.tick.Period() != s.params.NoHzTickPeriod {
		t.Fatalf("idle nohz_full CPU tick = %v, want %v", c.tick.Period(), s.params.NoHzTickPeriod)
	}
	c0 := s.CPU(0)
	if c0.tick.Period() != s.params.TickPeriod {
		t.Fatalf("housekeeping CPU tick = %v, want %v", c0.tick.Period(), s.params.TickPeriod)
	}
}

func TestNoHzFullTickSpeedsUpWithTwoTasks(t *testing.T) {
	eng, s := newSched(t, 2, BootOptions{NoHzFull: []int{1}})
	h1 := newHog(s, "h1", []int{1})
	h2 := newHog(s, "h2", []int{1})
	h1.wake()
	h2.wake()
	eng.RunUntil(sim.Time(sim.Millisecond))
	if got := s.CPU(1).tick.Period(); got != s.params.TickPeriod {
		t.Fatalf("nohz CPU with 2 runnable: tick %v, want %v", got, s.params.TickPeriod)
	}
}

func TestCStateExitLatencyCharged(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})
	// Let the CPU idle 1 ms → C6 (residency 600µs). The next wake must pay
	// ≈130µs exit latency.
	eng.RunUntil(sim.Time(sim.Millisecond))
	io.kick()
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	if len(io.latencies) != 1 {
		t.Fatal("no completion")
	}
	l := io.latencies[0]
	if l < 125*sim.Microsecond || l > 145*sim.Microsecond {
		t.Fatalf("deep-idle wake latency = %v, want ≈130µs+burst", l)
	}
}

func TestIdlePollRemovesExitLatency(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{IdlePoll: true})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})
	eng.RunUntil(sim.Time(sim.Millisecond))
	io.kick()
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	if l := io.latencies[0]; l > 10*sim.Microsecond {
		t.Fatalf("idle=poll wake latency = %v, want µs-scale", l)
	}
}

func TestMaxCStateCapsExitLatency(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{MaxCState: 1})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})
	eng.RunUntil(sim.Time(2 * sim.Millisecond)) // would reach C6 uncapped
	io.kick()
	eng.RunUntil(sim.Time(3 * sim.Millisecond))
	if l := io.latencies[0]; l > 12*sim.Microsecond {
		t.Fatalf("max_cstate=1 wake latency = %v, want ≈C1 exit (2µs)+burst", l)
	}
}

func TestStealDelaysRunningBurst(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	var done sim.Time
	task := s.NewTask("a", ClassCFS, 0, []int{0})
	task.Exec(100*sim.Microsecond, func() { done = eng.Now() })
	s.Wake(task)
	eng.RunUntil(sim.Time(10 * sim.Microsecond))
	s.CPU(0).Steal(50*sim.Microsecond, nil) // hardirq storm
	eng.RunUntil(sim.Time(sim.Millisecond))
	// Without the steal the burst would finish ≈104µs; with it ≈154µs.
	if done < sim.Time(150*sim.Microsecond) {
		t.Fatalf("burst finished at %v; steal not charged", done)
	}
	if got := s.CPU(0).StolenTime(); got < 50*sim.Microsecond {
		t.Fatalf("stolen time = %v", got)
	}
}

func TestStealQueuesFIFO(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	var order []int
	c := s.CPU(0)
	c.Steal(10*sim.Microsecond, func() { order = append(order, 1) })
	c.Steal(10*sim.Microsecond, func() { order = append(order, 2) })
	c.Steal(10*sim.Microsecond, func() { order = append(order, 3) })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("steal order = %v", order)
	}
}

func TestStealOnIdleCPUPaysExitLatency(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	eng.RunUntil(sim.Time(sim.Millisecond)) // deep idle
	var at sim.Time
	s.CPU(0).Steal(10*sim.Microsecond, func() { at = eng.Now() })
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	got := at.Sub(sim.Time(sim.Millisecond))
	if got < 135*sim.Microsecond { // 130µs C6 exit + 10µs work
		t.Fatalf("idle steal completed after %v, want ≥140µs", got)
	}
}

func TestWakeDuringStealRunsAfterward(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	io := newIOThread(s, eng, "fio", ClassFIFO, 99, []int{0})
	c := s.CPU(0)
	c.Steal(100*sim.Microsecond, func() { io.kick() }) // wake from hardirq
	eng.RunUntil(sim.Time(sim.Millisecond))
	if len(io.latencies) != 1 {
		t.Fatal("task woken from irq never ran")
	}
	if io.latencies[0] > 10*sim.Microsecond {
		t.Fatalf("post-irq dispatch took %v", io.latencies[0])
	}
}

func TestRTWokenDuringStealPreemptsCFSOnResume(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	io := newIOThread(s, eng, "rt", ClassFIFO, 99, []int{0})
	c := s.CPU(0)
	start := eng.Now()
	c.Steal(20*sim.Microsecond, func() { io.kick() })
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	if len(io.latencies) != 1 {
		t.Fatal("RT task never ran")
	}
	finished := io.wakeAt.Add(io.latencies[0]).Sub(start)
	if finished > 40*sim.Microsecond {
		t.Fatalf("RT task finished %v after irq start; hog not preempted on resume", finished)
	}
}

func TestTickWorkChargedAsStolenTime(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	s.TickWork = func(cpu int) sim.Duration { return 5 * sim.Microsecond }
	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	st := s.CPU(0).StolenTime()
	// ≈100 ticks × 5µs = 500µs.
	if st < 400*sim.Microsecond || st > 700*sim.Microsecond {
		t.Fatalf("stolen time = %v, want ≈500µs", st)
	}
}

func TestHTContentionSlowsBurst(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 2, Siblings: []int{1, 0}, Seed: 1})
	h := newHog(s, "sib", []int{1})
	h.wake()
	eng.RunUntil(sim.Time(sim.Millisecond))

	var done sim.Time
	task := s.NewTask("a", ClassCFS, 0, []int{0})
	start := eng.Now()
	task.Exec(100*sim.Microsecond, func() { done = eng.Now() })
	s.Wake(task)
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	elapsed := done.Sub(start)
	if elapsed < 125*sim.Microsecond {
		t.Fatalf("burst with busy sibling took %v, want ≥125µs (+25%%)", elapsed)
	}
}

func TestColdCachePenaltyAfterOtherTaskRan(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	p := s.Params()
	a := newIOThread(s, eng, "a", ClassCFS, 0, []int{0})
	b := newIOThread(s, eng, "b", ClassCFS, 0, []int{0})
	a.kick()
	eng.RunUntil(sim.Time(sim.Millisecond))
	b.kick()
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	a.kick() // a resumes after b polluted the cache
	eng.RunUntil(sim.Time(3 * sim.Millisecond))
	if len(a.latencies) != 2 {
		t.Fatal("missing completions")
	}
	if a.latencies[1] < a.latencies[0]+p.ColdCachePenalty/2 {
		t.Fatalf("no cold-cache penalty: first=%v second=%v", a.latencies[0], a.latencies[1])
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, s := newSched(t, 2, BootOptions{})
	h := newHog(s, "hog", nil)
	h.wake()
	// Busy time is charged at burst boundaries (and on update_curr), so run
	// past two full 10 ms hog bursts.
	eng.RunUntil(sim.Time(25 * sim.Millisecond))
	st := s.TotalStats()
	if st.BusyTime < 15*sim.Millisecond {
		t.Fatalf("busy = %v, want ≈20ms", st.BusyTime)
	}
	if st.Switches == 0 {
		t.Fatal("no dispatches counted")
	}
	if h.task.CtxSwitches() == 0 {
		t.Fatal("task ctx switches not counted")
	}
}

func TestSetClassChrt(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})
	io.task.SetClass(ClassFIFO, 99)
	if io.task.Class() != ClassFIFO {
		t.Fatal("SetClass did not apply")
	}
	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	io.kick()
	eng.RunUntil(sim.Time(3 * sim.Millisecond))
	if io.latencies[0] > 15*sim.Microsecond {
		t.Fatalf("chrt'd task latency %v under hog", io.latencies[0])
	}
}

func TestFIFOPriorityOrdering(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	// Occupy the CPU with a long RT burst, then wake two RT tasks of
	// different priority; the higher one must run first.
	blocker := s.NewTask("blocker", ClassFIFO, 50, []int{0})
	blocker.Exec(100*sim.Microsecond, nil)
	s.Wake(blocker)
	eng.RunUntil(sim.Time(10 * sim.Microsecond))

	var order []string
	lo := s.NewTask("lo", ClassFIFO, 10, []int{0})
	lo.Exec(sim.Microsecond, func() { order = append(order, "lo") })
	hi := s.NewTask("hi", ClassFIFO, 40, []int{0})
	hi.Exec(sim.Microsecond, func() { order = append(order, "hi") })
	s.Wake(lo)
	s.Wake(hi)
	eng.RunUntil(sim.Time(sim.Millisecond))
	if len(order) != 2 || order[0] != "hi" {
		t.Fatalf("RT order = %v, want hi first", order)
	}
}

func TestSleepRemovesFromQueue(t *testing.T) {
	eng, s := newSched(t, 1, BootOptions{})
	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(sim.Millisecond))
	waiter := s.NewTask("w", ClassCFS, 0, []int{0})
	waiter.Exec(sim.Microsecond, func() { t.Fatal("canceled task ran") })
	s.Wake(waiter)
	if waiter.State() != StateRunnable {
		t.Fatalf("state = %v", waiter.State())
	}
	waiter.Sleep()
	if waiter.State() != StateSleeping {
		t.Fatalf("state = %v after Sleep", waiter.State())
	}
	eng.RunUntil(sim.Time(20 * sim.Millisecond))
}

func TestInvalidTaskParamsPanic(t *testing.T) {
	_, s := newSched(t, 1, BootOptions{})
	for _, f := range []func(){
		func() { s.NewTask("x", ClassFIFO, 0, nil) },
		func() { s.NewTask("x", ClassFIFO, 100, nil) },
		func() { s.NewTask("x", ClassCFS, 30, nil) },
		func() { s.NewTask("x", ClassCFS, 0, nil).Exec(0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
