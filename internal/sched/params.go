// Package sched models the Linux 4.x CPU scheduler closely enough to
// reproduce the paper's observations:
//
//   - CFS with per-entity vruntime, sleeper credit on wakeup
//     (place_entity), wakeup-preemption granularity, and
//     latency-target-derived timeslices. The paper's 5 ms worst-case
//     latency under the default configuration arises exactly here: a
//     freshly woken CPU-bound daemon holds sleeper credit, so an I/O
//     thread's wakeup fails the preemption check and waits out most of
//     the daemon's slice.
//   - SCHED_FIFO (chrt -f 99), which preempts any CFS task immediately —
//     the paper's first knob (Section IV-B).
//   - Boot options isolcpus / nohz_full / rcu_nocbs / idle=poll /
//     processor.max_cstate (Section IV-C): isolated CPUs are excluded
//     from placement of unpinned tasks, drop to a 1 Hz tick when they
//     have at most one runnable task, host no RCU callback work, and
//     skip C-state entry/exit.
//   - Interrupt "time stealing": hardirq/softirq work interrupts the
//     running task and delays its burst; the irq package injects those.
//   - Idle C-states with exit latency, entered progressively the longer a
//     CPU stays idle.
package sched

import "repro/internal/sim"

// Params are the scheduler tunables; Defaults matches Linux 4.7 defaults
// scaled for a 40-CPU machine.
type Params struct {
	// TickPeriod is the periodic scheduler tick (CONFIG_HZ=1000 → 1 ms).
	TickPeriod sim.Duration
	// NoHzTickPeriod is the residual 1 Hz tick on nohz_full CPUs.
	NoHzTickPeriod sim.Duration
	// SchedLatency is the CFS latency target (period with few tasks).
	SchedLatency sim.Duration
	// MinGranularity floors a task's slice.
	MinGranularity sim.Duration
	// WakeupGranularity is the vruntime advantage a waking task needs
	// before it may preempt the current CFS task.
	WakeupGranularity sim.Duration
	// SleeperCredit caps the vruntime credit granted to a waking task
	// (place_entity subtracts sched_latency/2 in "gentle" mode).
	SleeperCredit sim.Duration
	// CtxSwitch is the direct cost of a context switch.
	CtxSwitch sim.Duration
	// ColdCachePenalty is extra first-burst time after the task lost the
	// CPU to someone else (cache refill).
	ColdCachePenalty sim.Duration
	// MigrationPenalty is extra first-burst time after cross-CPU
	// migration.
	MigrationPenalty sim.Duration
	// HTContentionFactor inflates burst time (per mille) when the
	// hyper-thread sibling is busy at burst start; 250 = +25%.
	HTContentionFactor int
}

// DefaultParams returns Linux-4.7-like tunables.
func DefaultParams() Params {
	return Params{
		TickPeriod:         sim.Millisecond,
		NoHzTickPeriod:     sim.Second,
		SchedLatency:       6 * sim.Millisecond,
		MinGranularity:     750 * sim.Microsecond,
		WakeupGranularity:  sim.Millisecond,
		SleeperCredit:      3 * sim.Millisecond,
		CtxSwitch:          1500 * sim.Nanosecond,
		ColdCachePenalty:   1800 * sim.Nanosecond,
		MigrationPenalty:   3500 * sim.Nanosecond,
		HTContentionFactor: 250,
	}
}

// BootOptions model the kernel command line of Section IV-C.
type BootOptions struct {
	// Isolcpus excludes the listed CPUs from scheduler placement of
	// unpinned tasks (isolcpus=).
	Isolcpus []int
	// NoHzFull stops the periodic tick on the listed CPUs while they run
	// at most one task (nohz_full=).
	NoHzFull []int
	// RCUNocbs offloads RCU callback work from the listed CPUs
	// (rcu_nocbs=). The kernel package consults this when injecting
	// housekeeping work.
	RCUNocbs []int
	// IdlePoll spins the idle loop instead of entering C-states
	// (idle=poll).
	IdlePoll bool
	// MaxCState caps the deepest C-state (processor.max_cstate=1 keeps
	// exit latency at the C1 level).
	MaxCState int
}

// isolated reports whether cpu is in the isolcpus set.
func (b BootOptions) isolated(cpu int) bool { return contains(b.Isolcpus, cpu) }

// noHz reports whether cpu is in the nohz_full set.
func (b BootOptions) noHz(cpu int) bool { return contains(b.NoHzFull, cpu) }

// RCUOffloaded reports whether cpu is in the rcu_nocbs set.
func (b BootOptions) RCUOffloaded(cpu int) bool { return contains(b.RCUNocbs, cpu) }

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// CState describes one idle state of the CPU.
type CState struct {
	Name string
	// Residency is how long the CPU must have been idle before the
	// governor promotes it into this state.
	Residency sim.Duration
	// ExitLatency is paid when a wakeup arrives while in this state.
	ExitLatency sim.Duration
}

// XeonCStates returns the modeled C-state table (C0 is implicit).
func XeonCStates() []CState {
	return []CState{
		{Name: "C1", Residency: 0, ExitLatency: 2 * sim.Microsecond},
		{Name: "C3", Residency: 100 * sim.Microsecond, ExitLatency: 60 * sim.Microsecond},
		{Name: "C6", Residency: 600 * sim.Microsecond, ExitLatency: 130 * sim.Microsecond},
	}
}
