package sched

import (
	"repro/internal/sim"
)

// stealItem is queued interrupt work on a CPU.
type stealItem struct {
	dur sim.Duration
	fn  func()
}

// CPU is one logical CPU with its runqueues, tick, and idle state.
type CPU struct {
	id int
	s  *Scheduler

	curr         *Task
	burstStart   sim.Time
	burstPlanned sim.Duration
	burstTimer   *sim.Timer // reused for every dispatch's completion
	burstArmed   bool
	overhead     sim.Duration // ctx + penalties + idle exit folded into current dispatch
	htMult       int          // per-mille multiplier applied to task time this dispatch

	cfs []*Task // runnable CFS tasks (excluding curr), unordered
	rt  []*Task // runnable FIFO tasks (excluding curr), FIFO order

	minVruntime sim.Duration

	tick *sim.Ticker

	stealing bool
	stealQ   []stealItem
	stealCur stealItem // item whose steal window is in flight

	// burstDone/deepen/stealDone bound once at construction: dispatch and
	// interrupt stealing run per I/O, and a fresh method-value closure per
	// event would dominate the allocation profile.
	burstDoneFn func()
	deepenFn    func()
	stealDoneFn func()

	idleSince   sim.Time
	cstate      int // -1 active/poll, else index into cstates
	deepenTimer *sim.Timer // reused for every C-state promotion
	pendingExit sim.Duration // C-state exit latency to charge on next dispatch

	busyTime   sim.Duration
	stolenTime sim.Duration
	switches   int64
	lastTask   *Task

	// homeTasks are tasks pinned exclusively to this CPU; the
	// auto-isolation policy consults their I/O-boundness.
	homeTasks []*Task

	// balanceFailed counts consecutive load-balance attempts that found
	// only cache-hot candidates on this CPU (sd->nr_balance_failed).
	balanceFailed int
}

// HostsIOBound reports whether any task pinned to this CPU currently
// classifies as I/O-bound.
func (c *CPU) HostsIOBound() bool {
	now := c.s.eng.Now()
	for _, t := range c.homeTasks {
		if t.IOBound(now) {
			return true
		}
	}
	return false
}

// ID reports the CPU number.
func (c *CPU) ID() int { return c.id }

// Curr reports the task currently on the CPU (nil when idle).
func (c *CPU) Curr() *Task { return c.curr }

// NrRunnable counts runnable tasks including the running one.
func (c *CPU) NrRunnable() int {
	n := len(c.cfs) + len(c.rt)
	if c.curr != nil {
		n++
	}
	return n
}

// BusyTime reports cumulative task execution time on this CPU.
func (c *CPU) BusyTime() sim.Duration { return c.busyTime }

// StolenTime reports cumulative interrupt/tick time on this CPU.
func (c *CPU) StolenTime() sim.Duration { return c.stolenTime }

// Switches reports the number of dispatches.
func (c *CPU) Switches() int64 { return c.switches }

// Idle reports whether the CPU has nothing to run.
func (c *CPU) Idle() bool { return c.curr == nil && c.NrRunnable() == 0 && !c.stealing }

// ---- runqueue operations ----

func (c *CPU) enqueue(t *Task) {
	t.state = StateRunnable
	t.wokenAt = c.s.eng.Now()
	if t.class == ClassFIFO {
		c.rt = append(c.rt, t)
	} else {
		c.cfs = append(c.cfs, t)
	}
	c.retuneTick()
}

// removeQueued removes t from the queues if present.
func (c *CPU) removeQueued(t *Task) bool {
	q := &c.cfs
	if t.class == ClassFIFO {
		q = &c.rt
	}
	for i, x := range *q {
		if x == t {
			*q = append((*q)[:i], (*q)[i+1:]...)
			c.retuneTick()
			return true
		}
	}
	return false
}

// pickNext chooses the next task to run: highest-priority FIFO first (FIFO
// within a priority), else the CFS task with minimum vruntime.
func (c *CPU) pickNext() *Task {
	if len(c.rt) > 0 {
		best := 0
		for i, t := range c.rt {
			if t.rtprio > c.rt[best].rtprio {
				best = i
			}
		}
		t := c.rt[best]
		c.rt = append(c.rt[:best], c.rt[best+1:]...)
		c.retuneTick()
		return t
	}
	if len(c.cfs) > 0 {
		best := 0
		for i, t := range c.cfs {
			if t.vruntime < c.cfs[best].vruntime {
				best = i
			}
		}
		t := c.cfs[best]
		c.cfs = append(c.cfs[:best], c.cfs[best+1:]...)
		c.retuneTick()
		return t
	}
	return nil
}

// leftmostVruntime reports the smallest queued CFS vruntime, or false.
func (c *CPU) leftmostVruntime() (sim.Duration, bool) {
	if len(c.cfs) == 0 {
		return 0, false
	}
	min := c.cfs[0].vruntime
	for _, t := range c.cfs[1:] {
		if t.vruntime < min {
			min = t.vruntime
		}
	}
	return min, true
}

// updateMinVruntime keeps the monotonic per-rq min_vruntime used for
// sleeper placement.
func (c *CPU) updateMinVruntime() {
	v := c.minVruntime
	if c.curr != nil && c.curr.class == ClassCFS {
		if c.curr.vruntime > v {
			v = c.curr.vruntime
		}
	}
	if lv, ok := c.leftmostVruntime(); ok && c.curr == nil {
		// With only queued tasks the floor follows the leftmost.
		if lv > v {
			v = lv
		}
	}
	c.minVruntime = v
}

// slice computes the CFS timeslice for the current load (sched_latency /
// nr_running, floored at min_granularity).
func (c *CPU) slice() sim.Duration {
	n := c.NrRunnable()
	if n < 1 {
		n = 1
	}
	s := c.s.params.SchedLatency / sim.Duration(n)
	if s < c.s.params.MinGranularity {
		s = c.s.params.MinGranularity
	}
	return s
}

// ---- dispatch / preemption ----

// dispatch puts t on the CPU and schedules its burst completion.
func (c *CPU) dispatch(t *Task) {
	now := c.s.eng.Now()
	t.state = StateRunning
	c.curr = t
	c.switches++
	t.ctxSwitches++
	c.retuneTick()
	if c.s.OnDispatch != nil {
		c.s.OnDispatch(c.id, t)
	}

	overhead := c.s.params.CtxSwitch + c.pendingExit + t.extraNext
	c.pendingExit = 0
	t.extraNext = 0
	if c.lastTask != nil && c.lastTask != t {
		overhead += c.s.params.ColdCachePenalty
	}
	if t.cpu >= 0 && t.cpu != c.id {
		overhead += c.s.params.MigrationPenalty
	}
	t.cpu = c.id
	t.sliceStart = now
	if !t.everRan {
		t.firstRunAt = now
	}

	c.htMult = 1000
	if sib := c.s.siblingOf(c.id); sib >= 0 && c.s.cpus[sib].curr != nil {
		c.htMult += c.s.params.HTContentionFactor
	}
	wall := overhead + t.remaining*sim.Duration(c.htMult)/1000
	c.overhead = overhead
	c.burstStart = now
	c.burstPlanned = wall
	c.burstTimer.Arm(wall, c.burstDoneFn)
	c.burstArmed = true
}

// updateCurr charges the running task for time elapsed since the last
// accounting anchor (the kernel's update_curr). The completion event stays
// valid because the remaining work shrinks by exactly the elapsed time.
func (c *CPU) updateCurr() {
	t := c.curr
	if t == nil || !c.burstArmed {
		return
	}
	now := c.s.eng.Now()
	elapsed := now.Sub(c.burstStart)
	if elapsed <= 0 {
		return
	}
	c.busyTime += elapsed
	use := elapsed
	if c.overhead > 0 {
		if use <= c.overhead {
			c.overhead -= use
			c.burstStart = now
			return
		}
		use -= c.overhead
		c.overhead = 0
	}
	consumed := use * 1000 / sim.Duration(c.htMult)
	if consumed > t.remaining {
		consumed = t.remaining
	}
	t.remaining -= consumed
	c.charge(t, consumed)
	c.burstStart = now
}

// chargePartial accounts for a partially executed dispatch segment and
// cancels its completion event. The task remains c.curr.
func (c *CPU) chargePartial() {
	c.updateCurr()
	if c.burstArmed {
		c.burstTimer.Cancel()
		c.burstArmed = false
	}
}

// charge adds CPU time to a task's accounting (vruntime for CFS).
func (c *CPU) charge(t *Task, d sim.Duration) {
	t.runTime += d
	if t.class == ClassCFS {
		t.vruntime += sim.Duration(float64(d) * 1024 / t.weight)
		c.updateMinVruntime()
	}
}

// burstDone fires when the current dispatch segment consumed the whole
// burst.
func (c *CPU) burstDone() {
	t := c.curr
	c.busyTime += c.s.eng.Now().Sub(c.burstStart)
	c.overhead = 0
	c.charge(t, t.remaining)
	t.remaining = 0
	c.burstArmed = false
	c.curr = nil
	c.lastTask = t
	t.lastOffCPU = c.s.eng.Now()
	t.state = StateRunnable // transitional; callback decides
	fn := t.onDone
	t.onDone = nil
	t.everRan = true
	if fn != nil {
		fn()
	}
	switch {
	case t.state == StateSleeping:
		// Callback slept the task.
	case t.remaining > 0:
		// Callback queued another burst: task stays runnable here.
		c.enqueue(t)
	default:
		// No further work: implicit sleep.
		t.state = StateSleeping
		t.lastSleep = c.s.eng.Now()
	}
	c.schedule()
}

// preemptCurr takes the CPU away from the running task, which returns to
// its runqueue.
func (c *CPU) preemptCurr() {
	t := c.curr
	c.chargePartial()
	c.curr = nil
	c.lastTask = t
	t.lastOffCPU = c.s.eng.Now()
	c.enqueue(t)
}

// schedule picks and dispatches the next task if the CPU is free.
func (c *CPU) schedule() {
	if c.curr != nil || c.stealing {
		return
	}
	t := c.pickNext()
	if t == nil {
		c.enterIdle()
		return
	}
	c.dispatch(t)
}

// shouldPreempt decides whether waking task w preempts the running task.
func (c *CPU) shouldPreempt(w *Task) bool {
	cur := c.curr
	if cur == nil {
		return false
	}
	c.updateCurr() // preemption decisions need fresh vruntime
	if w.class == ClassFIFO {
		return cur.class != ClassFIFO || w.rtprio > cur.rtprio
	}
	if cur.class == ClassFIFO {
		return false
	}
	// CFS wakeup preemption: the waker needs a vruntime advantage larger
	// than wakeup_granularity (scaled by weight, ignored here).
	return cur.vruntime-w.vruntime > c.s.params.WakeupGranularity
}

// ---- tick ----

func (c *CPU) startTick() {
	c.tick = sim.NewTicker(c.s.eng, c.tickPeriod(), func(sim.Time) { c.onTick() })
}

func (c *CPU) tickPeriod() sim.Duration {
	if c.s.opts.noHz(c.id) && c.NrRunnable() <= 1 {
		return c.s.params.NoHzTickPeriod
	}
	return c.s.params.TickPeriod
}

func (c *CPU) retuneTick() {
	if c.tick != nil {
		c.tick.SetPeriod(c.tickPeriod())
	}
}

func (c *CPU) onTick() {
	// Housekeeping work charged as stolen time.
	if w := c.s.TickWork; w != nil {
		if d := w(c.id); d > 0 {
			c.Steal(d, nil)
		}
	}
	c.checkPreemptTick()
}

// checkPreemptTick is CFS's tick-driven preemption: the current task is
// preempted once it exhausted its slice and someone else is queued.
func (c *CPU) checkPreemptTick() {
	cur := c.curr
	if cur == nil || cur.class != ClassCFS || len(c.cfs) == 0 {
		return
	}
	c.updateCurr()
	ran := c.s.eng.Now().Sub(cur.sliceStart)
	if ran < c.slice() {
		// Also preempt when vruntime fell far behind the leftmost.
		lv, ok := c.leftmostVruntime()
		if !ok || cur.vruntime <= lv+c.slice() {
			return
		}
	}
	c.preemptCurr()
	c.schedule()
}

// ---- interrupt time stealing ----

// Steal interrupts the CPU for dur of non-preemptible work (hardirq,
// softirq, tick housekeeping), then calls fn. Nested steals queue FIFO.
func (c *CPU) Steal(dur sim.Duration, fn func()) {
	if dur < 0 {
		panic("sched: negative steal")
	}
	c.stealQ = append(c.stealQ, stealItem{dur: dur, fn: fn})
	if c.stealing {
		return
	}
	c.stealing = true
	var exit sim.Duration
	if c.curr != nil {
		c.chargePartial()
	} else {
		exit = c.exitIdle()
	}
	c.runSteal(exit)
}

func (c *CPU) runSteal(extra sim.Duration) {
	item := c.stealQ[0]
	// Dequeue by shifting down rather than re-slicing from the front:
	// stealQ[1:] would walk the slice off its backing array and force a
	// fresh allocation per handful of interrupts. The queue is at most a
	// few items deep, so the copy is cheaper than the garbage.
	n := copy(c.stealQ, c.stealQ[1:])
	c.stealQ[n] = stealItem{}
	c.stealQ = c.stealQ[:n]
	total := extra + item.dur
	c.stolenTime += total
	// Only one steal window is in flight at a time (c.stealing gates
	// re-entry), so the item can ride in a field instead of a per-call
	// closure capture.
	c.stealCur = item
	c.s.eng.Schedule(total, c.stealDoneFn)
}

// stealDone fires when the in-flight steal window elapses.
func (c *CPU) stealDone() {
	item := c.stealCur
	c.stealCur = stealItem{}
	if item.fn != nil {
		item.fn()
	}
	if len(c.stealQ) > 0 {
		c.runSteal(0)
		return
	}
	c.stealing = false
	c.resumeAfterSteal()
}

// resumeAfterSteal restarts execution once interrupt work drains. A task
// woken by the interrupt may preempt the interrupted one here.
func (c *CPU) resumeAfterSteal() {
	if c.curr != nil {
		best := c.bestQueued()
		if best != nil && c.shouldPreempt(best) {
			c.preemptCurr()
			c.schedule()
			return
		}
		// Resume the interrupted dispatch segment with what remains.
		t := c.curr
		c.curr = nil
		c.dispatchResume(t)
		return
	}
	c.schedule()
}

// dispatchResume continues an interrupted segment without charging a fresh
// context switch.
func (c *CPU) dispatchResume(t *Task) {
	now := c.s.eng.Now()
	t.state = StateRunning
	c.curr = t
	wall := c.overhead + t.remaining*sim.Duration(c.htMult)/1000
	c.burstStart = now
	c.burstPlanned = wall
	c.burstTimer.Arm(wall, c.burstDoneFn)
	c.burstArmed = true
}

// bestQueued peeks the strongest queued task without dequeueing.
func (c *CPU) bestQueued() *Task {
	if len(c.rt) > 0 {
		best := c.rt[0]
		for _, t := range c.rt[1:] {
			if t.rtprio > best.rtprio {
				best = t
			}
		}
		return best
	}
	if len(c.cfs) > 0 {
		best := c.cfs[0]
		for _, t := range c.cfs[1:] {
			if t.vruntime < best.vruntime {
				best = t
			}
		}
		return best
	}
	return nil
}

// ---- idle & C-states ----

func (c *CPU) enterIdle() {
	now := c.s.eng.Now()
	c.idleSince = now
	if c.s.opts.IdlePoll {
		c.cstate = -1 // polling: zero exit latency
		return
	}
	c.setCState(0) // C1 immediately
	c.armDeepen()
}

func (c *CPU) setCState(i int) {
	max := len(c.s.cstates) - 1
	if m := c.s.opts.MaxCState; m > 0 && m-1 < max {
		max = m - 1
	}
	if i > max {
		i = max
	}
	c.cstate = i
}

// armDeepen schedules promotion to the next deeper C-state.
func (c *CPU) armDeepen() {
	next := c.cstate + 1
	max := len(c.s.cstates) - 1
	if m := c.s.opts.MaxCState; m > 0 && m-1 < max {
		max = m - 1
	}
	if next > max {
		return
	}
	wait := c.s.cstates[next].Residency - c.s.eng.Now().Sub(c.idleSince)
	if wait < 0 {
		wait = 0
	}
	c.deepenTimer.Arm(wait, c.deepenFn)
}

// deepen promotes the idle CPU one C-state deeper. Between arming and
// firing the C-state cannot change (exitIdle cancels the deepen timer),
// so the
// target state is recomputed here rather than captured per arm.
func (c *CPU) deepen() {
	c.cstate++
	c.armDeepen()
}

// exitIdle leaves the idle state, returning the exit latency to charge.
func (c *CPU) exitIdle() sim.Duration {
	c.deepenTimer.Cancel()
	if c.cstate < 0 {
		return 0 // polling or active
	}
	d := c.s.cstates[c.cstate].ExitLatency
	c.cstate = -1
	return d
}
