package sched

import (
	"testing"

	"repro/internal/sim"
)

func TestIOBoundClassification(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 1, Seed: 1})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{0})
	io.pumpQD1(27 * sim.Microsecond)
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if !io.task.IOBound(eng.Now()) {
		t.Fatalf("QD1 thread (runtime %v over %v, %d wakes) not classified I/O-bound",
			io.task.RunTime(), eng.Now(), io.task.Wakes())
	}

	h := newHog(s, "hog", []int{0})
	h.wake()
	eng.RunUntil(sim.Time(300 * sim.Millisecond))
	if h.task.IOBound(eng.Now()) {
		t.Fatal("CPU hog classified I/O-bound")
	}
}

func TestIOBoundNeedsHistory(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 1, Seed: 1})
	task := s.NewTask("young", ClassCFS, 0, []int{0})
	if task.IOBound(eng.Now()) {
		t.Fatal("never-ran task classified I/O-bound")
	}
	task.Exec(sim.Microsecond, nil)
	s.Wake(task)
	eng.RunUntil(sim.Time(sim.Millisecond))
	if task.IOBound(eng.Now()) {
		t.Fatal("task with 1 wake classified I/O-bound")
	}
}

func TestAutoIsolateKeepsHogsOffIOCPUs(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 4, Seed: 1, AutoIsolateIOBound: true})
	// Pinned I/O threads on CPUs 1-3; CPU 0 free.
	ios := make([]*ioThread, 3)
	for i := range ios {
		ios[i] = newIOThread(s, eng, "fio", ClassCFS, 0, []int{i + 1})
		ios[i].pumpQD1(27 * sim.Microsecond)
	}
	// Let classification warm up.
	eng.RunUntil(sim.Time(50 * sim.Millisecond))

	for i := 0; i < 4; i++ {
		h := newHog(s, "hog", nil)
		h.wake()
	}
	before := []sim.Duration{s.CPU(1).BusyTime(), s.CPU(2).BusyTime(), s.CPU(3).BusyTime()}
	eng.RunUntil(sim.Time(250 * sim.Millisecond))

	// The I/O CPUs' extra busy time must be only their own I/O bursts
	// (< 20% utilization), not hog time. Iterate a slice, not a map
	// literal: map order is nondeterministic (afalint's maporder rule).
	for i, b := range before {
		cpu := i + 1
		extra := s.CPU(cpu).BusyTime() - b
		if extra > 60*sim.Millisecond { // 200ms window; I/O alone is ~25ms
			t.Fatalf("cpu(%d) ran %v in 200ms; hogs were placed on an I/O CPU", cpu, extra)
		}
	}
	if s.CPU(0).BusyTime() < 150*sim.Millisecond {
		t.Fatalf("free CPU barely used (%v); hogs went somewhere else", s.CPU(0).BusyTime())
	}
}

func TestAutoIsolateFallsBackWhenAllCPUsHostIO(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 2, Seed: 1, AutoIsolateIOBound: true})
	for i := 0; i < 2; i++ {
		io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{i})
		io.pumpQD1(27 * sim.Microsecond)
	}
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	h := newHog(s, "hog", nil)
	h.wake()
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	if h.task.RunTime() == 0 {
		t.Fatal("hog starved when every CPU hosts I/O (policy must fall back)")
	}
}

func TestAutoIsolateOffByDefault(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, Config{NumCPUs: 2, Seed: 1})
	io := newIOThread(s, eng, "fio", ClassCFS, 0, []int{1})
	io.pumpQD1(27 * sim.Microsecond)
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	// Busy CPU 0 with a pinned hog, then wake an unpinned one: without the
	// policy it may land on cpu(1) (the I/O CPU) since it is idle.
	pinned := newHog(s, "pinned", []int{0})
	pinned.wake()
	eng.RunUntil(sim.Time(60 * sim.Millisecond))
	free := newHog(s, "free", nil)
	free.wake()
	eng.RunUntil(sim.Time(200 * sim.Millisecond))
	if free.task.CPU() != 1 {
		t.Fatalf("stock policy placed the hog on cpu(%d); expected the idle-looking I/O CPU", free.task.CPU())
	}
}
