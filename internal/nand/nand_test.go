package nand

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
)

func rngStream(seed uint64) *rng.Stream { return rng.New(seed) }

func newTiny(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewDevice(eng, TinyGeometry(), MLC3DTiming(), 1)
}

func TestGeometryValidate(t *testing.T) {
	if err := TableIGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TinyGeometry()
	bad.PageSize = 3000 // not a multiple of slice
	if bad.Validate() == nil {
		t.Fatal("invalid geometry accepted")
	}
	bad2 := TinyGeometry()
	bad2.Channels = 0
	if bad2.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestTableIGeometryCapacity(t *testing.T) {
	g := TableIGeometry()
	raw := g.RawBytes()
	// Must be near 1.03 TB raw for a 960 GB drive with ~7% OP.
	if raw < 1000e9 || raw > 1100e9 {
		t.Fatalf("raw capacity = %.1f GB, want ≈1030", float64(raw)/1e9)
	}
	eng := sim.NewEngine()
	d := NewDevice(eng, g, MLC3DTiming(), 1)
	logical := d.LogicalSlices() * int64(g.SliceSize)
	if logical < 930e9 || logical > 990e9 {
		t.Fatalf("logical capacity = %.1f GB, want ≈960", float64(logical)/1e9)
	}
}

func TestFOBReadIsDeterministicWithoutJitter(t *testing.T) {
	eng := sim.NewEngine()
	g := TinyGeometry()
	tm := MLC3DTiming()
	tm.ReadJitterSigma = 0
	tm.DeviceSpread = 0
	d := NewDevice(eng, g, tm, 1)
	if !d.FOB() {
		t.Fatal("fresh device not FOB")
	}
	d1 := d.Read(100)
	eng.RunUntil(eng.Now().Add(time100us))
	d2 := d.Read(200)
	if d1 != d2 {
		t.Fatalf("FOB reads differ: %v vs %v", d1, d2)
	}
	want := tm.ReadPage + 4*tm.XferPerKiB
	if d1 != want {
		t.Fatalf("FOB read = %v, want %v", d1, want)
	}
}

const time100us = 100 * sim.Microsecond

func TestReadLatencyNearDeviceBudget(t *testing.T) {
	// Device-internal read must be ≈20µs so controller+fabric lands at the
	// paper's 25µs/30µs.
	eng := sim.NewEngine()
	d := NewDevice(eng, TableIGeometry(), MLC3DTiming(), 1)
	var sum sim.Duration
	const n = 1000
	for i := 0; i < n; i++ {
		sum += d.Read(int64(i * 7919))
		eng.RunUntil(eng.Now().Add(time100us))
	}
	avg := sum / n
	if avg < 17*sim.Microsecond || avg > 22*sim.Microsecond {
		t.Fatalf("average device read = %v, want ≈19-20µs", avg)
	}
}

func TestDieContentionSerializesReads(t *testing.T) {
	eng, d := newTiny(t)
	lba := int64(0)
	d1 := d.Read(lba)
	d2 := d.Read(lba) // same die, same instant
	if d2 < d1 {
		t.Fatalf("second read on busy die returned earlier: %v < %v", d2, d1)
	}
	if d2 < d1+d.Timing.ReadPage {
		t.Fatalf("second read (%v) should queue behind first (%v)", d2, d1)
	}
	_ = eng
}

func TestDifferentDiesProceedInParallel(t *testing.T) {
	_, d := newTiny(t)
	d1 := d.Read(0) // die 0
	d2 := d.Read(1) // die 1
	diff := d2 - d1
	if diff < 0 {
		diff = -diff
	}
	// Jitter only; must not include a full serialized read.
	if diff > d.Timing.ReadPage/2 {
		t.Fatalf("reads on distinct dies serialized: %v vs %v", d1, d2)
	}
}

func TestWriteMapsAndReadFollows(t *testing.T) {
	eng, d := newTiny(t)
	d.Write(42)
	if d.FOB() {
		t.Fatal("device still FOB after write")
	}
	eng.RunUntil(eng.Now().Add(10 * sim.Millisecond))
	d.Read(42)
	st := d.Stats()
	if st.HostWrites != 1 || st.HostReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UnmappedRead != 0 {
		t.Fatal("read of written LBA counted as unmapped")
	}
}

func TestUnmappedReadCounted(t *testing.T) {
	_, d := newTiny(t)
	d.Read(999)
	if d.Stats().UnmappedRead != 1 {
		t.Fatal("unmapped read not counted")
	}
}

func TestFormatRestoresFOB(t *testing.T) {
	eng, d := newTiny(t)
	for i := int64(0); i < 100; i++ {
		d.Write(i)
		eng.RunUntil(eng.Now().Add(sim.Millisecond))
	}
	d.Format()
	if !d.FOB() {
		t.Fatal("Format did not restore FOB")
	}
	// The device must be fully writable again: all blocks free.
	d.Write(1)
	if len(d.freeList) < d.Geom.Blocks()-1 {
		t.Fatalf("free blocks after format+1 write = %d, want ≈%d", len(d.freeList), d.Geom.Blocks())
	}
}

func TestFOBReadAllocatesNoFTL(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, TableIGeometry(), MLC3DTiming(), 1)
	for i := int64(0); i < 1000; i++ {
		d.Read(i * 131)
		eng.RunUntil(eng.Now().Add(100 * sim.Microsecond))
	}
	if d.initialized {
		t.Fatal("read-only FOB workload initialized the FTL write path")
	}
	if !d.FOB() {
		t.Fatal("reads changed FOB state")
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	eng, d := newTiny(t)
	d.Write(7)
	eng.RunUntil(eng.Now().Add(sim.Millisecond))
	e1 := d.mapping[7]
	d.Write(7)
	e2 := d.mapping[7]
	if e1 == e2 {
		t.Fatal("overwrite did not relocate")
	}
	if d.blocks[e1.block].lbas[e1.slice] != -1 {
		t.Fatal("old copy not invalidated")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, TinyGeometry(), MLC3DTiming(), 1)
	// Overwrite a small working set far beyond raw capacity; GC must keep
	// the device writable.
	slices := int64(d.Geom.Blocks() * d.Geom.SlicesPerBlock())
	working := slices / 4
	writes := slices * 3
	for i := int64(0); i < writes; i++ {
		d.Write(i % working)
		eng.RunUntil(eng.Now().Add(10 * sim.Microsecond))
	}
	st := d.Stats()
	if st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("GC never ran under overwrite pressure: %+v", st)
	}
	if st.HostWrites != writes {
		t.Fatalf("writes = %d, want %d", st.HostWrites, writes)
	}
}

func TestGCCausesWriteLatencySpikes(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, TinyGeometry(), MLC3DTiming(), 1)
	slices := int64(d.Geom.Blocks() * d.Geom.SlicesPerBlock())
	var worst, base sim.Duration
	for i := int64(0); i < slices*3; i++ {
		w := d.Write(i % (slices / 4))
		if w > worst {
			worst = w
		}
		if base == 0 {
			base = w
		}
		eng.RunUntil(eng.Now().Add(10 * sim.Microsecond))
	}
	if worst < base+d.Timing.EraseBlock {
		t.Fatalf("no GC spike observed: base=%v worst=%v", base, worst)
	}
}

func TestPreconditionLeavesNonFOB(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, TinyGeometry(), MLC3DTiming(), 1)
	d.Precondition(0.5)
	if d.FOB() {
		t.Fatal("preconditioned device still FOB")
	}
	if got := int64(len(d.mapping)); got != d.LogicalSlices()/2 {
		t.Fatalf("mapped slices = %d, want %d", got, d.LogicalSlices()/2)
	}
	if eng.Now() != 0 {
		t.Fatal("Precondition advanced simulated time")
	}
}

// Regression: random writes over the full logical space (worst-case
// utilization) must not livelock GC. An earlier version over-subscribed
// small devices — the logical space exceeded what the GC trigger threshold
// left as spare — and the collect loop span forever on all-valid victims.
func TestGCFullSpanRandomWritesTerminate(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, TinyGeometry(), MLC3DTiming(), 5)
	r := rngStream(9)
	max := d.LogicalSlices()
	for i := 0; i < 20000; i++ {
		d.Write(r.Int63n(max))
		eng.RunUntil(eng.Now().Add(10 * sim.Microsecond))
	}
	if d.Stats().GCRuns == 0 {
		t.Fatal("GC never ran at full-span utilization")
	}
}

// Invariant: logical capacity always leaves more spare blocks than the GC
// trigger threshold, so GC can converge.
func TestLogicalCapacityLeavesGCHeadroom(t *testing.T) {
	for _, g := range []Geometry{TinyGeometry(), TableIGeometry()} {
		d := NewDevice(sim.NewEngine(), g, MLC3DTiming(), 1)
		raw := int64(g.Blocks()) * int64(g.SlicesPerBlock())
		spareBlocks := (raw - d.LogicalSlices()) / int64(g.SlicesPerBlock())
		if spareBlocks <= int64(d.GC.FreeBlockLow) {
			t.Fatalf("%+v: spare %d blocks ≤ GC threshold %d", g, spareBlocks, d.GC.FreeBlockLow)
		}
	}
}

// Property: the FTL never loses data — after any sequence of writes the
// mapping points every written LBA at a live slice holding that LBA.
func TestPropertyMappingConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine()
		d := NewDevice(eng, TinyGeometry(), MLC3DTiming(), 2)
		for _, op := range ops {
			d.Write(int64(op % 64))
			eng.RunUntil(eng.Now().Add(10 * sim.Microsecond))
		}
		for lba, e := range d.mapping {
			blk := d.blocks[e.block]
			if blk.lbas == nil || blk.lbas[e.slice] != lba {
				return false
			}
		}
		// Valid counters must equal the number of live slices per block.
		for _, blk := range d.blocks {
			live := 0
			for _, l := range blk.lbas {
				if l >= 0 {
					live++
				}
			}
			if live != blk.valid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFormatFieldPolicy is the new-field tripwire for Device's reset
// contract (afalint -state, resetcover): every field of Device must be
// explicitly classified as either restored by Format (zeroed back to
// the FOB state) or preserved across it (//afalint:sticky on the
// declaration). Adding a field without deciding — and asserting — its
// Format behavior fails this test, which is exactly the cross-run
// state leak the state-integrity rules exist to prevent.
func TestFormatFieldPolicy(t *testing.T) {
	policy := map[string]string{
		// Configuration and identity: Format does not reconfigure.
		"Geom":   "preserved",
		"Timing": "preserved",
		"GC":     "preserved",
		"eng":    "preserved",
		"rnd":    "preserved",
		// Physical die occupancy: Format does not idle the dies.
		"dieFree": "preserved",
		// Counters survive Format by documented contract.
		"stats": "preserved",
		// The FTL proper: back to FOB.
		"initialized": "restored",
		"mapping":     "restored",
		"blocks":      "restored",
		"freeList":    "restored",
		"openBlock":   "restored",
	}
	dt := reflect.TypeOf(Device{})
	for i := 0; i < dt.NumField(); i++ {
		name := dt.Field(i).Name
		if _, ok := policy[name]; !ok {
			t.Errorf("Device field %s has no Format policy: decide whether Format restores or preserves it, assert that below, and add it to this map (and to reset() or //afalint:sticky)", name)
		}
	}
	for name := range policy {
		if _, ok := dt.FieldByName(name); !ok {
			t.Errorf("Format policy lists %s but Device has no such field; delete the stale entry", name)
		}
	}

	eng, d := newTiny(t)
	for i := int64(0); i < 50; i++ {
		d.Write(i)
		eng.RunUntil(eng.Now().Add(sim.Millisecond))
	}
	d.Read(999) // bump UnmappedRead too
	preStats := d.stats
	preDieFree := append([]sim.Time(nil), d.dieFree...)
	preGeom, preTiming, preGC := d.Geom, d.Timing, d.GC
	preEng, preRnd := d.eng, d.rnd
	if preStats.HostWrites == 0 || d.FOB() {
		t.Fatalf("workload did not exercise the FTL: stats = %+v", preStats)
	}

	d.Format()

	// Restored fields: byte-for-byte the FOB state.
	if d.initialized || d.mapping != nil || d.blocks != nil || d.freeList != nil || d.openBlock != nil {
		t.Errorf("Format left FTL state behind: initialized=%v mapping=%d blocks=%d freeList=%d openBlock=%d",
			d.initialized, len(d.mapping), len(d.blocks), len(d.freeList), len(d.openBlock))
	}
	// Preserved fields: untouched.
	if d.stats != preStats {
		t.Errorf("Format changed stats: %+v -> %+v", preStats, d.stats)
	}
	if !reflect.DeepEqual(d.dieFree, preDieFree) {
		t.Errorf("Format changed dieFree: %v -> %v", preDieFree, d.dieFree)
	}
	if d.Geom != preGeom || d.Timing != preTiming || d.GC != preGC {
		t.Error("Format changed configuration (Geom/Timing/GC)")
	}
	if d.eng != preEng || d.rnd != preRnd {
		t.Error("Format rebound the engine or rng stream")
	}
}
