// Package nand models the flash back-end of one M.2 NVMe SSD: the package
// geometry (channels, dies, planes, blocks, pages), raw operation timing,
// and a page-mapped flash translation layer with greedy garbage collection.
//
// The paper deliberately keeps every SSD in the FOB (fresh out of box)
// state via NVMe format so that FTL housekeeping — GC, wear leveling —
// never pollutes the latency measurements; reproducing that methodology,
// Device.Format restores the FOB state and FOB reads have fully
// deterministic service times. GC is implemented anyway because the
// paper's future work ("we will assess latency distributions in used
// (non-FOB) SSD states") is covered by an extension experiment.
package nand

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Geometry describes the flash array inside one SSD.
type Geometry struct {
	Channels      int
	DiesPerChan   int
	PlanesPerDie  int
	BlocksPerPlan int
	PagesPerBlock int
	PageSize      int // bytes
	SliceSize     int // host mapping granularity, bytes (4 KiB)
}

// TableIGeometry approximates the paper's 960 GB 3D MLC device: the exact
// internal layout is proprietary, so a plausible 8-channel configuration is
// used; only the op timing affects latency results.
func TableIGeometry() Geometry {
	return Geometry{
		Channels:      8,
		DiesPerChan:   4,
		PlanesPerDie:  2,
		BlocksPerPlan: 3838, // 64 planes × 3838 × 256 × 16 KiB ≈ 1.03 TB raw (7% OP over 960 GB)
		PagesPerBlock: 256,
		PageSize:      16 << 10,
		SliceSize:     4 << 10,
	}
}

// TinyGeometry is a small array for tests and GC studies. Eight dies keep
// enough program parallelism that the Table I 30k-IOPS write spec (not die
// contention) is the sustained-write bound, as on the real device.
func TinyGeometry() Geometry {
	return Geometry{
		Channels:      4,
		DiesPerChan:   2,
		PlanesPerDie:  1,
		BlocksPerPlan: 32,
		PagesPerBlock: 16,
		PageSize:      16 << 10,
		SliceSize:     4 << 10,
	}
}

// Validate checks internal consistency.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.DiesPerChan <= 0 || g.PlanesPerDie <= 0 ||
		g.BlocksPerPlan <= 0 || g.PagesPerBlock <= 0 {
		return fmt.Errorf("nand: non-positive geometry field: %+v", g)
	}
	if g.PageSize <= 0 || g.SliceSize <= 0 || g.PageSize%g.SliceSize != 0 {
		return fmt.Errorf("nand: PageSize %d must be a positive multiple of SliceSize %d",
			g.PageSize, g.SliceSize)
	}
	return nil
}

// Dies reports the total die count.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChan }

// Blocks reports the total block count.
func (g Geometry) Blocks() int { return g.Dies() * g.PlanesPerDie * g.BlocksPerPlan }

// SlicesPerPage reports how many host slices fit one flash page.
func (g Geometry) SlicesPerPage() int { return g.PageSize / g.SliceSize }

// SlicesPerBlock reports how many host slices fit one block.
func (g Geometry) SlicesPerBlock() int { return g.SlicesPerPage() * g.PagesPerBlock }

// RawBytes reports the raw flash capacity.
func (g Geometry) RawBytes() int64 {
	return int64(g.Blocks()) * int64(g.PagesPerBlock) * int64(g.PageSize)
}

// Timing holds raw NAND and channel timings. The defaults are calibrated so
// a 4 KiB random read costs ~20 µs inside the device; the NVMe controller
// adds ~5 µs, matching the paper's 25 µs standalone read.
type Timing struct {
	ReadPage    sim.Duration // cell-to-register (tR)
	ProgramPage sim.Duration // register-to-cell (tPROG)
	EraseBlock  sim.Duration // tBERS
	XferPerKiB  sim.Duration // channel transfer per KiB
	// ReadJitterSigma is the lognormal sigma of small per-op read-time
	// variation (ECC retries, cell position); 0 disables jitter.
	ReadJitterSigma float64
	// DeviceSpread is the relative device-to-device variation of ReadPage
	// (NAND binning): each device draws a fixed factor in
	// [1-DeviceSpread, 1+DeviceSpread] at construction. Besides being
	// physically real, this keeps a fleet of identical closed-loop QD1
	// streams from phase-locking at shared fabric links.
	DeviceSpread float64
}

// MLC3DTiming returns timing for the paper's 3D MLC NAND.
func MLC3DTiming() Timing {
	return Timing{
		ReadPage:    14 * sim.Microsecond,
		ProgramPage: 650 * sim.Microsecond,
		EraseBlock:  3 * sim.Millisecond,
		XferPerKiB:  1250 * sim.Nanosecond, // 800 MB/s ONFI channel
		// Real tR varies by cell position, retry state, and temperature;
		// ±1-2 µs of per-op spread also keeps independent QD1 streams from
		// phase-locking into artificial convoys at shared fabric links.
		ReadJitterSigma: 0.08,
		DeviceSpread:    0.02,
	}
}

// ZNANDTiming returns timing for a Z-NAND-class ultra-low-latency device
// ("Faster than Flash": SLC-mode cells, short wordlines, ~3 µs reads).
// A 4 KiB random read costs ~2.7 µs inside the device; the slimmed ULL
// controller path (nvme.SpecZNAND) adds ~1 µs more. At this scale the
// host software stack — not the media — dominates end-to-end latency,
// which is the regime where the 2018 paper's tunings invert.
func ZNANDTiming() Timing {
	return Timing{
		ReadPage:    1700 * sim.Nanosecond,
		ProgramPage: 100 * sim.Microsecond,
		EraseBlock:  1 * sim.Millisecond,
		XferPerKiB:  250 * sim.Nanosecond, // ~4 GB/s channel, 4 KiB in ~1 µs
		// SLC-mode cells need fewer ECC retries: tighter per-op jitter
		// and binning spread than the MLC part.
		ReadJitterSigma: 0.04,
		DeviceSpread:    0.01,
	}
}

// GCConfig controls garbage collection.
type GCConfig struct {
	// FreeBlockLow triggers GC when free blocks fall to this count.
	FreeBlockLow int
	// Greedy victim selection is the only policy implemented.
}

// Stats exposes FTL counters.
type Stats struct {
	HostReads    int64
	HostWrites   int64
	UnmappedRead int64 // FOB reads (LBA never written)
	GCRuns       int64
	GCPageMoves  int64
	Erases       int64
}

type block struct {
	die     int
	valid   int
	written int
	// lbas[i] is the host slice stored at slice i, or -1.
	lbas   []int64
	erased bool
}

// Device is one SSD's flash array plus FTL.
type Device struct {
	Geom   Geometry
	Timing Timing
	GC     GCConfig

	eng *sim.Engine
	rnd *rng.Stream

	// Per-die next-free instant (plane-level parallelism folded in).
	// Physical die occupancy, not FTL state: Format does not idle the
	// dies, so reset leaves it alone by contract (TestFormatFieldPolicy).
	dieFree []sim.Time //afalint:sticky -- physical die occupancy survives Format

	// The FTL write path is initialized lazily: a FOB device running the
	// paper's read-only methodology never allocates its block table
	// (64 Table-I devices would otherwise cost ~1 GB of bookkeeping).
	initialized bool
	mapping     map[int64]mapEntry // host slice → (block, slice)
	blocks      []*block
	freeList    []int
	openBlock   []int // per-die currently open block, -1 if none
	// Counters are preserved across Format by contract (see Format's
	// doc and TestFormatFieldPolicy), so reset must not zero them.
	stats Stats //afalint:sticky -- counters survive Format by contract
}

type mapEntry struct {
	block int
	slice int
}

// NewDevice builds a device in the FOB state.
func NewDevice(eng *sim.Engine, g Geometry, tm Timing, seed uint64) *Device {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	d := &Device{
		Geom:    g,
		Timing:  tm,
		GC:      GCConfig{FreeBlockLow: 2 * g.Dies()},
		eng:     eng,
		rnd:     rng.New(seed),
		dieFree: make([]sim.Time, g.Dies()),
	}
	if s := tm.DeviceSpread; s > 0 {
		factor := d.rnd.Uniform(1-s, 1+s)
		d.Timing.ReadPage = sim.Duration(float64(tm.ReadPage) * factor)
	}
	d.reset()
	return d
}

func (d *Device) reset() {
	d.initialized = false
	d.mapping = nil
	d.blocks = nil
	d.freeList = nil
	d.openBlock = nil
}

// ensureInit builds the FTL write-path structures on first write.
func (d *Device) ensureInit() {
	if d.initialized {
		return
	}
	d.initialized = true
	g := d.Geom
	d.mapping = make(map[int64]mapEntry)
	d.blocks = make([]*block, g.Blocks())
	d.freeList = make([]int, 0, g.Blocks())
	for b := range d.blocks {
		die := b % g.Dies() // stripe blocks across dies
		d.blocks[b] = &block{die: die, erased: true}
		d.freeList = append(d.freeList, b)
	}
	d.openBlock = make([]int, g.Dies())
	for i := range d.openBlock {
		d.openBlock[i] = -1
	}
}

// Format returns the device to the FOB state (NVMe format, Section III-B).
// Counters are preserved; the mapping and all block contents are discarded.
func (d *Device) Format() { d.reset() }

// FOB reports whether any host data is mapped.
func (d *Device) FOB() bool { return len(d.mapping) == 0 }

// Stats returns a copy of the FTL counters.
func (d *Device) Stats() Stats { return d.stats }

// LogicalSlices reports the addressable host slice count: 93% of raw
// (the modeled product's ~7% over-provisioning), further capped so the
// spare area always exceeds the GC trigger threshold — otherwise a small
// device could be logically over-subscribed and GC could never converge.
func (d *Device) LogicalSlices() int64 {
	raw := int64(d.Geom.Blocks()) * int64(d.Geom.SlicesPerBlock())
	headroomBlocks := int64(d.GC.FreeBlockLow + d.Geom.Dies() + 2)
	byHeadroom := raw - headroomBlocks*int64(d.Geom.SlicesPerBlock())
	byOP := raw * 93 / 100
	if byHeadroom < byOP {
		return byHeadroom
	}
	return byOP
}

// dieOf maps a host slice to its die by striping across channels first,
// so sequential LBAs exploit channel parallelism.
func (d *Device) dieOf(lba int64) int {
	return int(lba % int64(d.Geom.Dies()))
}

// occupyDie reserves a die for an operation of length dur starting no
// earlier than now, returning the completion instant.
func (d *Device) occupyDie(die int, dur sim.Duration) sim.Time {
	start := d.eng.Now()
	if d.dieFree[die] > start {
		start = d.dieFree[die]
	}
	d.dieFree[die] = start.Add(dur)
	return d.dieFree[die]
}

func (d *Device) readDuration() sim.Duration {
	tr := d.Timing.ReadPage
	if s := d.Timing.ReadJitterSigma; s > 0 {
		tr = sim.Duration(d.rnd.LogNormalMean(float64(tr), s))
	}
	xfer := sim.Duration(int64(d.Timing.XferPerKiB) * int64(d.Geom.SliceSize) / 1024)
	return tr + xfer
}

// Read services a 4 KiB host read of the given slice LBA and returns the
// delay until data is in the controller buffer (including die contention).
// FOB/unmapped reads cost a full deterministic read, mirroring how the
// testbed's FOB devices behaved (the paper measured 25 µs against
// freshly formatted drives).
func (d *Device) Read(lba int64) sim.Duration {
	d.stats.HostReads++
	die := d.dieOf(lba)
	if e, ok := d.mapping[lba]; ok {
		die = d.blocks[e.block].die
	} else {
		d.stats.UnmappedRead++
	}
	done := d.occupyDie(die, d.readDuration())
	return done.Sub(d.eng.Now())
}

// Write services a 4 KiB host write and returns the delay until the
// program completes, including any foreground GC it triggered.
func (d *Device) Write(lba int64) sim.Duration {
	total, _ := d.WriteWithGC(lba)
	return total
}

// WriteWithGC is Write, also reporting the foreground-GC portion of the
// delay separately (the NVMe cache model applies backpressure only for
// that part — transient die-queue waits are absorbed by the cache).
func (d *Device) WriteWithGC(lba int64) (total, gc sim.Duration) {
	d.ensureInit()
	d.stats.HostWrites++
	start := d.eng.Now()
	var gcDelay sim.Duration
	startFree := len(d.freeList)
	for passes := 0; len(d.freeList) <= d.GC.FreeBlockLow; passes++ {
		// Safety valves: if repeated passes reclaim no block-level slack
		// (every victim nearly fully valid), stop — the host keeps writing
		// into the remaining free blocks rather than livelocking.
		if passes >= 16 && len(d.freeList) <= startFree {
			break
		}
		if passes >= 64 {
			break
		}
		moved := d.collect()
		if moved < 0 {
			break // nothing collectible; device genuinely full
		}
		gcDelay += sim.Duration(moved)
	}
	// Invalidate the previous copy.
	if e, ok := d.mapping[lba]; ok {
		blk := d.blocks[e.block]
		blk.valid--
		blk.lbas[e.slice] = -1
	}
	blkIdx, slice := d.allocSlice(lba)
	die := d.blocks[blkIdx].die
	prog := d.Timing.ProgramPage / sim.Duration(d.Geom.SlicesPerPage())
	xfer := sim.Duration(int64(d.Timing.XferPerKiB) * int64(d.Geom.SliceSize) / 1024)
	done := d.occupyDie(die, gcDelay+prog+xfer)
	d.mapping[lba] = mapEntry{block: blkIdx, slice: slice}
	return done.Sub(start), gcDelay
}

// allocSlice appends lba to an open block, opening a fresh one as needed.
func (d *Device) allocSlice(lba int64) (blkIdx, slice int) {
	die := d.dieOf(lba)
	bi := d.openBlock[die]
	if bi < 0 || d.blocks[bi].written >= d.Geom.SlicesPerBlock() {
		bi = d.popFree(die)
		d.openBlock[die] = bi
	}
	blk := d.blocks[bi]
	if blk.lbas == nil {
		blk.lbas = make([]int64, d.Geom.SlicesPerBlock())
		for i := range blk.lbas {
			blk.lbas[i] = -1
		}
	}
	s := blk.written
	blk.lbas[s] = lba
	blk.written++
	blk.valid++
	blk.erased = false
	return bi, s
}

// popFree takes a free block, preferring the requested die.
func (d *Device) popFree(die int) int {
	for i, bi := range d.freeList {
		if d.blocks[bi].die == die {
			d.freeList = append(d.freeList[:i], d.freeList[i+1:]...)
			return bi
		}
	}
	if len(d.freeList) == 0 {
		panic("nand: out of free blocks (GC failed to reclaim)")
	}
	bi := d.freeList[0]
	d.freeList = d.freeList[1:]
	return bi
}

// collect performs one greedy GC pass: pick the fullest-invalid block,
// relocate its valid slices, erase it. It returns the simulated nanoseconds
// the pass cost, or -1 when no victim exists.
func (d *Device) collect() int64 {
	victim := -1
	best := 1 << 30
	for bi, blk := range d.blocks {
		if blk.erased || blk.written < d.Geom.SlicesPerBlock() {
			continue // only closed blocks are victims
		}
		if d.isOpen(bi) {
			continue
		}
		if blk.valid < best {
			best = blk.valid
			victim = bi
		}
	}
	if victim < 0 {
		return -1
	}
	blk := d.blocks[victim]
	var cost sim.Duration
	d.stats.GCRuns++
	for _, lba := range blk.lbas {
		if lba < 0 {
			continue
		}
		// Relocate: read + program elsewhere.
		cost += d.readDuration()
		nb, ns := d.allocSlice(lba)
		d.mapping[lba] = mapEntry{block: nb, slice: ns}
		cost += d.Timing.ProgramPage / sim.Duration(d.Geom.SlicesPerPage())
		d.stats.GCPageMoves++
	}
	// Erase the victim.
	cost += d.Timing.EraseBlock
	d.stats.Erases++
	blk.valid = 0
	blk.written = 0
	blk.erased = true
	blk.lbas = nil
	d.freeList = append(d.freeList, victim)
	return int64(cost)
}

func (d *Device) isOpen(bi int) bool {
	for _, ob := range d.openBlock {
		if ob == bi {
			return true
		}
	}
	return false
}

// Precondition sequentially fills fraction frac of the logical space,
// leaving the device in a used (non-FOB) state for the GC extension study.
// It advances no simulated time; only the mapping state changes.
func (d *Device) Precondition(frac float64) {
	d.ensureInit()
	n := int64(float64(d.LogicalSlices()) * frac)
	for lba := int64(0); lba < n; lba++ {
		if len(d.freeList) <= d.GC.FreeBlockLow {
			d.collect()
		}
		if e, ok := d.mapping[lba]; ok {
			blk := d.blocks[e.block]
			blk.valid--
			blk.lbas[e.slice] = -1
		}
		bi, s := d.allocSlice(lba)
		d.mapping[lba] = mapEntry{block: bi, slice: s}
	}
}
