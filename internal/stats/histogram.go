// Package stats implements the latency statistics pipeline used throughout
// the reproduction: a log-bucketed histogram (HDR-style), the fio
// completion-latency percentile ladder from the paper (average, 2-nines
// through 6-nines, and the 100th/maximum), cross-SSD aggregation (mean and
// standard deviation of each ladder rung over 64 devices, as plotted in
// Figs 12 and 14), and raw sample logs for the Fig 10 scatter plot.
package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram records value counts with bounded relative error, like an HDR
// histogram. Values are expected to be latencies in nanoseconds but any
// positive int64 works. Each power of two is split into subBuckets linear
// buckets, bounding relative quantile error to ~1/subBuckets (0.78% here).
type Histogram struct {
	counts []int64
	total  int64
	sum    float64
	min    int64
	max    int64
}

const (
	// Values below 2^subBucketBits are recorded exactly; above that, each
	// octave [2^e, 2^(e+1)) is split into 2^(subBucketBits-1) linear
	// buckets, bounding relative quantile error to 2^-(subBucketBits-1)
	// (0.78% here).
	subBucketBits = 8
	subBuckets    = 1 << subBucketBits
	halfBuckets   = subBuckets / 2
	// maxShift covers values up to ~2^43 ns ≈ 2.4 h of simulated latency,
	// far beyond anything the model produces.
	maxShift   = 36
	numBuckets = subBuckets + maxShift*halfBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]int64, numBuckets),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps a positive value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v) // exact region
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v) >= subBucketBits
	shift := exp - subBucketBits + 1           // >= 1
	sub := int(v >> uint(shift))               // in [halfBuckets, subBuckets)
	return subBuckets + (shift-1)*halfBuckets + (sub - halfBuckets)
}

// bucketLow returns the smallest value mapping to bucket i; used to report
// quantiles.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	k := i - subBuckets
	shift := k/halfBuckets + 1
	sub := k%halfBuckets + halfBuckets
	return int64(sub) << uint(shift)
}

// Record adds one observation. Non-positive values are clamped to 1 (the
// simulator never produces them, but defensive clamping keeps property
// tests simple).
func (h *Histogram) Record(v int64) {
	if v < 1 {
		v = 1
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean reports the arithmetic mean of the exact recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min reports the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded value exactly (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile reports the value at quantile q in [0, 1]. q=1 returns the exact
// maximum; other quantiles carry the bucket's relative error. Empty
// histograms report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			// The bucket's lower edge keeps quantiles conservative and
			// monotonic; clamp into [min, max] so a bucket edge below the
			// exact minimum never leaks out.
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Quantiles fills out[i] with Quantile(qs[i]) for ascending qs in one scan
// over the buckets. LadderOf calls it with five nines-quantiles, so the
// per-SSD summary costs one bucket walk instead of five.
func (h *Histogram) Quantiles(qs []float64, out []int64) {
	if len(qs) != len(out) {
		panic("stats: Quantiles length mismatch")
	}
	next := 0
	// Edge quantiles don't need the scan.
	for next < len(qs) && qs[next] <= 0 {
		out[next] = h.Min()
		next++
	}
	if h.total == 0 {
		for i := next; i < len(qs); i++ {
			out[i] = 0
		}
		return
	}
	var seen int64
	for i, c := range h.counts {
		if next == len(qs) || qs[next] >= 1 {
			break
		}
		if c == 0 {
			continue
		}
		seen += c
		for next < len(qs) && qs[next] < 1 {
			rank := int64(math.Ceil(qs[next] * float64(h.total)))
			if rank < 1 {
				rank = 1
			}
			if seen < rank {
				break
			}
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			out[next] = v
			next++
		}
	}
	for i := next; i < len(qs); i++ {
		out[i] = h.max
	}
}

// Merge adds all of o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

func (h *Histogram) String() string {
	return fmt.Sprintf("histogram{n=%d mean=%.0f max=%d}", h.total, h.Mean(), h.max)
}
