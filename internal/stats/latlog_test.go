package stats

import (
	"testing"
)

func TestLatLogBasics(t *testing.T) {
	l := NewLatLog(0)
	l.Add(100, 30)
	l.Add(200, 31)
	s := l.Samples()
	if len(s) != 2 || s[0].At != 100 || s[1].Latency != 31 {
		t.Fatalf("samples = %v", s)
	}
	if l.Dropped() != 0 {
		t.Fatal("unexpected drops")
	}
}

func TestLatLogLimit(t *testing.T) {
	l := NewLatLog(3)
	for i := 0; i < 10; i++ {
		l.Add(int64(i), int64(i))
	}
	if len(l.Samples()) != 3 {
		t.Fatalf("stored %d, want 3", len(l.Samples()))
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", l.Dropped())
	}
}

func TestSpikesAbove(t *testing.T) {
	l := NewLatLog(0)
	l.Add(1, 30)
	l.Add(2, 600)
	l.Add(3, 31)
	l.Add(4, 550)
	spikes := l.SpikesAbove(100)
	if len(spikes) != 2 || spikes[0].At != 2 || spikes[1].At != 4 {
		t.Fatalf("spikes = %v", spikes)
	}
}

func TestSpikeClustersFindsPeriod(t *testing.T) {
	// Synthetic Fig 10: background at 30, spike windows at t=1e9 and t=3e9,
	// each window containing several consecutive spikes.
	l := NewLatLog(0)
	for t0 := int64(0); t0 < 4_000_000_000; t0 += 1_000_000 {
		lat := int64(30_000)
		if (t0 >= 1_000_000_000 && t0 < 1_000_500_000) ||
			(t0 >= 3_000_000_000 && t0 < 3_000_500_000) {
			lat = 580_000
		}
		l.Add(t0, lat)
	}
	clusters := l.SpikeClusters(100_000, 10_000_000)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", clusters)
	}
	if clusters[0] != 1_000_000_000 || clusters[1] != 3_000_000_000 {
		t.Fatalf("cluster starts = %v", clusters)
	}
}

func TestSpikeClustersEmpty(t *testing.T) {
	l := NewLatLog(0)
	l.Add(1, 30)
	if c := l.SpikeClusters(100, 10); len(c) != 0 {
		t.Fatalf("clusters on clean log = %v", c)
	}
}
