package stats

// HistogramSet is a dense, fixed-size bank of histograms indexed by a
// small integer key — one per QoS class, per phase, per shard, or any
// other enumerable slice of a workload. It exists so hot completion
// paths can record into "the class-i histogram" with a bounds-checked
// slice index and nothing else: no map lookup, no interface dispatch,
// no allocation.
type HistogramSet struct {
	hs []*Histogram
}

// NewHistogramSet builds a set of n independent histograms.
func NewHistogramSet(n int) *HistogramSet {
	s := &HistogramSet{hs: make([]*Histogram, n)}
	for i := range s.hs {
		s.hs[i] = NewHistogram()
	}
	return s
}

// Len returns the number of histograms in the set.
func (s *HistogramSet) Len() int { return len(s.hs) }

// Record adds one sample to histogram i. Panics if i is out of range,
// mirroring a slice index.
func (s *HistogramSet) Record(i int, v int64) { s.hs[i].Record(v) }

// Hist returns histogram i for direct inspection.
func (s *HistogramSet) Hist(i int) *Histogram { return s.hs[i] }

// Ladder summarizes histogram i into a latency ladder.
func (s *HistogramSet) Ladder(i int) Ladder { return LadderOf(s.hs[i]) }

// Ladders summarizes every histogram in index order.
func (s *HistogramSet) Ladders() []Ladder {
	out := make([]Ladder, len(s.hs))
	for i, h := range s.hs {
		out[i] = LadderOf(h)
	}
	return out
}

// Merge folds o into s element-wise. Panics if the sets differ in size.
func (s *HistogramSet) Merge(o *HistogramSet) {
	if len(s.hs) != len(o.hs) {
		panic("stats: HistogramSet size mismatch in Merge")
	}
	for i, h := range s.hs {
		h.Merge(o.hs[i])
	}
}

// Reset clears every histogram in the set.
func (s *HistogramSet) Reset() {
	for _, h := range s.hs {
		h.Reset()
	}
}
