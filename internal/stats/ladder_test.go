package stats

import (
	"math"
	"strings"
	"testing"
)

func uniformHistogram(n int, scale int64) *Histogram {
	h := NewHistogram()
	for i := 1; i <= n; i++ {
		h.Record(int64(i) * scale)
	}
	return h
}

func TestLadderOf(t *testing.T) {
	h := uniformHistogram(100000, 1)
	l := LadderOf(h)
	if l.N != 100000 {
		t.Fatalf("N = %d", l.N)
	}
	if math.Abs(l.Avg-50000.5) > 1 {
		t.Fatalf("Avg = %v", l.Avg)
	}
	wantApprox := []int64{99000, 99900, 99990, 99999, 100000}
	for i, w := range wantApprox {
		if relErr := math.Abs(float64(l.P[i]-w)) / float64(w); relErr > 0.01 {
			t.Errorf("P[%d] = %d, want ≈%d", i, l.P[i], w)
		}
	}
	if l.Max != 100000 {
		t.Fatalf("Max = %d", l.Max)
	}
}

func TestLadderRungOrder(t *testing.T) {
	h := uniformHistogram(50000, 3)
	l := LadderOf(h)
	prev := l.Rung(0)
	for i := 1; i < NumRungs; i++ {
		if l.Rung(i) < prev {
			t.Fatalf("ladder rungs not nondecreasing at %d: %v < %v", i, l.Rung(i), prev)
		}
		prev = l.Rung(i)
	}
}

func TestLadderLabelsMatchRungs(t *testing.T) {
	if len(LadderLabels) != NumRungs {
		t.Fatalf("LadderLabels has %d entries, want %d", len(LadderLabels), NumRungs)
	}
	if LadderLabels[0] != "avg" || LadderLabels[6] != "max" {
		t.Fatalf("labels = %v", LadderLabels)
	}
}

func TestLadderString(t *testing.T) {
	l := LadderOf(uniformHistogram(100, 1000))
	s := l.String()
	for _, lbl := range LadderLabels {
		if !strings.Contains(s, lbl) {
			t.Fatalf("String() missing %q: %s", lbl, s)
		}
	}
}

func TestSummarizeUniformDevices(t *testing.T) {
	// 8 identical devices → std 0 at every rung.
	var ladders []Ladder
	for i := 0; i < 8; i++ {
		ladders = append(ladders, LadderOf(uniformHistogram(10000, 5)))
	}
	s := Summarize(ladders)
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	for r := 0; r < NumRungs; r++ {
		if s.Std[r] != 0 {
			t.Fatalf("identical devices: Std[%d] = %v, want 0", r, s.Std[r])
		}
		if s.Min[r] != s.Max[r] || s.Min[r] != s.Mean[r] {
			t.Fatalf("identical devices: Min/Mean/Max disagree at rung %d", r)
		}
	}
}

func TestSummarizeSpread(t *testing.T) {
	// Two devices whose maxima differ; std of max rung must reflect it.
	h1, h2 := NewHistogram(), NewHistogram()
	for i := 0; i < 1000; i++ {
		h1.Record(30000)
		h2.Record(30000)
	}
	h1.Record(90000)   // one tail event
	h2.Record(5000000) // a 5 ms straggler
	s := Summarize([]Ladder{LadderOf(h1), LadderOf(h2)})
	if s.Mean[6] != (90000+5000000)/2 {
		t.Fatalf("Mean[max] = %v", s.Mean[6])
	}
	wantStd := (5000000 - 90000) / 2
	if math.Abs(s.Std[6]-float64(wantStd)) > 1 {
		t.Fatalf("Std[max] = %v, want %d", s.Std[6], wantStd)
	}
	if s.Min[6] != 90000 || s.Max[6] != 5000000 {
		t.Fatalf("Min/Max[max] = %v/%v", s.Min[6], s.Max[6])
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if w.Std() != 2 {
		t.Fatalf("Std = %v, want 2", w.Std())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford nonzero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single-sample Welford wrong")
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	var w Welford
	base := 1e12
	for i := 0; i < 1000; i++ {
		w.Add(base + float64(i%2)) // values 1e12 and 1e12+1
	}
	if math.Abs(w.Std()-0.5) > 1e-6 {
		t.Fatalf("Std = %v, want 0.5 (catastrophic cancellation?)", w.Std())
	}
}
