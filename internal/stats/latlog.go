package stats

// Sample is one completion-latency observation: when the I/O completed
// (nanoseconds of simulated time) and how long it took (nanoseconds).
// The Fig 10 scatter plot is a sequence of these.
type Sample struct {
	At      int64
	Latency int64
}

// LatLog collects raw latency samples, like fio's --write_lat_log. The
// paper notes (footnote 1) that enabling the log on all 64 SSDs perturbed
// the measurement, so logging carries a per-sample CPU cost that the
// simulator charges to the recording thread; see the fio package.
type LatLog struct {
	samples []Sample
	limit   int
	dropped int64
}

// NewLatLog returns a log retaining at most limit samples (0 = unlimited).
func NewLatLog(limit int) *LatLog {
	return &LatLog{limit: limit}
}

// Add records one sample. Once the limit is reached further samples are
// counted but not stored.
func (l *LatLog) Add(at, latency int64) {
	if l.limit > 0 && len(l.samples) >= l.limit {
		l.dropped++
		return
	}
	l.samples = append(l.samples, Sample{At: at, Latency: latency})
}

// Samples returns the stored samples in completion order.
func (l *LatLog) Samples() []Sample { return l.samples }

// Dropped reports how many samples were discarded due to the limit.
func (l *LatLog) Dropped() int64 { return l.dropped }

// SpikesAbove returns the samples whose latency exceeds threshold,
// preserving order. Used to locate the periodic SMART spikes of Fig 10.
func (l *LatLog) SpikesAbove(threshold int64) []Sample {
	var out []Sample
	for _, s := range l.samples {
		if s.Latency > threshold {
			out = append(out, s)
		}
	}
	return out
}

// SpikeClusters groups spike samples whose completion times are within gap
// of the previous spike and reports the start time of each cluster. The
// periodic SMART windows of Fig 10 show up as clusters at a fixed period.
func (l *LatLog) SpikeClusters(threshold, gap int64) []int64 {
	var starts []int64
	last := int64(-1 << 62)
	for _, s := range l.samples {
		if s.Latency <= threshold {
			continue
		}
		if s.At-last > gap {
			starts = append(starts, s.At)
		}
		last = s.At
	}
	return starts
}
