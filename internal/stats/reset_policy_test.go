package stats

import (
	"reflect"
	"testing"
	"unsafe"
)

// fieldValue reads a (possibly unexported) struct field for comparison.
// Test-only: the production code never reflects.
func fieldValue(v reflect.Value) any {
	return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem().Interface()
}

// populateHistogram drives every Histogram field away from its
// constructed state through the public API, then verifies by
// reflection that it actually did — so a future field that Record does
// not touch (and Reset therefore cannot be proven to restore by this
// test alone) is flagged the day it is added, not the day a pooled
// rerun silently reuses it.
func populateHistogram(t *testing.T, h *Histogram) {
	t.Helper()
	for _, v := range []int64{1, 7, 900, 1 << 20, 1 << 34} {
		h.Record(v)
	}
	fresh := NewHistogram()
	hv := reflect.ValueOf(h).Elem()
	fv := reflect.ValueOf(fresh).Elem()
	for i := 0; i < hv.NumField(); i++ {
		name := hv.Type().Field(i).Name
		if reflect.DeepEqual(fieldValue(hv.Field(i)), fieldValue(fv.Field(i))) {
			t.Errorf("populate did not move Histogram field %s off its constructed state; extend populateHistogram (and check Reset covers the new field)", name)
		}
	}
}

// TestHistogramResetRestoresConstructedState is the reflection-based
// new-field tripwire for Histogram.Reset (afalint -state, resetcover):
// populate every field, reset, and require zero-equivalence with a
// freshly constructed histogram — field by field, so the failure names
// the leak.
func TestHistogramResetRestoresConstructedState(t *testing.T) {
	h := NewHistogram()
	populateHistogram(t, h)
	h.Reset()
	if !reflect.DeepEqual(h, NewHistogram()) {
		hv, fv := reflect.ValueOf(h).Elem(), reflect.ValueOf(NewHistogram()).Elem()
		for i := 0; i < hv.NumField(); i++ {
			if !reflect.DeepEqual(fieldValue(hv.Field(i)), fieldValue(fv.Field(i))) {
				t.Errorf("Reset leaves Histogram field %s dirty: %v (want %v)",
					hv.Type().Field(i).Name, hv.Field(i), fv.Field(i))
			}
		}
	}
	// And the reset histogram must behave fresh, not just compare fresh.
	if h.Count() != 0 {
		t.Errorf("Count() = %d after Reset", h.Count())
	}
	h.Record(5)
	if h.Count() != 1 {
		t.Errorf("Count() = %d after Reset+Record", h.Count())
	}
}

// TestHistogramSetResetRestoresConstructedState covers the delegating
// HistogramSet.Reset the same way: every element back to constructed
// state, structure (length, element identity) untouched.
func TestHistogramSetResetRestoresConstructedState(t *testing.T) {
	s := NewHistogramSet(3)
	for i := 0; i < s.Len(); i++ {
		populateHistogram(t, s.Hist(i))
	}
	before := make([]*Histogram, s.Len())
	for i := range before {
		before[i] = s.Hist(i)
	}
	s.Reset()
	if !reflect.DeepEqual(s, NewHistogramSet(3)) {
		t.Error("HistogramSet.Reset does not restore the constructed state; compare field by field with TestHistogramResetRestoresConstructedState")
	}
	for i := 0; i < s.Len(); i++ {
		if s.Hist(i) != before[i] {
			t.Errorf("Reset replaced histogram %d instead of resetting it in place", i)
		}
	}
}
