package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketIndex(v)) <= v, within the bucket's relative error.
	for _, v := range []int64{1, 2, 255, 256, 257, 511, 512, 1000, 25000, 30000, 5000000, 1 << 40} {
		idx := bucketIndex(v)
		low := bucketLow(idx)
		if low > v {
			t.Fatalf("bucketLow(%d)=%d > v=%d", idx, low, v)
		}
		relErr := float64(v-low) / float64(v)
		if relErr > 1.0/float64(halfBuckets) {
			t.Fatalf("value %d: bucket low %d, relative error %v too large", v, low, relErr)
		}
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := int64(1); v < 1<<20; v += 7 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		prev = idx
	}
}

func TestBucketLowsStrictlyIncrease(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		low := bucketLow(i)
		if low <= prev {
			t.Fatalf("bucketLow(%d)=%d <= bucketLow(%d)=%d", i, low, i-1, prev)
		}
		prev = low
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram has nonzero summary")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestExactStatistics(t *testing.T) {
	h := NewHistogram()
	vals := []int64{10, 20, 30, 40, 50}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Fatalf("Mean = %v, want 30", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestQuantileExactRegion(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	// Values < 256 are exact.
	cases := []struct {
		q    float64
		want int64
	}{{0.01, 1}, {0.5, 50}, {0.99, 99}, {1.0, 100}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileRelativeError(t *testing.T) {
	h := NewHistogram()
	r := rng.New(1)
	vals := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := int64(r.Exp(30000)) + 25000 // latency-like
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999} {
		exact := vals[int(math.Ceil(q*float64(len(vals))))-1]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.01 {
			t.Errorf("Quantile(%v) = %d, exact %d, rel err %v > 1%%", q, got, exact, relErr)
		}
	}
}

func TestQuantileOneIsExactMax(t *testing.T) {
	h := NewHistogram()
	h.Record(123456789)
	h.Record(42)
	if h.Quantile(1) != 123456789 {
		t.Fatalf("Quantile(1) = %d, want exact max", h.Quantile(1))
	}
}

func TestRecordClampsNonPositive(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(-5)
	if h.Count() != 2 || h.Min() != 1 {
		t.Fatalf("clamping failed: count=%d min=%d", h.Count(), h.Min())
	}
}

func TestRecordHugeValueClampsToLastBucket(t *testing.T) {
	h := NewHistogram()
	h.Record(math.MaxInt64)
	if h.Count() != 1 {
		t.Fatal("huge value not recorded")
	}
	if h.Max() != math.MaxInt64 {
		t.Fatal("exact max lost")
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatal("quantile of huge value not positive")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(1); v <= 50; v++ {
		a.Record(v * 100)
	}
	for v := int64(51); v <= 100; v++ {
		b.Record(v * 100)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 100 || a.Max() != 10000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	if got := a.Quantile(0.5); math.Abs(float64(got)-5000) > 60 {
		t.Fatalf("merged median = %d, want ≈5000", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(7)
	a.Merge(b)
	if a.Count() != 1 || a.Min() != 7 {
		t.Fatal("merging an empty histogram changed contents")
	}
}

func TestReset(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Record(5)
	if h.Min() != 5 {
		t.Fatal("histogram unusable after Reset")
	}
}

// Property: quantiles are monotonic in q and bracketed by [min, max].
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v) + 1)
		}
		prev := int64(0)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two histograms is equivalent to recording the union.
func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b, u := NewHistogram(), NewHistogram(), NewHistogram()
		for _, v := range xs {
			a.Record(int64(v) + 1)
			u.Record(int64(v) + 1)
		}
		for _, v := range ys {
			b.Record(int64(v) + 1)
			u.Record(int64(v) + 1)
		}
		a.Merge(b)
		if a.Count() != u.Count() || a.Min() != u.Min() || a.Max() != u.Max() {
			return false
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
			if a.Quantile(q) != u.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}
