package stats

import "math"

// Welford computes a running mean and (population) standard deviation in a
// single numerically stable pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the population variance (0 for fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std reports the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }
