package stats

import (
	"strings"
	"testing"
)

func TestBucketizeCountsAndMaxima(t *testing.T) {
	samples := []Sample{
		{At: 0, Latency: 30},
		{At: 50, Latency: 40},
		{At: 150, Latency: 700},
		{At: 250, Latency: 35},
	}
	bs := Bucketize(samples, 300, 3, 100)
	if len(bs) != 3 {
		t.Fatalf("buckets = %d", len(bs))
	}
	if bs[0].Count != 2 || bs[0].Max != 40 {
		t.Fatalf("bucket0 = %+v", bs[0])
	}
	if bs[1].Count != 1 || bs[1].Max != 700 || bs[1].Blocked != 1 {
		t.Fatalf("bucket1 = %+v", bs[1])
	}
	if bs[2].Count != 1 || bs[2].Blocked != 0 {
		t.Fatalf("bucket2 = %+v", bs[2])
	}
	if m := bs[0].Mean(); m != 35 {
		t.Fatalf("bucket0 mean = %v", m)
	}
}

func TestBucketizeClampsOutOfRange(t *testing.T) {
	bs := Bucketize([]Sample{{At: 999999, Latency: 5}}, 100, 2, 10)
	if bs[1].Count != 1 {
		t.Fatal("late sample not clamped into last bucket")
	}
}

func TestBucketizeEmptyBucketMean(t *testing.T) {
	bs := Bucketize(nil, 100, 2, 10)
	if bs[0].Mean() != 0 {
		t.Fatal("empty bucket mean nonzero")
	}
}

func TestBucketizePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad args accepted")
		}
	}()
	Bucketize(nil, 0, 0, 0)
}

func TestRenderScatterMarksSpikes(t *testing.T) {
	samples := []Sample{
		{At: 10, Latency: 30_000},
		{At: 110, Latency: 580_000}, // spike
		{At: 210, Latency: 31_000},
	}
	bs := Bucketize(samples, 300, 3, 200_000)
	bands, labels := DefaultLatencyBands()
	out := RenderScatter(bs, bands, labels)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(bands)+1 {
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
	// The 400-800µs row must have a star in column 2 (index 1).
	var row400 string
	for _, l := range lines {
		if strings.Contains(l, "400-800µs") {
			row400 = l
		}
	}
	body := row400[strings.Index(row400, "|")+1:]
	if body[1] != '*' {
		t.Fatalf("spike not in middle column: %q", row400)
	}
	var rowLow string
	for _, l := range lines {
		if strings.Contains(l, "<50µs") {
			rowLow = l
		}
	}
	b := rowLow[strings.Index(rowLow, "|")+1:]
	if b[0] != '*' || b[2] != '*' {
		t.Fatalf("baseline samples missing: %q", rowLow)
	}
	if b[1] != ' ' {
		t.Fatalf("spike bucket also marked low: %q", rowLow)
	}
}

func TestRenderScatterBandMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bands accepted")
		}
	}()
	RenderScatter(nil, []int64{1}, []string{"a", "b"})
}
