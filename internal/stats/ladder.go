package stats

import (
	"fmt"
	"strings"
)

// Ladder is the fio-style completion-latency summary the paper plots for
// every SSD: average latency, the 2-nines through 6-nines percentiles, and
// the 100th percentile (maximum). All values are in nanoseconds.
type Ladder struct {
	Avg float64
	// P[0..4] = 99%, 99.9%, 99.99%, 99.999%, 99.9999%.
	P   [5]int64
	Max int64
	N   int64
}

// LadderNines are the quantiles of the five percentile rungs.
var LadderNines = [5]float64{0.99, 0.999, 0.9999, 0.99999, 0.999999}

// LadderLabels label the rungs, in the same order the figures use.
var LadderLabels = []string{"avg", "99%", "99.9%", "99.99%", "99.999%", "99.9999%", "max"}

// LadderOf summarizes a histogram into the paper's percentile ladder.
// The five rungs come from one Quantiles scan, not five Quantile walks.
func LadderOf(h *Histogram) Ladder {
	var l Ladder
	l.Avg = h.Mean()
	h.Quantiles(LadderNines[:], l.P[:])
	l.Max = h.Max()
	l.N = h.Count()
	return l
}

// Rung reports rung i of the ladder as a float64 nanosecond value, where
// i indexes LadderLabels (0 = avg ... 6 = max).
func (l Ladder) Rung(i int) float64 {
	switch i {
	case 0:
		return l.Avg
	case 6:
		return float64(l.Max)
	default:
		return float64(l.P[i-1])
	}
}

// NumRungs is the number of rungs in a Ladder (avg, five nines, max).
const NumRungs = 7

// String renders the ladder in microseconds, matching how the paper's
// figures are read.
func (l Ladder) String() string {
	var b strings.Builder
	for i := 0; i < NumRungs; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.1fµs", LadderLabels[i], l.Rung(i)/1e3)
	}
	return b.String()
}

// LadderSummary aggregates one ladder rung across many SSDs: the mean and
// standard deviation plotted in Fig 12 and Fig 14, plus min/max across
// devices (the visual "spread" of the 64 lines in Figs 6-9, 11, 13).
type LadderSummary struct {
	Mean [NumRungs]float64
	Std  [NumRungs]float64
	Min  [NumRungs]float64
	Max  [NumRungs]float64
	N    int
}

// Summarize aggregates the per-SSD ladders.
func Summarize(ladders []Ladder) LadderSummary {
	var s LadderSummary
	s.N = len(ladders)
	if s.N == 0 {
		return s
	}
	for r := 0; r < NumRungs; r++ {
		var w Welford
		mn, mx := ladders[0].Rung(r), ladders[0].Rung(r)
		for _, l := range ladders {
			v := l.Rung(r)
			w.Add(v)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		s.Mean[r] = w.Mean()
		s.Std[r] = w.Std()
		s.Min[r] = mn
		s.Max[r] = mx
	}
	return s
}
