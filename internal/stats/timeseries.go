package stats

import (
	"fmt"
	"strings"
)

// TimeBucket summarizes the latency samples falling in one time window.
type TimeBucket struct {
	Start   int64 // window start, ns
	Count   int64
	Max     int64
	Sum     int64
	Blocked int64 // samples above a caller-chosen spike threshold
}

// Mean reports the bucket's mean latency.
func (b TimeBucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.Sum) / float64(b.Count)
}

// Bucketize folds latency samples into fixed-width time windows spanning
// [0, horizon). Samples outside the horizon land in the last bucket.
func Bucketize(samples []Sample, horizon int64, buckets int, spikeThreshold int64) []TimeBucket {
	if buckets <= 0 || horizon <= 0 {
		panic("stats: Bucketize needs positive buckets and horizon")
	}
	width := horizon / int64(buckets)
	if width == 0 {
		width = 1
	}
	out := make([]TimeBucket, buckets)
	for i := range out {
		out[i].Start = int64(i) * width
	}
	for _, s := range samples {
		i := int(s.At / width)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		b := &out[i]
		b.Count++
		b.Sum += s.Latency
		if s.Latency > b.Max {
			b.Max = s.Latency
		}
		if s.Latency > spikeThreshold {
			b.Blocked++
		}
	}
	return out
}

// RenderScatter draws an ASCII time×latency scatter of the per-bucket
// maxima: rows are logarithmic latency bands (top = highest), columns are
// time buckets. It is how afareport prints Fig 10.
func RenderScatter(buckets []TimeBucket, bands []int64, bandLabels []string) string {
	if len(bands) != len(bandLabels) {
		panic("stats: bands and labels must align")
	}
	var sb strings.Builder
	for r := len(bands) - 1; r >= 0; r-- {
		fmt.Fprintf(&sb, "%10s |", bandLabels[r])
		for _, b := range buckets {
			ch := " "
			if b.Count > 0 && b.Max >= bands[r] &&
				(r == len(bands)-1 || b.Max < bands[r+1]) {
				ch = "*"
			}
			sb.WriteString(ch)
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "%10s +%s+\n", "", strings.Repeat("-", len(buckets)))
	return sb.String()
}

// DefaultLatencyBands returns log-spaced bands suitable for the scatter:
// <50µs, 50-100, 100-200, 200-400, 400-800, ≥800µs.
func DefaultLatencyBands() ([]int64, []string) {
	return []int64{0, 50_000, 100_000, 200_000, 400_000, 800_000},
		[]string{"<50µs", "50-100µs", "100-200µs", "200-400µs", "400-800µs", "≥800µs"}
}
