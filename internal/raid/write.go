// The RAID small-write path: every random write is a read-modify-write
// parity update (new parity = old parity ⊕ old data ⊕ new data), so one
// client write costs four sub-I/Os — the classic RAID-5 small-write
// penalty. Under a failed member the write degrades:
//
//   - reconstruct-then-write: the old data is unreadable (media error)
//     but the member answers — read every peer, recompute parity from
//     scratch, write data + parity;
//   - parity-only logging: the member is dead (timeout/abort) — read the
//     peers, write only the new parity; the new data exists solely as
//     parity until rebuild restores the member;
//   - unprotected: the *parity* path is dead — land the data with no
//     redundancy rather than block behind the timeout ladder.
//
// Tolerance mirrors the read path's tail-at-scale story: a hedge timer
// calibrated on the clean-RMW latency histogram (never on recovered
// requests — the self-reference fix) switches a stuck request onto a
// recovery path, and stuck parity writes are re-issued as idempotent
// duplicates with duplicate-completion suppression so the hedge and its
// original can both land safely. Members that time out are marked
// suspect and routed around, with a periodic optimistic probe to notice
// recovery without a management plane.

package raid

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// writeMode is the path a small write takes through the stripe.
type writeMode int

const (
	// modeRMW is the healthy small write: read old data + old parity,
	// then write new data + new parity.
	modeRMW writeMode = iota
	// modeReconstruct recomputes parity from the peers because the old
	// data was unreadable; data and parity are both written.
	modeReconstruct
	// modeParityLog writes only parity — the data member is missing.
	modeParityLog
	// modeUnprotected writes only data — the parity path is missing.
	modeUnprotected
)

// probeInterval is how many consecutive requests routed around a suspect
// member trigger one optimistic probe of it.
const probeInterval = 16

// writeReq tracks one RMW request through its two phases and any
// mid-flight mode switches.
type writeReq struct {
	c        *Client
	issuedAt sim.Time
	lba      int64
	target   int
	mode     writeMode

	// Phase 1: pre-reads. readsLeft tracks only the *active* read set —
	// a mode switch re-issues reads and strands the old ones, whose CQEs
	// are then counted late.
	readsLeft   int
	oldDataDone bool
	peersIssued bool

	// Phase 2: writes. parityInFlight counts outstanding parity attempts
	// (the hedge duplicate makes it 2); parityLanded is the idempotent
	// "durable" latch that suppresses duplicate completions.
	writing        bool
	dataPending    bool
	dataLanded     bool
	parityInFlight int
	parityLanded   bool

	hedged bool // the one hedge action was taken
	clean  bool // completed on the pure RMW path: a calibration sample
	failed bool
	done   bool
}

func (r *writeReq) reqFailed() bool       { return r.failed }
func (r *writeReq) reqIssuedAt() sim.Time { return r.issuedAt }
func (r *writeReq) cleanSample() bool     { return r.clean }

// deadCompletion reports whether a completion indicates a missing member
// (the command timed out or was aborted) rather than a live device
// returning an error.
func deadCompletion(comp kernel.Completion) bool {
	return comp.TimedOut || comp.Status == nvme.StatusAborted
}

func (c *Client) markSuspect(ssd int) {
	if c.spec.Tol == nil || c.suspect == nil || c.suspect[ssd] {
		return
	}
	c.suspect[ssd] = true
	c.res.Suspicions++
}

func (c *Client) clearSuspect(ssd int) {
	if c.suspect == nil || !c.suspect[ssd] {
		return
	}
	c.suspect[ssd] = false
	c.probeGap[ssd] = 0
}

// shouldProbe counts requests routed around the suspect member and
// elects every probeInterval-th one to try it anyway.
func (c *Client) shouldProbe(ssd int) bool {
	c.probeGap[ssd]++
	if c.probeGap[ssd] < probeInterval {
		return false
	}
	c.probeGap[ssd] = 0
	c.res.Probes++
	return true
}

// issueWrite starts one RMW request from the client thread's submit
// burst. Suspect members are routed straight to their degraded mode so a
// single dead device costs one hedge delay once, not per request.
func (c *Client) issueWrite() {
	lba := c.rnd.Int63n(c.maxLBA)
	target := c.spec.Stripe[int(c.rnd.Int63n(int64(len(c.spec.Stripe))))]
	r := &writeReq{c: c, issuedAt: c.eng.Now(), lba: lba, target: target}
	if c.spec.Tol != nil {
		// A probe request ignores the suspicion and runs the full RMW; a
		// success from the suspect member clears it.
		if c.suspect[target] {
			if !c.shouldProbe(target) {
				r.mode = modeParityLog
				c.res.ParityLogWrites++
			}
		} else if c.suspect[c.spec.Parity] {
			if !c.shouldProbe(c.spec.Parity) {
				r.mode = modeUnprotected
			}
		}
	}
	switch r.mode {
	case modeRMW:
		r.readsLeft = 2
		r.submitRead(r.target, r.oldDataRead)
		r.submitRead(c.spec.Parity, r.oldParityRead)
	case modeParityLog:
		r.issuePeerReads()
	case modeUnprotected:
		r.startWrites()
	default:
		panic(fmt.Sprintf("raid: write issued in mode %d", int(r.mode)))
	}
	if t := c.spec.Tol; t != nil && t.HedgeQuantile > 0 {
		r.armHedge()
	}
}

func (r *writeReq) submitRead(ssd int, done func(kernel.Completion)) {
	c := r.c
	c.res.RMWReads++
	cmd := nvme.Command{Op: nvme.OpRead, LBA: r.lba, Bytes: 4096}
	c.k.SubmitIO(c.task.CPU(), ssd, cmd, done)
}

// stale reports (and accounts) a phase-1 CQE whose request has moved on —
// a mode switch or hedge already stranded this read. A successful answer
// from a suspect member still clears the suspicion.
func (r *writeReq) stale(ssd int, comp kernel.Completion) bool {
	c := r.c
	if c.done {
		return true
	}
	c.res.SubIOs++
	if r.done || r.writing || r.peersIssued {
		c.res.LateSubIOs++
		if comp.Status == nvme.StatusSuccess {
			c.clearSuspect(ssd)
		}
		return true
	}
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	return false
}

// oldDataRead runs in softirq context for the RMW old-data pre-read.
func (r *writeReq) oldDataRead(comp kernel.Completion) {
	c := r.c
	if r.stale(r.target, comp) {
		return
	}
	if comp.Status == nvme.StatusSuccess {
		c.clearSuspect(r.target)
		r.oldDataDone = true
		r.readsLeft--
		if r.readsLeft == 0 {
			r.startWrites()
		}
		return
	}
	c.res.SubIOErrors++
	if c.spec.Tol == nil {
		r.failed = true
		r.finish()
		return
	}
	if deadCompletion(comp) {
		// The member is gone: log the write through parity only.
		c.markSuspect(r.target)
		r.mode = modeParityLog
		c.res.ParityLogWrites++
	} else {
		// The member is alive but the old data is unreadable: recompute
		// parity from the peers and overwrite both.
		r.mode = modeReconstruct
		c.res.ReconstructWrites++
	}
	r.issuePeerReads()
}

// oldParityRead runs in softirq context for the RMW old-parity pre-read.
func (r *writeReq) oldParityRead(comp kernel.Completion) {
	c := r.c
	if r.stale(c.spec.Parity, comp) {
		return
	}
	if comp.Status == nvme.StatusSuccess {
		c.clearSuspect(c.spec.Parity)
		r.readsLeft--
		if r.readsLeft == 0 {
			r.startWrites()
		}
		return
	}
	c.res.SubIOErrors++
	if c.spec.Tol == nil {
		r.failed = true
		r.finish()
		return
	}
	// Parity unreadable: give up on parity maintenance for this request
	// and land the data unprotected. The old-data read, if still in
	// flight, is stranded and its CQE counted late.
	if deadCompletion(comp) {
		c.markSuspect(c.spec.Parity)
	}
	r.mode = modeUnprotected
	r.startWrites()
}

// issuePeerReads fans a reconstruction read out to every surviving data
// member (the target is skipped; parity is about to be overwritten).
func (r *writeReq) issuePeerReads() {
	c := r.c
	r.peersIssued = true
	n := 0
	for _, ssd := range c.spec.Stripe {
		if ssd == r.target {
			continue
		}
		ssd := ssd
		n++
		c.res.RMWReads++
		cmd := nvme.Command{Op: nvme.OpRead, LBA: r.lba, Bytes: 4096}
		c.k.SubmitIO(c.task.CPU(), ssd, cmd, func(comp kernel.Completion) {
			r.peerRead(ssd, comp)
		})
	}
	r.readsLeft = n
	if n == 0 {
		// Width-1 stripe: nothing to reconstruct from.
		r.failed = true
		r.finish()
	}
}

// peerRead runs in softirq context for each reconstruction read.
func (r *writeReq) peerRead(ssd int, comp kernel.Completion) {
	c := r.c
	if c.done {
		return
	}
	c.res.SubIOs++
	if r.done || r.writing {
		c.res.LateSubIOs++
		if comp.Status == nvme.StatusSuccess {
			c.clearSuspect(ssd)
		}
		return
	}
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	if comp.Status == nvme.StatusSuccess {
		c.clearSuspect(ssd)
		r.readsLeft--
		if r.readsLeft == 0 {
			r.startWrites()
		}
		return
	}
	c.res.SubIOErrors++
	if deadCompletion(comp) {
		c.markSuspect(ssd)
	}
	if r.mode == modeReconstruct {
		// The target is alive but reconstruction lost a peer: land the
		// data unprotected (leaving the old parity stale would be worse)
		// and let rebuild recompute parity later.
		r.mode = modeUnprotected
		r.startWrites()
		return
	}
	// Parity-log with a dead peer: two missing members, the stripe is
	// unreconstructable.
	r.failed = true
	r.finish()
}

func (r *writeReq) writeCmd() nvme.Command {
	return nvme.Command{Op: nvme.OpWrite, LBA: r.lba, Bytes: 4096}
}

// startWrites begins phase 2. Pending phase-1 reads, if any, are
// stranded (their CQEs count late).
func (r *writeReq) startWrites() {
	c := r.c
	r.writing = true
	switch r.mode {
	case modeRMW, modeReconstruct:
		r.dataPending = true
		c.res.DataWrites++
		c.k.SubmitIO(c.task.CPU(), r.target, r.writeCmd(), r.dataWritten)
		r.submitParity(false)
	case modeParityLog:
		r.submitParity(false)
	case modeUnprotected:
		r.dataPending = true
		c.res.DataWrites++
		c.k.SubmitIO(c.task.CPU(), r.target, r.writeCmd(), r.dataWritten)
	default:
		panic(fmt.Sprintf("raid: write phase 2 in mode %d", int(r.mode)))
	}
}

func (r *writeReq) submitParity(dup bool) {
	c := r.c
	r.parityInFlight++
	c.res.ParityWrites++
	c.k.SubmitIO(c.task.CPU(), c.spec.Parity, r.writeCmd(), func(comp kernel.Completion) {
		r.parityWritten(comp, dup)
	})
}

// dataWritten runs in softirq context for the new-data write.
func (r *writeReq) dataWritten(comp kernel.Completion) {
	c := r.c
	if c.done {
		return
	}
	c.res.SubIOs++
	if r.done {
		c.res.LateSubIOs++
		if comp.Status == nvme.StatusSuccess {
			c.clearSuspect(r.target)
		}
		return
	}
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	r.dataPending = false
	if comp.Status == nvme.StatusSuccess {
		r.dataLanded = true
		c.clearSuspect(r.target)
	} else {
		c.res.SubIOErrors++
		if c.spec.Tol == nil {
			r.failed = true
		} else if deadCompletion(comp) {
			c.markSuspect(r.target)
		}
	}
	r.settleWrites()
}

// parityWritten runs in softirq context for each parity write attempt
// (dup marks the hedge duplicate). Parity writes are idempotent: once
// parityLanded is set, any further successful CQE is suppressed as a
// duplicate completion.
func (r *writeReq) parityWritten(comp kernel.Completion, dup bool) {
	c := r.c
	if c.done {
		return
	}
	c.res.SubIOs++
	if comp.Status == nvme.StatusSuccess && r.parityLanded {
		c.res.DupCompletions++
		if r.done {
			c.res.LateSubIOs++
		} else {
			r.parityInFlight--
			r.settleWrites()
		}
		return
	}
	if r.done {
		c.res.LateSubIOs++
		if comp.Status == nvme.StatusSuccess {
			c.clearSuspect(c.spec.Parity)
		}
		return
	}
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	r.parityInFlight--
	if comp.Status == nvme.StatusSuccess {
		r.parityLanded = true
		c.clearSuspect(c.spec.Parity)
		if dup {
			c.res.WriteHedgeWins++
		}
	} else {
		c.res.SubIOErrors++
		if c.spec.Tol == nil {
			r.failed = true
		} else if deadCompletion(comp) {
			c.markSuspect(c.spec.Parity)
		}
	}
	r.settleWrites()
}

// settleWrites completes the request once no phase-2 sub-I/O is
// outstanding, classifying the outcome by what actually landed.
func (r *writeReq) settleWrites() {
	if r.done || r.dataPending || r.parityInFlight > 0 {
		return
	}
	c := r.c
	if r.failed {
		r.finish()
		return
	}
	switch r.mode {
	case modeRMW, modeReconstruct:
		switch {
		case r.dataLanded && r.parityLanded:
			r.clean = r.mode == modeRMW && !r.hedged
		case r.parityLanded:
			// The data member failed mid-write; parity carries the delta.
			c.res.DegradedWrites++
		case r.dataLanded:
			// The parity write failed; the data is live but unprotected.
			c.res.UnprotectedWrites++
		default:
			r.failed = true
		}
	case modeParityLog:
		if r.parityLanded {
			c.res.DegradedWrites++
		} else {
			r.failed = true
		}
	case modeUnprotected:
		if r.dataLanded {
			c.res.UnprotectedWrites++
		} else {
			r.failed = true
		}
	default:
		panic(fmt.Sprintf("raid: write settled in mode %d", int(r.mode)))
	}
	r.finish()
}

func (r *writeReq) finish() {
	r.done = true
	r.c.enqueueDone(r)
}

// writeHedgeDelay is the RMW request's hedge deadline. The request
// touches two members (target data + parity); with adaptive tolerance
// each contributes its own tracker deadline and the hedge waits out the
// slower of the two — hedging an RMW at the faster member's deadline
// would duplicate work the other member is still on pace to finish.
func (r *writeReq) writeHedgeDelay() sim.Duration {
	c := r.c
	d := c.hedgeDelayFor(r.target)
	if p := c.hedgeDelayFor(c.spec.Parity); p > d {
		d = p
	}
	return d
}

// armHedge schedules the write-path hedge check at the clean-write
// latency quantile (same calibration as read hedging), or at the
// members' own deadlines under adaptive tolerance.
func (r *writeReq) armHedge() {
	c := r.c
	fireAt := r.issuedAt.Add(r.writeHedgeDelay())
	if now := c.eng.Now(); fireAt < now {
		fireAt = now
	}
	c.eng.ScheduleAt(fireAt, r.hedgeFire)
}

// rearm retries the hedge check one hedge-delay later: the request was in
// an ambiguous state (more than one sub-I/O dark) where no single
// recovery action is safe. The kernel timeout ladder bounds how long this
// can recur.
func (r *writeReq) rearm() {
	c := r.c
	c.eng.Schedule(r.writeHedgeDelay(), r.hedgeFire)
}

// hedgeFire runs when a request has outlived the clean-write quantile.
// Exactly one hedge action is taken per request:
//
//   - phase 1, old-data read straggling → mark suspect, parity-log;
//   - phase 1, old-parity read straggling → mark suspect, write
//     unprotected;
//   - phase 2, parity write straggling → re-issue it as an idempotent
//     duplicate, and if the data already landed arm an abandon fallback
//     that surfaces the write as unprotected rather than waiting out the
//     timeout ladder;
//   - phase 2, data write straggling with parity durable → complete
//     degraded now (parity carries the delta); the straggler's CQE is
//     suppressed as late.
func (r *writeReq) hedgeFire() {
	c := r.c
	if c.done || r.done || r.hedged || r.failed {
		return
	}
	if c.k.Overloaded() {
		// Shed the speculative action, not the request: re-check after
		// another hedge delay. The kernel timeout ladder still drives the
		// request to an outcome if overload persists.
		c.res.HedgesSuppressed++
		r.rearm()
		return
	}
	if !r.writing {
		if r.readsLeft != 1 || r.peersIssued {
			// Two pre-reads dark, or a reconstruction fan-out straggling:
			// no single member to route around.
			r.rearm()
			return
		}
		r.hedged = true
		c.res.HedgedWrites++
		if !r.oldDataDone {
			c.markSuspect(r.target)
			r.mode = modeParityLog
			c.res.ParityLogWrites++
			r.issuePeerReads()
		} else {
			c.markSuspect(c.spec.Parity)
			r.mode = modeUnprotected
			r.startWrites()
		}
		return
	}
	switch {
	case r.dataPending && r.parityInFlight > 0:
		r.rearm()
	case r.parityInFlight > 0:
		r.hedged = true
		c.res.HedgedWrites++
		r.submitParity(true)
		r.armAbandon()
	case r.dataPending && r.parityLanded:
		r.hedged = true
		c.res.HedgedWrites++
		c.res.WriteHedgeWins++
		c.markSuspect(r.target)
		c.res.DegradedWrites++
		r.finish()
	default:
		// Data straggling with no parity landed: nothing durable to fall
		// back on; the kernel timeout decides.
	}
}

// armAbandon gives the duplicated parity write one more hedge delay; if
// neither attempt has landed by then and the data is durable, the request
// completes as unprotected instead of blocking on the timeout ladder.
func (r *writeReq) armAbandon() {
	c := r.c
	if !r.dataLanded {
		return
	}
	c.eng.Schedule(c.hedgeDelay(), func() {
		if c.done || r.done || r.parityLanded || r.failed {
			return
		}
		c.markSuspect(c.spec.Parity)
		c.res.UnprotectedWrites++
		r.finish()
	})
}
