package raid

import (
	"math"
	"testing"

	"repro/internal/irq"
	"repro/internal/kernel"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
)

// newTimeoutRig is newRig with the host timeout/retry machinery armed:
// the degraded-write tests pull devices offline, and an offline device
// never completes commands, so an untolerant host would hang forever.
func newTimeoutRig(t *testing.T, ncpu, nssd int) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Seed: 9,
		Boot: sched.BootOptions{IdlePoll: true}})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	fw := nvme.DefaultFirmware()
	fw.Kind = nvme.FirmwareNoSMART
	var ssds []*nvme.Controller
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 9, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 9})
	return eng, kernel.New(eng, kernel.Config{Sched: sch, IRQ: ic, SSDs: ssds,
		Timeout: kernel.DefaultTimeoutPolicy(), Seed: 9})
}

func writeSpec(runtime sim.Duration) ClientSpec {
	return ClientSpec{
		Workload: WorkloadWrite, Stripe: []int{0, 1, 2, 3}, Parity: 4,
		CPU: 1, Runtime: runtime, Seed: 1,
	}
}

func TestCleanRMWCosts(t *testing.T) {
	// A healthy small write is exactly the RAID-5 penalty: two pre-reads
	// (old data, old parity) and two writes (new data, new parity).
	eng, k := newRig(t, 2, 5)
	res := Run(eng, k, []ClientSpec{writeSpec(200 * sim.Millisecond)})[0]
	if res.Requests < 500 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.FailedRequests != 0 {
		t.Fatalf("failed = %d on a healthy fleet", res.FailedRequests)
	}
	if res.RMWReads != 2*res.Requests {
		t.Fatalf("rmw reads = %d, want 2 per request (%d)", res.RMWReads, 2*res.Requests)
	}
	if res.DataWrites != res.Requests || res.ParityWrites != res.Requests {
		t.Fatalf("data=%d parity=%d writes, want %d each",
			res.DataWrites, res.ParityWrites, res.Requests)
	}
	if res.SubIOs != 4*res.Requests {
		t.Fatalf("subIOs = %d, want 4 per request", res.SubIOs)
	}
	for _, c := range []struct {
		name string
		n    int64
	}{
		{"degraded", res.DegradedWrites}, {"reconstruct", res.ReconstructWrites},
		{"parity-log", res.ParityLogWrites}, {"unprotected", res.UnprotectedWrites},
		{"hedged", res.HedgedWrites}, {"dups", res.DupCompletions},
	} {
		if c.n != 0 {
			t.Fatalf("%s = %d on a healthy fleet with no tolerance", c.name, c.n)
		}
	}
}

func TestSmallWritePenaltyCutsThroughput(t *testing.T) {
	// Four sub-I/Os plus the device write-admission token per request:
	// the closed-loop write rate must sit well below the striped-read rate
	// on the same rig.
	eng, k := newRig(t, 2, 5)
	wr := Run(eng, k, []ClientSpec{writeSpec(200 * sim.Millisecond)})[0]
	eng2, k2 := newRig(t, 2, 5)
	rd := Run(eng2, k2, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 200 * sim.Millisecond, Seed: 1,
	}})[0]
	if wr.Requests >= rd.Requests {
		t.Fatalf("write requests %d not below read requests %d", wr.Requests, rd.Requests)
	}
}

func TestUntolerantWriteErrorFailsRequest(t *testing.T) {
	// No Tol and no kernel retries: an error on any sub-I/O fails the
	// request, and failed requests stay out of the latency histogram.
	eng, k := newRig(t, 2, 5)
	k.SSDs[2].SetTransientErrorRate(1.0)
	res := Run(eng, k, []ClientSpec{writeSpec(100 * sim.Millisecond)})[0]
	if res.FailedRequests < 50 {
		t.Fatalf("failed = %d with a quarter of targets erroring", res.FailedRequests)
	}
	if res.Requests == 0 {
		t.Fatal("requests to healthy members should still complete")
	}
	if got := int64(res.Hist.Count()); got != res.Requests {
		t.Fatalf("histogram holds %d samples for %d completed requests", got, res.Requests)
	}
}

func TestDegradedWriteParityLogsAroundDeadMember(t *testing.T) {
	// A dead data member: the first RMW rides the kernel timeout ladder,
	// the timeout marks the member suspect, and later writes route
	// straight to parity-only logging — with a periodic probe that keeps
	// checking for recovery.
	eng, k := newTimeoutRig(t, 2, 5)
	k.SSDs[2].SetOffline(true)
	spec := writeSpec(300 * sim.Millisecond)
	spec.Tol = &Tolerance{ParitySSD: 4}
	res := Run(eng, k, []ClientSpec{spec})[0]
	if res.FailedRequests != 0 {
		t.Fatalf("failed = %d with parity logging available", res.FailedRequests)
	}
	if res.ParityLogWrites == 0 || res.DegradedWrites == 0 {
		t.Fatalf("parity-log = %d degraded = %d; the outage was never routed around",
			res.ParityLogWrites, res.DegradedWrites)
	}
	if res.Suspicions == 0 {
		t.Fatal("the dead member was never marked suspect")
	}
	if res.Probes == 0 {
		t.Fatal("no optimistic probe was sent to the suspect member")
	}
	if res.ReconstructWrites != 0 {
		t.Fatalf("reconstruct = %d; a dead member must parity-log, not reconstruct",
			res.ReconstructWrites)
	}
}

func TestUnreadableOldDataReconstructs(t *testing.T) {
	// The member answers but its media is bad everywhere: old data is
	// unreadable, so parity is recomputed from the peers and both data and
	// parity are written (the member itself still accepts writes, and a
	// write heals the slice — so only the first write per LBA degrades).
	eng, k := newRig(t, 2, 5)
	for lba := int64(0); lba < k.SSDs[2].Flash.LogicalSlices(); lba++ {
		k.SSDs[2].MarkBadLBA(lba)
	}
	spec := writeSpec(100 * sim.Millisecond)
	spec.Tol = &Tolerance{ParitySSD: 4}
	res := Run(eng, k, []ClientSpec{spec})[0]
	if res.FailedRequests != 0 {
		t.Fatalf("failed = %d with reconstruction available", res.FailedRequests)
	}
	if res.ReconstructWrites == 0 {
		t.Fatal("no write took the reconstruct path over bad media")
	}
	if res.Suspicions != 0 {
		t.Fatalf("suspicions = %d; media errors are not deadness", res.Suspicions)
	}
}

func TestWriteHedgeDuplicatesStuckParity(t *testing.T) {
	// The parity member drops half its commands with retryable errors;
	// the kernel retry backoff (500µs+) dwarfs the hedge delay, so the
	// hedge re-issues the parity write as an idempotent duplicate. When
	// both the original and the duplicate eventually land, the second CQE
	// must be suppressed as a duplicate completion, not double-counted.
	eng, k := newTimeoutRig(t, 2, 5)
	k.SSDs[4].SetTransientErrorRate(0.5)
	spec := writeSpec(300 * sim.Millisecond)
	spec.Tol = &Tolerance{ParitySSD: 4, HedgeQuantile: 0.99,
		HedgeMin: 150 * sim.Microsecond, MinSamples: math.MaxInt64}
	res := Run(eng, k, []ClientSpec{spec})[0]
	if res.FailedRequests != 0 {
		t.Fatalf("failed = %d; data writes never touch the flaky parity", res.FailedRequests)
	}
	if res.HedgedWrites == 0 {
		t.Fatal("the hedge never fired against a parity member in retry backoff")
	}
	if res.WriteHedgeWins == 0 {
		t.Fatal("no hedge duplicate ever landed first")
	}
	if res.DupCompletions == 0 {
		t.Fatal("original and duplicate both landing never produced a suppressed CQE")
	}
	if res.Suspicions == 0 || res.UnprotectedWrites == 0 {
		t.Fatalf("suspicions=%d unprotected=%d; the flaky parity was never routed around",
			res.Suspicions, res.UnprotectedWrites)
	}
}

func TestDeadParityLandsUnprotected(t *testing.T) {
	// The parity member is gone: rather than block every write behind the
	// timeout ladder forever, the client lands data unprotected and keeps
	// probing for the parity path to return.
	eng, k := newTimeoutRig(t, 2, 5)
	k.SSDs[4].SetOffline(true)
	spec := writeSpec(300 * sim.Millisecond)
	spec.Tol = &Tolerance{ParitySSD: 4}
	res := Run(eng, k, []ClientSpec{spec})[0]
	if res.FailedRequests != 0 {
		t.Fatalf("failed = %d with the unprotected fallback available", res.FailedRequests)
	}
	if res.UnprotectedWrites == 0 {
		t.Fatal("no write landed unprotected with parity dead")
	}
	if res.DegradedWrites != 0 {
		t.Fatalf("degraded = %d; nothing can parity-log without parity", res.DegradedWrites)
	}
}

func TestRebuildReconstructsEveryStripe(t *testing.T) {
	eng, k := newRig(t, 2, 6)
	var got *RebuildResult
	rb := NewRebuilder(eng, k, RebuildSpec{
		Survivors: []int{1, 2, 3}, Parity: 4, Target: 0,
		CPU: 1, Stripes: 64,
	})
	rb.Start(func(r *RebuildResult) { got = r })
	eng.RunUntil(sim.Time(0).Add(500 * sim.Millisecond))
	if got == nil || !got.Done {
		t.Fatalf("rebuild never finished: %+v", rb.Result())
	}
	if got.StripesRebuilt != 64 || got.StripesFailed != 0 {
		t.Fatalf("rebuilt=%d failed=%d, want 64/0", got.StripesRebuilt, got.StripesFailed)
	}
	if got.Reads != 64*4 {
		t.Fatalf("reads = %d, want 4 per stripe (3 survivors + parity)", got.Reads)
	}
	if got.Writes != 64 {
		t.Fatalf("writes = %d, want one per stripe", got.Writes)
	}
	if got.FinishedAt <= got.StartedAt {
		t.Fatalf("finished %v not after started %v", got.FinishedAt, got.StartedAt)
	}
}

func TestRebuildSkipsUnreadableStripe(t *testing.T) {
	// A survivor with a bad slice: that one stripe cannot be rebuilt now;
	// the stream counts it failed and moves on instead of stalling.
	eng, k := newRig(t, 2, 6)
	k.SSDs[1].MarkBadLBA(5)
	rb := NewRebuilder(eng, k, RebuildSpec{
		Survivors: []int{1, 2, 3}, Parity: 4, Target: 0,
		CPU: 1, Stripes: 64,
	})
	rb.Start(nil)
	eng.RunUntil(sim.Time(0).Add(500 * sim.Millisecond))
	got := rb.Result()
	if !got.Done {
		t.Fatal("rebuild never finished")
	}
	if got.StripesFailed != 1 || got.ReadErrors != 1 {
		t.Fatalf("failed=%d read-errors=%d, want 1/1", got.StripesFailed, got.ReadErrors)
	}
	if got.StripesRebuilt != 63 {
		t.Fatalf("rebuilt = %d, want 63", got.StripesRebuilt)
	}
}

func TestRebuildThrottleTradesElapsedTime(t *testing.T) {
	elapsed := func(throttle sim.Duration) sim.Duration {
		eng, k := newRig(t, 2, 6)
		rb := NewRebuilder(eng, k, RebuildSpec{
			Survivors: []int{1, 2, 3}, Parity: 4, Target: 0,
			CPU: 1, Stripes: 64, Throttle: throttle,
		})
		rb.Start(nil)
		eng.RunUntil(sim.Time(0).Add(sim.Second))
		got := rb.Result()
		if !got.Done {
			t.Fatalf("rebuild at throttle %v never finished", throttle)
		}
		return got.FinishedAt.Sub(got.StartedAt)
	}
	flat, throttled := elapsed(0), elapsed(500*sim.Microsecond)
	// 64 extra 500µs pauses: the throttled stream must be ≥ 32ms slower.
	if throttled < flat+32*sim.Millisecond {
		t.Fatalf("throttled %v not well above flat-out %v", throttled, flat)
	}
}

func TestWriteValidation(t *testing.T) {
	eng, k := newRig(t, 2, 5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted", name)
			}
		}()
		f()
	}
	mustPanic("parity inside the data stripe", func() {
		New(eng, k, ClientSpec{Workload: WorkloadWrite,
			Stripe: []int{0, 1}, Parity: 1, CPU: 1})
	})
	mustPanic("parity out of range", func() {
		New(eng, k, ClientSpec{Workload: WorkloadWrite,
			Stripe: []int{0, 1}, Parity: 9, CPU: 1})
	})
	mustPanic("Tol.ParitySSD disagreeing with Parity", func() {
		New(eng, k, ClientSpec{Workload: WorkloadWrite,
			Stripe: []int{0, 1}, Parity: 4, CPU: 1, Tol: &Tolerance{ParitySSD: 3}})
	})
	mustPanic("rebuild with no survivors", func() {
		NewRebuilder(eng, k, RebuildSpec{Parity: 4, Target: 0, CPU: 1, Stripes: 8})
	})
	mustPanic("rebuild survivor equal to target", func() {
		NewRebuilder(eng, k, RebuildSpec{Survivors: []int{0}, Parity: 4,
			Target: 0, CPU: 1, Stripes: 8})
	})
	mustPanic("rebuild target equal to parity", func() {
		NewRebuilder(eng, k, RebuildSpec{Survivors: []int{1}, Parity: 0,
			Target: 0, CPU: 1, Stripes: 8})
	})
	mustPanic("rebuild with zero stripes", func() {
		NewRebuilder(eng, k, RebuildSpec{Survivors: []int{1}, Parity: 4,
			Target: 0, CPU: 1})
	})
}
