package raid

import (
	"testing"

	"repro/internal/health"
	"repro/internal/irq"
	"repro/internal/kernel"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
)

func newRig(t *testing.T, ncpu, nssd int) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Seed: 9,
		Boot: sched.BootOptions{IdlePoll: true}})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	fw := nvme.DefaultFirmware()
	fw.Kind = nvme.FirmwareNoSMART
	var ssds []*nvme.Controller
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 9, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 9})
	return eng, kernel.New(eng, kernel.Config{Sched: sch, IRQ: ic, SSDs: ssds, Seed: 9})
}

func TestStripedReadCompletes(t *testing.T) {
	eng, k := newRig(t, 2, 4)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 200 * sim.Millisecond, Seed: 1,
	}})[0]
	if res.Requests < 1000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.SubIOs != res.Requests*4 {
		t.Fatalf("subIOs = %d for %d requests ×4", res.SubIOs, res.Requests)
	}
	var stragglers int64
	for _, n := range res.StragglerSSD {
		stragglers += n
	}
	if stragglers != res.Requests {
		t.Fatalf("straggler records = %d, want %d", stragglers, res.Requests)
	}
}

func TestStripeLatencyIsMaxOfMembers(t *testing.T) {
	// A stripe over w SSDs must be slower on average than a single
	// sub-I/O (expectation of the max exceeds the mean), and its average
	// must be at least the single-SSD average.
	eng, k := newRig(t, 2, 8)
	rs := Run(eng, k, []ClientSpec{
		{Name: "w1", Stripe: []int{0}, CPU: 1, Runtime: 200 * sim.Millisecond, Seed: 1},
	})
	w1 := rs[0]

	eng2, k2 := newRig(t, 2, 8)
	rs2 := Run(eng2, k2, []ClientSpec{
		{Name: "w8", Stripe: []int{0, 1, 2, 3, 4, 5, 6, 7}, CPU: 1, Runtime: 200 * sim.Millisecond, Seed: 1},
	})
	w8 := rs2[0]

	if w8.Ladder.Avg <= w1.Ladder.Avg {
		t.Fatalf("w8 avg %.0f not above w1 avg %.0f (max of 8 draws)", w8.Ladder.Avg, w1.Ladder.Avg)
	}
}

func TestSlowMemberDominatesStripe(t *testing.T) {
	eng, k := newRig(t, 2, 4)
	// Make SSD 2 much slower.
	k.SSDs[2].Flash.Timing.ReadPage *= 3
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 200 * sim.Millisecond, Seed: 1,
	}})[0]
	// The slow SSD must be the straggler almost always.
	if frac := float64(res.StragglerSSD[2]) / float64(res.Requests); frac < 0.95 {
		t.Fatalf("slow SSD straggled only %.0f%% of requests", frac*100)
	}
}

func TestTailAmplification(t *testing.T) {
	// The Section I claim, quantitatively: a per-SSD tail event at
	// quantile p appears in a width-w stripe at ≈ 1-(1-p)^w. With the
	// per-op lognormal jitter, the stripe's median must sit near the
	// member's high percentiles.
	eng, k := newRig(t, 3, 8)
	stripe := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rs := Run(eng, k, []ClientSpec{
		{Name: "w8", Stripe: stripe, CPU: 1, Runtime: 300 * sim.Millisecond, Seed: 2},
		{Name: "w1", Stripe: []int{0}, CPU: 2, Runtime: 300 * sim.Millisecond, Seed: 3},
	})
	w8, w1 := rs[0], rs[1]
	// Median of max-of-8 ≈ the single's ~0.917 quantile (0.5^(1/8)).
	singleP92 := w1.Hist.Quantile(0.917)
	med8 := w8.Hist.Quantile(0.5)
	// Allow the stripe's extra submit/reap overhead (~8 sub-IO handling).
	if med8 < singleP92 {
		t.Fatalf("stripe median %d below member p91.7 %d; no amplification", med8, singleP92)
	}
}

func TestQD2KeepsTwoInFlight(t *testing.T) {
	eng, k := newRig(t, 2, 2)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1}, CPU: 1, QD: 2, Runtime: 200 * sim.Millisecond, Seed: 1,
	}})[0]
	if res.Requests < 1000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// Device-level parallelism must beat QD1 throughput.
	eng2, k2 := newRig(t, 2, 2)
	res1 := Run(eng2, k2, []ClientSpec{{
		Stripe: []int{0, 1}, CPU: 1, QD: 1, Runtime: 200 * sim.Millisecond, Seed: 1,
	}})[0]
	if res.Requests <= res1.Requests {
		t.Fatalf("QD2 requests %d not above QD1 %d", res.Requests, res1.Requests)
	}
}

func TestEmptyStripePanics(t *testing.T) {
	eng, k := newRig(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("empty stripe accepted")
		}
	}()
	New(eng, k, ClientSpec{CPU: 1})
}

func TestDegradedReadReconstructsFromParity(t *testing.T) {
	eng, k := newRig(t, 2, 5)
	// Every read of member 2 fails permanently (no kernel retry: the rig
	// has no timeout policy, so statuses pass through).
	k.SSDs[2].SetTransientErrorRate(1.0)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 100 * sim.Millisecond,
		Tol: &Tolerance{ParitySSD: 4}, Seed: 1,
	}})[0]
	if res.Requests < 100 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.FailedRequests != 0 {
		t.Fatalf("failed = %d with parity available", res.FailedRequests)
	}
	if res.DegradedReads != res.Requests {
		t.Fatalf("degraded = %d, want one per request (%d)", res.DegradedReads, res.Requests)
	}
	if res.SubIOErrors != res.Requests {
		t.Fatalf("sub-I/O errors = %d, want %d", res.SubIOErrors, res.Requests)
	}
}

func TestFailedSubIOWithoutParityFailsRequest(t *testing.T) {
	eng, k := newRig(t, 2, 4)
	k.SSDs[2].SetTransientErrorRate(1.0)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 100 * sim.Millisecond, Seed: 1,
	}})[0]
	if res.Requests != 0 {
		t.Fatalf("served %d requests with a dead member and no parity", res.Requests)
	}
	if res.FailedRequests < 100 {
		t.Fatalf("failed = %d", res.FailedRequests)
	}
	if res.Hist.Count() != 0 {
		t.Fatal("failed requests leaked into the latency histogram")
	}
}

func TestSecondFailureDefeatsParity(t *testing.T) {
	eng, k := newRig(t, 2, 5)
	// Two data members fail: one reconstruction slot is not enough.
	k.SSDs[1].SetTransientErrorRate(1.0)
	k.SSDs[2].SetTransientErrorRate(1.0)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 100 * sim.Millisecond,
		Tol: &Tolerance{ParitySSD: 4}, Seed: 1,
	}})[0]
	if res.Requests != 0 {
		t.Fatalf("served %d requests with two dead members", res.Requests)
	}
	if res.FailedRequests < 100 {
		t.Fatalf("failed = %d", res.FailedRequests)
	}
}

func TestHedgedReadCapsStraggler(t *testing.T) {
	eng, k := newRig(t, 2, 5)
	// Member 2 is pathologically slow (~60× NAND read time): without
	// hedging every request waits for it.
	k.SSDs[2].SetReadSlowdown(60)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 200 * sim.Millisecond,
		Tol: &Tolerance{ParitySSD: 4, HedgeQuantile: 0.99,
			HedgeMin: 100 * sim.Microsecond, MinSamples: 50},
		Seed: 1,
	}})[0]
	if res.HedgeWins < 100 {
		t.Fatalf("hedge wins = %d; the slow member should lose every race", res.HedgeWins)
	}
	// Baseline without hedging: the straggler sets the pace.
	eng2, k2 := newRig(t, 2, 5)
	k2.SSDs[2].SetReadSlowdown(60)
	base := Run(eng2, k2, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 200 * sim.Millisecond, Seed: 1,
	}})[0]
	if res.Ladder.Max >= base.Ladder.P[0] {
		t.Fatalf("hedged max %d not below unhedged p99 %d", res.Ladder.Max, base.Ladder.P[0])
	}
	if res.Requests <= base.Requests {
		t.Fatalf("hedging should raise throughput: %d vs %d", res.Requests, base.Requests)
	}
}

// newAdaptiveRig is newRig plus the adaptive control plane: a timeout
// policy (so commands are managed and observed) and a health tracker.
func newAdaptiveRig(t *testing.T, ncpu, nssd int, pol kernel.TimeoutPolicy) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Seed: 9,
		Boot: sched.BootOptions{IdlePoll: true}})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	fw := nvme.DefaultFirmware()
	fw.Kind = nvme.FirmwareNoSMART
	var ssds []*nvme.Controller
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 9, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 9})
	hc := health.DefaultConfig()
	return eng, kernel.New(eng, kernel.Config{Sched: sch, IRQ: ic, SSDs: ssds,
		Timeout: pol, Health: &hc, Seed: 9})
}

func TestAdaptiveHedgeLearnsSlowMemberBaseline(t *testing.T) {
	// Member 2 is steadily 20× slower — a slow bin, not a fault. A static
	// hedge floored below its baseline fires on nearly every request; the
	// adaptive hedge learns that member's own deadline and fires only on
	// its genuine tail.
	spec := func(adaptive bool) ClientSpec {
		return ClientSpec{
			Stripe: []int{0, 1, 2, 3}, CPU: 1, Runtime: 300 * sim.Millisecond,
			Tol: &Tolerance{ParitySSD: 4, HedgeQuantile: 0.99,
				HedgeMin: 100 * sim.Microsecond, MinSamples: 50, Adaptive: adaptive},
			Seed: 1,
		}
	}
	pol := kernel.DefaultTimeoutPolicy()

	engS, kS := newAdaptiveRig(t, 2, 5, pol)
	kS.SSDs[2].SetReadSlowdown(20)
	static := Run(engS, kS, []ClientSpec{spec(false)})[0]

	engA, kA := newAdaptiveRig(t, 2, 5, pol)
	kA.SSDs[2].SetReadSlowdown(20)
	adaptive := Run(engA, kA, []ClientSpec{spec(true)})[0]

	if static.HedgedReads < 1000 {
		t.Fatalf("static arm hedged only %d reads; floor should fire near-always", static.HedgedReads)
	}
	if adaptive.HedgedReads*2 >= static.HedgedReads {
		t.Fatalf("adaptive hedges = %d, static = %d; learning the slow baseline should cut hedges",
			adaptive.HedgedReads, static.HedgedReads)
	}
	// Adaptive trades the constant parity race for fewer hedges, so it
	// paces closer to the slow member's real baseline — it must still
	// make steady progress, not stall.
	if adaptive.Requests < 500 {
		t.Fatalf("adaptive served only %d requests", adaptive.Requests)
	}
	if adaptive.FailedRequests != 0 {
		t.Fatalf("adaptive failed %d requests", adaptive.FailedRequests)
	}
	// The tracker really did learn the slow member's distinct baseline.
	h := kA.Health()
	if d2, d0 := h.HedgeDeadline(2), h.HedgeDeadline(0); d2 == 0 || d0 == 0 || d2 <= d0 {
		t.Fatalf("deadlines: slow member %v, healthy member %v; want warm and ordered", d2, d0)
	}
}

func TestOverloadSuppressesHedges(t *testing.T) {
	pol := kernel.DefaultTimeoutPolicy()
	// A watermark below the client's steady fan-out: the kernel is
	// overloaded whenever requests are in flight, so every armed hedge
	// must be withheld (and counted) rather than fired.
	pol.OverloadWatermark = 1
	eng, k := newAdaptiveRig(t, 2, 5, pol)
	k.SSDs[2].SetReadSlowdown(20)
	res := Run(eng, k, []ClientSpec{{
		Stripe: []int{0, 1, 2, 3}, CPU: 1, QD: 4, Runtime: 200 * sim.Millisecond,
		Tol: &Tolerance{ParitySSD: 4, HedgeQuantile: 0.99,
			HedgeMin: 100 * sim.Microsecond, MinSamples: 50},
		Seed: 1,
	}})[0]
	if res.HedgesSuppressed == 0 {
		t.Fatal("no hedges suppressed under permanent overload")
	}
	if res.HedgedReads != 0 {
		t.Fatalf("hedged %d reads while overloaded; hedges are the first load to shed", res.HedgedReads)
	}
	if res.Requests < 1000 {
		t.Fatalf("requests = %d; suppression must not stall the workload", res.Requests)
	}
}

func TestParityInStripePanics(t *testing.T) {
	eng, k := newRig(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("parity SSD inside the data stripe accepted")
		}
	}()
	New(eng, k, ClientSpec{Stripe: []int{0, 1}, CPU: 1, Tol: &Tolerance{ParitySSD: 1}})
}

func TestParityOutOfRangePanics(t *testing.T) {
	eng, k := newRig(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range parity SSD accepted")
		}
	}()
	New(eng, k, ClientSpec{Stripe: []int{0, 1}, CPU: 1, Tol: &Tolerance{ParitySSD: 9}})
}
