// Package raid models the client-visible side of the paper's motivation
// (Section I): "in an AFA, one request from a client is divided into
// multiple I/Os, which are then distributed to many SSDs in parallel as in
// RAID. In such a setting, long tail latency of the slowest SSD would
// decide system's overall responsiveness."
//
// A Client issues striped read requests: each request fans out one 4 KiB
// sub-I/O to every SSD in its stripe set and completes when the *last*
// sub-I/O completes. The per-request latency distribution therefore
// amplifies the per-SSD tail: with a stripe width of w, a per-SSD
// p-quantile event becomes a per-request 1-(1-p)^w event — which is why
// the paper insists the impact of tail latency is much higher in an AFA
// than in systems with few SSDs.
package raid

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ClientSpec describes a striped-read client.
type ClientSpec struct {
	Name string
	// Stripe lists the SSDs each request fans out to.
	Stripe []int
	// CPU pins the client thread.
	CPU int
	// Class/RTPrio set the scheduling class (as for FIO jobs).
	Class  sched.Class
	RTPrio int
	// Runtime bounds the issue window.
	Runtime sim.Duration
	// QD is the number of outstanding striped requests (1 = closed loop).
	QD   int
	Seed uint64
}

// Result is the client-visible outcome.
type Result struct {
	Spec ClientSpec
	// Hist is the striped-request latency distribution.
	Hist   *stats.Histogram
	Ladder stats.Ladder
	// Requests completed.
	Requests int64
	// SubIOs completed (Requests × stripe width).
	SubIOs int64
	// StragglerSSD counts, per SSD, how often it was the last to answer.
	StragglerSSD map[int]int64
	Runtime      sim.Duration
}

// Client is a running striped-read workload.
type Client struct {
	spec ClientSpec
	k    *kernel.Kernel
	eng  *sim.Engine
	task *sched.Task
	rnd  *rng.Stream

	res       Result
	start     sim.Time
	deadline  sim.Time
	inflight  int
	completed []*request
	done      bool
	onDone    func(*Result)

	maxLBA int64
}

// request tracks one striped request's fan-out.
type request struct {
	c         *Client
	issuedAt  sim.Time
	remaining int
	lastSSD   int
}

// New creates a client (call Start to run it).
func New(eng *sim.Engine, k *kernel.Kernel, spec ClientSpec) *Client {
	if len(spec.Stripe) == 0 {
		panic("raid: empty stripe set")
	}
	if spec.QD == 0 {
		spec.QD = 1
	}
	if spec.Runtime == 0 {
		spec.Runtime = sim.Second
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("stripe-%d", len(spec.Stripe))
	}
	c := &Client{
		spec: spec,
		k:    k,
		eng:  eng,
		rnd:  rng.NewLabeled(spec.Seed, "raid-"+spec.Name),
	}
	c.res.Spec = spec
	c.res.Hist = stats.NewHistogram()
	c.res.StragglerSSD = map[int]int64{}
	c.maxLBA = k.SSDs[spec.Stripe[0]].Flash.LogicalSlices()
	prio := spec.RTPrio
	if spec.Class == sched.ClassCFS {
		prio = 0
	}
	c.task = k.Sched.NewTask("raid/"+spec.Name, spec.Class, prio, []int{spec.CPU})
	return c
}

// Start begins issuing striped requests; onDone fires when the runtime
// elapses and in-flight requests drain.
func (c *Client) Start(onDone func(*Result)) {
	c.onDone = onDone
	ramp := sim.Duration(c.rnd.Int63n(int64(200 * sim.Microsecond)))
	c.eng.After(ramp, func() {
		c.start = c.eng.Now()
		c.deadline = c.start.Add(c.spec.Runtime)
		c.task.Exec(c.issueCost(), c.issueWindow)
		c.k.Sched.Wake(c.task)
	})
}

// issueCost is the submit burst for one striped request: one io_submit
// batch covering every stripe member.
func (c *Client) issueCost() sim.Duration {
	return sim.Duration(len(c.spec.Stripe)) * c.k.Costs().Submit
}

func (c *Client) issueWindow() {
	now := c.eng.Now()
	if now >= c.deadline {
		c.finishIfDrained()
		return
	}
	for c.inflight < c.spec.QD {
		c.inflight++
		c.issueOne()
	}
	// Requests may have raced to completion while this thread was
	// submitting (QD > 1); reap them now rather than sleeping.
	if len(c.completed) > 0 {
		c.task.Exec(c.reapCost(len(c.completed)), c.reapAll)
	}
}

func (c *Client) reapCost(n int) sim.Duration {
	return sim.Duration(n*len(c.spec.Stripe)) * c.k.Costs().Complete
}

func (c *Client) issueOne() {
	req := &request{c: c, issuedAt: c.eng.Now(), remaining: len(c.spec.Stripe)}
	lba := c.rnd.Int63n(c.maxLBA)
	for _, ssd := range c.spec.Stripe {
		ssd := ssd
		cmd := nvme.Command{Op: nvme.OpRead, LBA: lba, Bytes: 4096}
		c.k.SubmitIO(c.task.CPU(), ssd, cmd, func(comp kernel.Completion) {
			req.subDone(ssd, comp)
		})
	}
}

// subDone runs in softirq context for each sub-I/O.
func (r *request) subDone(ssd int, comp kernel.Completion) {
	c := r.c
	c.res.SubIOs++
	r.remaining--
	r.lastSSD = ssd
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	if r.remaining > 0 {
		return // the client thread is only woken by the straggler
	}
	// Last sub-I/O: the request is complete once the thread reaps it. A
	// sleeping thread needs a wake; a running or queued one reaps at its
	// next burst boundary.
	c.res.StragglerSSD[ssd]++
	c.completed = append(c.completed, r)
	if c.task.State() == sched.StateSleeping {
		c.task.Exec(c.reapCost(len(c.completed)), c.reapAll)
		c.k.Sched.Wake(c.task)
	}
}

func (c *Client) reapAll() {
	now := c.eng.Now()
	for _, r := range c.completed {
		c.res.Hist.Record(int64(now.Sub(r.issuedAt)))
		c.res.Requests++
		c.inflight--
	}
	c.completed = c.completed[:0]
	if now >= c.deadline {
		c.finishIfDrained()
		return
	}
	c.task.Exec(c.issueCost(), c.issueWindow)
}

func (c *Client) finishIfDrained() {
	if c.done || c.inflight > 0 {
		return
	}
	c.done = true
	c.res.Runtime = c.eng.Now().Sub(c.start)
	c.res.Ladder = stats.LadderOf(c.res.Hist)
	if c.onDone != nil {
		c.onDone(&c.res)
	}
}

// Run drives a set of clients to completion on the given engine.
func Run(eng *sim.Engine, k *kernel.Kernel, specs []ClientSpec) []*Result {
	results := make([]*Result, len(specs))
	remaining := len(specs)
	var maxDeadline sim.Time
	for i, spec := range specs {
		i := i
		cl := New(eng, k, spec)
		if d := eng.Now().Add(cl.spec.Runtime); d > maxDeadline {
			maxDeadline = d
		}
		cl.Start(func(r *Result) {
			results[i] = r
			remaining--
		})
	}
	grace := sim.Duration(0)
	for remaining > 0 {
		grace += 100 * sim.Millisecond
		eng.RunUntil(maxDeadline.Add(grace))
		if grace > 100*sim.Second {
			panic("raid: clients failed to drain")
		}
	}
	return results
}
