// Package raid models the client-visible side of the paper's motivation
// (Section I): "in an AFA, one request from a client is divided into
// multiple I/Os, which are then distributed to many SSDs in parallel as in
// RAID. In such a setting, long tail latency of the slowest SSD would
// decide system's overall responsiveness."
//
// A Client issues striped read requests: each request fans out one 4 KiB
// sub-I/O to every SSD in its stripe set and completes when the *last*
// sub-I/O completes. The per-request latency distribution therefore
// amplifies the per-SSD tail: with a stripe width of w, a per-SSD
// p-quantile event becomes a per-request 1-(1-p)^w event — which is why
// the paper insists the impact of tail latency is much higher in an AFA
// than in systems with few SSDs.
//
// The write side (write.go) models the RAID small-write penalty: each
// random write is a read-modify-write parity update (read old data, read
// old parity, write data, write parity), degrading to reconstruct-then-
// write or parity-only logging when members fail. rebuild.go streams
// background stripe reconstruction that competes with this foreground
// traffic.
package raid

import (
	"fmt"
	"math/bits"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Tolerance configures the client's fault-tolerance machinery: degraded
// reads reconstruct a failed data sub-I/O from the stripe's parity member
// (the request already holds every other data slice, so XOR needs only
// the one extra parity read), and hedged reads fire that same
// reconstruction speculatively when a request's last straggler exceeds an
// adaptive latency quantile — Dean & Barroso's tail-at-scale answer.
type Tolerance struct {
	// ParitySSD is the stripe's parity member. It must not appear in the
	// data stripe.
	ParitySSD int
	// HedgeQuantile > 0 enables hedged reads: once a request has exactly
	// one sub-I/O outstanding and its age exceeds this quantile of the
	// observed request-latency distribution, the parity read is fired and
	// whichever path answers first completes the request.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay, and is used verbatim until
	// MinSamples requests have been observed (a cold quantile estimate
	// would hedge everything).
	HedgeMin sim.Duration
	// MinSamples gates the adaptive quantile.
	MinSamples int64
	// Adaptive switches hedge deadlines from the client-wide latency
	// quantile to the straggling drive's own health-tracker deadline
	// (kernel.Config.Health): a slow-bin member is hedged at *its*
	// baseline instead of dragging the whole client's hedge delay up,
	// and a suspect member is hedged sooner. Falls back to the static
	// delay per drive until that drive's tracker is warm, and entirely
	// when the kernel has no tracker.
	Adaptive bool
}

// DefaultTolerance returns the calibrated tolerance knobs: hedge at the
// observed p99 (the ladder's first rung), floored at 300 µs until 100
// samples exist.
func DefaultTolerance(paritySSD int) *Tolerance {
	return &Tolerance{
		ParitySSD:     paritySSD,
		HedgeQuantile: 0.99,
		HedgeMin:      300 * sim.Microsecond,
		MinSamples:    100,
	}
}

// Workload selects what a Client issues.
type Workload int

const (
	// WorkloadRead fans every request out to the whole stripe (one 4 KiB
	// read per member) and completes on the last sub-I/O.
	WorkloadRead Workload = iota
	// WorkloadWrite issues small random writes as read-modify-write
	// parity updates against a single data member plus the parity member.
	WorkloadWrite
)

func (w Workload) String() string {
	switch w {
	case WorkloadRead:
		return "read"
	case WorkloadWrite:
		return "write"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// ClientSpec describes a striped client.
type ClientSpec struct {
	Name string
	// Workload selects striped reads (default) or RMW small writes.
	Workload Workload
	// Stripe lists the data members. Reads fan out to all of them; writes
	// pick one per request.
	Stripe []int
	// Parity is the stripe's parity member, required for WorkloadWrite
	// (every small write updates it). When Tol is also set its ParitySSD
	// must agree.
	Parity int
	// CPU pins the client thread.
	CPU int
	// Class/RTPrio set the scheduling class (as for FIO jobs).
	Class  sched.Class
	RTPrio int
	// Runtime bounds the issue window.
	Runtime sim.Duration
	// QD is the number of outstanding striped requests (1 = closed loop).
	QD int
	// Tol enables degraded reads and (optionally) hedging; nil means a
	// failed sub-I/O fails the whole request, as in the RAID-0 reading of
	// the paper's Section I.
	Tol *Tolerance
	// LatLog records per-request (completion time, latency) samples, for
	// recovery-time series.
	LatLog      bool
	LatLogLimit int
	Seed        uint64
}

// Result is the client-visible outcome.
type Result struct {
	Spec ClientSpec
	// Hist is the striped-request latency distribution.
	Hist   *stats.Histogram
	Ladder stats.Ladder
	// Requests completed.
	Requests int64
	// SubIOs completed (including parity reads and late stragglers).
	SubIOs int64
	// StragglerSSD counts, per SSD, how often it was the last to answer.
	StragglerSSD map[int]int64
	// SubIOErrors counts data sub-I/Os that came back with a non-success
	// status (after any kernel-level retries).
	SubIOErrors int64
	// DegradedReads counts error-triggered parity reconstructions.
	DegradedReads int64
	// HedgedReads counts deadline-triggered speculative parity reads;
	// HedgeWins counts those that beat the straggler.
	HedgedReads int64
	HedgeWins   int64
	// HedgesSuppressed counts hedges (read and write) withheld because
	// the kernel reported overload: speculative duplicates are the first
	// load shed past the in-flight watermark.
	HedgesSuppressed int64
	// LateSubIOs counts sub-I/O completions that arrived after their
	// request had already been completed (hedge won) or abandoned.
	LateSubIOs int64
	// FailedRequests counts requests that could not be served: a data
	// sub-I/O failed with no parity configured, or two members (or the
	// parity path itself) failed. Their latency is not in Hist.
	FailedRequests int64

	// Write-workload counters (zero for WorkloadRead).
	//
	// RMWReads counts phase-1 reads (old data, old parity, peer reads for
	// reconstruction); DataWrites/ParityWrites count phase-2 writes
	// including hedge duplicates.
	RMWReads     int64
	DataWrites   int64
	ParityWrites int64
	// DegradedWrites completed without a data write landing: the new data
	// exists only as parity until rebuild. ReconstructWrites recomputed
	// parity from the peers because the old data was unreadable.
	// ParityLogWrites routed around a dead data member at issue or via
	// hedge; UnprotectedWrites landed the data with no parity update.
	DegradedWrites    int64
	ReconstructWrites int64
	ParityLogWrites   int64
	UnprotectedWrites int64
	// HedgedWrites counts deadline-triggered write-path recoveries;
	// WriteHedgeWins counts those where the recovery path completed the
	// request. DupCompletions counts parity CQEs that arrived after the
	// parity was already durable — the hedge duplicate and its original
	// both landing, safely, because parity writes are idempotent.
	HedgedWrites   int64
	WriteHedgeWins int64
	DupCompletions int64
	// Suspicions counts members marked suspect after a timeout/abort;
	// Probes counts the periodic optimistic RMWs sent to a suspect member
	// to notice recovery.
	Suspicions int64
	Probes     int64
	// Log holds per-request samples when ClientSpec.LatLog is set.
	Log     *stats.LatLog
	Runtime sim.Duration
}

// Client is a running striped-read workload.
type Client struct {
	spec ClientSpec
	k    *kernel.Kernel
	eng  *sim.Engine
	task *sched.Task
	rnd  *rng.Stream

	res       Result
	start     sim.Time
	deadline  sim.Time
	inflight  int
	completed []completedReq
	done      bool
	onDone    func(*Result)

	// hedgeHist records only requests served without parity help (reads)
	// or on the pure RMW path (writes): hedging at a quantile of the
	// overall distribution would be self-referential — during an outage
	// every request completes at hedge latency, dragging the hedge delay
	// upward without bound.
	hedgeHist *stats.Histogram

	// suspect members are routed around (writes only): a timeout/abort
	// marks the member, any successful completion from it clears it, and
	// every probeInterval-th routed-around request probes it optimistically.
	// Dense slices indexed by SSD id — the write hot path consults them
	// on every request.
	suspect  []bool
	probeGap []int

	// stragglers accumulates per-SSD last-to-answer counts densely on
	// the completion path; Result.StragglerSSD is materialized from it
	// once at drain.
	stragglers []int64

	maxLBA int64
}

// completedReq is what reapAll needs from a finished request, read or
// write: both workloads drain through the same client-thread reap burst.
type completedReq interface {
	reqFailed() bool
	reqIssuedAt() sim.Time
	// cleanSample reports whether the request's latency may calibrate the
	// hedge delay (served without any recovery path).
	cleanSample() bool
}

// request tracks one striped request's fan-out and its recovery state.
type request struct {
	c        *Client
	issuedAt sim.Time
	lba      int64
	// pendingMask has one bit per stripe position still outstanding
	// (first 64 members only): when one sub-I/O remains, it names the
	// straggler, so the adaptive hedge can use that drive's own deadline.
	pendingMask uint64
	remaining   int  // data sub-I/Os outstanding
	lastSSD     int  // last member to answer successfully
	failed      bool // unrecoverable: ≥2 members (or parity) failed
	// usedParity: the one reconstruction slot is taken (degraded or hedge).
	usedParity    bool
	parityPending bool
	hedgeArmed    bool
	done          bool
}

func (r *request) reqFailed() bool       { return r.failed }
func (r *request) reqIssuedAt() sim.Time { return r.issuedAt }
func (r *request) cleanSample() bool     { return !r.usedParity }

// New creates a client (call Start to run it).
func New(eng *sim.Engine, k *kernel.Kernel, spec ClientSpec) *Client {
	if len(spec.Stripe) == 0 {
		panic("raid: empty stripe set")
	}
	if spec.QD == 0 {
		spec.QD = 1
	}
	if spec.Runtime == 0 {
		spec.Runtime = sim.Second
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("stripe-%d", len(spec.Stripe))
	}
	c := &Client{
		spec: spec,
		k:    k,
		eng:  eng,
		rnd:  rng.NewLabeled(spec.Seed, "raid-"+spec.Name),
	}
	if t := spec.Tol; t != nil {
		if t.ParitySSD < 0 || t.ParitySSD >= len(k.SSDs) {
			panic(fmt.Sprintf("raid: parity SSD %d out of range", t.ParitySSD))
		}
		for _, ssd := range spec.Stripe {
			if ssd == t.ParitySSD {
				panic(fmt.Sprintf("raid: parity SSD %d is also a data member", ssd))
			}
		}
	}
	if spec.Workload == WorkloadWrite {
		if spec.Parity < 0 || spec.Parity >= len(k.SSDs) {
			panic(fmt.Sprintf("raid: write parity SSD %d out of range", spec.Parity))
		}
		for _, ssd := range spec.Stripe {
			if ssd == spec.Parity {
				panic(fmt.Sprintf("raid: write parity SSD %d is also a data member", ssd))
			}
		}
		if t := spec.Tol; t != nil && t.ParitySSD != spec.Parity {
			panic(fmt.Sprintf("raid: Tol.ParitySSD %d disagrees with Parity %d",
				t.ParitySSD, spec.Parity))
		}
		c.suspect = make([]bool, len(k.SSDs))
		c.probeGap = make([]int, len(k.SSDs))
	}
	c.res.Spec = spec
	c.res.Hist = stats.NewHistogram()
	c.hedgeHist = stats.NewHistogram()
	c.stragglers = make([]int64, len(k.SSDs))
	if spec.LatLog {
		c.res.Log = stats.NewLatLog(spec.LatLogLimit)
	}
	c.maxLBA = k.SSDs[spec.Stripe[0]].Flash.LogicalSlices()
	prio := spec.RTPrio
	if spec.Class == sched.ClassCFS {
		prio = 0
	}
	c.task = k.Sched.NewTask("raid/"+spec.Name, spec.Class, prio, []int{spec.CPU})
	return c
}

// Start begins issuing striped requests; onDone fires when the runtime
// elapses and in-flight requests drain.
func (c *Client) Start(onDone func(*Result)) {
	c.onDone = onDone
	ramp := sim.Duration(c.rnd.Int63n(int64(200 * sim.Microsecond)))
	c.eng.Schedule(ramp, func() {
		c.start = c.eng.Now()
		c.deadline = c.start.Add(c.spec.Runtime)
		c.task.Exec(c.issueCost(), c.issueWindow)
		c.k.Sched.Wake(c.task)
	})
}

// issueCost is the submit burst for one request: reads batch one
// io_submit per stripe member; writes submit the two RMW pre-reads (the
// phase-2 writes and any recovery sub-I/Os issue from softirq context).
func (c *Client) issueCost() sim.Duration {
	n := len(c.spec.Stripe)
	if c.spec.Workload == WorkloadWrite {
		n = 2
	}
	return sim.Duration(n) * c.k.Costs().Submit
}

func (c *Client) issueWindow() {
	now := c.eng.Now()
	if now >= c.deadline {
		c.finishIfDrained()
		return
	}
	for c.inflight < c.spec.QD {
		c.inflight++
		c.issueOne()
	}
	// Requests may have raced to completion while this thread was
	// submitting (QD > 1); reap them now rather than sleeping.
	if len(c.completed) > 0 {
		c.task.Exec(c.reapCost(len(c.completed)), c.reapAll)
	}
}

func (c *Client) reapCost(n int) sim.Duration {
	per := len(c.spec.Stripe)
	if c.spec.Workload == WorkloadWrite {
		// Up to four sub-I/O CQEs per RMW request.
		per = 4
	}
	return sim.Duration(n*per) * c.k.Costs().Complete
}

func (c *Client) issueOne() {
	switch c.spec.Workload {
	case WorkloadRead:
		c.issueRead()
	case WorkloadWrite:
		c.issueWrite()
	default:
		panic(fmt.Sprintf("raid: unknown workload %d", int(c.spec.Workload)))
	}
}

func (c *Client) issueRead() {
	lba := c.rnd.Int63n(c.maxLBA)
	req := &request{c: c, issuedAt: c.eng.Now(), lba: lba, lastSSD: -1,
		remaining: len(c.spec.Stripe)}
	for i, ssd := range c.spec.Stripe {
		if i < 64 {
			req.pendingMask |= 1 << uint(i)
		}
		ssd := ssd
		cmd := nvme.Command{Op: nvme.OpRead, LBA: lba, Bytes: 4096}
		c.k.SubmitIO(c.task.CPU(), ssd, cmd, func(comp kernel.Completion) {
			req.subDone(ssd, comp)
		})
	}
}

// hedgeDelay is how long a request may age before the speculative parity
// read fires: the observed unhedged-request latency quantile once enough
// samples exist, floored at HedgeMin.
func (c *Client) hedgeDelay() sim.Duration {
	t := c.spec.Tol
	if c.hedgeHist.Count() >= t.MinSamples {
		if q := sim.Duration(c.hedgeHist.Quantile(t.HedgeQuantile)); q > t.HedgeMin {
			return q
		}
	}
	return t.HedgeMin
}

// hedgeDelayFor is hedgeDelay specialized to a known straggler: with
// Tolerance.Adaptive set and the drive's health tracker warm, the
// drive's own published deadline replaces the client-wide quantile.
func (c *Client) hedgeDelayFor(ssd int) sim.Duration {
	if c.spec.Tol.Adaptive {
		if h := c.k.Health(); h != nil {
			if d := h.HedgeDeadline(ssd); d > 0 {
				return d
			}
		}
	}
	return c.hedgeDelay()
}

// subDone runs in softirq context for each data sub-I/O.
func (r *request) subDone(ssd int, comp kernel.Completion) {
	c := r.c
	if c.done {
		return
	}
	c.res.SubIOs++
	if r.done {
		// The hedge already completed (or the request already failed);
		// this straggler's answer is no longer needed.
		c.res.LateSubIOs++
		return
	}
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	r.remaining--
	for i, s := range c.spec.Stripe {
		if s == ssd && i < 64 {
			r.pendingMask &^= 1 << uint(i)
			break
		}
	}
	if comp.Status != nvme.StatusSuccess {
		c.res.SubIOErrors++
		if c.spec.Tol != nil && !r.usedParity {
			// Degraded read: reconstruct this member from parity + the
			// other members (already being read anyway).
			r.useParity(false)
		} else {
			// Second failure, or no parity: the stripe cannot be served.
			r.failed = true
		}
	} else {
		r.lastSSD = ssd
	}
	r.progress()
}

// useParity claims the request's one reconstruction slot and issues the
// parity read. hedge marks it speculative (straggler still outstanding).
func (r *request) useParity(hedge bool) {
	c := r.c
	r.usedParity = true
	r.parityPending = true
	if hedge {
		c.res.HedgedReads++
	} else {
		c.res.DegradedReads++
	}
	cmd := nvme.Command{Op: nvme.OpRead, LBA: r.lba, Bytes: 4096}
	c.k.SubmitIO(c.task.CPU(), c.spec.Tol.ParitySSD, cmd, func(comp kernel.Completion) {
		r.parityDone(comp, hedge)
	})
}

// parityDone runs in softirq context for the reconstruction read.
func (r *request) parityDone(comp kernel.Completion, hedge bool) {
	c := r.c
	if c.done {
		return
	}
	c.res.SubIOs++
	if r.done {
		c.res.LateSubIOs++
		return
	}
	if comp.WakePenalty > 0 {
		c.task.AddPenalty(comp.WakePenalty)
	}
	r.parityPending = false
	if comp.Status != nvme.StatusSuccess {
		// Reconstruction failed. A speculative hedge can still be saved
		// by its straggler; a degraded read cannot.
		if !hedge || r.remaining == 0 {
			r.failed = true
		}
	} else {
		r.lastSSD = c.spec.Tol.ParitySSD
		if hedge && r.remaining > 0 {
			// The parity path beat the straggler: complete now; the
			// straggler's eventual CQE is dropped as late. (The 4 KiB XOR
			// is sub-microsecond and folded into the reap burst.)
			c.res.HedgeWins++
			r.finish()
			return
		}
	}
	r.progress()
}

// progress completes the request when nothing is outstanding, and arms
// the hedge when only the straggler remains.
func (r *request) progress() {
	c := r.c
	if r.remaining == 0 && !r.parityPending {
		r.finish()
		return
	}
	if r.remaining == 1 && !r.parityPending && !r.usedParity && !r.failed &&
		!r.hedgeArmed && c.spec.Tol != nil && c.spec.Tol.HedgeQuantile > 0 {
		r.hedgeArmed = true
		delay := c.hedgeDelay()
		if len(c.spec.Stripe) <= 64 && r.pendingMask != 0 {
			// Exactly one bit set: the straggler. Hedge at its deadline.
			delay = c.hedgeDelayFor(c.spec.Stripe[bits.TrailingZeros64(r.pendingMask)])
		}
		fireAt := r.issuedAt.Add(delay)
		if now := c.eng.Now(); fireAt < now {
			fireAt = now
		}
		c.eng.ScheduleAt(fireAt, func() {
			if c.done || r.done || r.usedParity || r.remaining == 0 {
				return
			}
			if c.k.Overloaded() {
				// Past the in-flight watermark the hedge is load we can
				// refuse: the straggler still answers eventually.
				c.res.HedgesSuppressed++
				return
			}
			r.useParity(true)
		})
	}
}

// finish hands the request to the client thread for reaping. A sleeping
// thread needs a wake; a running or queued one reaps at its next burst
// boundary.
func (r *request) finish() {
	c := r.c
	r.done = true
	if !r.failed && r.lastSSD >= 0 {
		c.stragglers[r.lastSSD]++
	}
	c.enqueueDone(r)
}

// enqueueDone hands a finished request (read or write) to the client
// thread's reap burst.
func (c *Client) enqueueDone(r completedReq) {
	c.completed = append(c.completed, r)
	if c.task.State() == sched.StateSleeping {
		c.task.Exec(c.reapCost(len(c.completed)), c.reapAll)
		c.k.Sched.Wake(c.task)
	}
}

func (c *Client) reapAll() {
	now := c.eng.Now()
	for _, r := range c.completed {
		if r.reqFailed() {
			// Errors surface to the client; their latency does not pollute
			// the served-request distribution.
			c.res.FailedRequests++
			c.inflight--
			continue
		}
		lat := int64(now.Sub(r.reqIssuedAt()))
		c.res.Hist.Record(lat)
		if r.cleanSample() {
			c.hedgeHist.Record(lat)
		}
		if c.res.Log != nil {
			c.res.Log.Add(int64(now), lat)
		}
		c.res.Requests++
		c.inflight--
	}
	c.completed = c.completed[:0]
	if now >= c.deadline {
		c.finishIfDrained()
		return
	}
	c.task.Exec(c.issueCost(), c.issueWindow)
}

func (c *Client) finishIfDrained() {
	if c.done || c.inflight > 0 {
		return
	}
	c.done = true
	c.res.Runtime = c.eng.Now().Sub(c.start)
	c.res.Ladder = stats.LadderOf(c.res.Hist)
	c.res.StragglerSSD = map[int]int64{} //afalint:allow hotmap -- materialized once at drain
	for ssd, n := range c.stragglers {
		if n > 0 {
			c.res.StragglerSSD[ssd] = n //afalint:allow hotmap -- materialized once at drain
		}
	}
	if c.onDone != nil {
		c.onDone(&c.res)
	}
}

// Run drives a set of clients to completion on the given engine.
func Run(eng *sim.Engine, k *kernel.Kernel, specs []ClientSpec) []*Result {
	results := make([]*Result, len(specs))
	remaining := len(specs)
	var maxDeadline sim.Time
	for i, spec := range specs {
		i := i
		cl := New(eng, k, spec)
		if d := eng.Now().Add(cl.spec.Runtime); d > maxDeadline {
			maxDeadline = d
		}
		cl.Start(func(r *Result) {
			results[i] = r
			remaining--
		})
	}
	grace := sim.Duration(0)
	for remaining > 0 {
		grace += 100 * sim.Millisecond
		eng.RunUntil(maxDeadline.Add(grace))
		if grace > 100*sim.Second {
			panic("raid: clients failed to drain")
		}
	}
	return results
}
