// The rebuild engine: after a member is replaced, its contents are
// reconstructed stripe by stripe from the survivors and the parity
// member. Rebuild I/O flows through the same kernel/device path as
// foreground traffic — it competes for CPU (its own sched task), for
// submission-queue slots, and for the target's write-token bucket — which
// is exactly the degraded-mode contention RAID papers warn about. A
// tunable inter-stripe throttle trades rebuild time against foreground
// tail latency.

package raid

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sched"
	"repro/internal/sim"
)

// RebuildSpec describes one member-rebuild stream.
type RebuildSpec struct {
	Name string
	// Survivors are the data members read for reconstruction; Parity is
	// the parity member; Target is the replaced member being written.
	Survivors []int
	Parity    int
	Target    int
	// CPU pins the rebuild thread; Class/RTPrio set its scheduling class
	// (rebuild usually runs CFS so foreground RT I/O preempts it).
	CPU    int
	Class  sched.Class
	RTPrio int
	// StartAt is when the stream begins (e.g. the member's recovery
	// instant); Stripes is how many stripes to reconstruct.
	StartAt sim.Time
	Stripes int64
	// Throttle is the pause between consecutive stripes — the
	// rebuild-rate knob. 0 rebuilds flat out.
	Throttle sim.Duration
}

// RebuildResult is the stream's outcome (a snapshot if the run ended
// before the stream finished).
type RebuildResult struct {
	Spec           RebuildSpec
	StripesRebuilt int64
	StripesFailed  int64
	Reads          int64
	Writes         int64
	ReadErrors     int64
	WriteErrors    int64
	StartedAt      sim.Time
	FinishedAt     sim.Time
	Done           bool
}

// Rebuilder streams stripe reconstruction: read survivors + parity,
// write the reconstructed slice to the target, throttle, repeat. One
// stripe is in flight at a time (QD1), as md/raid5 resync does.
type Rebuilder struct {
	spec RebuildSpec
	k    *kernel.Kernel
	eng  *sim.Engine
	task *sched.Task

	res          RebuildResult
	stripe       int64
	readsLeft    int
	stripeFailed bool
	onDone       func(*RebuildResult)

	// readTargets is survivors + parity, precomputed so issueStripe does
	// not rebuild the fan-out slice per stripe.
	readTargets []int

	// Bound-method values allocate a closure each time they're
	// evaluated, and the stripe cycle evaluates several per stripe; bind
	// them once at construction.
	issueStripeFn func()
	issueWriteFn  func()
	readDoneFn    func(kernel.Completion)
	writeDoneFn   func(kernel.Completion)
	nextStripeFn  func()
}

// NewRebuilder creates a rebuild stream (call Start to schedule it).
func NewRebuilder(eng *sim.Engine, k *kernel.Kernel, spec RebuildSpec) *Rebuilder {
	if len(spec.Survivors) == 0 {
		panic("raid: rebuild with no survivors")
	}
	for _, ssd := range spec.Survivors {
		if ssd == spec.Target || ssd == spec.Parity {
			panic(fmt.Sprintf("raid: rebuild survivor %d is the target or parity", ssd))
		}
	}
	if spec.Target == spec.Parity {
		panic("raid: rebuild target is the parity member")
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("rebuild-%d", spec.Target)
	}
	if spec.Stripes <= 0 {
		panic("raid: rebuild needs Stripes > 0")
	}
	if limit := k.SSDs[spec.Target].Flash.LogicalSlices(); spec.Stripes > limit {
		spec.Stripes = limit
	}
	rb := &Rebuilder{spec: spec, k: k, eng: eng}
	rb.res.Spec = spec
	prio := spec.RTPrio
	if spec.Class == sched.ClassCFS {
		prio = 0
	}
	rb.task = k.Sched.NewTask("raid/"+spec.Name, spec.Class, prio, []int{spec.CPU})
	rb.readTargets = append(append([]int{}, spec.Survivors...), spec.Parity)
	rb.issueStripeFn = rb.issueStripe
	rb.issueWriteFn = rb.issueWrite
	rb.readDoneFn = rb.readDone
	rb.writeDoneFn = rb.writeDone
	rb.nextStripeFn = rb.nextStripe
	return rb
}

// Start schedules the stream at StartAt; onDone fires when the last
// stripe settles (it never fires if the run ends first — use Result for
// a snapshot).
func (rb *Rebuilder) Start(onDone func(*RebuildResult)) {
	rb.onDone = onDone
	at := rb.spec.StartAt
	if now := rb.eng.Now(); at < now {
		at = now
	}
	rb.eng.ScheduleAt(at, func() {
		rb.res.StartedAt = rb.eng.Now()
		rb.wakeTask(rb.readBurst(), rb.issueStripeFn)
	})
}

// Result returns a snapshot of the stream's progress.
func (rb *Rebuilder) Result() RebuildResult { return rb.res }

// wakeTask charges a submit burst on the rebuild thread and wakes it.
// The task is always sleeping at these points: it is QD1 and only its
// own completions schedule work.
func (rb *Rebuilder) wakeTask(cost sim.Duration, fn func()) {
	if rb.task.State() == sched.StateSleeping {
		rb.task.Exec(cost, fn)
		rb.k.Sched.Wake(rb.task)
	}
}

func (rb *Rebuilder) readBurst() sim.Duration {
	return sim.Duration(len(rb.spec.Survivors)+1) * rb.k.Costs().Submit
}

// issueStripe runs on the rebuild thread: fan reconstruction reads out
// to the survivors and the parity member for the current stripe.
func (rb *Rebuilder) issueStripe() {
	if rb.stripe >= rb.spec.Stripes {
		rb.finish()
		return
	}
	rb.stripeFailed = false
	rb.readsLeft = len(rb.spec.Survivors) + 1
	lba := rb.stripe
	for _, ssd := range rb.readTargets {
		rb.res.Reads++
		cmd := nvme.Command{Op: nvme.OpRead, LBA: lba, Bytes: 4096}
		rb.k.SubmitIO(rb.task.CPU(), ssd, cmd, rb.readDoneFn)
	}
}

// readDone runs in softirq context for each reconstruction read.
func (rb *Rebuilder) readDone(comp kernel.Completion) {
	if comp.WakePenalty > 0 {
		rb.task.AddPenalty(comp.WakePenalty)
	}
	if comp.Status != nvme.StatusSuccess {
		rb.res.ReadErrors++
		rb.stripeFailed = true
	}
	rb.readsLeft--
	if rb.readsLeft > 0 {
		return
	}
	if rb.stripeFailed {
		// A survivor (or parity) failed: this stripe cannot be rebuilt
		// now; move on rather than stall the whole stream.
		rb.res.StripesFailed++
		rb.advance()
		return
	}
	rb.wakeTask(rb.k.Costs().Submit, rb.issueWriteFn)
}

// issueWrite runs on the rebuild thread: write the reconstructed slice
// to the target (the XOR is sub-microsecond, folded into the burst).
func (rb *Rebuilder) issueWrite() {
	rb.res.Writes++
	cmd := nvme.Command{Op: nvme.OpWrite, LBA: rb.stripe, Bytes: 4096}
	rb.k.SubmitIO(rb.task.CPU(), rb.spec.Target, cmd, rb.writeDoneFn)
}

// writeDone runs in softirq context for the target write.
func (rb *Rebuilder) writeDone(comp kernel.Completion) {
	if comp.WakePenalty > 0 {
		rb.task.AddPenalty(comp.WakePenalty)
	}
	if comp.Status == nvme.StatusSuccess {
		rb.res.StripesRebuilt++
	} else {
		rb.res.WriteErrors++
		rb.res.StripesFailed++
	}
	rb.advance()
}

// advance moves to the next stripe after the throttle pause.
func (rb *Rebuilder) advance() {
	rb.stripe++
	if rb.spec.Throttle > 0 {
		rb.eng.Schedule(rb.spec.Throttle, rb.nextStripeFn)
		return
	}
	rb.nextStripe()
}

// nextStripe wakes the rebuild thread for the next stripe's read burst.
func (rb *Rebuilder) nextStripe() {
	rb.wakeTask(rb.readBurst(), rb.issueStripeFn)
}

func (rb *Rebuilder) finish() {
	rb.res.Done = true
	rb.res.FinishedAt = rb.eng.Now()
	if rb.onDone != nil {
		rb.onDone(&rb.res)
	}
}
