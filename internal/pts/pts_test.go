package pts

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCriteria(t *testing.T) {
	c := DefaultCriteria()
	if c.Window != 5 || c.MaxExcursion != 0.20 || c.MaxSlope != 0.10 {
		t.Fatalf("criteria = %+v", c)
	}
}

func TestCheckFlatSeriesIsSteady(t *testing.T) {
	c := DefaultCriteria()
	steady, exc, slope := c.Check([]float64{100, 100, 100, 100, 100})
	if !steady {
		t.Fatalf("flat series not steady (exc=%v slope=%v)", exc, slope)
	}
	if exc != 0 || slope != 0 {
		t.Fatalf("flat series exc=%v slope=%v", exc, slope)
	}
}

func TestCheckTooFewRounds(t *testing.T) {
	c := DefaultCriteria()
	steady, exc, _ := c.Check([]float64{1, 2, 3})
	if steady || !math.IsNaN(exc) {
		t.Fatal("short series must not qualify")
	}
}

func TestCheckExcursionViolation(t *testing.T) {
	c := DefaultCriteria()
	// 25% excursion around avg≈100.
	steady, exc, _ := c.Check([]float64{90, 100, 100, 100, 115})
	if steady {
		t.Fatalf("25%% excursion passed (exc=%v)", exc)
	}
	if exc < 0.2 {
		t.Fatalf("excursion computed as %v", exc)
	}
}

func TestCheckSlopeViolation(t *testing.T) {
	c := DefaultCriteria()
	// Monotone drift: excursion 16% (passes) but slope rise 16% (fails).
	steady, exc, slope := c.Check([]float64{92, 96, 100, 104, 108})
	if exc > 0.20 {
		t.Fatalf("test series wrong: excursion %v", exc)
	}
	if steady {
		t.Fatalf("drifting series passed (slope=%v)", slope)
	}
	if slope <= 0.10 {
		t.Fatalf("slope computed as %v", slope)
	}
}

func TestCheckUsesOnlyLastWindow(t *testing.T) {
	c := DefaultCriteria()
	rounds := []float64{1000, 10, 3000, 100, 100, 100, 100, 100}
	steady, _, _ := c.Check(rounds)
	if !steady {
		t.Fatal("early chaos must not matter once the window is flat")
	}
}

func TestRunStopsAtSteadyState(t *testing.T) {
	// A decaying series that flattens: 200, 150, 120, 104, 100, 100, ...
	series := []float64{200, 150, 120, 104, 100, 100, 100, 100, 100, 100}
	res := Run(DefaultCriteria(), 25, func(round int) float64 {
		return series[round-1]
	})
	if !res.Steady {
		t.Fatalf("never steady: %+v", res)
	}
	if res.SteadyAt < 5 || res.SteadyAt > 9 {
		t.Fatalf("steady at round %d", res.SteadyAt)
	}
	if got := res.Average(5); math.Abs(got-105) > 10 {
		t.Fatalf("window average = %v", got)
	}
}

func TestRunGivesUpAtMaxRounds(t *testing.T) {
	n := 0
	res := Run(DefaultCriteria(), 8, func(round int) float64 {
		n++
		return float64(round * round) // ever-growing
	})
	if res.Steady {
		t.Fatal("diverging series declared steady")
	}
	if n != 8 || len(res.Rounds) != 8 {
		t.Fatalf("measured %d rounds", n)
	}
}

func TestRunPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxRounds < window accepted")
		}
	}()
	Run(DefaultCriteria(), 3, func(int) float64 { return 1 })
}

func TestCheckPanicsOnTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 1 accepted")
		}
	}()
	Criteria{Window: 1}.Check([]float64{1, 2})
}

// Property: scaling a series by a positive constant never changes the
// steady-state verdict (both criteria are relative).
func TestPropertyScaleInvariance(t *testing.T) {
	c := DefaultCriteria()
	f := func(raw [5]uint8, scale uint8) bool {
		ys := make([]float64, 5)
		for i, v := range raw {
			ys[i] = float64(v) + 1
		}
		k := float64(scale)/16 + 0.5
		scaled := make([]float64, 5)
		for i, y := range ys {
			scaled[i] = y * k
		}
		a, _, _ := c.Check(ys)
		b, _, _ := c.Check(scaled)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
