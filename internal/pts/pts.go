// Package pts implements the SNIA Solid State Storage Performance Test
// Specification (Enterprise) machinery the paper's methodology cites
// (Section III-B follows PTS-E chapter 9 to minimize system overhead on
// I/O latency): the purge → precondition → measure-until-steady-state
// protocol and the spec's steady-state detection criteria.
//
// Steady state per PTS-E: over a measurement window of (by default) five
// rounds, the tracked variable must satisfy both
//
//   - excursion: max(y) - min(y) ≤ 20% of avg(y), and
//   - slope: the best-fit line's rise over the window ≤ 10% of avg(y).
//
// The package is pure protocol/math; the core package binds it to the
// simulated array.
package pts

import (
	"fmt"
	"math"
)

// Criteria are the steady-state detection parameters (PTS-E defaults).
type Criteria struct {
	// Window is the number of consecutive rounds examined.
	Window int
	// MaxExcursion is the allowed (max-min)/avg of the window.
	MaxExcursion float64
	// MaxSlope is the allowed |slope|·(Window-1)/avg of the window.
	MaxSlope float64
}

// DefaultCriteria returns the PTS-E values: 5 rounds, 20%, 10%.
func DefaultCriteria() Criteria {
	return Criteria{Window: 5, MaxExcursion: 0.20, MaxSlope: 0.10}
}

// Check reports whether the last Window entries of rounds meet the
// criteria, along with the computed excursion and normalized slope.
func (c Criteria) Check(rounds []float64) (steady bool, excursion, slope float64) {
	if c.Window < 2 {
		panic("pts: window must be ≥ 2")
	}
	if len(rounds) < c.Window {
		return false, math.NaN(), math.NaN()
	}
	w := rounds[len(rounds)-c.Window:]
	min, max, sum := w[0], w[0], 0.0
	for _, y := range w {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
		sum += y
	}
	avg := sum / float64(len(w))
	if avg == 0 {
		return false, math.NaN(), math.NaN()
	}
	excursion = (max - min) / avg

	// Least-squares slope over x = 0..n-1.
	n := float64(len(w))
	var sx, sy, sxx, sxy float64
	for i, y := range w {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	slope = math.Abs(b) * (n - 1) / avg

	steady = excursion <= c.MaxExcursion && slope <= c.MaxSlope
	return steady, excursion, slope
}

// Result records a full protocol run.
type Result struct {
	// Rounds holds the tracked variable, one entry per measurement round.
	Rounds []float64
	// Steady reports whether steady state was reached within MaxRounds.
	Steady bool
	// SteadyAt is the 1-based round at which the window first qualified
	// (0 if never).
	SteadyAt int
	// Excursion/Slope are the final window's values.
	Excursion float64
	Slope     float64
}

// Average reports the mean of the measurement window ending at SteadyAt
// (or of the last window if steady state was not reached).
func (r Result) Average(window int) float64 {
	end := len(r.Rounds)
	if r.Steady {
		end = r.SteadyAt
	}
	start := end - window
	if start < 0 {
		start = 0
	}
	sum := 0.0
	n := 0
	for _, y := range r.Rounds[start:end] {
		sum += y
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run executes the measurement loop: measure(round) produces one round's
// tracked value; rounds continue until the criteria hold or maxRounds is
// hit. PTS-E requires at least Window rounds and allows up to 25 before
// declaring "steady state not reached".
func Run(crit Criteria, maxRounds int, measure func(round int) float64) Result {
	if maxRounds < crit.Window {
		panic(fmt.Sprintf("pts: maxRounds %d < window %d", maxRounds, crit.Window))
	}
	var res Result
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = append(res.Rounds, measure(round))
		steady, exc, slope := crit.Check(res.Rounds)
		res.Excursion, res.Slope = exc, slope
		if steady {
			res.Steady = true
			res.SteadyAt = round
			return res
		}
	}
	return res
}
