package trace

import (
	"strings"
	"testing"

	"repro/internal/irq"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestForeignTaskAnalysis(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 2, Seed: 1})
	tr := New(eng, 100)
	tr.AttachSched(s)

	fio := s.NewTask("fio/job0", sched.ClassCFS, 0, []int{1})
	fio.Exec(10*sim.Microsecond, nil)
	s.Wake(fio)
	daemon := s.NewTask("llvmpipe", sched.ClassCFS, 0, []int{1})
	daemon.Exec(10*sim.Microsecond, nil)
	s.Wake(daemon)
	eng.RunUntil(sim.Time(sim.Millisecond))

	foreign := tr.ForeignTasksOn([]int{1}, "fio/")
	if len(foreign) != 1 || foreign[0].Task != "llvmpipe" || foreign[0].CPU != 1 {
		t.Fatalf("foreign = %+v", foreign)
	}
	if got := tr.ForeignTasksOn([]int{0}, "fio/"); len(got) != 0 {
		t.Fatalf("cpu0 foreign = %+v", got)
	}
}

func TestDispatchLogBounded(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 1, Seed: 1})
	tr := New(eng, 3)
	tr.AttachSched(s)
	for i := 0; i < 10; i++ {
		task := s.NewTask("t", sched.ClassCFS, 0, nil)
		task.Exec(sim.Microsecond, nil)
		s.Wake(task)
		eng.RunUntil(eng.Now().Add(sim.Millisecond))
	}
	if len(tr.Dispatches) != 3 {
		t.Fatalf("kept %d raw events, limit 3", len(tr.Dispatches))
	}
	// Counters keep accumulating past the raw-event cap.
	foreign := tr.ForeignTasksOn([]int{0}, "fio/")
	var total int64
	for _, f := range foreign {
		total += f.Dispatches
	}
	if total != 10 {
		t.Fatalf("counted %d dispatches, want 10", total)
	}
}

func TestMisroutedVectorAnalysis(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 4, Seed: 1})
	ic := irq.New(eng, s, irq.Config{NumSSDs: 2, NumCPUs: 4, Seed: 99, StartBalanced: true})
	tr := New(eng, 0)
	tr.AttachIRQ(ic)

	for i := 0; i < 20; i++ {
		ic.Deliver(0, 1, func(irq.Delivery) {})
		eng.RunUntil(eng.Now().Add(sim.Millisecond))
	}
	if tr.Deliveries() != 20 {
		t.Fatalf("deliveries = %d", tr.Deliveries())
	}
	mis := tr.MisroutedVectors()
	if ic.EffectiveCPU(0, 1) != 1 {
		if len(mis) == 0 {
			t.Fatal("scattered vector produced no misrouted records")
		}
		if mis[0].SSD != 0 || mis[0].Queue != 1 {
			t.Fatalf("misrouted = %+v", mis[0])
		}
		if !strings.Contains(mis[0].String(), "irq(0,1) executed on cpu(") {
			t.Fatalf("String() = %q", mis[0].String())
		}
		if tr.RemoteFraction() != 1 {
			t.Fatalf("remote fraction = %v", tr.RemoteFraction())
		}
	}
}

func TestPinnedVectorsShowNoMisrouting(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 4, Seed: 1})
	ic := irq.New(eng, s, irq.Config{NumSSDs: 2, NumCPUs: 4, Seed: 99, StartBalanced: true})
	ic.PinAll()
	tr := New(eng, 0)
	tr.AttachIRQ(ic)
	for i := 0; i < 20; i++ {
		ic.Deliver(1, 2, func(irq.Delivery) {})
		eng.RunUntil(eng.Now().Add(sim.Millisecond))
	}
	if len(tr.MisroutedVectors()) != 0 {
		t.Fatal("pinned vectors reported as misrouted")
	}
	if tr.RemoteFraction() != 0 {
		t.Fatalf("remote fraction = %v", tr.RemoteFraction())
	}
}
