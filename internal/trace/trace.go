// Package trace is the model's LTTng: it attaches probes to the scheduler
// (sched_switch) and the interrupt controller (irq_handler_entry) and
// provides the two analyses the paper performed with the real tool:
//
//   - Section IV-B: which background processes executed on the CPUs that
//     were supposed to be running only FIO threads;
//   - Section IV-D: which NVMe vectors executed on a CPU other than their
//     designated one (the paper's irq(0,4) observed on cpu(30)).
package trace

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/irq"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Dispatch is one sched_switch record.
type Dispatch struct {
	At   sim.Time
	CPU  int
	Task string
}

// Tracer collects probe data. Attach it before running the workload.
type Tracer struct {
	eng *sim.Engine

	// keepEvents bounds the raw dispatch log (counts are always kept).
	keepEvents int
	Dispatches []Dispatch

	// dispatchCount[task][cpu]
	dispatchCount map[string]map[int]int64
	// irqCount[ssd][queue][executedCPU]
	irqCount map[int]map[int]map[int]int64

	deliveries int64
}

// New builds a tracer retaining at most keepEvents raw dispatch records
// (0 keeps none; counters still accumulate).
func New(eng *sim.Engine, keepEvents int) *Tracer {
	return &Tracer{
		eng:           eng,
		keepEvents:    keepEvents,
		dispatchCount: map[string]map[int]int64{},
		irqCount:      map[int]map[int]map[int]int64{},
	}
}

// AttachSched installs the sched_switch probe.
func (t *Tracer) AttachSched(s *sched.Scheduler) {
	s.OnDispatch = func(cpu int, task *sched.Task) {
		m := t.dispatchCount[task.Name]
		if m == nil {
			m = map[int]int64{}
			t.dispatchCount[task.Name] = m
		}
		m[cpu]++
		if len(t.Dispatches) < t.keepEvents {
			t.Dispatches = append(t.Dispatches, Dispatch{At: t.eng.Now(), CPU: cpu, Task: task.Name})
		}
	}
}

// AttachIRQ installs the irq_handler_entry probe.
func (t *Tracer) AttachIRQ(c *irq.Controller) {
	c.OnDeliver = func(d irq.Delivery) {
		t.deliveries++
		qs := t.irqCount[d.SSD]
		if qs == nil {
			qs = map[int]map[int]int64{}
			t.irqCount[d.SSD] = qs
		}
		cs := qs[d.Queue]
		if cs == nil {
			cs = map[int]int64{}
			qs[d.Queue] = cs
		}
		cs[d.Executed]++
	}
}

// Deliveries reports the number of interrupt deliveries observed.
func (t *Tracer) Deliveries() int64 { return t.deliveries }

// ForeignTask is a non-workload task observed on a workload CPU.
type ForeignTask struct {
	Task       string
	CPU        int
	Dispatches int64
}

// ForeignTasksOn reports tasks whose name lacks the given prefix (e.g.
// "fio/") dispatched on the listed CPUs — the Section IV-B analysis.
func (t *Tracer) ForeignTasksOn(cpus []int, workloadPrefix string) []ForeignTask {
	inSet := map[int]bool{}
	for _, c := range cpus {
		inSet[c] = true
	}
	var out []ForeignTask
	for _, name := range sortedKeys(t.dispatchCount) {
		if strings.HasPrefix(name, workloadPrefix) {
			continue
		}
		percpu := t.dispatchCount[name]
		for _, cpu := range sortedKeys(percpu) {
			if inSet[cpu] {
				out = append(out, ForeignTask{Task: name, CPU: cpu, Dispatches: percpu[cpu]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dispatches != out[j].Dispatches {
			return out[i].Dispatches > out[j].Dispatches
		}
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].CPU < out[j].CPU
	})
	return out
}

// MisroutedVector is a vector observed executing off its designated CPU.
type MisroutedVector struct {
	SSD, Queue  int
	ExecutedOn  int
	Occurrences int64
}

// String renders the paper's notation: "irq(0,4) executed on cpu(30)".
func (m MisroutedVector) String() string {
	return fmt.Sprintf("irq(%d,%d) executed on cpu(%d) ×%d", m.SSD, m.Queue, m.ExecutedOn, m.Occurrences)
}

// MisroutedVectors reports every (vector, wrong CPU) pair observed — the
// Section IV-D analysis.
func (t *Tracer) MisroutedVectors() []MisroutedVector {
	var out []MisroutedVector
	for _, ssd := range sortedKeys(t.irqCount) {
		qs := t.irqCount[ssd]
		for _, q := range sortedKeys(qs) {
			cs := qs[q]
			for _, cpu := range sortedKeys(cs) {
				if cpu != q {
					out = append(out, MisroutedVector{SSD: ssd, Queue: q, ExecutedOn: cpu, Occurrences: cs[cpu]})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		if out[i].SSD != out[j].SSD {
			return out[i].SSD < out[j].SSD
		}
		return out[i].Queue < out[j].Queue
	})
	return out
}

// RemoteFraction reports the share of deliveries that executed off their
// designated CPU.
func (t *Tracer) RemoteFraction() float64 {
	if t.deliveries == 0 {
		return 0
	}
	var remote int64
	for _, qs := range t.irqCount { //afalint:allow maporder -- commutative sum, order-insensitive
		for q, cs := range qs { //afalint:allow maporder -- commutative sum
			for cpu, n := range cs { //afalint:allow maporder -- commutative sum
				if cpu != q {
					remote += n
				}
			}
		}
	}
	return float64(remote) / float64(t.deliveries)
}

// sortedKeys returns m's keys in ascending order, so callers iterate
// maps deterministically (the maporder contract).
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { // exempt from maporder: keys are sorted immediately below
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
