package kernel

import (
	"testing"

	"repro/internal/nvme"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestCoalescingDisabledByDefault(t *testing.T) {
	r := newRig(t, 2, 1, sched.BootOptions{}, CompleteInterrupt)
	if r.k.coalesce.Enabled() {
		t.Fatal("coalescing on without configuration")
	}
	var c Coalescing
	if c.Enabled() {
		t.Fatal("zero Coalescing enabled")
	}
	if (Coalescing{Threshold: 1, Timeout: sim.Millisecond}).Enabled() {
		t.Fatal("threshold 1 should mean no coalescing")
	}
}

func newCoalescingRig(t *testing.T, threshold int, timeout sim.Duration) *rig {
	t.Helper()
	r := newRig(t, 2, 1, sched.BootOptions{}, CompleteInterrupt)
	r.k.SetCoalescing(Coalescing{Threshold: threshold, Timeout: timeout})
	return r
}

func TestCoalescingBatchesOnThreshold(t *testing.T) {
	r := newCoalescingRig(t, 4, 10*sim.Millisecond)
	got := 0
	for i := 0; i < 4; i++ {
		r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: int64(i)}, func(Completion) { got++ })
	}
	r.eng.RunUntil(sim.Time(5 * sim.Millisecond))
	if got != 4 {
		t.Fatalf("completions = %d", got)
	}
	local, remote, _ := r.k.IRQ.Stats()
	if local+remote != 1 {
		t.Fatalf("interrupts = %d for a threshold-4 batch of 4", local+remote)
	}
}

func TestCoalescingTimeoutFlushesLoners(t *testing.T) {
	r := newCoalescingRig(t, 8, 200*sim.Microsecond)
	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(2 * sim.Millisecond))
	if !got {
		t.Fatal("lone CQE never flushed")
	}
	lat := comp.DeliveredAt.Sub(comp.Result.SubmittedAt)
	// The CQE waited out (most of) the 200µs timeout on top of ~30µs device time.
	if lat < 200*sim.Microsecond {
		t.Fatalf("lone coalesced completion delivered after %v, want ≥ timeout", lat)
	}
	if local, remote, _ := r.k.IRQ.Stats(); local+remote != 1 {
		t.Fatalf("interrupts = %d", local+remote)
	}
}

func TestCoalescingSeparateQueues(t *testing.T) {
	r := newCoalescingRig(t, 4, 10*sim.Millisecond)
	// Two different submitting CPUs → two coalescers; neither reaches the
	// threshold, so both flush by timeout → 2 interrupts.
	done := 0
	r.k.SubmitIO(0, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(Completion) { done++ })
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 2}, func(Completion) { done++ })
	r.eng.RunUntil(sim.Time(30 * sim.Millisecond))
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	if local, remote, _ := r.k.IRQ.Stats(); local+remote != 2 {
		t.Fatalf("interrupts = %d, want one per queue", local+remote)
	}
}

func TestCoalescingWakePenaltyChargedOncePerBatch(t *testing.T) {
	r := newCoalescingRig(t, 2, 10*sim.Millisecond)
	// Force remote delivery so a penalty exists.
	r.k.IRQ.Pin(0, 1)
	var comps []Completion
	// Use a scattered controller instead: simplest is to verify the
	// fan-out invariant — at most one non-zero penalty per batch.
	for i := 0; i < 2; i++ {
		r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: int64(i)}, func(c Completion) {
			comps = append(comps, c)
		})
	}
	r.eng.RunUntil(sim.Time(5 * sim.Millisecond))
	if len(comps) != 2 {
		t.Fatalf("completions = %d", len(comps))
	}
	nonZero := 0
	for _, c := range comps {
		if c.WakePenalty > 0 {
			nonZero++
		}
	}
	if nonZero > 1 {
		t.Fatalf("%d completions carried a wake penalty; at most one per interrupt", nonZero)
	}
}
