package kernel

import (
	"testing"

	"repro/internal/nvme"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestBackoffBounds(t *testing.T) {
	p := TimeoutPolicy{Backoff: 100 * sim.Microsecond, BackoffMax: 500 * sim.Microsecond}
	want := []sim.Duration{
		100 * sim.Microsecond, // after attempt 0
		200 * sim.Microsecond,
		400 * sim.Microsecond,
		500 * sim.Microsecond, // capped
		500 * sim.Microsecond, // stays capped
	}
	for attempt, w := range want {
		if got := p.backoffFor(attempt); got != w {
			t.Fatalf("backoffFor(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Without a cap the doubling is unbounded.
	p.BackoffMax = 0
	if got := p.backoffFor(4); got != 1600*sim.Microsecond {
		t.Fatalf("uncapped backoffFor(4) = %v", got)
	}
}

func TestZeroPolicyDisabled(t *testing.T) {
	if (TimeoutPolicy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if !DefaultTimeoutPolicy().Enabled() {
		t.Fatal("default policy must be enabled")
	}
}

func newTimeoutRig(t *testing.T, policy TimeoutPolicy) *rig {
	t.Helper()
	r := newRig(t, 2, 1, sched.BootOptions{}, CompleteInterrupt)
	r.k.timeout = policy
	return r
}

func TestRetryExhaustionOnDeadDevice(t *testing.T) {
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 3,
		Backoff: 50 * sim.Microsecond, BackoffMax: 200 * sim.Microsecond,
		AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetOffline(true) // commands are silently dropped

	first := r.eng.Now()
	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !got {
		t.Fatal("exhausted command never surfaced")
	}
	if comp.Status != nvme.StatusAborted || !comp.TimedOut {
		t.Fatalf("final status = %v timedout=%v, want aborted timeout", comp.Status, comp.TimedOut)
	}
	if comp.Retries != pol.MaxRetries {
		t.Fatalf("retries = %d, want %d", comp.Retries, pol.MaxRetries)
	}
	if comp.Result.SubmittedAt != first {
		t.Fatalf("SubmittedAt = %v, want first submit %v", comp.Result.SubmittedAt, first)
	}
	st := r.k.IOStats()
	if st.Timeouts != int64(pol.MaxRetries+1) || st.Aborts != st.Timeouts {
		t.Fatalf("timeouts=%d aborts=%d, want %d each", st.Timeouts, st.Aborts, pol.MaxRetries+1)
	}
	if st.Retries != int64(pol.MaxRetries) || st.Exhausted != 1 {
		t.Fatalf("retries=%d exhausted=%d", st.Retries, st.Exhausted)
	}
}

func TestAbortRacesLateCompletion(t *testing.T) {
	// Deadline far below the healthy ~30µs device latency: every attempt
	// times out, yet every attempt's CQE still arrives — each must be
	// counted late and dropped, never delivered twice.
	pol := TimeoutPolicy{
		Timeout: 5 * sim.Microsecond, MaxRetries: 2,
		Backoff: 10 * sim.Microsecond, AbortCost: sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)

	deliveries := 0
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		deliveries++
		if c.Status != nvme.StatusAborted {
			t.Fatalf("delivered status %v", c.Status)
		}
	})
	r.eng.RunUntil(sim.Time(10 * sim.Millisecond))

	if deliveries != 1 {
		t.Fatalf("delivered %d times, want exactly once", deliveries)
	}
	st := r.k.IOStats()
	if st.LateCompletions != int64(pol.MaxRetries+1) {
		t.Fatalf("late completions = %d, want %d (one per aborted attempt)",
			st.LateCompletions, pol.MaxRetries+1)
	}
}

func TestTimeoutRecoversAfterStall(t *testing.T) {
	// A firmware stall shorter than the total retry budget: the command
	// must eventually succeed, reporting its retries and first-submit time.
	pol := TimeoutPolicy{
		Timeout: 200 * sim.Microsecond, MaxRetries: 5,
		Backoff: 100 * sim.Microsecond, BackoffMax: sim.Millisecond,
		AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].StallSubmissionQueues(500 * sim.Microsecond)

	first := r.eng.Now()
	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !got {
		t.Fatal("command never completed")
	}
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("status = %v after stall cleared", comp.Status)
	}
	if comp.Retries == 0 {
		t.Fatal("stalled command succeeded without retrying")
	}
	if comp.Result.SubmittedAt != first {
		t.Fatalf("latency must span all attempts: SubmittedAt = %v, want %v",
			comp.Result.SubmittedAt, first)
	}
	if st := r.k.IOStats(); st.Exhausted != 0 {
		t.Fatalf("exhausted = %d for a recoverable stall", st.Exhausted)
	}
}

func TestTransientErrorsRetryWithoutAbort(t *testing.T) {
	pol := DefaultTimeoutPolicy()
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetTransientErrorRate(1.0)
	// Heal the device after the first attempt has failed.
	r.eng.After(100*sim.Microsecond, func() { r.k.SSDs[0].SetTransientErrorRate(0) })

	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !got || comp.Status != nvme.StatusSuccess {
		t.Fatalf("got=%v status=%v", got, comp.Status)
	}
	if comp.Retries == 0 {
		t.Fatal("transient error did not retry")
	}
	st := r.k.IOStats()
	if st.TransientErrors == 0 {
		t.Fatal("transient error not counted")
	}
	if st.Aborts != 0 {
		t.Fatalf("aborts = %d; transient retries must skip the abort", st.Aborts)
	}
}

func TestMediaErrorSurfacesWithoutRetry(t *testing.T) {
	pol := DefaultTimeoutPolicy()
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].MarkBadLBA(7)

	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 7}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(10 * sim.Millisecond))

	if !got || comp.Status != nvme.StatusMediaError {
		t.Fatalf("got=%v status=%v, want media error", got, comp.Status)
	}
	if comp.Retries != 0 {
		t.Fatalf("uncorrectable media error retried %d times", comp.Retries)
	}
	if st := r.k.IOStats(); st.MediaErrors != 1 {
		t.Fatalf("media errors = %d", st.MediaErrors)
	}
}

func TestWriteCountersSliceTimeoutStats(t *testing.T) {
	// The write fault model reads WriteTimeouts/WriteRetries/WriteExhausted
	// to attribute tolerance activity to writes. An exhausted write to a
	// dead device must move all three; a read must move none of them.
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 2,
		Backoff: 50 * sim.Microsecond, AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetOffline(true)

	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpWrite, LBA: 1}, func(c Completion) {
		if c.Status == nvme.StatusSuccess {
			t.Error("write to an offline device succeeded")
		}
		got = true
	})
	r.eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if !got {
		t.Fatal("exhausted write never surfaced")
	}
	st := r.k.IOStats()
	if st.WriteTimeouts != int64(pol.MaxRetries+1) {
		t.Fatalf("write timeouts = %d, want %d", st.WriteTimeouts, pol.MaxRetries+1)
	}
	if st.WriteRetries != int64(pol.MaxRetries) || st.WriteExhausted != 1 {
		t.Fatalf("write retries=%d exhausted=%d", st.WriteRetries, st.WriteExhausted)
	}

	r2 := newTimeoutRig(t, pol)
	r2.k.SSDs[0].SetOffline(true)
	r2.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(Completion) {})
	r2.eng.RunUntil(sim.Time(50 * sim.Millisecond))
	st2 := r2.k.IOStats()
	if st2.WriteTimeouts != 0 || st2.WriteRetries != 0 || st2.WriteExhausted != 0 {
		t.Fatalf("read moved the write slices: %+v", st2)
	}
	if st2.Timeouts == 0 {
		t.Fatal("read to an offline device never timed out")
	}
}
