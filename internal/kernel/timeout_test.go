package kernel

import (
	"testing"

	"repro/internal/health"
	"repro/internal/nvme"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestBackoffBounds(t *testing.T) {
	p := TimeoutPolicy{Backoff: 100 * sim.Microsecond, BackoffMax: 500 * sim.Microsecond}
	want := []sim.Duration{
		100 * sim.Microsecond, // after attempt 0
		200 * sim.Microsecond,
		400 * sim.Microsecond,
		500 * sim.Microsecond, // capped
		500 * sim.Microsecond, // stays capped
	}
	for attempt, w := range want {
		if got := p.backoffFor(attempt); got != w {
			t.Fatalf("backoffFor(%d) = %v, want %v", attempt, got, w)
		}
	}
	// BackoffMax unset: doubling proceeds until the default cap.
	p.BackoffMax = 0
	if got := p.backoffFor(4); got != 1600*sim.Microsecond {
		t.Fatalf("backoffFor(4) with default cap = %v", got)
	}
}

func TestBackoffDefaultCapBoundsLongChains(t *testing.T) {
	// Regression: with BackoffMax unset, the old unbounded doubling
	// overflowed int64 after ~60 retries, handing the engine a negative
	// delay. A deep attempt index must now saturate at DefaultBackoffCap.
	p := TimeoutPolicy{Backoff: 100 * sim.Microsecond}
	for _, attempt := range []int{10, 63, 64, 200} {
		if got := p.backoffFor(attempt); got != DefaultBackoffCap {
			t.Fatalf("backoffFor(%d) = %v, want DefaultBackoffCap %v", attempt, got, DefaultBackoffCap)
		}
	}
	// An explicit cap still wins.
	p.BackoffMax = 300 * sim.Microsecond
	if got := p.backoffFor(200); got != 300*sim.Microsecond {
		t.Fatalf("backoffFor(200) with explicit cap = %v", got)
	}
}

func TestZeroPolicyDisabled(t *testing.T) {
	if (TimeoutPolicy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if !DefaultTimeoutPolicy().Enabled() {
		t.Fatal("default policy must be enabled")
	}
}

func newTimeoutRig(t *testing.T, policy TimeoutPolicy) *rig {
	t.Helper()
	r := newRig(t, 2, 1, sched.BootOptions{}, CompleteInterrupt)
	r.k.timeout = policy
	// Mirror New's budget arming (the rig swaps the policy in after
	// construction).
	if policy.Budget > 0 {
		r.k.retryBuckets = make([]retryBucket, len(r.k.SSDs))
		for i := range r.k.retryBuckets {
			r.k.retryBuckets[i].tokens = int64(policy.Budget)
		}
	}
	return r
}

func TestRetryExhaustionOnDeadDevice(t *testing.T) {
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 3,
		Backoff: 50 * sim.Microsecond, BackoffMax: 200 * sim.Microsecond,
		AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetOffline(true) // commands are silently dropped

	first := r.eng.Now()
	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !got {
		t.Fatal("exhausted command never surfaced")
	}
	if comp.Status != nvme.StatusAborted || !comp.TimedOut {
		t.Fatalf("final status = %v timedout=%v, want aborted timeout", comp.Status, comp.TimedOut)
	}
	if comp.Retries != pol.MaxRetries {
		t.Fatalf("retries = %d, want %d", comp.Retries, pol.MaxRetries)
	}
	if comp.Result.SubmittedAt != first {
		t.Fatalf("SubmittedAt = %v, want first submit %v", comp.Result.SubmittedAt, first)
	}
	st := r.k.IOStats()
	if st.Timeouts != int64(pol.MaxRetries+1) || st.Aborts != st.Timeouts {
		t.Fatalf("timeouts=%d aborts=%d, want %d each", st.Timeouts, st.Aborts, pol.MaxRetries+1)
	}
	if st.Retries != int64(pol.MaxRetries) || st.Exhausted != 1 {
		t.Fatalf("retries=%d exhausted=%d", st.Retries, st.Exhausted)
	}
}

func TestAbortRacesLateCompletion(t *testing.T) {
	// Deadline far below the healthy ~30µs device latency: every attempt
	// times out, yet every attempt's CQE still arrives — each must be
	// counted late and dropped, never delivered twice.
	pol := TimeoutPolicy{
		Timeout: 5 * sim.Microsecond, MaxRetries: 2,
		Backoff: 10 * sim.Microsecond, AbortCost: sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)

	deliveries := 0
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		deliveries++
		if c.Status != nvme.StatusAborted {
			t.Fatalf("delivered status %v", c.Status)
		}
	})
	r.eng.RunUntil(sim.Time(10 * sim.Millisecond))

	if deliveries != 1 {
		t.Fatalf("delivered %d times, want exactly once", deliveries)
	}
	st := r.k.IOStats()
	if st.LateCompletions != int64(pol.MaxRetries+1) {
		t.Fatalf("late completions = %d, want %d (one per aborted attempt)",
			st.LateCompletions, pol.MaxRetries+1)
	}
}

func TestTimeoutRecoversAfterStall(t *testing.T) {
	// A firmware stall shorter than the total retry budget: the command
	// must eventually succeed, reporting its retries and first-submit time.
	pol := TimeoutPolicy{
		Timeout: 200 * sim.Microsecond, MaxRetries: 5,
		Backoff: 100 * sim.Microsecond, BackoffMax: sim.Millisecond,
		AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].StallSubmissionQueues(500 * sim.Microsecond)

	first := r.eng.Now()
	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !got {
		t.Fatal("command never completed")
	}
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("status = %v after stall cleared", comp.Status)
	}
	if comp.Retries == 0 {
		t.Fatal("stalled command succeeded without retrying")
	}
	if comp.Result.SubmittedAt != first {
		t.Fatalf("latency must span all attempts: SubmittedAt = %v, want %v",
			comp.Result.SubmittedAt, first)
	}
	if st := r.k.IOStats(); st.Exhausted != 0 {
		t.Fatalf("exhausted = %d for a recoverable stall", st.Exhausted)
	}
}

func TestTransientErrorsRetryWithoutAbort(t *testing.T) {
	pol := DefaultTimeoutPolicy()
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetTransientErrorRate(1.0)
	// Heal the device after the first attempt has failed.
	r.eng.After(100*sim.Microsecond, func() { r.k.SSDs[0].SetTransientErrorRate(0) })

	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(100 * sim.Millisecond))

	if !got || comp.Status != nvme.StatusSuccess {
		t.Fatalf("got=%v status=%v", got, comp.Status)
	}
	if comp.Retries == 0 {
		t.Fatal("transient error did not retry")
	}
	st := r.k.IOStats()
	if st.TransientErrors == 0 {
		t.Fatal("transient error not counted")
	}
	if st.Aborts != 0 {
		t.Fatalf("aborts = %d; transient retries must skip the abort", st.Aborts)
	}
}

func TestMediaErrorSurfacesWithoutRetry(t *testing.T) {
	pol := DefaultTimeoutPolicy()
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].MarkBadLBA(7)

	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 7}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(10 * sim.Millisecond))

	if !got || comp.Status != nvme.StatusMediaError {
		t.Fatalf("got=%v status=%v, want media error", got, comp.Status)
	}
	if comp.Retries != 0 {
		t.Fatalf("uncorrectable media error retried %d times", comp.Retries)
	}
	if st := r.k.IOStats(); st.MediaErrors != 1 {
		t.Fatalf("media errors = %d", st.MediaErrors)
	}
}

func TestWriteCountersSliceTimeoutStats(t *testing.T) {
	// The write fault model reads WriteTimeouts/WriteRetries/WriteExhausted
	// to attribute tolerance activity to writes. An exhausted write to a
	// dead device must move all three; a read must move none of them.
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 2,
		Backoff: 50 * sim.Microsecond, AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetOffline(true)

	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpWrite, LBA: 1}, func(c Completion) {
		if c.Status == nvme.StatusSuccess {
			t.Error("write to an offline device succeeded")
		}
		got = true
	})
	r.eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if !got {
		t.Fatal("exhausted write never surfaced")
	}
	st := r.k.IOStats()
	if st.WriteTimeouts != int64(pol.MaxRetries+1) {
		t.Fatalf("write timeouts = %d, want %d", st.WriteTimeouts, pol.MaxRetries+1)
	}
	if st.WriteRetries != int64(pol.MaxRetries) || st.WriteExhausted != 1 {
		t.Fatalf("write retries=%d exhausted=%d", st.WriteRetries, st.WriteExhausted)
	}

	r2 := newTimeoutRig(t, pol)
	r2.k.SSDs[0].SetOffline(true)
	r2.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(Completion) {})
	r2.eng.RunUntil(sim.Time(50 * sim.Millisecond))
	st2 := r2.k.IOStats()
	if st2.WriteTimeouts != 0 || st2.WriteRetries != 0 || st2.WriteExhausted != 0 {
		t.Fatalf("read moved the write slices: %+v", st2)
	}
	if st2.Timeouts == 0 {
		t.Fatal("read to an offline device never timed out")
	}
}

func TestRetryBudgetShedsEarly(t *testing.T) {
	// One retry token, no refill: the second timeout must shed to the
	// caller instead of grinding through the rest of the retry ladder.
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 5,
		Backoff: 50 * sim.Microsecond, AbortCost: 10 * sim.Microsecond,
		Budget: 1,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetOffline(true)

	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(50 * sim.Millisecond))

	if !got {
		t.Fatal("shed command never surfaced")
	}
	if comp.Status != nvme.StatusAborted || !comp.TimedOut {
		t.Fatalf("status=%v timedout=%v, want aborted timeout", comp.Status, comp.TimedOut)
	}
	if comp.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (the single budgeted retry)", comp.Retries)
	}
	st := r.k.IOStats()
	if st.RetryBudgetExhausted != 1 || st.ShedToReconstruct != 1 {
		t.Fatalf("budget counters: exhausted=%d shed=%d, want 1 each",
			st.RetryBudgetExhausted, st.ShedToReconstruct)
	}
	// Shedding is not MaxRetries exhaustion; the counters stay distinct.
	if st.Exhausted != 0 {
		t.Fatalf("exhausted = %d for a budget shed", st.Exhausted)
	}
	if st.Retries != 1 {
		t.Fatalf("granted retries = %d, want 1", st.Retries)
	}
}

func TestRetryBudgetRefills(t *testing.T) {
	// Refill faster than the retry cadence: the budget never blocks and
	// the command walks the full ladder to normal exhaustion.
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 3,
		Backoff: 50 * sim.Microsecond, AbortCost: 10 * sim.Microsecond,
		Budget: 1, BudgetRefill: 120 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.SSDs[0].SetOffline(true)

	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 1}, func(Completion) { got = true })
	r.eng.RunUntil(sim.Time(50 * sim.Millisecond))

	if !got {
		t.Fatal("command never surfaced")
	}
	st := r.k.IOStats()
	if st.RetryBudgetExhausted != 0 {
		t.Fatalf("refilling budget denied %d retries", st.RetryBudgetExhausted)
	}
	if st.Exhausted != 1 || st.Retries != int64(pol.MaxRetries) {
		t.Fatalf("exhausted=%d retries=%d, want normal ladder exhaustion", st.Exhausted, st.Retries)
	}
}

func TestOverloadWatermarkHysteresis(t *testing.T) {
	r := newTimeoutRig(t, TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, OverloadWatermark: 4,
	})
	k := r.k
	base := k.attemptTimeout()
	if base != 100*sim.Microsecond {
		t.Fatalf("healthy attempt timeout = %v", base)
	}
	k.noteInflight(4)
	if k.Overloaded() {
		t.Fatal("overloaded at the watermark; latch must require crossing it")
	}
	k.noteInflight(1)
	if !k.Overloaded() {
		t.Fatal("not overloaded past the watermark")
	}
	// Unset scale defaults to 2.
	if got := k.attemptTimeout(); got != 2*base {
		t.Fatalf("overloaded attempt timeout = %v, want %v", got, 2*base)
	}
	// Hysteresis: dropping to the watermark is not enough...
	k.noteInflight(-1)
	if !k.Overloaded() {
		t.Fatal("overload cleared at the watermark; hysteresis requires 3/4")
	}
	// ...it must fall to three quarters of it.
	k.noteInflight(-1)
	if k.Overloaded() {
		t.Fatalf("overload not cleared at 3/4 watermark (inflight=%d)", k.inflight)
	}
	k.noteInflight(2)
	if !k.Overloaded() {
		t.Fatal("re-entry past the watermark not latched")
	}
	if got := k.IOStats().OverloadEntered; got != 2 {
		t.Fatalf("OverloadEntered = %d, want 2", got)
	}
}

func TestHealthTrackerFedByManagedPath(t *testing.T) {
	pol := TimeoutPolicy{
		Timeout: 4 * sim.Millisecond, MaxRetries: 3,
		Backoff: 50 * sim.Microsecond, AbortCost: 10 * sim.Microsecond,
	}
	r := newTimeoutRig(t, pol)
	r.k.health = health.NewTracker(health.Config{}, len(r.k.SSDs))

	done := 0
	for i := 0; i < 20; i++ {
		r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: int64(i)}, func(Completion) { done++ })
		r.eng.RunUntil(r.eng.Now().Add(sim.Millisecond))
	}
	if done != 20 {
		t.Fatalf("completed %d/20", done)
	}
	s := r.k.Health().Snapshot(0)
	if s.Samples != 20 {
		t.Fatalf("tracker saw %d samples, want 20", s.Samples)
	}
	// Per-attempt latencies, not end-to-end-with-backoff: a healthy read
	// is ~30µs device-side plus the idle-wake host path (~100µs at this
	// cadence), far below the 4ms deadline.
	if s.SRTT < 10*sim.Microsecond || s.SRTT > 300*sim.Microsecond {
		t.Fatalf("srtt = %v, want the healthy ≈30-150µs baseline", s.SRTT)
	}

	// A drop-out feeds timeouts and granted retries to the tracker too.
	r.k.SSDs[0].SetOffline(true)
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 99}, func(Completion) {})
	r.eng.RunUntil(r.eng.Now().Add(50 * sim.Millisecond))
	s = r.k.Health().Snapshot(0)
	if s.Timeouts != int64(pol.MaxRetries+1) {
		t.Fatalf("tracker timeouts = %d, want %d", s.Timeouts, pol.MaxRetries+1)
	}
	if s.Retries != int64(pol.MaxRetries) {
		t.Fatalf("tracker retries = %d, want %d", s.Retries, pol.MaxRetries)
	}
	if s.Suspicion == 0 {
		t.Fatal("drop-out raised no suspicion")
	}
}

// TestWriteRetryDropOutRecovery is the write-path retry-exhaustion
// matrix for a drive that drops out and comes back: accounting must stay
// consistent whether recovery lands mid-retry or after exhaustion, and a
// drop-out (no CQE ever) must not be confused with a stall (late CQEs).
func TestWriteRetryDropOutRecovery(t *testing.T) {
	pol := TimeoutPolicy{
		Timeout: 100 * sim.Microsecond, MaxRetries: 5,
		Backoff: 50 * sim.Microsecond, AbortCost: 10 * sim.Microsecond,
	}

	t.Run("recovers mid-retry", func(t *testing.T) {
		r := newTimeoutRig(t, pol)
		r.k.SSDs[0].SetOffline(true)
		// Back online while the retry ladder is still climbing.
		r.eng.After(200*sim.Microsecond, func() { r.k.SSDs[0].SetOffline(false) })

		var comp Completion
		got := false
		r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpWrite, LBA: 1}, func(c Completion) {
			comp = c
			got = true
		})
		r.eng.RunUntil(sim.Time(50 * sim.Millisecond))

		if !got || comp.Status != nvme.StatusSuccess {
			t.Fatalf("got=%v status=%v, want success after recovery", got, comp.Status)
		}
		if comp.Retries == 0 || comp.Retries > pol.MaxRetries {
			t.Fatalf("retries = %d, want mid-ladder recovery", comp.Retries)
		}
		st := r.k.IOStats()
		if st.WriteExhausted != 0 || st.Exhausted != 0 {
			t.Fatalf("recovered write counted exhausted: %+v", st)
		}
		// Offline drops are silent — no CQE ever arrives for the dropped
		// attempts, so nothing may be counted late.
		if st.LateCompletions != 0 {
			t.Fatalf("late completions = %d for silently dropped attempts", st.LateCompletions)
		}
		if st.WriteTimeouts != int64(comp.Retries) || st.WriteRetries != int64(comp.Retries) {
			t.Fatalf("write timeouts=%d retries=%d, want %d each",
				st.WriteTimeouts, st.WriteRetries, comp.Retries)
		}
	})

	t.Run("recovers after exhaustion", func(t *testing.T) {
		short := pol
		short.MaxRetries = 1
		r := newTimeoutRig(t, short)
		r.k.SSDs[0].SetOffline(true)
		r.eng.After(5*sim.Millisecond, func() { r.k.SSDs[0].SetOffline(false) })

		var comp Completion
		got := false
		r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpWrite, LBA: 1}, func(c Completion) {
			comp = c
			got = true
		})
		r.eng.RunUntil(sim.Time(50 * sim.Millisecond))

		if !got || comp.Status != nvme.StatusAborted || !comp.TimedOut {
			t.Fatalf("got=%v status=%v, want surfaced exhaustion", got, comp.Status)
		}
		st := r.k.IOStats()
		if st.WriteExhausted != 1 || st.LateCompletions != 0 {
			t.Fatalf("exhausted=%d late=%d, want 1 and 0", st.WriteExhausted, st.LateCompletions)
		}
	})

	t.Run("stall yields late CQEs not drops", func(t *testing.T) {
		r := newTimeoutRig(t, pol)
		r.k.SSDs[0].StallSubmissionQueues(500 * sim.Microsecond)

		var comp Completion
		got := false
		r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpWrite, LBA: 1}, func(c Completion) {
			comp = c
			got = true
		})
		r.eng.RunUntil(sim.Time(50 * sim.Millisecond))

		if !got || comp.Status != nvme.StatusSuccess {
			t.Fatalf("got=%v status=%v, want success after stall", got, comp.Status)
		}
		st := r.k.IOStats()
		if st.Timeouts == 0 {
			t.Fatal("stall produced no timeouts")
		}
		// Every stalled attempt's CQE eventually drains: each timed-out
		// attempt must be accounted late, none lost.
		if st.LateCompletions != st.Timeouts {
			t.Fatalf("late=%d timeouts=%d, want every stalled CQE accounted",
				st.LateCompletions, st.Timeouts)
		}
		if st.WriteExhausted != 0 {
			t.Fatalf("recoverable stall exhausted the write: %+v", st)
		}
	})
}
