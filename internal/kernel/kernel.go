// Package kernel composes the host side of the stack: the block-layer I/O
// submission path from a pinned thread down to an NVMe controller and back
// up through the MSI-X interrupt path, the background daemon population
// that the paper found interfering with FIO (llvmpipe, lttng-consumerd,
// sshd, kworkers...), and the per-tick housekeeping cost policy (timer
// callbacks, vmstat, RCU) that the isolcpus/nohz_full/rcu_nocbs boot
// options suppress.
package kernel

import (
	"fmt"

	"repro/internal/health"
	"repro/internal/irq"
	"repro/internal/nvme"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// CompletionMode selects how the host learns about completions.
type CompletionMode int

const (
	// CompleteInterrupt is the normal MSI-X path.
	CompleteInterrupt CompletionMode = iota
	// CompletePolling busy-polls the CQ from the submitting thread
	// (Section V discussion; Yang et al.'s "when poll is better than
	// interrupt").
	CompletePolling
)

// Costs are host software path constants.
type Costs struct {
	// Submit is the CPU cost of io_submit for one 4 KiB request
	// (syscall + blk-mq + doorbell write).
	Submit sim.Duration
	// Complete is the CPU cost of reaping one completion in the thread
	// (io_getevents + fio bookkeeping).
	Complete sim.Duration
	// PollCheck is one CQ poll iteration's cost in polling mode.
	PollCheck sim.Duration
	// LatLogRecord is the extra per-I/O cost of fio latency logging
	// (footnote 1: logging on all 64 SSDs perturbed the measurement).
	LatLogRecord sim.Duration
	// UserSubmit is the CPU cost of ringing a passthrough queue pair's
	// doorbell from userspace: build the SQE, MMIO write. No syscall, no
	// blk-mq — this is the whole host submit path in passthrough mode.
	UserSubmit sim.Duration
	// UserComplete is the CPU cost of reaping one CQE from a tenant-owned
	// CQ in userspace (phase check + bookkeeping).
	UserComplete sim.Duration
}

// DefaultCosts returns calibrated host path costs.
func DefaultCosts() Costs {
	return Costs{
		Submit:       1800 * sim.Nanosecond,
		Complete:     1200 * sim.Nanosecond,
		PollCheck:    300 * sim.Nanosecond,
		LatLogRecord: 900 * sim.Nanosecond,
		UserSubmit:   250 * sim.Nanosecond,
		UserComplete: 150 * sim.Nanosecond,
	}
}

// Kernel wires scheduler, IRQ controller, and SSDs together.
type Kernel struct {
	eng   *sim.Engine
	Sched *sched.Scheduler
	IRQ   *irq.Controller
	SSDs  []*nvme.Controller
	costs Costs
	mode  CompletionMode
	rnd   *rng.Stream

	daemons []*Daemon

	coalesce Coalescing
	// coalescers is the dense (ssd, queue) → coalescer table, built at
	// boot when coalescing is enabled (index ssd·NumCPUs + queue).
	coalescers []*coalescer
	// freeCoalDeliv recycles coalesced-delivery batch carriers.
	freeCoalDeliv []*coalDelivery

	timeout TimeoutPolicy
	iostats IOStats

	// health is the per-drive health tracker feeding the adaptive
	// tolerance plane (nil unless Config.Health was set). It observes
	// every managed-command outcome.
	health *health.Tracker

	// retryBuckets are the per-drive retry token buckets (see
	// TimeoutPolicy.Budget); nil when budgets are disabled.
	retryBuckets []retryBucket

	// inflight counts managed commands between submit and surfaced
	// completion; overloaded latches when it crosses the policy's
	// watermark (with hysteresis on the way down).
	inflight   int
	overloaded bool

	// freeReqs recycles per-I/O completion carriers (see kioReq); a plain
	// slice keeps reuse order deterministic.
	freeReqs []*kioReq
	// freeMng / freeAtt recycle the managed-path carriers (see mngReq and
	// attReq in timeout.go).
	freeMng []*mngReq
	freeAtt []*attReq

	// tick-work model state
	tickRnd *rng.Stream
}

// Config assembles a Kernel.
type Config struct {
	Sched *sched.Scheduler
	IRQ   *irq.Controller
	SSDs  []*nvme.Controller
	Costs Costs
	Mode  CompletionMode
	// Coalesce enables NVMe interrupt coalescing (see Coalescing).
	Coalesce Coalescing
	// Timeout arms the host's per-command timeout/retry/abort machinery
	// (see TimeoutPolicy); the zero value preserves the wait-forever
	// behaviour.
	Timeout TimeoutPolicy
	// Health, when non-nil, attaches a per-drive health tracker fed by
	// every managed-command outcome (zero-valued fields take the
	// health.DefaultConfig defaults). The RAID layer consumes it for
	// per-drive adaptive hedge deadlines.
	Health *health.Config
	Seed   uint64
}

// New builds the kernel and installs the tick-work policy on the
// scheduler.
func New(eng *sim.Engine, cfg Config) *Kernel {
	if cfg.Sched == nil || cfg.IRQ == nil {
		panic("kernel: Sched and IRQ required")
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	k := &Kernel{
		eng:      eng,
		Sched:    cfg.Sched,
		IRQ:      cfg.IRQ,
		SSDs:     cfg.SSDs,
		costs:    cfg.Costs,
		mode:     cfg.Mode,
		coalesce: cfg.Coalesce,
		timeout:  cfg.Timeout,
		rnd:      rng.NewLabeled(cfg.Seed, "kernel"),
		tickRnd:  rng.NewLabeled(cfg.Seed, "tickwork"),
	}
	// Dense (ssd, queue) → coalescer table, fully built at boot when
	// coalescing is on: the per-CQE lookup on the hot path is a slice
	// index, and every flush callback is bound once, here.
	k.SetCoalescing(cfg.Coalesce)
	if cfg.Health != nil {
		k.health = health.NewTracker(*cfg.Health, len(cfg.SSDs))
	}
	if cfg.Timeout.Budget > 0 {
		k.retryBuckets = make([]retryBucket, len(cfg.SSDs))
		for i := range k.retryBuckets {
			k.retryBuckets[i].tokens = int64(cfg.Timeout.Budget)
		}
	}
	k.Sched.TickWork = k.tickWork
	return k
}

// Health reports the per-drive health tracker (nil unless configured).
func (k *Kernel) Health() *health.Tracker { return k.health }

// Overloaded reports whether in-flight managed-command depth is past
// the policy's watermark. The RAID layer sheds speculative hedges while
// this holds — hedges are the first load to drop under pressure.
func (k *Kernel) Overloaded() bool { return k.overloaded }

// Costs reports the host path constants.
func (k *Kernel) Costs() Costs { return k.costs }

// Mode reports the completion mode.
func (k *Kernel) Mode() CompletionMode { return k.mode }

// tickWork models the housekeeping charged on each scheduler tick:
// a small base (timer callbacks), occasional vmstat-style bursts, and —
// on CPUs whose RCU callbacks are not offloaded — occasional RCU softirq
// batches reaching into the hundreds of microseconds. These are the
// residual noise sources that survive chrt but die with
// isolcpus/nohz_full/rcu_nocbs (Fig 7 → Fig 8).
func (k *Kernel) tickWork(cpu int) sim.Duration {
	d := 1200*sim.Nanosecond + sim.Duration(k.tickRnd.Exp(600))
	if k.tickRnd.Bool(0.05) { // vmstat / timer wheel burst
		d += sim.Duration(k.tickRnd.LogNormalMean(6_000, 0.6))
	}
	if !k.Sched.Boot().RCUOffloaded(cpu) && k.tickRnd.Bool(0.02) {
		// RCU callback batch.
		d += sim.Duration(k.tickRnd.LogNormalMean(60_000, 0.7))
	}
	return d
}

// Completion carries everything the submitting thread needs when its I/O
// finishes.
type Completion struct {
	Result nvme.Result
	// Delivery is the interrupt delivery record (zero in polling mode).
	Delivery irq.Delivery
	// WakePenalty is the dispatch penalty the woken thread must be charged
	// (remote IRQ: IPI + cache pollution).
	WakePenalty sim.Duration
	// DeliveredAt is when the host-side completion handler (softirq, or
	// the poll loop) saw the CQE — the last kernel-side phase timestamp.
	DeliveredAt sim.Time
	// Status is the command's final completion status. StatusAborted with
	// TimedOut set means the host gave up after exhausting the timeout
	// policy's retries. Callers must check it before trusting the data.
	Status nvme.Status
	// Retries is how many times the host re-issued this command before
	// the delivered outcome (0 on the untolerant path).
	Retries int
	// TimedOut reports that the final attempt ended in a host-side
	// timeout rather than a device completion.
	TimedOut bool
}

// SubmitIO sends a command to an SSD on behalf of a thread currently on
// CPU submitCPU, and invokes done in interrupt (softirq) context when it
// completes. The caller charges Costs().Submit to the submitting thread's
// burst; done typically Execs the thread's completion burst and wakes it.
// When the kernel was built with a TimeoutPolicy, the command runs under
// per-attempt deadlines with abort + bounded-backoff retry; otherwise a
// command to a dead device never completes, as on an untuned host.
func (k *Kernel) SubmitIO(submitCPU, ssd int, cmd nvme.Command, done func(Completion)) {
	if ssd < 0 || ssd >= len(k.SSDs) {
		panic(fmt.Sprintf("kernel: ssd %d out of range", ssd))
	}
	if k.timeout.Enabled() {
		k.submitManaged(submitCPU, ssd, cmd, done)
		return
	}
	k.submitOnce(submitCPU, ssd, cmd, done)
}

// kioReq carries one I/O's host-side completion state from the device
// CQE through interrupt delivery. Requests are recycled through the
// kernel's freelist with their callbacks bound once, so the per-I/O
// submit path allocates nothing (the closures this replaces were among
// the top allocation sites).
type kioReq struct {
	k         *Kernel
	submitCPU int
	ssd       int
	res       nvme.Result
	done      func(Completion)

	onResFn   func(nvme.Result)
	onDelivFn func(irq.Delivery)
}

func (k *Kernel) getReq(submitCPU, ssd int, done func(Completion)) *kioReq {
	var r *kioReq
	if n := len(k.freeReqs); n > 0 {
		r = k.freeReqs[n-1]
		k.freeReqs[n-1] = nil
		k.freeReqs = k.freeReqs[:n-1]
	} else {
		r = &kioReq{k: k}          //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
		r.onResFn = r.onResult     //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		r.onDelivFn = r.onDelivery //afalint:allow hotalloc -- stage callback bound once per pooled carrier
	}
	r.submitCPU = submitCPU
	r.ssd = ssd
	r.done = done
	return r
}

func (k *Kernel) putReq(r *kioReq) {
	r.done = nil
	r.res = nvme.Result{}
	k.freeReqs = append(k.freeReqs, r)
}

// submitOnce is the raw single-attempt submit path. A command dropped by
// an offline device never completes; its carrier is simply garbage — the
// freelist only recycles requests that finish.
func (k *Kernel) submitOnce(submitCPU, ssd int, cmd nvme.Command, done func(Completion)) {
	cmd.Queue = submitCPU
	r := k.getReq(submitCPU, ssd, done)
	k.SSDs[ssd].Submit(cmd, r.onResFn)
}

// onResult is the device CQE landing on the host.
func (r *kioReq) onResult(res nvme.Result) {
	k := r.k
	switch k.mode {
	case CompletePolling:
		// The polling thread spins on the CQ: no interrupt, no wake
		// penalty. Delivery is synthesized as local.
		done := r.done
		comp := Completion{
			Result:      res,
			Delivery:    irq.Delivery{SSD: r.ssd, Queue: r.submitCPU, Executed: r.submitCPU},
			DeliveredAt: k.eng.Now(),
			Status:      res.Status,
		}
		k.putReq(r)
		done(comp)
	default:
		if k.coalesce.Enabled() {
			done := r.done
			ssd, queue := r.ssd, r.submitCPU
			k.putReq(r)
			k.coalescerFor(ssd, queue).add(res, done)
			return
		}
		r.res = res
		k.IRQ.Deliver(r.ssd, r.submitCPU, r.onDelivFn)
	}
}

// onDelivery is the MSI-X interrupt reaching the submitting thread.
func (r *kioReq) onDelivery(d irq.Delivery) {
	k := r.k
	done := r.done
	comp := Completion{
		Result:      r.res,
		Delivery:    d,
		WakePenalty: k.IRQ.WakePenalty(d),
		DeliveredAt: k.eng.Now(),
		Status:      r.res.Status,
	}
	k.putReq(r)
	done(comp)
}
