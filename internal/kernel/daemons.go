package kernel

import (
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// DaemonSpec describes one background process's behaviour: it sleeps for
// an exponentially distributed interval, wakes, and executes a session of
// CPU bursts.
type DaemonSpec struct {
	Name string
	// SleepMean is the mean time between activity sessions.
	SleepMean sim.Duration
	// BurstMean/BurstSigma parameterize the lognormal burst length.
	BurstMean  sim.Duration
	BurstSigma float64
	// BurstsPerSession is how many bursts one wake executes.
	BurstsPerSession int
	// Nice is the CFS nice value.
	Nice int
	// Affinity optionally pins the daemon (empty = unpinned, the default
	// and the problematic case).
	Affinity []int
	// NoScale excludes the daemon from ScaleDaemonPeriods: its activity is
	// frequent (frame-rate, not rare), so time compression of short runs
	// must not distort it.
	NoScale bool
}

// DefaultDaemons returns the background population the paper observed
// interfering with FIO on the CentOS 7 testbed (Section IV-B): the GNOME
// GUI's software rasterizer, the LTTng trace consumer, SSH, and assorted
// kernel workers. Calibrated so that, under the default configuration,
// multi-millisecond CFS stalls hit each workload CPU every few seconds —
// rare enough to surface only at and beyond the 5-nines percentile, as in
// Fig 6.
func DefaultDaemons() []DaemonSpec {
	return []DaemonSpec{
		// GNOME's software rasterizer renders frames continuously; each
		// frame is a multi-millisecond CPU burst landing on whatever CPU
		// looks idle — under the default configuration that is usually a
		// CPU hosting a (mostly sleeping) FIO thread.
		{Name: "llvmpipe", SleepMean: 16 * sim.Millisecond, BurstMean: 3 * sim.Millisecond,
			BurstSigma: 0.5, BurstsPerSession: 1, Nice: 0, NoScale: true},
		{Name: "lttng-consumerd", SleepMean: 800 * sim.Millisecond, BurstMean: 400 * sim.Microsecond,
			BurstSigma: 0.6, BurstsPerSession: 2, Nice: 0},
		{Name: "sshd", SleepMean: 1500 * sim.Millisecond, BurstMean: 80 * sim.Microsecond,
			BurstSigma: 0.5, BurstsPerSession: 1, Nice: 0},
		{Name: "systemd-journald", SleepMean: 900 * sim.Millisecond, BurstMean: 150 * sim.Microsecond,
			BurstSigma: 0.6, BurstsPerSession: 1, Nice: 0},
		{Name: "kworker/u80:1", SleepMean: 250 * sim.Millisecond, BurstMean: 180 * sim.Microsecond,
			BurstSigma: 0.7, BurstsPerSession: 1, Nice: 0},
		{Name: "kworker/u80:2", SleepMean: 400 * sim.Millisecond, BurstMean: 220 * sim.Microsecond,
			BurstSigma: 0.7, BurstsPerSession: 1, Nice: 0},
		{Name: "gnome-shell", SleepMean: 3 * sim.Second, BurstMean: 2 * sim.Millisecond,
			BurstSigma: 0.6, BurstsPerSession: 2, Nice: 0},
		{Name: "tuned", SleepMean: 5 * sim.Second, BurstMean: 500 * sim.Microsecond,
			BurstSigma: 0.5, BurstsPerSession: 1, Nice: 0},
	}
}

// ScaleDaemonPeriods returns a copy of the specs with every SleepMean
// multiplied by factor. Experiment harnesses use it to time-compress rare
// background activity into short runs: a run of T seconds with factor
// T/120 s experiences as many daemon sessions per CPU as the paper's 120 s
// run, with unchanged burst magnitudes.
func ScaleDaemonPeriods(specs []DaemonSpec, factor float64) []DaemonSpec {
	out := make([]DaemonSpec, len(specs))
	for i, s := range specs {
		if !s.NoScale {
			s.SleepMean = sim.Duration(float64(s.SleepMean) * factor)
			if s.SleepMean < 10*sim.Millisecond {
				s.SleepMean = 10 * sim.Millisecond
			}
		}
		out[i] = s
	}
	return out
}

// Daemon is a running background process.
type Daemon struct {
	Spec DaemonSpec
	task *sched.Task
	k    *Kernel
	rnd  *rng.Stream

	burstsLeft int
	sessions   int64
	stopped    bool

	// wake/burstDone bound once so the sleep→wake→burst cycle doesn't
	// allocate a method-value closure per session.
	wakeFn      func()
	burstDoneFn func()
}

// StartDaemons launches the given background population. Call once.
func (k *Kernel) StartDaemons(specs []DaemonSpec) {
	for _, spec := range specs {
		d := &Daemon{
			Spec: spec,
			k:    k,
			rnd:  k.rnd.Derive("daemon-" + spec.Name),
		}
		d.task = k.Sched.NewTask(spec.Name, sched.ClassCFS, spec.Nice, spec.Affinity)
		d.wakeFn = d.wake
		d.burstDoneFn = d.burstDone
		k.daemons = append(k.daemons, d)
		d.scheduleWake()
	}
}

// Daemons lists the running background processes.
func (k *Kernel) Daemons() []*Daemon { return k.daemons }

// Sessions reports how many activity sessions the daemon has run.
func (d *Daemon) Sessions() int64 { return d.sessions }

// Task exposes the underlying scheduler task (for tests and tracing).
func (d *Daemon) Task() *sched.Task { return d.task }

// Stop prevents future sessions (current one finishes).
func (d *Daemon) Stop() { d.stopped = true }

func (d *Daemon) scheduleWake() {
	if d.stopped {
		return
	}
	delay := sim.Duration(d.rnd.Exp(float64(d.Spec.SleepMean)))
	if delay < sim.Millisecond {
		delay = sim.Millisecond
	}
	d.k.eng.Schedule(delay, d.wakeFn)
}

func (d *Daemon) wake() {
	if d.stopped {
		return
	}
	d.sessions++
	d.burstsLeft = d.Spec.BurstsPerSession
	d.task.Exec(d.burstLen(), d.burstDoneFn)
	d.k.Sched.Wake(d.task)
}

func (d *Daemon) burstLen() sim.Duration {
	l := sim.Duration(d.rnd.LogNormalMean(float64(d.Spec.BurstMean), d.Spec.BurstSigma))
	if l < 10*sim.Microsecond {
		l = 10 * sim.Microsecond
	}
	return l
}

func (d *Daemon) burstDone() {
	d.burstsLeft--
	if d.burstsLeft > 0 {
		d.task.Exec(d.burstLen(), d.burstDoneFn)
		return
	}
	// Session over: implicit sleep; arrange the next one.
	d.scheduleWake()
}
