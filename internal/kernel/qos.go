package kernel

import "repro/internal/nvme"

// QoSClass labels a submitted I/O with the service class of the tenant
// that issued it. The kernel itself does not reorder by class — queue
// discipline stays FIFO per SQ, as on the real 2016-era stack — but it
// slices completion accounting per class so the admission-control tier
// above (internal/fio's Multiplexer) and the load ablation can see how
// each class fares as the array approaches saturation.
type QoSClass int

const (
	// ClassLatency is latency-sensitive foreground traffic: the tenant
	// is blocked on the answer (point reads on a user-facing path).
	ClassLatency QoSClass = iota
	// ClassThroughput is bulk foreground traffic: the tenant cares
	// about aggregate bandwidth, not per-I/O tail (scans, bulk loads).
	ClassThroughput
	// ClassBackground is deferrable traffic: compaction, scrubbing,
	// backfill — first to be shed under overload.
	ClassBackground
)

// NumQoSClasses sizes dense per-class arrays. Deliberately an untyped
// constant, not a QoSClass, so it never appears in a switch over the
// enum.
const NumQoSClasses = 3

// qosLabels is indexed by QoSClass.
var qosLabels = [NumQoSClasses]string{"latency", "throughput", "background"}

// String returns a short lower-case label ("latency", ...).
func (c QoSClass) String() string {
	if c < 0 || int(c) >= NumQoSClasses {
		return "invalid"
	}
	return qosLabels[c]
}

// ClassIOStats counts per-class kernel activity.
type ClassIOStats struct {
	Submitted int64 // commands entering the kernel via SubmitIOClass
	Completed int64 // completions delivered with OK status
	Errors    int64 // completions delivered with a non-OK status
}

// SubmitIOClass is SubmitIO with class accounting: it tags the command's
// kernel-side counters with the tenant's QoS class and then follows the
// exact same submit path. Admission control happens above this call (in
// the multiplexer's token buckets); by the time an I/O reaches here it
// has been admitted and is serviced like any other.
func (k *Kernel) SubmitIOClass(submitCPU, ssd int, class QoSClass, cmd nvme.Command, done func(Completion)) {
	k.iostats.Class[class].Submitted++
	k.SubmitIO(submitCPU, ssd, cmd, done)
}

// NoteClassCompletion records the outcome of a class-tagged I/O. The
// caller (the multiplexer's pooled completion callback) invokes it once
// per delivered completion.
func (k *Kernel) NoteClassCompletion(class QoSClass, ok bool) {
	if ok {
		k.iostats.Class[class].Completed++
	} else {
		k.iostats.Class[class].Errors++
	}
}
