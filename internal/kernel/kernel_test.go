package kernel

import (
	"testing"

	"repro/internal/irq"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
)

type rig struct {
	eng *sim.Engine
	sch *sched.Scheduler
	k   *Kernel
}

func newRig(t *testing.T, ncpu, nssd int, boot sched.BootOptions, mode CompletionMode) *rig {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Boot: boot, Seed: 3})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	var ssds []*nvme.Controller
	fw := nvme.DefaultFirmware()
	fw.Kind = nvme.FirmwareNoSMART
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 3, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 3})
	k := New(eng, Config{Sched: sch, IRQ: ic, SSDs: ssds, Mode: mode, Seed: 3})
	return &rig{eng: eng, sch: sch, k: k}
}

func TestSubmitIORoundTrip(t *testing.T) {
	r := newRig(t, 2, 1, sched.BootOptions{}, CompleteInterrupt)
	var comp Completion
	got := false
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 9}, func(c Completion) {
		comp = c
		got = true
	})
	r.eng.RunUntil(sim.Time(sim.Millisecond))
	if !got {
		t.Fatal("completion never arrived")
	}
	lat := comp.Result.CompletedAt.Sub(comp.Result.SubmittedAt)
	if lat < 25*sim.Microsecond || lat > 40*sim.Microsecond {
		t.Fatalf("device-level latency = %v, want ≈30µs", lat)
	}
	if comp.Delivery.SSD != 0 || comp.Delivery.Queue != 1 {
		t.Fatalf("delivery = %+v", comp.Delivery)
	}
	if !comp.Delivery.Remote && comp.WakePenalty != 0 {
		t.Fatal("local delivery carries a penalty")
	}
}

func TestSubmitIOPollingSkipsIRQ(t *testing.T) {
	r := newRig(t, 2, 1, sched.BootOptions{}, CompletePolling)
	var comp Completion
	r.k.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 9}, func(c Completion) { comp = c })
	r.eng.RunUntil(sim.Time(sim.Millisecond))
	if comp.Delivery.Remote || comp.WakePenalty != 0 {
		t.Fatalf("polling completion has irq artifacts: %+v", comp)
	}
	local, remote, _ := r.k.IRQ.Stats()
	if local+remote != 0 {
		t.Fatal("polling mode delivered through the IRQ controller")
	}
}

func TestSubmitIOBadSSDPanics(t *testing.T) {
	r := newRig(t, 1, 1, sched.BootOptions{}, CompleteInterrupt)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.k.SubmitIO(0, 5, nvme.Command{Op: nvme.OpRead}, func(Completion) {})
}

func TestDaemonsRunSessions(t *testing.T) {
	r := newRig(t, 4, 1, sched.BootOptions{}, CompleteInterrupt)
	r.k.StartDaemons(DefaultDaemons())
	r.eng.RunUntil(sim.Time(10 * sim.Second))
	total := int64(0)
	for _, d := range r.k.Daemons() {
		total += d.Sessions()
	}
	if total < 20 {
		t.Fatalf("daemon sessions = %d in 10s, want dozens", total)
	}
	if st := r.sch.TotalStats(); st.BusyTime < 50*sim.Millisecond {
		t.Fatalf("daemons consumed only %v CPU in 10s", st.BusyTime)
	}
}

func TestDaemonsAvoidIsolatedCPUs(t *testing.T) {
	boot := sched.BootOptions{Isolcpus: []int{2, 3}}
	r := newRig(t, 4, 1, boot, CompleteInterrupt)
	r.k.StartDaemons(DefaultDaemons())
	r.eng.RunUntil(sim.Time(20 * sim.Second))
	if b := r.sch.CPU(2).BusyTime() + r.sch.CPU(3).BusyTime(); b != 0 {
		t.Fatalf("daemons ran %v on isolated CPUs", b)
	}
}

func TestDaemonStop(t *testing.T) {
	r := newRig(t, 2, 1, sched.BootOptions{}, CompleteInterrupt)
	r.k.StartDaemons(DefaultDaemons()[:1])
	r.eng.RunUntil(sim.Time(10 * sim.Second))
	d := r.k.Daemons()[0]
	n := d.Sessions()
	if n == 0 {
		t.Fatal("daemon never ran")
	}
	d.Stop()
	r.eng.RunUntil(sim.Time(30 * sim.Second))
	if d.Sessions() > n+1 {
		t.Fatalf("stopped daemon kept running: %d → %d", n, d.Sessions())
	}
}

func TestTickWorkRespectsRCUNocbs(t *testing.T) {
	// Sample many tick costs: CPUs with RCU offloaded must never see the
	// big RCU batches.
	r := newRig(t, 2, 1, sched.BootOptions{RCUNocbs: []int{1}}, CompleteInterrupt)
	var worst0, worst1 sim.Duration
	for i := 0; i < 20000; i++ {
		if d := r.k.tickWork(0); d > worst0 {
			worst0 = d
		}
		if d := r.k.tickWork(1); d > worst1 {
			worst1 = d
		}
	}
	if worst0 < 40*sim.Microsecond {
		t.Fatalf("non-offloaded CPU worst tick = %v, want RCU batches ≥40µs", worst0)
	}
	if worst1 > 40*sim.Microsecond {
		t.Fatalf("rcu_nocbs CPU worst tick = %v, want < 40µs", worst1)
	}
}

func TestRemoteIRQChargesWakePenalty(t *testing.T) {
	r := newRig(t, 4, 1, sched.BootOptions{}, CompleteInterrupt)
	// Force the vector for queue 1 to a remote CPU.
	r.k.IRQ.Pin(0, 1) // first pin to make deterministic...
	// Deliver directly with a scrambled table instead: use a fresh
	// controller with StartBalanced.
	ic := irq.New(r.eng, r.sch, irq.Config{NumSSDs: 1, NumCPUs: 4, Seed: 99, StartBalanced: true})
	k2 := New(r.eng, Config{Sched: r.sch, IRQ: ic, SSDs: r.k.SSDs, Seed: 9})
	var comp Completion
	k2.SubmitIO(1, 0, nvme.Command{Op: nvme.OpRead, LBA: 3}, func(c Completion) { comp = c })
	r.eng.RunUntil(sim.Time(sim.Millisecond))
	if comp.Delivery.Remote && comp.WakePenalty == 0 {
		t.Fatal("remote delivery without wake penalty")
	}
}

func TestDefaultDaemonPopulationShape(t *testing.T) {
	specs := DefaultDaemons()
	if len(specs) < 6 {
		t.Fatalf("only %d daemons; the testbed had many more background processes", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.SleepMean <= 0 || s.BurstMean <= 0 || s.BurstsPerSession <= 0 {
			t.Fatalf("bad spec %+v", s)
		}
		if len(s.Affinity) != 0 {
			t.Fatalf("daemon %s is pinned; the paper's point is that they are not", s.Name)
		}
	}
	// The paper names these two explicitly.
	if !names["llvmpipe"] || !names["lttng-consumerd"] {
		t.Fatal("missing the paper's named daemons")
	}
}
