package kernel

import (
	"repro/internal/irq"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// Coalescing configures NVMe interrupt coalescing (the Set Features
// "Interrupt Coalescing" feature): the controller withholds the MSI-X
// interrupt until Threshold CQEs have accumulated on a queue or Timeout
// has elapsed since the first withheld CQE. The paper worries about the
// "interrupt storm coming from hundreds of SSDs" (Section I); coalescing
// trades completion latency for interrupt rate, and the ablation bench
// quantifies the trade.
type Coalescing struct {
	// Threshold is the batch size that forces an interrupt (0 disables
	// coalescing entirely).
	Threshold int
	// Timeout bounds how long a lone CQE waits (NVMe expresses it in
	// 100 µs increments; any positive duration is accepted here).
	Timeout sim.Duration
}

// Enabled reports whether coalescing is active.
func (c Coalescing) Enabled() bool { return c.Threshold > 1 && c.Timeout > 0 }

// SetCoalescing reconfigures interrupt coalescing (the Set Features
// admin command), (re)building the dense coalescer table when enabling.
// Must not be called with coalesced CQEs pending.
func (k *Kernel) SetCoalescing(c Coalescing) {
	k.coalesce = c
	k.coalescers = nil
	if !c.Enabled() {
		return
	}
	ncpu := k.Sched.NumCPUs()
	k.coalescers = make([]*coalescer, len(k.SSDs)*ncpu)
	for i := range k.coalescers {
		cc := &coalescer{k: k, ssd: i / ncpu, queue: i % ncpu, timer: k.eng.NewTimer()}
		cc.flushFn = cc.flush
		k.coalescers[i] = cc
	}
}

// coalescer buffers CQEs for one (ssd, queue) pair.
type coalescer struct {
	k       *Kernel
	ssd     int
	queue   int
	pending []pendingCQE
	timer   *sim.Timer
	flushFn func() // c.flush bound once: the timer re-arms per batch
}

type pendingCQE struct {
	res  nvme.Result
	done func(Completion)
}

func (c *coalescer) add(res nvme.Result, done func(Completion)) {
	c.pending = append(c.pending, pendingCQE{res: res, done: done})
	if len(c.pending) >= c.k.coalesce.Threshold {
		c.flush()
		return
	}
	if !c.timer.Armed() {
		c.timer.Arm(c.k.coalesce.Timeout, c.flushFn)
	}
}

func (c *coalescer) flush() {
	c.timer.Cancel()
	if len(c.pending) == 0 {
		return
	}
	// Hand the batch to a pooled carrier (its delivery callback is bound
	// once, at the freelist miss) and truncate the pending buffer in
	// place, so both slices reach a steady capacity and the flush path
	// stops allocating.
	d := c.k.getCoalDelivery()
	d.batch = append(d.batch[:0], c.pending...)
	c.pending = c.pending[:0]
	c.k.IRQ.DeliverN(c.ssd, c.queue, len(d.batch), d.onDelivFn)
}

// coalDelivery carries one coalesced CQE batch from DeliverN to its
// per-CQE completion callbacks.
type coalDelivery struct {
	k         *Kernel
	batch     []pendingCQE
	onDelivFn func(irq.Delivery)
}

func (k *Kernel) getCoalDelivery() *coalDelivery {
	if n := len(k.freeCoalDeliv); n > 0 {
		d := k.freeCoalDeliv[n-1]
		k.freeCoalDeliv[n-1] = nil
		k.freeCoalDeliv = k.freeCoalDeliv[:n-1]
		return d
	}
	d := &coalDelivery{k: k}   //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
	d.onDelivFn = d.onDelivery //afalint:allow hotalloc -- stage callback bound once per pooled carrier
	return d
}

// onDelivery fans the batch out to its completion callbacks and recycles
// the carrier. The wake penalty is charged once per interrupt, not per
// CQE.
func (d *coalDelivery) onDelivery(del irq.Delivery) {
	k := d.k
	penalty := k.IRQ.WakePenalty(del)
	now := k.eng.Now()
	for i := range d.batch {
		p := &d.batch[i]
		done := p.done
		p.done = nil
		done(Completion{
			Result:      p.res,
			Delivery:    del,
			WakePenalty: penalty,
			DeliveredAt: now,
			Status:      p.res.Status,
		})
		penalty = 0
	}
	d.batch = d.batch[:0]
	k.freeCoalDeliv = append(k.freeCoalDeliv, d)
}

// coalescerFor returns the coalescer of (ssd, queue) from the dense
// table built at boot.
func (k *Kernel) coalescerFor(ssd, queue int) *coalescer {
	return k.coalescers[ssd*k.Sched.NumCPUs()+queue]
}
