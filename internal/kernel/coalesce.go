package kernel

import (
	"repro/internal/irq"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// Coalescing configures NVMe interrupt coalescing (the Set Features
// "Interrupt Coalescing" feature): the controller withholds the MSI-X
// interrupt until Threshold CQEs have accumulated on a queue or Timeout
// has elapsed since the first withheld CQE. The paper worries about the
// "interrupt storm coming from hundreds of SSDs" (Section I); coalescing
// trades completion latency for interrupt rate, and the ablation bench
// quantifies the trade.
type Coalescing struct {
	// Threshold is the batch size that forces an interrupt (0 disables
	// coalescing entirely).
	Threshold int
	// Timeout bounds how long a lone CQE waits (NVMe expresses it in
	// 100 µs increments; any positive duration is accepted here).
	Timeout sim.Duration
}

// Enabled reports whether coalescing is active.
func (c Coalescing) Enabled() bool { return c.Threshold > 1 && c.Timeout > 0 }

// coalescer buffers CQEs for one (ssd, queue) pair.
type coalescer struct {
	k       *Kernel
	ssd     int
	queue   int
	pending []pendingCQE
	timer   *sim.Timer
	flushFn func() // c.flush bound once: the timer re-arms per batch
}

type pendingCQE struct {
	res  nvme.Result
	done func(Completion)
}

func (c *coalescer) add(res nvme.Result, done func(Completion)) {
	c.pending = append(c.pending, pendingCQE{res: res, done: done})
	if len(c.pending) >= c.k.coalesce.Threshold {
		c.flush()
		return
	}
	if !c.timer.Armed() {
		c.timer.Arm(c.k.coalesce.Timeout, c.flushFn)
	}
}

func (c *coalescer) flush() {
	c.timer.Cancel()
	if len(c.pending) == 0 {
		return
	}
	batch := c.pending
	c.pending = nil
	c.k.IRQ.DeliverN(c.ssd, c.queue, len(batch), func(d irq.Delivery) {
		penalty := c.k.IRQ.WakePenalty(d)
		for _, p := range batch {
			p.done(Completion{
				Result:      p.res,
				Delivery:    d,
				WakePenalty: penalty,
				DeliveredAt: c.k.eng.Now(),
				Status:      p.res.Status,
			})
			// The wake penalty is charged once per interrupt, not per CQE.
			penalty = 0
		}
	})
}

// coalescerFor returns (creating on demand) the coalescer of (ssd, queue).
func (k *Kernel) coalescerFor(ssd, queue int) *coalescer {
	key := ssd*k.Sched.NumCPUs() + queue
	if c, ok := k.coalescers[key]; ok {
		return c
	}
	c := &coalescer{k: k, ssd: ssd, queue: queue, timer: k.eng.NewTimer()}
	c.flushFn = c.flush
	k.coalescers[key] = c
	return c
}
