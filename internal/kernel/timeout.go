// Host-side fault tolerance: per-command timeout, command abort, and
// bounded-exponential-backoff retry — the machinery real NVMe hosts live
// on (nvme_io_timeout / abort / requeue) and the seed repository lacked
// entirely. With the zero policy the submit path is byte-identical to the
// pre-fault-injection behaviour.

package kernel

import (
	"repro/internal/nvme"
	"repro/internal/sim"
)

// TimeoutPolicy configures the host's per-command tolerance machinery.
// The zero value disables it: commands wait forever, statuses pass
// through, nothing is retried (the seed behaviour).
type TimeoutPolicy struct {
	// Timeout is the per-attempt completion deadline (nvme_io_timeout).
	// 0 disables the whole policy.
	Timeout sim.Duration
	// MaxRetries is how many times a timed-out or transiently-failed
	// command is re-issued before the error is surfaced.
	MaxRetries int
	// Backoff is the delay before the first retry; each subsequent retry
	// doubles it, capped at BackoffMax.
	Backoff    sim.Duration
	BackoffMax sim.Duration
	// AbortCost is the admin Abort command round-trip charged after a
	// timeout, before the retry clock starts.
	AbortCost sim.Duration

	// Budget > 0 arms per-drive retry budgets: each drive has a token
	// bucket of this capacity, one token per retry. A drive whose bucket
	// is empty gets no retry — the command surfaces immediately so the
	// RAID layer can reconstruct, instead of a retry storm amplifying
	// load against a dying device.
	Budget int
	// BudgetRefill is the per-token refill interval (lazy integer
	// refill; no drift). 0 with Budget > 0 means the budget never
	// refills.
	BudgetRefill sim.Duration

	// OverloadWatermark > 0 arms overload shedding: when in-flight
	// managed commands exceed it, the kernel reports Overloaded (the
	// RAID layer stops hedging) and widens per-attempt timeouts by
	// OverloadTimeoutScale. Hysteresis: the condition clears only once
	// depth falls below three quarters of the watermark.
	OverloadWatermark int
	// OverloadTimeoutScale multiplies Timeout while overloaded
	// (values < 2 are treated as 2).
	OverloadTimeoutScale int
}

// DefaultTimeoutPolicy returns the calibrated host tolerance knobs: a
// deadline far above the healthy p99.9999 (~1 ms at QD1) but far below a
// firmware stall, so timeouts fire only on genuinely sick devices.
func DefaultTimeoutPolicy() TimeoutPolicy {
	return TimeoutPolicy{
		Timeout:    4 * sim.Millisecond,
		MaxRetries: 5,
		Backoff:    500 * sim.Microsecond,
		BackoffMax: 8 * sim.Millisecond,
		AbortCost:  10 * sim.Microsecond,
	}
}

// Enabled reports whether the policy is armed.
func (p TimeoutPolicy) Enabled() bool { return p.Timeout > 0 }

// DefaultBackoffCap bounds the exponential retry delay when BackoffMax
// is left unset: uncapped doubling of a sim.Duration overflows int64
// after ~60 retries, turning a long retry chain into a negative delay
// (which the engine rejects by panic).
const DefaultBackoffCap = 8 * sim.Millisecond

// backoffFor returns the bounded exponential delay before retry attempt
// (attempt is 0-based: the delay after the first failure is Backoff).
// BackoffMax <= 0 caps at DefaultBackoffCap rather than doubling
// without bound.
func (p TimeoutPolicy) backoffFor(attempt int) sim.Duration {
	max := p.BackoffMax
	if max <= 0 {
		max = DefaultBackoffCap
	}
	d := p.Backoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// IOStats counts the tolerance machinery's activity.
type IOStats struct {
	Timeouts        int64 // per-attempt deadlines that fired
	Aborts          int64 // abort admin commands issued
	Retries         int64 // commands re-issued
	LateCompletions int64 // CQEs that arrived for already-aborted attempts
	Exhausted       int64 // commands surfaced as errors after MaxRetries
	TransientErrors int64 // retryable device errors observed
	MediaErrors     int64 // permanent media errors surfaced

	// Per-op write-path slices of the counters above: the write fault
	// model (degraded writes, rebuild) needs to see how much of the
	// tolerance activity its writes caused.
	WriteTimeouts  int64
	WriteRetries   int64
	WriteExhausted int64

	// Adaptive-tolerance counters (PR 7). RetryBudgetExhausted counts
	// retries denied by an empty per-drive token bucket;
	// ShedToReconstruct counts the commands those denials surfaced early
	// (failing fast to the RAID layer's reconstruction path).
	// OverloadEntered counts transitions past the in-flight watermark.
	RetryBudgetExhausted int64
	ShedToReconstruct    int64
	OverloadEntered      int64

	// Class slices the submit/complete counters by QoS class for
	// open-loop tenant traffic (PR 8). Only I/O submitted through
	// SubmitIOClass is counted here; classless SubmitIO traffic
	// (closed-loop jobs, RAID internal I/O) leaves these untouched.
	Class [NumQoSClasses]ClassIOStats
}

// IOStats returns a copy of the tolerance counters.
func (k *Kernel) IOStats() IOStats { return k.iostats }

// Timeout reports the active policy.
func (k *Kernel) Timeout() TimeoutPolicy { return k.timeout }

// submitManaged runs one command under the timeout policy: each attempt
// races a deadline timer against the completion; timeouts abort and
// retry with bounded exponential backoff; retryable error statuses retry
// without the abort; permanent errors and successes are delivered with
// the retry count. A CQE arriving after its attempt was abandoned (the
// abort racing a late completion) is counted and dropped.
//
// State rides on two pooled carriers instead of per-attempt closures
// (which were the managed path's dominant allocation sites): mngReq holds
// the per-command state for the whole retry chain, attReq the per-attempt
// race between the deadline timer and the CQE.
func (k *Kernel) submitManaged(submitCPU, ssd int, cmd nvme.Command, done func(Completion)) {
	m := k.getMng(submitCPU, ssd, cmd, done)
	k.noteInflight(1)
	m.issue()
}

// mngReq is the per-command managed-path carrier: it lives from SubmitIO
// until the completion (or final failure) is surfaced, across every retry.
type mngReq struct {
	k         *Kernel
	submitCPU int
	ssd       int
	cmd       nvme.Command
	attempt   int
	first     sim.Time
	done      func(Completion)

	retryFn func() // bound once: re-issue after backoff
}

// attReq is the per-attempt carrier racing the deadline timer against the
// device CQE. It is released when its CQE arrives — even a late one after
// the attempt was abandoned — mirroring submitOnce's rule that a carrier
// whose CQE never comes (offline drop) is simply garbage.
type attReq struct {
	k *Kernel
	m *mngReq

	settled  bool       // the race is decided (timeout or completion)
	aborting bool       // timeout fired, abort round-trip still pending
	lateDone bool       // CQE arrived while the abort was pending
	timer    *sim.Event // deadline, canceled on completion

	timeoutFn func()
	abortFn   func()
	onCompFn  func(Completion)
}

func (k *Kernel) getMng(submitCPU, ssd int, cmd nvme.Command, done func(Completion)) *mngReq {
	var m *mngReq
	if n := len(k.freeMng); n > 0 {
		m = k.freeMng[n-1]
		k.freeMng[n-1] = nil
		k.freeMng = k.freeMng[:n-1]
	} else {
		m = &mngReq{k: k}   //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
		m.retryFn = m.issue //afalint:allow hotalloc -- stage callback bound once per pooled carrier
	}
	m.submitCPU = submitCPU
	m.ssd = ssd
	m.cmd = cmd
	m.attempt = 0
	m.first = k.eng.Now()
	m.done = done
	return m
}

func (k *Kernel) putMng(m *mngReq) {
	m.done = nil
	k.freeMng = append(k.freeMng, m)
}

func (k *Kernel) getAtt(m *mngReq) *attReq {
	var a *attReq
	if n := len(k.freeAtt); n > 0 {
		a = k.freeAtt[n-1]
		k.freeAtt[n-1] = nil
		k.freeAtt = k.freeAtt[:n-1]
	} else {
		a = &attReq{k: k}       //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
		a.timeoutFn = a.timeout //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		a.abortFn = a.abort     //afalint:allow hotalloc -- stage callback bound once per pooled carrier
		a.onCompFn = a.onComp   //afalint:allow hotalloc -- stage callback bound once per pooled carrier
	}
	a.m = m
	a.settled = false
	a.aborting = false
	a.lateDone = false
	a.timer = nil
	return a
}

func (k *Kernel) putAtt(a *attReq) {
	a.m = nil
	a.timer = nil
	k.freeAtt = append(k.freeAtt, a)
}

// issue starts one attempt: arm the deadline, ring the doorbell. It is
// also the bound backoff-retry callback (m.retryFn).
func (m *mngReq) issue() {
	k := m.k
	a := k.getAtt(m)
	a.timer = k.eng.After(k.attemptTimeout(), a.timeoutFn)
	k.submitOnce(m.submitCPU, m.ssd, m.cmd, a.onCompFn)
}

// attemptTimeout is the effective per-attempt deadline: the policy's
// Timeout, widened while the kernel is overloaded so timeout/retry
// traffic does not feed the very queue depth that caused it.
func (k *Kernel) attemptTimeout() sim.Duration {
	to := k.timeout.Timeout
	if k.overloaded {
		s := k.timeout.OverloadTimeoutScale
		if s < 2 {
			s = 2
		}
		to *= sim.Duration(s)
	}
	return to
}

// noteInflight tracks managed-command depth and the overload latch:
// entered above the watermark, cleared below three quarters of it.
func (k *Kernel) noteInflight(delta int) {
	k.inflight += delta
	w := k.timeout.OverloadWatermark
	if w <= 0 {
		return
	}
	if !k.overloaded && k.inflight > w {
		k.overloaded = true
		k.iostats.OverloadEntered++
	} else if k.overloaded && k.inflight <= w*3/4 {
		k.overloaded = false
	}
}

// takeRetryToken consumes one retry token from the drive's bucket,
// lazily refilling first (integer arithmetic: the refill instant
// advances by whole tokens, so no drift accumulates).
func (k *Kernel) takeRetryToken(ssd int) bool {
	b := &k.retryBuckets[ssd]
	if r := k.timeout.BudgetRefill; r > 0 {
		if n := int64(k.eng.Now().Sub(b.last) / r); n > 0 {
			b.tokens += n
			if max := int64(k.timeout.Budget); b.tokens > max {
				b.tokens = max
			}
			b.last = b.last.Add(sim.Duration(n) * r)
		}
	}
	if b.tokens <= 0 {
		return false
	}
	b.tokens--
	return true
}

// retryBucket is one drive's retry-budget state.
type retryBucket struct {
	tokens int64
	last   sim.Time // refill clock, advanced by whole tokens only
}

// timeout is the attempt's deadline firing: count, abort, then (after the
// abort round-trip) retry or surface. The aborted attempt's CQE, should it
// still arrive, is dropped in onComp.
func (a *attReq) timeout() {
	if a.settled {
		return
	}
	a.settled = true
	a.aborting = true
	k, m := a.k, a.m
	k.iostats.Timeouts++
	k.iostats.Aborts++
	if m.cmd.Op == nvme.OpWrite {
		k.iostats.WriteTimeouts++
	}
	if k.health != nil {
		k.health.ObserveTimeout(m.ssd)
	}
	k.eng.Schedule(k.timeout.AbortCost, a.abortFn)
}

// abort is the admin Abort round-trip completing. The attempt carrier can
// only be released here if its late CQE already arrived; otherwise it must
// stay out of the freelist until the CQE shows up (or never does).
func (a *attReq) abort() {
	k, m := a.k, a.m
	a.aborting = false
	if a.lateDone {
		k.putAtt(a)
	} else {
		// The device may still post this attempt's CQE much later, after m
		// has moved on (or been recycled): drop the back-pointer now so the
		// straggler only touches per-attempt state.
		a.m = nil
	}
	m.retryOrFail(Completion{
		Result: nvme.Result{
			Cmd: m.cmd, SubmittedAt: m.first, Status: nvme.StatusAborted,
		},
		Status:   nvme.StatusAborted,
		TimedOut: true,
	})
}

// onComp is the attempt's CQE landing on the host.
func (a *attReq) onComp(comp Completion) {
	k := a.k
	if a.settled {
		// The abort raced a completion that was already in flight.
		k.iostats.LateCompletions++
		if a.aborting {
			// The abort round-trip still needs this carrier; it releases it.
			a.lateDone = true
			return
		}
		k.putAtt(a)
		return
	}
	a.settled = true
	k.eng.Cancel(a.timer)
	m := a.m
	k.putAtt(a)
	if k.health != nil {
		// Per-attempt service latency: Result.SubmittedAt is still
		// this attempt's submit instant (overwritten with first only
		// on delivery below), so backoff gaps don't pollute the EWMA.
		k.health.Observe(m.ssd, k.eng.Now().Sub(comp.Result.SubmittedAt), comp.Status)
	}
	if comp.Status.Retryable() {
		k.iostats.TransientErrors++
		m.retryOrFail(comp)
		return
	}
	if comp.Status == nvme.StatusMediaError {
		k.iostats.MediaErrors++
	}
	m.deliver(comp)
}

// deliver surfaces the final outcome and retires the command carrier.
func (m *mngReq) deliver(comp Completion) {
	k := m.k
	// End-to-end latency spans every attempt: report the first
	// submission instant, not the final attempt's.
	comp.Result.SubmittedAt = m.first
	comp.Retries = m.attempt
	k.noteInflight(-1)
	done := m.done
	k.putMng(m)
	done(comp)
}

// retryOrFail re-issues the command after backoff, or surfaces failed
// when attempts are exhausted — or immediately when the drive's retry
// budget is, so a dying drive sheds its retry storm to the RAID layer's
// reconstruction path instead of amplifying load.
func (m *mngReq) retryOrFail(failed Completion) {
	k := m.k
	if m.attempt >= k.timeout.MaxRetries {
		k.iostats.Exhausted++
		if m.cmd.Op == nvme.OpWrite {
			k.iostats.WriteExhausted++
		}
		failed.DeliveredAt = k.eng.Now()
		m.deliver(failed)
		return
	}
	if k.retryBuckets != nil && !k.takeRetryToken(m.ssd) {
		k.iostats.RetryBudgetExhausted++
		k.iostats.ShedToReconstruct++
		failed.DeliveredAt = k.eng.Now()
		m.deliver(failed)
		return
	}
	k.iostats.Retries++
	if m.cmd.Op == nvme.OpWrite {
		k.iostats.WriteRetries++
	}
	if k.health != nil {
		k.health.ObserveRetry(m.ssd)
	}
	backoff := k.timeout.backoffFor(m.attempt)
	m.attempt++
	k.eng.Schedule(backoff, m.retryFn)
}
