// Host-side fault tolerance: per-command timeout, command abort, and
// bounded-exponential-backoff retry — the machinery real NVMe hosts live
// on (nvme_io_timeout / abort / requeue) and the seed repository lacked
// entirely. With the zero policy the submit path is byte-identical to the
// pre-fault-injection behaviour.

package kernel

import (
	"repro/internal/nvme"
	"repro/internal/sim"
)

// TimeoutPolicy configures the host's per-command tolerance machinery.
// The zero value disables it: commands wait forever, statuses pass
// through, nothing is retried (the seed behaviour).
type TimeoutPolicy struct {
	// Timeout is the per-attempt completion deadline (nvme_io_timeout).
	// 0 disables the whole policy.
	Timeout sim.Duration
	// MaxRetries is how many times a timed-out or transiently-failed
	// command is re-issued before the error is surfaced.
	MaxRetries int
	// Backoff is the delay before the first retry; each subsequent retry
	// doubles it, capped at BackoffMax.
	Backoff    sim.Duration
	BackoffMax sim.Duration
	// AbortCost is the admin Abort command round-trip charged after a
	// timeout, before the retry clock starts.
	AbortCost sim.Duration
}

// DefaultTimeoutPolicy returns the calibrated host tolerance knobs: a
// deadline far above the healthy p99.9999 (~1 ms at QD1) but far below a
// firmware stall, so timeouts fire only on genuinely sick devices.
func DefaultTimeoutPolicy() TimeoutPolicy {
	return TimeoutPolicy{
		Timeout:    4 * sim.Millisecond,
		MaxRetries: 5,
		Backoff:    500 * sim.Microsecond,
		BackoffMax: 8 * sim.Millisecond,
		AbortCost:  10 * sim.Microsecond,
	}
}

// Enabled reports whether the policy is armed.
func (p TimeoutPolicy) Enabled() bool { return p.Timeout > 0 }

// backoffFor returns the bounded exponential delay before retry attempt
// (attempt is 0-based: the delay after the first failure is Backoff).
func (p TimeoutPolicy) backoffFor(attempt int) sim.Duration {
	d := p.Backoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	return d
}

// IOStats counts the tolerance machinery's activity.
type IOStats struct {
	Timeouts        int64 // per-attempt deadlines that fired
	Aborts          int64 // abort admin commands issued
	Retries         int64 // commands re-issued
	LateCompletions int64 // CQEs that arrived for already-aborted attempts
	Exhausted       int64 // commands surfaced as errors after MaxRetries
	TransientErrors int64 // retryable device errors observed
	MediaErrors     int64 // permanent media errors surfaced

	// Per-op write-path slices of the counters above: the write fault
	// model (degraded writes, rebuild) needs to see how much of the
	// tolerance activity its writes caused.
	WriteTimeouts  int64
	WriteRetries   int64
	WriteExhausted int64
}

// IOStats returns a copy of the tolerance counters.
func (k *Kernel) IOStats() IOStats { return k.iostats }

// Timeout reports the active policy.
func (k *Kernel) Timeout() TimeoutPolicy { return k.timeout }

// submitManaged runs one command under the timeout policy: each attempt
// races a deadline timer against the completion; timeouts abort and
// retry with bounded exponential backoff; retryable error statuses retry
// without the abort; permanent errors and successes are delivered with
// the retry count. A CQE arriving after its attempt was abandoned (the
// abort racing a late completion) is counted and dropped.
func (k *Kernel) submitManaged(submitCPU, ssd int, cmd nvme.Command, done func(Completion)) {
	first := k.eng.Now()
	k.submitAttempt(submitCPU, ssd, cmd, 0, first, done)
}

func (k *Kernel) submitAttempt(submitCPU, ssd int, cmd nvme.Command, attempt int, first sim.Time, done func(Completion)) {
	settled := false
	var timer *sim.Event
	timer = k.eng.After(k.timeout.Timeout, func() {
		if settled {
			return
		}
		settled = true
		k.iostats.Timeouts++
		k.iostats.Aborts++
		if cmd.Op == nvme.OpWrite {
			k.iostats.WriteTimeouts++
		}
		// Abort admin round-trip, then retry or surface the failure. The
		// aborted attempt's CQE, should it still arrive, is dropped above.
		k.eng.Schedule(k.timeout.AbortCost, func() {
			failed := Completion{
				Result: nvme.Result{
					Cmd: cmd, SubmittedAt: first, Status: nvme.StatusAborted,
				},
				Status:   nvme.StatusAborted,
				TimedOut: true,
			}
			k.retryOrFail(submitCPU, ssd, cmd, attempt, first, failed, done)
		})
	})
	k.submitOnce(submitCPU, ssd, cmd, func(comp Completion) {
		if settled {
			// The abort raced a completion that was already in flight.
			k.iostats.LateCompletions++
			return
		}
		settled = true
		k.eng.Cancel(timer)
		if comp.Status.Retryable() {
			k.iostats.TransientErrors++
			k.retryOrFail(submitCPU, ssd, cmd, attempt, first, comp, done)
			return
		}
		if comp.Status == nvme.StatusMediaError {
			k.iostats.MediaErrors++
		}
		// End-to-end latency spans every attempt: report the first
		// submission instant, not the final attempt's.
		comp.Result.SubmittedAt = first
		comp.Retries = attempt
		done(comp)
	})
}

// retryOrFail re-issues the command after backoff, or surfaces failed
// when attempts are exhausted.
func (k *Kernel) retryOrFail(submitCPU, ssd int, cmd nvme.Command, attempt int, first sim.Time, failed Completion, done func(Completion)) {
	if attempt >= k.timeout.MaxRetries {
		k.iostats.Exhausted++
		if cmd.Op == nvme.OpWrite {
			k.iostats.WriteExhausted++
		}
		failed.Result.SubmittedAt = first
		failed.Retries = attempt
		failed.DeliveredAt = k.eng.Now()
		done(failed)
		return
	}
	k.iostats.Retries++
	if cmd.Op == nvme.OpWrite {
		k.iostats.WriteRetries++
	}
	k.eng.Schedule(k.timeout.backoffFor(attempt), func() {
		k.submitAttempt(submitCPU, ssd, cmd, attempt+1, first, done)
	})
}
