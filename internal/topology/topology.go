// Package topology models the host CPU geometry of the paper's testbed and
// the CPU↔SSD assignment of Fig 5.
//
// The host is a dual-socket Intel Xeon E5-2690 v2: 2 sockets × 10 physical
// cores × 2 hyper-threads = 40 logical CPUs. Logical CPUs 0–19 are the
// first hardware thread of each physical core (socket 0 owns 0–9, socket 1
// owns 10–19) and logical CPUs 20–39 are their hyper-thread siblings, which
// matches how Linux enumerated the testbed: the paper reserves cpu(0)–cpu(3)
// and cpu(20)–cpu(23) — four physical cores and their siblings — for
// "other system tasks" and dedicates the remaining 32 logical CPUs to FIO.
package topology

import "fmt"

// CPUInfo describes one logical CPU.
type CPUInfo struct {
	ID       int
	Socket   int
	PhysCore int  // global physical core index, 0..Sockets*CoresPerSocket-1
	Sibling  int  // logical ID of the hyper-thread sibling
	Reserved bool // reserved for background system tasks (not FIO)
}

// Host describes the logical-CPU layout of a machine.
type Host struct {
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	// AFASocket is the socket wired to the AFA's PCIe uplink (the paper's
	// "CPU2", i.e. the second socket).
	AFASocket int
	cpus      []CPUInfo
}

// XeonE52690v2 returns the paper's host: 2 sockets × 10 cores × 2 HT,
// with cpu(0..3) and cpu(20..23) reserved, and socket 1 wired to the AFA.
func XeonE52690v2() *Host {
	h := &Host{Sockets: 2, CoresPerSocket: 10, ThreadsPerCore: 2, AFASocket: 1}
	n := h.NumLogical()
	half := n / 2
	h.cpus = make([]CPUInfo, n)
	for id := 0; id < n; id++ {
		phys := id % half
		sib := id + half
		if id >= half {
			sib = id - half
		}
		h.cpus[id] = CPUInfo{
			ID:       id,
			Socket:   phys / h.CoresPerSocket,
			PhysCore: phys,
			Sibling:  sib,
			Reserved: (id%half < 4), // cpu 0-3 and 20-23
		}
	}
	return h
}

// NumLogical reports the number of logical CPUs.
func (h *Host) NumLogical() int { return h.Sockets * h.CoresPerSocket * h.ThreadsPerCore }

// NumPhysical reports the number of physical cores.
func (h *Host) NumPhysical() int { return h.Sockets * h.CoresPerSocket }

// CPU returns the description of logical CPU id.
func (h *Host) CPU(id int) CPUInfo {
	return h.cpus[id]
}

// ReservedCPUs lists the logical CPUs kept for background system tasks.
func (h *Host) ReservedCPUs() []int {
	var out []int
	for _, c := range h.cpus {
		if c.Reserved {
			out = append(out, c.ID)
		}
	}
	return out
}

// WorkloadCPUs lists the logical CPUs available for FIO threads
// (cpu 4–19 and 24–39 on the paper's host).
func (h *Host) WorkloadCPUs() []int {
	var out []int
	for _, c := range h.cpus {
		if !c.Reserved {
			out = append(out, c.ID)
		}
	}
	return out
}

// Geometry is a CPU↔SSD assignment: which logical CPU each SSD's FIO
// thread is pinned to, per Fig 5 and the Table II variants.
type Geometry struct {
	Name string
	// ThreadCPU[n] is the logical CPU that runs the FIO thread of nvme(n).
	// A value of -1 means the SSD is not exercised in this geometry/run.
	ThreadCPU []int
	// SSDsPerPhysCore and FIOPerLogical document the Table II rows.
	SSDsPerPhysCore int
	FIOPerLogical   int
}

// NumActive reports how many SSDs have a thread assigned.
func (g *Geometry) NumActive() int {
	n := 0
	for _, c := range g.ThreadCPU {
		if c >= 0 {
			n++
		}
	}
	return n
}

// ActiveSSDs lists the SSD indices with a thread assigned.
func (g *Geometry) ActiveSSDs() []int {
	var out []int
	for i, c := range g.ThreadCPU {
		if c >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// workloadCPUOrder reproduces the paper's enumeration of FIO CPUs:
// cpu(4)..cpu(19) then cpu(24)..cpu(39).
func workloadCPUOrder(h *Host) []int {
	return h.WorkloadCPUs() // already in ascending ID order: 4..19, 24..39
}

// DefaultGeometry is Fig 5 / Table II row (a): 64 SSDs, two FIO threads per
// logical CPU, 4 SSDs per physical core. nvme(n) and nvme(n+32) share
// cpu(4+n) for n in 0..15 and cpu(24+n-16) for n in 16..31.
func DefaultGeometry(h *Host, numSSDs int) *Geometry {
	cpus := workloadCPUOrder(h)
	g := &Geometry{
		Name:            "fig13a-4ssd-per-core",
		ThreadCPU:       make([]int, numSSDs),
		SSDsPerPhysCore: 4,
		FIOPerLogical:   2,
	}
	for n := 0; n < numSSDs; n++ {
		g.ThreadCPU[n] = cpus[n%len(cpus)]
	}
	return g
}

// HalfGeometry is Table II row (b): one FIO thread per logical CPU,
// 2 SSDs per physical core; covering all 64 SSDs takes 2 runs over
// disjoint SSD sets. run is 0-based.
func HalfGeometry(h *Host, numSSDs, run int) *Geometry {
	cpus := workloadCPUOrder(h)
	g := &Geometry{
		Name:            fmt.Sprintf("fig13b-2ssd-per-core-run%d", run),
		ThreadCPU:       make([]int, numSSDs),
		SSDsPerPhysCore: 2,
		FIOPerLogical:   1,
	}
	for n := range g.ThreadCPU {
		g.ThreadCPU[n] = -1
	}
	for i, cpu := range cpus {
		n := run*len(cpus) + i
		if n < numSSDs {
			g.ThreadCPU[n] = cpu
		}
	}
	return g
}

// QuarterGeometry is Table II row (c): one FIO thread per logical CPU but
// only the first hardware thread of each workload physical core is used, so
// 1 SSD per physical core; 4 runs cover 64 SSDs. run is 0-based.
func QuarterGeometry(h *Host, numSSDs, run int) *Geometry {
	var cpus []int
	for _, id := range workloadCPUOrder(h) {
		if h.CPU(id).Sibling > id { // first HT thread only (4..19)
			cpus = append(cpus, id)
		}
	}
	g := &Geometry{
		Name:            fmt.Sprintf("fig13c-1ssd-per-core-run%d", run),
		ThreadCPU:       make([]int, numSSDs),
		SSDsPerPhysCore: 1,
		FIOPerLogical:   1,
	}
	for n := range g.ThreadCPU {
		g.ThreadCPU[n] = -1
	}
	for i, cpu := range cpus {
		n := run*len(cpus) + i
		if n < numSSDs {
			g.ThreadCPU[n] = cpu
		}
	}
	return g
}

// SoloGeometry is Table II row (d): a single FIO thread in the entire
// system; 64 runs cover 64 SSDs. run selects the SSD.
func SoloGeometry(h *Host, numSSDs, run int) *Geometry {
	cpus := workloadCPUOrder(h)
	g := &Geometry{
		Name:            fmt.Sprintf("fig13d-solo-run%d", run),
		ThreadCPU:       make([]int, numSSDs),
		SSDsPerPhysCore: 0, // "1 FIO thread on the entire system"
		FIOPerLogical:   1,
	}
	for n := range g.ThreadCPU {
		g.ThreadCPU[n] = -1
	}
	if run < numSSDs {
		g.ThreadCPU[run] = cpus[run%len(cpus)]
	}
	return g
}
