package topology

import "testing"

func TestXeonLayout(t *testing.T) {
	h := XeonE52690v2()
	if h.NumLogical() != 40 {
		t.Fatalf("NumLogical = %d, want 40", h.NumLogical())
	}
	if h.NumPhysical() != 20 {
		t.Fatalf("NumPhysical = %d, want 20", h.NumPhysical())
	}
	if h.AFASocket != 1 {
		t.Fatalf("AFASocket = %d, want 1 (the paper's CPU2)", h.AFASocket)
	}
}

func TestSiblingsAreMutual(t *testing.T) {
	h := XeonE52690v2()
	for id := 0; id < h.NumLogical(); id++ {
		c := h.CPU(id)
		sib := h.CPU(c.Sibling)
		if sib.Sibling != id {
			t.Fatalf("sibling of %d is %d but its sibling is %d", id, c.Sibling, sib.Sibling)
		}
		if sib.PhysCore != c.PhysCore {
			t.Fatalf("siblings %d/%d on different physical cores", id, c.Sibling)
		}
		if sib.Socket != c.Socket {
			t.Fatalf("siblings %d/%d on different sockets", id, c.Sibling)
		}
	}
	if h.CPU(4).Sibling != 24 {
		t.Fatalf("cpu(4) sibling = %d, want 24", h.CPU(4).Sibling)
	}
}

func TestSocketAssignment(t *testing.T) {
	h := XeonE52690v2()
	if h.CPU(0).Socket != 0 || h.CPU(9).Socket != 0 {
		t.Fatal("cpu 0-9 must be socket 0")
	}
	if h.CPU(10).Socket != 1 || h.CPU(19).Socket != 1 {
		t.Fatal("cpu 10-19 must be socket 1")
	}
	if h.CPU(30).Socket != 1 {
		t.Fatal("cpu 30 (sibling of 10) must be socket 1")
	}
}

func TestReservedCPUsMatchPaper(t *testing.T) {
	h := XeonE52690v2()
	want := map[int]bool{0: true, 1: true, 2: true, 3: true, 20: true, 21: true, 22: true, 23: true}
	res := h.ReservedCPUs()
	if len(res) != 8 {
		t.Fatalf("reserved = %v, want 8 CPUs", res)
	}
	for _, id := range res {
		if !want[id] {
			t.Fatalf("cpu(%d) reserved; paper reserves 0-3 and 20-23", id)
		}
	}
	if len(h.WorkloadCPUs()) != 32 {
		t.Fatalf("workload CPUs = %d, want 32", len(h.WorkloadCPUs()))
	}
}

func TestDefaultGeometryMatchesFig5(t *testing.T) {
	h := XeonE52690v2()
	g := DefaultGeometry(h, 64)
	// Paper: nvme(0) and nvme(32) both on cpu(4); nvme(31) and nvme(63) on cpu(39).
	if g.ThreadCPU[0] != 4 || g.ThreadCPU[32] != 4 {
		t.Fatalf("nvme0→cpu%d nvme32→cpu%d, want both cpu4", g.ThreadCPU[0], g.ThreadCPU[32])
	}
	if g.ThreadCPU[31] != 39 || g.ThreadCPU[63] != 39 {
		t.Fatalf("nvme31→cpu%d nvme63→cpu%d, want both cpu39", g.ThreadCPU[31], g.ThreadCPU[63])
	}
	if g.ThreadCPU[15] != 19 {
		t.Fatalf("nvme15→cpu%d, want cpu19", g.ThreadCPU[15])
	}
	if g.ThreadCPU[16] != 24 {
		t.Fatalf("nvme16→cpu%d, want cpu24", g.ThreadCPU[16])
	}
	if g.NumActive() != 64 {
		t.Fatalf("active = %d", g.NumActive())
	}
	// No FIO thread may land on a reserved CPU.
	for n, cpu := range g.ThreadCPU {
		if h.CPU(cpu).Reserved {
			t.Fatalf("nvme(%d) pinned to reserved cpu(%d)", n, cpu)
		}
	}
}

func TestDefaultGeometryTwoThreadsPerLogical(t *testing.T) {
	g := DefaultGeometry(XeonE52690v2(), 64)
	perCPU := map[int]int{}
	for _, cpu := range g.ThreadCPU {
		perCPU[cpu]++
	}
	if len(perCPU) != 32 {
		t.Fatalf("uses %d CPUs, want 32", len(perCPU))
	}
	for cpu, n := range perCPU {
		if n != 2 {
			t.Fatalf("cpu(%d) hosts %d threads, want 2", cpu, n)
		}
	}
}

func TestHalfGeometryRunsAreDisjointAndCover(t *testing.T) {
	h := XeonE52690v2()
	seen := map[int]bool{}
	for run := 0; run < 2; run++ {
		g := HalfGeometry(h, 64, run)
		if g.NumActive() != 32 {
			t.Fatalf("run %d active = %d, want 32", run, g.NumActive())
		}
		perCPU := map[int]int{}
		for _, ssd := range g.ActiveSSDs() {
			if seen[ssd] {
				t.Fatalf("ssd %d appears in two runs", ssd)
			}
			seen[ssd] = true
			perCPU[g.ThreadCPU[ssd]]++
		}
		for cpu, n := range perCPU {
			if n != 1 {
				t.Fatalf("run %d: cpu(%d) hosts %d threads, want 1", run, cpu, n)
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("two runs cover %d SSDs, want 64", len(seen))
	}
}

func TestQuarterGeometryOneSSDPerPhysCore(t *testing.T) {
	h := XeonE52690v2()
	seen := map[int]bool{}
	for run := 0; run < 4; run++ {
		g := QuarterGeometry(h, 64, run)
		if g.NumActive() != 16 {
			t.Fatalf("run %d active = %d, want 16", run, g.NumActive())
		}
		physUsed := map[int]int{}
		for _, ssd := range g.ActiveSSDs() {
			seen[ssd] = true
			cpu := g.ThreadCPU[ssd]
			physUsed[h.CPU(cpu).PhysCore]++
			// Must be the first HT thread (IDs < 20).
			if cpu >= 20 {
				t.Fatalf("run %d: ssd %d on HT sibling cpu(%d)", run, ssd, cpu)
			}
		}
		for phys, n := range physUsed {
			if n != 1 {
				t.Fatalf("run %d: phys core %d hosts %d SSDs, want 1", run, phys, n)
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("four runs cover %d SSDs, want 64", len(seen))
	}
}

func TestSoloGeometry(t *testing.T) {
	h := XeonE52690v2()
	seen := map[int]bool{}
	for run := 0; run < 64; run++ {
		g := SoloGeometry(h, 64, run)
		if g.NumActive() != 1 {
			t.Fatalf("run %d active = %d, want 1", run, g.NumActive())
		}
		ssd := g.ActiveSSDs()[0]
		if ssd != run {
			t.Fatalf("run %d exercises ssd %d", run, ssd)
		}
		seen[ssd] = true
		if h.CPU(g.ThreadCPU[ssd]).Reserved {
			t.Fatalf("solo thread on reserved CPU")
		}
	}
	if len(seen) != 64 {
		t.Fatalf("64 runs cover %d SSDs", len(seen))
	}
}

func TestGeometryTableIINumbers(t *testing.T) {
	h := XeonE52690v2()
	cases := []struct {
		g          *Geometry
		perCore    int
		perLogical int
	}{
		{DefaultGeometry(h, 64), 4, 2},
		{HalfGeometry(h, 64, 0), 2, 1},
		{QuarterGeometry(h, 64, 0), 1, 1},
	}
	for _, c := range cases {
		if c.g.SSDsPerPhysCore != c.perCore || c.g.FIOPerLogical != c.perLogical {
			t.Fatalf("%s: per-core=%d per-logical=%d, want %d/%d",
				c.g.Name, c.g.SSDsPerPhysCore, c.g.FIOPerLogical, c.perCore, c.perLogical)
		}
	}
}
