package health

import (
	"testing"

	"repro/internal/nvme"
	"repro/internal/sim"
)

func feedClean(t *Tracker, ssd int, n int, lat sim.Duration) {
	for i := 0; i < n; i++ {
		t.Observe(ssd, lat, nvme.StatusSuccess)
	}
}

func TestWarmupGatesDeadline(t *testing.T) {
	tr := NewTracker(Config{}, 2)
	cfg := tr.Config()
	feedClean(tr, 0, int(cfg.MinSamples)-1, 100*sim.Microsecond)
	if d := tr.HedgeDeadline(0); d != 0 {
		t.Fatalf("deadline published before MinSamples: %v", d)
	}
	feedClean(tr, 0, int(cfg.Window), 100*sim.Microsecond)
	if d := tr.HedgeDeadline(0); d == 0 {
		t.Fatal("deadline still unpublished after warmup + a full window")
	}
	// The untouched drive stays cold.
	if d := tr.HedgeDeadline(1); d != 0 {
		t.Fatalf("untouched drive published a deadline: %v", d)
	}
}

func TestPerDriveDeadlinesTrackOwnLatency(t *testing.T) {
	tr := NewTracker(Config{}, 2)
	n := int(tr.Config().MinSamples + tr.Config().Window)
	feedClean(tr, 0, n, 50*sim.Microsecond)
	feedClean(tr, 1, n, 800*sim.Microsecond)
	fast, slow := tr.HedgeDeadline(0), tr.HedgeDeadline(1)
	if fast == 0 || slow == 0 {
		t.Fatalf("deadlines unpublished: fast=%v slow=%v", fast, slow)
	}
	if fast >= slow {
		t.Fatalf("fast drive's deadline %v not below slow drive's %v", fast, slow)
	}
	if fast < tr.Config().HedgeFloor {
		t.Fatalf("deadline %v below floor %v", fast, tr.Config().HedgeFloor)
	}
	// A steady 800 µs drive should be hedged near its own baseline, far
	// above the floor a one-size-fits-all delay would impose.
	if slow < 800*sim.Microsecond {
		t.Fatalf("slow drive's deadline %v below its own baseline", slow)
	}
	if slow > tr.Config().HedgeCap {
		t.Fatalf("deadline %v above cap %v", slow, tr.Config().HedgeCap)
	}
}

func TestSpikesFlagStormWithoutPoisoningBaseline(t *testing.T) {
	tr := NewTracker(Config{}, 1)
	cfg := tr.Config()
	feedClean(tr, 0, int(cfg.MinSamples+cfg.Window), 100*sim.Microsecond)
	base := tr.Snapshot(0).SRTT
	// A GC storm: a burst of 20× samples.
	for i := int64(0); i < cfg.StormSpikes; i++ {
		tr.Observe(0, 2*sim.Millisecond, nvme.StatusSuccess)
	}
	s := tr.Snapshot(0)
	if !s.Storming {
		t.Fatalf("storm not flagged after %d spikes", cfg.StormSpikes)
	}
	if s.Spikes != cfg.StormSpikes {
		t.Fatalf("spikes = %d, want %d", s.Spikes, cfg.StormSpikes)
	}
	// Clamped updates: the baseline may drift up but not anywhere near
	// the raw spike magnitude.
	if s.SRTT > 4*base {
		t.Fatalf("srtt %v poisoned by spikes (baseline %v)", s.SRTT, base)
	}
	if s.Suspicion == 0 {
		t.Fatal("storm raised no suspicion")
	}
}

func TestTimeoutsFlagStallAndPullDeadlineToFloor(t *testing.T) {
	tr := NewTracker(Config{}, 1)
	cfg := tr.Config()
	feedClean(tr, 0, int(cfg.MinSamples+cfg.Window), 400*sim.Microsecond)
	healthy := tr.HedgeDeadline(0)
	for i := int64(0); i < cfg.StallTimeouts; i++ {
		tr.ObserveTimeout(0)
	}
	s := tr.Snapshot(0)
	if !s.Stalled {
		t.Fatalf("stall not flagged after %d timeouts", cfg.StallTimeouts)
	}
	if !tr.Suspect(0) {
		t.Fatalf("suspicion %d below the suspect threshold after timeouts", s.Suspicion)
	}
	if d := tr.HedgeDeadline(0); d >= healthy {
		t.Fatalf("deadline %v did not drop from healthy %v under suspicion", d, healthy)
	}
	// Full suspicion pins the deadline at the floor.
	for i := 0; i < 10; i++ {
		tr.ObserveTimeout(0)
	}
	if d := tr.HedgeDeadline(0); d != cfg.HedgeFloor {
		t.Fatalf("fully-suspect deadline = %v, want floor %v", d, cfg.HedgeFloor)
	}
}

func TestSuspicionDecaysGraduallyAcrossCleanWindows(t *testing.T) {
	tr := NewTracker(Config{}, 1)
	cfg := tr.Config()
	feedClean(tr, 0, int(cfg.MinSamples+cfg.Window), 200*sim.Microsecond)
	for i := 0; i < 5; i++ {
		tr.ObserveTimeout(0)
	}
	if got := tr.Suspicion(0); got != 1000 {
		t.Fatalf("suspicion = %d, want saturated 1000", got)
	}
	// Clean service must not restore trust at once. Two windows' worth
	// guarantees at least one fully-clean window closes (the first close
	// after the timeouts still has them in its counters)...
	feedClean(tr, 0, 2*int(cfg.Window), 200*sim.Microsecond)
	after1 := tr.Suspicion(0)
	if after1 == 0 || after1 >= 1000 {
		t.Fatalf("clean windows left suspicion at %d, want partial decay", after1)
	}
	if !tr.Suspect(0) {
		t.Fatal("drive fully trusted after only two clean windows")
	}
	// ...but sustained clean service re-earns it, monotonically.
	prev := after1
	for w := 0; w < 25; w++ {
		feedClean(tr, 0, int(cfg.Window), 200*sim.Microsecond)
		cur := tr.Suspicion(0)
		if cur > prev {
			t.Fatalf("suspicion rose (%d -> %d) across a clean window", prev, cur)
		}
		prev = cur
	}
	if prev != 0 {
		t.Fatalf("suspicion = %d after sustained clean service, want 0", prev)
	}
	if tr.Suspect(0) {
		t.Fatal("drive still suspect after sustained clean service")
	}
}

func TestErrorsRaiseSuspicion(t *testing.T) {
	tr := NewTracker(Config{}, 1)
	cfg := tr.Config()
	feedClean(tr, 0, int(cfg.MinSamples+cfg.Window), 100*sim.Microsecond)
	tr.Observe(0, 100*sim.Microsecond, nvme.StatusTransient)
	tr.Observe(0, 100*sim.Microsecond, nvme.StatusMediaError)
	s := tr.Snapshot(0)
	if s.Errors != 2 {
		t.Fatalf("errors = %d, want 2", s.Errors)
	}
	if s.Suspicion == 0 {
		t.Fatal("errors raised no suspicion")
	}
}

func TestRetryAccounting(t *testing.T) {
	tr := NewTracker(Config{}, 1)
	tr.ObserveRetry(0)
	tr.ObserveRetry(0)
	if got := tr.Snapshot(0).Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestDeterministicReplay: identical observation sequences produce
// identical state — the property the byte-identical-reports contract
// needs from this package.
func TestDeterministicReplay(t *testing.T) {
	run := func() []DriveHealth {
		tr := NewTracker(Config{}, 3)
		lat := []sim.Duration{80 * sim.Microsecond, 120 * sim.Microsecond, 3 * sim.Millisecond}
		for i := 0; i < 1000; i++ {
			ssd := i % 3
			st := nvme.StatusSuccess
			if i%97 == 0 {
				st = nvme.StatusTransient
			}
			tr.Observe(ssd, lat[i%len(lat)], st)
			if i%211 == 0 {
				tr.ObserveTimeout(ssd)
				tr.ObserveRetry(ssd)
			}
		}
		out := make([]DriveHealth, 3)
		for i := range out {
			out[i] = tr.Snapshot(i)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drive %d state diverged across identical replays:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	got := Config{}.withDefaults()
	if got != DefaultConfig() {
		t.Fatalf("zero config did not fill defaults: %+v", got)
	}
	// Partial overrides survive.
	custom := Config{HedgeFloor: 1 * sim.Microsecond, Window: 7}.withDefaults()
	if custom.HedgeFloor != 1*sim.Microsecond || custom.Window != 7 {
		t.Fatalf("overrides lost: %+v", custom)
	}
	if custom.HedgeCap != DefaultConfig().HedgeCap {
		t.Fatalf("unset field not defaulted: %+v", custom)
	}
}
