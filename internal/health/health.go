// Package health is the per-SSD health tracker behind the adaptive
// tolerance control plane. The kernel feeds it one observation per
// managed-command outcome (completion latency + status, or a timeout),
// and it maintains, per drive:
//
//   - a smoothed completion-latency baseline (integer Jacobson/Karels
//     srtt + rttvar, the TCP RTO estimator — cheap, float-free, and
//     deterministic);
//   - windowed spike/timeout/error counts that flag GC storms (a burst
//     of latency spikes) and firmware stalls (a burst of timeouts);
//   - a suspicion score in permille that rises immediately on bad events
//     and decays multiplicatively only across clean windows, so a
//     recovering drive re-earns trust gradually (hysteresis);
//   - a published per-drive hedge deadline, recalibrated on a
//     fixed-observation-count cadence: srtt + 4·rttvar clamped into
//     [HedgeFloor, HedgeCap], scaled toward the floor as suspicion
//     rises so the RAID layer hedges a sick drive sooner.
//
// The tracker is sim-core: no wall clock, no randomness, no maps, no
// goroutines. Its state is a pure function of the observation sequence,
// which the determinism tests rely on. All per-observation work is
// integer arithmetic on dense slices, keeping it clean under the
// performance contract (it sits on the kernel's completion hot path).
package health

import (
	"repro/internal/nvme"
	"repro/internal/sim"
)

// Config tunes the tracker. The zero value of any field selects the
// default; see DefaultConfig.
type Config struct {
	// HedgeFloor is the lowest deadline the tracker will ever publish: a
	// fully-suspect drive is hedged this quickly. It also floors the
	// healthy deadline so a very fast drive cannot drag hedges into the
	// noise.
	HedgeFloor sim.Duration
	// HedgeCap bounds the published deadline from above, so a drive with
	// a huge latency baseline (a slow bin mid-storm) still gets hedged
	// well before the kernel timeout ladder.
	HedgeCap sim.Duration
	// MinSamples is how many latency samples a drive needs before its
	// deadline is published; until then HedgeDeadline returns 0 and
	// callers fall back to their static setting.
	MinSamples int64
	// SpikeFactor classifies a sample as a spike when it exceeds
	// SpikeFactor × srtt. Spike samples are counted but excluded from
	// the EWMA, so a GC storm cannot inflate the baseline it is judged
	// against (a storm that fed the estimator would stop registering as
	// one within a handful of samples).
	SpikeFactor int64
	// Window is the calibration cadence in observations: every Window
	// observations the deadline is republished, storm/stall flags are
	// re-evaluated, and a clean window decays suspicion by a quarter.
	Window int64
	// StormSpikes within one window flags a GC storm.
	StormSpikes int64
	// StallTimeouts within one window flags a firmware stall.
	StallTimeouts int64
}

// DefaultConfig returns the calibrated tracker knobs. The floor sits at
// half the static hedge floor (raid.DefaultTolerance's 300 µs): a drive
// we positively distrust is worth hedging earlier than a cold one.
func DefaultConfig() Config {
	return Config{
		HedgeFloor:    150 * sim.Microsecond,
		HedgeCap:      4 * sim.Millisecond,
		MinSamples:    64,
		SpikeFactor:   4,
		Window:        128,
		StormSpikes:   8,
		StallTimeouts: 2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HedgeFloor == 0 {
		c.HedgeFloor = d.HedgeFloor
	}
	if c.HedgeCap == 0 {
		c.HedgeCap = d.HedgeCap
	}
	if c.MinSamples == 0 {
		c.MinSamples = d.MinSamples
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = d.SpikeFactor
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.StormSpikes == 0 {
		c.StormSpikes = d.StormSpikes
	}
	if c.StallTimeouts == 0 {
		c.StallTimeouts = d.StallTimeouts
	}
	return c
}

// Suspicion is expressed in permille of certain-sick.
const (
	maxSuspicion = 1000
	// suspectAt is the Suspect() threshold.
	suspectAt = 500
	// Immediate suspicion bumps per bad event. A timeout is near-certain
	// evidence; an error or spike is weaker.
	timeoutSuspicion = 400
	errorSuspicion   = 100
	spikeSuspicion   = 50
)

// drive is one SSD's tracked state. Dense struct-of-counters, indexed
// by SSD id — no maps on the observation path.
type drive struct {
	// Jacobson/Karels estimator state, in nanoseconds.
	srtt    int64
	rttvar  int64
	samples int64

	// deadline is the published hedge deadline (0 until warm).
	deadline sim.Duration
	// suspicion in [0, maxSuspicion].
	suspicion int64

	// Current-window counters, reset at each calibration.
	wObs      int64
	wSpikes   int64
	wTimeouts int64
	wErrors   int64

	// Running totals for reporting.
	spikes      int64
	timeouts    int64
	retries     int64
	transients  int64
	mediaErrors int64

	storming bool
	stalled  bool
}

// Tracker tracks the health of a fleet of drives.
type Tracker struct {
	cfg    Config
	drives []drive
}

// NewTracker returns a tracker for n drives.
func NewTracker(cfg Config, n int) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), drives: make([]drive, n)}
}

// Config reports the active (default-filled) configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Observe feeds one completed command's end-to-end attempt latency and
// final status. Called from the kernel's completion path for every
// managed command that actually completed (timeouts go through
// ObserveTimeout instead — there is no latency to observe).
func (t *Tracker) Observe(ssd int, lat sim.Duration, status nvme.Status) {
	d := &t.drives[ssd]
	switch status {
	case nvme.StatusSuccess:
		t.observeLatency(d, int64(lat))
	case nvme.StatusTransient:
		d.transients++
		t.observeError(d)
	case nvme.StatusMediaError:
		d.mediaErrors++
		t.observeError(d)
	case nvme.StatusAborted:
		// Host-side abort outcomes arrive via ObserveTimeout; a device
		// returning aborted is treated like any other error.
		t.observeError(d)
	default:
		t.observeError(d)
	}
	d.wObs++
	if d.wObs >= t.cfg.Window {
		t.calibrate(d)
	}
}

// ObserveTimeout records a per-attempt deadline that fired against the
// drive: the strongest single piece of badness evidence.
func (t *Tracker) ObserveTimeout(ssd int) {
	d := &t.drives[ssd]
	d.timeouts++
	d.wTimeouts++
	if d.wTimeouts >= t.cfg.StallTimeouts {
		d.stalled = true
	}
	t.raiseSuspicion(d, timeoutSuspicion)
	d.wObs++
	if d.wObs >= t.cfg.Window {
		t.calibrate(d)
	}
}

// ObserveRetry records a granted retry against the drive (budget
// accounting lives in the kernel; this is purely reporting state).
func (t *Tracker) ObserveRetry(ssd int) {
	t.drives[ssd].retries++
}

// observeLatency runs the Jacobson/Karels update on one successful
// completion, classifying and clamping spikes first.
func (t *Tracker) observeLatency(d *drive, l int64) {
	if l < 1 {
		l = 1
	}
	if d.samples == 0 {
		d.srtt = l
		d.rttvar = l / 2
		d.samples = 1
		return
	}
	// Spike detection needs a settled baseline; the first few samples
	// just feed the estimator.
	if d.samples >= 8 && l > t.cfg.SpikeFactor*d.srtt {
		d.spikes++
		d.wSpikes++
		if d.wSpikes >= t.cfg.StormSpikes {
			d.storming = true
		}
		t.raiseSuspicion(d, spikeSuspicion)
		// The spike is recorded but kept out of the estimator: a storm
		// must not inflate the baseline it is judged against. Sustained
		// sub-spike drift (a ×2-3 slowdown) is still learned normally,
		// and a drive that is slow from boot seeds its own baseline.
		return
	}
	err := l - d.srtt
	d.srtt += err / 8
	if err < 0 {
		err = -err
	}
	d.rttvar += (err - d.rttvar) / 4
	d.samples++
}

// observeError counts a non-success completion in the window and bumps
// suspicion immediately.
func (t *Tracker) observeError(d *drive) {
	d.wErrors++
	t.raiseSuspicion(d, errorSuspicion)
}

// raiseSuspicion bumps suspicion (clamped) and republishes the deadline
// at once — distrust must not wait for the window boundary.
func (t *Tracker) raiseSuspicion(d *drive, by int64) {
	d.suspicion += by
	if d.suspicion > maxSuspicion {
		d.suspicion = maxSuspicion
	}
	t.publish(d)
}

// calibrate closes an observation window: storm/stall flags are
// re-evaluated, a clean window decays suspicion by a quarter (the
// gradual re-earning of trust), and the deadline is republished.
func (t *Tracker) calibrate(d *drive) {
	clean := d.wSpikes == 0 && d.wTimeouts == 0 && d.wErrors == 0
	if d.wSpikes == 0 {
		d.storming = false
	}
	if d.wTimeouts == 0 {
		d.stalled = false
	}
	if clean {
		d.suspicion -= d.suspicion / 4
		if d.suspicion < 4 {
			d.suspicion = 0
		}
	}
	d.wObs = 0
	d.wSpikes = 0
	d.wTimeouts = 0
	d.wErrors = 0
	t.publish(d)
}

// publish recomputes the drive's hedge deadline: the RTO-style bound
// srtt + 4·rttvar clamped into [HedgeFloor, HedgeCap], then pulled
// linearly toward the floor as suspicion rises.
func (t *Tracker) publish(d *drive) {
	if d.samples < t.cfg.MinSamples {
		return
	}
	base := d.srtt + 4*d.rttvar
	floor := int64(t.cfg.HedgeFloor)
	if base < floor {
		base = floor
	}
	if cap := int64(t.cfg.HedgeCap); base > cap {
		base = cap
	}
	eff := floor + (base-floor)*(maxSuspicion-d.suspicion)/maxSuspicion
	d.deadline = sim.Duration(eff)
}

// HedgeDeadline reports the drive's published hedge deadline, or 0
// while the drive is still warming up (fewer than MinSamples latency
// samples) — callers fall back to their static delay.
func (t *Tracker) HedgeDeadline(ssd int) sim.Duration {
	return t.drives[ssd].deadline
}

// Suspicion reports the drive's suspicion score in permille.
func (t *Tracker) Suspicion(ssd int) int64 { return t.drives[ssd].suspicion }

// Suspect reports whether the drive is past the suspicion threshold.
func (t *Tracker) Suspect(ssd int) bool { return t.drives[ssd].suspicion >= suspectAt }

// NumDrives reports the fleet size the tracker was built for.
func (t *Tracker) NumDrives() int { return len(t.drives) }

// DriveHealth is one drive's reportable state. Integer-valued
// throughout so renderings are byte-stable.
type DriveHealth struct {
	SSD       int
	SRTT      sim.Duration
	RTTVar    sim.Duration
	Deadline  sim.Duration // 0 until warm
	Suspicion int64        // permille
	Samples   int64
	Spikes    int64
	Timeouts  int64
	Retries   int64
	Errors    int64 // transient + media-error completions
	Storming  bool
	Stalled   bool
}

// Snapshot reports one drive's state.
func (t *Tracker) Snapshot(ssd int) DriveHealth {
	d := &t.drives[ssd]
	return DriveHealth{
		SSD:       ssd,
		SRTT:      sim.Duration(d.srtt),
		RTTVar:    sim.Duration(d.rttvar),
		Deadline:  d.deadline,
		Suspicion: d.suspicion,
		Samples:   d.samples,
		Spikes:    d.spikes,
		Timeouts:  d.timeouts,
		Retries:   d.retries,
		Errors:    d.transients + d.mediaErrors,
		Storming:  d.storming,
		Stalled:   d.stalled,
	}
}
