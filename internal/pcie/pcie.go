// Package pcie models the all-flash array's PCIe Gen3 fabric (paper Fig 2):
// a two-level tree of 96-lane/24-port switches with 61 device slots and 3
// host uplinks. Each device slot holds an M.2 carrier card with four M.2
// NVMe SSDs (Fig 3), so one host's Gen3 x16 uplink (16 GB/s) fans out to 64
// SSDs through 16 slots.
//
// The model charges two costs per traversal:
//
//   - a fixed per-switch-hop forwarding latency, calibrated so a read
//     through the fabric costs 5 µs more than against a directly attached
//     SSD (Section IV-A: 25 µs standalone → 30 µs through the switches);
//   - store-and-forward serialization plus link contention, using each
//     link's next-free time. At 4 KiB QD1 this is negligible, exactly as
//     the paper observes; sequential-read workloads saturate the uplink,
//     reproducing the Section III-B preliminary result.
package pcie

import (
	"fmt"

	"repro/internal/sim"
)

// Gen3BytesPerLanePerSec is the usable PCIe Gen3 payload bandwidth per lane
// (8 GT/s with 128b/130b encoding, minus protocol overhead ≈ 985 MB/s).
const Gen3BytesPerLanePerSec = 985_000_000

// Gen4BytesPerLanePerSec doubles the per-lane rate (16 GT/s), the
// signaling generation of the ULL-era fabric.
const Gen4BytesPerLanePerSec = 2 * Gen3BytesPerLanePerSec

// Link is a PCIe link with a lane count and a next-free time used for
// serialization/contention accounting.
type Link struct {
	Name     string
	Lanes    int
	perLane  int64 // bytes/sec per lane; 0 means Gen3
	nextFree sim.Time
	busy     sim.Duration // cumulative occupied time, for utilization stats
}

// Bandwidth reports the link's payload bandwidth in bytes/second.
func (l *Link) Bandwidth() float64 {
	perLane := l.perLane
	if perLane == 0 {
		perLane = Gen3BytesPerLanePerSec
	}
	return float64(l.Lanes) * float64(perLane)
}

// wireTime is the serialization time of n bytes on this link.
func (l *Link) wireTime(n int) sim.Duration {
	wire := sim.Duration(float64(n) / l.Bandwidth() * float64(sim.Second))
	if wire < 1 {
		wire = 1
	}
	return wire
}

// reserve books the link for a transfer of n bytes arriving at time at and
// returns (queue wait, wire time).
//
// Arrival times must be anchored near the current instant (see the Fabric
// traversal): if queue waits fed back into later stages' arrival times,
// reservations would anchor far in the future, the FIFO bookkeeping would
// lose the idle gaps before them, and two links could sustain each other's
// phantom backlog indefinitely.
func (l *Link) reserve(at sim.Time, n int) (wait, wire sim.Duration) {
	wire = l.wireTime(n)
	start := at
	if l.nextFree > start {
		start = l.nextFree
		wait = start.Sub(at)
	}
	l.nextFree = start.Add(wire)
	l.busy += wire
	return wait, wire
}

// BusyTime reports the cumulative time the link spent transferring.
func (l *Link) BusyTime() sim.Duration { return l.busy }

// Switch is one 96-lane/24-port fabric switch.
type Switch struct {
	Name  string
	Lanes int
	Ports int
}

// Slot is one physical PCIe slot of the array.
type Slot struct {
	Index  int
	Uplink int  // which of the 3 host uplinks the slot is statically wired to
	IsHost bool // true for the 3 uplink slots
}

// Topology describes the full array fabric: the static structure the BIOS
// enumerates.
type Topology struct {
	Switches []Switch
	Slots    []Slot
}

// ArrayTopology returns the paper's fabric: 7 switches, 64 slots total
// (61 for devices, 3 for uplinks), devices statically partitioned across
// the 3 uplinks.
func ArrayTopology() *Topology {
	t := &Topology{}
	for i := 0; i < 7; i++ {
		level := "upper"
		if i >= 3 {
			level = "lower"
		}
		t.Switches = append(t.Switches, Switch{
			Name:  fmt.Sprintf("psw%d-%s", i, level),
			Lanes: 96,
			Ports: 24,
		})
	}
	for i := 0; i < 64; i++ {
		s := Slot{Index: i}
		if i < 3 {
			s.IsHost = true
			s.Uplink = i
		} else {
			// 61 device slots statically spread across the 3 uplinks:
			// 21, 20, 20.
			s.Uplink = (i - 3) % 3
		}
		t.Slots = append(t.Slots, s)
	}
	return t
}

// DeviceSlots lists the non-host slots wired to the given uplink.
func (t *Topology) DeviceSlots(uplink int) []Slot {
	var out []Slot
	for _, s := range t.Slots {
		if !s.IsHost && s.Uplink == uplink {
			out = append(out, s)
		}
	}
	return out
}

// SSDsPerCarrier is how many M.2 SSDs one carrier card holds (Fig 3).
const SSDsPerCarrier = 4

// MaxSSDs reports the array's maximum SSD population (the paper's 244).
func (t *Topology) MaxSSDs() int {
	n := 0
	for _, s := range t.Slots {
		if !s.IsHost {
			n++
		}
	}
	return n * SSDsPerCarrier
}

// Fabric is the dynamic model of one host's view of the array: the x16
// uplink, the inter-switch links, and a x4 link per SSD.
type Fabric struct {
	eng *sim.Engine

	// HopLatency is the one-way forwarding latency of a single switch.
	// A request crosses two switch levels each way; 4 hops round trip.
	HopLatency sim.Duration

	Uplink      *Link   // host ↔ upper switch, x16
	InterSwitch []*Link // upper switch ↔ each lower switch, x16
	DevLinks    []*Link // lower switch ↔ SSD, x4 (M.2)

	lowerOf []int // SSD index → lower-switch index

	// DebugTrace, when set, observes every reservation (diagnostics).
	DebugTrace func(link string, at, start sim.Time, wire sim.Duration)
}

// Options configures a Fabric.
type Options struct {
	NumSSDs int
	// HopLatency per switch level; the default (1250 ns × 4 hops = 5 µs
	// round trip) matches the paper's 25 µs → 30 µs observation.
	HopLatency sim.Duration
	// LowerSwitches is the number of level-2 switches the SSD population is
	// spread over (4 on the testbed's one-host share).
	LowerSwitches int
	// BytesPerLanePerSec overrides every link's per-lane payload rate;
	// the default is Gen3BytesPerLanePerSec (the 2016 testbed). The
	// ULL-era fabric passes Gen4BytesPerLanePerSec.
	BytesPerLanePerSec int64
}

// NewFabric builds one host's fabric share.
func NewFabric(eng *sim.Engine, opt Options) *Fabric {
	if opt.NumSSDs <= 0 {
		panic("pcie: NumSSDs must be positive")
	}
	if opt.HopLatency == 0 {
		opt.HopLatency = 1250 * sim.Nanosecond
	}
	if opt.LowerSwitches == 0 {
		opt.LowerSwitches = 4
	}
	f := &Fabric{
		eng:        eng,
		HopLatency: opt.HopLatency,
		Uplink:     &Link{Name: "uplink", Lanes: 16, perLane: opt.BytesPerLanePerSec},
		lowerOf:    make([]int, opt.NumSSDs),
	}
	for i := 0; i < opt.LowerSwitches; i++ {
		f.InterSwitch = append(f.InterSwitch, &Link{Name: fmt.Sprintf("isl%d", i), Lanes: 16,
			perLane: opt.BytesPerLanePerSec})
	}
	for i := 0; i < opt.NumSSDs; i++ {
		f.DevLinks = append(f.DevLinks, &Link{Name: fmt.Sprintf("dev%d", i), Lanes: 4,
			perLane: opt.BytesPerLanePerSec})
		f.lowerOf[i] = i * opt.LowerSwitches / opt.NumSSDs
	}
	return f
}

// NumSSDs reports the SSD population behind this host's uplink.
func (f *Fabric) NumSSDs() int { return len(f.DevLinks) }

// Downstream models a host→SSD transfer of n bytes (command fetch or write
// payload) and returns the total delay including switch hops, wire times,
// and link contention: uplink, then the inter-switch link, then the device
// link.
func (f *Fabric) Downstream(ssd, n int) sim.Duration {
	f.check(ssd)
	return f.traverse([]*Link{f.Uplink, f.InterSwitch[f.lowerOf[ssd]], f.DevLinks[ssd]}, n)
}

// Upstream models an SSD→host transfer of n bytes (read payload or
// completion) and returns the total delay. Stages run in the opposite
// order: device link, inter-switch link, uplink.
func (f *Fabric) Upstream(ssd, n int) sim.Duration {
	f.check(ssd)
	return f.traverse([]*Link{f.DevLinks[ssd], f.InterSwitch[f.lowerOf[ssd]], f.Uplink}, n)
}

// traverse books the path's links in order. Each stage's arrival time is
// offset by the preceding stages' wire and hop times only — never their
// queue waits — so reservations stay anchored near the current instant
// and the per-link FIFO accounting remains work-conserving (see
// Link.reserve). The returned delay is the pipeline view: all wires and
// hops plus the worst single stage's queue wait — stages of one transfer
// wait concurrently, so the bottleneck link governs.
func (f *Fabric) traverse(path []*Link, n int) sim.Duration {
	now := f.eng.Now()
	var offset, delay, worstWait sim.Duration
	for i, l := range path {
		if i > 0 {
			offset += f.HopLatency
			delay += f.HopLatency
		}
		wait, wire := l.reserve(now.Add(offset), n)
		if f.DebugTrace != nil {
			f.DebugTrace(l.Name, now.Add(offset), now.Add(offset+wait), wire)
		}
		if wait > worstWait {
			worstWait = wait
		}
		offset += wire
		delay += wire
	}
	return delay + worstWait
}

func (f *Fabric) check(ssd int) {
	if ssd < 0 || ssd >= len(f.DevLinks) {
		panic(fmt.Sprintf("pcie: ssd %d out of range", ssd))
	}
}

// Backlogs reports, without reserving anything, how far in the future each
// stage on the path to ssd is booked: the device link, its inter-switch
// link, and the uplink. Diagnostic.
func (f *Fabric) Backlogs(ssd int) (dev, isl, up sim.Duration) {
	f.check(ssd)
	now := f.eng.Now()
	b := func(l *Link) sim.Duration {
		if l.nextFree > now {
			return l.nextFree.Sub(now)
		}
		return 0
	}
	return b(f.DevLinks[ssd]), b(f.InterSwitch[f.lowerOf[ssd]]), b(f.Uplink)
}

// RoundTripOverhead reports the fixed fabric latency added to one I/O
// (request down + data/completion up), excluding serialization: the
// paper's "+5 µs through the switches".
func (f *Fabric) RoundTripOverhead() sim.Duration {
	return 4 * f.HopLatency
}

// UplinkUtilization reports the fraction of elapsed time the uplink was
// transferring, for the sequential-saturation experiment.
func (f *Fabric) UplinkUtilization() float64 {
	if f.eng.Now() == 0 {
		return 0
	}
	return float64(f.Uplink.BusyTime()) / float64(f.eng.Now())
}
