package pcie

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestArrayTopologyShape(t *testing.T) {
	top := ArrayTopology()
	if len(top.Switches) != 7 {
		t.Fatalf("switches = %d, want 7", len(top.Switches))
	}
	for _, sw := range top.Switches {
		if sw.Lanes != 96 || sw.Ports != 24 {
			t.Fatalf("switch %s is %d-lane/%d-port, want 96/24", sw.Name, sw.Lanes, sw.Ports)
		}
	}
	if len(top.Slots) != 64 {
		t.Fatalf("slots = %d, want 64", len(top.Slots))
	}
	hosts, devices := 0, 0
	for _, s := range top.Slots {
		if s.IsHost {
			hosts++
		} else {
			devices++
		}
	}
	if hosts != 3 || devices != 61 {
		t.Fatalf("hosts=%d devices=%d, want 3/61", hosts, devices)
	}
}

func TestStaticUplinkPartition(t *testing.T) {
	top := ArrayTopology()
	total := 0
	for u := 0; u < 3; u++ {
		n := len(top.DeviceSlots(u))
		total += n
		if n < 20 || n > 21 {
			t.Fatalf("uplink %d has %d device slots, want 20-21", u, n)
		}
	}
	if total != 61 {
		t.Fatalf("partition covers %d slots, want 61", total)
	}
}

func TestMaxSSDsIsQuarterPetabyteClass(t *testing.T) {
	top := ArrayTopology()
	if got := top.MaxSSDs(); got != 244 {
		t.Fatalf("MaxSSDs = %d, want 244 (61 slots × 4 M.2)", got)
	}
}

func TestUplinkBandwidthIs16GBps(t *testing.T) {
	f := NewFabric(sim.NewEngine(), Options{NumSSDs: 64})
	bw := f.Uplink.Bandwidth()
	if bw < 15e9 || bw > 16.5e9 {
		t.Fatalf("uplink bandwidth = %.2f GB/s, want ≈16", bw/1e9)
	}
}

func TestRoundTripOverheadIs5us(t *testing.T) {
	f := NewFabric(sim.NewEngine(), Options{NumSSDs: 64})
	if got := f.RoundTripOverhead(); got != 5*sim.Microsecond {
		t.Fatalf("RoundTripOverhead = %v, want 5µs", got)
	}
}

func TestSmallTransferDelayDominatedByHops(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, Options{NumSSDs: 64})
	d := f.Upstream(0, 4096)
	// 2 hops (2.5µs) + 4KiB over x4 (~1.04µs) + x16 links (~0.26µs each).
	if d < 2500*sim.Nanosecond || d > 5*sim.Microsecond {
		t.Fatalf("4KiB upstream delay = %v, want ≈3-4µs", d)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, Options{NumSSDs: 4})
	const n = 1 << 20 // 1 MiB
	d1 := f.Upstream(0, n)
	d2 := f.Upstream(0, n) // same instant, same device link: must queue
	if d2 <= d1 {
		t.Fatalf("second transfer (%v) not delayed behind first (%v)", d2, d1)
	}
	// In a store-and-forward pipeline the second transfer trails the first
	// by one wire time of the slowest shared stage (the x4 device link).
	devWire := sim.Duration(float64(n) / f.DevLinks[0].Bandwidth() * float64(sim.Second))
	if gap := d2 - d1; gap < devWire*9/10 {
		t.Fatalf("second transfer trails by %v, want ≈ device wire time %v", gap, devWire)
	}
}

func TestDifferentDevicesShareOnlyUplink(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, Options{NumSSDs: 64})
	const n = 1 << 20
	d1 := f.Upstream(0, n)
	d2 := f.Upstream(63, n) // different dev link, different lower switch
	// d2 queues only behind the shared x16 uplink transfer, which is 4x
	// faster than the x4 device link, so d2 ≈ d1 + uplink wire time.
	uplinkWire := sim.Duration(float64(n) / f.Uplink.Bandwidth() * float64(sim.Second))
	if d2 > d1+2*uplinkWire {
		t.Fatalf("independent device transfer over-delayed: d1=%v d2=%v", d1, d2)
	}
}

func TestUplinkSaturation(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, Options{NumSSDs: 64})
	// Blast 128 KiB reads from all SSDs for a while; uplink must be the
	// bottleneck (Section III-B: sequential reads saturate PCIe).
	const chunk = 128 << 10
	var last sim.Duration
	for i := 0; i < 64*20; i++ {
		last = f.Upstream(i%64, chunk)
	}
	total := float64(64*20*chunk) / last.Seconds()
	if total > f.Uplink.Bandwidth()*1.05 {
		t.Fatalf("aggregate throughput %.2f GB/s exceeds uplink %.2f GB/s",
			total/1e9, f.Uplink.Bandwidth()/1e9)
	}
	if total < f.Uplink.Bandwidth()*0.8 {
		t.Fatalf("aggregate throughput %.2f GB/s far below uplink capacity", total/1e9)
	}
}

func TestUplinkUtilization(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, Options{NumSSDs: 4})
	if f.UplinkUtilization() != 0 {
		t.Fatal("utilization nonzero before any transfer")
	}
	f.Upstream(0, 1<<20)
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	u := f.UplinkUtilization()
	want := (float64(1<<20) / f.Uplink.Bandwidth()) / 0.010
	if math.Abs(u-want)/want > 0.05 {
		t.Fatalf("utilization = %v, want ≈%v", u, want)
	}
}

func TestTransferPanicsOnBadSSD(t *testing.T) {
	f := NewFabric(sim.NewEngine(), Options{NumSSDs: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ssd did not panic")
		}
	}()
	f.Upstream(4, 100)
}

func TestZeroSSDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumSSDs=0 did not panic")
		}
	}()
	NewFabric(sim.NewEngine(), Options{})
}

func TestMinimumWireTime(t *testing.T) {
	f := NewFabric(sim.NewEngine(), Options{NumSSDs: 1})
	// Even a zero-byte "transfer" (e.g. a doorbell) takes nonzero time.
	if d := f.Downstream(0, 0); d <= 0 {
		t.Fatalf("zero-byte transfer delay = %v", d)
	}
}
