// Package loading for afalint. Pure stdlib: packages are discovered by
// walking the module tree, parsed with go/parser, and type-checked with
// go/types. Module-local imports are resolved by recursively
// type-checking the imported directory; standard-library imports are
// compiled from GOROOT source (importer.ForCompiler "source"), so the
// analyzer needs no build cache, network, or third-party dependency.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one directory of Go source, parsed and best-effort
// type-checked. Files contains every file in the directory — library,
// in-package test, and external (_test package) test files; rules that
// exclude tests consult IsTestFile.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Info is the merged type information for all files. Entries may be
	// missing when the package has type errors; rules degrade to
	// syntax-only checks in that case.
	Info *types.Info
	// Types is the checked package object (library + in-package test
	// files); its scope feeds the method-set and enum indexes. May be
	// nil when the directory holds only external-test files.
	Types *types.Package
	// TypeErrors collects type-check diagnostics (not lint findings).
	TypeErrors []error

	// prog is the whole-program view Run sets before rules execute.
	prog *Program
	// fg is the lazily built field-graph view (fieldgraph.go) the state
	// rule family consults.
	fg *fieldGraph
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.File(f.Pos()).Name(), "_test.go")
}

// typeOf returns the type of e, or nil when type information is
// unavailable.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Loader discovers, parses, and type-checks packages of one module.
type Loader struct {
	Root    string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod, e.g. "repro"

	fset      *token.FileSet
	std       types.ImporterFrom
	imported  map[string]*types.Package
	importing map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:      root,
		ModPath:   modPath,
		fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		imported:  map[string]*types.Package{},
		importing: map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule discovers every package directory under the module root
// (skipping testdata, vendor, and hidden directories) and loads each.
// The result is sorted by import path, so runs are deterministic.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single directory dir as the
// package with the given import path. Library and in-package test files
// are checked together; external (_test package) files are checked as
// their own unit against the same merged Info.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading package directory %s: %w", dir, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset}
	var lib, xtest []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// The parser's error already carries file:line:col; wrap it so
			// the caller knows which load step failed rather than panicking
			// downstream on a half-parsed package.
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		p.Files = append(p.Files, f)
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			lib = append(lib, f)
		}
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check errors are accumulated through cfg.Error; a package with type
	// errors still gets partial Info and syntax-level rules still run.
	if len(lib) > 0 {
		p.Types, _ = cfg.Check(path, l.fset, lib, p.Info)
	}
	if len(xtest) > 0 {
		cfg.Check(path+"_test", l.fset, xtest, p.Info)
	}
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages are
// type-checked from source (library files only, as an importer would
// see them); everything else is delegated to the GOROOT source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
		return l.std.ImportFrom(path, dir, mode)
	}
	if tp, ok := l.imported[path]; ok {
		return tp, nil
	}
	if l.importing[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.importing[path] = true
	defer func() { l.importing[path] = false }()

	pkgDir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
	names, err := goFilesIn(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(pkgDir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	cfg := &types.Config{Importer: l}
	tp, err := cfg.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking import %s: %w", path, err)
	}
	l.imported[path] = tp
	return tp, nil
}

// goFilesIn lists the .go files directly inside dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// importNames returns the local names under which f imports path
// (usually one: the package's base name or an explicit alias).
func importNames(f *ast.File, path string) map[string]bool {
	out := map[string]bool{}
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != path {
			continue
		}
		switch {
		case spec.Name != nil:
			out[spec.Name.Name] = true
		default:
			out[p[strings.LastIndex(p, "/")+1:]] = true
		}
	}
	return out
}
