package lint

import "strings"

// ParseAllowDirective parses the text of one suppression comment,
//
//	//afalint:allow <rule> [<rule>...] [-- reason]
//
// returning the allowed rule names and the free-text reason. ok is
// false when text is not an allow directive at all or names no rules
// (a bare "//afalint:allow" or "//afalint:allow -- why" suppresses
// nothing — better loud than silently over-suppressing).
//
// Everything after the first standalone "--" field is reason text and
// is never treated as a rule name, so a reason that happens to mention
// another rule ("-- see maporder note") cannot widen the suppression.
func ParseAllowDirective(text string) (rules []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, AllowDirective)
	if !found {
		return nil, "", false
	}
	// Require a separator after the prefix so "//afalint:allowed" or
	// future directives like "//afalint:allow-file" do not parse as this
	// one.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	for i, f := range fields {
		if f == "--" {
			reason = strings.Join(fields[i+1:], " ")
			break
		}
		rules = append(rules, f)
	}
	if len(rules) == 0 {
		// A rule-less directive suppresses nothing, so it carries no
		// meaningful reason either: all-zero on every failure path.
		return nil, "", false
	}
	return rules, reason, true
}

// collectAllows parses every //afalint:allow directive in the package
// into the (file, line) → rule-set index the engine consults.
func collectAllows(p *Package) allowSet {
	out := allowSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, _, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := allowKey{pos.Filename, pos.Line}
				if out[key] == nil {
					out[key] = map[string]bool{}
				}
				for _, name := range rules {
					out[key][name] = true
				}
			}
		}
	}
	return out
}
