// The state-integrity rule family: must-assign field coverage for
// pooled objects, reset methods, and snapshots, over the field graph
// built in fieldgraph.go.
//
// The contract (DESIGN.md §10): every figure rests on byte-identical
// reruns, and the hot-path pooling work multiplies *reused mutable
// state* — freelists in sim.Engine, the kernel, irq, and
// fio.Multiplexer, plus Reset()/Snapshot() methods in stats, nand, and
// health. A pooled object whose recycle path misses one field is a
// cross-I/O state leak that silently breaks determinism the day
// someone adds a field. The rules:
//
//   - resetcover:    pooled types (structural freelist detection plus
//     the //afalint:pooled marker) and types with Reset()/reset()
//     methods must definitely assign every mutable field on the
//     recycle path; the missed field is named.
//   - snapshotcover: Snapshot()/Clone()-shaped methods must copy every
//     field of the returned struct — the groundwork for afasimd's
//     snapshot/branch contract.
//   - globalmut:     no package-level mutable state in sim-core
//     packages; it breaks per-job isolation in runner.Map and future
//     snapshot branching.
//   - poolescape:    a pooled object's pointer must not be used past
//     the statement that released it back to the freelist
//     (use-after-recycle).
//
// The family runs as `afalint -state` with its own debt ledger
// (lint_state.baseline). A field that intentionally survives recycling
// is annotated //afalint:sticky -- <reason> on its declaration.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StateRules returns the state-integrity family in canonical order.
func StateRules() []Rule {
	return []Rule{
		resetcoverRule{},
		snapshotcoverRule{},
		globalmutRule{},
		poolescapeRule{},
	}
}

const stateScope = "sim-core + stats (internal/)"

// isStateScope reports whether path is a sim-core package or
// internal/stats — the packages whose object state feeds figures and
// must survive pooling, resets, and snapshots intact.
func isStateScope(path string) bool {
	if isSimCore(path) {
		return true
	}
	if !isInternal(path) {
		return false
	}
	rest := path[strings.LastIndex(path, "internal/")+len("internal/"):]
	return rest == "stats"
}

// ---------------------------------------------------------------------
// resetcover: the recycle path must reinitialize every mutable field.

type resetcoverRule struct{}

func (resetcoverRule) Name() string  { return "resetcover" }
func (resetcoverRule) Scope() string { return stateScope }

func (resetcoverRule) Doc() string {
	return "pooled types and Reset() methods must definitely assign every mutable field on the recycle path; exempt a surviving field with //afalint:sticky"
}

func (resetcoverRule) Check(p *Package) []Finding {
	if !isStateScope(p.Path) || p.Info == nil || p.Types == nil {
		return nil
	}
	g := p.fieldGraph()
	var out []Finding
	pooled := map[*types.Named]bool{}
	for _, pi := range g.pools {
		pooled[pi.elem] = true
		cov := assignSet{}
		for _, fd := range pi.acquireFns {
			unionInto(cov, g.mustAssign(fd, pi.elem, modeReset, false))
		}
		for _, fd := range pi.releaseFns {
			unionInto(cov, g.mustAssign(fd, pi.elem, modeReset, false))
		}
		for _, fd := range g.resetMethods(pi.elem) {
			unionInto(cov, g.mustAssign(fd, pi.elem, modeReset, false))
		}
		// An acquire function that only hands the object out (getReq)
		// often leaves initialization to its callers: credit whatever
		// every same-package direct caller of an acquire fn assigns.
		if callers := g.callersOf(pi.acquireFns); len(callers) > 0 {
			var sets []assignSet
			for _, cfd := range callers {
				sets = append(sets, g.mustAssign(cfd, pi.elem, modeReset, false))
			}
			unionInto(cov, intersectSets(sets))
		}
		for _, leaf := range g.leafEntries(pi.elem) {
			if leaf.Sticky || cov.covers(leaf.Path) || !g.mutable(pi.elem, leaf.Path) {
				continue
			}
			out = append(out, p.finding("resetcover", pi.anchor,
				"pooled %s is recycled without reinitializing field %s; stale state leaks across reuses — assign it on the acquire/release path or mark it //afalint:sticky",
				pi.elem.Obj().Name(), leaf.Path))
		}
	}
	// Non-pooled types with an explicit Reset()/reset() method: the
	// method itself (plus same-type helpers it calls) is the whole
	// recycle path.
	for _, ts := range g.typeSpecs {
		tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || g.localNamedStruct(named) != named || pooled[named] {
			continue
		}
		methods := g.resetMethods(named)
		if len(methods) == 0 {
			continue
		}
		cov := assignSet{}
		for _, fd := range methods {
			unionInto(cov, g.mustAssign(fd, named, modeReset, false))
		}
		for _, leaf := range g.leafEntries(named) {
			if leaf.Sticky || cov.covers(leaf.Path) || !g.mutable(named, leaf.Path) {
				continue
			}
			out = append(out, p.finding("resetcover", methods[0].Name.Pos(),
				"%s leaves field %s unassigned on some path; stale state survives reset — assign it on every path or mark it //afalint:sticky",
				funcDisplayName(g.fnOf[methods[0]]), leaf.Path))
		}
	}
	return out
}

// resetMethods returns named's zero-parameter Reset/reset methods in
// declaration order.
func (g *fieldGraph) resetMethods(named *types.Named) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, fd := range g.decls {
		if fd.Recv == nil || (fd.Name.Name != "Reset" && fd.Name.Name != "reset") {
			continue
		}
		if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
			continue
		}
		if len(fd.Recv.List) == 1 && g.localNamedStruct(g.p.typeOf(fd.Recv.List[0].Type)) == named {
			out = append(out, fd)
		}
	}
	return out
}

// callersOf returns the same-package functions with a direct call-graph
// edge into one of fns, in declaration order, excluding fns themselves.
func (g *fieldGraph) callersOf(fns []*ast.FuncDecl) []*ast.FuncDecl {
	if g.p.prog == nil {
		return nil
	}
	targets := map[*types.Func]bool{}
	self := map[*ast.FuncDecl]bool{}
	for _, fd := range fns {
		self[fd] = true
		if fn := g.fnOf[fd]; fn != nil {
			targets[fn] = true
		}
	}
	var out []*ast.FuncDecl
	for _, fd := range g.decls {
		if self[fd] {
			continue
		}
		fn := g.fnOf[fd]
		if fn == nil {
			continue
		}
		for _, e := range g.p.prog.graph.callees(fn) {
			if targets[e.callee] {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}

func unionInto(dst, src assignSet) {
	for k := range src { //afalint:allow maporder -- set union into a set; no ordering escapes
		dst[k] = true
	}
}

// ---------------------------------------------------------------------
// snapshotcover: a snapshot must copy every field.

type snapshotcoverRule struct{}

func (snapshotcoverRule) Name() string  { return "snapshotcover" }
func (snapshotcoverRule) Scope() string { return stateScope }

func (snapshotcoverRule) Doc() string {
	return "Snapshot()/Clone() methods returning a local struct must copy every non-sticky field; a keyed literal or built-up value that misses one is named"
}

func (snapshotcoverRule) Check(p *Package) []Finding {
	if !isStateScope(p.Path) || p.Info == nil || p.Types == nil {
		return nil
	}
	g := p.fieldGraph()
	var out []Finding
	for _, fd := range g.decls {
		name := fd.Name.Name
		if fd.Recv == nil || (name != "Snapshot" && name != "Clone" && name != "snapshot" && name != "clone") {
			continue
		}
		if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 || len(fd.Type.Results.List[0].Names) > 1 {
			continue
		}
		snap := g.localNamedStruct(p.typeOf(fd.Type.Results.List[0].Type))
		if snap == nil {
			continue
		}
		// When the method clones its own receiver type, the receiver is
		// the *source*: reads from it must not count as assignments to
		// the snapshot.
		excludeRecv := len(fd.Recv.List) == 1 && g.localNamedStruct(p.typeOf(fd.Recv.List[0].Type)) == snap
		methodSet := g.mustAssign(fd, snap, modeSnapshot, excludeRecv)
		display := funcDisplayName(g.fnOf[fd])
		for _, ret := range returnsOf(fd) {
			if len(ret.Results) != 1 {
				continue
			}
			expr := ast.Unparen(ret.Results[0])
			if ue, ok := expr.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				expr = ast.Unparen(ue.X)
			}
			var set assignSet
			switch e := expr.(type) {
			case *ast.CompositeLit:
				set = assignSet{}
				w := &maWalk{g: g, typ: snap, mode: modeSnapshot}
				w.litAssign(e, set)
			case *ast.Ident:
				v := p.objOf(e)
				if v == nil || g.localNamedStruct(v.Type()) != snap {
					continue
				}
				set = methodSet
			default:
				// Returning t.cur, a call result, etc.: the value was
				// assembled elsewhere — nothing to prove here.
				continue
			}
			for _, leaf := range g.leafEntries(snap) {
				if leaf.Sticky || set.covers(leaf.Path) {
					continue
				}
				out = append(out, p.finding("snapshotcover", ret.Pos(),
					"%s never sets field %s; the snapshot misses state and a restore/compare over it is silently partial — copy the field or mark it //afalint:sticky",
					display, leaf.Path))
			}
		}
	}
	return out
}

// returnsOf collects fd's return statements in syntax order, skipping
// returns that belong to nested function literals.
func returnsOf(fd *ast.FuncDecl) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------
// globalmut: no package-level mutable state in sim-core.

type globalmutRule struct{}

func (globalmutRule) Name() string  { return "globalmut" }
func (globalmutRule) Scope() string { return "sim-core packages" }

func (globalmutRule) Doc() string {
	return "no package-level var in sim-core packages; shared mutable state breaks per-job isolation in runner.Map and snapshot branching — use a const or hang it off a struct"
}

func (globalmutRule) Check(p *Package) []Finding {
	if !isSimCore(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						// Blank assignments (interface conformance checks)
						// hold no state.
						continue
					}
					out = append(out, p.finding("globalmut", name.Pos(),
						"package-level variable %s is mutable shared state in a sim-core package; it escapes per-job isolation (runner.Map) and any future snapshot/branch — make it a const or move it onto a struct",
						name.Name))
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// poolescape: no use of a pooled pointer after its release.

type poolescapeRule struct{}

func (poolescapeRule) Name() string  { return "poolescape" }
func (poolescapeRule) Scope() string { return stateScope }

func (poolescapeRule) Doc() string {
	return "a pooled object's pointer must not be read or written after the append that released it to the freelist; the next acquire may already own it"
}

func (poolescapeRule) Check(p *Package) []Finding {
	if !isStateScope(p.Path) || p.Info == nil || p.Types == nil {
		return nil
	}
	g := p.fieldGraph()
	var out []Finding
	for _, pi := range g.pools {
		for _, rec := range pi.releases {
			if rec.arg == nil {
				continue
			}
			list := containingList(rec.fd.Body, rec.stmt)
			idx := -1
			for i, s := range list {
				if s == ast.Stmt(rec.stmt) {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			for _, s := range list[idx+1:] {
				rebinds := map[*ast.Ident]bool{}
				ast.Inspect(s, func(n ast.Node) bool {
					if as, ok := n.(*ast.AssignStmt); ok {
						for _, l := range as.Lhs {
							if id, ok := ast.Unparen(l).(*ast.Ident); ok {
								rebinds[id] = true
							}
						}
					}
					return true
				})
				ast.Inspect(s, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || rebinds[id] {
						return true
					}
					if p.objOf(id) == rec.arg {
						out = append(out, p.finding("poolescape", id.Pos(),
							"pooled *%s %s is used after its release back to the pool (use-after-recycle); the next acquire may already own it — release last, or copy what you need first",
							pi.elem.Obj().Name(), id.Name))
					}
					return true
				})
			}
		}
	}
	return out
}

// containingList returns the innermost statement list (block, case, or
// comm clause body) that directly contains target.
func containingList(body *ast.BlockStmt, target ast.Stmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s == target {
				found = list
				return false
			}
		}
		return true
	})
	return found
}
