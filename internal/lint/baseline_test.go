package lint

import (
	"go/token"
	"strings"
	"testing"
)

func bfinding(file, rule, msg string) Finding {
	return Finding{Rule: rule, Msg: msg, Pos: token.Position{Filename: file, Line: 10, Column: 3}}
}

// TestBaselineRoundTrip: findings written with WriteBaseline are fully
// consumed when parsed back and filtered against the same findings —
// the land-a-new-rule-with-recorded-debts workflow.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bfinding("/repo/a.go", "simtime", "Time + Time adds two instants"),
		bfinding("/repo/b.go", "exhaustive", "switch over Status misses StatusAborted"),
		bfinding("/repo/b.go", "exhaustive", "switch over Status misses StatusAborted"), // duplicate: multiset
	}
	b, err := ParseBaseline(WriteBaseline(findings, "/repo"))
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed, stale := b.Filter(findings, "/repo")
	if len(kept) != 0 || suppressed != 3 || len(stale) != 0 {
		t.Errorf("round trip: kept=%v suppressed=%d stale=%v, want 0/3/0", kept, suppressed, stale)
	}
}

// TestBaselineLineDriftInsensitive: keys exclude line and column, so an
// edit that shifts the finding within its file does not invalidate the
// recorded debt.
func TestBaselineLineDriftInsensitive(t *testing.T) {
	orig := bfinding("/repo/a.go", "simtime", "Time + Time adds two instants")
	b, err := ParseBaseline(WriteBaseline([]Finding{orig}, "/repo"))
	if err != nil {
		t.Fatal(err)
	}
	moved := orig
	moved.Pos.Line = 99
	moved.Pos.Column = 1
	kept, suppressed, _ := b.Filter([]Finding{moved}, "/repo")
	if len(kept) != 0 || suppressed != 1 {
		t.Errorf("moved finding not suppressed: kept=%v", kept)
	}
}

// TestBaselineNewAndStale: a finding outside the ledger is kept; a
// ledger entry nothing matches is reported stale.
func TestBaselineNewAndStale(t *testing.T) {
	b, err := ParseBaseline(WriteBaseline([]Finding{
		bfinding("/repo/gone.go", "simtime", "fixed long ago"),
	}, "/repo"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := bfinding("/repo/new.go", "rngstream", "stream captured")
	kept, suppressed, stale := b.Filter([]Finding{fresh}, "/repo")
	if len(kept) != 1 || suppressed != 0 {
		t.Errorf("fresh finding must be kept: kept=%v suppressed=%d", kept, suppressed)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "gone.go") {
		t.Errorf("want the unconsumed entry reported stale, got %v", stale)
	}
}

// TestBaselineDuplicateCounts: two identical findings against one
// ledger entry consume it once and keep the second.
func TestBaselineDuplicateCounts(t *testing.T) {
	f := bfinding("/repo/a.go", "simtime", "raw literal")
	b, err := ParseBaseline(WriteBaseline([]Finding{f}, "/repo"))
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed, _ := b.Filter([]Finding{f, f}, "/repo")
	if suppressed != 1 || len(kept) != 1 {
		t.Errorf("multiset semantics violated: suppressed=%d kept=%v", suppressed, kept)
	}
}

// TestBaselineParseErrors: comments and blanks are ignored, anything
// else malformed is a hard error with its line number.
func TestBaselineParseErrors(t *testing.T) {
	if _, err := ParseBaseline([]byte("# comment\n\n  \n")); err != nil {
		t.Errorf("comments and blanks must parse: %v", err)
	}
	_, err := ParseBaseline([]byte("# ok\nnot a baseline line\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want a line-numbered parse error, got %v", err)
	}
}

// TestBaselineRelativizesPaths: keys are repo-relative so the ledger is
// stable across checkouts; files outside root keep absolute paths.
func TestBaselineRelativizesPaths(t *testing.T) {
	f := bfinding("/repo/sub/a.go", "simtime", "msg")
	data := string(WriteBaseline([]Finding{f}, "/repo"))
	if !strings.Contains(data, "sub/a.go: msg [simtime]") || strings.Contains(data, "/repo/sub") {
		t.Errorf("want relative path in ledger, got:\n%s", data)
	}
}
