package lint

import (
	"strconv"
	"strings"
)

// globalrandRule bans math/rand and math/rand/v2 everywhere except
// internal/rng. The stdlib generators are either globally shared
// (draw-order coupling between components) or not guaranteed
// bit-stable across Go releases; all stochastic behaviour must flow
// through the seeded, labelled xoshiro streams in internal/rng.
type globalrandRule struct{}

func (globalrandRule) Name() string { return "globalrand" }

func (globalrandRule) Doc() string {
	return "no math/rand or math/rand/v2 outside internal/rng; use the seeded repro/internal/rng streams"
}

func (globalrandRule) Check(p *Package) []Finding {
	if strings.HasSuffix(p.Path, "internal/rng") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.finding("globalrand", spec.Pos(),
					"import of %s; draws are not seed-stable — use repro/internal/rng streams", path))
			}
		}
	}
	return out
}
