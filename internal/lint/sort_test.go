package lint

import (
	"go/token"
	"reflect"
	"testing"
)

func fakePosition(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

func mkFinding(file string, line, col int, rule, msg string) Finding {
	return Finding{Rule: rule, Msg: msg, Pos: token.Position{Filename: file, Line: line, Column: col}}
}

// TestSortFindingsTotalOrder pins the (file, line, col, rule, msg)
// sort key every output path emits. The msg tiebreak is the
// regression: two findings of the same rule on the same position must
// order by message, not by rule traversal order.
func TestSortFindingsTotalOrder(t *testing.T) {
	got := []Finding{
		mkFinding("b.go", 1, 1, "hotalloc", "z"),
		mkFinding("a.go", 2, 1, "hotmap", "m"),
		mkFinding("b.go", 1, 1, "hotalloc", "a"),
		mkFinding("a.go", 2, 1, "hotalloc", "m"),
		mkFinding("a.go", 1, 9, "hotalloc", "m"),
		mkFinding("a.go", 1, 2, "wallclock", "m"),
	}
	want := []Finding{
		mkFinding("a.go", 1, 2, "wallclock", "m"),
		mkFinding("a.go", 1, 9, "hotalloc", "m"),
		mkFinding("a.go", 2, 1, "hotalloc", "m"),
		mkFinding("a.go", 2, 1, "hotmap", "m"),
		mkFinding("b.go", 1, 1, "hotalloc", "a"),
		mkFinding("b.go", 1, 1, "hotalloc", "z"),
	}
	SortFindings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sort order wrong:\n got: %v\nwant: %v", got, want)
	}

	// Sorting the sorted slice is a fixed point: the comparator is a
	// strict weak order, not traversal-order dependent.
	again := append([]Finding(nil), got...)
	SortFindings(again)
	if !reflect.DeepEqual(got, again) {
		t.Errorf("sort is not idempotent")
	}
}
