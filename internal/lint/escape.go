// Escape-analysis cross-check for the hotalloc rule. The rule's
// syntactic candidates (&T{}, new, closures, method values) are what
// *can* allocate; the compiler's escape analysis knows what *does*.
// Feeding afalint the output of
//
//	go build -gcflags='-m -m' ./... 2>escape.txt
//	afalint -perf -escape-data escape.txt ./...
//
// narrows hotalloc to the sites the compiler actually moved to the
// heap. Without escape data the rule stays conservative and reports
// every candidate — a superset, so a baseline recorded without escape
// data never under-reports with it.
package lint

import (
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// EscapeIndex records which source lines the compiler reported a
// heap allocation on. Matching is by (file basename, line): the
// compiler prints paths relative to the build directory while the
// analyzer may hold absolute paths, and diagnostic columns differ
// from AST node columns. Line granularity is exact enough in practice
// and same-named files on the same line colliding is harmless — it
// can only keep a candidate that a stricter match would drop.
type EscapeIndex struct {
	lines map[string]bool
}

// escapeMarkers are the -m diagnostics that mean a heap allocation:
// "escapes to heap" covers new/&T{}/boxing/"func literal escapes",
// "moved to heap" covers captured variables promoted off the stack.
var escapeMarkers = []string{"escapes to heap", "moved to heap"}

// ParseEscapeOutput indexes `go build -gcflags=-m` stderr. Lines that
// are not position-prefixed diagnostics (package banners, "# repro/..."
// headers, inline decisions) are ignored.
func ParseEscapeOutput(data []byte) *EscapeIndex {
	idx := &EscapeIndex{lines: map[string]bool{}}
	for _, line := range strings.Split(string(data), "\n") {
		marked := false
		for _, m := range escapeMarkers {
			if strings.Contains(line, m) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		// Position prefix: path.go:line:col: message
		head, _, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		parts := strings.Split(head, ":")
		if len(parts) < 2 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		if _, err := strconv.Atoi(parts[1]); err != nil {
			continue
		}
		idx.lines[filepath.Base(parts[0])+":"+parts[1]] = true
	}
	return idx
}

// Len reports how many distinct (file, line) allocation sites the
// index holds.
func (ix *EscapeIndex) Len() int { return len(ix.lines) }

// EscapesAt reports whether the compiler flagged pos's line as
// allocating.
func (ix *EscapeIndex) EscapesAt(pos token.Position) bool {
	return ix.lines[filepath.Base(pos.Filename)+":"+strconv.Itoa(pos.Line)]
}
