package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// exhaustiveRule requires every switch over a sim-core enum type to
// either cover all of the type's declared constants or carry an
// explicit default clause. The sim-core enums (nvme.Status, nvme.Opcode,
// nvme.FirmwareKind, fio.Phase, sched.Class/State, kernel.CompletionMode,
// irq.Policy, ...) each encode a completion outcome or a machine state;
// a switch that silently falls through a newly added constant — say a
// fifth nvme.Status — turns a modeling extension into a wrong-results
// bug instead of a compile-visible decision. This is the vet-style
// `exhaustive` check production storage stacks run, scoped to the enums
// whose mishandling can skew the latency figures.
//
// An enum type is a named integer type declared in a sim-core package
// with at least two package-level constants of exactly that type. The
// rule fires module-wide in non-test files: host-side reporting code
// switching over nvme.Status is exactly as able to drop a case as the
// controller model is.
type exhaustiveRule struct{}

func (exhaustiveRule) Name() string { return "exhaustive" }

func (exhaustiveRule) Doc() string {
	return "a switch over a sim-core enum type must cover every declared constant or have an explicit default"
}

func (exhaustiveRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, consts := p.enumOf(sw.Tag)
			if named == nil {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // explicit default: exhaustive by decision
				}
				for _, e := range cc.List {
					if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			var missing []string
			for _, c := range consts {
				if v := c.Val(); v != nil && !covered[v.ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				out = append(out, p.finding("exhaustive", sw.Pos(),
					"switch over %s misses %s; add the cases or an explicit default",
					named.Obj().Name(), strings.Join(missing, ", ")))
			}
			return true
		})
	}
	return out
}

// enumOf reports the sim-core enum type of e and its declared
// constants, or (nil, nil) when e is not an enum-typed expression. The
// constant list is in package-scope (sorted-name) order, deduplicated
// by value so aliases do not inflate the requirement.
func (p *Package) enumOf(e ast.Expr) (*types.Named, []*types.Const) {
	named, ok := p.typeOf(e).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, nil
	}
	if !isSimCore(named.Obj().Pkg().Path()) {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, nil
	}
	scope := named.Obj().Pkg().Scope()
	seen := map[string]bool{}
	var consts []*types.Const
	for _, name := range scope.Names() { // Names() is sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if v := c.Val(); v != nil {
			if key := v.ExactString(); !seen[key] {
				seen[key] = true
				consts = append(consts, c)
			}
		}
	}
	if len(consts) < 2 {
		return nil, nil
	}
	return named, consts
}
