package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// nogoroutineRule bans concurrency in the sim-core packages. The
// discrete-event engine is single-threaded by design — determinism
// comes from the (time, seq) total order of its event heap — so any
// goroutine, channel, select, or sync primitive inside the core either
// does nothing or introduces scheduling races into results.
//
// Concurrency does have one sanctioned home: the orchestration tier
// (internal/runner), which parallelizes across *independent* runs
// rather than inside one. The rule polices that boundary in the only
// direction that can break determinism — a sim-core package importing
// an orchestration package would let fan-out machinery reach into the
// event loop, so such imports are findings too. The orchestration
// packages themselves are out of this rule's scope by construction.
type nogoroutineRule struct{}

func (nogoroutineRule) Name() string { return "nogoroutine" }

func (nogoroutineRule) Doc() string {
	return "no goroutines, channels, select, sync/sync-atomic, or orchestration-tier imports in the single-threaded sim-core packages"
}

func (nogoroutineRule) Check(p *Package) []Finding {
	if !isSimCore(p.Path) {
		return nil
	}
	var out []Finding
	add := func(pos token.Pos, what string) {
		out = append(out, p.finding("nogoroutine", pos,
			"%s in sim-core package %s; the simulator is single-threaded by contract", what, p.Path))
	}
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				if path == "sync" || path == "sync/atomic" {
					add(spec.Pos(), "import of "+path)
				}
				if isOrchestration(path) {
					add(spec.Pos(), "import of orchestration package "+path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				add(n.Pos(), "go statement")
			case *ast.SendStmt:
				add(n.Arrow, "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					add(n.OpPos, "channel receive")
				}
			case *ast.SelectStmt:
				add(n.Pos(), "select statement")
			case *ast.ChanType:
				add(n.Pos(), "channel type")
			}
			return true
		})
	}
	return out
}
