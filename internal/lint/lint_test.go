package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// fixtureCases maps each fixture directory to the import path it is
// loaded under; the path is what puts the files in (or out of) each
// rule's scope.
var fixtureCases = []struct {
	dir  string
	path string // synthetic import path controlling rule scope
}{
	{"wallclock", "repro/internal/fixture"},
	{"globalrand", "repro/internal/fixture"},
	{"maporder", "repro/internal/fixture"},
	{"nogoroutine", "repro/internal/sim"},
	{"floatcompare", "repro/internal/sim"},
	// The fault injector schedules failures inside the event loop, so it
	// is bound by the same sim-core rules as the components it breaks.
	{"nogoroutine", "repro/internal/fault"},
	{"floatcompare", "repro/internal/fault"},
	{"wallclock", "repro/internal/fault"},
	{"globalrand", "repro/internal/fault"},
	// The two-tier concurrency boundary (DESIGN.md §7): a sim-core
	// package importing the orchestration tier is a finding.
	{"boundary", "repro/internal/sim"},
	{"boundary", "repro/internal/kernel"},
}

// wantMarker matches expectation comments in fixtures: a finding of
// the named rule on the same line.
var wantMarker = regexp.MustCompile(`want:(\w+)`)

// loadFixture type-checks one testdata directory under the given
// import path and fails the test on any load or type error — a fixture
// that does not compile would silently weaken the type-driven rules.
func loadFixture(t *testing.T, dir, path string) *Package {
	t.Helper()
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLoader(root, modPath).LoadDir(filepath.Join("testdata", dir), path)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}
	return p
}

// expectations collects the (line, rule) pairs announced by want:
// markers in the package's comments.
func expectations(p *Package) []string {
	var out []string
	for _, f := range p.Files {
		name := filepath.Base(p.Fset.File(f.Pos()).Name())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantMarker.FindAllStringSubmatch(c.Text, -1) {
					line := p.Fset.Position(c.Pos()).Line
					out = append(out, fmt.Sprintf("%s:%d %s", name, line, m[1]))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestFixtures runs every rule over each fixture package and asserts
// the exact set of finding positions against the want: markers,
// covering positive, suppressed, exempt, and out-of-scope cases at
// once (a fixture must not trip any rule it has no marker for).
func TestFixtures(t *testing.T) {
	for _, c := range fixtureCases {
		t.Run(c.dir, func(t *testing.T) {
			p := loadFixture(t, c.dir, c.path)
			var got []string
			for _, f := range Run([]*Package{p}, AllRules()) {
				got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
			}
			sort.Strings(got)
			want := expectations(p)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestScopeExclusions re-loads fixtures under paths outside each
// rule's scope and expects silence: nogoroutine and floatcompare only
// police the sim-core packages, and internal/rng is the one place
// math/rand imports are legitimate.
func TestScopeExclusions(t *testing.T) {
	cases := []struct {
		dir  string
		path string
	}{
		{"nogoroutine", "repro/internal/stats"}, // not a sim-core package
		{"floatcompare", "repro/internal/stats"},
		{"nogoroutine", "repro/cmd/tool"}, // not even internal
		{"globalrand", "repro/internal/rng"},
		// The orchestration tier is the sanctioned home for concurrency:
		// goroutines, channels, select, and sync are all legal there …
		{"nogoroutine", "repro/internal/runner"},
		// … as is, trivially, depending on orchestration machinery.
		{"boundary", "repro/internal/stats"},
	}
	for _, c := range cases {
		t.Run(c.dir+"@"+c.path, func(t *testing.T) {
			p := loadFixture(t, c.dir, c.path)
			if got := Run([]*Package{p}, AllRules()); len(got) != 0 {
				t.Errorf("expected no findings for %s loaded as %s, got %v", c.dir, c.path, got)
			}
		})
	}
}

// TestMaporderAppliesToCmd documents the inverse scope decision: the
// maporder contract covers internal/ only, so the same fixture loaded
// as a cmd package is clean.
func TestMaporderAppliesToCmd(t *testing.T) {
	p := loadFixture(t, "maporder", "repro/cmd/tool")
	for _, f := range Run([]*Package{p}, AllRules()) {
		if f.Rule == "maporder" {
			t.Errorf("maporder fired outside internal/: %v", f)
		}
	}
}

// TestFindingString pins the file:line:col rendering the CLI prints
// and the acceptance criteria rely on.
func TestFindingString(t *testing.T) {
	p := loadFixture(t, "globalrand", "repro/internal/fixture")
	fs := Run([]*Package{p}, AllRules())
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", fs)
	}
	want := regexp.MustCompile(`globalrand\.go:6:2: import of math/rand.*\[globalrand\]$`)
	if !want.MatchString(fs[0].String()) {
		t.Errorf("finding rendered as %q, want match for %v", fs[0], want)
	}
}

// TestRuleMetadata keeps every rule addressable by the suppression
// directive: non-empty unique names and docs.
func TestRuleMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range AllRules() {
		if r.Name() == "" || r.Doc() == "" {
			t.Errorf("rule %T has empty metadata", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	if len(seen) != 5 {
		t.Errorf("expected 5 rules, have %d", len(seen))
	}
}
