package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// fixtureCases maps each fixture directory to the import path it is
// loaded under; the path is what puts the files in (or out of) each
// rule's scope.
var fixtureCases = []struct {
	dir  string
	path string // synthetic import path controlling rule scope
}{
	{"wallclock", "repro/internal/fixture"},
	{"globalrand", "repro/internal/fixture"},
	{"maporder", "repro/internal/fixture"},
	{"nogoroutine", "repro/internal/sim"},
	{"floatcompare", "repro/internal/sim"},
	// The fault injector schedules failures inside the event loop, so it
	// is bound by the same sim-core rules as the components it breaks.
	{"nogoroutine", "repro/internal/fault"},
	{"floatcompare", "repro/internal/fault"},
	{"wallclock", "repro/internal/fault"},
	{"globalrand", "repro/internal/fault"},
	// The two-tier concurrency boundary (DESIGN.md §7): a sim-core
	// package importing the orchestration tier is a finding.
	{"boundary", "repro/internal/sim"},
	{"boundary", "repro/internal/kernel"},
	// v2 whole-program rules. The reach fixtures must load as sim-core
	// (entry points are sim-core exported functions); the enum, unit, and
	// stream-ownership fixtures live above the core like their real
	// counterparts.
	{"reachwallclock", "repro/internal/sim"},
	{"reachwallclock", "repro/internal/fault"},
	{"reachrand", "repro/internal/sim"},
	{"exhaustive", "repro/internal/fixture"},
	{"simtime", "repro/internal/fixture"},
	{"rngstream", "repro/internal/fixture"},
}

// wantMarker matches expectation comments in fixtures: a finding of
// the named rule on the same line.
var wantMarker = regexp.MustCompile(`want:(\w+)`)

// loadFixture type-checks one testdata directory under the given
// import path and fails the test on any load or type error — a fixture
// that does not compile would silently weaken the type-driven rules.
func loadFixture(t *testing.T, dir, path string) *Package {
	t.Helper()
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLoader(root, modPath).LoadDir(filepath.Join("testdata", dir), path)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}
	return p
}

// expectations collects the (line, rule) pairs announced by want:
// markers in the package's comments.
func expectations(p *Package) []string {
	var out []string
	for _, f := range p.Files {
		name := filepath.Base(p.Fset.File(f.Pos()).Name())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantMarker.FindAllStringSubmatch(c.Text, -1) {
					line := p.Fset.Position(c.Pos()).Line
					out = append(out, fmt.Sprintf("%s:%d %s", name, line, m[1]))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestFixtures runs every rule over each fixture package and asserts
// the exact set of finding positions against the want: markers,
// covering positive, suppressed, exempt, and out-of-scope cases at
// once (a fixture must not trip any rule it has no marker for).
func TestFixtures(t *testing.T) {
	for _, c := range fixtureCases {
		t.Run(c.dir, func(t *testing.T) {
			p := loadFixture(t, c.dir, c.path)
			var got []string
			for _, f := range Run([]*Package{p}, AllRules()) {
				got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
			}
			sort.Strings(got)
			want := expectations(p)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestScopeExclusions re-loads fixtures under paths outside each
// rule's scope and expects silence: nogoroutine and floatcompare only
// police the sim-core packages, and internal/rng is the one place
// math/rand imports are legitimate.
func TestScopeExclusions(t *testing.T) {
	cases := []struct {
		dir  string
		path string
	}{
		{"nogoroutine", "repro/internal/stats"}, // not a sim-core package
		{"floatcompare", "repro/internal/stats"},
		{"nogoroutine", "repro/cmd/tool"}, // not even internal
		{"globalrand", "repro/internal/rng"},
		// The orchestration tier is the sanctioned home for concurrency:
		// goroutines, channels, select, and sync are all legal there …
		{"nogoroutine", "repro/internal/runner"},
		// … as is, trivially, depending on orchestration machinery.
		{"boundary", "repro/internal/stats"},
	}
	for _, c := range cases {
		t.Run(c.dir+"@"+c.path, func(t *testing.T) {
			p := loadFixture(t, c.dir, c.path)
			if got := Run([]*Package{p}, AllRules()); len(got) != 0 {
				t.Errorf("expected no findings for %s loaded as %s, got %v", c.dir, c.path, got)
			}
		})
	}
}

// TestMaporderAppliesToCmd documents the inverse scope decision: the
// maporder contract covers internal/ only, so the same fixture loaded
// as a cmd package is clean.
func TestMaporderAppliesToCmd(t *testing.T) {
	p := loadFixture(t, "maporder", "repro/cmd/tool")
	for _, f := range Run([]*Package{p}, AllRules()) {
		if f.Rule == "maporder" {
			t.Errorf("maporder fired outside internal/: %v", f)
		}
	}
}

// TestFindingString pins the file:line:col rendering the CLI prints
// and the acceptance criteria rely on.
func TestFindingString(t *testing.T) {
	p := loadFixture(t, "globalrand", "repro/internal/fixture")
	fs := Run([]*Package{p}, AllRules())
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", fs)
	}
	want := regexp.MustCompile(`globalrand\.go:6:2: import of math/rand.*\[globalrand\]$`)
	if !want.MatchString(fs[0].String()) {
		t.Errorf("finding rendered as %q, want match for %v", fs[0], want)
	}
}

// TestRuleMetadata keeps every rule addressable by the suppression
// directive: non-empty unique names and docs.
func TestRuleMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range AllRules() {
		if r.Name() == "" || r.Doc() == "" {
			t.Errorf("rule %T has empty metadata", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	if len(seen) != 10 {
		t.Errorf("expected 10 rules, have %d", len(seen))
	}
}

// ruleByName selects one rule from AllRules.
func ruleByName(t *testing.T, name string) Rule {
	t.Helper()
	for _, r := range AllRules() {
		if r.Name() == name {
			return r
		}
	}
	t.Fatalf("no rule named %q", name)
	return nil
}

// TestReachCatchesWhatWallclockMisses is the acceptance regression for
// whole-program analysis: on the same fixture, the v1 wallclock rule
// alone is blind to the indirect chain (its only finding is the direct
// call; the locally excused helper is suppressed), while reachwallclock
// attributes the chain to the sim-core entry point with the full path
// in the message.
func TestReachCatchesWhatWallclockMisses(t *testing.T) {
	p := loadFixture(t, "reachwallclock", "repro/internal/sim")

	v1 := Run([]*Package{p}, []Rule{ruleByName(t, "wallclock")})
	for _, f := range v1 {
		if f.Pos.Line != 30 { // the direct time.Now in Direct()
			t.Errorf("wallclock alone should only see the direct call, got %v", f)
		}
	}
	if len(v1) != 1 {
		t.Fatalf("wallclock alone: want exactly the direct finding, got %v", v1)
	}

	v2 := Run([]*Package{p}, []Rule{ruleByName(t, "wallclock"), ruleByName(t, "reachwallclock")})
	var chains []string
	for _, f := range v2 {
		if f.Rule == "reachwallclock" {
			chains = append(chains, f.Msg)
		}
	}
	if len(chains) != 3 {
		t.Fatalf("want 3 reachwallclock findings (Indirect, HostState, DirectHost), got %v", chains)
	}
	wantChain := regexp.MustCompile(`fixture\.Indirect → fixture\.viaHelper → fixture\.excused → time\.Now`)
	found := false
	for _, msg := range chains {
		if wantChain.MatchString(msg) {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding carries the full indirect call chain; got %v", chains)
	}
}

// TestReachScopedToSimCore loads the reach fixtures under a
// non-sim-core path: the per-site rules keep their findings, but no
// reach* finding may anchor there — reporting code may legally call
// helpers that a CLI has excused.
func TestReachScopedToSimCore(t *testing.T) {
	for _, dir := range []string{"reachwallclock", "reachrand"} {
		p := loadFixture(t, dir, "repro/internal/stats")
		for _, f := range Run([]*Package{p}, AllRules()) {
			if f.Rule == "reachwallclock" || f.Rule == "reachrand" {
				t.Errorf("%s fired outside sim-core: %v", f.Rule, f)
			}
		}
	}
}
