package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcompareRule bans exact float equality and float map keys in
// sim-core code. Equality on computed floats depends on evaluation
// order and intermediate precision (both of which refactors change
// silently), and float map keys combine that hazard with map-order
// nondeterminism. Latency arithmetic in the core should stay in
// integer sim.Duration nanoseconds; genuine sentinel comparisons can
// be annotated //afalint:allow floatcompare.
type floatcompareRule struct{}

func (floatcompareRule) Name() string { return "floatcompare" }

func (floatcompareRule) Doc() string {
	return "no ==/!= on floats and no float map keys in sim-core code"
}

func (floatcompareRule) Check(p *Package) []Finding {
	if !isSimCore(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isFloat(p.typeOf(n.X)) || isFloat(p.typeOf(n.Y)) {
					out = append(out, p.finding("floatcompare", n.OpPos,
						"exact %s comparison on floating-point values; compare integer nanoseconds or use an epsilon", n.Op))
				}
			case *ast.MapType:
				if isFloat(p.typeOf(n.Key)) {
					out = append(out, p.finding("floatcompare", n.Key.Pos(),
						"float map key; rounding makes membership and iteration unstable"))
				}
			}
			return true
		})
	}
	return out
}

// isFloat reports whether t is (or is an alias/named form of) a
// floating-point or complex type, including untyped float constants.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
