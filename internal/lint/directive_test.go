package lint

import (
	"strings"
	"testing"
	"unicode"
)

// TestParseAllowDirective pins the directive grammar, in particular the
// "--" boundary: reason text must never widen the suppression, even
// when it mentions other rule names.
func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		in     string
		rules  []string
		reason string
		ok     bool
	}{
		{"//afalint:allow wallclock", []string{"wallclock"}, "", true},
		{"//afalint:allow wallclock maporder", []string{"wallclock", "maporder"}, "", true},
		{"//afalint:allow wallclock -- self-timing banner", []string{"wallclock"}, "self-timing banner", true},
		// The v1 parser bug this grammar fixes: a reason mentioning a rule
		// name must not suppress that rule.
		{"//afalint:allow wallclock -- see the maporder note", []string{"wallclock"}, "see the maporder note", true},
		{"//afalint:allow simtime --", []string{"simtime"}, "", true},
		// Degenerate forms suppress nothing.
		{"//afalint:allow", nil, "", false},
		{"//afalint:allow   ", nil, "", false},
		{"//afalint:allow -- why though", nil, "", false},
		// Not this directive at all.
		{"// afalint:allow wallclock", nil, "", false},
		{"//afalint:allowed wallclock", nil, "", false},
		{"//afalint:allow-file wallclock", nil, "", false},
		{"//nolint:wallclock", nil, "", false},
	}
	for _, c := range cases {
		rules, reason, ok := ParseAllowDirective(c.in)
		if ok != c.ok || reason != c.reason || strings.Join(rules, ",") != strings.Join(c.rules, ",") {
			t.Errorf("ParseAllowDirective(%q) = (%v, %q, %v), want (%v, %q, %v)",
				c.in, rules, reason, ok, c.rules, c.reason, c.ok)
		}
	}
}

// FuzzParseAllowDirective fuzzes the directive parser with arbitrary
// comment text and asserts its structural invariants: no panics, rule
// names are non-empty whitespace-free fields of the input that precede
// any "--" separator, ok implies at least one rule, and non-directives
// never parse.
func FuzzParseAllowDirective(f *testing.F) {
	seeds := []string{
		"//afalint:allow wallclock",
		"//afalint:allow wallclock globalrand -- two rules, one reason",
		"//afalint:allow -- reason with no rules",
		"//afalint:allow --",
		"//afalint:allow\twallclock\t--\ttabbed",
		"//afalint:allow  doubled  spaces  --  padded  reason",
		"//afalint:allow nbsp",
		"//afalint:allow rule -- -- double separator",
		"//afalint:allow -- wallclock",
		"//afalint:allowwallclock",
		"//afalint:allow\n",
		"//afalint:allow \x00\x01\x02",
		"//afalint:allow 🎲 -- emoji rule",
		"// afalint:allow leading-space",
		"/*afalint:allow block*/",
		"//afalint:al",
		strings.Repeat("//afalint:allow x ", 100),
		"//afalint:allow " + strings.Repeat("r", 10000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		rules, reason, ok := ParseAllowDirective(text)
		if ok && len(rules) == 0 {
			t.Fatalf("ok with no rules for %q", text)
		}
		if !ok && len(rules) != 0 {
			t.Fatalf("not-ok but returned rules %v for %q", rules, text)
		}
		if (len(rules) > 0 || reason != "" || ok) && !strings.HasPrefix(text, AllowDirective) {
			t.Fatalf("non-directive %q produced output (%v, %q, %v)", text, rules, reason, ok)
		}
		for _, r := range rules {
			if r == "" || r == "--" {
				t.Fatalf("degenerate rule name %q parsed from %q", r, text)
			}
			if strings.IndexFunc(r, unicode.IsSpace) >= 0 {
				t.Fatalf("rule name %q contains whitespace (from %q)", r, text)
			}
			if !strings.Contains(text, r) {
				t.Fatalf("rule %q is not a substring of the input %q", r, text)
			}
		}
		// The reason never leaks into the rule set: everything after the
		// first standalone "--" must be absent from rules.
		if i := indexField(text, "--"); i >= 0 {
			after := strings.Fields(text[i+2:])
			for _, r := range rules {
				for _, a := range after {
					if r == a && !fieldBefore(text, r, i) {
						t.Fatalf("rule %q parsed from reason text of %q", r, text)
					}
				}
			}
		}
	})
}

// indexField finds the byte offset of the first whitespace-delimited
// occurrence of field in s, or -1.
func indexField(s, field string) int {
	off := 0
	for _, f := range strings.Fields(s) {
		i := strings.Index(s[off:], f)
		if i < 0 {
			return -1
		}
		if f == field {
			return off + i
		}
		off += i + len(f)
	}
	return -1
}

// fieldBefore reports whether field occurs as a whitespace-delimited
// field of s strictly before byte offset limit.
func fieldBefore(s, field string, limit int) bool {
	off := 0
	for _, f := range strings.Fields(s) {
		i := strings.Index(s[off:], f)
		if i < 0 {
			return false
		}
		if off+i >= limit {
			return false
		}
		if f == field {
			return true
		}
		off += i + len(f)
	}
	return false
}
