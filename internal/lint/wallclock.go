package lint

import (
	"go/ast"
	"go/types"
)

// wallclockRule bans wall-clock reads everywhere in the module. The
// simulator's notion of time is sim.Engine's virtual clock; any
// time.Now/Sleep/Timer leaking into model or reporting code couples
// results to the host machine. Legitimate self-timing (wall-clock cost
// banners in cmd/afareport) is annotated //afalint:allow wallclock.
type wallclockRule struct{}

func (wallclockRule) Name() string { return "wallclock" }

func (wallclockRule) Doc() string {
	return "no time.Now/Since/Until/Sleep/After/Tick/Timer/Ticker; simulated time comes from sim.Engine"
}

// wallclockBanned lists the time-package functions that read or wait on
// the wall clock. Pure arithmetic (time.Duration, constants, Round) is
// deterministic and allowed.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (wallclockRule) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		names := importNames(f, "time")
		if len(names) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !names[id.Name] || !wallclockBanned[sel.Sel.Name] {
				return true
			}
			// With type info, skip identifiers that shadow the import.
			if p.Info != nil {
				if obj, found := p.Info.Uses[id]; found {
					if pn, ok := obj.(*types.PkgName); !ok || pn.Imported().Path() != "time" {
						return true
					}
				}
			}
			out = append(out, p.finding("wallclock", sel.Pos(),
				"time.%s reads the wall clock; use the sim.Engine virtual clock", sel.Sel.Name))
			return true
		})
	}
	return out
}
