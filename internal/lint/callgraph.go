// Whole-program call graph for the reachability rules. The graph is
// built once per Run over every loaded package, from syntax plus
// go/types object resolution only (pure stdlib, same as the rest of the
// engine), and resolves Go's dynamism by creation-site attribution:
//
//   - static calls (package functions, concrete methods) resolve
//     exactly: every identifier that denotes a function adds an edge
//     from the enclosing declared function;
//   - referencing a named function as a *value* (passing a callback,
//     storing it in a struct) adds the same edge — whoever takes the
//     reference is charged with everything the referent can do,
//     wherever the value is eventually invoked;
//   - function literals are attributed to their enclosing declared
//     function, so a sink buried in a scheduled closure taints the
//     function that built the closure, not the event loop that later
//     fires it;
//   - a call through an interface method adds an edge to every module
//     method with that name whose receiver type implements the
//     interface (method sets resolved via go/types) — the one dynamic
//     dispatch creation-site attribution cannot see through.
//
// Calls through plain func values add no extra edges: the closure or
// function reference that produced the value was already charged at
// its creation site.
//
// Edges into non-module packages (time, os, math/rand, ...) are kept as
// terminal nodes: those are the sinks the reach* rules look for. Bodies
// of non-module functions are never analyzed, so e.g. fmt.Sprintf does
// not smuggle an os dependency into its callers.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program is every loaded package plus the module-wide call graph the
// whole-program rules consult. Run builds one per invocation.
type Program struct {
	Pkgs  []*Package
	graph *callGraph
	// hot is the lazily computed hot set (hotset.go) the perf rule
	// family consults.
	hot *hotSet
	// escape, when non-nil, is compiler escape-analysis output the
	// hotalloc rule cross-checks its syntactic candidates against.
	escape *EscapeIndex
}

// NewProgram assembles the call graph over pkgs. Packages outside pkgs
// (an afalint run restricted to a subtree) are simply absent from the
// graph, which narrows — never widens — what the reach rules report;
// the self-check and CI always run over the whole module.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs, graph: buildCallGraph(pkgs)}
}

// edge is one resolved call or function reference: callee plus the
// originating source position.
type edge struct {
	callee *types.Func
	pos    token.Pos
}

// callGraph is adjacency by caller. Lists are in deterministic build
// order (packages sorted, files sorted, syntax order within a file) and
// deduplicated per (caller, callee).
type callGraph struct {
	edges map[*types.Func][]edge
	// declared marks functions whose body was analyzed (module functions
	// from non-test files); traversal expands only these.
	declared map[*types.Func]bool
}

// callees returns the outgoing edges of fn, nil for sinks and
// undeclared functions.
func (g *callGraph) callees(fn *types.Func) []edge { return g.edges[fn] }

// ifaceCall records a dynamic dispatch site for the resolution pass.
type ifaceCall struct {
	caller *types.Func
	iface  *types.Interface
	name   string
	pos    token.Pos
}

func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{edges: map[*types.Func][]edge{}, declared: map[*types.Func]bool{}}
	var ifaceCalls []ifaceCall

	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			if p.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.declared[caller] = true
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						if it, name := p.ifaceCallee(n); it != nil {
							ifaceCalls = append(ifaceCalls, ifaceCall{caller, it, name, n.Pos()})
						}
					case *ast.Ident:
						// Any identifier denoting a function — call operand,
						// callback argument, struct-field value — charges the
						// enclosing function with the referent.
						if fn, ok := p.Info.Uses[n].(*types.Func); ok && fn.Pkg() != nil {
							g.addEdge(caller, fn, n.Pos())
						}
					}
					return true
				})
			}
		}
	}

	methods := moduleMethods(pkgs)
	for _, c := range ifaceCalls {
		for _, m := range methods {
			if m.fn.Name() != c.name {
				continue
			}
			if types.Implements(m.recv, c.iface) || types.Implements(types.NewPointer(m.recv), c.iface) {
				g.addEdge(c.caller, m.fn, c.pos)
			}
		}
	}
	return g
}

// addEdge appends caller→callee unless already present.
func (g *callGraph) addEdge(caller, callee *types.Func, pos token.Pos) {
	for _, e := range g.edges[caller] {
		if e.callee == callee {
			return
		}
	}
	g.edges[caller] = append(g.edges[caller], edge{callee, pos})
}

// ifaceCallee reports the interface type and method name call dispatches
// through, or (nil, "") for static calls, conversions, and builtins.
func (p *Package) ifaceCallee(call *ast.CallExpr) (*types.Interface, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	if it, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
		return it, fn.Name()
	}
	return nil, ""
}

// methodEntry pairs a concrete module method with its receiver type.
type methodEntry struct {
	recv types.Type
	fn   *types.Func
}

// moduleMethods lists every method of every named type declared in
// pkgs, in deterministic (package, scope-name, method) order.
func moduleMethods(pkgs []*Package) []methodEntry {
	var out []methodEntry
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				out = append(out, methodEntry{named, named.Method(i)})
			}
		}
	}
	return out
}

// reachStep is one hop of a shortest call chain.
type reachStep struct {
	fn  *types.Func
	pos token.Pos // call site in the previous function
}

// findReach runs a breadth-first search from entry and returns the
// shortest chain (excluding entry itself) to the first callee matching
// sink, or nil when no sink is reachable. Traversal expands only
// module-declared functions, so stdlib nodes are terminals. The result
// is deterministic: adjacency order is fixed at build time.
func (g *callGraph) findReach(entry *types.Func, sink func(*types.Func) bool) []reachStep {
	type item struct {
		fn    *types.Func
		chain []reachStep
	}
	visited := map[*types.Func]bool{entry: true}
	queue := []item{{entry, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.callees(cur.fn) {
			if visited[e.callee] {
				continue
			}
			visited[e.callee] = true
			chain := append(append([]reachStep{}, cur.chain...), reachStep{e.callee, e.pos})
			if sink(e.callee) {
				return chain
			}
			if g.declared[e.callee] {
				queue = append(queue, item{e.callee, chain})
			}
		}
	}
	return nil
}

// chainString renders a call chain "entry → helper → time.Now" with
// module-path prefixes trimmed to package names for readability.
func chainString(entry *types.Func, chain []reachStep) string {
	parts := []string{funcDisplayName(entry)}
	for _, s := range chain {
		parts = append(parts, funcDisplayName(s.fn))
	}
	return strings.Join(parts, " → ")
}

// funcDisplayName renders fn as pkgname.Name or pkgname.(Recv).Name.
func funcDisplayName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	name := fn.Pkg().Name() + "." + fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			name = fn.Pkg().Name() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return name
}
