// Package lint is afalint's rule engine: a pure-stdlib static analyzer
// that enforces the simulator's determinism contract.
//
// The contract (DESIGN.md "Determinism contract") is what makes the
// reproduction meaningful: the same seed must always yield the same
// latency distributions, so every figure and A/B kernel comparison is
// exactly reproducible. The rules mechanically exclude the ways
// nondeterminism leaks into Go programs:
//
//   - wallclock:     no wall-clock reads (time.Now, time.Sleep, ...);
//     simulated time comes from sim.Engine only.
//   - globalrand:    no math/rand or math/rand/v2 outside internal/rng;
//     all stochastic behaviour flows through the seeded,
//     release-stable xoshiro streams.
//   - maporder:      no iteration over maps in non-test internal code
//     unless the keys are collected and sorted first.
//   - nogoroutine:   no goroutines, channels, select, or sync in the
//     single-threaded sim-core packages, and no sim-core import of the
//     orchestration tier (internal/runner) — the one sanctioned home
//     for concurrency, which sits strictly above the event loop.
//   - floatcompare:  no ==/!= on floats and no float map keys in
//     sim-core code.
//
// On top of the per-file rules, a module-wide call graph (callgraph.go)
// powers the whole-program rules added in v2:
//
//   - reachwallclock: no call chain from a sim-core exported function
//     to a wall-clock read or os host state, however indirect.
//   - reachrand:      no call chain from a sim-core exported function
//     to math/rand, math/rand/v2, or crypto/rand.
//   - exhaustive:     a switch over a sim-core enum type covers every
//     declared constant or has an explicit default.
//   - simtime:        unit safety on sim.Time/sim.Duration arithmetic
//     (no Time+Time, no Time*k, no raw ≥1e6 ns literals).
//   - rngstream:      rng streams used in a runner.Map job are created
//     inside the job closure and never escape it.
//
// Two further families run under their own flags: the afaperf hot-set
// performance rules (`afalint -perf`, perf.go) and the state-integrity
// rules (`afalint -state`, state.go/fieldgraph.go) — must-assign field
// coverage for pooled objects, Reset() methods, and Snapshot()/Clone()
// methods, plus the package-level-state and use-after-recycle checks
// that protect per-job isolation and the planned snapshot/branch
// machinery.
//
// A finding on a given line is suppressed by the directive
//
//	//afalint:allow <rule> [<rule>...] [-- reason]
//
// placed either on the same line or on the line immediately above.
// The self-check test in this package runs every rule over the whole
// module, so `go test ./...` permanently enforces the contract.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule string         // rule name, e.g. "wallclock"
	Pos  token.Position // file:line:col of the offending node
	Msg  string         // human-readable explanation
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// Rule is one contract check. Check receives a loaded package and
// returns raw findings; the engine applies suppression directives
// afterwards. Scope names, for the generated documentation, where the
// rule applies ("whole module", "sim-core packages", "hot set
// (internal/)", ...).
type Rule interface {
	Name() string
	Doc() string
	Scope() string
	Check(p *Package) []Finding
}

// AllRules returns every rule in canonical order: the per-file rules
// of v1, then the call-graph and type-driven rules of v2.
func AllRules() []Rule {
	return []Rule{
		wallclockRule{},
		globalrandRule{},
		maporderRule{},
		nogoroutineRule{},
		floatcompareRule{},
		reachwallclockRule{},
		reachrandRule{},
		exhaustiveRule{},
		simtimeRule{},
		rngstreamRule{},
	}
}

// AllowDirective is the comment prefix that suppresses findings.
const AllowDirective = "//afalint:allow"

// Run assembles the whole-program view (module call graph) over pkgs,
// applies rules to every package, drops suppressed findings, and
// returns the rest sorted by (file, line, col, rule). When Run is given
// a subset of the module, the call graph covers just that subset, which
// narrows what the reach* rules can see; the self-check and CI always
// run the whole module.
func Run(pkgs []*Package, rules []Rule) []Finding {
	return RunWithEscape(pkgs, rules, nil)
}

// RunWithEscape is Run with compiler escape-analysis output attached:
// when esc is non-nil the hotalloc rule narrows its syntactic
// allocation candidates to the sites the compiler confirmed escape to
// the heap. The determinism rules ignore esc entirely.
func RunWithEscape(pkgs []*Package, rules []Rule, esc *EscapeIndex) []Finding {
	prog := NewProgram(pkgs)
	prog.escape = esc
	for _, p := range pkgs {
		p.prog = prog
	}
	var out []Finding
	for _, p := range pkgs {
		allowed := collectAllows(p)
		for _, r := range rules {
			for _, f := range r.Check(p) {
				if allowed.permits(f.Rule, f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by (file, line, col, rule, msg) — the
// one byte-stable order every output path (text, -json, -gha,
// baselines) emits, regardless of package load or rule execution
// order. Msg is the final tiebreak because one rule can report several
// distinct findings on the same node (e.g. two hotalloc closures on
// one line after gofmt joins them), and a total order must not depend
// on traversal order.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// allowKey identifies one (file, line) a directive applies to.
type allowKey struct {
	file string
	line int
}

// allowSet records which rules are allowed on which lines.
type allowSet map[allowKey]map[string]bool

// permits reports whether rule is suppressed at pos: a directive on the
// same line or the line immediately above covers it.
func (a allowSet) permits(rule string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if rules := a[allowKey{pos.Filename, line}]; rules[rule] {
			return true
		}
	}
	return false
}

// finding builds a Finding for a node position in p.
func (p *Package) finding(rule string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Rule: rule, Pos: p.Fset.Position(pos), Msg: fmt.Sprintf(format, args...)}
}

// isInternal reports whether the package lives under internal/.
func isInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// simCorePackages are the single-threaded simulator-core packages where
// the strictest rules (nogoroutine, floatcompare) apply: everything that
// executes inside the discrete-event loop.
var simCorePackages = map[string]bool{
	"sim":    true,
	"sched":  true,
	"nvme":   true,
	"nand":   true,
	"pcie":   true,
	"fio":    true,
	"raid":   true,
	"kernel": true,
	"irq":    true,
	"fault":  true,
	"health": true,
}

// isSimCore reports whether path is one of the sim-core packages
// (internal/<name> with <name> in the sim-core set).
func isSimCore(path string) bool {
	if !isInternal(path) {
		return false
	}
	rest := path[strings.LastIndex(path, "internal/")+len("internal/"):]
	return simCorePackages[rest]
}

// orchestrationPackages are the other side of the two-tier concurrency
// contract (DESIGN.md §7): the packages sanctioned to use goroutines,
// channels, and sync, because they fan *independent* sim runs out
// across CPUs — each job owns its engine and rng streams, and results
// merge in submission order, so no simulation state ever crosses a
// goroutine. The boundary is one-way: nogoroutine also forbids the
// sim-core packages from importing anything listed here.
var orchestrationPackages = map[string]bool{
	"runner": true,
}

// isOrchestration reports whether path is one of the orchestration-tier
// packages (internal/<name> with <name> in the orchestration set).
func isOrchestration(path string) bool {
	if !isInternal(path) {
		return false
	}
	rest := path[strings.LastIndex(path, "internal/")+len("internal/"):]
	return orchestrationPackages[rest]
}
