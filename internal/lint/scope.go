package lint

// Scope strings for the determinism rules, feeding the generated rule
// table (`afalint -doc`, README.md, DESIGN.md §5). Kept together so
// the documented scopes are reviewable side by side with the scope
// predicates they describe (isInternal, isSimCore, exportedFuncs); the
// perf family's scopes live with its rules in perf.go.

func (wallclockRule) Scope() string    { return "whole module" }
func (globalrandRule) Scope() string   { return "module except internal/rng" }
func (maporderRule) Scope() string     { return "internal/, non-test files" }
func (nogoroutineRule) Scope() string  { return "sim-core packages" }
func (floatcompareRule) Scope() string { return "sim-core packages, non-test files" }

func (reachwallclockRule) Scope() string { return "sim-core exported functions" }
func (reachrandRule) Scope() string      { return "sim-core exported functions" }
func (exhaustiveRule) Scope() string     { return "whole module, non-test files" }
func (simtimeRule) Scope() string        { return "whole module, non-test files" }
func (rngstreamRule) Scope() string      { return "whole module" }
