// The afaperf rule family: per-site performance checks over the hot
// set (hotset.go). Where the determinism rules guard *what* the
// simulator computes, these guard *how fast* it can compute it: the
// engine retires millions of events per simulated second, so a single
// allocation, dynamic dispatch, or map hash on the per-event path is a
// measurable throughput tax (the BenchmarkEngineThroughput 2.4×
// recovery in EXPERIMENTS.md came from exactly these findings).
//
// The family runs as `afalint -perf`, separately from the determinism
// contract: perf findings are advisory pressure with a debt ledger
// (lint_perf.baseline), not invariants — a justified hot-path
// allocation is annotated //afalint:allow hotalloc -- <reason> and
// stays.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PerfRules returns the afaperf family in canonical order.
func PerfRules() []Rule {
	return []Rule{
		hotallocRule{},
		hotifaceRule{},
		hotdeferRule{},
		hotappendRule{},
		hotmapRule{},
	}
}

const perfScope = "hot set (internal/)"

// ---------------------------------------------------------------------
// hotalloc: allocation per event.

// hotallocRule flags syntactic allocation sites in hot functions:
// escaping closures (a func literal capturing variables allocates on
// every evaluation), &T{} and new(T), and method values (x.M used as a
// value allocates a bound-method closure). With -escape-data the
// candidates are cross-checked against the compiler's own escape
// analysis and only confirmed heap allocations survive.
type hotallocRule struct{}

func (hotallocRule) Name() string  { return "hotalloc" }
func (hotallocRule) Scope() string { return perfScope }

func (hotallocRule) Doc() string {
	return "no per-event allocation in hot functions: escaping closures, &T{}/new, method values; cross-checked against -gcflags=-m escape output when given"
}

func (hotallocRule) Check(p *Package) []Finding {
	var out []Finding
	for _, h := range p.hotFuncs() {
		// Func literals that are invoked on the spot compile to a direct
		// call; only literals that escape as values allocate.
		invoked := map[*ast.FuncLit]bool{}
		// Selectors in call position are dispatches, not method values.
		called := map[*ast.SelectorExpr]bool{}
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.FuncLit:
					invoked[fun] = true
				case *ast.SelectorExpr:
					called[fun] = true
				}
			}
			return true
		})
		report := func(pos token.Pos, format string, args ...any) {
			if esc := p.prog.escape; esc != nil && !esc.EscapesAt(p.Fset.Position(pos)) {
				return
			}
			out = append(out, p.finding("hotalloc", pos, format, args...))
		}
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if invoked[n] {
					return true
				}
				if captured := p.firstCapture(n, h.decl); captured != "" {
					report(n.Pos(), "closure capturing %s allocates per event in %s (%s); bind the callback once or use a pooled carrier",
						captured, funcDisplayName(h.fn), h.info.via())
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						report(n.Pos(), "&%s{} allocates per event in %s (%s); pool or reuse the object",
							types.ExprString(cl.Type), funcDisplayName(h.fn), h.info.via())
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && p.isBuiltin(id) && len(n.Args) == 1 {
					report(n.Pos(), "new(%s) allocates per event in %s (%s); pool or reuse the object",
						types.ExprString(n.Args[0]), funcDisplayName(h.fn), h.info.via())
				}
			case *ast.SelectorExpr:
				if called[n] {
					return true
				}
				fn, ok := p.Info.Uses[n.Sel].(*types.Func)
				if !ok {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				// A method *expression* (T.M) is a plain function; only a
				// method *value* (x.M with x an operand) binds a receiver.
				if tv, found := p.Info.Types[n.X]; found && tv.IsType() {
					return true
				}
				report(n.Pos(), "method value %s.%s allocates a bound-method closure per event in %s (%s); bind it once at construction",
					types.ExprString(n.X), n.Sel.Name, funcDisplayName(h.fn), h.info.via())
			}
			return true
		})
	}
	return out
}

// firstCapture returns the name of the first variable lit captures from
// its enclosing function, or "" when the literal is capture-free (and
// therefore compiled as a static function, no allocation).
func (p *Package) firstCapture(lit *ast.FuncLit, encl *ast.FuncDecl) string {
	capture := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capture != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if posWithin(v.Pos(), encl) && !posWithin(v.Pos(), lit) {
			capture = v.Name()
		}
		return true
	})
	return capture
}

// isBuiltin reports whether id resolves to a Go builtin (new, make,
// append, delete, ...) rather than a shadowing declaration.
func (p *Package) isBuiltin(id *ast.Ident) bool {
	if p.Info == nil {
		return false
	}
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}

// ---------------------------------------------------------------------
// hotiface: dynamic dispatch with a statically known concrete type.

// hotifaceRule flags interface method calls and type assertions in hot
// functions when the interface variable is assigned exactly once, from
// a concrete type, inside the same function — the compiler usually
// cannot devirtualize across the event loop's callback indirection,
// but the author can: use the concrete type directly.
type hotifaceRule struct{}

func (hotifaceRule) Name() string  { return "hotiface" }
func (hotifaceRule) Scope() string { return perfScope }

func (hotifaceRule) Doc() string {
	return "no interface dispatch or type assertion in hot functions when the concrete type is statically known in the same function"
}

func (hotifaceRule) Check(p *Package) []Finding {
	var out []Finding
	for _, h := range p.hotFuncs() {
		known := p.knownConcrete(h.decl)
		if len(known) == 0 {
			continue
		}
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					return true
				}
				if t := known[p.objOf(id)]; t != nil {
					out = append(out, p.finding("hotiface", n.Pos(),
						"interface call %s.%s in %s (%s) dispatches dynamically though the concrete type is statically %s; use the concrete type",
						id.Name, sel.Sel.Name, funcDisplayName(h.fn), h.info.via(), t))
				}
			case *ast.TypeAssertExpr:
				id, ok := ast.Unparen(n.X).(*ast.Ident)
				if !ok {
					return true
				}
				if t := known[p.objOf(id)]; t != nil {
					out = append(out, p.finding("hotiface", n.Pos(),
						"type assertion on %s in %s (%s) though its concrete type is statically %s; use the concrete type",
						id.Name, funcDisplayName(h.fn), h.info.via(), t))
				}
			}
			return true
		})
	}
	return out
}

// objOf resolves an identifier to its variable object (use or def).
func (p *Package) objOf(id *ast.Ident) *types.Var {
	if v, ok := p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// knownConcrete maps each interface-typed variable declared in fd's
// body to its concrete type, when the variable is assigned exactly once
// and from a non-interface, non-nil expression.
func (p *Package) knownConcrete(fd *ast.FuncDecl) map[*types.Var]types.Type {
	type state struct {
		assigns int
		t       types.Type
	}
	seen := map[*types.Var]*state{}
	note := func(lhs *ast.Ident, rhs ast.Expr) {
		v := p.objOf(lhs)
		if v == nil || !posWithin(v.Pos(), fd.Body) || !types.IsInterface(v.Type()) {
			return
		}
		st := seen[v]
		if st == nil {
			st = &state{}
			seen[v] = st
		}
		st.assigns++
		t := p.typeOf(rhs)
		if t == nil || types.IsInterface(t) || isUntypedNil(t) {
			st.t = nil
			return
		}
		if st.assigns == 1 {
			st.t = t
		} else {
			st.t = nil
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					note(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) != len(n.Names) {
				return true
			}
			for i, name := range n.Names {
				note(name, n.Values[i])
			}
		}
		return true
	})
	out := map[*types.Var]types.Type{}
	for v, st := range seen { //afalint:allow maporder -- map-to-map filter; no ordering escapes
		if st.assigns == 1 && st.t != nil {
			out[v] = st.t
		}
	}
	return out
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// ---------------------------------------------------------------------
// hotdefer: defer on the per-event path.

// hotdeferRule flags defer statements in hot functions: defer has
// fixed per-call bookkeeping the event loop pays millions of times,
// and sim-core functions are short and single-exit enough to
// restructure.
type hotdeferRule struct{}

func (hotdeferRule) Name() string  { return "hotdefer" }
func (hotdeferRule) Scope() string { return perfScope }

func (hotdeferRule) Doc() string {
	return "no defer in hot functions; the per-call bookkeeping multiplies by events per second"
}

func (hotdeferRule) Check(p *Package) []Finding {
	var out []Finding
	for _, h := range p.hotFuncs() {
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				out = append(out, p.finding("hotdefer", d.Pos(),
					"defer in hot function %s (%s); restructure to a direct call at each exit",
					funcDisplayName(h.fn), h.info.via()))
			}
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------
// hotappend: unbounded growth in a loop.

// hotappendRule flags append-in-a-loop to a slice that was declared in
// the same function without capacity: every growth step reallocates
// and copies, per event. Slices made with make(T, len, cap), and
// slices owned elsewhere (parameters, fields — their capacity is the
// owner's business), are exempt.
type hotappendRule struct{}

func (hotappendRule) Name() string  { return "hotappend" }
func (hotappendRule) Scope() string { return perfScope }

func (hotappendRule) Doc() string {
	return "no append inside a loop in hot functions to a locally declared slice without preallocated capacity"
}

func (hotappendRule) Check(p *Package) []Finding {
	var out []Finding
	for _, h := range p.hotFuncs() {
		prealloc := p.localSlices(h.decl)
		seen := map[token.Pos]bool{}
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || seen[call.Pos()] {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" || !p.isBuiltin(id) || len(call.Args) == 0 {
					return true
				}
				target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return true
				}
				hasCap, local := prealloc[p.objOf(target)]
				if !local || hasCap {
					return true
				}
				seen[call.Pos()] = true
				out = append(out, p.finding("hotappend", call.Pos(),
					"append to %s grows inside a loop in %s (%s); preallocate with make(..., 0, n) or reuse a buffer",
					target.Name, funcDisplayName(h.fn), h.info.via()))
				return true
			})
			return true
		})
	}
	return out
}

// localSlices maps slice variables declared inside fd's body to
// whether their initializer preallocates capacity (make with an
// explicit cap argument).
func (p *Package) localSlices(fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	note := func(lhs *ast.Ident, rhs ast.Expr) {
		v := p.objOf(lhs)
		if v == nil || !posWithin(v.Pos(), fd.Body) {
			return
		}
		if _, ok := v.Type().Underlying().(*types.Slice); !ok {
			return
		}
		if rhs != nil {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && p.isBuiltin(id) && len(call.Args) >= 3 {
					out[v] = true
					return
				}
			}
		}
		if !out[v] {
			out[v] = false
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					note(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				note(name, rhs)
			}
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------
// hotmap: hashing on the per-event path.

// hotmapRule flags map operations in hot functions — iteration,
// indexed access, and delete. Every one hashes; iteration additionally
// forces the randomized-order machinery. Hot-path state wants dense
// integer-indexed slices (CPU ids, SSD ids, queue ids are all small
// ints here).
type hotmapRule struct{}

func (hotmapRule) Name() string  { return "hotmap" }
func (hotmapRule) Scope() string { return perfScope }

func (hotmapRule) Doc() string {
	return "no map iteration, lookup, or delete in hot functions; per-event state wants dense slice indexing"
}

func (hotmapRule) Check(p *Package) []Finding {
	var out []Finding
	for _, h := range p.hotFuncs() {
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapType(n.X) {
					out = append(out, p.finding("hotmap", n.Pos(),
						"map iteration in hot function %s (%s); use a slice or pre-sorted key list",
						funcDisplayName(h.fn), h.info.via()))
				}
			case *ast.IndexExpr:
				if p.isMapType(n.X) {
					out = append(out, p.finding("hotmap", n.Pos(),
						"map access in hot function %s (%s); hashing per event — use dense slice indexing",
						funcDisplayName(h.fn), h.info.via()))
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && p.isBuiltin(id) {
					out = append(out, p.finding("hotmap", n.Pos(),
						"map delete in hot function %s (%s); hashing per event — use dense slice indexing",
						funcDisplayName(h.fn), h.info.via()))
				}
			}
			return true
		})
	}
	return out
}

// isMapType reports whether e's static type is a map.
func (p *Package) isMapType(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
