package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPerfFixtures runs the afaperf family over the perf fixture
// corpus and asserts the exact set of finding positions against the
// want: markers — positive cases, the constructor exemption, the
// capture-free closure, the preallocated slice, the //afalint:allow
// suppression, and every cold control at once.
func TestPerfFixtures(t *testing.T) {
	p := loadFixture(t, "perf", "repro/internal/sim")
	var got []string
	for _, f := range Run([]*Package{p}, PerfRules()) {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
	}
	sort.Strings(got)
	want := expectations(p)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
	}
}

// TestPerfScopedToInternal loads the same corpus under a cmd/ path
// whose tail still matches the anchor specs ("sim"): the hot set can
// form, but the perf rules only police internal packages, so the run
// must be silent.
func TestPerfScopedToInternal(t *testing.T) {
	p := loadFixture(t, "perf", "repro/cmd/sim")
	if got := Run([]*Package{p}, PerfRules()); len(got) != 0 {
		t.Errorf("perf rules fired outside internal/: %v", got)
	}
}

// TestPerfNeedsHotRoots loads the corpus under an internal path whose
// tail matches no anchor or scheduler spec: without roots there is no
// hot set and no findings — the rules never degrade to whole-package
// style checks.
func TestPerfNeedsHotRoots(t *testing.T) {
	p := loadFixture(t, "perf", "repro/internal/fixture")
	if got := Run([]*Package{p}, PerfRules()); len(got) != 0 {
		t.Errorf("perf rules fired without any hot root: %v", got)
	}
}

// TestPerfMuxAnchors covers the multiplexer anchors: the perfmux
// fixture references no scheduling primitive at all, so the findings in
// tickSlot, submitArrival, and their callees exist purely because the
// (fio, Multiplexer, tickSlot/submitArrival) anchors root them — and
// the cold method's map access stays silent.
func TestPerfMuxAnchors(t *testing.T) {
	p := loadFixture(t, "perfmux", "repro/internal/fio")
	var got []string
	for _, f := range Run([]*Package{p}, PerfRules()) {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
	}
	sort.Strings(got)
	want := expectations(p)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
	}
}

// TestPerfMuxAnchorsNeedFioTail reloads the same corpus under a path
// whose tail matches no anchor: with no scheduler references either,
// there is no hot set and the run must be silent.
func TestPerfMuxAnchorsNeedFioTail(t *testing.T) {
	p := loadFixture(t, "perfmux", "repro/internal/muxfixture")
	if got := Run([]*Package{p}, PerfRules()); len(got) != 0 {
		t.Errorf("perf rules fired without the fio anchor tail: %v", got)
	}
}

// TestHotSetSharedCallee is the hot-set attribution regression: Hot
// and Cold share the callee shared(); the callee's finding must carry
// the shortest chain through the hot side and must not mention the
// cold one.
func TestHotSetSharedCallee(t *testing.T) {
	p := loadFixture(t, "perf", "repro/internal/sim")
	var msg string
	for _, f := range Run([]*Package{p}, PerfRules()) {
		if f.Rule == "hotdefer" && filepath.Base(f.Pos.Filename) == "hotset.go" {
			msg = f.Msg
		}
	}
	if msg == "" {
		t.Fatal("no hotdefer finding in hotset.go; shared() was not analyzed as hot")
	}
	if !strings.Contains(msg, "fixture.Hot → fixture.shared") {
		t.Errorf("finding does not carry the shortest hot chain: %q", msg)
	}
	if strings.Contains(msg, "Cold") {
		t.Errorf("hot-set chain routed through the cold caller: %q", msg)
	}
}

// TestParseEscapeOutput pins the -gcflags=-m parser: position-prefixed
// heap diagnostics index by (basename, line); banners, non-escape
// decisions, and malformed lines are ignored.
func TestParseEscapeOutput(t *testing.T) {
	idx := ParseEscapeOutput([]byte(strings.Join([]string{
		"# repro/internal/sim",
		"./internal/sim/engine.go:42:17: &Event{} escapes to heap",
		"internal/sim/engine.go:50:2: moved to heap: ev",
		"./internal/sim/engine.go:61:9: func literal escapes to heap",
		"./internal/sim/engine.go:70:9: make([]int, 8) does not escape",
		"can inline (*Engine).Now",
		"escapes to heap", // marker with no position prefix
		"",
	}, "\n")))
	if idx.Len() != 3 {
		t.Fatalf("indexed %d sites, want 3", idx.Len())
	}
	for _, c := range []struct {
		file string
		line int
		want bool
	}{
		{"/abs/checkout/internal/sim/engine.go", 42, true},
		{"engine.go", 50, true},
		{"engine.go", 61, true},
		{"engine.go", 70, false},
		{"other.go", 42, false},
	} {
		pos := fakePosition(c.file, c.line)
		if got := idx.EscapesAt(pos); got != c.want {
			t.Errorf("EscapesAt(%s:%d) = %v, want %v", c.file, c.line, got, c.want)
		}
	}
}

// TestEscapeFilterNarrowsHotalloc proves the cross-check contract:
// with escape data attached, hotalloc keeps only compiler-confirmed
// sites while every other perf rule is unaffected. The index is built
// from the conservative run's own first hotalloc finding, so the test
// does not hardcode fixture line numbers.
func TestEscapeFilterNarrowsHotalloc(t *testing.T) {
	p := loadFixture(t, "perf", "repro/internal/sim")
	full := Run([]*Package{p}, PerfRules())
	var confirmed *Finding
	others := 0
	hotallocs := 0
	for i, f := range full {
		if f.Rule == "hotalloc" {
			hotallocs++
			if confirmed == nil {
				confirmed = &full[i]
			}
		} else {
			others++
		}
	}
	if hotallocs < 2 {
		t.Fatalf("conservative run found %d hotalloc candidates; fixture should have several", hotallocs)
	}
	escTxt := fmt.Sprintf("./x/%s:%d:1: func literal escapes to heap\n",
		filepath.Base(confirmed.Pos.Filename), confirmed.Pos.Line)
	// Reload: Run attaches a fresh Program to the package each time, but
	// keep the escape run independent for clarity.
	narrowed := RunWithEscape([]*Package{p}, PerfRules(), ParseEscapeOutput([]byte(escTxt)))
	var keptAlloc, keptOthers int
	for _, f := range narrowed {
		if f.Rule == "hotalloc" {
			keptAlloc++
			if f.Pos.Line != confirmed.Pos.Line || filepath.Base(f.Pos.Filename) != filepath.Base(confirmed.Pos.Filename) {
				t.Errorf("unconfirmed hotalloc survived the escape filter: %v", f)
			}
		} else {
			keptOthers++
		}
	}
	if keptAlloc == 0 {
		t.Error("the compiler-confirmed site was filtered out")
	}
	if keptAlloc >= hotallocs {
		t.Errorf("escape data did not narrow hotalloc: %d of %d kept", keptAlloc, hotallocs)
	}
	if keptOthers != others {
		t.Errorf("escape data changed non-hotalloc findings: %d, want %d", keptOthers, others)
	}
}

// TestPerfRuleMetadata keeps every family addressable by the
// suppression directive and the generated docs: unique names,
// non-empty docs and scopes — for the perf and state rules and, since
// the -doc table carries a scope column, for the determinism rules
// too.
func TestPerfRuleMetadata(t *testing.T) {
	seen := map[string]bool{}
	all := append(AllRules(), PerfRules()...)
	all = append(all, StateRules()...)
	for _, r := range all {
		if r.Name() == "" || r.Doc() == "" || r.Scope() == "" {
			t.Errorf("rule %T has empty metadata", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	if len(seen) != 19 {
		t.Errorf("expected 19 rules across the three families, have %d", len(seen))
	}
	for _, r := range PerfRules() {
		if !strings.HasPrefix(r.Name(), "hot") {
			t.Errorf("perf rule %q should carry the hot* family prefix", r.Name())
		}
	}
}
