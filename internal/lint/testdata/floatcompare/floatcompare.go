// Fixture for the floatcompare rule: ==/!= over float64, float32, and
// untyped constants, float map keys in type and make expressions, an
// annotated sentinel, and the epsilon / integer comparisons that must
// stay clean.
package fixture

func equal(a, b float64) bool {
	return a == b // want:floatcompare
}

func notEqual(a, b float32) bool {
	return a != b // want:floatcompare
}

func againstLiteral(a float64) bool {
	return a == 0 // want:floatcompare
}

type table struct {
	weights map[float64]int // want:floatcompare
}

func makeTable() map[float32]bool { // want:floatcompare
	return make(map[float32]bool) // want:floatcompare
}

func suppressed(x float64) bool {
	return x == 0 //afalint:allow floatcompare -- exact sentinel, never computed
}

// epsilon is the sanctioned way to compare computed floats.
func epsilon(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func ints(a, b int) bool { return a == b }
