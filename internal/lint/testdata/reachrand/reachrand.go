// Fixture for the reachrand rule, loaded as a sim-core package: call
// chains from exported entry points to non-reproducible random
// sources. The math/rand import line is the v1 globalrand finding; the
// chains are what only the call graph sees.
package fixture

import (
	crand "crypto/rand"
	"math/rand" // want:globalrand
)

func draw() int {
	return rand.Intn(6)
}

// Jitter reaches the unseeded global generator through a helper: the
// indirect violation globalrand's import scan cannot attribute to an
// entry point.
func Jitter() int { return draw() } // want:reachrand

// DirectRand is one hop to math/rand; the import finding above already
// covers this file, so reachrand stays silent on direct chains.
func DirectRand() int { return rand.Intn(6) }

// Entropy is a one-hop crypto/rand chain: no other rule covers
// crypto/rand, so even direct use is a reach finding.
func Entropy() byte { // want:reachrand
	var b [1]byte
	_, _ = crand.Read(b[:])
	return b[0]
}

// Suppressed is the documented-debt form.
func Suppressed() int { return draw() } //afalint:allow reachrand -- fixture: documented debt

// Mix is deterministic arithmetic and must stay clean.
func Mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	return x ^ x>>33
}
