// Fixture for the rngstream rule, loaded as a plain internal package
// (runner.Map callers live above the sim core): every stream a Map job
// draws from must be created inside the job closure, or the
// byte-identical serial/parallel guarantee dies in pool-scheduling
// order.
package fixture

import (
	"repro/internal/rng"
	"repro/internal/runner"
)

// shared is the package-level hazard: one stream visible to every job.
var shared = rng.New(7)

// holder is package state a job could leak a stream into.
var holder struct {
	s *rng.Stream
}

// captured closes over one stream from the enclosing scope: jobs then
// interleave draws in completion order.
func captured(seeds []uint64) []float64 {
	stream := rng.New(1)
	return runner.Map(runner.Options{}, seeds, func(_ int, _ uint64) float64 {
		return stream.Float64() // want:rngstream
	})
}

// packageShared draws from the package-level stream inside a job.
func packageShared(seeds []uint64) []float64 {
	return runner.Map(runner.Options{}, seeds, func(_ int, _ uint64) float64 {
		return shared.Float64() // want:rngstream
	})
}

// escapes stores a job-owned stream into package state: the next run
// (or the next job) inherits pool-timing-dependent draw positions.
func escapes(seeds []uint64) []float64 {
	return runner.Map(runner.Options{}, seeds, func(_ int, seed uint64) float64 {
		s := rng.New(seed)
		holder.s = s // want:rngstream
		return s.Float64()
	})
}

// owned is the sanctioned shape: every job derives its own stream from
// its spec, exactly like the experiment fan-outs in internal/core.
func owned(seeds []uint64) []float64 {
	return runner.Map(runner.Options{}, seeds, func(_ int, seed uint64) float64 {
		s := rng.New(seed)
		return s.Float64()
	})
}

// suppressed documents a deliberate capture (e.g. a read-only
// pre-derived table keyed by job index would be annotated like this).
func suppressed(seeds []uint64) []float64 {
	stream := rng.New(1)
	return runner.Map(runner.Options{}, seeds, func(_ int, _ uint64) float64 {
		return stream.Float64() //afalint:allow rngstream -- fixture: documented capture
	})
}
