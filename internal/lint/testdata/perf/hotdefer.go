package fixture

func DeferHot(e *Engine) {
	e.After(1, deferee)
}

func deferee() {
	defer done() // want:hotdefer
	work()
}

func deferCold() {
	defer done()
}

func done() {}
func work() {}
