package fixture

func AppendHot(e *Engine, vals []int) {
	e.Schedule(1, func() { // want:hotalloc
		var out []int
		for _, v := range vals {
			out = append(out, v) // want:hotappend
		}
		// Preallocated capacity: growth never reallocates.
		pre := make([]int, 0, len(vals))
		for _, v := range vals {
			pre = append(pre, v)
		}
		sink(out, pre)
	})
}

func appendCold(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

func sink(a, b []int) { _, _ = a, b }
