package fixture

type payload struct{ n int }

func AllocHot(e *Engine, n int) {
	e.Schedule(1, func() { // want:hotalloc
		_ = &payload{n: n} // want:hotalloc
		_ = new(payload)   // want:hotalloc
		f := e.Step        // want:hotalloc
		_ = f()
		// An immediately invoked literal compiles to a direct call.
		func() { _ = n }()
		//afalint:allow hotalloc -- fixture: justified refill on freelist miss
		_ = &payload{}
	})
	// A capture-free literal is a static function: no allocation.
	e.After(1, func() { noop() })
}

func allocCold() {
	_ = &payload{}
	_ = new(payload)
}

func noop() {}
