package fixture

func MapHot(e *Engine, m map[int]int) {
	e.Schedule(1, func() { // want:hotalloc
		for k := range m { // want:hotmap
			_ = k
		}
		_ = m[3]     // want:hotmap
		m[4] = 5     // want:hotmap
		delete(m, 4) // want:hotmap
	})
}

func mapCold(m map[int]int) int { return m[0] }
