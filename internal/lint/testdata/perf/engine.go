// Fixture stub of the sim engine surface. The hot-set analysis matches
// roots and scheduling primitives by (package-path tail, receiver,
// name), so this package — loaded by the tests as repro/internal/sim —
// provides Engine with the primitive signatures and nothing else.
package fixture

type Time int64
type Duration int64

type Engine struct{ now Time }

// Step is a hot-set anchor: the event loop itself.
func (e *Engine) Step() bool { return false }

// Schedule and After are scheduling primitives: a function that hands
// either of them a callback becomes a hot root.
func (e *Engine) Schedule(d Duration, fn func()) {}
func (e *Engine) After(d Duration, fn func())    {}

// NewEngine exists to prove the constructor exemption: it references a
// scheduling primitive but must NOT become a hot root, so the defer
// and allocation below stay unreported.
func NewEngine(fn func()) *Engine {
	e := &Engine{}
	defer fn()
	e.Schedule(1, fn)
	return e
}
