// Hot-set attribution fixture: Hot and Cold share the callee shared().
// The callee must be analyzed as hot — reached from the hot side — and
// its finding must carry the shortest chain through Hot, never through
// Cold. TestHotSetSharedCallee pins the chain text.
package fixture

func Hot(e *Engine) {
	e.Schedule(1, func() { shared(e) }) // want:hotalloc
}

func Cold(e *Engine) {
	shared(e)
}

func shared(e *Engine) {
	defer cleanup() // want:hotdefer
	_ = e
}

func cleanup() {}
