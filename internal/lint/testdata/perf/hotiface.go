package fixture

type doer interface{ Do() int }

type impl struct{ v int }

func (i impl) Do() int { return i.v }

func IfaceHot(e *Engine) {
	e.Schedule(1, ifaceWork)
}

func ifaceWork() {
	var d doer = impl{v: 1}
	_ = d.Do()                 // want:hotiface
	if c, ok := d.(impl); ok { // want:hotiface
		_ = c
	}
	// Assigned from an interface-typed expression: the concrete type is
	// not statically known here, so dispatch is legitimate.
	var unknown doer = pick()
	_ = unknown.Do()
}

func pick() doer { return impl{} }
