// Fixture for the pooled marker: a ring-buffer reuse scheme the
// structural freelist scan cannot see. The marker forces pool
// treatment; data is never reinitialized on the acquire path, so the
// finding lands on the type declaration.
package fixture

// carrier is reused through ring.slots without ever shrinking or
// appending, so only the directive reveals the pooling.
//
//afalint:pooled -- ring reuse; no append/shrink pair for the scan
type carrier struct { // want:resetcover
	seq  int
	data []byte
}

type ring struct {
	slots []*carrier
	next  int
}

func (r *ring) acquire() *carrier {
	c := r.slots[r.next%len(r.slots)]
	r.next++
	c.seq = r.next
	return c
}

func fill(c *carrier, b byte) {
	c.data = append(c.data, b)
}
