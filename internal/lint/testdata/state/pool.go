// Fixture for the pool-driven state rules: a freelist whose recycle
// path misses a field (resetcover at the acquire function), a pool
// cleaned by whole-object reset, a pool whose initialization lives in
// its one caller (the intersection credit), use-after-release sites
// (poolescape), and an annotated exemption.
package fixture

// leakyReq is pooled through leakyPool.free. The acquire path assigns
// id, the release path clears done, and the only caller assigns cookie
// on just one branch — so cookie can leak across reuses.
type leakyReq struct {
	id     int
	cookie string
	done   func()
}

type leakyPool struct {
	free []*leakyReq
}

func (p *leakyPool) get(id int) *leakyReq { // want:resetcover
	var r *leakyReq
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		r = &leakyReq{}
	}
	r.id = id
	return r
}

func (p *leakyPool) put(r *leakyReq) {
	r.done = nil
	p.free = append(p.free, r)
}

func (p *leakyPool) run(id int, important bool, cb func()) {
	r := p.get(id)
	if important {
		r.cookie = "hot"
	}
	r.done = cb
	r.done()
	p.put(r)
}

// cleanReq's release path resets the whole object, so every field is
// covered no matter what the users scribble on it.
type cleanReq struct {
	id   int
	data []byte
}

type cleanPool struct {
	free []*cleanReq
}

func (p *cleanPool) get() *cleanReq {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	return &cleanReq{}
}

func (p *cleanPool) put(r *cleanReq) {
	*r = cleanReq{}
	p.free = append(p.free, r)
}

func (p *cleanPool) use(n int) {
	r := p.get()
	r.id = n
	r.data = append(r.data, byte(n))
	p.put(r)
}

// job's acquire function only hands the object out; its single caller
// fully initializes it, which the caller-intersection credit accepts.
type job struct {
	kind int
	size int64
}

type jobPool struct {
	free []*job
}

func (p *jobPool) get() *job {
	if n := len(p.free); n > 0 {
		j := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return j
	}
	return &job{}
}

func (p *jobPool) put(j *job) {
	p.free = append(p.free, j)
}

func (p *jobPool) submit(kind int, size int64) *job {
	j := p.get()
	j.kind = kind
	j.size = size
	return j
}

// escReq exercises poolescape: any use of the pointer after the append
// that released it, including captures inside a closure.
type escReq struct {
	v int
}

type escPool struct {
	free []*escReq
}

func (p *escPool) get() *escReq {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	return &escReq{}
}

func (p *escPool) releaseThenTouch(r *escReq) {
	p.free = append(p.free, r)
	r.v = 0 // want:poolescape
}

func (p *escPool) releaseThenCapture(r *escReq, sink func(func() int)) {
	p.free = append(p.free, r)
	sink(func() int { return r.v }) // want:poolescape
}

func (p *escPool) releaseLast(r *escReq) {
	r.v = 0
	p.free = append(p.free, r)
}

func (p *escPool) releaseThenPeek(r *escReq) int {
	p.free = append(p.free, r)
	return r.v //afalint:allow poolescape -- fixture: single-threaded peek right after release
}
