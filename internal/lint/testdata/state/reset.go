// Fixture for resetcover on explicit Reset() methods: a missed field,
// the range-clear and delegate-to-element idioms that do count, a
// branch that skips a field, a sticky exemption, and an allow.
package fixture

// counterBank clears counts (range-clear idiom) and total but forgets
// peak.
type counterBank struct {
	counts []int64
	total  int64
	peak   int64
}

func (b *counterBank) bump(v int64) {
	b.counts[0] += v
	b.total += v
	if v > b.peak {
		b.peak = v
	}
}

func (b *counterBank) Reset() { // want:resetcover
	for i := range b.counts {
		b.counts[i] = 0
	}
	b.total = 0
}

// tub's high-water mark survives reset by design.
type tub struct {
	fill  int
	spill int //afalint:sticky -- fixture: high-water mark survives reset
}

func (t *tub) add(v int) {
	t.fill += v
	if t.fill > t.spill {
		t.spill = t.fill
	}
}

func (t *tub) Reset() { t.fill = 0 }

// latch clears count only on the path that does not return early; the
// early return assigns armed alone, so count is not definite.
type latch struct {
	armed bool
	count int
}

func (l *latch) trip() {
	l.armed = true
	l.count++
}

func (l *latch) Reset() { // want:resetcover
	if l.count == 0 {
		l.armed = false
		return
	}
	l.count = 0
	l.armed = false
}

// bankSet delegates to element resets (the second range idiom); the
// vacuous zero-iteration case is accepted as covered.
type bank struct {
	n int64
}

func (b *bank) Reset() { b.n = 0 }

func (b *bank) hit() { b.n++ }

type bankSet struct {
	banks []*bank
}

func (s *bankSet) grow() {
	s.banks = append(s.banks, &bank{})
}

func (s *bankSet) Reset() {
	for _, b := range s.banks {
		b.Reset()
	}
}

// residue documents an intentionally partial reset via the directive.
type residue struct {
	tail int
}

func (r *residue) leak() { r.tail++ }

//afalint:allow resetcover -- fixture: intentional partial reset
func (r *residue) Reset() {}
