// Fixture for globalmut: package-level vars are findings in sim-core,
// consts and blank conformance assignments are not, and the allow
// directive records accepted debt.
package fixture

var labels = []string{"read", "write"} // want:globalmut

var u, v = 1, 2 // want:globalmut want:globalmut

const maxLabels = 2

var _ = maxLabels

//afalint:allow globalmut -- fixture: accepted debt
var debt int
