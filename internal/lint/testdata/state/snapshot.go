// Fixture for snapshotcover: a keyed literal that misses a field, a
// whole-value Clone that is fine, a built-up local that misses a
// field, a return of stored state that proves nothing (and is
// skipped), and an allow.
package fixture

type gauge struct {
	val  int64
	errs int64
}

func (g *gauge) touch() {
	g.val++
	g.errs++
}

func (g *gauge) Snapshot() gauge {
	return gauge{val: g.val} // want:snapshotcover
}

func (g *gauge) Clone() gauge {
	return gauge{val: g.val} //afalint:allow snapshotcover -- fixture: partial clone is intentional
}

// meter clones by whole-value copy: every field is covered at once.
type meter struct {
	a int
	b int
}

func (m *meter) Clone() *meter {
	out := *m
	return &out
}

// prober builds the snapshot field by field and forgets y.
type probe struct {
	x int
	y int
}

type prober struct {
	p probe
}

func (pr *prober) Snapshot() probe {
	out := probe{}
	out.x = pr.p.x
	return out // want:snapshotcover
}

// tracker returns stored state; the value was assembled elsewhere, so
// the rule has nothing to prove at this return.
type snapState struct {
	n int
}

type tracker struct {
	cur snapState
}

func (t *tracker) snapshot() snapState {
	return t.cur
}

func mutateSnapState(s *snapState) { s.n++ }
