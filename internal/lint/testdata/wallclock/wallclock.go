// Fixture for the wallclock rule: every banned time-package call, the
// deterministic time APIs that must stay allowed, both suppression
// forms, and a shadowed identifier that must not be mistaken for the
// package.
package fixture

import "time"

func bad() time.Duration {
	t0 := time.Now()                 // want:wallclock
	time.Sleep(time.Millisecond)     // want:wallclock
	_ = time.Tick(time.Second)       // want:wallclock
	_ = time.NewTicker(time.Second)  // want:wallclock
	_ = time.NewTimer(time.Second)   // want:wallclock
	_ = time.After(time.Second)      // want:wallclock
	time.AfterFunc(time.Second, nil) // want:wallclock
	_ = time.Until(t0)               // want:wallclock
	return time.Since(t0)            // want:wallclock
}

func suppressedSameLine() time.Time {
	return time.Now() //afalint:allow wallclock -- fixture: sanctioned self-timing
}

func suppressedLineAbove() time.Duration {
	//afalint:allow wallclock
	return time.Since(time.Time{})
}

// durationMath uses only the deterministic parts of package time.
func durationMath() time.Duration {
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}

type clock struct{}

func (clock) Now() int { return 0 }

// shadowed calls Now on a local variable named time, not the package.
func shadowed() int {
	time := clock{}
	return time.Now()
}
