// Fixture for the globalrand rule: both banned import paths, one
// flagged and one suppressed, including an aliased import.
package fixture

import (
	"math/rand"       // want:globalrand
	v2 "math/rand/v2" //afalint:allow globalrand -- fixture: sanctioned shim
)

func draws() int {
	return rand.Intn(6) + v2.IntN(6)
}
