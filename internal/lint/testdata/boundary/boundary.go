// Fixture for the two-tier concurrency boundary (DESIGN.md §7): a
// sim-core package reaching for the orchestration layer. The import
// itself is the violation — fan-out belongs strictly above the event
// loop, and the simulator core must stay oblivious to it. The same
// file loaded under an orchestration or plain-internal path is clean.
package fixture

import (
	"repro/internal/runner" // want:nogoroutine
)

// poolWidth leaks orchestration policy into the core: a model component
// sizing itself by host CPU count would couple results to the machine.
func poolWidth() int { return runner.DefaultParallel() }

// fanOut is the tempting mistake the boundary exists to block: mapping
// over per-device work from inside the simulated host.
func fanOut(devices []int) []int {
	return runner.Map(runner.Options{}, devices, func(_ int, d int) int {
		return d * 2
	})
}
