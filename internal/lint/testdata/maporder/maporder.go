// Fixture for the maporder rule: flagged value iteration, flagged map
// literal, the exempt collect-then-sort idiom, a near-miss where the
// unsorted slice is observed before sorting, an annotated commutative
// loop, and an ordered slice range that must stay clean.
package fixture

import "sort"

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want:maporder
		total += v
	}
	return total
}

func literal() {
	for k := range map[int]bool{1: true} { // want:maporder
		_ = k
	}
}

// sortedCollect is the canonical deterministic pattern and is exempted
// without an annotation.
func sortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// touchedBeforeSort observes the unsorted slice between collection and
// sort, so the exemption must not apply.
func touchedBeforeSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want:maporder
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	return keys
}

func suppressed(m map[string]int) int {
	largest := 0
	for _, v := range m { //afalint:allow maporder -- commutative max, order-insensitive
		if v > largest {
			largest = v
		}
	}
	return largest
}

// sliceRange is ordered iteration and must not be flagged.
func sliceRange(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
