// Test files get the narrower maporder check: ranging a map-typed
// variable is tolerated (assertion loops fail loudly, not silently),
// but ranging a map literal — the internal/sched/autoisolate_test.go
// bug class — is still flagged because a slice always works there.
package fixture

func testOnlyRange(m map[int]int) int {
	n := 0
	for range m { // tolerated in test files
		n++
	}
	return n
}

func literalRangeInTest() int {
	n := 0
	for cpu := range map[int]int{1: 10, 2: 20} { // want:maporder
		n += cpu
	}
	return n
}
