// Fixture for the reachwallclock rule, loaded as a sim-core package.
// It is also the regression pair for the v1 wallclock rule: the
// indirect chains here are exactly what per-file analysis cannot see.
package fixture

import (
	"os"
	"time"
)

// excused is a locally sanctioned wall-clock read — the pattern that is
// legal in CLI self-timing banners. The allow silences wallclock, so
// only whole-program analysis can tell that sim-core code reaches it.
func excused() time.Time {
	return time.Now() //afalint:allow wallclock -- fixture: locally excused, still a sink for reach analysis
}

func viaHelper() int64 {
	return excused().UnixNano()
}

// Indirect is the bug wallclock misses: two hops from an exported
// sim-core entry point to the wall clock, every hop individually clean.
func Indirect() int64 { return viaHelper() } // want:reachwallclock

// Direct is wallclock's finding, not reachwallclock's: one-hop chains
// to the wall clock stay with the per-site rule so one bug is one
// finding.
func Direct() time.Time {
	return time.Now() // want:wallclock
}

func readEnv() string {
	return os.Getenv("AFA_FIXTURE")
}

// HostState reaches process state through a helper; os sinks are
// reported at any depth because no per-site rule covers them.
func HostState() string { return readEnv() } // want:reachwallclock

// DirectHost shows the one-hop os case is still a reach finding.
func DirectHost() string { return os.Getenv("AFA_FIXTURE") } // want:reachwallclock

// Suppressed documents the entry-point escape hatch: the allow sits on
// the declaration the finding anchors to.
func Suppressed() int64 { return viaHelper() } //afalint:allow reachwallclock -- fixture: documented debt

// Pure never touches the host and must stay clean.
func Pure(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
