// Fixture for the exhaustive rule, loaded as a plain internal package:
// switches over a sim-core enum (nvme.Status) must cover every declared
// constant or carry an explicit default, wherever the switch lives.
// Local enums of non-sim-core packages are out of scope.
package fixture

import "repro/internal/nvme"

// missing drops StatusAborted with no default: the silent-fallthrough
// bug the rule exists for.
func missing(s nvme.Status) string {
	switch s { // want:exhaustive
	case nvme.StatusSuccess:
		return "ok"
	case nvme.StatusTransient:
		return "retry"
	case nvme.StatusMediaError:
		return "rebuild"
	}
	return "?"
}

// covered names every constant: exhaustive by enumeration.
func covered(s nvme.Status) bool {
	switch s {
	case nvme.StatusSuccess:
		return true
	case nvme.StatusTransient, nvme.StatusMediaError, nvme.StatusAborted:
		return false
	}
	return false
}

// defaulted is exhaustive by decision: the default clause is the
// explicit "everything else" case.
func defaulted(s nvme.Status) bool {
	switch s {
	case nvme.StatusSuccess:
		return true
	default:
		return false
	}
}

// suppressed documents a known-partial switch.
func suppressed(s nvme.Status) string {
	switch s { //afalint:allow exhaustive -- fixture: only success is interesting here
	case nvme.StatusSuccess:
		return "ok"
	}
	return "other"
}

// localKind is an enum of *this* package, which is not sim-core: the
// rule only guards enums whose mishandling can skew simulator results.
type localKind int

const (
	kindA localKind = iota
	kindB
	kindC
)

// localSwitch is incomplete but out of scope.
func localSwitch(k localKind) bool {
	switch k {
	case kindA:
		return true
	}
	return false
}

// tagless switches have no subject type and are never enum switches.
func tagless(s nvme.Status) string {
	switch {
	case s == nvme.StatusSuccess:
		return "ok"
	}
	return "other"
}
