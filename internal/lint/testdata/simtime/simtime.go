// Fixture for the simtime rule, loaded as a plain internal package:
// unit-safety on sim.Time / sim.Duration arithmetic applies wherever
// the types are used, not only inside the sim core.
package fixture

import "repro/internal/sim"

// addInstants commits the Time+Time category error.
func addInstants(a, b sim.Time) sim.Time {
	return a + b // want:simtime
}

// scaleInstant scales a point in time, both operand orders.
func scaleInstant(t sim.Time) sim.Time {
	u := t * 3 // want:simtime
	return 2 * u // want:simtime
}

// rawLiterals hide a millisecond-scale unit in bare numbers.
func rawLiterals(d sim.Duration) sim.Duration {
	d = d + 2_000_000 // want:simtime
	d = 1500000 + d // want:simtime
	d -= 3 * sim.Microsecond
	d += 5_000_000 // want:simtime
	return d
}

// legal is every sanctioned form: Add/Sub methods, named units,
// sub-millisecond literals, Duration scaling.
func legal(t, u sim.Time, d sim.Duration) sim.Duration {
	t = t.Add(d)
	_ = t.Sub(u)
	d = d + 250*sim.Microsecond
	d = d + 999
	d = d * 4
	return d + sim.Millisecond
}

// suppressed is the documented escape hatch.
func suppressed(a, b sim.Time) sim.Time {
	return a + b //afalint:allow simtime -- fixture: folding instants on purpose
}
