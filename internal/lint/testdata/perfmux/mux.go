// Fixture stub of the open-loop tenant multiplexer surface. Unlike the
// sim fixture, nothing here references a scheduling primitive: hotness
// comes purely from the named anchors (fio.(Multiplexer).tickSlot and
// fio.(Multiplexer).submitArrival), proving the submit path stays hot
// even if the wheel's timer re-arm is ever restructured away.
package fixture

type Multiplexer struct {
	counts map[int]int
	due    []int
}

// tickSlot is a hot-set anchor: the wheel's slot tick, the per-slot
// entry point of the multiplexer.
func (m *Multiplexer) tickSlot() {
	m.counts[0]++ // want:hotmap
	m.release(3)
}

// release is hot by reachability from the tickSlot anchor.
func (m *Multiplexer) release(id int) {
	defer trace() // want:hotdefer
	m.submitArrival(id)
}

// submitArrival is a hot-set anchor in its own right: the
// admitted-arrival submit path.
func (m *Multiplexer) submitArrival(id int) {
	var out []int
	for i := 0; i < id; i++ {
		out = append(out, i) // want:hotappend
	}
	use(out)
}

// coldReport is unreachable from either anchor and references no
// scheduler: its map access must stay unreported.
func (m *Multiplexer) coldReport() int { return m.counts[1] }

func trace()        {}
func use(out []int) { _ = out }
