// Fixture for the nogoroutine rule: sync import, channel types, go
// statement, send, receive, select, plus an annotated escape hatch and
// a unary deref that must not be confused with a receive.
package fixture

import "sync" // want:nogoroutine

type mailbox struct {
	mu sync.Mutex
	ch chan int // want:nogoroutine
}

func bad(m *mailbox) int {
	go leak(m.ch) // want:nogoroutine
	m.ch <- 1     // want:nogoroutine
	v := <-m.ch   // want:nogoroutine
	select {      // want:nogoroutine
	default:
	}
	m.mu.Lock()
	return v
}

func leak(ch chan int) {} // want:nogoroutine

//afalint:allow nogoroutine -- fixture: sanctioned escape hatch
var done chan struct{}

// deref uses a non-arrow unary operator and must stay clean.
func deref(p *int) int { return *p }
