// Hot-set computation for the afaperf rule family. The hot set is the
// static over-approximation of "code that runs inside the event loop or
// on a per-I/O completion path" — the code whose per-call costs
// multiply by millions of events per simulated second, where an
// allocation or a dynamic dispatch is a measurable throughput tax
// (DESIGN.md §8, "Performance contract").
//
// Roots come from two sources:
//
//   - anchors: functions that *are* the loop or a per-I/O entry —
//     sim.(Engine).Step/Run/RunUntil, stats.(Histogram).Record,
//     nvme.(Controller).Submit, kernel.(Kernel).SubmitIO — matched by
//     (package-path tail, receiver, name) so fixtures loaded with
//     `-as repro/internal/sim` participate;
//   - scheduler callers: any function with a call-graph edge to a
//     scheduling primitive (sim.(Engine).Schedule/At/..., (Timer).Arm,
//     sim.NewTicker, sched.(Task).Exec, sched.(CPU).Steal). Creation-site
//     attribution folds a scheduled closure's callees into the function
//     that built the closure, so charging that function is the only way
//     to see inside the callback. Constructors (New*/Start*/init) are
//     exempt from this source: they arm timers once at setup, and their
//     own bodies never run per event. They still become hot if a hot
//     function calls them.
//
// Everything reachable from a root through the module call graph is
// hot, with the shortest root chain recorded so findings can explain
// *why* a function is hot ("hot via sim.(Engine).Step → ...").
//
// The over-approximation is deliberate: a function that schedules work
// may also run cold setup code, and a shared helper called from both a
// hot and a cold path is analyzed as hot. False positives are absorbed
// by //afalint:allow annotations or the lint_perf.baseline ledger, the
// same debt machinery the determinism rules use.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotSpec identifies one module function by package-path tail, receiver
// type name ("" for plain functions), and function name. Matching by
// path *tail* keeps fixtures loaded under synthetic import paths in
// scope.
type hotSpec struct {
	pkg, recv, name string
}

// hotAnchors are the functions that are themselves the event loop or a
// per-I/O path: the roots everything else is measured from.
var hotAnchors = []hotSpec{
	{"sim", "Engine", "Step"},
	{"sim", "Engine", "Run"},
	{"sim", "Engine", "RunUntil"},
	{"stats", "Histogram", "Record"},
	{"nvme", "Controller", "Submit"},
	{"kernel", "Kernel", "SubmitIO"},
	// The open-loop tenant multiplexer's per-slot and per-arrival entry
	// points. tickSlot would be rooted anyway through its Timer.ArmAt
	// re-arm, but the anchor keeps the wheel hot even if the re-arm
	// strategy changes; submitArrival is the admitted-arrival submit
	// path, anchored so its callees carry a direct provenance chain.
	{"fio", "Multiplexer", "tickSlot"},
	{"fio", "Multiplexer", "submitArrival"},
	// The low-latency tier's per-I/O entry points (PR 10): the CQ poll
	// spin loop (runs once per PollCheck quantum while any spin-mode job
	// has I/O in flight) and the tenant-owned queue pair's userspace
	// submit path. Both would be rooted transitively, but anchoring them
	// keeps the whole polling/passthrough path hot even if the engine
	// wiring above them changes.
	{"fio", "Job", "pollSpin"},
	{"nvme", "QueuePair", "Submit"},
}

// hotSchedulers are the primitives that accept a callback which later
// fires inside the event loop. A function referencing one of these has
// handed the engine work to run per event, so it (and, through
// creation-site attribution, its closures) is analyzed as hot.
var hotSchedulers = []hotSpec{
	{"sim", "Engine", "Schedule"},
	{"sim", "Engine", "ScheduleAt"},
	{"sim", "Engine", "At"},
	{"sim", "Engine", "After"},
	{"sim", "Engine", "Reschedule"},
	{"sim", "Timer", "Arm"},
	{"sim", "Timer", "ArmAt"},
	{"sim", "", "NewTicker"},
	{"sched", "Task", "Exec"},
	{"sched", "CPU", "Steal"},
}

// funcSpec renders fn as its (package tail, receiver, name) triple.
func funcSpec(fn *types.Func) hotSpec {
	s := hotSpec{name: fn.Name()}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		s.pkg = path[strings.LastIndex(path, "/")+1:]
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			s.recv = named.Obj().Name()
		}
	}
	return s
}

func matchesSpec(fn *types.Func, specs []hotSpec) bool {
	got := funcSpec(fn)
	for _, s := range specs {
		if s == got {
			return true
		}
	}
	return false
}

// setupExempt reports whether fn is a construction/startup function
// whose scheduler references arm periodic work once rather than per
// event (see package comment). The prefixes match case-insensitively:
// unexported startTick/startBalancer helpers are setup exactly like
// their exported New/Start counterparts. A new*/start* helper that
// really does sit on a per-event path is still analyzed as hot — the
// exemption only stops it being a root, and reachability from a true
// root re-adds it with the chain explaining why.
func setupExempt(fn *types.Func) bool {
	name := strings.ToLower(fn.Name())
	return name == "init" || strings.HasPrefix(name, "new") || strings.HasPrefix(name, "start")
}

// hotInfo records why one function is hot: the root it was reached
// from and the shortest chain from that root (nil when fn is itself a
// root).
type hotInfo struct {
	root  *types.Func
	chain []reachStep
}

// via renders the provenance for finding messages: the root alone for
// roots, the full shortest chain otherwise.
func (h *hotInfo) via() string {
	if len(h.chain) == 0 {
		return "hot-set root " + funcDisplayName(h.root)
	}
	return "hot via " + chainString(h.root, h.chain)
}

// hotSet maps every hot module function to its provenance.
type hotSet struct {
	funcs map[*types.Func]*hotInfo
}

// HotSet computes (once per Program) the set of functions reachable
// from the event loop and per-I/O roots.
func (p *Program) HotSet() *hotSet {
	if p.hot != nil {
		return p.hot
	}
	hs := &hotSet{funcs: map[*types.Func]*hotInfo{}}

	// Roots, in deterministic (package, file, decl) order — the same
	// traversal order buildCallGraph uses, so shortest-chain ties break
	// identically on every run.
	var roots []*types.Func
	for _, pkg := range p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			if pkg.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if matchesSpec(fn, hotAnchors) || p.graph.schedulesWork(fn) && !setupExempt(fn) {
					roots = append(roots, fn)
				}
			}
		}
	}

	// Multi-source BFS: shortest chains, expanding module-declared
	// functions only (sinks have no bodies to analyze).
	type item struct {
		fn   *types.Func
		info *hotInfo
	}
	var queue []item
	for _, r := range roots {
		if hs.funcs[r] != nil {
			continue
		}
		info := &hotInfo{root: r}
		hs.funcs[r] = info
		queue = append(queue, item{r, info})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range p.graph.callees(cur.fn) {
			if hs.funcs[e.callee] != nil || !p.graph.declared[e.callee] {
				continue
			}
			chain := append(append([]reachStep{}, cur.info.chain...), reachStep{e.callee, e.pos})
			info := &hotInfo{root: cur.info.root, chain: chain}
			hs.funcs[e.callee] = info
			queue = append(queue, item{e.callee, info})
		}
	}
	p.hot = hs
	return hs
}

// schedulesWork reports whether fn has a direct edge to a scheduling
// primitive — it hands the engine a callback.
func (g *callGraph) schedulesWork(fn *types.Func) bool {
	for _, e := range g.edges[fn] {
		if matchesSpec(e.callee, hotSchedulers) {
			return true
		}
	}
	return false
}

// hotDecl is one hot function declaration in a package, ready for a
// perf rule to inspect.
type hotDecl struct {
	decl *ast.FuncDecl
	fn   *types.Func
	info *hotInfo
}

// hotFuncs lists the package's hot function declarations in source
// order. Perf rules only police internal packages: cmd/ and example
// code never sits on the event loop.
func (p *Package) hotFuncs() []hotDecl {
	if p.prog == nil || p.Info == nil || !isInternal(p.Path) {
		return nil
	}
	hs := p.prog.HotSet()
	var out []hotDecl
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if info := hs.funcs[fn]; info != nil {
				out = append(out, hotDecl{fd, fn, info})
			}
		}
	}
	return out
}

// posWithin reports whether pos falls inside node's source range.
func posWithin(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos < node.End()
}
