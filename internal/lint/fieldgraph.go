// Field-graph machinery for the state-integrity rule family
// (state.go): per-package enumeration of struct leaf fields (embedded
// fields expanded), a construction-aware mutability classification, a
// structural scan for freelist-style object pools, and a conservative
// must-assign dataflow over function bodies — which fields does this
// function definitely assign on *every* path through if/else, switch,
// and early returns.
//
// The dataflow only ever under-claims: when control flow is too dynamic
// to follow (goto, loops, calls it cannot see into), it credits nothing
// rather than guessing. That direction is what makes the resetcover and
// snapshotcover findings trustworthy — a claimed assignment really
// happens on every completing path.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// StickyDirective marks a struct field that intentionally survives
// recycle/reset (e.g. physical die occupancy across an FTL Format).
// Usage, on the field's line or its doc comment:
//
//	dieFree []sim.Time //afalint:sticky -- why it survives
const StickyDirective = "//afalint:sticky"

// PooledDirective marks a type as pooled when the structural freelist
// scan cannot see it (e.g. a ring buffer reuse scheme). Usage, on the
// type declaration's doc comment:
//
//	//afalint:pooled -- why the scan cannot see it
//	type carrier struct { ... }
const PooledDirective = "//afalint:pooled"

// fieldEntry is one leaf field of a struct type: the dotted path from
// the root object (embedded structs expanded) and whether a sticky
// marker exempts it from coverage.
type fieldEntry struct {
	Path   string
	Sticky bool
}

// assignSet is a set of definitely-assigned field paths. The empty
// path "" means the whole object was assigned (composite literal,
// new(T), full value copy). An assigned path covers itself and every
// deeper path under it.
type assignSet map[string]bool

// covers reports whether path (or a dotted prefix of it) is in the set.
func (s assignSet) covers(path string) bool {
	if s[""] {
		return true
	}
	for {
		if s[path] {
			return true
		}
		i := strings.LastIndex(path, ".")
		if i < 0 {
			return false
		}
		path = path[:i]
	}
}

func (s assignSet) clone() assignSet {
	out := make(assignSet, len(s))
	for k := range s { //afalint:allow maporder -- map-to-map copy; no ordering escapes
		out[k] = true
	}
	return out
}

// intersectSets returns the paths every set covers: the union of all
// keys, filtered to those covered by every input. Prefix semantics make
// this sharper than plain key intersection — {""} ∩ {"a"} is {"a"}.
func intersectSets(sets []assignSet) assignSet {
	if len(sets) == 0 {
		return assignSet{}
	}
	keys := map[string]bool{}
	for _, s := range sets {
		for k := range s { //afalint:allow maporder -- set union into a set; no ordering escapes
			keys[k] = true
		}
	}
	out := assignSet{}
	for k := range keys { //afalint:allow maporder -- map-to-map filter; no ordering escapes
		ok := true
		for _, s := range sets {
			if !s.covers(k) {
				ok = false
				break
			}
		}
		if ok {
			out[k] = true
		}
	}
	return out
}

// Must-assign analysis modes. The same dataflow serves two contracts
// with opposite composite-literal semantics: on a recycle path,
// `*r = T{}` resets every field (zeroing IS resetting); in a snapshot,
// `return T{a: x}` copies only the keyed fields (zero is NOT a copy).
const (
	modeReset = iota
	modeSnapshot
)

// maKey memoizes must-assign results per (function, tracked type,
// mode, receiver exclusion).
type maKey struct {
	fd          *ast.FuncDecl
	typ         *types.Named
	mode        int
	excludeRecv bool
}

// releaseRec is one pool-release site: `x.F = append(x.F, v)`.
type releaseRec struct {
	fd   *ast.FuncDecl
	stmt *ast.AssignStmt
	// arg is the released variable when the appended value is a plain
	// identifier; nil otherwise (poolescape skips the site then).
	arg *types.Var
}

// poolInfo is one pooled element type and every function that touches
// its freelist(s).
type poolInfo struct {
	elem       *types.Named
	marked     bool      // forced by //afalint:pooled
	anchor     token.Pos // first acquire fn name, else the type decl
	acquireFns []*ast.FuncDecl
	releaseFns []*ast.FuncDecl
	releases   []releaseRec
}

// fieldGraph is the per-package view the state rules share, built once
// per package on first use.
type fieldGraph struct {
	p *Package
	// decls is every non-test function declaration with a body, in
	// file/syntax order — the deterministic iteration backbone.
	decls  []*ast.FuncDecl
	declOf map[*types.Func]*ast.FuncDecl
	fnOf   map[*ast.FuncDecl]*types.Func

	sticky      map[*types.Var]bool
	pooledMark  map[*types.TypeName]bool
	typeSpecs   []*ast.TypeSpec // non-test type declarations, syntax order
	typeDeclPos map[*types.TypeName]token.Pos

	leaves   map[*types.Named][]fieldEntry
	mutPaths map[*types.Named]map[string]bool
	pools    []*poolInfo

	memo     map[maKey]assignSet
	inflight map[maKey]bool
}

// fieldGraph returns the package's field graph, building it on first
// use. Requires type information; callers check p.Info/p.Types first.
func (p *Package) fieldGraph() *fieldGraph {
	if p.fg == nil {
		p.fg = newFieldGraph(p)
	}
	return p.fg
}

func newFieldGraph(p *Package) *fieldGraph {
	g := &fieldGraph{
		p:           p,
		declOf:      map[*types.Func]*ast.FuncDecl{},
		fnOf:        map[*ast.FuncDecl]*types.Func{},
		sticky:      map[*types.Var]bool{},
		pooledMark:  map[*types.TypeName]bool{},
		typeDeclPos: map[*types.TypeName]token.Pos{},
		leaves:      map[*types.Named][]fieldEntry{},
		mutPaths:    map[*types.Named]map[string]bool{},
		memo:        map[maKey]assignSet{},
		inflight:    map[maKey]bool{},
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				g.decls = append(g.decls, d)
				if fn, ok := p.Info.Defs[d.Name].(*types.Func); ok {
					g.declOf[fn] = d
					g.fnOf[d] = fn
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						g.scanTypeSpec(d, ts)
					}
				}
			}
		}
	}
	g.buildMutations()
	g.buildPools()
	return g
}

// scanTypeSpec records the type's declaration position, its pooled
// marker (on the GenDecl or TypeSpec doc, or the same-line comment),
// and sticky markers on its fields.
func (g *fieldGraph) scanTypeSpec(gd *ast.GenDecl, ts *ast.TypeSpec) {
	tn, ok := g.p.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	g.typeSpecs = append(g.typeSpecs, ts)
	g.typeDeclPos[tn] = ts.Name.Pos()
	if hasDirective(gd.Doc, PooledDirective) || hasDirective(ts.Doc, PooledDirective) || hasDirective(ts.Comment, PooledDirective) {
		g.pooledMark[tn] = true
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, fld := range st.Fields.List {
		if !hasDirective(fld.Doc, StickyDirective) && !hasDirective(fld.Comment, StickyDirective) {
			continue
		}
		for _, name := range fld.Names {
			if v, ok := g.p.Info.Defs[name].(*types.Var); ok {
				g.sticky[v] = true
			}
		}
	}
}

// hasDirective reports whether any comment line in cg starts with dir
// (exactly, or followed by an argument/reason).
func hasDirective(cg *ast.CommentGroup, dir string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == dir || strings.HasPrefix(text, dir+" ") {
			return true
		}
	}
	return false
}

// localNamedStruct returns the same-package named struct type behind t
// (derefing one pointer level), or nil.
func (g *fieldGraph) localNamedStruct(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg() != g.p.Types {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}

// leafEntries enumerates the leaf field paths of n. Embedded
// same-package value structs expand recursively (their fields are this
// object's state); embedded pointers and external embeds stay single
// leaves (assigning the embed itself is the best a reset can do).
func (g *fieldGraph) leafEntries(n *types.Named) []fieldEntry {
	if out, ok := g.leaves[n]; ok {
		return out
	}
	g.leaves[n] = nil // cycle guard for recursive embeds
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []fieldEntry
	g.expandStruct(st, "", false, &out)
	g.leaves[n] = out
	return out
}

func (g *fieldGraph) expandStruct(st *types.Struct, prefix string, sticky bool, out *[]fieldEntry) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path := f.Name()
		if prefix != "" {
			path = prefix + "." + path
		}
		s := sticky || g.sticky[f]
		if f.Embedded() {
			if inner, ok := f.Type().(*types.Named); ok && g.localNamedStruct(inner) == inner {
				if ist, ok := inner.Underlying().(*types.Struct); ok {
					g.expandStruct(ist, path, s, out)
					continue
				}
			}
		}
		*out = append(*out, fieldEntry{Path: path, Sticky: s})
	}
}

// mutable reports whether the leaf at path on n is ever written outside
// construction. A deeper write (Timing.ReadPage) dirties the leaf
// above it (Timing); a shallower write dirties every leaf under it.
func (g *fieldGraph) mutable(n *types.Named, path string) bool {
	m := g.mutPaths[n]
	if m == nil {
		return false
	}
	if m[path] {
		return true
	}
	for w := range m { //afalint:allow maporder -- existence query; no ordering escapes
		if strings.HasPrefix(w, path+".") || strings.HasPrefix(path, w+".") {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Mutability classification.
//
// A field is mutable when some non-test function writes it outside
// construction. Construction is a write through a variable bound to a
// fresh allocation (&T{...}, T{...}, new(T)) earlier in the same or an
// enclosing statement list: NewDevice filling d after d := &Device{...}
// is construction; getReq assigning r.cmd after popping r from a
// freelist is mutation. The constructed-variable environment flows
// *down* into nested blocks but never back out, and function literals
// start with an empty environment (the closure may run long after
// construction finished).

func (g *fieldGraph) buildMutations() {
	for _, fd := range g.decls {
		g.mutScanList(fd.Body.List, map[*types.Var]bool{})
	}
}

func cloneVarSet(m map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(m))
	for k := range m { //afalint:allow maporder -- map-to-map copy; no ordering escapes
		out[k] = true
	}
	return out
}

// mutScanList scans one statement list with its own copy of the
// constructed-variable environment.
func (g *fieldGraph) mutScanList(list []ast.Stmt, env map[*types.Var]bool) {
	env = cloneVarSet(env)
	for _, s := range list {
		g.mutScanStmt(s, env)
	}
}

func (g *fieldGraph) mutScanStmt(s ast.Stmt, env map[*types.Var]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		g.mutScanList(s.List, env)
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && rhs != nil && g.isAllocExpr(rhs) {
				if v := g.p.objOf(id); v != nil {
					env[v] = true
				}
				continue
			}
			g.recordWrite(lhs, env)
		}
		for _, r := range s.Rhs {
			g.mutScanExpr(r, env)
		}
	case *ast.IncDecStmt:
		g.recordWrite(s.X, env)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					if g.isAllocExpr(vs.Values[i]) {
						if v, ok := g.p.Info.Defs[name].(*types.Var); ok {
							env[v] = true
						}
					}
					g.mutScanExpr(vs.Values[i], env)
				}
			}
		}
	case *ast.ExprStmt:
		g.mutScanExpr(s.X, env)
	case *ast.SendStmt:
		g.mutScanExpr(s.Chan, env)
		g.mutScanExpr(s.Value, env)
	case *ast.IfStmt:
		e2 := cloneVarSet(env)
		g.mutScanStmt(s.Init, e2)
		g.mutScanExpr(s.Cond, e2)
		g.mutScanStmt(s.Body, e2)
		g.mutScanStmt(s.Else, e2)
	case *ast.ForStmt:
		e2 := cloneVarSet(env)
		g.mutScanStmt(s.Init, e2)
		if s.Cond != nil {
			g.mutScanExpr(s.Cond, e2)
		}
		g.mutScanStmt(s.Post, e2)
		g.mutScanStmt(s.Body, e2)
	case *ast.RangeStmt:
		e2 := cloneVarSet(env)
		g.mutScanExpr(s.X, e2)
		g.mutScanStmt(s.Body, e2)
	case *ast.SwitchStmt:
		e2 := cloneVarSet(env)
		g.mutScanStmt(s.Init, e2)
		if s.Tag != nil {
			g.mutScanExpr(s.Tag, e2)
		}
		g.mutScanStmt(s.Body, e2)
	case *ast.TypeSwitchStmt:
		e2 := cloneVarSet(env)
		g.mutScanStmt(s.Init, e2)
		g.mutScanStmt(s.Assign, e2)
		g.mutScanStmt(s.Body, e2)
	case *ast.CaseClause:
		for _, e := range s.List {
			g.mutScanExpr(e, env)
		}
		g.mutScanList(s.Body, env)
	case *ast.SelectStmt:
		g.mutScanStmt(s.Body, env)
	case *ast.CommClause:
		g.mutScanStmt(s.Comm, env)
		g.mutScanList(s.Body, env)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.mutScanExpr(e, env)
		}
	case *ast.GoStmt:
		g.mutScanExpr(s.Call, env)
	case *ast.DeferStmt:
		g.mutScanExpr(s.Call, env)
	case *ast.LabeledStmt:
		g.mutScanStmt(s.Stmt, env)
	}
}

// mutScanExpr looks for function literals inside e: their bodies are
// scanned with an empty constructed-variable environment, so writes
// inside closures always count as mutation.
func (g *fieldGraph) mutScanExpr(e ast.Expr, env map[*types.Var]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			g.mutScanList(fl.Body.List, map[*types.Var]bool{})
			return false
		}
		return true
	})
}

// isAllocExpr reports whether e is a fresh allocation: &T{...}, T{...},
// or new(T).
func (g *fieldGraph) isAllocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new" && g.p.isBuiltin(id)
		}
	}
	return false
}

// recordWrite classifies one write target: when it resolves to a field
// path on a same-package named struct and the base variable is not
// freshly constructed, the path is marked mutable.
func (g *fieldGraph) recordWrite(lhs ast.Expr, env map[*types.Var]bool) {
	named, path, base := g.typedPath(lhs)
	if named == nil || path == "" {
		return
	}
	if base != nil && env[base] {
		return
	}
	m := g.mutPaths[named]
	if m == nil {
		m = map[string]bool{}
		g.mutPaths[named] = m
	}
	m[path] = true
}

// typedPath resolves an lvalue-ish expression to (named struct type,
// dotted field path, base variable). Index and deref steps keep the
// path of the expression under them: writing e.queue[i] mutates field
// queue. A bare variable of struct type resolves with path "".
func (g *fieldGraph) typedPath(e ast.Expr) (*types.Named, string, *types.Var) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return g.typedPath(e.X)
	case *ast.StarExpr:
		return g.typedPath(e.X)
	case *ast.IndexExpr:
		return g.typedPath(e.X)
	case *ast.Ident:
		v := g.p.objOf(e)
		if v == nil {
			return nil, "", nil
		}
		n := g.localNamedStruct(v.Type())
		if n == nil {
			return nil, "", nil
		}
		return n, "", v
	case *ast.SelectorExpr:
		n, path, base := g.typedPath(e.X)
		if n == nil {
			return nil, "", nil
		}
		seg, ok := g.selName(e)
		if !ok || seg == "" {
			return nil, "", nil
		}
		if path != "" {
			seg = path + "." + seg
		}
		return n, seg, base
	}
	return nil, "", nil
}

// selName renders the field selection sel as a dotted name relative to
// the type of sel.X, expanding implicit embedded steps. Non-field
// selections (methods, qualified identifiers) return false.
func (g *fieldGraph) selName(sel *ast.SelectorExpr) (string, bool) {
	if s, ok := g.p.Info.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return "", false
		}
		return indexNames(g.p.typeOf(sel.X), s.Index()), true
	}
	if v, ok := g.p.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v.Name(), true
	}
	return "", false
}

// indexNames walks the field index path idx from t, joining the field
// names with dots (embedded hops made explicit).
func indexNames(t types.Type, idx []int) string {
	var parts []string
	for _, i := range idx {
		for {
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
				continue
			}
			break
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			break
		}
		f := st.Field(i)
		parts = append(parts, f.Name())
		t = f.Type()
	}
	return strings.Join(parts, ".")
}

// ---------------------------------------------------------------------
// Pool detection.
//
// A freelist field is a slice-of-pointer field that objects are
// released to (x.F = append(x.F, v)) and acquired from (x.F shrunk by
// reslicing). To keep ordinary growing slices — above all the event
// *heap*, which also appends and reslices — out, every other use of
// the field must be freelist-shaped: len/cap, indexing, or storing nil
// into a slot. One bare alias (q := e.queue) or non-nil element store
// (e.queue[i] = moved) disqualifies the field.

// poolCandidate accumulates evidence for one (owner, field) pair.
type poolCandidate struct {
	owner      *types.Named
	path       string
	elem       *types.Named
	acquireFns []*ast.FuncDecl
	releaseFns []*ast.FuncDecl
	releases   []releaseRec
	bad        bool
}

func (g *fieldGraph) buildPools() {
	// Pass A: collect append-release and shrink-acquire sites.
	cands := map[string]*poolCandidate{} // keyed owner.Name + "\x00" + path
	var order []string
	candFor := func(owner *types.Named, path string, elem *types.Named) *poolCandidate {
		key := owner.Obj().Name() + "\x00" + path
		c := cands[key]
		if c == nil {
			c = &poolCandidate{owner: owner, path: path, elem: elem}
			cands[key] = c
			order = append(order, key)
		}
		return c
	}
	for _, fd := range g.decls {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lsel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			owner, path, _ := g.typedPath(lsel)
			if owner == nil || path == "" {
				return true
			}
			elem := g.pointerSliceElem(g.p.typeOf(lsel))
			if elem == nil {
				return true
			}
			switch rhs := ast.Unparen(as.Rhs[0]).(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
				if !ok || id.Name != "append" || !g.p.isBuiltin(id) || len(rhs.Args) < 2 || rhs.Ellipsis != token.NoPos {
					return true
				}
				if !g.samePath(rhs.Args[0], owner, path) {
					return true
				}
				c := candFor(owner, path, elem)
				rec := releaseRec{fd: fd, stmt: as}
				if len(rhs.Args) == 2 {
					if aid, ok := ast.Unparen(rhs.Args[1]).(*ast.Ident); ok {
						rec.arg = g.p.objOf(aid)
					}
				}
				c.releases = append(c.releases, rec)
				c.releaseFns = appendFnOnce(c.releaseFns, fd)
			case *ast.SliceExpr:
				if !g.samePath(rhs.X, owner, path) {
					return true
				}
				c := candFor(owner, path, elem)
				c.acquireFns = appendFnOnce(c.acquireFns, fd)
			}
			return true
		})
	}

	// Pass B: the tail-ops classifier. Every selector occurrence of a
	// candidate field anywhere in the package must be freelist-shaped.
	for _, key := range order {
		c := cands[key]
		if len(c.acquireFns) == 0 || len(c.releases) == 0 {
			c.bad = true
			continue
		}
		for _, fd := range g.decls {
			if c.bad {
				break
			}
			allowed := map[ast.Node]bool{}
			badIndex := map[*ast.IndexExpr]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok != token.ASSIGN || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
						return true
					}
					lhs, rhs := ast.Unparen(n.Lhs[0]), ast.Unparen(n.Rhs[0])
					if ix, ok := lhs.(*ast.IndexExpr); ok && g.samePath(ix.X, c.owner, c.path) {
						// Storing nil into a slot (popped tail) is
						// freelist-shaped; any other element store is not.
						if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
							allowed[ast.Unparen(ix.X)] = true
						} else {
							badIndex[ix] = true
						}
						return true
					}
					if !g.samePath(lhs, c.owner, c.path) {
						return true
					}
					switch r := rhs.(type) {
					case *ast.CallExpr:
						if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "append" && g.p.isBuiltin(id) &&
							len(r.Args) >= 1 && g.samePath(r.Args[0], c.owner, c.path) {
							allowed[lhs] = true
							allowed[ast.Unparen(r.Args[0])] = true
						}
					case *ast.SliceExpr:
						if g.samePath(r.X, c.owner, c.path) {
							allowed[lhs] = true
							allowed[ast.Unparen(r.X)] = true
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && g.p.isBuiltin(id) && len(n.Args) == 1 {
						if g.samePath(n.Args[0], c.owner, c.path) {
							allowed[ast.Unparen(n.Args[0])] = true
						}
					}
				case *ast.IndexExpr:
					if !badIndex[n] && g.samePath(n.X, c.owner, c.path) {
						allowed[ast.Unparen(n.X)] = true
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || c.bad {
					return !c.bad
				}
				if g.samePath(sel, c.owner, c.path) && !allowed[sel] {
					c.bad = true
				}
				return true
			})
		}
	}

	// Marked types: forced pooled with a relaxed scan — any index read
	// of a []*E field acquires, any append releases, no classifier.
	marked := map[*types.Named]*poolInfo{}
	for _, ts := range g.typeSpecs {
		tn, ok := g.p.Info.Defs[ts.Name].(*types.TypeName)
		if !ok || !g.pooledMark[tn] {
			continue
		}
		en, ok := tn.Type().(*types.Named)
		if !ok || g.localNamedStruct(en) != en {
			continue
		}
		marked[en] = &poolInfo{elem: en, marked: true, anchor: g.typeDeclPos[tn]}
	}
	if len(marked) > 0 {
		for _, fd := range g.decls {
			fd := fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IndexExpr:
					elem := g.pointerSliceElem(g.p.typeOf(n.X))
					if elem == nil {
						return true
					}
					if pi := marked[elem]; pi != nil {
						pi.acquireFns = appendFnOnce(pi.acquireFns, fd)
					}
				case *ast.CallExpr:
					id, ok := ast.Unparen(n.Fun).(*ast.Ident)
					if !ok || id.Name != "append" || !g.p.isBuiltin(id) || len(n.Args) < 2 {
						return true
					}
					elem := g.pointerSliceElem(g.p.typeOf(n.Args[0]))
					if elem == nil {
						return true
					}
					if pi := marked[elem]; pi != nil {
						pi.releaseFns = appendFnOnce(pi.releaseFns, fd)
					}
				}
				return true
			})
		}
	}

	// Pass C: group surviving candidates by element type.
	byElem := map[*types.Named]*poolInfo{}
	var elems []*types.Named
	for _, key := range order {
		c := cands[key]
		if c.bad {
			continue
		}
		pi := byElem[c.elem]
		if pi == nil {
			pi = &poolInfo{elem: c.elem}
			byElem[c.elem] = pi
			elems = append(elems, c.elem)
		}
		for _, fd := range c.acquireFns {
			pi.acquireFns = appendFnOnce(pi.acquireFns, fd)
		}
		for _, fd := range c.releaseFns {
			pi.releaseFns = appendFnOnce(pi.releaseFns, fd)
		}
		pi.releases = append(pi.releases, c.releases...)
	}
	for _, e := range elems {
		pi := byElem[e]
		pi.anchor = g.typeDeclPos[e.Obj()]
		if len(pi.acquireFns) > 0 {
			pi.anchor = pi.acquireFns[0].Name.Pos()
		}
		if m := marked[e]; m != nil {
			// Structural evidence wins; the marker just confirms it.
			delete(marked, e)
		}
		g.pools = append(g.pools, pi)
	}
	for _, ts := range g.typeSpecs {
		tn, ok := g.p.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		if en, ok := tn.Type().(*types.Named); ok {
			if pi := marked[en]; pi != nil {
				g.pools = append(g.pools, pi)
				delete(marked, en)
			}
		}
	}
	sort.SliceStable(g.pools, func(i, j int) bool {
		return g.pools[i].elem.Obj().Name() < g.pools[j].elem.Obj().Name()
	})
}

// pointerSliceElem returns E when t is []*E with E a same-package named
// struct, else nil.
func (g *fieldGraph) pointerSliceElem(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	ptr, ok := sl.Elem().Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok || g.localNamedStruct(n) != n {
		return nil
	}
	return n
}

// samePath reports whether e resolves to the field path on owner.
func (g *fieldGraph) samePath(e ast.Expr, owner *types.Named, path string) bool {
	n, p, _ := g.typedPath(ast.Unparen(e))
	return n == owner && p == path
}

func appendFnOnce(list []*ast.FuncDecl, fd *ast.FuncDecl) []*ast.FuncDecl {
	for _, f := range list {
		if f == fd {
			return list
		}
	}
	return append(list, fd)
}

// ---------------------------------------------------------------------
// Must-assign dataflow.

// mustAssign returns the field paths of typ that fd definitely assigns
// (through any variable of type typ / *typ in scope) on every
// completing path. Memoized; recursion through method chasing is cut
// with an in-flight guard that contributes nothing (conservative).
func (g *fieldGraph) mustAssign(fd *ast.FuncDecl, typ *types.Named, mode int, excludeRecv bool) assignSet {
	key := maKey{fd, typ, mode, excludeRecv}
	if s, ok := g.memo[key]; ok {
		return s
	}
	if g.inflight[key] {
		return assignSet{}
	}
	g.inflight[key] = true
	s := g.mustAssignUncached(fd, typ, mode, excludeRecv)
	g.inflight[key] = false
	g.memo[key] = s
	return s
}

func (g *fieldGraph) mustAssignUncached(fd *ast.FuncDecl, typ *types.Named, mode int, excludeRecv bool) assignSet {
	tracked := map[*types.Var]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v := g.p.objOf(id); v != nil && g.localNamedStruct(v.Type()) == typ {
			tracked[v] = true
		}
		return true
	})
	if excludeRecv && fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			for _, name := range fld.Names {
				if v, ok := g.p.Info.Defs[name].(*types.Var); ok {
					delete(tracked, v)
				}
			}
		}
	}
	if len(tracked) == 0 {
		return assignSet{}
	}
	w := &maWalk{g: g, typ: typ, mode: mode, tracked: tracked}
	f := w.walkList(fd.Body.List, assignSet{})
	if w.poisoned {
		return assignSet{}
	}
	var sets []assignSet
	if f.term == termNone {
		sets = append(sets, f.set)
	}
	sets = append(sets, w.exits...)
	if len(sets) == 0 {
		return assignSet{}
	}
	return intersectSets(sets)
}

// Flow termination states.
const (
	termNone = iota // control continues to the next statement
	termExit        // this path left (return/break/continue/panic)
)

// maFlow is the dataflow state at one program point.
type maFlow struct {
	set  assignSet
	term int
}

// maWalk carries one must-assign traversal. exits accumulates the
// assign set at every recorded path exit (returns; break/continue and
// fallthrough are recorded too — their sets are a sound under-claim of
// whatever the continuing path assigns). A panic exit is NOT recorded:
// a panicking path never completes a recycle or snapshot. goto poisons
// the whole function.
type maWalk struct {
	g        *fieldGraph
	typ      *types.Named
	mode     int
	tracked  map[*types.Var]bool
	exits    []assignSet
	poisoned bool
}

func (w *maWalk) walkList(list []ast.Stmt, set assignSet) maFlow {
	f := maFlow{set: set.clone(), term: termNone}
	for _, s := range list {
		if f.term != termNone {
			break
		}
		f = w.stmt(s, f)
	}
	return f
}

func (w *maWalk) stmt(s ast.Stmt, f maFlow) maFlow {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.DeclStmt, *ast.GoStmt, *ast.DeferStmt,
		*ast.SendStmt, *ast.IncDecStmt:
		// Opaque for coverage: declarations assign nothing tracked,
		// goroutines/defers run elsewhere/later, ++/-- and compound ops
		// are not a fresh overwrite.
		return f
	case *ast.BlockStmt:
		inner := w.walkList(s.List, f.set)
		return maFlow{set: inner.set, term: inner.term}
	case *ast.AssignStmt:
		w.assign(s, f.set)
		return f
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && w.g.p.isBuiltin(id) {
				f.term = termExit
				return f
			}
			w.chase(call, f.set)
		}
		return f
	case *ast.ReturnStmt:
		w.exits = append(w.exits, f.set.clone())
		f.term = termExit
		return f
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			w.poisoned = true
			f.term = termExit
			return f
		}
		w.exits = append(w.exits, f.set.clone())
		f.term = termExit
		return f
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, f)
	case *ast.IfStmt:
		if s.Init != nil {
			f = w.stmt(s.Init, f)
		}
		branches := []maFlow{w.walkList(s.Body.List, f.set)}
		if s.Else != nil {
			branches = append(branches, w.stmt(s.Else, maFlow{set: f.set.clone()}))
		} else {
			branches = append(branches, maFlow{set: f.set.clone()})
		}
		return w.merge(branches)
	case *ast.SwitchStmt:
		if s.Init != nil {
			f = w.stmt(s.Init, f)
		}
		return w.switchBody(s.Body, f)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f = w.stmt(s.Init, f)
		}
		return w.switchBody(s.Body, f)
	case *ast.ForStmt:
		if s.Init != nil {
			f = w.stmt(s.Init, f)
		}
		// The body may run zero times: it contributes nothing to the
		// fall-through set, but is walked so its returns record exits.
		w.walkList(s.Body.List, f.set)
		return f
	case *ast.RangeStmt:
		if path, ok := w.rangeCovers(s); ok {
			f.set[path] = true
			return f
		}
		w.walkList(s.Body.List, f.set)
		return f
	case *ast.SelectStmt:
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				w.walkList(cc.Body, f.set)
			}
		}
		return f
	}
	return f
}

// merge intersects the branches that fall through; when none does, the
// merged point is unreachable.
func (w *maWalk) merge(branches []maFlow) maFlow {
	var live []assignSet
	for _, b := range branches {
		if b.term == termNone {
			live = append(live, b.set)
		}
	}
	if len(live) == 0 {
		return maFlow{set: assignSet{}, term: termExit}
	}
	return maFlow{set: intersectSets(live), term: termNone}
}

func (w *maWalk) switchBody(body *ast.BlockStmt, f maFlow) maFlow {
	var branches []maFlow
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		branches = append(branches, w.walkList(cc.Body, f.set))
	}
	if !hasDefault || len(branches) == 0 {
		// Without a default some value matches no case and skips the
		// whole switch.
		branches = append(branches, maFlow{set: f.set.clone()})
	}
	return w.merge(branches)
}

// assign records what one assignment statement definitely assigns.
// Compound assignments (+=, |=, ...) read the old value and are not a
// fresh overwrite.
func (w *maWalk) assign(s *ast.AssignStmt, set assignSet) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		w.assignOne(ast.Unparen(lhs), rhs, set)
	}
}

func (w *maWalk) assignOne(lhs, rhs ast.Expr, set assignSet) {
	switch l := lhs.(type) {
	case *ast.StarExpr:
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok && w.trackedIdent(id) {
			w.wholeAssign(rhs, set)
		}
	case *ast.Ident:
		if w.trackedIdent(l) && rhs != nil {
			w.wholeAssign(rhs, set)
		}
	case *ast.SelectorExpr:
		if path, ok := w.fieldPath(l); ok {
			set[path] = true
		}
		// Writing x.F[i] assigns one element, not the field: no entry.
	}
}

// wholeAssign classifies a whole-object right-hand side. Composite
// literals split by mode: resetting to T{} zeroes everything ("" in
// the set); snapshotting into T{a: x} copies only the keyed fields.
// Rebinding a tracked pointer (x = pool[n-1], x = otherPtr) assigns
// nothing; copying a whole value (out := *m) assigns everything.
func (w *maWalk) wholeAssign(rhs ast.Expr, set assignSet) {
	if rhs == nil {
		return
	}
	rhs = ast.Unparen(rhs)
	if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		rhs = ast.Unparen(ue.X)
	}
	switch r := rhs.(type) {
	case *ast.CompositeLit:
		w.litAssign(r, set)
		return
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "new" && w.g.p.isBuiltin(id) {
			if w.mode == modeReset && w.g.localNamedStruct(w.g.p.typeOf(r)) == w.typ {
				set[""] = true
			}
		}
		// Other call results are opaque: unknown field contents.
		return
	}
	if t := w.g.p.typeOf(rhs); t != nil {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr && w.g.localNamedStruct(t) == w.typ {
			set[""] = true
		}
	}
}

func (w *maWalk) litAssign(cl *ast.CompositeLit, set assignSet) {
	if w.g.localNamedStruct(w.g.p.typeOf(cl)) != w.typ {
		return
	}
	if w.mode == modeReset {
		set[""] = true
		return
	}
	if len(cl.Elts) == 0 {
		return
	}
	keyed := false
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok {
				set[id.Name] = true
			}
		}
	}
	if !keyed {
		// A positional literal is only legal with every field present.
		set[""] = true
	}
}

// fieldPath resolves a selector to a path on the tracked type through a
// tracked base variable.
func (w *maWalk) fieldPath(sel *ast.SelectorExpr) (string, bool) {
	n, path, base := w.g.typedPath(sel)
	if n != w.typ || path == "" || base == nil || !w.tracked[base] {
		return "", false
	}
	return path, true
}

func (w *maWalk) trackedIdent(id *ast.Ident) bool {
	v := w.g.p.objOf(id)
	return v != nil && w.tracked[v]
}

// rangeCovers recognizes two whole-field loop idioms and credits the
// field even for the zero-iteration case (an empty collection is
// vacuously reset):
//
//	for i := range x.F { x.F[i] = v }   // clear every element
//	for _, e := range x.F { e.Reset() } // delegate to element resets
func (w *maWalk) rangeCovers(s *ast.RangeStmt) (string, bool) {
	sel, ok := ast.Unparen(s.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	path, ok := w.fieldPath(sel)
	if !ok || len(s.Body.List) != 1 {
		return "", false
	}
	if s.Value == nil && s.Key != nil {
		key, ok := s.Key.(*ast.Ident)
		if !ok || key.Name == "_" {
			return "", false
		}
		as, ok := s.Body.List[0].(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return "", false
		}
		ix, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr)
		if !ok {
			return "", false
		}
		lsel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if lpath, ok := w.fieldPath(lsel); !ok || lpath != path {
			return "", false
		}
		idx, ok := ast.Unparen(ix.Index).(*ast.Ident)
		if !ok {
			return "", false
		}
		kv, iv := w.g.p.objOf(key), w.g.p.objOf(idx)
		if kv == nil || kv != iv {
			return "", false
		}
		return path, true
	}
	if val, ok := s.Value.(*ast.Ident); ok && val.Name != "_" {
		es, ok := s.Body.List[0].(*ast.ExprStmt)
		if !ok {
			return "", false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return "", false
		}
		fsel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (fsel.Sel.Name != "Reset" && fsel.Sel.Name != "reset") {
			return "", false
		}
		recv, ok := ast.Unparen(fsel.X).(*ast.Ident)
		if !ok {
			return "", false
		}
		rv, vv := w.g.p.objOf(recv), w.g.p.objOf(val)
		if rv == nil || rv != vv {
			return "", false
		}
		return path, true
	}
	return "", false
}

// chase follows a same-type method call on a tracked variable
// (d.reset() inside Format) and credits everything the callee
// must-assigns.
func (w *maWalk) chase(call *ast.CallExpr, set assignSet) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || !w.trackedIdent(id) {
		return
	}
	fn, ok := w.g.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	fd, ok := w.g.declOf[fn]
	if !ok {
		return
	}
	for k := range w.g.mustAssign(fd, w.typ, w.mode, false) { //afalint:allow maporder -- set union into a set; no ordering escapes
		set[k] = true
	}
}
