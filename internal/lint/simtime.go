package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// simtimeRule enforces unit safety on sim.Time / sim.Duration
// arithmetic, module-wide in non-test files. Both are int64
// nanoseconds under the hood, so the type system alone cannot stop the
// three mistakes that silently corrupt a latency ladder:
//
//   - Time + Time: adding two points in time is meaningless (the sum of
//     two timestamps is not an instant); the intended operation is
//     Time.Add(Duration). The canonical implementation of Add itself is
//     the one sanctioned site, annotated //afalint:allow simtime.
//   - Time * k (or k * Time): scaling an instant is a unit error —
//     scaling is only meaningful for Durations.
//   - d + 1500000: a raw numeric literal of a millisecond or more mixed
//     into Time/Duration arithmetic hides its unit; write
//     1500*sim.Microsecond (or a named constant) so the magnitude is
//     auditable against the paper's tables. Literals below 1e6 (sub-ms
//     tick offsets) stay legal.
type simtimeRule struct{}

// simtimeLiteralLimit is the smallest raw literal the third check
// flags: 1e6 ns, i.e. one millisecond.
const simtimeLiteralLimit = 1_000_000

func (simtimeRule) Name() string { return "simtime" }

func (simtimeRule) Doc() string {
	return "no Time+Time, no Time*k, and no raw literal ≥1e6 ns in Time/Duration arithmetic; use named sim units"
}

func (simtimeRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				out = append(out, p.checkSimtimeBinary(n)...)
			case *ast.AssignStmt:
				// d += 2_000_000 is the same literal hazard as d = d + 2_000_000.
				if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if isSimChrono(p.typeOf(n.Lhs[0])) && isRawBigLiteral(p, n.Rhs[0]) {
						out = append(out, p.finding("simtime", n.Rhs[0].Pos(),
							"raw literal ≥1e6 ns in %s arithmetic; use a named sim unit (e.g. n*sim.Millisecond)",
							chronoName(p.typeOf(n.Lhs[0]))))
					}
				}
			}
			return true
		})
	}
	return out
}

func (p *Package) checkSimtimeBinary(n *ast.BinaryExpr) []Finding {
	var out []Finding
	xt, yt := p.typeOf(n.X), p.typeOf(n.Y)
	switch n.Op {
	case token.ADD:
		if isSimTime(xt) && isSimTime(yt) {
			out = append(out, p.finding("simtime", n.OpPos,
				"Time + Time adds two instants; a point in time is not a quantity — use Time.Add(Duration)"))
			return out
		}
	case token.MUL:
		if isSimTime(xt) || isSimTime(yt) {
			out = append(out, p.finding("simtime", n.OpPos,
				"scaling a Time instant is a unit error; only Durations scale"))
			return out
		}
	}
	if n.Op == token.ADD || n.Op == token.SUB {
		if isSimChrono(xt) && isRawBigLiteral(p, n.Y) {
			out = append(out, p.finding("simtime", n.Y.Pos(),
				"raw literal ≥1e6 ns in %s arithmetic; use a named sim unit (e.g. n*sim.Millisecond)", chronoName(xt)))
		}
		if isSimChrono(yt) && isRawBigLiteral(p, n.X) {
			out = append(out, p.finding("simtime", n.X.Pos(),
				"raw literal ≥1e6 ns in %s arithmetic; use a named sim unit (e.g. n*sim.Millisecond)", chronoName(yt)))
		}
	}
	return out
}

// isSimTime reports whether t is the sim package's Time type.
func isSimTime(t types.Type) bool { return isSimNamed(t, "Time") }

// isSimChrono reports whether t is sim.Time or sim.Duration.
func isSimChrono(t types.Type) bool { return isSimNamed(t, "Time") || isSimNamed(t, "Duration") }

func chronoName(t types.Type) string {
	if isSimNamed(t, "Time") {
		return "Time"
	}
	return "Duration"
}

// isSimNamed reports whether t is the named type internal/sim.<name>.
func isSimNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && pathTail(obj.Pkg().Path()) == "sim" && isInternal(obj.Pkg().Path())
}

// isRawBigLiteral reports whether e is a bare numeric literal (possibly
// negated or parenthesized) of magnitude ≥ 1e6 — a duration written
// without a unit. Named constants and unit products are not literals
// and stay legal.
func isRawBigLiteral(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	if _, ok := e.(*ast.BasicLit); !ok {
		return false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return false
	}
	if i, exact := constant.Int64Val(v); exact {
		if i < 0 {
			i = -i
		}
		return i >= simtimeLiteralLimit
	}
	return true // does not fit int64: certainly ≥ 1e6
}

// pathTail returns the last slash-separated element of an import path.
func pathTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
