package lint

// Property test for the must-assign dataflow (fieldgraph.go): the
// analysis may only ever under-claim. For randomly generated function
// bodies over the control-flow shapes the walker handles — if/else,
// switch with and without default, early return, and loops — every
// field the analysis claims "definitely assigned" must be assigned on
// every path of an exhaustive path enumeration over the same body.
//
// Loops are enumerated at zero and one iterations. That is sufficient:
// iterating more times only adds assignments to a path's set, so the
// zero-iteration path is always the minimal one, and a claim that
// survives it survives every unrolling.

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/rng"
)

// The generator grammar. Statement lists are []any of these shapes.
type genAssign struct{ fi int } // o.f<fi> = 1
type genReturn struct{}
type genIf struct {
	cond    int
	then    []any
	els     []any
	hasElse bool
}
type genSwitch struct {
	cases      [][]any
	def        []any
	hasDefault bool
}
type genFor struct{ body []any }

// genBody emits a random statement list. budget bounds the total
// statement count so path enumeration stays small (≤ 2^budget states).
func genBody(r *rng.Stream, depth int, budget *int) []any {
	n := 1 + r.Intn(3)
	var out []any
	for i := 0; i < n && *budget > 0; i++ {
		*budget--
		switch pick := r.Intn(10); {
		case pick < 4 || depth >= 3:
			out = append(out, genAssign{fi: r.Intn(4)})
		case pick < 6:
			s := genIf{cond: r.Intn(3), hasElse: r.Intn(2) == 0}
			s.then = genBody(r, depth+1, budget)
			if s.hasElse {
				s.els = genBody(r, depth+1, budget)
			}
			out = append(out, s)
		case pick < 8:
			sw := genSwitch{hasDefault: r.Intn(2) == 0}
			for j := 1 + r.Intn(2); j > 0; j-- {
				sw.cases = append(sw.cases, genBody(r, depth+1, budget))
			}
			if sw.hasDefault {
				sw.def = genBody(r, depth+1, budget)
			}
			out = append(out, sw)
		case pick < 9:
			out = append(out, genFor{body: genBody(r, depth+1, budget)})
		default:
			out = append(out, genReturn{})
		}
	}
	return out
}

func renderBody(sb *strings.Builder, list []any, indent string) {
	for _, s := range list {
		switch s := s.(type) {
		case genAssign:
			fmt.Fprintf(sb, "%so.f%d = 1\n", indent, s.fi)
		case genReturn:
			fmt.Fprintf(sb, "%sreturn\n", indent)
		case genIf:
			fmt.Fprintf(sb, "%sif k > %d {\n", indent, s.cond)
			renderBody(sb, s.then, indent+"\t")
			if s.hasElse {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				renderBody(sb, s.els, indent+"\t")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case genSwitch:
			fmt.Fprintf(sb, "%sswitch k {\n", indent)
			for i, c := range s.cases {
				fmt.Fprintf(sb, "%scase %d:\n", indent, i)
				renderBody(sb, c, indent+"\t")
			}
			if s.hasDefault {
				fmt.Fprintf(sb, "%sdefault:\n", indent)
				renderBody(sb, s.def, indent+"\t")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case genFor:
			fmt.Fprintf(sb, "%sfor i := 0; i < k; i++ {\n", indent)
			renderBody(sb, s.body, indent+"\t")
			fmt.Fprintf(sb, "%s}\n", indent)
		}
	}
}

// truthState is one enumerated path: the fields it has assigned so far
// and whether it already returned.
type truthState struct {
	set  map[int]bool
	done bool
}

func cloneTruth(s truthState) truthState {
	m := make(map[int]bool, len(s.set))
	for k := range s.set {
		m[k] = true
	}
	return truthState{set: m, done: s.done}
}

func truthList(states []truthState, list []any) []truthState {
	for _, s := range list {
		states = truthStmt(states, s)
	}
	return states
}

func truthStmt(states []truthState, stmt any) []truthState {
	var out []truthState
	for _, st := range states {
		if st.done {
			out = append(out, st)
			continue
		}
		switch s := stmt.(type) {
		case genAssign:
			ns := cloneTruth(st)
			ns.set[s.fi] = true
			out = append(out, ns)
		case genReturn:
			ns := cloneTruth(st)
			ns.done = true
			out = append(out, ns)
		case genIf:
			out = append(out, truthList([]truthState{cloneTruth(st)}, s.then)...)
			if s.hasElse {
				out = append(out, truthList([]truthState{cloneTruth(st)}, s.els)...)
			} else {
				out = append(out, cloneTruth(st))
			}
		case genSwitch:
			for _, c := range s.cases {
				out = append(out, truthList([]truthState{cloneTruth(st)}, c)...)
			}
			if s.hasDefault {
				out = append(out, truthList([]truthState{cloneTruth(st)}, s.def)...)
			} else {
				out = append(out, cloneTruth(st)) // no case matched
			}
		case genFor:
			out = append(out, cloneTruth(st)) // zero iterations
			out = append(out, truthList([]truthState{cloneTruth(st)}, s.body)...)
		}
	}
	return out
}

// loadGenerated writes src to a temp dir, loads it as package "gen",
// and fails the test on parse or type errors (a generator that emits
// invalid Go would silently prove nothing).
func loadGenerated(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "gen.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := NewLoader(dir, "gen").LoadDir(dir, "gen")
	if err != nil {
		t.Fatalf("loading generated package: %v\nsource:\n%s", err, src)
	}
	for _, terr := range p.TypeErrors {
		t.Fatalf("generated source does not type-check: %v\nsource:\n%s", terr, src)
	}
	return p
}

func objType(t *testing.T, p *Package) *types.Named {
	t.Helper()
	tn, ok := p.Types.Scope().Lookup("obj").(*types.TypeName)
	if !ok {
		t.Fatal("generated package has no type obj")
	}
	return tn.Type().(*types.Named)
}

func sortedKeys(s assignSet) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

const genHeader = `package gen

type obj struct {
	f0 int
	f1 int
	f2 int
	f3 int
}

`

func TestMustAssignSoundProperty(t *testing.T) {
	const nFuncs = 80
	root := rng.New(0xafa11)
	var sb strings.Builder
	sb.WriteString(genHeader)
	bodies := make([][]any, nFuncs)
	srcOf := make([]string, nFuncs)
	for i := 0; i < nFuncs; i++ {
		budget := 12
		bodies[i] = genBody(root.DeriveIndexed(uint64(i)), 0, &budget)
		var fb strings.Builder
		fmt.Fprintf(&fb, "func fn%d(o *obj, k int) {\n", i)
		renderBody(&fb, bodies[i], "\t")
		fb.WriteString("}\n\n")
		srcOf[i] = fb.String()
		sb.WriteString(srcOf[i])
	}

	p := loadGenerated(t, sb.String())
	g := p.fieldGraph()
	obj := objType(t, p)
	declByName := map[string]*ast.FuncDecl{}
	for _, fd := range g.decls {
		declByName[fd.Name.Name] = fd
	}

	claims := 0
	for i := range bodies {
		fd := declByName[fmt.Sprintf("fn%d", i)]
		if fd == nil {
			t.Fatalf("generated fn%d not found after load", i)
		}
		got := g.mustAssign(fd, obj, modeReset, false)
		paths := truthList([]truthState{{set: map[int]bool{}}}, bodies[i])
		for _, key := range sortedKeys(got) {
			claims++
			var fi int
			if _, err := fmt.Sscanf(key, "f%d", &fi); err != nil {
				t.Fatalf("fn%d: claimed path %q is not a field of obj", i, key)
			}
			for _, pth := range paths {
				if !pth.set[fi] {
					t.Errorf("fn%d: analysis claims %s is definitely assigned, but an execution path misses it — the dataflow over-claims\n%s",
						i, key, srcOf[i])
					break
				}
			}
		}
	}
	if claims == 0 {
		t.Fatalf("property test is vacuous: no definite assignment claimed across %d generated functions", nFuncs)
	}
	t.Logf("verified %d definite-assignment claims against exhaustive path enumeration", claims)
}

// TestMustAssignPinnedCases pins exact result sets for the shapes the
// property test exercises probabilistically, plus the ones its grammar
// cannot produce: whole-object reset, panic exits, and same-type
// method chasing.
func TestMustAssignPinnedCases(t *testing.T) {
	src := genHeader + `func p0(o *obj, k int) {
	o.f0 = 1
	if k > 0 {
		o.f1 = 1
	} else {
		o.f1 = 2
	}
}

func p1(o *obj, k int) {
	if k > 0 {
		o.f0 = 1
	}
}

func p2(o *obj, k int) {
	switch k {
	case 0:
		o.f0 = 1
	default:
		o.f0 = 2
	}
}

func p3(o *obj, k int) {
	switch k {
	case 0:
		o.f0 = 1
	case 1:
		o.f0 = 2
	}
}

func p4(o *obj, k int) {
	o.f0 = 1
	if k > 0 {
		return
	}
	o.f1 = 1
}

func p5(o *obj, k int) {
	for i := 0; i < k; i++ {
		o.f0 = 1
	}
}

func p6(o *obj, k int) {
	*o = obj{}
}

func p7(o *obj, k int) {
	if k > 0 {
		panic("bad")
	}
	o.f0 = 1
}

func (o *obj) clearLow() {
	o.f0 = 1
	o.f1 = 1
}

func (o *obj) Reset() {
	o.clearLow()
	o.f2 = 1
	o.f3 = 1
}
`
	p := loadGenerated(t, src)
	g := p.fieldGraph()
	obj := objType(t, p)
	declByName := map[string]*ast.FuncDecl{}
	for _, fd := range g.decls {
		declByName[fd.Name.Name] = fd
	}
	cases := []struct {
		fn   string
		want []string
	}{
		{"p0", []string{"f0", "f1"}}, // both branches assign f1
		{"p1", nil},                  // the else-less skip path assigns nothing
		{"p2", []string{"f0"}},       // default makes the switch exhaustive
		{"p3", nil},                  // no default: some value skips both cases
		{"p4", []string{"f0"}},       // early return misses f1
		{"p5", nil},                  // the loop may run zero times
		{"p6", []string{""}},         // whole-object reset covers everything
		{"p7", []string{"f0"}},       // a panicking path never completes a recycle
		{"Reset", []string{"f0", "f1", "f2", "f3"}}, // chased through clearLow
	}
	for _, c := range cases {
		fd := declByName[c.fn]
		if fd == nil {
			t.Fatalf("pinned function %s not found", c.fn)
		}
		got := sortedKeys(g.mustAssign(fd, obj, modeReset, false))
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s: mustAssign = %v, want %v", c.fn, got, c.want)
		}
	}
}
