package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The reach* rules are the whole-program complement of wallclock and
// globalrand: those flag a nondeterministic *call site* wherever it
// is, these flag a sim-core *entry point* from which such a site is
// transitively reachable through the module call graph. The division
// of labor is deliberate:
//
//   - a direct time.Now in a helper is the wallclock rule's finding,
//     at the exact call site;
//   - a sim-core exported function that reaches that helper through
//     two layers of calls — or reaches one that was locally excused
//     with //afalint:allow wallclock (legal for CLI self-timing, fatal
//     inside the event loop) — is a reach finding, at the entry point,
//     with the full call chain in the message.
//
// Direct (one-hop) chains to sinks another rule already reports are
// skipped, so one bug yields one finding.

// reachwallclockRule flags sim-core exported entry points from which a
// wall-clock read (time.Now, Sleep, timers) or a host side effect (any
// os package function — files, env, process state) is reachable.
type reachwallclockRule struct{}

func (reachwallclockRule) Name() string { return "reachwallclock" }

func (reachwallclockRule) Doc() string {
	return "no call chain from a sim-core exported function to time.Now/Sleep/timers or os.* host state, however indirect"
}

func (reachwallclockRule) Check(p *Package) []Finding {
	return checkReach(p, "reachwallclock", func(fn *types.Func) (what string, direct bool) {
		switch pkgPathOf(fn) {
		case "time":
			if wallclockBanned[fn.Name()] {
				// One-hop chains are the wallclock rule's finding.
				return "the wall clock", true
			}
		case "os":
			return "host state (os package)", false
		}
		return "", false
	})
}

// reachrandRule flags sim-core exported entry points from which a
// non-reproducible random source (math/rand, math/rand/v2,
// crypto/rand) is reachable. Seeded repro/internal/rng streams are the
// sanctioned source and are not sinks.
type reachrandRule struct{}

func (reachrandRule) Name() string { return "reachrand" }

func (reachrandRule) Doc() string {
	return "no call chain from a sim-core exported function to math/rand, math/rand/v2, or crypto/rand"
}

func (reachrandRule) Check(p *Package) []Finding {
	return checkReach(p, "reachrand", func(fn *types.Func) (what string, direct bool) {
		switch pkgPathOf(fn) {
		case "math/rand", "math/rand/v2":
			// A one-hop chain means the entry's own file imports math/rand,
			// which globalrand already reports.
			return "unseeded global rand", true
		case "crypto/rand":
			return "crypto/rand (never seed-reproducible)", false
		}
		return "", false
	})
}

// checkReach walks every exported entry point of a sim-core package and
// reports the shortest call chain to a sink. sink classifies a callee;
// direct=true marks sink families whose one-hop chains are another
// rule's responsibility.
func checkReach(p *Package, rule string, sink func(*types.Func) (string, bool)) []Finding {
	if !isSimCore(p.Path) || p.prog == nil || p.Info == nil {
		return nil
	}
	var out []Finding
	for _, entry := range p.exportedFuncs() {
		chain := p.prog.graph.findReach(entry.fn, func(fn *types.Func) bool {
			what, _ := sink(fn)
			return what != ""
		})
		if chain == nil {
			continue
		}
		what, direct := sink(chain[len(chain)-1].fn)
		if direct && len(chain) == 1 {
			continue
		}
		out = append(out, p.finding(rule, entry.pos,
			"%s reaches %s: %s", funcDisplayName(entry.fn), what, chainString(entry.fn, chain)))
	}
	return out
}

// entryPoint is one exported function or method with its declaration
// position (where the finding is anchored, so an //afalint:allow on the
// declaration line suppresses it).
type entryPoint struct {
	fn  *types.Func
	pos token.Pos
}

// exportedFuncs lists the package's exported functions and exported
// methods on exported types, in source order — the surface another
// package can call into, i.e. the roots of the reach analysis.
func (p *Package) exportedFuncs() []entryPoint {
	var out []entryPoint
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedRecv(fd.Recv) {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out = append(out, entryPoint{fn, fd.Name.Pos()})
			}
		}
	}
	return out
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// pkgPathOf returns fn's package import path, "" for builtins.
func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
