package lint

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRepoObeysDeterminismContract runs every afalint rule over the
// entire module. Because this test is part of the tier-1 suite
// (`go test ./...`), the determinism contract — no wall clock, no
// global rand, no map-order dependence, no concurrency or float
// equality in the sim core — is enforced on every verification run,
// not only when someone remembers to invoke the CLI. Re-introducing,
// say, a time.Now() in internal/sim or an unsorted map range in
// internal/trace fails this test with the exact file:line.
func TestRepoObeysDeterminismContract(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, modPath).LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("only %d packages discovered under %s; loader is missing the tree", len(pkgs), root)
	}
	for _, p := range pkgs {
		// A package that fails to type-check would silently disable the
		// type-driven rules (maporder, floatcompare) for its files, so
		// type errors are themselves contract violations.
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	// The whole-program pass (call-graph build + all ten rules) must stay
	// fast enough to sit in the inner edit-test loop; the ISSUE 4 budget
	// is 10s of analysis time on top of loading. Loading dominates and is
	// timed separately by the test framework, so the guard brackets only
	// the analysis.
	start := time.Now() //afalint:allow wallclock -- timing guard on the analysis pass, not sim logic
	findings := Run(pkgs, AllRules())
	d := time.Since(start) //afalint:allow wallclock -- timing guard on the analysis pass, not sim logic
	t.Logf("whole-program analysis over %d packages took %v", len(pkgs), d)
	if d > 10*time.Second {
		t.Errorf("whole-program analysis took %v; the self-check budget is 10s (DESIGN.md §5)", d)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("afalint: %d determinism-contract finding(s); fix the site or annotate it "+
			"with //afalint:allow <rule> -- <reason> (see DESIGN.md, \"Determinism contract\")", len(findings))
	}
}

// TestRepoObeysStateContract runs the state-integrity family
// (`afalint -state`) over the entire module, filtered through the
// accepted-debt ledger lint_state.baseline at the repo root — the same
// gate CI runs. A new pooled type whose recycle path misses a field, a
// Reset() that skips one, a partial Snapshot(), a package-level var in
// sim-core, or a use-after-release fails `go test ./...` with the
// exact file:line and field name. The ledger keeps pre-existing debts
// visible without blocking the build; entries that stop matching are
// stale and fail the test until deleted.
func TestRepoObeysStateContract(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, modPath).LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	// Same analysis-time budget as the determinism self-check: the field
	// graph, pool scan, and must-assign dataflow must stay cheap enough
	// for the inner edit-test loop.
	start := time.Now() //afalint:allow wallclock -- timing guard on the analysis pass, not sim logic
	findings := Run(pkgs, StateRules())
	d := time.Since(start) //afalint:allow wallclock -- timing guard on the analysis pass, not sim logic
	t.Logf("state-integrity analysis over %d packages took %v", len(pkgs), d)
	if d > 10*time.Second {
		t.Errorf("state-integrity analysis took %v; the self-check budget is 10s (DESIGN.md §5)", d)
	}
	data, err := os.ReadFile(filepath.Join(root, "lint_state.baseline"))
	if err != nil {
		t.Fatalf("reading the state debt ledger: %v", err)
	}
	b, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed, stale := b.Filter(findings, root)
	t.Logf("%d finding(s) covered by lint_state.baseline", suppressed)
	for _, s := range stale {
		t.Errorf("stale lint_state.baseline entry (fixed? delete it): %s", s)
	}
	for _, f := range kept {
		t.Errorf("%s", f)
	}
	if len(kept) > 0 {
		t.Errorf("afalint: %d state-integrity finding(s); fix the site, mark the field "+
			"//afalint:sticky -- <reason>, or annotate //afalint:allow <rule> -- <reason> (DESIGN.md §10)", len(kept))
	}
}
