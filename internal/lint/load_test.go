package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleLoader returns a loader rooted at this repo's module, suitable
// for loading scratch directories as synthetic packages.
func moduleLoader(t *testing.T) *Loader {
	t.Helper()
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, modPath)
}

// TestLoadDirUnparsableSource pins the error path for a directory
// containing invalid Go: LoadDir must return an error naming the load
// step and position, never a half-parsed package or a panic.
func TestLoadDirUnparsableSource(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc oops( {\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := moduleLoader(t).LoadDir(dir, "repro/internal/broken")
	if err == nil {
		t.Fatalf("want parse error, got package %+v", p)
	}
	if !strings.Contains(err.Error(), "lint: parsing") || !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error should identify the load step and file, got: %v", err)
	}
}

// TestLoadDirTypeErrors pins the degradation contract for code that
// parses but does not type-check: LoadDir succeeds, the diagnostics
// land in TypeErrors (so callers can decide whether partial Info is
// acceptable), and running the rules does not panic.
func TestLoadDirTypeErrors(t *testing.T) {
	dir := t.TempDir()
	src := "package semibroken\n\nfunc f() int { return undefinedIdentifier }\n"
	if err := os.WriteFile(filepath.Join(dir, "semibroken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := moduleLoader(t).LoadDir(dir, "repro/internal/semibroken")
	if err != nil {
		t.Fatalf("type errors must not fail the load: %v", err)
	}
	if len(p.TypeErrors) == 0 {
		t.Error("want the undefined identifier recorded in TypeErrors")
	}
	// Partial type info must not crash any rule, including the
	// call-graph construction behind the reach rules.
	_ = Run([]*Package{p}, AllRules())
}

// TestLoadDirEmptyPackage pins the empty-directory error path: a
// directory with no Go files is a caller mistake (wrong -as target,
// deleted fixture) and must fail with a diagnosable message instead of
// producing a silently finding-free package.
func TestLoadDirEmptyPackage(t *testing.T) {
	dir := t.TempDir()
	if _, err := moduleLoader(t).LoadDir(dir, "repro/internal/empty"); err == nil {
		t.Fatal("want an error for a directory with no Go files")
	} else if !strings.Contains(err.Error(), "no Go source files") {
		t.Errorf("error should say the directory is empty, got: %v", err)
	}
}

// TestLoadDirMissingDirectory pins the unreadable-directory error path.
func TestLoadDirMissingDirectory(t *testing.T) {
	if _, err := moduleLoader(t).LoadDir(filepath.Join(t.TempDir(), "nope"), "repro/internal/nope"); err == nil {
		t.Fatal("want an error for a nonexistent directory")
	}
}
