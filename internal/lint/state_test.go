package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestStateFixtures runs the state-integrity family over the fixture
// corpus and asserts the exact set of finding positions against the
// want: markers — positive cases (a pooled field leaking across
// reuses, a Reset that skips a field on one path, a partial snapshot
// literal, package-level vars, use-after-release), the accepted idioms
// (whole-object reset, range-clear, element-delegation, whole-value
// clone, caller-side initialization), and the sticky/allow exemptions.
func TestStateFixtures(t *testing.T) {
	p := loadFixture(t, "state", "repro/internal/sim")
	var got []string
	for _, f := range Run([]*Package{p}, StateRules()) {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
	}
	sort.Strings(got)
	want := expectations(p)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
	}
}

// TestStateFindingsNameTheField pins the part of the contract the
// positions alone cannot: a resetcover/snapshotcover finding must name
// the exact field that leaks, because that name is what makes the
// finding actionable.
func TestStateFindingsNameTheField(t *testing.T) {
	p := loadFixture(t, "state", "repro/internal/sim")
	wantFields := map[string]string{
		"leakyReq":    "cookie",
		"carrier":     "data",
		"counterBank": "peak",
		"latch":       "count",
		"gauge":       "errs",
		"prober":      "y",
	}
	findings := Run([]*Package{p}, StateRules())
	for owner, field := range wantFields {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Msg, owner) && strings.Contains(f.Msg, "field "+field) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding names %s's missed field %s; messages:\n%v", owner, field, findings)
		}
	}
}

// TestStateScopedOut reloads the same corpus outside the state scope
// (not under internal/) and expects silence: the family polices
// sim-core and stats, not command-line tools.
func TestStateScopedOut(t *testing.T) {
	p := loadFixture(t, "state", "repro/cmd/sim")
	if got := Run([]*Package{p}, StateRules()); len(got) != 0 {
		t.Errorf("state rules fired outside their scope: %v", got)
	}
}

// TestStateStatsInScope confirms internal/stats is policed even though
// it is not a sim-core package: its Reset/Snapshot surfaces feed every
// figure.
func TestStateStatsInScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/stats", true},
		{"repro/internal/sim", true},
		{"repro/internal/trace", false},
		{"repro/cmd/sim", false},
	}
	for _, c := range cases {
		if got := isStateScope(c.path); got != c.want {
			t.Errorf("isStateScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
