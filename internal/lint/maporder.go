package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporderRule bans ranging over maps in non-test internal code: Go
// randomizes map iteration order per run, so any map range whose body
// has order-dependent effects (appending to output, drawing from an
// rng stream, scheduling events) silently breaks reproducibility.
//
// The canonical fix is exempted automatically: a loop that only
// collects the map's keys into a slice which is subsequently passed to
// sort.* or slices.Sort* in the same block is recognized as
// deterministic and not flagged. Loops whose bodies are provably
// order-insensitive (commutative sums, results sorted before return)
// can be annotated //afalint:allow maporder with a reason.
//
// Test files get a narrower check: only ranges over map *literals* are
// flagged (always avoidable — iterate a slice instead; this is the
// internal/sched/autoisolate_test.go bug class), because assertion
// loops over result maps are common and fail loudly rather than skew
// results.
type maporderRule struct{}

func (maporderRule) Name() string { return "maporder" }

func (maporderRule) Doc() string {
	return "no range over a map in non-test internal code unless keys are collected and sorted first (tests: no map-literal ranges)"
}

func (maporderRule) Check(p *Package) []Finding {
	if !isInternal(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		literalOnly := p.IsTestFile(f)
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				stmts = n.List
			case *ast.CaseClause:
				stmts = n.Body
			case *ast.CommClause:
				stmts = n.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !p.rangesOverMap(rs) {
					continue
				}
				if literalOnly && !isMapLiteral(rs.X) {
					continue
				}
				if isSortedKeyCollect(rs, stmts[i+1:]) {
					continue
				}
				out = append(out, p.finding("maporder", rs.For,
					"map iteration order is nondeterministic; range a sorted key slice instead"))
			}
			return true
		})
	}
	return out
}

// rangesOverMap reports whether rs iterates a map. Type information is
// authoritative; when it is unavailable (type errors), map composite
// literals are still caught syntactically.
func (p *Package) rangesOverMap(rs *ast.RangeStmt) bool {
	if t := p.typeOf(rs.X); t != nil {
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	return isMapLiteral(rs.X)
}

// isMapLiteral reports whether e is a map composite literal.
func isMapLiteral(e ast.Expr) bool {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	_, ok = cl.Type.(*ast.MapType)
	return ok
}

// isSortedKeyCollect recognizes the canonical deterministic pattern:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)   // or sort.Slice / slices.Sort*, before any other use
//
// rs must collect only keys, and a following statement in the same
// block must sort the destination slice before anything else touches it.
func isSortedKeyCollect(rs *ast.RangeStmt, following []ast.Stmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || a0.Name != dst.Name {
		return false
	}
	if a1, ok := call.Args[1].(*ast.Ident); !ok || a1.Name != key.Name {
		return false
	}
	// The statement immediately after the loop must be the sort; anything
	// else in between could observe the unsorted slice.
	if len(following) == 0 {
		return false
	}
	es, ok := following[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	sel, ok := sortCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
		return false
	}
	arg, ok := sortCall.Args[0].(*ast.Ident)
	return ok && arg.Name == dst.Name
}
