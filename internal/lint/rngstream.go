package lint

import (
	"go/ast"
	"go/types"
)

// rngstreamRule polices rng-stream ownership at the orchestration
// boundary (DESIGN.md §7): the byte-identical serial/parallel guarantee
// of runner.Map holds only because every job builds all of its own
// mutable state — including every *rng.Stream it draws from — inside
// the job closure. A stream captured from the enclosing scope is
// mutated from multiple worker goroutines in pool-scheduling order, so
// the draw sequence (and therefore every latency figure downstream)
// varies run to run; a stream stored into package state escapes the job
// and couples later runs to pool timing the same way.
//
// The rule examines every function literal passed as the worker of a
// runner.Map call and reports:
//
//   - any use of a Stream-typed variable declared outside the literal
//     (captured local or package-level), and
//   - any assignment inside the literal that stores a Stream into a
//     package-level variable.
//
// Workers passed as named functions rather than literals cannot capture
// locals by construction and are not inspected further.
type rngstreamRule struct{}

func (rngstreamRule) Name() string { return "rngstream" }

func (rngstreamRule) Doc() string {
	return "an *rng.Stream used inside a runner.Map job must be created inside the job closure and must not escape into package state"
}

func (rngstreamRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isRunnerMapCall(call) || len(call.Args) == 0 {
				return true
			}
			worker, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, p.checkWorkerStreams(worker)...)
			return true
		})
	}
	return out
}

// isRunnerMapCall reports whether call invokes internal/runner's Map.
func (p *Package) isRunnerMapCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.IndexExpr: // explicit instantiation runner.Map[S, R](...)
		if sel, ok := ast.Unparen(f.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(f.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "Map" && fn.Pkg() != nil && isOrchestration(fn.Pkg().Path())
}

// checkWorkerStreams inspects one worker literal for stream captures
// and stream escapes: a plain identifier of stream type declared
// outside the literal (captured local, package var), or a stream-typed
// field path rooted in outside state — which covers both reading a
// stream out of package/captured state and storing a job-owned stream
// into it (the LHS of `pkgState.s = jobStream` is such a path).
func (p *Package) checkWorkerStreams(worker *ast.FuncLit) []Finding {
	var out []Finding
	inside := func(v *types.Var) bool {
		return v.Pos() >= worker.Pos() && v.Pos() <= worker.End()
	}
	ast.Inspect(worker.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			v, ok := p.Info.Uses[n].(*types.Var)
			if !ok || v.IsField() || !isRNGStream(v.Type()) || inside(v) {
				return true
			}
			if packageLevel(v) {
				out = append(out, p.finding("rngstream", n.Pos(),
					"package-level rng stream %s used inside a runner.Map job; every job must own its streams", v.Name()))
			} else {
				out = append(out, p.finding("rngstream", n.Pos(),
					"rng stream %s captured from outside the runner.Map job closure; derive it inside the job", v.Name()))
			}
		case *ast.SelectorExpr:
			if !isRNGStream(p.typeOf(n)) {
				return true
			}
			base := baseIdent(n.X)
			if base == nil {
				return true
			}
			v, ok := p.Info.Uses[base].(*types.Var)
			if !ok || inside(v) {
				return true
			}
			what := "state captured from outside the runner.Map job closure"
			if packageLevel(v) {
				what = "package state"
			}
			out = append(out, p.finding("rngstream", n.Pos(),
				"rng stream %s.%s lives in %s; a job must create and keep its own streams", v.Name(), n.Sel.Name, what))
		}
		return true
	})
	return out
}

// packageLevel reports whether v is declared at package scope.
func packageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// isRNGStream reports whether t is rng.Stream or *rng.Stream from
// internal/rng.
func isRNGStream(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Stream" && obj.Pkg() != nil &&
		isInternal(obj.Pkg().Path()) && pathTail(obj.Pkg().Path()) == "rng"
}

// baseIdent unwraps selectors and index expressions to the root
// identifier of an assignable expression (x.y[i].z → x).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}
