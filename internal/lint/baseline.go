package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a recorded-debt file that lets a new rule land
// before every pre-existing finding is fixed. The baseline is a
// multiset of findings keyed by (file, rule, message) — line and column
// are deliberately excluded so unrelated edits that shift a file do not
// invalidate the whole ledger. A finding that matches an unconsumed
// baseline entry is filtered from the run; entries left unconsumed are
// stale debts the caller should prune.
//
// File format, one finding per line (exactly what WriteBaseline emits):
//
//	<relative/file.go>: <message> [<rule>]
//
// Blank lines and lines starting with '#' are comments.

// Baseline is a parsed baseline file.
type Baseline struct {
	counts map[string]int
	order  []string // first-seen key order, for stale reporting
}

// baselineKey normalizes one finding to its ledger key. root, when
// non-empty, relativizes the file path so baselines are stable across
// checkouts.
func baselineKey(f Finding, root string) string {
	file := f.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s: %s [%s]", file, f.Msg, f.Rule)
}

// ParseBaseline parses baseline file contents.
func ParseBaseline(data []byte) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, "]") || !strings.Contains(line, ": ") {
			return nil, fmt.Errorf("lint: baseline line %d: want \"file: message [rule]\", got %q", i+1, line)
		}
		if b.counts[line] == 0 {
			b.order = append(b.order, line)
		}
		b.counts[line]++
	}
	return b, nil
}

// Filter partitions findings into those not covered by the baseline
// (returned) and those consumed by it. It also returns the stale
// entries: baseline lines no current finding matched, which should be
// deleted from the file.
func (b *Baseline) Filter(findings []Finding, root string) (kept []Finding, suppressed int, stale []string) {
	remaining := map[string]int{}
	for _, k := range b.order {
		remaining[k] = b.counts[k]
	}
	for _, f := range findings {
		key := baselineKey(f, root)
		if remaining[key] > 0 {
			remaining[key]--
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	for _, k := range b.order {
		if remaining[k] > 0 {
			stale = append(stale, k)
		}
	}
	return kept, suppressed, stale
}

// WriteBaseline renders findings as baseline file contents, sorted and
// ready to commit.
func WriteBaseline(findings []Finding, root string) []byte {
	var lines []string
	for _, f := range findings {
		lines = append(lines, baselineKey(f, root))
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# afalint baseline: known accepted debts.\n")
	sb.WriteString("# Each line excuses one finding (file: message [rule]); delete lines as debts are fixed.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return []byte(sb.String())
}
