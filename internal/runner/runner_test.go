package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestMapMatchesSerial is the package's contract in miniature: a
// non-trivial worker (a tiny discrete-event simulation per job, the
// same shape the experiment layer submits) must produce byte-identical
// results at every pool width.
func TestMapMatchesSerial(t *testing.T) {
	specs := make([]uint64, 23)
	for i := range specs {
		specs[i] = 1000 + uint64(i)
	}
	// Each job runs its own engine and rng stream — nothing shared.
	worker := func(i int, seed uint64) string {
		eng := sim.NewEngine()
		r := rng.NewLabeled(seed, "runner-test")
		var total sim.Duration
		for k := 0; k < 50; k++ {
			d := sim.Duration(r.Intn(1000) + 1)
			eng.After(d, func() { total += d })
			eng.Run()
		}
		return fmt.Sprintf("job%d seed%d total%d now%d", i, seed, total, eng.Now())
	}
	want := Map(Options{Parallel: 1}, specs, worker)
	for _, p := range []int{0, 2, 8, 64} {
		got := Map(Options{Parallel: p}, specs, worker)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Parallel=%d result[%d] = %q, serial reference %q", p, i, got[i], want[i])
			}
		}
	}
}

// TestMapSubmissionOrder pins the merge rule: results land at their
// submission index even when later jobs finish first.
func TestMapSubmissionOrder(t *testing.T) {
	// Jobs signal each other so job 0 provably finishes last: it blocks
	// until every other job has completed. Needs Parallel >= n so no
	// worker is starved.
	const n = 8
	var done sync.WaitGroup
	done.Add(n - 1)
	out := Map(Options{Parallel: n}, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i, v int) int {
		if i == 0 {
			done.Wait()
		} else {
			done.Done()
		}
		return v * 10
	})
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*10)
		}
	}
}

// TestMapBoundsConcurrency verifies the pool width is respected: with
// Parallel=2, no more than two jobs are ever in flight.
func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	Map(Options{Parallel: 2}, make([]struct{}, 32), func(i int, _ struct{}) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for k := 0; k < 1000; k++ { // small busy phase to let overlap show
			_ = k * k
		}
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak in-flight jobs %d, want <= 2", p)
	}
}

// TestMapPanicPropagation re-raises the lowest-indexed job panic with
// its original value, matching what a serial loop would surface first.
func TestMapPanicPropagation(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Parallel=%d: no panic propagated", parallel)
				}
				if s, ok := r.(string); !ok || s != "boom 2" {
					t.Fatalf("Parallel=%d: recovered %v, want lowest-index panic \"boom 2\"", parallel, r)
				}
			}()
			Map(Options{Parallel: parallel}, []int{0, 1, 2, 3, 4, 5}, func(i, v int) int {
				if i >= 2 && i%2 == 0 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return v
			})
		}()
	}
}

// TestMapEmptyAndSingle covers the degenerate shapes experiments hand
// us: empty spec lists and one-job batches.
func TestMapEmptyAndSingle(t *testing.T) {
	if out := Map(Options{}, nil, func(i, v int) int { return v }); len(out) != 0 {
		t.Fatalf("empty specs produced %v", out)
	}
	out := Map(Options{Parallel: 8}, []int{41}, func(i, v int) int { return v + 1 })
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("single job produced %v", out)
	}
}

// TestWorkers pins the pool-width resolution: 0 means DefaultParallel,
// and the pool never exceeds the job count.
func TestWorkers(t *testing.T) {
	if got := (Options{}).workers(100); got != DefaultParallel() {
		t.Errorf("Options{}.workers(100) = %d, want DefaultParallel %d", got, DefaultParallel())
	}
	if got := (Options{Parallel: 16}).workers(3); got != 3 {
		t.Errorf("workers capped at job count: got %d, want 3", got)
	}
	if got := (Options{Parallel: -5}).workers(2); got != 2 && got != DefaultParallel() {
		t.Errorf("negative Parallel resolved to %d", got)
	}
}

// TestSeeds pins the sweep-seed derivation rule the CLI documents:
// sequential from base, so sweep run i is reproducible with -seed.
func TestSeeds(t *testing.T) {
	s := Seeds(2018, 4)
	want := []uint64{2018, 2019, 2020, 2021}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Seeds(2018, 4) = %v, want %v", s, want)
		}
	}
	if len(Seeds(7, 0)) != 0 {
		t.Fatal("Seeds(_, 0) must be empty")
	}
}
