// Package runner is the orchestration layer of the two-tier concurrency
// contract (DESIGN.md §7): a deterministic worker-pool map for
// independent simulation runs.
//
// The simulator core is single-threaded by contract — determinism comes
// from sim.Engine's total (time, seq) event order — so one run can never
// be parallelized. But an *experiment* is a batch of runs that share
// nothing: each boots its own core.System, owns its own engine and rng
// streams, and produces a value. Map exploits that embarrassing
// parallelism while keeping the output byte-identical to the serial
// loop:
//
//   - every job is handed its submission index and writes only its own
//     result slot, so results merge in submission order regardless of
//     which worker finishes first;
//   - workers share no simulation state — the worker function must build
//     everything it touches from its spec (the lint boundary enforces
//     the inverse direction: sim-core packages may not import runner);
//   - a panicking job does not crash a worker goroutine silently; the
//     lowest-indexed panic is re-raised on the caller's goroutine, which
//     is exactly the panic a serial loop would have surfaced first.
//
// This is the one package under internal/ where goroutines, channels,
// and sync are sanctioned; afalint's nogoroutine rule knows it as the
// orchestration tier and keeps the sim core strict.
package runner

import (
	"runtime"
	"sync"
)

// Options bound the worker pool.
type Options struct {
	// Parallel is the maximum number of jobs in flight. 0 (or negative)
	// means DefaultParallel(); 1 degenerates to the serial reference
	// loop. The produced results are identical at every setting — only
	// wall-clock time changes.
	Parallel int
}

// DefaultParallel is the pool width used when Options.Parallel is 0:
// one worker per available CPU.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// workers resolves the effective pool width for n jobs.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = DefaultParallel()
	}
	if w > n {
		w = n
	}
	return w
}

// Map runs worker(i, specs[i]) for every spec on a pool of goroutines
// and returns the results indexed by spec position. The output is
// byte-identical to the serial loop
//
//	for i, s := range specs { out[i] = worker(i, s) }
//
// for any Parallel setting, because each job computes independently and
// results land at their submission index. worker must not share mutable
// state across jobs; in this repo every job boots its own core.System.
func Map[S, R any](opt Options, specs []S, worker func(i int, spec S) R) []R {
	n := len(specs)
	out := make([]R, n)
	w := opt.workers(n)
	if w <= 1 {
		// Serial reference path: same order, same stack for panics.
		for i, s := range specs {
			out[i] = worker(i, s)
		}
		return out
	}
	jobs := make(chan int)
	panics := make([]any, n)
	panicked := make([]bool, n)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runJob(i, specs[i], worker, out, panics, panicked)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Re-raise the panic the serial loop would have hit first, on the
	// caller's goroutine, so misuse panics (bad stripe widths,
	// impossible geometries) keep their serial semantics.
	for i := range panicked {
		if panicked[i] {
			panic(panics[i])
		}
	}
	return out
}

// runJob executes one job, capturing a panic instead of killing the
// worker goroutine. Each job writes only its own slots, so the slices
// need no locking.
func runJob[S, R any](i int, spec S, worker func(int, S) R, out []R, panics []any, panicked []bool) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
			panicked[i] = true
		}
	}()
	out[i] = worker(i, spec)
}

// Seeds derives n per-run seeds for a seed sweep: base, base+1, …,
// base+n-1. Sequential seeds are deliberate — every component already
// decorrelates its streams by splitmix-scrambling the seed with a
// per-component label (internal/rng), and a run from sweep position i
// is reproducible by hand with `-seed base+i`. Seeds(base, n)[0] ==
// base, so a 1-wide sweep is exactly the unswept run.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}
