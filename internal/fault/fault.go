// Package fault is the deterministic fault-injection engine: it imposes
// per-SSD failure modes — slow-NAND bins, GC storms, transient command
// errors, uncorrectable media errors, firmware stalls, and full drive
// drop-out/recovery — at scheduled simulated times, so that rare events
// become first-class, seed-reproducible citizens of the simulation.
//
// The paper's thesis is that tail latency at AFA scale is set by rare
// events; the seed repository modeled only the benign ones (SMART windows,
// CFS slices). This package supplies the malign ones, and the host layers
// respond: the kernel's timeout/retry/abort machinery (package kernel),
// RAID degraded reads and hedged reads (package raid). Everything is
// scheduled on the sim.Engine event heap and drawn from labeled rng
// streams — no wall clock, no global rand — so an identical seed and Plan
// replays an identical failure trace (asserted by test).
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/nvme"
	"repro/internal/sim"
)

// Window is a span of simulated time during which a fault condition holds.
type Window struct {
	At  sim.Time     // window start
	For sim.Duration // window length
}

// Profile is one SSD's fault model. The zero value (beyond SSD) is a
// healthy device; each field arms one failure mode independently.
type Profile struct {
	// SSD indexes the device this profile applies to.
	SSD int
	// ReadSlowdown ≥ 1 permanently scales NAND read time (a slow bin from
	// device binning, or worn flash needing deeper read-retry ladders).
	ReadSlowdown float64
	// WriteSlowdown ≥ 1 permanently scales the device's write-admission
	// token cost (worn flash programming slower, thermal throttling) —
	// the write-path analogue of ReadSlowdown.
	WriteSlowdown float64
	// TransientRate is the per-command probability of a retryable
	// StatusTransient completion (controller DRAM hiccups, link CRC
	// retries surfacing as internal errors).
	TransientRate float64
	// BadLBAs develop uncorrectable media errors at BadLBAsAt. Reads of
	// those slices return StatusMediaError until they are rewritten.
	BadLBAs   []int64
	BadLBAsAt sim.Time
	// GCStorms lists windows during which reads are further slowed by
	// StormFactor (default 8) — foreground GC monopolizing the channels.
	GCStorms    []Window
	StormFactor float64
	// FirmwareStalls lists windows where the controller stops draining
	// submission queues entirely (a firmware lockup; commands wait).
	FirmwareStalls []Window
	// DropAt > 0 removes the drive from the fabric at that instant; no
	// submitted or in-flight command completes while it is gone.
	// RecoverAt > DropAt brings it back (hot re-plug); 0 means never.
	DropAt    sim.Time
	RecoverAt sim.Time
}

// Plan is the complete fault schedule for a fleet.
type Plan struct {
	Profiles []Profile
}

// Event is one imposed fault transition — an entry of the failure trace.
type Event struct {
	At     sim.Time
	SSD    int
	Kind   string // "slow-bin", "transient-rate", "bad-lba", "storm-start", ...
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%v ssd=%d %s %s", e.At, e.SSD, e.Kind, e.Detail)
}

// Injector applies a Plan to a fleet. Construction validates the plan and
// schedules every transition on the engine's event heap; the injector then
// records each transition as it fires, building the failure trace.
type Injector struct {
	eng    *sim.Engine
	ssds   []*nvme.Controller
	plan   Plan
	events []Event
}

// NewInjector validates plan against the fleet and arms every profile.
// It panics on an out-of-range SSD or an inconsistent window — a bad plan
// is an experiment bug, not a runtime condition.
func NewInjector(eng *sim.Engine, ssds []*nvme.Controller, plan Plan) *Injector {
	in := &Injector{eng: eng, ssds: ssds, plan: plan}
	for _, p := range plan.Profiles {
		if p.SSD < 0 || p.SSD >= len(ssds) {
			panic(fmt.Sprintf("fault: profile SSD %d out of range [0,%d)", p.SSD, len(ssds)))
		}
		if p.DropAt > 0 && p.RecoverAt > 0 && p.RecoverAt <= p.DropAt {
			panic(fmt.Sprintf("fault: ssd %d recovers at %v before dropping at %v",
				p.SSD, p.RecoverAt, p.DropAt))
		}
		in.arm(p)
	}
	return in
}

// record appends one failure-trace entry at the current instant.
func (in *Injector) record(ssd int, kind, detail string) {
	in.events = append(in.events, Event{At: in.eng.Now(), SSD: ssd, Kind: kind, Detail: detail})
}

// at schedules fn at t, clamping to now for t already in the past (a
// profile applied mid-run may start windows immediately).
func (in *Injector) at(t sim.Time, fn func()) {
	if t < in.eng.Now() {
		t = in.eng.Now()
	}
	in.eng.ScheduleAt(t, fn)
}

// arm schedules every transition of one profile.
func (in *Injector) arm(p Profile) {
	ssd := in.ssds[p.SSD]
	id := p.SSD

	if p.ReadSlowdown > 1 {
		f := p.ReadSlowdown
		in.at(in.eng.Now(), func() {
			ssd.SetReadSlowdown(f)
			in.record(id, "slow-bin", fmt.Sprintf("×%.2f", f))
		})
	}
	if p.WriteSlowdown > 1 {
		f := p.WriteSlowdown
		in.at(in.eng.Now(), func() {
			ssd.SetWriteSlowdown(f)
			in.record(id, "slow-write", fmt.Sprintf("×%.2f", f))
		})
	}
	if p.TransientRate > 0 {
		rate := p.TransientRate
		in.at(in.eng.Now(), func() {
			ssd.SetTransientErrorRate(rate)
			in.record(id, "transient-rate", fmt.Sprintf("p=%.4f", rate))
		})
	}
	if len(p.BadLBAs) > 0 {
		lbas := append([]int64(nil), p.BadLBAs...)
		in.at(p.BadLBAsAt, func() {
			for _, lba := range lbas {
				ssd.MarkBadLBA(lba)
			}
			in.record(id, "bad-lba", fmt.Sprintf("n=%d", len(lbas)))
		})
	}
	storm := p.StormFactor
	if storm <= 1 {
		storm = 8
	}
	for _, w := range p.GCStorms {
		w := w
		in.at(w.At, func() {
			ssd.SetStormFactor(storm)
			in.record(id, "storm-start", fmt.Sprintf("×%.1f for %v", storm, w.For))
		})
		in.at(w.At.Add(w.For), func() {
			ssd.SetStormFactor(1)
			in.record(id, "storm-end", "")
		})
	}
	for _, w := range p.FirmwareStalls {
		w := w
		in.at(w.At, func() {
			ssd.StallSubmissionQueues(w.For)
			in.record(id, "fw-stall", fmt.Sprintf("for %v", w.For))
		})
	}
	if p.DropAt > 0 {
		in.at(p.DropAt, func() {
			ssd.SetOffline(true)
			in.record(id, "drop", "")
		})
	}
	if p.RecoverAt > 0 {
		in.at(p.RecoverAt, func() {
			ssd.SetOffline(false)
			in.record(id, "recover", "")
		})
	}
}

// Trace returns the failure trace: every imposed transition in the order
// it fired. Deterministic for a given (seed, Plan): the engine's FIFO
// tie-break fixes the order of simultaneous transitions.
func (in *Injector) Trace() []Event {
	return append([]Event(nil), in.events...)
}

// TraceString renders the failure trace one event per line — the
// byte-comparable artifact the determinism property test asserts on.
func (in *Injector) TraceString() string {
	var b strings.Builder
	for _, e := range in.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// PeriodicStalls builds stall windows of length dur every period within
// [0, horizon), starting at phase. A convenience for building plans.
// A non-positive period is rejected (nil): it can never place more than
// one window, and the naive loop would either never terminate (0) or
// walk time backwards (negative).
func PeriodicStalls(phase sim.Time, period, dur sim.Duration, horizon sim.Time) []Window {
	if period <= 0 {
		return nil
	}
	var out []Window
	for t := phase; t < horizon; t = t.Add(period) {
		out = append(out, Window{At: t, For: dur})
	}
	return out
}

// Merge combines plans; profiles for the same SSD are kept separate (the
// injector applies them independently).
func Merge(plans ...Plan) Plan {
	var out Plan
	for _, p := range plans {
		out.Profiles = append(out.Profiles, p.Profiles...)
	}
	// Keep a canonical order so TraceString is stable regardless of how
	// the caller assembled the plan.
	sort.SliceStable(out.Profiles, func(i, j int) bool {
		return out.Profiles[i].SSD < out.Profiles[j].SSD
	})
	return out
}
