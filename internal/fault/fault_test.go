package fault_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nand"
	"repro/internal/raid"
	"repro/internal/sim"
)

// runFaulted boots a small tolerant system under a busy fault plan —
// every failure mode armed, including a mid-run drop-out — runs a striped
// client over it, and flattens everything observable into one string:
// the failure trace, the client counters, the kernel tolerance counters,
// and the latency ladder. Determinism means this string is byte-identical
// across runs of the same seed.
func runFaulted(seed uint64) string {
	const runtime = 30 * sim.Millisecond
	plan := fault.Plan{Profiles: []fault.Profile{
		{SSD: 0, DropAt: sim.Time(0).Add(runtime / 3),
			RecoverAt: sim.Time(0).Add(2 * runtime / 3)},
		{SSD: 1, ReadSlowdown: 2.5, WriteSlowdown: 3, TransientRate: 0.01},
		{SSD: 2, BadLBAs: []int64{3, 5}, BadLBAsAt: sim.Time(0).Add(runtime / 4),
			GCStorms:    []fault.Window{{At: sim.Time(0).Add(runtime / 2), For: runtime / 8}},
			StormFactor: 6},
		{SSD: 3, FirmwareStalls: fault.PeriodicStalls(
			sim.Time(0).Add(runtime/5), runtime/3, sim.Millisecond, sim.Time(0).Add(runtime))},
	}}
	cfg := core.FaultTolerance()
	sys := core.NewSystem(core.Options{
		NumSSDs: 6, Seed: seed, Config: cfg, Geom: nand.TinyGeometry(),
		FaultPlan: &plan,
	})
	res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
		Name: "det", Stripe: []int{0, 1, 2, 3}, CPU: sys.Host.WorkloadCPUs()[0],
		Runtime: runtime, Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio,
		Tol: raid.DefaultTolerance(4), Seed: seed,
	}})[0]
	return fmt.Sprintf("trace:\n%scounters: %+v\nkernel: %+v\nladder: %v\n",
		sys.Faults.TraceString(),
		struct {
			Requests, Failed, SubIOErrors, Degraded, Hedged, Wins, Late int64
		}{res.Requests, res.FailedRequests, res.SubIOErrors, res.DegradedReads,
			res.HedgedReads, res.HedgeWins, res.LateSubIOs},
		sys.Kernel.IOStats(), res.Ladder)
}

// TestFaultReplayDeterminism is the PR's core contract: an identical seed
// and FaultPlan must replay a byte-identical failure trace, retry
// counters, and latency ladder.
func TestFaultReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full faulted runs per seed")
	}
	property := func(seed uint64) bool {
		a, b := runFaulted(seed), runFaulted(seed)
		if a != b {
			t.Logf("seed %d diverged:\n--- run A ---\n%s--- run B ---\n%s", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorRecordsTrace(t *testing.T) {
	out := runFaulted(42)
	for _, want := range []string{"drop", "recover", "slow-bin", "slow-write",
		"transient-rate", "bad-lba", "storm-start", "storm-end", "fw-stall"} {
		if !contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestInjectorValidatesSSDRange(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SSD accepted")
		}
	}()
	fault.NewInjector(eng, nil, fault.Plan{Profiles: []fault.Profile{{SSD: 3}}})
}

func TestInjectorValidatesRecoveryOrder(t *testing.T) {
	sys := core.NewSystem(core.Options{NumSSDs: 2, Seed: 1, Geom: nand.TinyGeometry()})
	defer func() {
		if recover() == nil {
			t.Fatal("recovery before drop accepted")
		}
	}()
	fault.NewInjector(sys.Eng, sys.SSDs, fault.Plan{Profiles: []fault.Profile{
		{SSD: 0, DropAt: sim.Time(0).Add(sim.Second), RecoverAt: sim.Time(0).Add(sim.Millisecond)},
	}})
}

func TestPeriodicStalls(t *testing.T) {
	ws := fault.PeriodicStalls(sim.Time(0).Add(10*sim.Millisecond),
		20*sim.Millisecond, sim.Millisecond, sim.Time(0).Add(100*sim.Millisecond))
	if len(ws) != 5 {
		t.Fatalf("windows = %d, want 5", len(ws))
	}
	for i, w := range ws {
		want := sim.Time(0).Add(sim.Duration(10+20*i) * sim.Millisecond)
		if w.At != want || w.For != sim.Millisecond {
			t.Fatalf("window %d = %+v", i, w)
		}
	}
}

func TestPeriodicStallsRejectsNonPositivePeriod(t *testing.T) {
	horizon := sim.Time(0).Add(100 * sim.Millisecond)
	// A zero period would loop forever; a negative one would walk time
	// backwards. Both must yield no windows, not hang or panic.
	if ws := fault.PeriodicStalls(0, 0, sim.Millisecond, horizon); ws != nil {
		t.Fatalf("zero period produced %d windows", len(ws))
	}
	if ws := fault.PeriodicStalls(0, -sim.Millisecond, sim.Millisecond, horizon); ws != nil {
		t.Fatalf("negative period produced %d windows", len(ws))
	}
}

func TestMergeCanonicalizesOrder(t *testing.T) {
	a := fault.Plan{Profiles: []fault.Profile{{SSD: 5}, {SSD: 1}}}
	b := fault.Plan{Profiles: []fault.Profile{{SSD: 3}}}
	m := fault.Merge(a, b)
	if len(m.Profiles) != 3 {
		t.Fatalf("profiles = %d", len(m.Profiles))
	}
	for i, want := range []int{1, 3, 5} {
		if m.Profiles[i].SSD != want {
			t.Fatalf("profile %d is SSD %d, want %d", i, m.Profiles[i].SSD, want)
		}
	}
}
