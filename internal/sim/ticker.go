package sim

// Ticker invokes a callback at a fixed period. Unlike a bare repeating
// event, a Ticker can be retuned (period changed) or stopped, which the
// scheduler uses to model nohz_full switching a CPU between a 1 kHz and a
// 1 Hz tick.
type Ticker struct {
	eng    *Engine
	period Duration
	fn     func(Time)
	fireFn func() // t.fire bound once, so re-arming never allocates
	tm     *Timer
	stop   bool
}

// NewTicker starts a ticker whose first fire is one period from now.
// fn receives the fire time.
func NewTicker(eng *Engine, period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn, tm: eng.NewTimer()}
	t.fireFn = t.fire
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.tm.Arm(t.period, t.fireFn)
}

func (t *Ticker) fire() {
	if t.stop {
		return
	}
	t.fn(t.eng.Now())
	if !t.stop {
		t.arm()
	}
}

// Period reports the current period.
func (t *Ticker) Period() Duration { return t.period }

// SetPeriod changes the period. The next fire is re-anchored one new period
// from now.
func (t *Ticker) SetPeriod(p Duration) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	if p == t.period {
		return
	}
	t.period = p
	if !t.stop {
		t.arm() // Arm cancels the pending fire itself
	}
}

// Stop cancels the ticker. A stopped ticker never fires again.
func (t *Ticker) Stop() {
	t.stop = true
	t.tm.Cancel()
}
