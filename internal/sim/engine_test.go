package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30*Microsecond, func() { got = append(got, 3) })
	e.After(10*Microsecond, func() { got = append(got, 1) })
	e.After(20*Microsecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*Microsecond) {
		t.Fatalf("clock = %v, want 30µs", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(5*Microsecond), func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*Microsecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(5*Microsecond), func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10*Microsecond, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Canceling twice, or canceling nil, must be harmless.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]*Event, 20)
	for i := 0; i < 20; i++ {
		i := i
		evs[i] = e.After(Duration(i+1)*Microsecond, func() { got = append(got, i) })
	}
	for i := 0; i < 20; i += 2 {
		e.Cancel(evs[i])
	}
	e.Run()
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10", len(got))
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.After(10*Microsecond, func() { at = e.Now() })
	e.Reschedule(ev, Time(50*Microsecond))
	e.Run()
	if at != Time(50*Microsecond) {
		t.Fatalf("rescheduled event fired at %v, want 50µs", at)
	}
}

func TestRescheduleFiredEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	ev := e.After(10*Microsecond, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	e.Reschedule(ev, Time(20*Microsecond))
	e.Run()
	if n != 2 {
		t.Fatalf("rescheduling a fired event should schedule fresh; n = %d, want 2", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for i := 1; i <= 5; i++ {
		e.After(Duration(i)*Millisecond, func() { got = append(got, e.Now()) })
	}
	e.RunUntil(Time(3 * Millisecond))
	if len(got) != 3 {
		t.Fatalf("RunUntil(3ms) fired %d events, want 3 (inclusive boundary)", len(got))
	}
	if e.Now() != Time(3*Millisecond) {
		t.Fatalf("clock = %v, want 3ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(Time(7 * Second))
	if e.Now() != Time(7*Second) {
		t.Fatalf("clock = %v, want 7s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 10; i++ {
		e.After(Duration(i)*Microsecond, func() {
			n++
			if n == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 4 {
		t.Fatalf("Run continued after Stop: n = %d, want 4", n)
	}
	// Run again resumes.
	e.Run()
	if n != 10 {
		t.Fatalf("second Run: n = %d, want 10", n)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(Microsecond, rec)
		}
	}
	e.After(Microsecond, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("chained depth = %d, want 100", depth)
	}
	if e.Now() != Time(100*Microsecond) {
		t.Fatalf("clock = %v, want 100µs", e.Now())
	}
}

func TestStepsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.After(Microsecond, func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Fatalf("Steps() = %d, want 7", e.Steps())
	}
}

// Property: for any set of non-negative delays, events fire in nondecreasing
// time order and the final clock equals the max delay.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		var maxT Time
		for _, d := range delays {
			dd := Duration(d) * Microsecond
			if Time(dd) > maxT {
				maxT = Time(dd)
			}
			e.After(dd, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{25 * Microsecond, "25.000µs"},
		{5 * Millisecond, "5.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(10 * Microsecond)
	t1 := t0.Add(5 * Microsecond)
	if t1 != Time(15*Microsecond) {
		t.Fatalf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != 5*Microsecond {
		t.Fatalf("Sub: got %v", d)
	}
	if s := Time(2500 * Millisecond).Seconds(); s != 2.5 {
		t.Fatalf("Seconds: got %v", s)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var fires []Time
	NewTicker(e, Millisecond, func(now Time) { fires = append(fires, now) })
	e.RunUntil(Time(5 * Millisecond))
	if len(fires) != 5 {
		t.Fatalf("ticker fired %d times in 5ms, want 5", len(fires))
	}
	for i, f := range fires {
		want := Time(Duration(i+1) * Millisecond)
		if f != want {
			t.Fatalf("fire %d at %v, want %v", i, f, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, Millisecond, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(Time(10 * Millisecond))
	if n != 3 {
		t.Fatalf("stopped ticker fired %d times, want 3", n)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tk := NewTicker(e, Millisecond, func(now Time) { fires = append(fires, now) })
	e.RunUntil(Time(2 * Millisecond))
	tk.SetPeriod(Second) // like nohz_full dropping to 1 Hz
	e.RunUntil(Time(3 * Second))
	if len(fires) != 4 { // 1ms, 2ms, 1.002s, 2.002s
		t.Fatalf("fires = %v, want 4 entries", fires)
	}
	if fires[2] != Time(2*Millisecond+Second) {
		t.Fatalf("first slow fire at %v, want 1.002s", fires[2])
	}
	if tk.Period() != Second {
		t.Fatalf("Period() = %v", tk.Period())
	}
	// Setting the same period is a no-op and must not re-anchor.
	tk.SetPeriod(Second)
	e.RunUntil(Time(3*Second + 2*Millisecond))
	if len(fires) != 5 {
		t.Fatalf("after no-op SetPeriod: fires = %d, want 5", len(fires))
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewTicker(e, 0, func(Time) {})
}

// TestRunUntilDrainsCanceledHeadPastT pins RunUntil's tombstone-drain
// contract: a canceled event at the head of the queue is discarded even
// when its timestamp lies beyond t, and the clock still lands exactly on
// t. Cancel normally removes events eagerly, so the tombstone is built
// white-box — the drain branch must keep working if a future Cancel
// strategy leaves canceled events queued.
func TestRunUntilDrainsCanceledHeadPastT(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(Time(50*Microsecond), func() { fired = true })
	ev.canceled = true // white-box tombstone: still queued, head of heap

	e.RunUntil(Time(20 * Microsecond))
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0 (tombstone not drained)", e.Pending())
	}
	if e.Now() != Time(20*Microsecond) {
		t.Fatalf("Now() = %v, want 20µs", e.Now())
	}
}

// TestRunUntilDrainsTombstoneBeforeLiveEvent: the tombstone drain only
// discards canceled heads — a live event beyond t stays queued.
func TestRunUntilDrainsTombstoneBeforeLiveEvent(t *testing.T) {
	e := NewEngine()
	ev := e.At(Time(50*Microsecond), func() {})
	ev.canceled = true // white-box tombstone at the head
	liveFired := false
	e.At(Time(60*Microsecond), func() { liveFired = true })

	e.RunUntil(Time(20 * Microsecond))
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1 (live event must survive)", e.Pending())
	}
	if e.Now() != Time(20*Microsecond) {
		t.Fatalf("Now() = %v, want 20µs", e.Now())
	}
	e.Run()
	if !liveFired {
		t.Fatal("live event behind the tombstone never fired")
	}
}

// TestTimerArmAtCurrentInstantFIFO: arming a timer at the current
// instant assigns a fresh sequence number, so it fires after events
// already queued at that same instant — the (when, seq) FIFO contract
// holds for timers exactly as for plain events.
func TestTimerArmAtCurrentInstantFIFO(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer()
	var got []string
	e.At(Time(10*Microsecond), func() {
		e.ScheduleAt(e.Now(), func() { got = append(got, "event") })
		tm.ArmAt(e.Now(), func() { got = append(got, "timer") })
	})
	e.Run()
	if len(got) != 2 || got[0] != "event" || got[1] != "timer" {
		t.Fatalf("fire order %v, want [event timer]", got)
	}
}

// TestTimerRearmAtNowSupersedesOldDeadline: re-arming an armed timer at
// the current instant cancels the old deadline and takes a fresh seq —
// the old callback never fires, and the new one queues FIFO behind
// events already scheduled at this instant.
func TestTimerRearmAtNowSupersedesOldDeadline(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer()
	var got []string
	tm.ArmAt(Time(100*Microsecond), func() { got = append(got, "stale") })
	e.At(Time(10*Microsecond), func() {
		e.ScheduleAt(e.Now(), func() { got = append(got, "first") })
		tm.ArmAt(e.Now(), func() { got = append(got, "rearmed") })
	})
	e.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "rearmed" {
		t.Fatalf("fire order %v, want [first rearmed]", got)
	}
	if e.Now() != Time(10*Microsecond) {
		t.Fatalf("Now() = %v, want 10µs (stale 100µs deadline must not fire)", e.Now())
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

// TestPooledRecycleClearsFn is a white-box check of the freelist's
// state-integrity contract (afalint -state, resetcover/poolescape):
// every path that returns a pooled event to e.free must drop the fn
// closure reference first, so captured memory is not pinned until the
// next reuse, and push must reinitialize every field on reacquisition.
func TestPooledRecycleClearsFn(t *testing.T) {
	t.Run("fired", func(t *testing.T) {
		e := NewEngine()
		fired := false
		e.Schedule(5, func() { fired = true })
		if !e.Step() || !fired {
			t.Fatal("pooled event did not fire")
		}
		if n := len(e.free); n != 1 {
			t.Fatalf("freelist has %d events after fire, want 1", n)
		}
		if e.free[0].fn != nil {
			t.Error("fired pooled event kept its fn reference on the freelist")
		}
	})
	t.Run("canceled", func(t *testing.T) {
		e := NewEngine()
		// Pooled pointers are never handed out by the public API, so
		// reach the tombstone path directly through push.
		ev := e.push(5, func() {}, true)
		e.Cancel(ev)
		if n := len(e.free); n != 1 {
			t.Fatalf("freelist has %d events after cancel, want 1", n)
		}
		if ev.fn != nil {
			t.Error("canceled pooled event kept its fn reference on the freelist")
		}
		if e.Pending() != 0 {
			t.Errorf("queue still holds %d events after cancel", e.Pending())
		}
	})
	t.Run("tombstone in Step", func(t *testing.T) {
		e := NewEngine()
		ev := e.push(5, func() {}, true)
		ev.canceled = true // simulate a tombstone Cancel's fast path missed
		if e.Step() {
			t.Fatal("Step fired a canceled event")
		}
		if n := len(e.free); n != 1 {
			t.Fatalf("freelist has %d events after tombstone drain, want 1", n)
		}
		if ev.fn != nil {
			t.Error("drained tombstone kept its fn reference on the freelist")
		}
	})
	t.Run("tombstone in RunUntil", func(t *testing.T) {
		e := NewEngine()
		ev := e.push(5, func() {}, true)
		ev.canceled = true
		e.RunUntil(10)
		if n := len(e.free); n != 1 {
			t.Fatalf("freelist has %d events after tombstone drain, want 1", n)
		}
		if ev.fn != nil {
			t.Error("drained tombstone kept its fn reference on the freelist")
		}
		if e.Now() != 10 {
			t.Errorf("clock at %v after RunUntil(10)", e.Now())
		}
	})
	t.Run("reacquire reinitializes", func(t *testing.T) {
		e := NewEngine()
		ev := e.push(5, func() {}, true)
		e.Cancel(ev)
		ev2 := e.push(7, func() {}, true)
		if ev2 != ev {
			t.Fatal("freelist did not hand back the recycled event")
		}
		if ev2.when != 7 || ev2.canceled || !ev2.pooled || ev2.fn == nil || ev2.index != 0 {
			t.Errorf("recycled event not fully reinitialized: when=%v canceled=%v pooled=%v fn-nil=%v index=%d",
				ev2.when, ev2.canceled, ev2.pooled, ev2.fn == nil, ev2.index)
		}
	})
}
