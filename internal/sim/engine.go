// Package sim provides the deterministic discrete-event simulation engine
// that underpins the all-flash-array model.
//
// The engine maintains a virtual clock and a priority queue of pending
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break), which makes every simulation fully
// deterministic and therefore reproducible: the same seed always yields the
// same latency distributions.
package sim

import (
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	}
	return fmt.Sprintf("%dns", int64(d))
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) } //afalint:allow simtime -- the canonical Add: the one sanctioned Time+Time site

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as a floating-point number of seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. The zero value is not usable; events are
// created through Engine.At and Engine.After.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
	// pooled marks events created by Schedule/ScheduleAt: their pointers
	// are never handed to callers, so after firing they return to the
	// engine's freelist. At/After events are pinned — callers may retain
	// them for Cancel/Reschedule — and are never recycled.
	pooled bool
}

// When reports the instant the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// a simulation is a single-threaded, deterministic computation.
type Engine struct {
	now     Time
	queue   []*Event // binary min-heap ordered by (when, seq)
	seq     uint64
	stepped uint64
	stopped bool
	// free recycles fired Schedule/ScheduleAt events. A plain slice, not a
	// sync.Pool: the engine is single-threaded and the determinism contract
	// forbids any scheduler-dependent reuse order.
	free []*Event
}

// initialQueueCap sizes the heap and freelist so steady-state runs never
// grow them: a 64-SSD headline config keeps well under a thousand events
// in flight.
const initialQueueCap = 1024

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{queue: make([]*Event, 0, initialQueueCap)}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have fired so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// Pending reports the number of queued events (including canceled ones that
// have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// push enqueues an event, either recycled from the freelist (pooled) or
// freshly allocated (pinned).
func (e *Engine) push(t Time, fn func(), pooled bool) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); pooled && n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{} //afalint:allow hotalloc -- freelist miss or pinned event; pooled events amortize this across reuses
	}
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	ev.canceled = false
	ev.pooled = pooled
	ev.index = len(e.queue)
	e.seq++
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
	return ev
}

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: that is always a model bug. The returned event may be retained
// for Cancel or Reschedule; use ScheduleAt when it won't be.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.push(t, fn, false)
}

// After schedules fn to run d after the current instant. A negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.push(e.now.Add(d), fn, false)
}

// Schedule is the fire-and-forget form of After: the event cannot be
// canceled or rescheduled, which lets the engine recycle it after it fires
// instead of allocating a fresh one per call. Per-I/O paths should prefer
// it; the recycling is a plain per-engine freelist, so determinism is
// unaffected.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.push(e.now.Add(d), fn, true)
}

// ScheduleAt is the fire-and-forget form of At.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	e.push(t, fn, true)
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or been canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	e.removeAt(ev.index)
	ev.index = -1
	// Pooled pointers are never handed to callers, so a canceled pooled
	// event can go straight back to the freelist. Pinned events keep fn:
	// Reschedule on a canceled event re-arms with the same callback.
	if ev.pooled {
		ev.fn = nil
		e.free = append(e.free, ev)
	}
}

// Reschedule moves a pending event to a new absolute instant. If the event
// already fired or was canceled, a fresh event is scheduled with the same
// callback.
func (e *Engine) Reschedule(ev *Event, t Time) *Event {
	e.Cancel(ev)
	return e.At(t, ev.fn)
}

// Step fires the next pending event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.popMin()
		if ev.canceled {
			// A pooled tombstone (canceled after Cancel's fast path already
			// ran, or marked directly) is done for good: recycle it here so
			// the closure isn't pinned until the slot's next reuse.
			if ev.pooled {
				ev.fn = nil
				e.free = append(e.free, ev)
			}
			continue
		}
		if ev.when < e.now {
			panic("sim: event queue corrupted (time went backwards)")
		}
		e.now = ev.when
		e.stepped++
		fn := ev.fn
		if ev.pooled {
			ev.fn = nil
			e.free = append(e.free, ev)
		}
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled at exactly t do fire.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.queue[0]
		if next.canceled {
			e.popMin()
			// Same recycle as Step's tombstone drain: this loop discards
			// canceled heads without going through Step.
			if next.pooled {
				next.fn = nil
				e.free = append(e.free, next)
			}
			continue
		}
		if next.when > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the current Run or RunUntil return after the in-flight event
// callback completes.
func (e *Engine) Stop() { e.stopped = true }

// Timer is a reusable cancelable event for callers that keep at most one
// deadline outstanding at a time (a CPU's burst completion, a ticker's
// next fire, a coalescer's flush). Re-arming reuses the same Event
// storage forever, so steady-state timer traffic allocates nothing.
// The zero value is not usable; create through Engine.NewTimer.
type Timer struct {
	eng *Engine
	ev  Event
}

// NewTimer returns an unarmed timer bound to the engine.
func (e *Engine) NewTimer() *Timer {
	return &Timer{eng: e, ev: Event{index: -1}}
}

// Armed reports whether the timer is queued to fire.
func (t *Timer) Armed() bool { return t.ev.index >= 0 }

// Arm schedules fn to fire d from now, canceling any previous deadline.
func (t *Timer) Arm(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	t.ArmAt(t.eng.now.Add(d), fn)
}

// ArmAt schedules fn to fire at the absolute instant at, canceling any
// previous deadline.
func (t *Timer) ArmAt(at Time, fn func()) {
	e := t.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if t.ev.index >= 0 {
		e.removeAt(t.ev.index)
	}
	t.ev.when = at
	t.ev.seq = e.seq
	t.ev.fn = fn
	t.ev.canceled = false
	t.ev.index = len(e.queue)
	e.seq++
	e.queue = append(e.queue, &t.ev)
	e.siftUp(len(e.queue) - 1)
}

// Cancel unschedules the pending fire, if any.
func (t *Timer) Cancel() {
	if t.ev.index >= 0 {
		t.eng.removeAt(t.ev.index)
		t.ev.index = -1
		t.ev.fn = nil
	}
}

// The queue is a hand-rolled binary min-heap rather than container/heap:
// the stdlib version pays an interface-dispatch call per compare and swap,
// which profiles as ~30% of a full run. Pop order is a pure function of
// the (when, seq) total order — seq is unique — so the heap's internal
// layout can never change simulation results.

func lessEv(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// siftUp and siftDown move a "hole" through the heap instead of swapping
// pairwise: one pointer write per level instead of three, which matters
// because every write to the []*Event spine pays a GC write barrier.

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !lessEv(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// siftDown restores heap order below i; it reports whether i moved.
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := len(q)
	ev := q[i]
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		l := q[left]
		if right := left + 1; right < n && lessEv(q[right], l) {
			least = right
			l = q[right]
		}
		if !lessEv(l, ev) {
			break
		}
		q[i] = l
		l.index = i
		i = least
	}
	q[i] = ev
	ev.index = i
	return i > start
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// removeAt removes the event at heap index i (Cancel's fast path, so a
// canceled event costs O(log n) now instead of a dead tombstone later).
func (e *Engine) removeAt(i int) {
	n := len(e.queue) - 1
	if i != n {
		moved := e.queue[n]
		e.queue[n] = nil
		e.queue = e.queue[:n]
		e.queue[i] = moved
		moved.index = i
		if !e.siftDown(i) {
			e.siftUp(i)
		}
		return
	}
	e.queue[n] = nil
	e.queue = e.queue[:n]
}
