// Package sim provides the deterministic discrete-event simulation engine
// that underpins the all-flash-array model.
//
// The engine maintains a virtual clock and a priority queue of pending
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break), which makes every simulation fully
// deterministic and therefore reproducible: the same seed always yields the
// same latency distributions.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	}
	return fmt.Sprintf("%dns", int64(d))
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) } //afalint:allow simtime -- the canonical Add: the one sanctioned Time+Time site

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as a floating-point number of seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. The zero value is not usable; events are
// created through Engine.At and Engine.After.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// When reports the instant the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// a simulation is a single-threaded, deterministic computation.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stepped uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have fired so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// Pending reports the number of queued events (including canceled ones that
// have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: that is always a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current instant. A negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or been canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Reschedule moves a pending event to a new absolute instant. If the event
// already fired or was canceled, a fresh event is scheduled with the same
// callback.
func (e *Engine) Reschedule(ev *Event, t Time) *Event {
	e.Cancel(ev)
	return e.At(t, ev.fn)
}

// Step fires the next pending event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.canceled {
			continue
		}
		if ev.when < e.now {
			panic("sim: event queue corrupted (time went backwards)")
		}
		e.now = ev.when
		e.stepped++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled at exactly t do fire.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			next.index = -1
			continue
		}
		if next.when > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the current Run or RunUntil return after the in-flight event
// callback completes.
func (e *Engine) Stop() { e.stopped = true }

// eventHeap orders events by (when, seq) so that simultaneous events fire in
// scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
