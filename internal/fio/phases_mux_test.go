package fio

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// runPhasedMux runs a small mux with the phase decomposition armed over
// bursty (MMPP) and diurnal tenants — arrival processes whose state
// machines transition mid-run — and returns the result.
func runPhasedMux(t *testing.T, seed uint64) *MuxResult {
	t.Helper()
	r := newRig(t, 4, 2, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	m := NewMultiplexer(r.eng, r.k, MuxConfig{
		Runtime: 100 * sim.Millisecond,
		Seed:    seed,
		Phases:  true,
	})
	// MMPP mean calm/burst dwell of 10ms/2ms against a 100ms runtime
	// guarantees several calm↔burst transitions land mid-run.
	addTenants(m, 24, 2, kernel.ClassThroughput, ArrivalSpec{Kind: ArrivalMMPP, Rate: 500})
	addTenants(m, 12, 2, kernel.ClassBackground, ArrivalSpec{Kind: ArrivalDiurnal, Rate: 300})
	return m.Run()
}

// TestMuxPhaseDecomposition: with MuxConfig.Phases set, every class
// that completed I/O carries a per-class blktrace-style decomposition
// whose sample count matches the class's completions and whose media
// phase dominates — arrivals that straddle an MMPP burst transition
// decompose like any other.
func TestMuxPhaseDecomposition(t *testing.T) {
	res := runPhasedMux(t, 11)
	for _, class := range []kernel.QoSClass{kernel.ClassThroughput, kernel.ClassBackground} {
		cr := res.Class[class]
		if cr.Completed == 0 {
			t.Fatalf("%v completed nothing", class)
		}
		if cr.Phases == nil {
			t.Fatalf("%v: Phases nil with MuxConfig.Phases set", class)
		}
		if cr.Phases.N() != cr.Completed {
			t.Errorf("%v: decomposed %d I/Os, completed %d", class, cr.Phases.N(), cr.Completed)
		}
		if media := cr.Phases.Mean(PhaseMedia); media <= 0 {
			t.Errorf("%v: media phase mean %.1f ns", class, media)
		}
		if total := cr.Phases.Total(); total <= 0 || total > 10e6 {
			t.Errorf("%v: implausible phase total %.1f ns", class, total)
		}
	}
	// An unused class stays empty rather than inventing samples.
	if n := res.Class[kernel.ClassLatency].Phases.N(); n != 0 {
		t.Errorf("latency class decomposed %d I/Os with no tenants", n)
	}
}

// TestMuxPhasesDeterministic: the rendered waterfalls are byte-stable
// at a fixed seed — mid-burst transitions and all — and a seed sweep
// (seed, seed+1, ...) changes them, so pooled sweep reports carry
// real per-seed variation.
func TestMuxPhasesDeterministic(t *testing.T) {
	render := func(res *MuxResult) string {
		return res.Class[kernel.ClassThroughput].Phases.Waterfall() +
			res.Class[kernel.ClassBackground].Phases.Waterfall()
	}
	seen := map[string]uint64{}
	for seed := uint64(11); seed < 14; seed++ {
		a := render(runPhasedMux(t, seed))
		b := render(runPhasedMux(t, seed))
		if a != b {
			t.Fatalf("seed %d: waterfall not byte-stable:\n%s\n---\n%s", seed, a, b)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("seeds %d and %d produced identical waterfalls", prev, seed)
		}
		seen[a] = seed
	}
}
