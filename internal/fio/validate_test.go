package fio

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// TestJobSpecValidate: strict validation rejects zero and negative
// queue depth, block size, and runtime with errors that name the field.
func TestJobSpecValidate(t *testing.T) {
	valid := JobSpec{Name: "ok", IODepth: 4, BS: 4096, Runtime: sim.Second}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"zero-iodepth", func(s *JobSpec) { s.IODepth = 0 }, "iodepth"},
		{"negative-iodepth", func(s *JobSpec) { s.IODepth = -2 }, "iodepth"},
		{"zero-bs", func(s *JobSpec) { s.BS = 0 }, "block size"},
		{"negative-bs", func(s *JobSpec) { s.BS = -4096 }, "block size"},
		{"zero-runtime", func(s *JobSpec) { s.Runtime = 0 }, "runtime"},
		{"negative-runtime", func(s *JobSpec) { s.Runtime = -sim.Second }, "runtime"},
		{"negative-ssd", func(s *JobSpec) { s.SSD = -1 }, "ssd"},
		{"negative-think", func(s *JobSpec) { s.ThinkTime = -sim.Microsecond }, "think"},
		{"negative-latlog", func(s *JobSpec) { s.LatLogLimit = -1 }, "lat-log"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := valid
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("spec %+v passed validation", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestNewRejectsNegativeSpec: New still fills documented defaults for
// zero fields but panics with the validation error on explicit
// negatives instead of running a silently misconfigured job.
func TestNewRejectsNegativeSpec(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)

	// Zero fields default, as before.
	j := New(r.eng, r.k, JobSpec{SSD: 0})
	if got := j.spec; got.BS != 4096 || got.IODepth != 1 || got.Runtime != 2*sim.Second {
		t.Fatalf("defaults not applied: %+v", got)
	}

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("New accepted a negative queue depth")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "iodepth") {
			t.Fatalf("panic %v does not carry the validation error", p)
		}
	}()
	New(r.eng, r.k, JobSpec{SSD: 0, IODepth: -1})
}

// TestIOPSZeroElapsed: a result with zero or negative recorded runtime
// reports 0 IOPS, not +Inf/NaN or a negative rate.
func TestIOPSZeroElapsed(t *testing.T) {
	r := Result{IOs: 1000}
	if got := r.IOPS(); got != 0 {
		t.Fatalf("zero-runtime IOPS = %v, want 0", got)
	}
	r.Runtime = -sim.Second
	if got := r.IOPS(); got != 0 {
		t.Fatalf("negative-runtime IOPS = %v, want 0", got)
	}
	r.Runtime = sim.Second
	if got := r.IOPS(); got != 1000 {
		t.Fatalf("IOPS = %v, want 1000", got)
	}
}
