package fio

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Phase indexes one segment of an I/O's life, in path order. The
// decomposition mirrors what blktrace + driver tracepoints give on the
// real system and is what the anatomy example prints.
type Phase int

// The phases of a read.
const (
	// PhaseSubmit: io_submit syscall to the controller having fetched and
	// decoded the SQE (host submit path + fabric downstream).
	PhaseSubmit Phase = iota
	// PhaseHousekeeping: stalled behind a firmware SMART window.
	PhaseHousekeeping
	// PhaseMedia: NAND array time.
	PhaseMedia
	// PhaseReturn: data/CQE upstream through the fabric.
	PhaseReturn
	// PhaseInterrupt: CQE post to the host softirq having run (hardirq +
	// softirq, including any remote-CPU IPI detour).
	PhaseInterrupt
	// PhaseWakeup: softirq to the thread having reaped the completion
	// (scheduler wakeup, context switch, reap burst).
	PhaseWakeup
	numPhases
)

// PhaseLabels name the phases in order.
var PhaseLabels = []string{
	"submit+fetch", "housekeeping", "media", "return", "interrupt", "wakeup+reap",
}

func (p Phase) String() string { return PhaseLabels[p] }

// PhaseReport accumulates per-phase means over a job's I/Os.
type PhaseReport struct {
	w [numPhases]stats.Welford
}

// add decomposes one completion (reaped at reapAt) into phases.
func (r *PhaseReport) add(c kernel.Completion, reapAt sim.Time) {
	res := c.Result
	if res.MediaStartAt == 0 || res.MediaDoneAt == 0 {
		return // non-media command; no meaningful decomposition
	}
	housekeeping := res.MediaStartAt.Sub(res.FetchedAt)
	r.w[PhaseSubmit].Add(float64(res.FetchedAt.Sub(res.SubmittedAt)))
	r.w[PhaseHousekeeping].Add(float64(housekeeping))
	r.w[PhaseMedia].Add(float64(res.MediaDoneAt.Sub(res.MediaStartAt)))
	r.w[PhaseReturn].Add(float64(res.CompletedAt.Sub(res.MediaDoneAt)))
	r.w[PhaseInterrupt].Add(float64(c.DeliveredAt.Sub(res.CompletedAt)))
	r.w[PhaseWakeup].Add(float64(reapAt.Sub(c.DeliveredAt)))
}

// N reports how many I/Os were decomposed.
func (r *PhaseReport) N() int64 { return r.w[PhaseSubmit].N() }

// Mean reports the mean duration of a phase in nanoseconds.
func (r *PhaseReport) Mean(p Phase) float64 { return r.w[p].Mean() }

// Std reports the standard deviation of a phase in nanoseconds.
func (r *PhaseReport) Std(p Phase) float64 { return r.w[p].Std() }

// Total reports the sum of phase means — the mean completion latency.
func (r *PhaseReport) Total() float64 {
	var t float64
	for p := Phase(0); p < numPhases; p++ {
		t += r.w[p].Mean()
	}
	return t
}

// Waterfall renders the decomposition as a text table (µs).
func (r *PhaseReport) Waterfall() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %7s\n", "phase", "mean(µs)", "std(µs)", "share")
	total := r.Total()
	for p := Phase(0); p < numPhases; p++ {
		share := 0.0
		if total > 0 {
			share = r.Mean(p) / total * 100
		}
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %6.1f%%\n",
			p, r.Mean(p)/1e3, r.Std(p)/1e3, share)
	}
	fmt.Fprintf(&b, "%-14s %10.2f\n", "total", total/1e3)
	return b.String()
}
