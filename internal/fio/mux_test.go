package fio

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// addTenants registers n tenants spread across the rig's SSDs with the
// given per-tenant arrival spec and class.
func addTenants(m *Multiplexer, n, nssd int, class kernel.QoSClass, arr ArrivalSpec) {
	for i := 0; i < n; i++ {
		m.AddTenant(TenantSpec{
			SSD:     i % nssd,
			RW:      RandRead,
			Class:   class,
			Arrival: arr,
		})
	}
}

// TestMuxPoissonRate: open-loop Poisson tenants at a modest aggregate
// rate should complete roughly rate×runtime I/Os — the load is offered,
// not negotiated.
func TestMuxPoissonRate(t *testing.T) {
	const nssd = 4
	r := newRig(t, 4, nssd, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	m := NewMultiplexer(r.eng, r.k, MuxConfig{
		Runtime: 200 * sim.Millisecond,
		Seed:    42,
	})
	const tenants, perTenant = 80, 250.0 // 20k IOPS aggregate, well below 4 SSDs
	addTenants(m, tenants, nssd, kernel.ClassThroughput, ArrivalSpec{Kind: ArrivalPoisson, Rate: perTenant})
	res := m.Run()

	want := tenants * perTenant * 0.2 // rate × runtime
	if res.Offered < int64(want*0.85) || res.Offered > int64(want*1.15) {
		t.Fatalf("offered arrivals %d, want ≈%.0f (±15%%)", res.Offered, want)
	}
	if res.Admitted != res.Offered {
		t.Fatalf("no admission control configured, but admitted %d != offered %d", res.Admitted, res.Offered)
	}
	if res.Completed != res.Admitted {
		t.Fatalf("completed %d != admitted %d (lost I/O?)", res.Completed, res.Admitted)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	// Below saturation the per-I/O latency should be in the tens of
	// microseconds, measured from the intended arrival instant.
	if avg := res.Total.Avg / 1e3; avg < 10 || avg > 500 {
		t.Fatalf("implausible avg latency %.1fµs", avg)
	}
	// Class accounting in the kernel should line up with the mux's view.
	ios := r.k.IOStats()
	cls := ios.Class[kernel.ClassThroughput]
	if cls.Submitted != res.Admitted || cls.Completed != res.Completed {
		t.Fatalf("kernel class stats %+v disagree with mux result (admitted %d completed %d)",
			cls, res.Admitted, res.Completed)
	}
}

// TestMuxDeterminism: two identically seeded runs must agree exactly;
// a different seed must actually change the draw sequence.
func TestMuxDeterminism(t *testing.T) {
	run := func(seed uint64) string {
		r := newRig(t, 4, 2, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
		m := NewMultiplexer(r.eng, r.k, MuxConfig{Runtime: 100 * sim.Millisecond, Seed: seed})
		addTenants(m, 30, 2, kernel.ClassLatency, ArrivalSpec{Kind: ArrivalMMPP, Rate: 400})
		addTenants(m, 30, 2, kernel.ClassBackground, ArrivalSpec{Kind: ArrivalDiurnal, Rate: 400})
		res := m.Run()
		return fmt.Sprintf("%d %d %d %v %v", res.Offered, res.Completed, res.Errors,
			res.Class[kernel.ClassLatency].Ladder, res.Class[kernel.ClassBackground].Ladder)
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different runs:\n%s\n%s", a, b)
	}
	if c := run(8); c == a {
		t.Fatalf("different seed produced identical run: %s", c)
	}
}

// TestMuxArrivalShapes: MMPP must burst (max inter-completion gap far
// above the mean) and all three processes must hold their long-run
// mean rate.
func TestMuxArrivalShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		arr  ArrivalSpec
	}{
		{"poisson", ArrivalSpec{Kind: ArrivalPoisson, Rate: 500}},
		{"mmpp", ArrivalSpec{Kind: ArrivalMMPP, Rate: 500}},
		{"diurnal", ArrivalSpec{Kind: ArrivalDiurnal, Rate: 500}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 4, 2, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
			m := NewMultiplexer(r.eng, r.k, MuxConfig{Runtime: 400 * sim.Millisecond, Seed: 11})
			addTenants(m, 40, 2, kernel.ClassThroughput, tc.arr)
			res := m.Run()
			want := 40 * 500 * 0.4
			if res.Offered < int64(want*0.8) || res.Offered > int64(want*1.2) {
				t.Fatalf("%s offered %d, want ≈%.0f", tc.name, res.Offered, want)
			}
		})
	}
}

// TestMuxAdmissionShed: a shed-policy bucket far below the offered rate
// must drop the excess and keep admitted ≈ the bucket rate.
func TestMuxAdmissionShed(t *testing.T) {
	const nssd = 2
	r := newRig(t, 4, nssd, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	cfg := MuxConfig{Runtime: 200 * sim.Millisecond, Seed: 3}
	cfg.Class[kernel.ClassBackground] = ClassConfig{Rate: 5000, Policy: AdmitShed}
	m := NewMultiplexer(r.eng, r.k, cfg)
	addTenants(m, 50, nssd, kernel.ClassBackground, ArrivalSpec{Kind: ArrivalPoisson, Rate: 400}) // 20k offered
	res := m.Run()
	cr := res.Class[kernel.ClassBackground]
	if cr.Shed == 0 {
		t.Fatalf("expected sheds at 4x overcommit, got none: %+v", cr)
	}
	if cr.Admitted+cr.Shed != cr.Offered {
		t.Fatalf("admitted %d + shed %d != offered %d", cr.Admitted, cr.Shed, cr.Offered)
	}
	admittedRate := float64(cr.Admitted) / 0.2
	if admittedRate > 5000*1.1 {
		t.Fatalf("admitted rate %.0f exceeds 5000 bucket", admittedRate)
	}
}

// TestMuxAdmissionQueue: a queue-policy bucket delays, not drops — and
// the queue wait shows up in the ladder because latency runs from the
// intended arrival instant.
func TestMuxAdmissionQueue(t *testing.T) {
	const nssd = 2
	r := newRig(t, 4, nssd, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)

	base := MuxConfig{Runtime: 200 * sim.Millisecond, Seed: 3}
	run := func(cfg MuxConfig) ClassResult {
		rr := newRig(t, 4, nssd, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
		m := NewMultiplexer(rr.eng, rr.k, cfg)
		addTenants(m, 50, nssd, kernel.ClassThroughput, ArrivalSpec{Kind: ArrivalPoisson, Rate: 200}) // 10k offered
		return m.Run().Class[kernel.ClassThroughput]
	}
	_ = r

	open := run(base)
	gated := base
	gated.Class[kernel.ClassThroughput] = ClassConfig{Rate: 9000, Policy: AdmitQueue, QueueLimit: 4096}
	q := run(gated)

	if q.Queued == 0 {
		t.Fatalf("expected queued arrivals at 1.1x overcommit, got none: %+v", q)
	}
	if q.Shed != 0 {
		t.Fatalf("queue policy must not shed below its limit: %+v", q)
	}
	if q.Ladder.P[2] <= open.Ladder.P[2] {
		t.Fatalf("queue wait should inflate p99: gated %.0fns <= open %.0fns", float64(q.Ladder.P[2]), float64(open.Ladder.P[2]))
	}
}

// TestMuxAdmissionThrottle: throttling defers arrivals (backpressure),
// so admitted+throttled accounting stays consistent and nothing is lost.
func TestMuxAdmissionThrottle(t *testing.T) {
	const nssd = 2
	r := newRig(t, 4, nssd, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	cfg := MuxConfig{Runtime: 200 * sim.Millisecond, Seed: 9}
	cfg.Class[kernel.ClassThroughput] = ClassConfig{Rate: 4000, Policy: AdmitThrottle}
	m := NewMultiplexer(r.eng, r.k, cfg)
	addTenants(m, 40, nssd, kernel.ClassThroughput, ArrivalSpec{Kind: ArrivalPoisson, Rate: 250}) // 10k offered
	res := m.Run()
	cr := res.Class[kernel.ClassThroughput]
	if cr.Throttled == 0 {
		t.Fatalf("expected throttling at 2.5x overcommit: %+v", cr)
	}
	if cr.Shed != 0 || cr.QueueShed != 0 {
		t.Fatalf("throttle policy must not drop arrivals: %+v", cr)
	}
	// Backpressure slows the streams to ≈ the bucket rate.
	admittedRate := float64(cr.Admitted) / 0.2
	if admittedRate > 4000*1.15 {
		t.Fatalf("admitted rate %.0f exceeds 4000 bucket under throttle", admittedRate)
	}
	// Offered reflects the slowed streams, not the free-running rate.
	if cr.Offered < cr.Admitted {
		t.Fatalf("offered %d < admitted %d", cr.Offered, cr.Admitted)
	}
}

// TestMuxSourceContract: TenantStream implements Source; a per-tenant
// observer sees its counters at teardown.
func TestMuxSourceContract(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	m := NewMultiplexer(r.eng, r.k, MuxConfig{Runtime: 100 * sim.Millisecond, Seed: 5})
	id := m.AddTenant(TenantSpec{SSD: 0, RW: RandRead, Class: kernel.ClassLatency,
		Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 2000}})
	var got *Result
	var src Source = m.Tenant(id)
	src.Start(func(res *Result) { got = res })
	if src.Name() == "" {
		t.Fatal("empty tenant name")
	}
	m.Run()
	if got == nil {
		t.Fatal("tenant onDone never fired")
	}
	if got.IOs == 0 {
		t.Fatalf("tenant completed no I/O: %+v", got)
	}
	if got.IOPS() <= 0 {
		t.Fatalf("tenant IOPS %v", got.IOPS())
	}
}

// TestMuxSteadyStateAllocs: after warmup, advancing the mux must not
// allocate on the arrival/submit/complete path.
func TestMuxSteadyStateAllocs(t *testing.T) {
	r := newRig(t, 4, 4, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	m := NewMultiplexer(r.eng, r.k, MuxConfig{Runtime: 10 * sim.Second, Seed: 13})
	addTenants(m, 200, 4, kernel.ClassThroughput, ArrivalSpec{Kind: ArrivalMMPP, Rate: 200})
	m.Start(nil)
	// Warm up: freelists fill, wheel slots and histograms reach their
	// steady footprint.
	r.eng.RunUntil(r.eng.Now().Add(300 * sim.Millisecond))
	before := m.Result()
	_ = before
	avg := testing.AllocsPerRun(20, func() {
		r.eng.RunUntil(r.eng.Now().Add(10 * sim.Millisecond))
	})
	// Each 10ms window carries ~400 arrivals; a handful of allocations
	// per window (slice growth tails) is indistinguishable from zero
	// per-arrival cost, but per-arrival allocation would show up as
	// hundreds.
	if avg > 10 {
		t.Fatalf("steady-state allocations: %.1f per 10ms window (want ~0 per arrival)", avg)
	}
}

// TestMuxValidation: bad tenant specs fail fast.
func TestMuxValidation(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	m := NewMultiplexer(r.eng, r.k, MuxConfig{Runtime: 10 * sim.Millisecond})
	for _, tc := range []struct {
		name string
		spec TenantSpec
	}{
		{"zero-rate", TenantSpec{SSD: 0, Arrival: ArrivalSpec{Kind: ArrivalPoisson}}},
		{"negative-rate", TenantSpec{SSD: 0, Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: -5}}},
		{"bad-ssd", TenantSpec{SSD: 9, Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 10}}},
		{"bad-class", TenantSpec{SSD: 0, Class: 7, Arrival: ArrivalSpec{Kind: ArrivalPoisson, Rate: 10}}},
		{"bad-kind", TenantSpec{SSD: 0, Arrival: ArrivalSpec{Kind: 42, Rate: 10}}},
	} {
		name, spec := tc.name, tc.spec
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddTenant(%+v) did not panic", spec)
				}
			}()
			m.AddTenant(spec)
		})
	}
}
