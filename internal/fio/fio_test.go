package fio

import (
	"strings"
	"testing"

	"repro/internal/irq"
	"repro/internal/kernel"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
)

type rig struct {
	eng *sim.Engine
	k   *kernel.Kernel
}

func newRig(t *testing.T, ncpu, nssd int, mode kernel.CompletionMode, fwKind nvme.FirmwareKind) *rig {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Seed: 5,
		Boot: sched.BootOptions{IdlePoll: true}})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	fw := nvme.DefaultFirmware()
	fw.Kind = fwKind
	var ssds []*nvme.Controller
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 5, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 5})
	k := kernel.New(eng, kernel.Config{Sched: sch, IRQ: ic, SSDs: ssds, Mode: mode, Seed: 5})
	return &rig{eng: eng, k: k}
}

// newRigBalanced is newRig with the IRQ balancer active and vectors
// scattered, like a stock boot.
func newRigBalanced(t *testing.T, ncpu, nssd int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Seed: 5,
		Boot: sched.BootOptions{IdlePoll: true}})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	fw := nvme.DefaultFirmware()
	fw.Kind = nvme.FirmwareNoSMART
	var ssds []*nvme.Controller
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 5, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 5, StartBalanced: true})
	k := kernel.New(eng, kernel.Config{Sched: sch, IRQ: ic, SSDs: ssds, Seed: 5})
	return &rig{eng: eng, k: k}
}

func TestRandReadQD1Baseline(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 500 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1,
	}})[0]
	if res.IOs < 10000 {
		t.Fatalf("only %d IOs in 500ms", res.IOs)
	}
	// QD1 4KiB randread over the fabric: ≈30µs device + host path ≈ 33-38µs.
	if res.Ladder.Avg < 28e3 || res.Ladder.Avg > 45e3 {
		t.Fatalf("avg clat = %.1fµs, want ≈33-38µs", res.Ladder.Avg/1e3)
	}
	iops := res.IOPS()
	if iops < 22000 || iops > 36000 {
		t.Fatalf("IOPS = %.0f, want ≈28k (1/36µs)", iops)
	}
	if res.Ladder.Max > 200e3 {
		t.Fatalf("max clat = %dµs on a quiet system", res.Ladder.Max/1000)
	}
}

func TestThreadIsPinned(t *testing.T) {
	r := newRig(t, 4, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	j := New(r.eng, r.k, JobSpec{SSD: 0, RW: RandRead, Runtime: 50 * sim.Millisecond,
		CPUsAllowed: []int{2}, Seed: 1})
	var done *Result
	j.Start(func(res *Result) { done = res })
	r.eng.RunUntil(sim.Time(sim.Second))
	if done == nil {
		t.Fatal("job never finished")
	}
	if j.Task().CPU() != 2 {
		t.Fatalf("thread ran on cpu %d, pinned to 2", j.Task().CPU())
	}
}

func TestSMARTBlockedCounted(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareStandard)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 60 * sim.Second, CPUsAllowed: []int{1}, Seed: 1,
	}})[0]
	if res.SMARTBlocked == 0 {
		t.Fatal("no I/O hit a SMART window in 60s of standard firmware")
	}
	if res.Ladder.Max < 400e3 {
		t.Fatalf("max clat = %.0fµs; SMART spike should push ≈600µs", float64(res.Ladder.Max)/1e3)
	}
}

func TestLatLogRecordsSamples(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
		LatLog: true, Seed: 1,
	}})[0]
	if res.Log == nil || int64(len(res.Log.Samples())) != res.IOs {
		t.Fatalf("latency log has %d samples for %d IOs", len(res.Log.Samples()), res.IOs)
	}
	for i := 1; i < len(res.Log.Samples()); i++ {
		if res.Log.Samples()[i].At < res.Log.Samples()[i-1].At {
			t.Fatal("latency log out of order")
		}
	}
}

func TestLatLogCostsThroughput(t *testing.T) {
	base := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	logged := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	spec := JobSpec{SSD: 0, RW: RandRead, Runtime: 300 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1}
	r1 := RunGroup(base.eng, base.k, []JobSpec{spec})[0]
	spec.LatLog = true
	r2 := RunGroup(logged.eng, logged.k, []JobSpec{spec})[0]
	if r2.Ladder.Avg <= r1.Ladder.Avg {
		t.Fatalf("logging did not cost anything: %.0f vs %.0f ns", r1.Ladder.Avg, r2.Ladder.Avg)
	}
}

func TestSeqReadSaturates(t *testing.T) {
	r := newRig(t, 4, 2, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: SeqRead, BS: 128 << 10, IODepth: 8,
		Runtime: 200 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1,
	}})[0]
	mbps := float64(res.IOs) * float64(128<<10) / res.Runtime.Seconds() / 1e6
	// Table I: 1700 MB/s sequential read per device; the x4 link allows
	// ~3.9 GB/s, so the device NAND bound (~1.6-2 GB/s modeled) governs.
	if mbps < 1000 {
		t.Fatalf("seq read = %.0f MB/s, want >1 GB/s", mbps)
	}
}

func TestRandWriteRateMatchesSpec(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	// Short enough that the FOB fill stays within the tiny device's
	// capacity: the Table I rate limit, not GC backpressure, governs.
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandWrite, Runtime: 80 * sim.Millisecond, CPUsAllowed: []int{1},
		IODepth: 16, Seed: 1,
	}})[0]
	if iops := res.IOPS(); iops > 33000 || iops < 20000 {
		t.Fatalf("randwrite IOPS = %.0f, want ≈30k (Table I)", iops)
	}
}

func TestPollingModeLowerLatency(t *testing.T) {
	ir := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	pr := newRig(t, 2, 1, kernel.CompletePolling, nvme.FirmwareNoSMART)
	spec := JobSpec{SSD: 0, RW: RandRead, Runtime: 200 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1}
	ri := RunGroup(ir.eng, ir.k, []JobSpec{spec})[0]
	rp := RunGroup(pr.eng, pr.k, []JobSpec{spec})[0]
	if rp.Ladder.Avg >= ri.Ladder.Avg {
		t.Fatalf("polling avg %.0fns not better than interrupt %.0fns", rp.Ladder.Avg, ri.Ladder.Avg)
	}
	// ... but the polling CPU is pegged (the Section V throughput caveat).
	busy := pr.k.Sched.CPU(1).BusyTime()
	if busy < 150*sim.Millisecond {
		t.Fatalf("polling thread used only %v CPU in 200ms", busy)
	}
}

func TestQD1NeverOverlaps(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
		LatLog: true, Seed: 1,
	}})[0]
	s := res.Log.Samples()
	for i := 1; i < len(s); i++ {
		// Next completion must be at least a device service time after the
		// previous one — QD1 admits no pipelining.
		if s[i].At-s[i-1].At < 20_000 {
			t.Fatalf("completions %d and %d only %dns apart at QD1", i-1, i, s[i].At-s[i-1].At)
		}
	}
}

func TestThinkTimeThrottles(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 200 * sim.Millisecond, CPUsAllowed: []int{1},
		ThinkTime: 100 * sim.Microsecond, Seed: 1,
	}})[0]
	if iops := res.IOPS(); iops > 9000 {
		t.Fatalf("think time ignored: %.0f IOPS", iops)
	}
}

func TestReportFormat(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 50 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1,
	}})[0]
	rep := res.Report()
	for _, want := range []string{"rw=randread", "iodepth=1", "clat percentiles", "99.9999", "max"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestRunGroupMultipleSSDs(t *testing.T) {
	r := newRig(t, 4, 2, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	specs := []JobSpec{
		{SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1},
		{SSD: 1, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{2}, Seed: 2},
	}
	results := RunGroup(r.eng, r.k, specs)
	if len(results) != 2 {
		t.Fatal("missing results")
	}
	for i, res := range results {
		if res == nil || res.IOs == 0 {
			t.Fatalf("job %d produced nothing", i)
		}
		if res.Spec.SSD != i {
			t.Fatalf("result order scrambled")
		}
	}
}

func TestChrtJobUsesFIFO(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	j := New(r.eng, r.k, JobSpec{SSD: 0, RW: RandRead, Runtime: 10 * sim.Millisecond,
		CPUsAllowed: []int{1}, Class: sched.ClassFIFO, RTPrio: 99, Seed: 1})
	if j.Task().Class() != sched.ClassFIFO {
		t.Fatal("chrt class not applied")
	}
}
