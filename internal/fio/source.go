package fio

// Source is a workload source: anything that, once started, issues I/O
// into the kernel tier and eventually reports a Result. The two
// implementations bracket the two load models:
//
//   - Job is the closed-loop source: a fixed number of outstanding I/Os
//     (queue depth), each submission gated on a completion. Offered
//     load adapts to the array — the coordinated-omission regime.
//   - TenantStream is the open-loop source: arrivals come from an
//     arrival process on the tenant's own rng.Stream regardless of how
//     the array is doing, so queueing delay and overload collapse are
//     visible instead of silently absorbed into a slower submit rate.
//
// Both are driven by the sim engine; Start must be called before the
// engine runs past the source's first event. The *Result handed to
// onDone is owned by the source; callers must not retain it past their
// own aggregation if they reset or reuse the source.
type Source interface {
	// Name identifies the source in reports.
	Name() string
	// Start arms the source. onDone fires at most once, when the
	// source's runtime has elapsed and its last inflight I/O drained;
	// a nil onDone is allowed.
	Start(onDone func(*Result))
}

// Name returns the job's spec name.
func (j *Job) Name() string { return j.spec.Name }

// Compile-time interface checks for the two source implementations.
var (
	_ Source = (*Job)(nil)
	_ Source = (*TenantStream)(nil)
)
