package fio

import (
	"testing"

	"repro/internal/irq"
	"repro/internal/kernel"
	"repro/internal/nand"
	"repro/internal/nvme"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
)

// newTolerantRig is newRig with the kernel's timeout/retry machinery
// armed — the contrast rig for the passthrough fault tests: the same
// injected fault is rescued on the kernel path and surfaces raw on a
// tenant-owned queue pair.
func newTolerantRig(t *testing.T, ncpu, nssd int, pol kernel.TimeoutPolicy) *rig {
	t.Helper()
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.Config{NumCPUs: ncpu, Seed: 5,
		Boot: sched.BootOptions{IdlePoll: true}})
	fab := pcie.NewFabric(eng, pcie.Options{NumSSDs: nssd})
	fw := nvme.DefaultFirmware()
	fw.Kind = nvme.FirmwareNoSMART
	var ssds []*nvme.Controller
	for i := 0; i < nssd; i++ {
		ssds = append(ssds, nvme.New(eng, nvme.Config{
			ID: i, Fabric: fab, FW: fw, Seed: 5, Geom: nand.TinyGeometry()}))
	}
	ic := irq.New(eng, sch, irq.Config{NumSSDs: nssd, NumCPUs: ncpu, Seed: 5})
	k := kernel.New(eng, kernel.Config{Sched: sch, IRQ: ic, SSDs: ssds,
		Timeout: pol, Seed: 5})
	return &rig{eng: eng, k: k}
}

func runOne(r *rig, spec JobSpec) *Result {
	return RunGroup(r.eng, r.k, []JobSpec{spec})[0]
}

// TestPassthroughBypassesKernel: a tenant-owned queue pair never
// touches the kernel tier — no interrupts, no managed commands — and
// its QD1 latency lands under the interrupt path's.
func TestPassthroughBypassesKernel(t *testing.T) {
	irqRes := runOne(newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART), JobSpec{
		SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1}, Seed: 1,
	})
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := runOne(r, JobSpec{
		SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
		Passthrough: true, Seed: 1,
	})
	if res.IOs < 1000 {
		t.Fatalf("only %d IOs in 100ms", res.IOs)
	}
	if res.PollSpins == 0 {
		t.Error("passthrough job never spun on its CQ")
	}
	if res.Ladder.Avg >= irqRes.Ladder.Avg {
		t.Errorf("passthrough avg %.1fµs ≥ interrupt avg %.1fµs",
			res.Ladder.Avg/1e3, irqRes.Ladder.Avg/1e3)
	}
	if st := r.k.IOStats(); st != (kernel.IOStats{}) {
		t.Errorf("kernel tolerance counters moved on a passthrough-only run: %+v", st)
	}
}

// TestPassthroughMediaErrorsSurface: uncorrectable media errors on a
// tenant-owned queue reach the tenant as raw error completions; the
// kernel tier neither sees nor counts them.
func TestPassthroughMediaErrorsSurface(t *testing.T) {
	r := newTolerantRig(t, 2, 1, kernel.DefaultTimeoutPolicy())
	// Poison a band of the logical space so a random-read job hits it.
	for lba := int64(0); lba < 800; lba++ {
		r.k.SSDs[0].MarkBadLBA(lba)
	}
	res := runOne(r, JobSpec{
		SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
		Passthrough: true, Seed: 1,
	})
	if res.Errors == 0 {
		t.Fatal("no media errors surfaced to the tenant")
	}
	if res.Retried != 0 || res.TimedOut != 0 {
		t.Errorf("kernel rescued passthrough I/O: retried=%d timedout=%d",
			res.Retried, res.TimedOut)
	}
	if st := r.k.IOStats(); st.MediaErrors != 0 {
		t.Errorf("kernel counted %d media errors it never saw", st.MediaErrors)
	}
}

// TestPassthroughTransientErrorsSurface: the same transient-error storm
// is retried invisibly by the kernel path (errors=0, retries>0) and
// surfaces raw on the passthrough queue (errors>0, retries=0).
func TestPassthroughTransientErrorsSurface(t *testing.T) {
	pol := kernel.DefaultTimeoutPolicy()
	for _, passthrough := range []bool{false, true} {
		r := newTolerantRig(t, 2, 1, pol)
		r.k.SSDs[0].SetTransientErrorRate(0.05)
		res := runOne(r, JobSpec{
			SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
			Passthrough: passthrough, Seed: 1,
		})
		if passthrough {
			if res.Errors == 0 {
				t.Error("passthrough: transient errors did not surface")
			}
			if res.Retried != 0 {
				t.Errorf("passthrough: kernel retried %d commands", res.Retried)
			}
		} else {
			if res.Errors != 0 {
				t.Errorf("kernel path: %d transient errors leaked past retry", res.Errors)
			}
			if res.Retried == 0 {
				t.Error("kernel path: nothing retried under a 5% transient rate")
			}
		}
	}
}

// TestPassthroughFirmwareStallSurfaces: a firmware stall mid-run shows
// up on the kernel path as timeout/retry rescues, and on the
// passthrough queue as nothing but raw tail latency — the tenant waits
// out the stall with no timeout machinery underneath.
func TestPassthroughFirmwareStallSurfaces(t *testing.T) {
	pol := kernel.TimeoutPolicy{
		Timeout: 200 * sim.Microsecond, MaxRetries: 8,
		Backoff: 100 * sim.Microsecond, BackoffMax: sim.Millisecond,
		AbortCost: 10 * sim.Microsecond,
	}
	const stall = 2 * sim.Millisecond
	for _, passthrough := range []bool{false, true} {
		r := newTolerantRig(t, 2, 1, pol)
		r.eng.After(20*sim.Millisecond, func() {
			r.k.SSDs[0].StallSubmissionQueues(stall)
		})
		res := runOne(r, JobSpec{
			SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
			Passthrough: passthrough, Seed: 1,
		})
		st := r.k.IOStats()
		if passthrough {
			if res.Retried != 0 || res.TimedOut != 0 || st.Timeouts != 0 {
				t.Errorf("passthrough: kernel machinery fired (retried=%d timedout=%d timeouts=%d)",
					res.Retried, res.TimedOut, st.Timeouts)
			}
			if max := sim.Duration(res.Ladder.Max); max < stall {
				t.Errorf("passthrough: max latency %v < %v stall — stall did not surface", max, stall)
			}
		} else {
			if st.Timeouts == 0 || res.Retried == 0 {
				t.Errorf("kernel path: stall triggered no rescue (timeouts=%d retried=%d)",
					st.Timeouts, res.Retried)
			}
			if res.Errors != 0 {
				t.Errorf("kernel path: %d errors after a recoverable stall", res.Errors)
			}
		}
	}
}
