package fio

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sim"
)

func TestPhaseDecompositionSumsToLatency(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 200 * sim.Millisecond, CPUsAllowed: []int{1},
		Phases: true, Seed: 1,
	}})[0]
	if res.Phases == nil || res.Phases.N() == 0 {
		t.Fatal("no phase data collected")
	}
	// The phase means must sum to the mean completion latency (within
	// accumulation error).
	total := res.Phases.Total()
	diff := total - res.Ladder.Avg
	if diff < 0 {
		diff = -diff
	}
	if diff/res.Ladder.Avg > 0.01 {
		t.Fatalf("phase sum %.0fns vs mean clat %.0fns", total, res.Ladder.Avg)
	}
	// Media dominates a quiet QD1 read (NAND ≈ 20µs of ≈ 36µs).
	if res.Phases.Mean(PhaseMedia) < 0.4*total {
		t.Fatalf("media phase = %.0fns of %.0fns; expected dominant", res.Phases.Mean(PhaseMedia), total)
	}
	// No housekeeping with SMART disabled.
	if res.Phases.Mean(PhaseHousekeeping) != 0 {
		t.Fatalf("housekeeping = %.0fns with FirmwareNoSMART", res.Phases.Mean(PhaseHousekeeping))
	}
}

func TestPhaseHousekeepingVisibleWithSMART(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareStandard)
	// Compress the SMART period so a short run sees windows.
	fw := nvme.DefaultFirmware()
	fw.SMARTPeriod = 100 * sim.Millisecond
	r.k.SSDs[0].SetFirmware(fw)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 500 * sim.Millisecond, CPUsAllowed: []int{1},
		Phases: true, Seed: 1,
	}})[0]
	if res.Phases.Mean(PhaseHousekeeping) <= 0 {
		t.Fatal("housekeeping phase empty despite SMART windows")
	}
}

func TestPhaseWakeupReflectsRemoteDeliveries(t *testing.T) {
	spec := JobSpec{SSD: 0, RW: RandRead, Runtime: 200 * sim.Millisecond,
		CPUsAllowed: []int{1}, Phases: true, Seed: 1}

	local := newRig(t, 4, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	rl := RunGroup(local.eng, local.k, []JobSpec{spec})[0]

	remote := newRigBalanced(t, 4, 1)
	rr := RunGroup(remote.eng, remote.k, []JobSpec{spec})[0]
	if rr.RemoteIRQs == 0 {
		t.Skip("balancer happened to leave the active vector local")
	}
	// Remote deliveries pay IPI + cold-cache in the interrupt/wakeup
	// phases; the decomposition must show it.
	gotExtra := (rr.Phases.Mean(PhaseInterrupt) + rr.Phases.Mean(PhaseWakeup)) -
		(rl.Phases.Mean(PhaseInterrupt) + rl.Phases.Mean(PhaseWakeup))
	if gotExtra < 3000 { // ≥3µs of the ≈9µs penalty must land in these phases
		t.Fatalf("remote delivery extra = %.0fns in interrupt+wakeup phases", gotExtra)
	}
}

func TestWaterfallRendering(t *testing.T) {
	r := newRig(t, 2, 1, kernel.CompleteInterrupt, nvme.FirmwareNoSMART)
	res := RunGroup(r.eng, r.k, []JobSpec{{
		SSD: 0, RW: RandRead, Runtime: 100 * sim.Millisecond, CPUsAllowed: []int{1},
		Phases: true, Seed: 1,
	}})[0]
	w := res.Phases.Waterfall()
	for _, want := range append(PhaseLabels, "total", "share") {
		if !strings.Contains(w, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, w)
		}
	}
}

func TestPhasesSkipNonMediaCommands(t *testing.T) {
	var rep PhaseReport
	rep.add(kernel.Completion{}, 0) // zero-valued: no media timestamps
	if rep.N() != 0 {
		t.Fatal("non-media command decomposed")
	}
}
