package fio

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// ArrivalKind selects the arrival process of an open-loop tenant stream.
type ArrivalKind int

// The three processes cover the load shapes the load ablation needs:
// memoryless steady state, bursty on/off, and slow rate modulation.
const (
	// ArrivalPoisson draws i.i.d. exponential inter-arrival gaps at
	// Rate/s — the memoryless baseline.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalMMPP is a two-state Markov-modulated Poisson process: the
	// stream alternates between a calm state and a burst state (rate
	// multiplied by Burst), with exponentially distributed dwell times.
	// The calm-state rate is scaled down so the long-run mean stays
	// Rate.
	ArrivalMMPP
	// ArrivalDiurnal modulates a Poisson process sinusoidally:
	// rate(t) = Rate·(1 + Swing·sin(2πt/Period)) — a compressed
	// day/night load curve.
	ArrivalDiurnal
)

// ArrivalSpec parameterizes an arrival process. Rate is the long-run
// mean arrival rate in I/Os per second for every kind; the remaining
// fields apply only to the kinds that name them.
type ArrivalSpec struct {
	Kind ArrivalKind
	// Rate is the long-run mean arrival rate (I/Os per second).
	Rate float64

	// Burst (MMPP) multiplies the rate while bursting. Default 8.
	Burst float64
	// MeanCalm / MeanBurst (MMPP) are the mean dwell times in each
	// state. Defaults 10 ms / 2 ms.
	MeanCalm  sim.Duration
	MeanBurst sim.Duration

	// Period (diurnal) is the modulation period; default 100 ms.
	// Swing (diurnal) is the modulation depth in [0, 1); default 0.8.
	Period sim.Duration
	Swing  float64

	// calmRate is the precomputed MMPP calm-state rate that keeps the
	// long-run mean at Rate. Filled by normalize.
	calmRate float64
}

// normalize fills defaults and precomputes derived rates. It returns an
// error for specs that cannot generate a valid process.
func (a ArrivalSpec) normalize() (ArrivalSpec, error) {
	if a.Rate <= 0 {
		return a, fmt.Errorf("arrival rate must be positive, got %g", a.Rate)
	}
	switch a.Kind {
	case ArrivalPoisson:
	case ArrivalMMPP:
		if a.Burst == 0 { //afalint:allow floatcompare -- zero-value "unset" sentinel, not a computed float
			a.Burst = 8
		}
		if a.MeanCalm == 0 {
			a.MeanCalm = 10 * sim.Millisecond
		}
		if a.MeanBurst == 0 {
			a.MeanBurst = 2 * sim.Millisecond
		}
		if a.Burst < 1 || a.MeanCalm <= 0 || a.MeanBurst <= 0 {
			return a, fmt.Errorf("invalid MMPP params: burst=%g calm=%s burst-dwell=%s", a.Burst, a.MeanCalm, a.MeanBurst)
		}
		// Long-run mean = calmRate·(calm + Burst·burst)/(calm+burst);
		// solve for calmRate so the mean equals Rate.
		calm, burst := a.MeanCalm.Seconds(), a.MeanBurst.Seconds()
		a.calmRate = a.Rate * (calm + burst) / (calm + a.Burst*burst)
	case ArrivalDiurnal:
		if a.Period == 0 {
			a.Period = 100 * sim.Millisecond
		}
		if a.Swing == 0 { //afalint:allow floatcompare -- zero-value "unset" sentinel, not a computed float
			a.Swing = 0.8
		}
		if a.Period <= 0 || a.Swing < 0 || a.Swing >= 1 {
			return a, fmt.Errorf("invalid diurnal params: period=%s swing=%g", a.Period, a.Swing)
		}
	default:
		return a, fmt.Errorf("unknown arrival kind %d", a.Kind)
	}
	return a, nil
}

// arrivalState is the per-tenant mutable state of an arrival process.
// Only MMPP uses it (the current modulation state and its expiry).
type arrivalState struct {
	bursting   bool
	stateUntil sim.Time
}

// nextGap draws the next inter-arrival gap at virtual time now, drawing
// only from rnd (the tenant's own stream, per the rngstream contract).
// Hot: called once per arrival for every tenant; no allocation, no
// dispatch.
func (a *ArrivalSpec) nextGap(now sim.Time, st *arrivalState, rnd *rng.Stream) sim.Duration {
	rate := a.Rate
	switch a.Kind {
	case ArrivalPoisson:
	case ArrivalMMPP:
		if now >= st.stateUntil {
			st.bursting = !st.bursting
			dwell := a.MeanCalm
			if st.bursting {
				dwell = a.MeanBurst
			}
			st.stateUntil = now.Add(sim.Duration(rnd.Exp(float64(dwell))))
		}
		rate = a.calmRate
		if st.bursting {
			rate = a.calmRate * a.Burst
		}
	case ArrivalDiurnal:
		phase := 2 * pi * float64(int64(now)%int64(a.Period)) / float64(a.Period)
		rate = a.Rate * (1 + a.Swing*sinApprox(phase))
	default:
		panic("fio: unnormalized ArrivalSpec")
	}
	gap := sim.Duration(rnd.Exp(1e9 / rate))
	if gap < 1 {
		gap = 1
	}
	return gap
}

const pi = 3.141592653589793

// sinApprox is a Bhaskara-style sine approximation for phase in
// [0, 2π), accurate to ~0.002 — far below the stochastic noise of the
// arrival draw it modulates, and free of any libm dependency on the
// per-arrival path.
func sinApprox(x float64) float64 {
	sign := 1.0
	if x >= pi {
		x -= pi
		sign = -1
	}
	return sign * 16 * x * (pi - x) / (5*pi*pi - 4*x*(pi-x))
}
