// Package fio is the workload generator of the methodology section: jobs
// modeled on the FIO tool, with the features the paper relies on — raw
// block device access, thread pinning (cpus_allowed), queue-depth control,
// completion-latency percentile collection identical to fio's output
// (2-nines through 6-nines plus the maximum), and per-I/O latency logging
// (write_lat_log), including the measurement perturbation the paper's
// footnote 1 reports when logging is enabled on too many devices at once.
package fio

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RW is the workload pattern.
type RW string

// Supported patterns.
const (
	RandRead  RW = "randread"
	RandWrite RW = "randwrite"
	SeqRead   RW = "read"
)

// JobSpec describes one FIO job: a single workload thread bound to one raw
// NVMe block device.
type JobSpec struct {
	Name string
	SSD  int // target device (/dev/nvmeN)
	RW   RW
	// BS is the block size in bytes (the paper uses 4 KiB).
	BS int
	// IODepth is the queue depth per thread (the paper uses 1).
	IODepth int
	// Runtime is how long the job issues I/O.
	Runtime sim.Duration
	// CPUsAllowed pins the thread (fio's cpus_allowed).
	CPUsAllowed []int
	// Class/RTPrio set the scheduling class (chrt). Default CFS nice 0.
	Class  sched.Class
	RTPrio int
	// LatLog enables per-I/O latency logging (write_lat_log) with the
	// associated per-sample overhead.
	LatLog bool
	// LatLogLimit caps retained samples (0 = unlimited).
	LatLogLimit int
	// ThinkTime inserts a delay between I/Os (0 = closed loop).
	ThinkTime sim.Duration
	// Phases enables per-I/O latency decomposition (blktrace-style; see
	// PhaseReport).
	Phases bool
	// Passthrough gives the job a tenant-owned NVMe SQ/CQ pair and
	// bypasses the kernel tier entirely (SPDK-style): submits are
	// userspace doorbell writes, completions are reaped by spinning on
	// the job's own CQ. No kernel software latency — and no kernel
	// timeout/retry protection: error statuses and firmware stalls
	// surface raw in the job's results.
	Passthrough bool
	Seed        uint64
}

// Validate rejects specs that cannot describe a runnable job. It is
// strict about zero values — callers that want the documented defaults
// (BS 4096, IODepth 1, Runtime 2s) go through New, which fills them
// before validating; a spec that still carries a zero or negative queue
// depth, block size, or runtime at validation time is a bug in the
// caller, not a request for a default.
func (s JobSpec) Validate() error {
	if s.IODepth <= 0 {
		return fmt.Errorf("fio: job %q: iodepth must be positive, got %d", s.Name, s.IODepth)
	}
	if s.BS <= 0 {
		return fmt.Errorf("fio: job %q: block size must be positive, got %d", s.Name, s.BS)
	}
	if s.Runtime <= 0 {
		return fmt.Errorf("fio: job %q: runtime must be positive, got %v", s.Name, s.Runtime)
	}
	if s.SSD < 0 {
		return fmt.Errorf("fio: job %q: ssd index must be non-negative, got %d", s.Name, s.SSD)
	}
	if s.ThinkTime < 0 {
		return fmt.Errorf("fio: job %q: think time must be non-negative, got %v", s.Name, s.ThinkTime)
	}
	if s.LatLogLimit < 0 {
		return fmt.Errorf("fio: job %q: lat-log limit must be non-negative, got %d", s.Name, s.LatLogLimit)
	}
	return nil
}

// withDefaults fills zero fields.
func (s JobSpec) withDefaults() JobSpec {
	if s.BS == 0 {
		s.BS = 4096
	}
	if s.IODepth == 0 {
		s.IODepth = 1
	}
	if s.Runtime == 0 {
		s.Runtime = 2 * sim.Second
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("job-nvme%d", s.SSD)
	}
	return s
}

// Result is one job's output.
type Result struct {
	Spec   JobSpec
	Hist   *stats.Histogram
	Ladder stats.Ladder
	Log    *stats.LatLog
	IOs    int64
	// SMARTBlocked counts I/Os that waited on a firmware housekeeping
	// window.
	SMARTBlocked int64
	// RemoteIRQs counts completions delivered on a CPU other than the
	// submitting one.
	RemoteIRQs int64
	// Phases holds the per-phase latency decomposition when
	// JobSpec.Phases is set.
	Phases *PhaseReport
	// Errors counts I/Os that completed with a non-success status (after
	// any kernel-level retries); their latency is not in Hist.
	Errors int64
	// Retried counts I/Os the kernel re-issued at least once before the
	// delivered outcome; TimedOut counts those whose final outcome was a
	// host-side timeout.
	Retried  int64
	TimedOut int64
	// PollSpins counts CQ poll iterations (polling and passthrough modes):
	// together with Costs.PollCheck it is the host-CPU burn the latency
	// win was bought with.
	PollSpins int64
	Runtime   sim.Duration
}

// IOPS reports the job's achieved I/O rate. A job that recorded no
// elapsed time (or a clock anomaly producing a negative one) reports 0
// rather than an infinite or negative rate.
func (r *Result) IOPS() float64 {
	if r.Runtime <= 0 {
		return 0
	}
	return float64(r.IOs) / r.Runtime.Seconds()
}

// Report renders a compact fio-style completion latency report.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: (groupid=0): rw=%s, bs=%d, iodepth=%d\n",
		r.Spec.Name, r.Spec.RW, r.Spec.BS, r.Spec.IODepth)
	fmt.Fprintf(&b, "  read: IOPS=%.0f, ios=%d\n", r.IOPS(), r.IOs)
	fmt.Fprintf(&b, "  clat (usec): avg=%.2f\n", r.Ladder.Avg/1e3)
	fmt.Fprintf(&b, "  clat percentiles (usec):\n")
	for i, q := range stats.LadderNines {
		fmt.Fprintf(&b, "   | %8.4f%%  %10.1f\n", q*100, float64(r.Ladder.P[i])/1e3)
	}
	fmt.Fprintf(&b, "   | %8s%%  %10.1f (max)\n", "100.0000", float64(r.Ladder.Max)/1e3)
	return b.String()
}

// Job is a running FIO thread.
type Job struct {
	spec JobSpec
	k    *kernel.Kernel
	eng  *sim.Engine
	task *sched.Task
	rnd  *rng.Stream

	res       Result
	start     sim.Time
	deadline  sim.Time
	inflight  int
	nextSeq   int64
	logicalSz int64
	done      bool
	onDone    func(*Result)

	// qp is the tenant-owned queue pair (passthrough jobs only); spin
	// caches whether the job reaps by spinning (passthrough, or kernel
	// polling mode) rather than sleeping on interrupt wakes.
	qp   *nvme.QueuePair
	spin bool

	// per-I/O bookkeeping for the completion burst
	pending []kernel.Completion

	// Bound-method values allocate a closure each time they're evaluated,
	// and the submit/complete/reap cycle evaluates one per I/O; bind them
	// once instead.
	onCompleteFn func(kernel.Completion)
	onQPResultFn func(nvme.Result)
	reapFn       func()
	submitFn     func()
	pollSpinFn   func()
	thinkFn      func()
}

// New creates a job (thread is created sleeping; Start launches it).
// Zero spec fields take the documented defaults; a spec that is invalid
// after defaulting (negative queue depth, block size, runtime, ...)
// panics with the Validate error rather than running a silently
// misconfigured workload.
func New(eng *sim.Engine, k *kernel.Kernel, spec JobSpec) *Job {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		panic("fio: invalid JobSpec: " + err.Error())
	}
	j := &Job{
		spec: spec,
		k:    k,
		eng:  eng,
		rnd:  rng.NewLabeled(spec.Seed, "fio-"+spec.Name),
	}
	j.res.Spec = spec
	j.res.Hist = stats.NewHistogram()
	if spec.LatLog {
		j.res.Log = stats.NewLatLog(spec.LatLogLimit)
	}
	if spec.Phases {
		j.res.Phases = &PhaseReport{}
	}
	j.logicalSz = k.SSDs[spec.SSD].Flash.LogicalSlices()
	prio := spec.RTPrio
	if spec.Class == sched.ClassCFS {
		prio = 0
	}
	j.task = k.Sched.NewTask("fio/"+spec.Name, spec.Class, prio, spec.CPUsAllowed)
	j.pending = make([]kernel.Completion, 0, spec.IODepth)
	if spec.Passthrough {
		j.qp = k.SSDs[spec.SSD].CreateQueuePair()
	}
	j.spin = spec.Passthrough || k.Mode() == kernel.CompletePolling
	j.onCompleteFn = j.onComplete
	j.onQPResultFn = j.onQPResult
	j.reapFn = j.reap
	j.submitFn = j.submitWindow
	j.pollSpinFn = j.pollSpin
	j.thinkFn = func() {
		j.task.Exec(j.submitCost(1), j.submitFn)
		j.k.Sched.Wake(j.task)
	}
	return j
}

// Task exposes the underlying thread (for tracing).
func (j *Job) Task() *sched.Task { return j.task }

// Start begins issuing I/O; onDone fires once the runtime elapses and the
// last inflight I/O drains. Thread startup is staggered by a small random
// ramp, as real fio thread creation is — synchronized starts would
// phase-lock the QD1 streams.
func (j *Job) Start(onDone func(*Result)) {
	j.onDone = onDone
	ramp := sim.Duration(j.rnd.Int63n(int64(200 * sim.Microsecond)))
	j.eng.Schedule(ramp, func() {
		j.start = j.eng.Now()
		j.deadline = j.start.Add(j.spec.Runtime)
		// First burst: submit the initial window.
		j.task.Exec(j.submitCost(j.spec.IODepth), j.submitFn)
		j.k.Sched.Wake(j.task)
	})
}

func (j *Job) submitCost(n int) sim.Duration {
	if j.spec.Passthrough {
		// Userspace doorbell write: no syscall, no blk-mq.
		return sim.Duration(n) * j.k.Costs().UserSubmit
	}
	return sim.Duration(n) * j.k.Costs().Submit
}

// nextLBA picks the next target block.
func (j *Job) nextLBA() int64 {
	slices := int64(j.spec.BS / 4096)
	if slices < 1 {
		slices = 1
	}
	max := j.logicalSz / slices
	if j.spec.RW == SeqRead {
		lba := (j.nextSeq % max) * slices
		j.nextSeq++
		return lba
	}
	return j.rnd.Int63n(max) * slices
}

func (j *Job) opcode() nvme.Opcode {
	if j.spec.RW == RandWrite {
		return nvme.OpWrite
	}
	return nvme.OpRead
}

// submitWindow issues I/Os until the depth is full (called in thread
// context right after a submit burst completed).
func (j *Job) submitWindow() {
	now := j.eng.Now()
	if now >= j.deadline {
		if j.spin && j.inflight > 0 {
			// A spinning job has no interrupt wake coming: keep polling
			// until the in-flight tail drains.
			j.task.Exec(j.k.Costs().PollCheck, j.pollSpinFn)
			return
		}
		j.finishIfDrained()
		return
	}
	for j.inflight < j.spec.IODepth {
		j.inflight++
		cmd := nvme.Command{Op: j.opcode(), LBA: j.nextLBA(), Bytes: j.spec.BS}
		if j.qp != nil {
			// Passthrough: ring the tenant-owned doorbell; the kernel
			// never sees this command.
			j.qp.Submit(cmd, j.onQPResultFn)
		} else {
			j.k.SubmitIO(j.task.CPU(), j.spec.SSD, cmd, j.onCompleteFn)
		}
	}
	if j.spin {
		// Spin on the CQ instead of sleeping: the latency win and the CPU
		// burn of polling both fall out of this loop.
		j.task.Exec(j.k.Costs().PollCheck, j.pollSpinFn)
		return
	}
	// Completions may have raced in while this thread was submitting
	// (QD > 1); reap them now rather than sleeping.
	if len(j.pending) > 0 {
		j.task.Exec(j.reapCost(len(j.pending)), j.reapFn)
	}
	// Otherwise no further Exec: the thread sleeps until a wake.
}

// reapCost is the thread-side cost of reaping n completions and submitting
// their replacements.
func (j *Job) reapCost(n int) sim.Duration {
	cost := sim.Duration(n) * (j.k.Costs().Complete + j.k.Costs().Submit)
	if j.spec.LatLog {
		cost += sim.Duration(n) * j.k.Costs().LatLogRecord
	}
	return cost
}

// pollSpin is one CQ poll iteration (kernel polling mode, or a
// passthrough job spinning on its own CQ).
func (j *Job) pollSpin() {
	j.res.PollSpins++
	if len(j.pending) > 0 {
		per := j.k.Costs().Complete
		if j.spec.Passthrough {
			per = j.k.Costs().UserComplete
		}
		j.task.Exec(sim.Duration(len(j.pending))*per, j.reapFn)
		return
	}
	j.task.Exec(j.k.Costs().PollCheck, j.pollSpinFn)
}

// onQPResult is a passthrough CQE landing in the tenant-owned CQ: no
// interrupt, no kernel — the spinning thread finds it on its next poll
// iteration. The raw device status passes straight through.
func (j *Job) onQPResult(res nvme.Result) {
	j.pending = append(j.pending, kernel.Completion{
		Result:      res,
		DeliveredAt: j.eng.Now(),
		Status:      res.Status,
	})
}

// onComplete runs in softirq context on the delivery CPU (or inline in
// polling mode, where the spinning thread reaps it).
func (j *Job) onComplete(c kernel.Completion) {
	j.pending = append(j.pending, c)
	if j.k.Mode() == kernel.CompletePolling {
		return
	}
	if c.WakePenalty > 0 {
		j.task.AddPenalty(c.WakePenalty)
	}
	// Only a sleeping thread needs a wake; a running or queued one will
	// reap this completion at its next burst boundary.
	if j.task.State() == sched.StateSleeping {
		j.task.Exec(j.reapCost(1), j.reapFn)
		j.k.Sched.Wake(j.task)
	}
}

// reap runs in thread context after the completion burst: record latency
// and refill the window.
func (j *Job) reap() {
	now := j.eng.Now()
	for _, c := range j.pending {
		j.res.IOs++
		j.inflight--
		if c.Retries > 0 {
			j.res.Retried++
		}
		if c.TimedOut {
			j.res.TimedOut++
		}
		if c.Status != nvme.StatusSuccess {
			// A failed I/O's "latency" is the tolerance machinery's give-up
			// time, not a device service time; keep it out of the ladder.
			j.res.Errors++
			continue
		}
		lat := int64(now.Sub(c.Result.SubmittedAt))
		j.res.Hist.Record(lat)
		if c.Result.BlockedBySMART {
			j.res.SMARTBlocked++
		}
		if c.Delivery.Remote {
			j.res.RemoteIRQs++
		}
		if j.res.Log != nil {
			j.res.Log.Add(int64(now), lat)
		}
		if j.res.Phases != nil {
			j.res.Phases.add(c, now)
		}
	}
	j.pending = j.pending[:0]
	if now >= j.deadline {
		if j.spin && j.inflight > 0 {
			// Keep spinning for the in-flight tail; no wake is coming.
			j.task.Exec(j.k.Costs().PollCheck, j.pollSpinFn)
			return
		}
		j.finishIfDrained()
		return
	}
	if j.spec.ThinkTime > 0 {
		j.eng.Schedule(j.spec.ThinkTime, j.thinkFn)
		return
	}
	j.submitWindow()
}

func (j *Job) finishIfDrained() {
	if j.done || j.inflight > 0 {
		return
	}
	j.done = true
	j.res.Runtime = j.eng.Now().Sub(j.start)
	j.res.Ladder = stats.LadderOf(j.res.Hist)
	if j.onDone != nil {
		j.onDone(&j.res)
	}
}

// RunGroup runs a set of jobs to completion and returns their results in
// spec order. It drives the engine itself.
func RunGroup(eng *sim.Engine, k *kernel.Kernel, specs []JobSpec) []*Result {
	results := make([]*Result, len(specs))
	remaining := len(specs)
	var maxDeadline sim.Time
	for i, spec := range specs {
		i := i
		j := New(eng, k, spec)
		if d := eng.Now().Add(j.spec.Runtime); d > maxDeadline {
			maxDeadline = d
		}
		j.Start(func(r *Result) {
			results[i] = r
			remaining--
		})
	}
	// Run until every job drained (a grace period covers the tail I/O).
	grace := sim.Duration(0)
	for remaining > 0 {
		grace += 100 * sim.Millisecond
		eng.RunUntil(maxDeadline.Add(grace))
		if grace > 100*sim.Second {
			panic("fio: jobs failed to drain")
		}
	}
	return results
}
