package irq

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

func numaRig(t *testing.T) (*sim.Engine, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 4, Seed: 1})
	c := New(eng, s, Config{
		NumSSDs: 2, NumCPUs: 4, Seed: 1,
		SocketOf: []int{0, 0, 1, 1},
	})
	return eng, c
}

func TestCrossSocketDeliveryDetected(t *testing.T) {
	eng, c := numaRig(t)
	c.eff[0][1] = 3 // queue on socket 0, handler on socket 1
	var got Delivery
	c.Deliver(0, 1, func(d Delivery) { got = d })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if !got.Remote || !got.CrossSocket {
		t.Fatalf("delivery = %+v, want remote cross-socket", got)
	}
	if c.CrossSocketDeliveries() != 1 {
		t.Fatalf("cross-socket count = %d", c.CrossSocketDeliveries())
	}
}

func TestSameSocketRemoteIsNotCrossSocket(t *testing.T) {
	eng, c := numaRig(t)
	c.eff[0][1] = 0 // remote but same socket
	var got Delivery
	c.Deliver(0, 1, func(d Delivery) { got = d })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if !got.Remote || got.CrossSocket {
		t.Fatalf("delivery = %+v, want remote same-socket", got)
	}
}

func TestCrossSocketWakePenaltyHigher(t *testing.T) {
	_, c := numaRig(t)
	same := c.WakePenalty(Delivery{Remote: true})
	cross := c.WakePenalty(Delivery{Remote: true, CrossSocket: true})
	if cross <= same {
		t.Fatalf("cross-socket penalty %v not > same-socket %v", cross, same)
	}
	if c.WakePenalty(Delivery{}) != 0 {
		t.Fatal("local delivery penalized")
	}
}

func TestCrossSocketCostsStealMoreTime(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 4, Seed: 1})
	c := New(eng, s, Config{NumSSDs: 1, NumCPUs: 4, Seed: 1, SocketOf: []int{0, 0, 1, 1}})
	c.eff[0][0] = 2 // cross-socket
	c.Deliver(0, 0, func(Delivery) {})
	eng.RunUntil(sim.Time(sim.Millisecond))
	cross := s.CPU(2).StolenTime()

	eng2 := sim.NewEngine()
	s2 := sched.New(eng2, sched.Config{NumCPUs: 4, Seed: 1})
	c2 := New(eng2, s2, Config{NumSSDs: 1, NumCPUs: 4, Seed: 1, SocketOf: []int{0, 0, 1, 1}})
	c2.eff[0][0] = 1 // remote, same socket
	c2.Deliver(0, 0, func(Delivery) {})
	eng2.RunUntil(sim.Time(sim.Millisecond))
	same := s2.CPU(1).StolenTime()

	if cross <= same {
		t.Fatalf("cross-socket handler time %v not > same-socket %v", cross, same)
	}
}

func TestNoSocketMapMeansNoCrossSocket(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 4, Seed: 1})
	c := New(eng, s, Config{NumSSDs: 1, NumCPUs: 4, Seed: 1})
	c.eff[0][0] = 3
	var got Delivery
	c.Deliver(0, 0, func(d Delivery) { got = d })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if got.CrossSocket {
		t.Fatal("cross-socket without a socket map")
	}
}

func TestAffinePolicyKeepsVectorsHome(t *testing.T) {
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: 4, Seed: 1})
	c := New(eng, s, Config{
		NumSSDs: 4, NumCPUs: 4, Seed: 1,
		StartBalanced: true, Policy: BalanceAffine,
	})
	// Even with the balancer running, every vector must sit on its queue
	// CPU after the first pass (and the initial spread already honours
	// affinity).
	eng.RunUntil(sim.Time(25 * sim.Second))
	for ssd := 0; ssd < 4; ssd++ {
		for q := 0; q < 4; q++ {
			if c.EffectiveCPU(ssd, q) != q {
				t.Fatalf("affine balancer left irq(%d,%d) on cpu(%d)", ssd, q, c.EffectiveCPU(ssd, q))
			}
		}
	}
	if c.policy.String() != "affinity-aware" {
		t.Fatalf("policy String() = %q", c.policy.String())
	}
	if BalanceNaive.String() != "naive" {
		t.Fatal("naive String() wrong")
	}
}
