package irq

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

func newIRQ(t *testing.T, ssds, cpus int, startBalanced bool) (*sim.Engine, *sched.Scheduler, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	s := sched.New(eng, sched.Config{NumCPUs: cpus, Seed: 1})
	c := New(eng, s, Config{NumSSDs: ssds, NumCPUs: cpus, Seed: 1, StartBalanced: startBalanced})
	return eng, s, c
}

func TestVectorCountMatchesPaper(t *testing.T) {
	_, _, c := newIRQ(t, 64, 40, false)
	if c.NumVectors() != 2560 {
		t.Fatalf("vectors = %d, want 2560 (64 SSDs × 40 CPUs)", c.NumVectors())
	}
}

func TestUnbalancedStartIsAffine(t *testing.T) {
	_, _, c := newIRQ(t, 4, 8, false)
	for s := 0; s < 4; s++ {
		for q := 0; q < 8; q++ {
			if c.EffectiveCPU(s, q) != q {
				t.Fatalf("irq(%d,%d) effective on cpu %d before balancing", s, q, c.EffectiveCPU(s, q))
			}
		}
	}
}

func TestBalancedStartScattersVectors(t *testing.T) {
	_, _, c := newIRQ(t, 64, 40, true)
	remote := 0
	for s := 0; s < 64; s++ {
		for q := 0; q < 40; q++ {
			if c.EffectiveCPU(s, q) != q {
				remote++
			}
		}
	}
	// A scattered layout leaves ~97.5% of vectors off their queue CPU.
	if remote < 2000 {
		t.Fatalf("only %d/2560 vectors scattered", remote)
	}
}

func TestBalancerKeepsRespreading(t *testing.T) {
	eng, _, c := newIRQ(t, 8, 8, true)
	before := c.EffectiveCPU(0, 0)
	moved := false
	for i := 0; i < 5; i++ {
		eng.RunUntil(eng.Now().Add(11 * sim.Second))
		if c.EffectiveCPU(0, 0) != before {
			moved = true
		}
	}
	_, _, passes := c.Stats()
	if passes < 5 {
		t.Fatalf("balancer passes = %d, want ≥5", passes)
	}
	if !moved {
		t.Fatal("vector never moved across 5 balancer passes")
	}
}

func TestLocalDeliveryHasNoPenalty(t *testing.T) {
	eng, _, c := newIRQ(t, 2, 4, false)
	var got Delivery
	fired := false
	c.Deliver(1, 2, func(d Delivery) { got = d; fired = true })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if !fired {
		t.Fatal("delivery callback never fired")
	}
	if got.Remote || got.Executed != 2 {
		t.Fatalf("delivery = %+v, want local on cpu2", got)
	}
	if c.WakePenalty(got) != 0 {
		t.Fatal("local delivery has a wake penalty")
	}
}

func TestRemoteDeliveryPenalized(t *testing.T) {
	eng, _, c := newIRQ(t, 2, 4, false)
	c.eff[1][2] = 0 // force remote
	var got Delivery
	c.Deliver(1, 2, func(d Delivery) { got = d })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if !got.Remote || got.Executed != 0 {
		t.Fatalf("delivery = %+v, want remote on cpu0", got)
	}
	if c.WakePenalty(got) == 0 {
		t.Fatal("remote delivery has no wake penalty")
	}
	local, remote, _ := c.Stats()
	if local != 0 || remote != 1 {
		t.Fatalf("stats local=%d remote=%d", local, remote)
	}
}

func TestDeliveryStealsHandlerCPUTime(t *testing.T) {
	eng, s, c := newIRQ(t, 1, 1, false)
	c.Deliver(0, 0, func(Delivery) {})
	eng.RunUntil(sim.Time(sim.Millisecond))
	if st := s.CPU(0).StolenTime(); st < c.costs.HardIRQ+c.costs.SoftIRQ {
		t.Fatalf("stolen = %v, want ≥ hardirq+softirq", st)
	}
}

func TestRemoteDeliveryStealsRemoteCPU(t *testing.T) {
	// The interference is on the CPU that executes the handler, not the
	// submitting one — that is what pollutes *other* SSDs' threads.
	eng, s, c := newIRQ(t, 2, 4, false)
	c.eff[0][3] = 1
	c.Deliver(0, 3, func(Delivery) {})
	eng.RunUntil(sim.Time(sim.Millisecond))
	if s.CPU(1).StolenTime() == 0 {
		t.Fatal("remote CPU not charged")
	}
	if s.CPU(3).StolenTime() != 0 {
		t.Fatal("submitting CPU wrongly charged")
	}
}

func TestPinAllRestoresAffinityAndStopsBalancer(t *testing.T) {
	eng, _, c := newIRQ(t, 8, 8, true)
	c.PinAll()
	for s := 0; s < 8; s++ {
		for q := 0; q < 8; q++ {
			if c.EffectiveCPU(s, q) != q {
				t.Fatalf("irq(%d,%d) not pinned to its CPU", s, q)
			}
		}
	}
	eng.RunUntil(sim.Time(60 * sim.Second))
	for s := 0; s < 8; s++ {
		for q := 0; q < 8; q++ {
			if c.EffectiveCPU(s, q) != q {
				t.Fatal("balancer moved a pinned vector")
			}
		}
	}
	_, _, passes := c.Stats()
	if passes != 0 {
		t.Fatalf("balancer ran %d passes after PinAll", passes)
	}
}

func TestPinSingleVectorSurvivesBalancer(t *testing.T) {
	eng, _, c := newIRQ(t, 4, 4, true)
	c.Pin(2, 3)
	eng.RunUntil(sim.Time(60 * sim.Second))
	if c.EffectiveCPU(2, 3) != 3 {
		t.Fatal("pinned vector moved")
	}
}

func TestDeliverPanicsOnBadIndices(t *testing.T) {
	_, _, c := newIRQ(t, 2, 2, false)
	for _, f := range []func(){
		func() { c.Deliver(2, 0, func(Delivery) {}) },
		func() { c.Deliver(0, 2, func(Delivery) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpreadIsDeterministic(t *testing.T) {
	_, _, a := newIRQ(t, 16, 8, true)
	_, _, b := newIRQ(t, 16, 8, true)
	for s := 0; s < 16; s++ {
		for q := 0; q < 8; q++ {
			if a.EffectiveCPU(s, q) != b.EffectiveCPU(s, q) {
				t.Fatal("same seed produced different layouts")
			}
		}
	}
}
