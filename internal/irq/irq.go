// Package irq models NVMe MSI-X interrupt delivery and the Linux IRQ
// balancer's interaction with it.
//
// As in the paper's testbed (Section III-C), every SSD exposes one I/O
// queue — and therefore one MSI-X vector — per logical CPU: 64 SSDs × 40
// CPUs = 2,560 vectors, irq(n,c). The completion for an I/O submitted on
// cpu(c) to nvme(n) arrives on vector (n,c); where its handler *executes*
// is the vector's effective affinity. The stock IRQ balancer re-spreads
// effective affinities without regard for the submitting CPU, so handlers
// frequently run on a remote CPU (the paper's irq(0,4) observed on
// cpu(30)), costing an IPI, an extra context switch, and cache pollution —
// and, because the balancer's placement differs per SSD, making per-SSD
// latency distributions diverge. Pinning every vector to its own CPU
// (procfs/tuna, Section IV-D) removes both effects.
package irq

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Costs are the interrupt-path cost constants.
type Costs struct {
	// HardIRQ is the top-half handler's CPU time.
	HardIRQ sim.Duration
	// SoftIRQ is the block-layer completion (bottom half) CPU time.
	SoftIRQ sim.Duration
	// IPI is the inter-processor-interrupt cost when the handler must wake
	// a thread living on another CPU.
	IPI sim.Duration
	// RemoteWakePenalty is extra first-burst time for a thread woken from
	// a remote CPU (completion data structures are in the wrong cache).
	RemoteWakePenalty sim.Duration
	// CrossSocketExtra is the additional cost when the remote CPU sits on
	// the other NUMA socket: the IPI crosses QPI and the cache lines are
	// remote-memory (the paper's stated future work on NUMA implications).
	CrossSocketExtra sim.Duration
	// CrossSocketWakeExtra is the extra wake penalty for cross-socket
	// deliveries.
	CrossSocketWakeExtra sim.Duration
}

// DefaultCosts returns calibrated interrupt-path costs.
func DefaultCosts() Costs {
	return Costs{
		HardIRQ:              1200 * sim.Nanosecond,
		SoftIRQ:              1500 * sim.Nanosecond,
		IPI:                  2 * sim.Microsecond,
		RemoteWakePenalty:    7 * sim.Microsecond,
		CrossSocketExtra:     1500 * sim.Nanosecond,
		CrossSocketWakeExtra: 4 * sim.Microsecond,
	}
}

// Delivery describes how one completion was delivered; the kernel package
// uses it to charge wake penalties, and the trace package records it.
type Delivery struct {
	SSD      int
	Queue    int // submitting CPU / queue index
	Executed int // CPU the handler actually ran on
	Remote   bool
	// CrossSocket reports that the handler ran on the other NUMA socket.
	CrossSocket bool
}

// Controller owns the vector table and the balancer.
type Controller struct {
	eng   *sim.Engine
	sch   *sched.Scheduler
	rnd   *rng.Stream
	costs Costs

	// eff[ssd][queue] is the effective CPU of vector irq(ssd,queue).
	eff [][]int
	// pinned marks vectors excluded from balancing.
	pinned [][]bool

	balancer       *sim.Ticker
	BalancePeriod  sim.Duration
	policy         Policy
	socketOf       []int
	local, remote  int64
	crossSocket    int64
	balancerPasses int64

	// OnDeliver, when set, observes every delivery (the trace package's
	// irq_handler_entry probe).
	OnDeliver func(Delivery)

	// freeReqs recycles delivery carriers (see delivReq); a plain slice
	// keeps reuse order deterministic.
	freeReqs []*delivReq
}

// delivReq carries one interrupt through its stolen-time window. Pooled
// with the fire callback bound once, so per-delivery traffic doesn't
// allocate a closure per interrupt.
type delivReq struct {
	c      *Controller
	d      Delivery
	done   func(Delivery)
	fireFn func()
}

// fire runs after the hardirq+softirq window: release first, then hand
// the delivery to the completion path (which may trigger further
// deliveries that reuse this carrier).
func (r *delivReq) fire() {
	c := r.c
	d, done := r.d, r.done
	r.done = nil
	c.freeReqs = append(c.freeReqs, r)
	done(d)
}

func (c *Controller) getReq(d Delivery, done func(Delivery)) *delivReq {
	var r *delivReq
	if n := len(c.freeReqs); n > 0 {
		r = c.freeReqs[n-1]
		c.freeReqs[n-1] = nil
		c.freeReqs = c.freeReqs[:n-1]
	} else {
		r = &delivReq{c: c} //afalint:allow hotalloc -- freelist miss only; amortized across carrier reuses
		r.fireFn = r.fire   //afalint:allow hotalloc -- fire callback bound once per pooled carrier
	}
	r.d = d
	r.done = done
	return r
}

// Policy selects the balancer algorithm.
type Policy int

const (
	// BalanceNaive is the stock irqbalance behaviour: spread vectors
	// evenly with no regard for the submitting CPU.
	BalanceNaive Policy = iota
	// BalanceAffine is the Section VI future-work prototype: the balancer
	// honours each vector's queue affinity, placing irq(n,c) on cpu(c) —
	// load is already even because queues are per-CPU, so nothing needs
	// to move.
	BalanceAffine
)

func (p Policy) String() string {
	if p == BalanceAffine {
		return "affinity-aware"
	}
	return "naive"
}

// Config assembles a Controller.
type Config struct {
	NumSSDs int
	NumCPUs int
	Costs   Costs
	Seed    uint64
	// BalancePeriod is how often irqbalance re-spreads vectors (its
	// daemon's default is 10 s).
	BalancePeriod sim.Duration
	// StartBalanced scatters initial effective affinities the way a boot
	// with irqbalance leaves them; false starts with ideal (pinned-like)
	// placement.
	StartBalanced bool
	// Policy selects the balancer algorithm (BalanceNaive by default).
	Policy Policy
	// SocketOf maps each logical CPU to its NUMA socket; when set,
	// cross-socket deliveries pay the CrossSocket cost surcharges.
	SocketOf []int
}

// New builds the vector table. With StartBalanced the initial effective
// affinities are already scattered and the balancer daemon runs; Pin
// stops it.
func New(eng *sim.Engine, sch *sched.Scheduler, cfg Config) *Controller {
	if cfg.NumSSDs <= 0 || cfg.NumCPUs <= 0 {
		panic("irq: NumSSDs and NumCPUs must be positive")
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.BalancePeriod == 0 {
		cfg.BalancePeriod = 10 * sim.Second
	}
	c := &Controller{
		eng:           eng,
		sch:           sch,
		rnd:           rng.NewLabeled(cfg.Seed, "irqbalance"),
		costs:         cfg.Costs,
		BalancePeriod: cfg.BalancePeriod,
		policy:        cfg.Policy,
		socketOf:      cfg.SocketOf,
	}
	c.eff = make([][]int, cfg.NumSSDs)
	c.pinned = make([][]bool, cfg.NumSSDs)
	for s := range c.eff {
		c.eff[s] = make([]int, cfg.NumCPUs)
		c.pinned[s] = make([]bool, cfg.NumCPUs)
		for q := range c.eff[s] {
			c.eff[s][q] = q
		}
	}
	if cfg.StartBalanced {
		c.spread()
		c.balancer = sim.NewTicker(eng, c.BalancePeriod, func(sim.Time) {
			c.spread()
			c.balancerPasses++
		})
	}
	return c
}

// NumVectors reports the vector population (the paper's 2,560).
func (c *Controller) NumVectors() int { return len(c.eff) * len(c.eff[0]) }

// EffectiveCPU reports where vector irq(ssd,queue) currently executes.
func (c *Controller) EffectiveCPU(ssd, queue int) int { return c.eff[ssd][queue] }

// spread is one irqbalance pass. Under the naive policy it distributes
// vectors evenly over all CPUs with no regard for queue affinity; the
// affinity-aware policy returns every unpinned vector to its queue CPU.
func (c *Controller) spread() {
	if c.policy == BalanceAffine {
		for s := range c.eff {
			for q := range c.eff[s] {
				if !c.pinned[s][q] {
					c.eff[s][q] = q
				}
			}
		}
		return
	}
	ncpu := len(c.eff[0])
	next := c.rnd.Intn(ncpu)
	for s := range c.eff {
		for q := range c.eff[s] {
			if c.pinned[s][q] {
				continue
			}
			c.eff[s][q] = next
			next = (next + 1) % ncpu
			// Occasionally skip ahead so the layout is not a pure stripe.
			if c.rnd.Bool(0.1) {
				next = c.rnd.Intn(ncpu)
			}
		}
	}
}

// Pin sets irq(ssd,queue)'s effective affinity to its own queue CPU and
// shields it from the balancer (echo cpu > /proc/irq/N/smp_affinity).
func (c *Controller) Pin(ssd, queue int) {
	c.eff[ssd][queue] = queue
	c.pinned[ssd][queue] = true
}

// PinAll pins every vector of every SSD (the tuna-scripted fix of
// Section IV-D) and stops the balancer.
func (c *Controller) PinAll() {
	for s := range c.eff {
		for q := range c.eff[s] {
			c.Pin(s, q)
		}
	}
	if c.balancer != nil {
		c.balancer.Stop()
		c.balancer = nil
	}
}

// Deliver fires the completion interrupt for an I/O submitted on queue
// (== submitting CPU) of ssd. The hardirq and softirq run on the vector's
// effective CPU, stealing its time; done is then called with the delivery
// record so the caller can wake the waiting thread and charge remote
// penalties.
func (c *Controller) Deliver(ssd, queue int, done func(Delivery)) {
	c.DeliverN(ssd, queue, 1, done)
}

// DeliverN fires one interrupt covering n coalesced CQEs: one
// hardirq/softirq pair plus a small per-extra-CQE processing cost. done is
// called once; the caller fans out to the n waiting I/Os.
func (c *Controller) DeliverN(ssd, queue, n int, done func(Delivery)) {
	if ssd < 0 || ssd >= len(c.eff) {
		panic(fmt.Sprintf("irq: ssd %d out of range", ssd))
	}
	if queue < 0 || queue >= len(c.eff[ssd]) {
		panic(fmt.Sprintf("irq: queue %d out of range", queue))
	}
	if n < 1 {
		panic("irq: DeliverN with n < 1")
	}
	cpu := c.eff[ssd][queue]
	d := Delivery{SSD: ssd, Queue: queue, Executed: cpu, Remote: cpu != queue}
	if d.Remote && c.socketOf != nil && c.socketOf[cpu] != c.socketOf[queue] {
		d.CrossSocket = true
		c.crossSocket++
	}
	if d.Remote {
		c.remote++
	} else {
		c.local++
	}
	if c.OnDeliver != nil {
		c.OnDeliver(d)
	}
	cost := c.costs.HardIRQ + c.costs.SoftIRQ
	cost += sim.Duration(n-1) * perExtraCQE
	if d.Remote {
		cost += c.costs.IPI
	}
	if d.CrossSocket {
		cost += c.costs.CrossSocketExtra
	}
	c.sch.CPU(cpu).Steal(cost, c.getReq(d, done).fireFn)
}

// perExtraCQE is the marginal softirq cost of each additional coalesced
// completion in a batch.
const perExtraCQE = 400 * sim.Nanosecond

// WakePenalty reports the extra dispatch cost the woken thread should be
// charged for this delivery (zero for local).
func (c *Controller) WakePenalty(d Delivery) sim.Duration {
	if !d.Remote {
		return 0
	}
	p := c.costs.RemoteWakePenalty
	if d.CrossSocket {
		p += c.costs.CrossSocketWakeExtra
	}
	return p
}

// Stats reports local/remote delivery counts and balancer activity.
func (c *Controller) Stats() (local, remote, balancerPasses int64) {
	return c.local, c.remote, c.balancerPasses
}

// CrossSocketDeliveries reports how many deliveries crossed the NUMA
// interconnect.
func (c *Controller) CrossSocketDeliveries() int64 { return c.crossSocket }
