// Anatomy decomposes one I/O's completion latency into its path phases —
// submit+SQE fetch, firmware housekeeping, NAND media, data return,
// interrupt delivery, scheduler wakeup — the blktrace-style view that
// explains *where* each tuning knob acts. Compare the waterfall under the
// default kernel configuration with the fully tuned one: media time is
// identical; everything around it shrinks.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/sim"
	"repro/internal/topology"
)

func waterfall(cfg core.Config) *fio.PhaseReport {
	sys := core.NewSystem(core.Options{NumSSDs: 16, Seed: 11, Config: cfg})
	host := topology.XeonE52690v2()
	g := topology.DefaultGeometry(host, 16)

	// Run one instrumented job per SSD and merge the reports by printing
	// the first (all SSDs behave alike at this level).
	var jobs []fio.JobSpec
	for _, ssd := range g.ActiveSSDs() {
		jobs = append(jobs, fio.JobSpec{
			Name: fmt.Sprintf("nvme%d", ssd), SSD: ssd, RW: fio.RandRead,
			Runtime: 300 * sim.Millisecond, CPUsAllowed: []int{g.ThreadCPU[ssd]},
			Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio,
			Phases: true, Seed: uint64(ssd),
		})
	}
	results := fio.RunGroup(sys.Eng, sys.Kernel, jobs)
	return results[0].Phases
}

func main() {
	fmt.Println("== Default configuration ==")
	def := waterfall(core.Default())
	fmt.Print(def.Waterfall())

	fmt.Println("\n== Tuned (chrt + isolcpus + IRQ affinity) ==")
	tuned := waterfall(core.IRQAffinity())
	fmt.Print(tuned.Waterfall())

	fmt.Printf("\nmedia time is the device's to keep: %.1fµs vs %.1fµs.\n",
		def.Mean(fio.PhaseMedia)/1e3, tuned.Mean(fio.PhaseMedia)/1e3)
	fmt.Printf("everything the kernel touches shrinks: wakeup %.1fµs → %.1fµs, interrupt %.1fµs → %.1fµs.\n",
		def.Mean(fio.PhaseWakeup)/1e3, tuned.Mean(fio.PhaseWakeup)/1e3,
		def.Mean(fio.PhaseInterrupt)/1e3, tuned.Mean(fio.PhaseInterrupt)/1e3)
}
