// Tailatscale makes the paper's opening argument quantitative: "even if
// one SSD out of many, say 128 SSDs, shows long tail latency, the entire
// I/O from the client is delayed by the same amount" (Section I). A
// striped client request completes when its slowest sub-I/O does, so the
// per-SSD tail compounds with stripe width — and the wider the array, the
// more the paper's kernel tuning matters.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	o := core.ExpOptions{Runtime: 500 * sim.Millisecond, Seed: 21, NumSSDs: 32}
	widths := []int{1, 4, 16, 32}

	for _, cfg := range []core.Config{core.Default(), core.ExpFirmware()} {
		fmt.Printf("== %s configuration ==\n", cfg.Name)
		results := core.RunTailAtScale(cfg, widths, o)
		fmt.Printf("%-8s %12s %12s %12s %14s\n", "width", "avg(µs)", "p99(µs)", "max(µs)", "p99 vs 1 SSD")
		for _, r := range results {
			fmt.Printf("%-8d %12.1f %12.1f %12.1f %13.2fx\n",
				r.Width, r.Client.Avg/1e3, float64(r.Client.P[0])/1e3,
				float64(r.Client.Max)/1e3, r.Amplification)
		}
		fmt.Println()
	}

	fmt.Println("the default kernel's per-SSD stragglers compound with width;")
	fmt.Println("the tuned stack keeps the client tail flat — the paper's core claim.")
}
