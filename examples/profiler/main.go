// Profiler demonstrates the deployment the paper proposes in Sections I
// and VI: with a whole array profiled in parallel, one host characterizes
// 64 SSDs in the time a single-drive testbed characterizes one — "x10 or
// even x100 faster" — making it practical to catch latency regressions in
// daily firmware builds.
//
// The demo injects two faults into the fleet — one drive with slow NAND
// (a bad bin) and one whose firmware runs SMART housekeeping far too
// often — then profiles all drives concurrently and flags the outliers.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fio"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/stats"
)

const (
	slowDrive  = 13 // NAND reads 35% slower than spec
	noisyDrive = 42 // SMART housekeeping every 100 ms instead of 55 s
)

func main() {
	// The slow bin is a fault.Profile: the injector scales the drive's NAND
	// read time at boot and records the imposition in the failure trace.
	plan := fault.Plan{Profiles: []fault.Profile{
		{SSD: slowDrive, ReadSlowdown: 1.35},
	}}
	sys := core.NewSystem(core.Options{
		NumSSDs: 64, Seed: 77, Config: core.ExpFirmware(), FaultPlan: &plan,
	})

	// The noisy drive is not a fault but a firmware build difference, so it
	// goes through the firmware API.
	fw := nvme.DefaultFirmware()
	fw.SMARTPeriod = 100 * sim.Millisecond
	sys.SSDs[noisyDrive].SetFirmware(fw)

	// One parallel profiling pass over the whole fleet, with the
	// blktrace-style phase decomposition enabled so outliers can be
	// attributed, not just flagged.
	results := sys.RunFIO(core.RunSpec{Runtime: 500 * sim.Millisecond, Phases: true})

	// Fleet statistics for outlier detection: media-phase time isolates
	// the NAND from host-side noise.
	var media, max stats.Welford
	for _, r := range results {
		media.Add(r.Phases.Mean(fio.PhaseMedia))
		max.Add(float64(r.Ladder.Max))
	}
	fmt.Printf("fleet: %d drives, media %.1fµs ±%.2f, max %.1fµs ±%.1f\n\n",
		len(results), media.Mean()/1e3, media.Std()/1e3, max.Mean()/1e3, max.Std()/1e3)

	fmt.Println("outliers (≥4σ from the fleet):")
	found := 0
	for ssd, r := range results {
		zMedia := (r.Phases.Mean(fio.PhaseMedia) - media.Mean()) / media.Std()
		zMax := (float64(r.Ladder.Max) - max.Mean()) / max.Std()
		switch {
		case zMedia > 4:
			fmt.Printf("  nvme%-2d  media %.1fµs (%.0fσ above fleet) → slow NAND (bad bin?)\n",
				ssd, r.Phases.Mean(fio.PhaseMedia)/1e3, zMedia)
			found++
		case zMax > 4:
			fmt.Printf("  nvme%-2d  max %.1fµs (%.0fσ above fleet), %d I/Os hit housekeeping → firmware regression\n",
				ssd, float64(r.Ladder.Max)/1e3, zMax, r.SMARTBlocked)
			found++
		}
	}
	if found == 0 {
		fmt.Println("  none")
	}

	fmt.Printf("\nprofiled 64 drives in %.1fs of array time; a serial single-drive\n"+
		"testbed needs %.0fs for the same coverage — a ×%d speedup, the paper's\n"+
		"Section VI deployment.\n",
		0.5, 0.5*64, 64)
}
