// Tailhunt replays the paper's root-causing methodology (Sections IV-B and
// IV-D): run the workload under the default kernel configuration with the
// LTTng-like tracer attached, identify which background processes executed
// on the FIO CPUs and which NVMe vectors ran on the wrong CPU, then apply
// the fixes and show the tail collapsing.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

const runtime = 500 * sim.Millisecond

func measure(cfg core.Config, traced bool) (*core.System, core.Distribution) {
	opt := core.Options{NumSSDs: 16, Seed: 3, Config: cfg}
	if traced {
		opt.TraceEvents = 1000
	}
	sys := core.NewSystem(opt)
	res := sys.RunFIO(core.RunSpec{Runtime: runtime})
	return sys, core.NewDistribution(cfg.Name, res)
}

func main() {
	fmt.Println("== Step 1: measure under the default configuration (traced) ==")
	sys, def := measure(core.Default(), true)
	core.WriteDistributionTable(os.Stdout, def)

	fmt.Println("\n== Step 2: who interfered? (sched_switch analysis, Section IV-B) ==")
	foreign := sys.Tracer.ForeignTasksOn(sys.Host.WorkloadCPUs(), "fio/")
	for i, f := range foreign {
		if i >= 8 {
			fmt.Printf("  ... %d more\n", len(foreign)-i)
			break
		}
		fmt.Printf("  %-20s dispatched %4d times on cpu(%d)\n", f.Task, f.Dispatches, f.CPU)
	}

	fmt.Println("\n== Step 3: where did interrupts execute? (irq analysis, Section IV-D) ==")
	fmt.Printf("  %.1f%% of deliveries executed on a remote CPU\n", 100*sys.Tracer.RemoteFraction())
	for i, m := range sys.Tracer.MisroutedVectors() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", m)
	}

	fmt.Println("\n== Step 4: apply chrt + isolcpus + IRQ pinning and re-measure ==")
	tunedSys, tuned := measure(core.IRQAffinity(), true)
	core.WriteDistributionTable(os.Stdout, tuned)
	fmt.Printf("\nremote deliveries after pinning: %.1f%%\n", 100*tunedSys.Tracer.RemoteFraction())

	maxRung := 6
	fmt.Printf("\nmean worst-case latency: %.0fµs → %.0fµs (×%.1f better)\n",
		def.Summary.Mean[maxRung]/1e3, tuned.Summary.Mean[maxRung]/1e3,
		def.Summary.Mean[maxRung]/tuned.Summary.Mean[maxRung])
}
