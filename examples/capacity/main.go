// Capacity explores the Section IV-G question — "do we have a good balance
// between number of CPU cores and number of SSDs?" — by sweeping the
// Table II setups (4, 2, and 1 SSDs per physical core, plus a single
// thread on the whole machine) and reporting where latency starts to pay
// for density.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	o := core.ExpOptions{
		Runtime:  500 * sim.Millisecond,
		Seed:     5,
		NumSSDs:  64,
		SoloRuns: 4, // the paper merges 64 single-thread runs; 4 suffice for a demo
	}

	fmt.Println("Table II setups:")
	core.WriteTableII(os.Stdout)
	fmt.Println()

	results := core.RunFig13(o)
	var ds []core.Distribution
	for _, r := range results {
		ds = append(ds, r.Dist)
	}
	core.WriteComparisonTable(os.Stdout, ds)

	// The paper's reading: the distributions are quite similar — packing 4
	// SSDs per physical core costs a little in the upper percentiles but
	// the median is unchanged, so dense CPU:SSD ratios are viable as long
	// as CPU utilization stays low. (The extreme 6-nines rung is clamped
	// by the firmware SMART floor in every setup, so compare below it.)
	a, d := results[0].Dist.Summary, results[3].Dist.Summary
	fmt.Printf("\n4 SSDs/core vs single thread: avg %.1fµs vs %.1fµs, 99.9%% %.1fµs vs %.1fµs\n",
		a.Mean[0]/1e3, d.Mean[0]/1e3, a.Mean[2]/1e3, d.Mean[2]/1e3)
	if a.Mean[2] >= d.Mean[2] && a.Mean[0] < 2*d.Mean[0] {
		fmt.Println("→ density costs a little tail latency and nothing at the median,")
		fmt.Println("  as the paper found (Fig 13/14).")
	}
}
