// Chaos demonstrates the fault-injection subsystem end to end: a striped
// client runs over an 8-wide data stripe plus a parity drive while one
// stripe member is dropped from the fabric mid-run and hot-replugged
// later. With the tolerance stack armed — kernel per-command timeouts,
// RAID degraded reads, and hedged reads at the observed p99 — the
// client's latency ladder holds through the outage: requests are served
// by parity reconstruction at hedge latency instead of hanging on a dead
// device.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/raid"
	"repro/internal/sim"
)

func main() {
	const (
		runtime = 500 * sim.Millisecond
		width   = core.FaultStripeWidth // data members 0..7, parity on 8
		victim  = 0
	)
	dropAt := sim.Time(0).Add(runtime / 4)
	recoverAt := sim.Time(0).Add(3 * runtime / 4)

	plan := fault.Plan{Profiles: []fault.Profile{
		{SSD: victim, DropAt: dropAt, RecoverAt: recoverAt},
	}}
	cfg := core.FaultTolerance()
	sys := core.NewSystem(core.Options{
		NumSSDs: 16, Seed: 7, Config: cfg, FaultPlan: &plan,
	})

	stripe := make([]int, width)
	for i := range stripe {
		stripe[i] = i
	}
	res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
		Name: "chaos", Stripe: stripe, CPU: sys.Host.WorkloadCPUs()[0],
		Runtime: runtime, Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio,
		Tol: raid.DefaultTolerance(width), Seed: 7,
	}})[0]

	fmt.Printf("chaos run: nvme%d offline %.0f–%.0f ms of a %.0f ms run\n\n",
		victim, float64(dropAt)/1e6, float64(recoverAt)/1e6, float64(runtime)/1e6)
	fmt.Printf("striped-request ladder: %v\n\n", res.Ladder)
	fmt.Printf("requests=%d failed=%d hedged=%d hedge-wins=%d degraded=%d late-subios=%d\n",
		res.Requests, res.FailedRequests, res.HedgedReads, res.HedgeWins,
		res.DegradedReads, res.LateSubIOs)
	io := sys.Kernel.IOStats()
	fmt.Printf("kernel: timeouts=%d aborts=%d retries=%d exhausted=%d late-cqes=%d\n\n",
		io.Timeouts, io.Aborts, io.Retries, io.Exhausted, io.LateCompletions)
	fmt.Printf("failure trace:\n%s\n", sys.Faults.TraceString())

	if res.FailedRequests > 0 {
		fmt.Println("FAILED: requests were lost during the outage")
		os.Exit(1)
	}
	if res.HedgeWins == 0 {
		fmt.Println("FAILED: the hedge never served a request")
		os.Exit(1)
	}
	fmt.Println("the array rode through the outage: zero failed requests,")
	fmt.Println("worst case bounded by the hedge, ladder restored after replug.")
}
