// Chaos demonstrates the fault-injection subsystem end to end, in two
// acts over an 8-wide data stripe plus a parity drive.
//
// Act 1 (reads): one stripe member is dropped from the fabric mid-run
// and hot-replugged later. With the tolerance stack armed — kernel
// per-command timeouts, RAID degraded reads, and hedged reads at the
// observed p99 — the client's latency ladder holds through the outage:
// requests are served by parity reconstruction at hedge latency instead
// of hanging on a dead device.
//
// Act 2 (writes): the same drive is pulled while a read-modify-write
// client is running, then replaced, and a rebuild stream reconstructs it
// stripe by stripe while foreground writes continue. During the outage
// writes to the victim are parity-logged (the data exists only as parity
// until rebuild); hedged parity writes keep the worst case bounded; and
// the rebuild throttle shows the classic trade-off — rebuilding flat out
// finishes sooner but steals write tokens from the foreground.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/raid"
	"repro/internal/sim"
)

const (
	runtime = 500 * sim.Millisecond
	width   = core.FaultStripeWidth // data members 0..7, parity on 8
	victim  = 0
)

func main() {
	ok := readAct()
	ok = writeAct() && ok
	if !ok {
		os.Exit(1)
	}
}

// readAct is the original drive-pull demo: degraded and hedged reads.
func readAct() bool {
	dropAt := sim.Time(0).Add(runtime / 4)
	recoverAt := sim.Time(0).Add(3 * runtime / 4)

	plan := fault.Plan{Profiles: []fault.Profile{
		{SSD: victim, DropAt: dropAt, RecoverAt: recoverAt},
	}}
	cfg := core.FaultTolerance()
	sys := core.NewSystem(core.Options{
		NumSSDs: 16, Seed: 7, Config: cfg, FaultPlan: &plan,
	})

	res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
		Name: "chaos", Stripe: stripe(), CPU: sys.Host.WorkloadCPUs()[0],
		Runtime: runtime, Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio,
		Tol: raid.DefaultTolerance(width), Seed: 7,
	}})[0]

	fmt.Printf("act 1, reads: nvme%d offline %.0f–%.0f ms of a %.0f ms run\n\n",
		victim, float64(dropAt)/1e6, float64(recoverAt)/1e6, float64(runtime)/1e6)
	fmt.Printf("striped-request ladder: %v\n\n", res.Ladder)
	fmt.Printf("requests=%d failed=%d hedged=%d hedge-wins=%d degraded=%d late-subios=%d\n",
		res.Requests, res.FailedRequests, res.HedgedReads, res.HedgeWins,
		res.DegradedReads, res.LateSubIOs)
	io := sys.Kernel.IOStats()
	fmt.Printf("kernel: timeouts=%d aborts=%d retries=%d exhausted=%d late-cqes=%d\n\n",
		io.Timeouts, io.Aborts, io.Retries, io.Exhausted, io.LateCompletions)
	fmt.Printf("failure trace:\n%s\n", sys.Faults.TraceString())

	if res.FailedRequests > 0 {
		fmt.Println("FAILED: requests were lost during the outage")
		return false
	}
	if res.HedgeWins == 0 {
		fmt.Println("FAILED: the hedge never served a request")
		return false
	}
	fmt.Println("the array rode through the outage: zero failed requests,")
	fmt.Println("worst case bounded by the hedge, ladder restored after replug.")
	fmt.Println()
	return true
}

// writeAct pulls the drive during a read-modify-write workload, replaces
// it at the midpoint, and rebuilds it at two throttle settings.
func writeAct() bool {
	dropAt := sim.Time(0).Add(runtime / 4)
	replaceAt := sim.Time(0).Add(runtime / 2)
	fmt.Printf("act 2, writes: nvme%d pulled at %.0f ms, replaced at %.0f ms, then rebuilt\n\n",
		victim, float64(dropAt)/1e6, float64(replaceAt)/1e6)

	ok := true
	for _, throttle := range []sim.Duration{100 * sim.Microsecond, 0} {
		plan := fault.Plan{Profiles: []fault.Profile{
			{SSD: victim, DropAt: dropAt, RecoverAt: replaceAt},
		}}
		cfg := core.FaultTolerance()
		sys := core.NewSystem(core.Options{
			NumSSDs: 16, Seed: 7, Config: cfg, FaultPlan: &plan,
		})
		cpus := sys.Host.WorkloadCPUs()

		rb := raid.NewRebuilder(sys.Eng, sys.Kernel, raid.RebuildSpec{
			Survivors: stripe()[1:], Parity: width, Target: victim,
			CPU: cpus[len(cpus)-1], StartAt: replaceAt,
			Stripes:  int64(runtime / (400 * sim.Microsecond)),
			Throttle: throttle,
		})
		rb.Start(nil)

		res := raid.Run(sys.Eng, sys.Kernel, []raid.ClientSpec{{
			Name: "chaos-write", Workload: raid.WorkloadWrite,
			Stripe: stripe(), Parity: width,
			CPU: cpus[0], Runtime: runtime,
			Class: cfg.FIOClass, RTPrio: cfg.FIORTPrio,
			Tol: raid.DefaultTolerance(width), Seed: 7,
		}})[0]
		reb := rb.Result()

		fmt.Printf("-- rebuild throttle %v --\n", throttle)
		fmt.Printf("write ladder: %v\n", res.Ladder)
		fmt.Printf("requests=%d failed=%d parity-log=%d degraded=%d hedged=%d hedge-wins=%d suspicions=%d probes=%d\n",
			res.Requests, res.FailedRequests, res.ParityLogWrites, res.DegradedWrites,
			res.HedgedWrites, res.WriteHedgeWins, res.Suspicions, res.Probes)
		elapsed := "unfinished at run end"
		if reb.Done {
			elapsed = fmt.Sprintf("done in %.1f ms", float64(reb.FinishedAt.Sub(reb.StartedAt))/1e6)
		}
		fmt.Printf("rebuild: %d/%d stripes (%s), reads=%d writes=%d\n\n",
			reb.StripesRebuilt, reb.Spec.Stripes, elapsed, reb.Reads, reb.Writes)

		if res.FailedRequests > 0 {
			fmt.Println("FAILED: writes were lost during the outage")
			ok = false
		}
		if res.DegradedWrites == 0 {
			fmt.Println("FAILED: no write was parity-logged during the outage")
			ok = false
		}
		if reb.StripesRebuilt == 0 {
			fmt.Println("FAILED: the rebuild stream made no progress")
			ok = false
		}
	}
	if ok {
		fmt.Println("writes rode through the pull: parity logging carried the outage,")
		fmt.Println("hedged parity writes bounded the worst case, and the replacement")
		fmt.Println("was rebuilt while foreground writes continued.")
	}
	return ok
}

func stripe() []int {
	s := make([]int, width)
	for i := range s {
		s[i] = i
	}
	return s
}
