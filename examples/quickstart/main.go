// Quickstart: boot the simulated all-flash array, run FIO against a few
// SSDs, and print the per-device completion-latency report — the minimal
// end-to-end use of the library's public API.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/sim"
)

func main() {
	// Boot one host's share of the array (8 SSDs here; the testbed holds
	// 64) with the paper's fully tuned configuration: FIO at SCHED_FIFO
	// 99, CPU isolation boot options, all 320 MSI-X vectors pinned.
	sys := core.NewSystem(core.Options{
		NumSSDs: 8,
		Seed:    1,
		Config:  core.IRQAffinity(),
	})
	fmt.Println(sys)
	fmt.Println("boot cmdline:", sys.BootCmdline())

	// The methodology keeps devices fresh-out-of-box: format first.
	sys.FormatAll()

	// 4 KiB random reads at queue depth 1, one pinned thread per SSD.
	results := sys.RunFIO(core.RunSpec{
		Runtime: 500 * sim.Millisecond,
		RW:      fio.RandRead,
	})

	for _, r := range results {
		if r == nil {
			continue
		}
		fmt.Print(r.Report())
	}

	// Cross-SSD aggregate: the way the paper's figures read.
	dist := core.NewDistribution(sys.Config.Name, results)
	fmt.Println()
	core.WriteDistributionTable(os.Stdout, dist)
}
