// Firmware studies the housekeeping findings of Section IV-E and the
// improved-protocol proposal of Section V: the stock SMART firmware's
// periodic ~550 µs media stalls put a hard floor under tail latency; the
// experimental build removes them entirely; the incremental protocol keeps
// SMART alive while bounding each stall to microseconds.
//
// With -used it also runs the paper's stated future work: write latency in
// a used (non-FOB) device state where garbage collection runs in the
// foreground.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	used := flag.Bool("used", false, "also run the used-state (non-FOB) GC study")
	flag.Parse()

	o := core.ExpOptions{Runtime: sim.Second, Seed: 9, NumSSDs: 16}

	fmt.Println("== Firmware housekeeping variants under the tuned kernel ==")
	ds := core.RunFirmwareAblation(o)
	core.WriteComparisonTable(os.Stdout, ds)

	std, none, incr := ds[0].Summary, ds[1].Summary, ds[2].Summary
	fmt.Printf("\nworst case: standard %.0fµs → nosmart %.0fµs (paper: ≈600 → ≈90µs)\n",
		std.Mean[6]/1e3, none.Mean[6]/1e3)
	fmt.Printf("incremental protocol keeps SMART and still reaches %.0fµs — the\n"+
		"Section V 'better housekeeping protocol' in one number.\n", incr.Mean[6]/1e3)

	if *used {
		fmt.Println("\n== Future work: used (non-FOB) state, random writes ==")
		fob, usedDist := core.RunUsedStateStudy(o, 0.9)
		core.WriteComparisonTable(os.Stdout, []core.Distribution{fob, usedDist})
		fmt.Printf("\nGC in the used state pushes the worst case from %.0fµs to %.0fµs.\n",
			fob.Summary.Mean[6]/1e3, usedDist.Summary.Mean[6]/1e3)
	}
}
