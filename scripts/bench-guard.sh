#!/usr/bin/env bash
# bench-guard.sh — engine-throughput regression guard.
#
# BENCH_engine.json is committed per-merge, so HEAD always records the
# events-per-second the simulator's inner loop achieved on the last
# accepted commit. This script reruns BenchmarkEngineThroughput and
# BenchmarkTenantMux once, compares the fresh figures against the
# committed ones, and fails if any lost more than BENCH_GUARD_THRESHOLD
# percent (default 20) — catching hot-path regressions that slip past
# `afalint -perf`'s static rules (an O(n) scan that grew, an event
# storm) before they land. Guarded figures:
#
#   events_per_sec of the first row (headline-64ssd) — the closed-loop
#   inner loop;
#   arrivals_per_sec of each tenant-mux-* row — the open-loop
#   multiplexer's per-arrival path at 10k and 100k tenant populations;
#   mean_lat_ns of each iopath-ull-* row — the low-latency tier's
#   headline figure. Unlike the wall-clock rates these are simulated
#   latencies, machine-independent and deterministic, so the gate is
#   tight (BENCH_GUARD_LAT_THRESHOLD, default 1%) and fails on a RISE:
#   a slower simulated I/O path is a model regression, not noise.
#   Deliberate model changes regenerate the baseline in the same commit.
#
# The committed BENCH_engine.json is restored afterwards: regenerating
# the baseline is a deliberate act (commit the file the benchmark
# writes), not a side effect of running the guard. Absolute numbers are
# machine-dependent; the guard is only meaningful when the baseline was
# recorded on hardware comparable to where it runs (CI baselines come
# from CI merges).
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${BENCH_GUARD_THRESHOLD:-20}"
lat_threshold="${BENCH_GUARD_LAT_THRESHOLD:-1}"

extract_eps() {
  sed -n 's/.*"events_per_sec": *\([0-9.eE+]*\).*/\1/p' | head -1
}

# extract_row_field <experiment> <field>: the field's value inside the
# row whose "experiment" matches, relying on "experiment" being the
# first key WriteEngineBenchJSON emits per row.
extract_row_field() {
  awk -v name="\"$1\"" -v field="\"$2\"" '
    index($0, "\"experiment\": " name) { hit = 1 }
    hit && index($0, field ":") {
      v = $0
      sub(/.*: */, "", v); sub(/,.*/, "", v)
      print v; exit
    }
    /}/ { hit = 0 }
  '
}

# compare <label> <baseline> <fresh>: fail if fresh dropped more than
# threshold percent below baseline.
compare() {
  awk -v label="$1" -v base="$2" -v fresh="$3" -v thr="${threshold}" 'BEGIN {
    drop = (base - fresh) / base * 100
    printf "bench-guard: %s %.0f -> %.0f (%+.1f%%), threshold -%s%%\n",
           label, base, fresh, -drop, thr
    if (drop > thr) {
      printf "bench-guard: %s regressed more than %s%%\n", label, thr
      exit 1
    }
  }'
}

# compare_rise <label> <baseline> <fresh>: the latency direction — fail
# if fresh rose more than lat_threshold percent above baseline.
compare_rise() {
  awk -v label="$1" -v base="$2" -v fresh="$3" -v thr="${lat_threshold}" 'BEGIN {
    rise = (fresh - base) / base * 100
    printf "bench-guard: %s %.0f -> %.0f (%+.1f%%), threshold +%s%%\n",
           label, base, fresh, rise, thr
    if (rise > thr) {
      printf "bench-guard: %s regressed more than %s%%\n", label, thr
      exit 1
    }
  }'
}

committed="$(git show HEAD:BENCH_engine.json 2>/dev/null || true)"
baseline="$(printf '%s' "${committed}" | extract_eps || true)"
if [ -z "${baseline}" ]; then
  echo "bench-guard: no committed BENCH_engine.json at HEAD; nothing to compare against" >&2
  exit 0
fi

saved="$(mktemp)"
trap 'rm -f "${saved}"' EXIT
had_file=0
if [ -f BENCH_engine.json ]; then
  cp BENCH_engine.json "${saved}"
  had_file=1
fi

go test -run '^$' -bench 'BenchmarkEngineThroughput|BenchmarkTenantMux|BenchmarkIOPathLatency' -benchtime=1x . >/dev/null

fresh_json="$(cat BENCH_engine.json)"
if [ "${had_file}" = 1 ]; then
  cp "${saved}" BENCH_engine.json
else
  rm -f BENCH_engine.json
fi
fresh="$(printf '%s' "${fresh_json}" | extract_eps)"
if [ -z "${fresh}" ]; then
  echo "bench-guard: benchmark produced no events_per_sec" >&2
  exit 1
fi

compare "events/sec" "${baseline}" "${fresh}"

for exp in tenant-mux-10k tenant-mux-100k; do
  base_aps="$(printf '%s' "${committed}" | extract_row_field "${exp}" arrivals_per_sec || true)"
  if [ -z "${base_aps}" ]; then
    # The committed baseline predates the tenant-mux rows; skip until a
    # merge commits them.
    continue
  fi
  fresh_aps="$(printf '%s' "${fresh_json}" | extract_row_field "${exp}" arrivals_per_sec)"
  if [ -z "${fresh_aps}" ]; then
    echo "bench-guard: benchmark produced no arrivals_per_sec for ${exp}" >&2
    exit 1
  fi
  compare "${exp} arrivals/sec" "${base_aps}" "${fresh_aps}"
done

for exp in iopath-ull-irq iopath-ull-polling iopath-ull-passthrough; do
  base_lat="$(printf '%s' "${committed}" | extract_row_field "${exp}" mean_lat_ns || true)"
  if [ -z "${base_lat}" ]; then
    # The committed baseline predates the iopath rows; skip until a
    # merge commits them.
    continue
  fi
  fresh_lat="$(printf '%s' "${fresh_json}" | extract_row_field "${exp}" mean_lat_ns)"
  if [ -z "${fresh_lat}" ]; then
    echo "bench-guard: benchmark produced no mean_lat_ns for ${exp}" >&2
    exit 1
  fi
  compare_rise "${exp} mean-lat" "${base_lat}" "${fresh_lat}"
done
