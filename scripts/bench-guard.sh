#!/usr/bin/env bash
# bench-guard.sh — engine-throughput regression guard.
#
# BENCH_engine.json is committed per-merge, so HEAD always records the
# events-per-second the simulator's inner loop achieved on the last
# accepted commit. This script reruns BenchmarkEngineThroughput once,
# compares the fresh events_per_sec against the committed figure, and
# fails if the engine lost more than BENCH_GUARD_THRESHOLD percent
# (default 20) — catching hot-path regressions that slip past
# `afalint -perf`'s static rules (an O(n) scan that grew, an event
# storm) before they land.
#
# The committed BENCH_engine.json is restored afterwards: regenerating
# the baseline is a deliberate act (commit the file the benchmark
# writes), not a side effect of running the guard. Absolute numbers are
# machine-dependent; the guard is only meaningful when the baseline was
# recorded on hardware comparable to where it runs (CI baselines come
# from CI merges).
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${BENCH_GUARD_THRESHOLD:-20}"

extract_eps() {
  sed -n 's/.*"events_per_sec": *\([0-9.eE+]*\).*/\1/p' | head -1
}

baseline="$(git show HEAD:BENCH_engine.json 2>/dev/null | extract_eps || true)"
if [ -z "${baseline}" ]; then
  echo "bench-guard: no committed BENCH_engine.json at HEAD; nothing to compare against" >&2
  exit 0
fi

saved="$(mktemp)"
trap 'rm -f "${saved}"' EXIT
had_file=0
if [ -f BENCH_engine.json ]; then
  cp BENCH_engine.json "${saved}"
  had_file=1
fi

go test -run '^$' -bench BenchmarkEngineThroughput -benchtime=1x . >/dev/null

fresh="$(extract_eps < BENCH_engine.json)"
if [ "${had_file}" = 1 ]; then
  cp "${saved}" BENCH_engine.json
else
  rm -f BENCH_engine.json
fi
if [ -z "${fresh}" ]; then
  echo "bench-guard: benchmark produced no events_per_sec" >&2
  exit 1
fi

awk -v base="${baseline}" -v fresh="${fresh}" -v thr="${threshold}" 'BEGIN {
  drop = (base - fresh) / base * 100
  printf "bench-guard: events/sec %.0f -> %.0f (%+.1f%%), threshold -%s%%\n",
         base, fresh, -drop, thr
  if (drop > thr) {
    printf "bench-guard: engine throughput regressed more than %s%%\n", thr
    exit 1
  }
}'
