#!/usr/bin/env bash
# Extended tier-1 gate: everything CI needs to trust a change.
#
#   build     — the module compiles;
#   vet       — stdlib static checks;
#   afalint   — the determinism contract (DESIGN.md §5): no wall clock,
#               no global rand, no map-order dependence, no concurrency
#               or float equality in the sim core, no sim-core import of
#               the orchestration tier (DESIGN.md §7);
#   race test — full suite under the race detector (the sim core is
#               single-threaded by contract and the runner tier merges
#               in submission order, so this must be silent);
#   shuffle   — full suite again with test order shuffled: no test may
#               depend on state another test left behind;
#   parallel  — the serial-vs-parallel determinism cross-check re-run
#               under -race: exported reports must be byte-identical at
#               -parallel 1 and 8, and the worker pool must be clean
#               under the detector;
#   fault     — the fault-injection and tolerance paths re-run under
#               -race with full verbosity counts: the timeout/abort/hedge
#               machinery is the most callback-entangled code in the tree.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/afalint ./...
go test -race ./...
go test -shuffle=on ./...
go test -race -count=1 -run 'TestParallelDeterminism|TestMap' ./internal/core/ ./internal/runner/
go test -race -count=1 ./internal/fault/ ./internal/kernel/ ./internal/raid/
