#!/usr/bin/env bash
# Extended tier-1 gate: everything CI needs to trust a change.
#
#   build        — the module compiles;
#   vet          — stdlib static checks;
#   afalint      — the determinism contract (DESIGN.md §5): no wall
#                  clock, no global rand, no map-order dependence, no
#                  concurrency or float equality in the sim core, no
#                  sim-core import of the orchestration tier (§7);
#   afalint -perf — the performance contract (§8): no new hot-path
#                  allocation, interface dispatch, defer, growth
#                  append, or map traffic beyond the recorded debts
#                  in lint_perf.baseline;
#   afalint -state — the state-integrity contract (§10): pooled types,
#                  Reset() methods, and Snapshot()/Clone() methods
#                  must cover every mutable field, no package-level
#                  vars in sim-core, no use-after-release of pooled
#                  pointers, beyond the debts in lint_state.baseline;
#   race+shuffle — the full suite once, under the race detector with
#                  test order shuffled: the sim core is single-threaded
#                  by contract and the runner tier merges in submission
#                  order, so the detector must be silent, and no test
#                  may depend on state another test left behind. One
#                  pass covers what used to be three (-race, -shuffle,
#                  and a fault/kernel/raid re-run): the fault, timeout,
#                  write-path, and rebuild tests all live in the suite
#                  this runs, and -shuffle=on implies -count=1 so
#                  nothing is served from the test cache.
#   parallel     — the serial-vs-parallel determinism cross-check re-run
#                  under -race: exported reports of every fan-out —
#                  including the write ablation and its rebuild stream —
#                  must be byte-identical at -parallel 1 and 8.
#   load smoke   — afareport's open-loop offered-load ladder end to end
#                  at a small scale: the capacity probe, both arms of
#                  the rung grid, and the knee detection all execute
#                  through the real CLI path.
#   iopath smoke — the I/O-path grid end to end at a small scale: all
#                  four completion paths on both device classes,
#                  including the tenant-owned passthrough queues and
#                  the ULL fabric/device profile, through the real CLI
#                  path.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/afalint ./...
go run ./cmd/afalint -perf -baseline lint_perf.baseline ./...
go run ./cmd/afalint -state -baseline lint_state.baseline ./...
go test -race -shuffle=on ./...
go test -race -count=1 -run 'TestParallelDeterminism|TestMap' ./internal/core/ ./internal/runner/
go run ./cmd/afareport -ablate load -ssds 4 -runtime 40ms >/dev/null
go run ./cmd/afareport -ablate iopath -ssds 4 -runtime 40ms >/dev/null
