#!/usr/bin/env bash
# Extended tier-1 gate: everything CI needs to trust a change.
#
#   build     — the module compiles;
#   vet       — stdlib static checks;
#   afalint   — the determinism contract (DESIGN.md §5): no wall clock,
#               no global rand, no map-order dependence, no concurrency
#               or float equality in the sim core;
#   race test — full suite under the race detector (the sim is
#               single-threaded by contract, so this must be silent);
#   fault     — the fault-injection and tolerance paths re-run under
#               -race with full verbosity counts: the timeout/abort/hedge
#               machinery is the most callback-entangled code in the tree.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/afalint ./...
go test -race ./...
go test -race -count=1 ./internal/fault/ ./internal/kernel/ ./internal/raid/
