package afasim_test

import (
	"testing"

	"repro/afasim"
)

// TestPublicSurfaceEndToEnd drives the library exactly as the package doc
// advertises, entirely through the facade.
func TestPublicSurfaceEndToEnd(t *testing.T) {
	sys := afasim.NewSystem(afasim.Options{
		NumSSDs: 4,
		Seed:    1,
		Config:  afasim.IRQAffinity(),
	})
	results := sys.RunFIO(afasim.RunSpec{Runtime: 100 * afasim.Millisecond})
	dist := afasim.NewDistribution(sys.Config.Name, results)
	if dist.Summary.N != 4 {
		t.Fatalf("summarized %d SSDs", dist.Summary.N)
	}
	if avg := dist.Summary.Mean[0]; avg < 25e3 || avg > 80e3 {
		t.Fatalf("avg = %.0fns, outside any plausible envelope", avg)
	}
}

func TestTuningLadderExported(t *testing.T) {
	names := []string{}
	for _, cfg := range []afasim.Config{
		afasim.Default(), afasim.CHRT(), afasim.Isolcpus(),
		afasim.IRQAffinity(), afasim.ExpFirmware(),
		afasim.FutureSched(), afasim.FutureIRQ(), afasim.FutureBoth(),
	} {
		names = append(names, cfg.Name)
	}
	want := []string{"default", "chrt", "isolcpus", "irq", "expfw",
		"auto-sched", "affine-irq", "auto-both"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("config %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestTableIIExported(t *testing.T) {
	if rows := afasim.TableII(); len(rows) != 4 {
		t.Fatalf("TableII rows = %d", len(rows))
	}
}
