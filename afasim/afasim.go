// Package afasim is the public face of the library: a deterministic
// simulation of an NVMe all-flash-array testbed faithful to "Performance
// Analysis of NVMe SSD-based All-flash Array Systems" (ISPASS 2018),
// usable as a study platform for storage-stack tuning.
//
// The minimal flow:
//
//	sys := afasim.NewSystem(afasim.Options{NumSSDs: 64, Seed: 1,
//		Config: afasim.IRQAffinity()})
//	results := sys.RunFIO(afasim.RunSpec{Runtime: 2 * afasim.Second})
//	dist := afasim.NewDistribution(sys.Config.Name, results)
//
// Every figure of the paper has a RunFigNN function, and the named
// configurations reproduce the paper's tuning ladder: Default → CHRT →
// Isolcpus → IRQAffinity → ExpFirmware. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// The heavy lifting lives in the internal packages (scheduler, IRQ
// subsystem, PCIe fabric, NVMe/NAND models, FIO-like generator); this
// package re-exports the stable surface so downstream modules depend only
// on it.
package afasim

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/raid"
	"repro/internal/sim"
)

// Re-exported simulated-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Duration is a span of simulated time in nanoseconds.
type Duration = sim.Duration

// Time is an instant of simulated time.
type Time = sim.Time

// Core types.
type (
	// System is one booted host attached to its share of the array.
	System = core.System
	// Options configure system construction.
	Options = core.Options
	// Config is a named kernel/firmware configuration.
	Config = core.Config
	// RunSpec describes one measurement run.
	RunSpec = core.RunSpec
	// Distribution is per-SSD ladders plus the cross-SSD aggregate.
	Distribution = core.Distribution
	// ExpOptions parameterize a figure reproduction.
	ExpOptions = core.ExpOptions
	// Headline is the abstract's ×8/×400 claim check.
	Headline = core.Headline
)

// Fault injection and host-side tolerance (see DESIGN.md §6).
type (
	// FaultPlan is a fleet-wide fault schedule (per-SSD Profiles).
	FaultPlan = fault.Plan
	// FaultProfile is one SSD's fault model.
	FaultProfile = fault.Profile
	// FaultWindow is a timed span of a fault condition.
	FaultWindow = fault.Window
	// FaultEvent is one failure-trace entry.
	FaultEvent = fault.Event
	// FaultInjector applies a plan and records the failure trace.
	FaultInjector = fault.Injector
	// RAIDTolerance configures degraded reads and hedged reads.
	RAIDTolerance = raid.Tolerance
	// FaultRun is one arm of the degraded-mode ablation.
	FaultRun = core.FaultRun
	// RecoveryResult is the drive drop-out/recovery time series.
	RecoveryResult = core.RecoveryResult
)

// System construction and measurement.
var (
	NewSystem       = core.NewSystem
	NewDistribution = core.NewDistribution
)

// The paper's tuning ladder (Section IV) and the Section VI prototypes.
var (
	Default        = core.Default
	CHRT           = core.CHRT
	Isolcpus       = core.Isolcpus
	IRQAffinity    = core.IRQAffinity
	ExpFirmware    = core.ExpFirmware
	FutureSched    = core.FutureSched
	FutureIRQ      = core.FutureIRQ
	FutureBoth     = core.FutureBoth
	FaultTolerance = core.FaultTolerance
)

// Fault-injection constructors and experiments.
var (
	NewFaultInjector     = fault.NewInjector
	MergeFaultPlans      = fault.Merge
	PeriodicStalls       = fault.PeriodicStalls
	DefaultRAIDTolerance = raid.DefaultTolerance
	DemoFaultPlan        = core.DemoFaultPlan
	RunFaultAblation     = core.RunFaultAblation
	RunRecoverySeries    = core.RunRecoverySeries
)

// Figure and table reproductions.
var (
	RunFig6     = core.RunFig6
	RunFig7     = core.RunFig7
	RunFig8     = core.RunFig8
	RunFig9     = core.RunFig9
	RunFig10    = core.RunFig10
	RunFig11    = core.RunFig11
	RunFig12    = core.RunFig12
	RunFig13    = core.RunFig13
	TableII     = core.TableII
	RunHeadline = core.RunHeadline
)

// Ablations and extensions.
var (
	RunFirmwareAblation   = core.RunFirmwareAblation
	RunPollingAblation    = core.RunPollingAblation
	RunFutureWorkAblation = core.RunFutureWorkAblation
	RunCoalescingAblation = core.RunCoalescingAblation
	RunUsedStateStudy     = core.RunUsedStateStudy
	RunTailAtScale        = core.RunTailAtScale
	RunPTSLatencyTest     = core.RunPTSLatencyTest
)

// Report rendering.
var (
	WriteDistributionTable = core.WriteDistributionTable
	WriteComparisonTable   = core.WriteComparisonTable
	WriteTableII           = core.WriteTableII
	WriteFig10Summary      = core.WriteFig10Summary
	WriteHeadline          = core.WriteHeadline
	WriteDistributionJSON  = core.WriteDistributionJSON
	WriteDistributionCSV   = core.WriteDistributionCSV
	WriteFig10CSV          = core.WriteFig10CSV
	WriteFaultAblation     = core.WriteFaultAblation
	WriteRecoverySeries    = core.WriteRecoverySeries
)
